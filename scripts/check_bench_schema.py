#!/usr/bin/env python3
"""Validates benchmark JSON sidecars and their performance gates.

Covers six benches, dispatched on the sidecar's "bench" field:

  * parallel_scaling  — thread-scaling results + speedup gate;
  * analytics_overhead — attribution/profiler cost + overhead gate;
  * recorder_overhead — flight-recorder journaling cost + overhead
    gate;
  * churn — live-subscription churn cost + degradation gate;
  * durability — WAL write-path cost + fsync=never overhead gate, and
    cold-recovery timings;
  * obs_endpoint — live introspection-plane scrape cost + overhead
    gate.

Seven modes:

  * file mode: validate existing sidecar JSON files;
  * --bench mode (the ctest hook): run the bench_parallel_scaling
    binary with a small workload, then validate the sidecar it wrote;
  * --analytics-bench mode (the ctest hook): same for
    bench_analytics_overhead;
  * --recorder-bench mode (the ctest hook): same for
    bench_recorder_overhead;
  * --churn-bench mode (the ctest hook): same for bench_churn;
  * --durability-bench mode (the ctest hook): same for
    bench_durability (with a scaled-down cold-recovery store);
  * --obs-bench mode (the ctest hook): same for bench_obs_endpoint.

parallel_scaling schema (always enforced): top-level bench/build_type/
hardware_concurrency/baseline_docs_per_sec and a non-empty results
array whose entries carry threads, docs_per_sec, and speedup_vs_1t.

parallel_scaling performance gates (enforced only when the build is
Release AND the machine has >= 4 hardware threads — a 1-CPU CI
container cannot demonstrate parallel speedup, and sanitizer/debug
builds distort it):

  * speedup_vs_1t at threads=4 must be >= 2.0;
  * the 1-thread configuration must stay within 5% of the serial
    matcher baseline (parallelism off must not cost anything).

analytics_overhead schema (always enforced): bench/build_type/
baseline_docs_per_sec/profiled_docs_per_sec/overhead_fraction, plus
tracked_expressions > 0 and attributed_evals > 0 (the profiler must
actually have seen the workload, otherwise the "overhead" measures
nothing).

analytics_overhead performance gate (Release builds on >= 4-CPU hosts
only — debug and sanitizer builds inflate the attribution bookkeeping
out of proportion, and an oversubscribed single-CPU host turns
scheduling noise into phantom overhead): overhead_fraction must stay
below 5%.

recorder_overhead schema (always enforced): bench/build_type/
baseline_docs_per_sec/recorded_docs_per_sec/overhead_fraction, plus
recorded_events > 0 (the recorder must actually have journaled the
workload, otherwise the "overhead" measures nothing).

recorder_overhead performance gate (Release builds on >= 4-CPU hosts
only, for the same reasons as above): overhead_fraction must stay
below 3% — the flight recorder is always on in production, so its
budget is tighter than the opt-in profiler's.

churn schema (always enforced): bench/build_type/
baseline_docs_per_sec/churn_docs_per_sec/degradation_fraction/
subscribes_per_sec, plus epochs_published > 0 and churn_subscribes > 0
(the writer must actually have churned the subscription table while
filtering ran, otherwise the "degradation" measures nothing).

churn performance gate (Release builds on >= 4-CPU hosts only — on an
oversubscribed single-CPU host the mutation thread steals the only
core from the filter workers and the measurement is pure scheduling):
degradation_fraction must stay below 10%.

durability schema (always enforced): bench/build_type/
baseline_subs_per_sec/wal_never_subs_per_sec/wal_always_subs_per_sec/
overhead_fraction_never/overhead_fraction_always plus the
cold-recovery block (recovery_subscriptions, recovery_records_replayed
> 0 so the replay path is actually exercised, recovery_wal_millis,
recovery_snapshot_entries == recovery_subscriptions, and
recovery_snapshot_millis). Both overhead fractions are recomputed from
the throughputs and must match.

durability performance gate (Release builds on >= 4-CPU hosts only —
debug/sanitizer builds distort the XPath-parse-dominated baseline, and
an oversubscribed host turns scheduling noise into phantom overhead):
overhead_fraction_never must stay below 15%. fsync=always is reported
but never gated — a real fsync per record costs whatever the storage
stack charges.

obs_endpoint schema (always enforced): bench/build_type/
baseline_docs_per_sec/scraped_docs_per_sec/overhead_fraction/
scrape_hz, plus scrapes_completed > 0 (a scraper must actually have
fetched /metrics over HTTP while filtering ran, otherwise the
"overhead" measures nothing). overhead_fraction is recomputed from
the throughputs and must match.

obs_endpoint performance gate (Release builds on >= 4-CPU hosts only —
on an oversubscribed host the scraper thread steals the filter
workers' only core and the measurement is pure scheduling):
overhead_fraction must stay below 3% — handlers serve published
immutable snapshots (DESIGN.md §17), so a live scraper should be
nearly free on the hot path.

Usage:
    check_bench_schema.py parallel_scaling.json analytics_overhead.json
    check_bench_schema.py --bench path/to/bench_parallel_scaling \
        --build-type Release
    check_bench_schema.py --analytics-bench \
        path/to/bench_analytics_overhead --build-type Release
    check_bench_schema.py --recorder-bench \
        path/to/bench_recorder_overhead --build-type Release
    check_bench_schema.py --churn-bench path/to/bench_churn \
        --build-type Release
    check_bench_schema.py --durability-bench path/to/bench_durability \
        --build-type Release
    check_bench_schema.py --obs-bench path/to/bench_obs_endpoint \
        --build-type Release
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

MIN_SPEEDUP_4T = 2.0
MAX_1T_REGRESSION = 0.05
MIN_GATE_CPUS = 4
MAX_ANALYTICS_OVERHEAD = 0.05
MAX_RECORDER_OVERHEAD = 0.03
MAX_CHURN_DEGRADATION = 0.10
MAX_DURABILITY_OVERHEAD = 0.15
MAX_OBS_OVERHEAD = 0.03


def fail(msg):
    print("check_bench_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def validate_parallel_scaling(data):
    for field in ("build_type", "hardware_concurrency",
                  "baseline_docs_per_sec", "results"):
        check(field in data, "missing top-level field %r" % field)
    results = data["results"]
    check(isinstance(results, list) and results,
          "results must be a non-empty array")
    by_threads = {}
    for i, entry in enumerate(results):
        for field in ("threads", "docs_per_sec", "speedup_vs_1t"):
            check(field in entry, "results[%d] missing %r" % (i, field))
        check(entry["docs_per_sec"] > 0,
              "results[%d] docs_per_sec must be positive" % i)
        by_threads[entry["threads"]] = entry
    check(1 in by_threads, "no 1-thread configuration in results")
    one = by_threads[1]
    check(abs(one["speedup_vs_1t"] - 1.0) < 1e-9,
          "1-thread speedup_vs_1t must be 1.0, got %r"
          % one["speedup_vs_1t"])

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; speedup gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; speedup gate skipped "
              "(%d hardware threads, need >= %d)" % (cpus, MIN_GATE_CPUS))
        return

    check(4 in by_threads, "no 4-thread configuration in results")
    speedup = by_threads[4]["speedup_vs_1t"]
    check(speedup >= MIN_SPEEDUP_4T,
          "4-thread speedup %.2fx below the %.1fx gate"
          % (speedup, MIN_SPEEDUP_4T))

    baseline = data["baseline_docs_per_sec"]
    check(baseline > 0, "baseline_docs_per_sec must be positive")
    ratio = one["docs_per_sec"] / baseline
    check(ratio >= 1.0 - MAX_1T_REGRESSION,
          "1-thread throughput is %.1f%% of the serial baseline "
          "(allowed regression: %d%%)"
          % (100 * ratio, int(100 * MAX_1T_REGRESSION)))
    print("check_bench_schema: OK (4-thread speedup %.2fx, "
          "1-thread at %.1f%% of serial baseline)" % (speedup, 100 * ratio))


def validate_analytics_overhead(data):
    for field in ("build_type", "hardware_concurrency",
                  "baseline_docs_per_sec", "profiled_docs_per_sec",
                  "overhead_fraction", "tracked_expressions",
                  "attributed_evals"):
        check(field in data, "missing top-level field %r" % field)
    check(data["baseline_docs_per_sec"] > 0,
          "baseline_docs_per_sec must be positive")
    check(data["profiled_docs_per_sec"] > 0,
          "profiled_docs_per_sec must be positive")
    check(data["tracked_expressions"] > 0,
          "profiler tracked no expressions — attribution not exercised")
    check(data["attributed_evals"] > 0,
          "profiler attributed no evaluations — attribution not exercised")

    overhead = data["overhead_fraction"]
    reported = 1.0 - (data["profiled_docs_per_sec"] /
                      data["baseline_docs_per_sec"])
    check(abs(overhead - reported) < 1e-6,
          "overhead_fraction %r inconsistent with throughputs (%r)"
          % (overhead, reported))

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; overhead gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; overhead gate skipped "
              "(%d hardware threads, need >= %d — an oversubscribed "
              "host turns scheduling noise into phantom overhead)"
              % (cpus, MIN_GATE_CPUS))
        return
    check(overhead < MAX_ANALYTICS_OVERHEAD,
          "profiler overhead %.2f%% breaches the %d%% gate"
          % (100 * overhead, int(100 * MAX_ANALYTICS_OVERHEAD)))
    print("check_bench_schema: OK (profiler overhead %.2f%%, "
          "gate %d%%)" % (100 * overhead, int(100 * MAX_ANALYTICS_OVERHEAD)))


def validate_recorder_overhead(data):
    for field in ("build_type", "hardware_concurrency",
                  "baseline_docs_per_sec", "recorded_docs_per_sec",
                  "overhead_fraction", "events_per_thread",
                  "recorded_events"):
        check(field in data, "missing top-level field %r" % field)
    check(data["baseline_docs_per_sec"] > 0,
          "baseline_docs_per_sec must be positive")
    check(data["recorded_docs_per_sec"] > 0,
          "recorded_docs_per_sec must be positive")
    check(data["events_per_thread"] > 0,
          "events_per_thread must be positive")
    check(data["recorded_events"] > 0,
          "recorder journaled no events — the recording path is not "
          "exercised")

    overhead = data["overhead_fraction"]
    reported = 1.0 - (data["recorded_docs_per_sec"] /
                      data["baseline_docs_per_sec"])
    check(abs(overhead - reported) < 1e-6,
          "overhead_fraction %r inconsistent with throughputs (%r)"
          % (overhead, reported))

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; overhead gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; overhead gate skipped "
              "(%d hardware threads, need >= %d — an oversubscribed "
              "host turns scheduling noise into phantom overhead)"
              % (cpus, MIN_GATE_CPUS))
        return
    check(overhead < MAX_RECORDER_OVERHEAD,
          "flight-recorder overhead %.2f%% breaches the %d%% gate"
          % (100 * overhead, int(100 * MAX_RECORDER_OVERHEAD)))
    print("check_bench_schema: OK (flight-recorder overhead %.2f%%, "
          "gate %d%%)" % (100 * overhead, int(100 * MAX_RECORDER_OVERHEAD)))


def validate_churn(data):
    for field in ("build_type", "hardware_concurrency",
                  "baseline_docs_per_sec", "churn_docs_per_sec",
                  "degradation_fraction", "subscribes_per_sec",
                  "epochs_published", "churn_subscribes"):
        check(field in data, "missing top-level field %r" % field)
    check(data["baseline_docs_per_sec"] > 0,
          "baseline_docs_per_sec must be positive")
    check(data["churn_docs_per_sec"] > 0,
          "churn_docs_per_sec must be positive")
    check(data["epochs_published"] > 0,
          "no epochs published — the live path is not exercised")
    check(data["churn_subscribes"] > 0,
          "no subscribes landed during churn — the writer never ran")
    check(data["subscribes_per_sec"] > 0,
          "subscribes_per_sec must be positive")

    degradation = data["degradation_fraction"]
    reported = 1.0 - (data["churn_docs_per_sec"] /
                      data["baseline_docs_per_sec"])
    check(abs(degradation - reported) < 1e-6,
          "degradation_fraction %r inconsistent with throughputs (%r)"
          % (degradation, reported))

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; degradation gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; degradation gate skipped "
              "(%d hardware threads, need >= %d — on an oversubscribed "
              "host the mutation thread steals the filter workers' "
              "cores)" % (cpus, MIN_GATE_CPUS))
        return
    check(degradation < MAX_CHURN_DEGRADATION,
          "churn degradation %.2f%% breaches the %d%% gate"
          % (100 * degradation, int(100 * MAX_CHURN_DEGRADATION)))
    print("check_bench_schema: OK (churn degradation %.2f%%, gate %d%%, "
          "%.0f subscribes/sec sustained)"
          % (100 * degradation, int(100 * MAX_CHURN_DEGRADATION),
             data["subscribes_per_sec"]))


def validate_durability(data):
    for field in ("build_type", "hardware_concurrency",
                  "baseline_subs_per_sec", "wal_never_subs_per_sec",
                  "wal_always_subs_per_sec", "overhead_fraction_never",
                  "overhead_fraction_always", "recovery_subscriptions",
                  "recovery_records_replayed", "recovery_wal_millis",
                  "recovery_snapshot_entries",
                  "recovery_snapshot_millis"):
        check(field in data, "missing top-level field %r" % field)
    check(data["baseline_subs_per_sec"] > 0,
          "baseline_subs_per_sec must be positive")
    check(data["wal_never_subs_per_sec"] > 0,
          "wal_never_subs_per_sec must be positive")
    check(data["wal_always_subs_per_sec"] > 0,
          "wal_always_subs_per_sec must be positive")
    check(data["recovery_subscriptions"] > 0,
          "cold-recovery store held no subscriptions")
    check(data["recovery_records_replayed"] > 0,
          "cold recovery replayed no WAL records — the replay path is "
          "not exercised")
    check(data["recovery_snapshot_entries"] ==
          data["recovery_subscriptions"],
          "snapshot entries %r != subscriptions %r — the checkpoint "
          "did not cover the table"
          % (data["recovery_snapshot_entries"],
             data["recovery_subscriptions"]))
    check(data["recovery_wal_millis"] >= 0
          and data["recovery_snapshot_millis"] >= 0,
          "recovery timings must be non-negative")

    for frac, never_or_always in (("overhead_fraction_never", "never"),
                                  ("overhead_fraction_always", "always")):
        reported = 1.0 - (data["wal_%s_subs_per_sec" % never_or_always] /
                          data["baseline_subs_per_sec"])
        check(abs(data[frac] - reported) < 1e-6,
              "%s %r inconsistent with throughputs (%r)"
              % (frac, data[frac], reported))

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; durability gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; durability gate skipped "
              "(%d hardware threads, need >= %d — an oversubscribed "
              "host turns scheduling noise into phantom overhead)"
              % (cpus, MIN_GATE_CPUS))
        return
    overhead = data["overhead_fraction_never"]
    check(overhead < MAX_DURABILITY_OVERHEAD,
          "fsync=never WAL overhead %.2f%% breaches the %d%% gate"
          % (100 * overhead, int(100 * MAX_DURABILITY_OVERHEAD)))
    print("check_bench_schema: OK (fsync=never WAL overhead %.2f%%, "
          "gate %d%%, snapshot recovery %.1f ms for %d subscriptions)"
          % (100 * overhead, int(100 * MAX_DURABILITY_OVERHEAD),
             data["recovery_snapshot_millis"],
             data["recovery_subscriptions"]))


def validate_obs_endpoint(data):
    for field in ("build_type", "hardware_concurrency",
                  "baseline_docs_per_sec", "scraped_docs_per_sec",
                  "overhead_fraction", "scrape_hz",
                  "scrapes_completed"):
        check(field in data, "missing top-level field %r" % field)
    check(data["baseline_docs_per_sec"] > 0,
          "baseline_docs_per_sec must be positive")
    check(data["scraped_docs_per_sec"] > 0,
          "scraped_docs_per_sec must be positive")
    check(data["scrape_hz"] > 0, "scrape_hz must be positive")
    check(data["scrapes_completed"] > 0,
          "no /metrics scrape completed — the serving path is not "
          "exercised")

    overhead = data["overhead_fraction"]
    reported = 1.0 - (data["scraped_docs_per_sec"] /
                      data["baseline_docs_per_sec"])
    check(abs(overhead - reported) < 1e-6,
          "overhead_fraction %r inconsistent with throughputs (%r)"
          % (overhead, reported))

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; overhead gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; overhead gate skipped "
              "(%d hardware threads, need >= %d — on an oversubscribed "
              "host the scraper thread steals the filter workers' "
              "cores)" % (cpus, MIN_GATE_CPUS))
        return
    check(overhead < MAX_OBS_OVERHEAD,
          "scrape-attached overhead %.2f%% breaches the %d%% gate"
          % (100 * overhead, int(100 * MAX_OBS_OVERHEAD)))
    print("check_bench_schema: OK (scrape-attached overhead %.2f%%, "
          "gate %d%%, %d scrapes at %d Hz)"
          % (100 * overhead, int(100 * MAX_OBS_OVERHEAD),
             data["scrapes_completed"], data["scrape_hz"]))


VALIDATORS = {
    "parallel_scaling": validate_parallel_scaling,
    "analytics_overhead": validate_analytics_overhead,
    "recorder_overhead": validate_recorder_overhead,
    "churn": validate_churn,
    "durability": validate_durability,
    "obs_endpoint": validate_obs_endpoint,
}


def validate(path):
    with open(path) as f:
        data = json.load(f)
    check("bench" in data, "missing top-level field 'bench'")
    bench = data["bench"]
    check(bench in VALIDATORS,
          "unknown bench %r (know: %s)" % (bench, sorted(VALIDATORS)))
    VALIDATORS[bench](data)


def run_bench(bench, build_type, sidecar_name, extra_env=None):
    with tempfile.TemporaryDirectory() as tmp:
        env = dict(os.environ)
        env["XPRED_BENCH_METRICS_DIR"] = tmp
        # Small-but-meaningful workload: large enough that per-task
        # overhead cannot dominate, small enough for a CI hook.
        env.setdefault("XPRED_BENCH_EXPRS", "500")
        env.setdefault("XPRED_BENCH_DOCS", "24")
        env.setdefault("XPRED_BENCH_PASSES", "3")
        for key, value in (extra_env or {}).items():
            env.setdefault(key, value)
        proc = subprocess.run([bench], env=env, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True,
                              timeout=600)
        sys.stdout.write(proc.stdout)
        check(proc.returncode == 0,
              "%s exited with %d" % (bench, proc.returncode))
        sidecar = os.path.join(tmp, sidecar_name)
        check(os.path.exists(sidecar), "bench wrote no %s" % sidecar)
        if build_type:
            with open(sidecar) as f:
                reported = json.load(f).get("build_type")
            check(reported == build_type,
                  "sidecar build_type %r != configured %r"
                  % (reported, build_type))
        validate(sidecar)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("files", nargs="*", help="sidecar JSON files")
    parser.add_argument("--bench", help="bench_parallel_scaling binary")
    parser.add_argument("--analytics-bench",
                        help="bench_analytics_overhead binary")
    parser.add_argument("--recorder-bench",
                        help="bench_recorder_overhead binary")
    parser.add_argument("--churn-bench", help="bench_churn binary")
    parser.add_argument("--durability-bench",
                        help="bench_durability binary")
    parser.add_argument("--obs-bench", help="bench_obs_endpoint binary")
    parser.add_argument("--build-type", default="",
                        help="expected CMake build type of the binary")
    args = parser.parse_args()
    if (not args.files and not args.bench and not args.analytics_bench
            and not args.recorder_bench and not args.churn_bench
            and not args.durability_bench and not args.obs_bench):
        parser.error("give sidecar files, --bench, --analytics-bench, "
                     "--recorder-bench, --churn-bench, "
                     "--durability-bench, or --obs-bench")
    for path in args.files:
        validate(path)
    if args.bench:
        run_bench(args.bench, args.build_type, "parallel_scaling.json")
    if args.analytics_bench:
        run_bench(args.analytics_bench, args.build_type,
                  "analytics_overhead.json")
    if args.recorder_bench:
        run_bench(args.recorder_bench, args.build_type,
                  "recorder_overhead.json")
    if args.churn_bench:
        run_bench(args.churn_bench, args.build_type, "churn.json")
    if args.durability_bench:
        # The 100k-subscription cold-recovery default is a standalone
        # measurement; the CI hook scales it down to stay quick.
        run_bench(args.durability_bench, args.build_type,
                  "durability.json",
                  extra_env={"XPRED_BENCH_RECOVERY_SUBS": "4000"})
    if args.obs_bench:
        run_bench(args.obs_bench, args.build_type, "obs_endpoint.json")


if __name__ == "__main__":
    main()
