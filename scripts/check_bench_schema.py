#!/usr/bin/env python3
"""Validates the parallel-scaling benchmark sidecar and its speedup gate.

Two modes:

  * file mode: validate an existing parallel_scaling.json;
  * --bench mode (the ctest hook): run the bench_parallel_scaling
    binary with a small workload, then validate the sidecar it wrote.

Schema (always enforced): top-level bench/build_type/
hardware_concurrency/baseline_docs_per_sec and a non-empty results
array whose entries carry threads, docs_per_sec, and speedup_vs_1t.

Performance gates (enforced only when the build is Release AND the
machine has >= 4 hardware threads — a 1-CPU CI container cannot
demonstrate parallel speedup, and sanitizer/debug builds distort it):

  * speedup_vs_1t at threads=4 must be >= 2.0;
  * the 1-thread configuration must stay within 5% of the serial
    matcher baseline (parallelism off must not cost anything).

Usage:
    check_bench_schema.py parallel_scaling.json
    check_bench_schema.py --bench path/to/bench_parallel_scaling \
        --build-type Release
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

MIN_SPEEDUP_4T = 2.0
MAX_1T_REGRESSION = 0.05
MIN_GATE_CPUS = 4


def fail(msg):
    print("check_bench_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def validate(path):
    with open(path) as f:
        data = json.load(f)

    for field in ("bench", "build_type", "hardware_concurrency",
                  "baseline_docs_per_sec", "results"):
        check(field in data, "missing top-level field %r" % field)
    check(data["bench"] == "parallel_scaling",
          "bench is %r, want parallel_scaling" % data["bench"])
    results = data["results"]
    check(isinstance(results, list) and results,
          "results must be a non-empty array")
    by_threads = {}
    for i, entry in enumerate(results):
        for field in ("threads", "docs_per_sec", "speedup_vs_1t"):
            check(field in entry, "results[%d] missing %r" % (i, field))
        check(entry["docs_per_sec"] > 0,
              "results[%d] docs_per_sec must be positive" % i)
        by_threads[entry["threads"]] = entry
    check(1 in by_threads, "no 1-thread configuration in results")
    one = by_threads[1]
    check(abs(one["speedup_vs_1t"] - 1.0) < 1e-9,
          "1-thread speedup_vs_1t must be 1.0, got %r"
          % one["speedup_vs_1t"])

    build_type = data["build_type"]
    cpus = data["hardware_concurrency"]
    if build_type != "Release":
        print("check_bench_schema: schema OK; speedup gate skipped "
              "(build_type=%s, need Release)" % build_type)
        return
    if cpus < MIN_GATE_CPUS:
        print("check_bench_schema: schema OK; speedup gate skipped "
              "(%d hardware threads, need >= %d)" % (cpus, MIN_GATE_CPUS))
        return

    check(4 in by_threads, "no 4-thread configuration in results")
    speedup = by_threads[4]["speedup_vs_1t"]
    check(speedup >= MIN_SPEEDUP_4T,
          "4-thread speedup %.2fx below the %.1fx gate"
          % (speedup, MIN_SPEEDUP_4T))

    baseline = data["baseline_docs_per_sec"]
    check(baseline > 0, "baseline_docs_per_sec must be positive")
    ratio = one["docs_per_sec"] / baseline
    check(ratio >= 1.0 - MAX_1T_REGRESSION,
          "1-thread throughput is %.1f%% of the serial baseline "
          "(allowed regression: %d%%)"
          % (100 * ratio, int(100 * MAX_1T_REGRESSION)))
    print("check_bench_schema: OK (4-thread speedup %.2fx, "
          "1-thread at %.1f%% of serial baseline)" % (speedup, 100 * ratio))


def run_bench(bench, build_type):
    with tempfile.TemporaryDirectory() as tmp:
        env = dict(os.environ)
        env["XPRED_BENCH_METRICS_DIR"] = tmp
        # Small-but-meaningful workload: large enough that per-task
        # overhead cannot dominate, small enough for a CI hook.
        env.setdefault("XPRED_BENCH_EXPRS", "500")
        env.setdefault("XPRED_BENCH_DOCS", "24")
        env.setdefault("XPRED_BENCH_PASSES", "3")
        proc = subprocess.run([bench], env=env, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True,
                              timeout=600)
        sys.stdout.write(proc.stdout)
        check(proc.returncode == 0,
              "%s exited with %d" % (bench, proc.returncode))
        sidecar = os.path.join(tmp, "parallel_scaling.json")
        check(os.path.exists(sidecar), "bench wrote no %s" % sidecar)
        if build_type:
            with open(sidecar) as f:
                reported = json.load(f).get("build_type")
            check(reported == build_type,
                  "sidecar build_type %r != configured %r"
                  % (reported, build_type))
        validate(sidecar)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("files", nargs="*", help="sidecar JSON files")
    parser.add_argument("--bench", help="bench_parallel_scaling binary")
    parser.add_argument("--build-type", default="",
                        help="expected CMake build type of the binary")
    args = parser.parse_args()
    if not args.files and not args.bench:
        parser.error("give sidecar files or --bench")
    for path in args.files:
        validate(path)
    if args.bench:
        run_bench(args.bench, args.build_type)


if __name__ == "__main__":
    main()
