#!/usr/bin/env python3
"""Summarizes bench_output.txt into per-figure tables.

Usage: scripts/summarize_bench.py [bench_output.txt]

Parses google-benchmark tabular output and prints, per figure, a
series x x-value grid of ms_per_doc (plus match_pct per x-value),
ready to paste into EXPERIMENTS.md.
"""

import re
import sys
from collections import defaultdict


def parse(path):
    rows = []
    header = []
    for line in open(path):
        if line.startswith("Benchmark"):
            header = line.split()
            continue
        m = re.match(r"^(Fig\S+|Ablation\S+|Parsing\S+|Insertion\S+)\s", line)
        if not m:
            continue
        parts = line.split()
        name = parts[0]
        row = {"name": name}
        # Align trailing counter columns with the header (Time/CPU have
        # unit suffixes as separate tokens).
        counters = header[4:] if header else []
        if counters:
            values = parts[-len(counters):]
            for key, value in zip(counters, values):
                try:
                    row[key] = float(value.replace("k", "e3").replace(
                        "M", "e6").replace("m", "e-3"))
                except ValueError:
                    row[key] = value
        rows.append(row)
    return rows


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    rows = parse(path)
    groups = defaultdict(list)
    for row in rows:
        # Name shape: Fig6a/<series>/<x>/... or Fig8/W/<series>/<x>/...
        parts = row["name"].split("/")
        if parts[0] in ("Fig8", "Fig7", "Fig9"):
            figure = "/".join(parts[:2])
            series = parts[2] if parts[0] != "Fig9" else parts[1]
            x = parts[3] if len(parts) > 3 else "?"
            if parts[0] == "Fig9":
                figure, series, x = parts[0] + "/" + parts[1], parts[2], ""
        else:
            figure = parts[0]
            series = parts[1] if len(parts) > 1 else ""
            x = parts[2] if len(parts) > 2 else ""
        groups[figure].append((series, x, row))

    for figure in sorted(groups):
        print(f"\n=== {figure} ===")
        xs = []
        table = defaultdict(dict)
        match = {}
        for series, x, row in groups[figure]:
            if x not in xs:
                xs.append(x)
            table[series][x] = row.get("ms_per_doc", row.get("us_per_doc"))
            if "match_pct" in row:
                match[x] = row["match_pct"]
        header = "series".ljust(24) + "".join(str(x).rjust(12) for x in xs)
        print(header)
        for series in table:
            line = series.ljust(24)
            for x in xs:
                v = table[series].get(x)
                line += (f"{v:12.3f}" if isinstance(v, float) else
                         str(v).rjust(12))
            print(line)
        if match:
            line = "match_pct".ljust(24)
            for x in xs:
                v = match.get(x)
                line += (f"{v:12.1f}" if isinstance(v, float) else
                         " " * 12)
            print(line)


if __name__ == "__main__":
    main()
