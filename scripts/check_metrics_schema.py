#!/usr/bin/env python3
"""Validates xpred observability output files.

Three kinds of artifacts are checked:

  * metrics sidecar JSON (bench_util.h / `xpred_cli filter
    --metrics-json=`): schema_version, provenance, counters, gauges,
    and histograms with consistent bucket/percentile invariants — plus
    the optional "workload" section that `--profile-workload` embeds
    (mode, totals, top_expressions, hot_predicates, latency_ns,
    top10_agreement);
  * Prometheus text exposition (`xpred_cli filter --metrics=`):
    HELP/TYPE headers, cumulative non-decreasing histogram buckets,
    and the _count/+Inf agreement;
  * trace JSONL (`xpred_cli filter --trace=`): one span object per
    line with the known stage names.

Usage:
    check_metrics_schema.py file.json [file2.json ...]
    check_metrics_schema.py --prom metrics.prom
    check_metrics_schema.py --trace trace.jsonl
    check_metrics_schema.py --cli path/to/xpred_cli

The --cli mode is the end-to-end check wired into ctest: it generates
a tiny workload with the CLI, runs `filter` with every observability
flag, and validates all three outputs (including that the matcher's
per-stage histograms have non-zero counts).
"""

import json
import os
import re
import subprocess
import sys
import tempfile

KNOWN_STAGES = {"parse", "encode", "predicate", "occurrence", "verify",
                "collect"}

SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[-+0-9.eEinfNa]+)$")


def fail(msg):
    print("check_metrics_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


# ---------------------------------------------------------------- sidecar

def validate_histogram(key, h):
    for field in ("count", "sum", "min", "max", "p50", "p90", "p99",
                  "buckets"):
        check(field in h, "%s: histogram missing field %r" % (key, field))
    check(isinstance(h["buckets"], list), "%s: buckets not a list" % key)
    total = 0
    prev_upper = -1
    for entry in h["buckets"]:
        check(isinstance(entry, list) and len(entry) == 2,
              "%s: bucket entry %r is not [upper, count]" % (key, entry))
        upper, count = entry
        check(upper > prev_upper,
              "%s: bucket uppers not strictly increasing" % key)
        check(count >= 0, "%s: negative bucket count" % key)
        prev_upper = upper
        total += count
    check(total == h["count"],
          "%s: bucket counts sum to %d, count says %d"
          % (key, total, h["count"]))
    if h["count"] > 0:
        check(h["min"] <= h["max"], "%s: min > max" % key)
        for q in ("p50", "p90", "p99"):
            check(h[q] <= h["max"],
                  "%s: %s=%s exceeds max=%s" % (key, q, h[q], h["max"]))


def validate_workload(path, w):
    check(isinstance(w, dict), "%s: workload is not an object" % path)
    check(w.get("schema_version") == 1,
          "%s: workload schema_version must be 1" % path)
    check(w.get("mode") in ("exact", "sketch"),
          "%s: workload mode %r not exact|sketch" % (path, w.get("mode")))
    totals = w.get("totals")
    check(isinstance(totals, dict), "%s: workload missing totals" % path)
    for field in ("evals", "matches", "cost", "predicate_matches",
                  "deltas", "distinct_expressions"):
        check(isinstance(totals.get(field), int) and totals[field] >= 0,
              "%s: workload totals.%s not a non-negative integer"
              % (path, field))
    check(totals["matches"] <= totals["evals"],
          "%s: workload totals has more matches than evals" % path)

    for section, fields in (
            ("top_expressions",
             ("key", "name", "evals", "matches", "match_rate", "cost",
              "cost_share", "cost_error")),
            ("hot_predicates", ("key", "name", "matches", "share",
                                "error"))):
        entries = w.get(section)
        check(isinstance(entries, list),
              "%s: workload missing %s" % (path, section))
        prev_cost = None
        for i, entry in enumerate(entries):
            for field in fields:
                check(field in entry, "%s: workload %s[%d] missing %r"
                      % (path, section, i, field))
            check(isinstance(entry["name"], str) and entry["name"],
                  "%s: workload %s[%d] has no name" % (path, section, i))
        if section == "top_expressions":
            costs = [e["cost"] for e in entries]
            check(costs == sorted(costs, reverse=True),
                  "%s: top_expressions not sorted by descending cost"
                  % path)
            for e in entries:
                check(0.0 <= e["match_rate"] <= 1.0,
                      "%s: match_rate %r out of [0,1]"
                      % (path, e["match_rate"]))

    lat = w.get("latency_ns")
    check(isinstance(lat, dict), "%s: workload missing latency_ns" % path)
    for field in ("sampled", "p50", "p99", "max"):
        check(isinstance(lat.get(field), int) and lat[field] >= 0,
              "%s: workload latency_ns.%s invalid" % (path, field))
    if lat["sampled"] > 0:
        check(lat["p50"] <= lat["max"] and lat["p99"] <= lat["max"],
              "%s: workload latency percentiles exceed max" % path)

    agreement = w.get("top10_agreement")
    check(isinstance(agreement, (int, float)),
          "%s: workload top10_agreement not numeric" % path)
    check(agreement <= 1.0,
          "%s: workload top10_agreement %r > 1" % (path, agreement))
    if w["mode"] == "exact":
        check(agreement >= 0.0,
              "%s: exact-mode top10_agreement must be computable (got %r)"
              % (path, agreement))


def validate_sidecar(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(doc.get("schema_version") == 1,
          "%s: schema_version must be 1" % path)
    for field in ("source", "engine"):
        check(isinstance(doc.get(field), str) and doc[field],
              "%s: missing %r" % (path, field))
    for section in ("counters", "gauges", "histograms"):
        check(isinstance(doc.get(section), dict),
              "%s: missing section %r" % (path, section))
    for key, value in doc["counters"].items():
        check(isinstance(value, int) and value >= 0,
              "%s: counter %s not a non-negative integer" % (path, key))
    for key, value in doc["gauges"].items():
        check(isinstance(value, (int, float)),
              "%s: gauge %s not numeric" % (path, key))
    for key, h in doc["histograms"].items():
        check(isinstance(h, dict), "%s: histogram %s not an object"
              % (path, key))
        validate_histogram("%s: %s" % (path, key), h)
    if "workload" in doc:
        validate_workload(path, doc["workload"])
    print("check_metrics_schema: OK sidecar %s (%d counters, %d gauges, "
          "%d histograms%s)"
          % (path, len(doc["counters"]), len(doc["gauges"]),
             len(doc["histograms"]),
             ", workload section" if "workload" in doc else ""))
    return doc


# ------------------------------------------------------------- prometheus

def validate_prometheus(path):
    helps, types, series = {}, {}, []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                helps[line.split(" ", 3)[2]] = True
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                check(len(parts) == 4 and parts[3] in
                      ("counter", "gauge", "histogram"),
                      "%s:%d: bad TYPE line" % (path, lineno))
                types[parts[2]] = parts[3]
                continue
            check(not line.startswith("#"),
                  "%s:%d: unexpected comment" % (path, lineno))
            m = SERIES_RE.match(line)
            check(m is not None, "%s:%d: unparsable series: %r"
                  % (path, lineno, line))
            series.append((m.group("name"), m.group("labels") or "",
                           float(m.group("value"))))

    check(series, "%s: no series" % path)
    for name, _, _ in series:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        check(base in types or name in types,
              "%s: series %s has no TYPE" % (path, name))
        check(base in helps or name in helps,
              "%s: series %s has no HELP" % (path, name))

    # Histogram invariants: cumulative non-decreasing buckets ending in
    # +Inf, whose value equals _count.
    hist_names = [n for n, t in types.items() if t == "histogram"]
    for hist in hist_names:
        by_instance = {}
        for name, labels, value in series:
            if name != hist + "_bucket":
                continue
            le = re.search(r'le="([^"]*)"', labels).group(1)
            rest = re.sub(r',?le="[^"]*"', "", labels)
            by_instance.setdefault(rest, []).append((le, value))
        counts = {}
        for name, labels, value in series:
            if name == hist + "_count":
                counts[labels] = value
        check(by_instance, "%s: histogram %s has no buckets" % (path, hist))
        for rest, buckets in by_instance.items():
            check(buckets[-1][0] == "+Inf",
                  "%s: %s{%s}: last bucket is not +Inf" % (path, hist, rest))
            values = [v for _, v in buckets]
            check(values == sorted(values),
                  "%s: %s{%s}: buckets not cumulative" % (path, hist, rest))
            check(rest in counts and counts[rest] == values[-1],
                  "%s: %s{%s}: +Inf bucket != _count" % (path, hist, rest))
    print("check_metrics_schema: OK prometheus %s (%d series, "
          "%d histograms)" % (path, len(series), len(hist_names)))
    return series


# ------------------------------------------------------------------ trace

def validate_trace(path):
    spans = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as e:
                fail("%s:%d: bad JSON: %s" % (path, lineno, e))
            for field in ("doc", "engine", "span", "start_ns", "dur_ns"):
                check(field in span, "%s:%d: span missing %r"
                      % (path, lineno, field))
            check(span["span"] in KNOWN_STAGES,
                  "%s:%d: unknown stage %r" % (path, lineno, span["span"]))
            check(span["doc"] >= 1, "%s:%d: doc must be >= 1"
                  % (path, lineno))
            spans.append(span)
    check(spans, "%s: no spans" % path)
    print("check_metrics_schema: OK trace %s (%d spans, %d documents)"
          % (path, len(spans), len({s["doc"] for s in spans})))
    return spans


# ---------------------------------------------------------------- cli e2e

def run_cli_end_to_end(cli):
    with tempfile.TemporaryDirectory(prefix="xpred_obs_") as tmp:
        exprs = os.path.join(tmp, "exprs.txt")
        doc = os.path.join(tmp, "doc.xml")
        prom = os.path.join(tmp, "metrics.prom")
        sidecar = os.path.join(tmp, "metrics.json")
        trace = os.path.join(tmp, "trace.jsonl")

        with open(exprs, "w", encoding="utf-8") as f:
            f.write(subprocess.check_output(
                [cli, "generate-queries", "--dtd=nitf", "--count=50",
                 "--seed=7"], text=True))
        with open(doc, "w", encoding="utf-8") as f:
            f.write(subprocess.check_output(
                [cli, "generate-docs", "--dtd=nitf", "--count=1",
                 "--seed=7"], text=True))

        subprocess.check_call(
            [cli, "filter", "--exprs=" + exprs, "--engine=basic-pc-ap",
             "--metrics=" + prom, "--metrics-json=" + sidecar,
             "--trace=" + trace, doc, doc],
            stdout=subprocess.DEVNULL)

        sidecar_doc = validate_sidecar(sidecar)
        series = validate_prometheus(prom)
        spans = validate_trace(trace)

        # The acceptance bar: the matcher published non-zero per-stage
        # latency histogram counts.
        stage_counts = {}
        for key, h in sidecar_doc["histograms"].items():
            if key.startswith("xpred_stage_latency_ns"):
                stage = re.search(r'stage="([^"]*)"', key).group(1)
                stage_counts[stage] = h["count"]
        for stage in ("parse", "encode", "predicate", "occurrence"):
            check(stage_counts.get(stage, 0) > 0,
                  "stage %r histogram count is zero" % stage)
        check(any(n == "xpred_documents_total" and v == 2
                  for n, _, v in series),
              "xpred_documents_total != 2 in prometheus output")
        check({s["doc"] for s in spans} == {1, 2},
              "trace does not cover both documents")

        # Second run with --profile-workload: the sidecar must embed a
        # valid workload section and the engine must publish the
        # xpred_workload_* gauges.
        profiled = os.path.join(tmp, "metrics_workload.json")
        subprocess.check_call(
            [cli, "filter", "--exprs=" + exprs, "--engine=basic-pc-ap",
             "--profile-workload=10", "--metrics-json=" + profiled,
             doc, doc],
            stdout=subprocess.DEVNULL)
        profiled_doc = validate_sidecar(profiled)
        check("workload" in profiled_doc,
              "--profile-workload sidecar has no workload section")
        workload = profiled_doc["workload"]
        check(workload["totals"]["evals"] > 0,
              "workload profile attributed no evaluations")
        check(workload["top_expressions"],
              "workload profile has no top expressions")
        published = [g for g in profiled_doc["gauges"]
                     if g.startswith("xpred_workload_")]
        for gauge in ("xpred_workload_tracked_expressions",
                      "xpred_workload_evals", "xpred_workload_matches"):
            check(any(g.startswith(gauge) for g in published),
                  "gauge %s not published by --profile-workload" % gauge)
        print("check_metrics_schema: OK end-to-end (%s)" % cli)


def main(argv):
    if len(argv) >= 2 and argv[0] == "--cli":
        run_cli_end_to_end(argv[1])
        return
    if not argv:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    # --prom / --trace switch the validator for the files that follow;
    # files before any flag are sidecar JSON.
    validators = {"--prom": validate_prometheus, "--trace": validate_trace}
    validate = validate_sidecar
    seen_file = False
    for arg in argv:
        if arg in validators:
            validate = validators[arg]
        elif arg.startswith("-"):
            print("unknown option %r" % arg, file=sys.stderr)
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        else:
            validate(arg)
            seen_file = True
    if not seen_file:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv[1:])
