#!/usr/bin/env python3
"""Validates xpred diagnostic bundles and diagnose timelines.

Two artifact kinds are checked:

  * diagnostic bundle JSON (written by the crash handler on a fatal
    signal / std::terminate, by the watchdog on the first stall
    episode, and by CrashHandler::WriteBundle): bundle magic, reason,
    the "recorder" section (events with known types, thread docs,
    drop counters), and the point-in-time "metrics" snapshot;
  * diagnose timeline JSON (`xpred_cli diagnose bundle.json`): magic,
    time-sorted events with decoded "detail" strings, and a summary
    that is consistent with the event stream.

Usage:
    check_diag_schema.py bundle.json [bundle2.json ...]
    check_diag_schema.py --timeline timeline.json
    check_diag_schema.py --cli path/to/xpred_cli
    check_diag_schema.py --restore path/to/xpred_cli
    check_diag_schema.py --recovery-report report.json

The --restore mode is the durability end-to-end check (DESIGN.md
§16): it seeds a durable store with `xpred_cli snapshot`, recovers it
with `xpred_cli restore --json`, and validates the versioned
RecoveryReport schema plus its determinism.

The --cli mode is the end-to-end crash-diagnosis check wired into
ctest: it generates a tiny workload, runs `xpred_cli filter` with an
injected abort (--inject-fault=engine.begin_document:abort:1) under
--flight-recorder/--diag-dir, asserts the process died with SIGABRT
while leaving a schema-valid crash bundle, feeds the bundle through
`xpred_cli diagnose`, validates the timeline, and cross-checks the
two artifacts against each other. It also verifies the clean-run
contract: a run that does not crash leaves no bundle file behind.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile

KNOWN_EVENT_TYPES = {
    "doc_begin", "doc_end", "stage", "batch_begin", "batch_end",
    "quarantine", "retry", "breaker", "shed", "steal", "park",
    "budget_exhausted", "fault_injected", "stall", "watchdog_scan",
    "dump", "wal_rotate", "snapshot_write", "recovery",
}
KNOWN_REASONS = {"signal", "terminate", "watchdog", "manual"}
KNOWN_METRIC_TYPES = {"counter", "gauge", "histogram"}


def fail(msg):
    print("check_diag_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            return json.load(f)
        except json.JSONDecodeError as e:
            fail("%s: bad JSON: %s" % (path, e))


def check_uint(obj, field, where):
    check(field in obj, "%s: missing %r" % (where, field))
    check(isinstance(obj[field], int) and obj[field] >= 0,
          "%s: %s=%r is not a non-negative integer"
          % (where, field, obj[field]))


def validate_event(event, where):
    check(isinstance(event, dict), "%s: event is not an object" % where)
    for field in ("nanos", "thread", "a", "b"):
        check_uint(event, field, where)
    check(event.get("type") in KNOWN_EVENT_TYPES,
          "%s: unknown event type %r" % (where, event.get("type")))


def validate_thread_doc(doc, where):
    check(isinstance(doc, dict), "%s: thread_doc is not an object" % where)
    for field in ("thread", "fingerprint", "doc_seq"):
        check_uint(doc, field, where)


# ----------------------------------------------------------------- bundle

def validate_bundle(path):
    bundle = load_json(path)
    check(isinstance(bundle, dict), "%s: bundle is not an object" % path)
    check(bundle.get("xpred_diag_bundle") == 1,
          "%s: xpred_diag_bundle magic must be 1" % path)
    check(bundle.get("reason") in KNOWN_REASONS,
          "%s: unknown reason %r" % (path, bundle.get("reason")))
    check_uint(bundle, "signal", path)
    if bundle["reason"] != "signal":
        check(bundle["signal"] == 0,
              "%s: non-signal bundle carries signal %d"
              % (path, bundle["signal"]))
    check_uint(bundle, "nanos", path)

    recorder = bundle.get("recorder")
    check(isinstance(recorder, dict), "%s: missing recorder section" % path)
    check(isinstance(recorder.get("installed"), bool),
          "%s: recorder.installed is not a bool" % path)
    if recorder["installed"]:
        for field in ("events_per_thread", "registered_threads",
                      "unregistered_drops", "dropped"):
            check_uint(recorder, field, path + ":recorder")
        check(recorder["events_per_thread"] >= 1,
              "%s: events_per_thread must be >= 1" % path)
        events = recorder.get("events")
        check(isinstance(events, list), "%s: recorder.events missing" % path)
        for i, event in enumerate(events):
            validate_event(event, "%s:events[%d]" % (path, i))
        thread_docs = recorder.get("thread_docs")
        check(isinstance(thread_docs, list),
              "%s: recorder.thread_docs missing" % path)
        for i, doc in enumerate(thread_docs):
            validate_thread_doc(doc, "%s:thread_docs[%d]" % (path, i))
        threads = {e["thread"] for e in events}
        check(len(thread_docs) >= len(threads),
              "%s: fewer thread_docs (%d) than writer threads (%d)"
              % (path, len(thread_docs), len(threads)))

    metrics = bundle.get("metrics")
    check(isinstance(metrics, list), "%s: metrics is not a list" % path)
    for i, metric in enumerate(metrics):
        where = "%s:metrics[%d]" % (path, i)
        check(isinstance(metric, dict), "%s: not an object" % where)
        check(isinstance(metric.get("name"), str) and metric["name"],
              "%s: missing name" % where)
        mtype = metric.get("type")
        check(mtype in KNOWN_METRIC_TYPES,
              "%s: unknown metric type %r" % (where, mtype))
        if mtype == "counter":
            check_uint(metric, "value", where)
        elif mtype == "gauge":
            check(isinstance(metric.get("value"), (int, float)),
                  "%s: gauge value not numeric" % where)
        else:
            for field in ("count", "sum", "max"):
                check_uint(metric, field, where)

    n_events = (len(recorder.get("events", []))
                if recorder.get("installed") else 0)
    print("check_diag_schema: OK bundle %s (reason=%s, %d events)"
          % (path, bundle["reason"], n_events))
    return bundle


# --------------------------------------------------------------- timeline

def validate_timeline(path_or_doc, source="timeline"):
    if isinstance(path_or_doc, str):
        timeline = load_json(path_or_doc)
        source = path_or_doc
    else:
        timeline = path_or_doc
    check(isinstance(timeline, dict), "%s: not an object" % source)
    check(timeline.get("xpred_diag_timeline") == 1,
          "%s: xpred_diag_timeline magic must be 1" % source)
    check(isinstance(timeline.get("bundle"), str) and timeline["bundle"],
          "%s: missing bundle path" % source)
    check(isinstance(timeline.get("reason"), str),
          "%s: missing reason" % source)
    for field in ("signal", "event_count", "dropped",
                  "unregistered_drops"):
        check_uint(timeline, field, source)

    events = timeline.get("events")
    check(isinstance(events, list), "%s: events missing" % source)
    check(timeline["event_count"] == len(events),
          "%s: event_count=%d but %d events"
          % (source, timeline["event_count"], len(events)))
    counts = {"doc_begin": 0, "doc_end": 0, "stall": 0,
              "fault_injected": 0}
    prev_nanos = 0
    for i, event in enumerate(events):
        where = "%s:events[%d]" % (source, i)
        validate_event(event, where)
        check(isinstance(event.get("detail"), str) and event["detail"],
              "%s: missing decoded detail" % where)
        check(event["nanos"] >= prev_nanos,
              "%s: timeline is not time-sorted" % where)
        prev_nanos = event["nanos"]
        if event["type"] in counts:
            counts[event["type"]] += 1

    for i, doc in enumerate(timeline.get("thread_docs", [])):
        validate_thread_doc(doc, "%s:thread_docs[%d]" % (source, i))

    summary = timeline.get("summary")
    check(isinstance(summary, dict), "%s: summary missing" % source)
    for field, event_type in (("docs_begun", "doc_begin"),
                              ("docs_done", "doc_end"),
                              ("stalls", "stall"),
                              ("faults_injected", "fault_injected")):
        check_uint(summary, field, source + ":summary")
        check(summary[field] == counts[event_type],
              "%s: summary.%s=%d disagrees with %d %s events"
              % (source, field, summary[field], counts[event_type],
                 event_type))
    print("check_diag_schema: OK timeline %s (%d events)"
          % (source, len(events)))
    return timeline


# ---------------------------------------------------------------- cli e2e

def run_cli_end_to_end(cli):
    with tempfile.TemporaryDirectory(prefix="xpred_diag_") as tmp:
        exprs = os.path.join(tmp, "exprs.txt")
        doc = os.path.join(tmp, "doc.xml")
        with open(exprs, "w", encoding="utf-8") as f:
            f.write(subprocess.check_output(
                [cli, "generate-queries", "--dtd=nitf", "--count=20",
                 "--seed=7"], text=True))
        with open(doc, "w", encoding="utf-8") as f:
            f.write(subprocess.check_output(
                [cli, "generate-docs", "--dtd=nitf", "--count=1",
                 "--seed=7"], text=True))

        bundle_path = os.path.join(tmp, "xpred_crash_bundle.json")

        # Clean-run contract first: with diagnostics armed but no
        # crash, the pre-opened bundle must be unlinked on exit.
        subprocess.check_call(
            [cli, "filter", "--exprs=" + exprs, "--flight-recorder",
             "--diag-dir=" + tmp, doc, doc],
            stdout=subprocess.DEVNULL)
        check(not os.path.exists(bundle_path),
              "clean run left an empty bundle at %s" % bundle_path)

        # Crash run: the second document aborts inside the engine's
        # begin-document fault point; the process must die with
        # SIGABRT and leave a schema-valid bundle behind.
        proc = subprocess.run(
            [cli, "filter", "--exprs=" + exprs, "--flight-recorder",
             "--diag-dir=" + tmp,
             "--inject-fault=engine.begin_document:abort:1",
             doc, doc],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        check(proc.returncode in (-signal.SIGABRT, 128 + signal.SIGABRT),
              "injected abort exited with %d, want SIGABRT death"
              % proc.returncode)
        check(os.path.exists(bundle_path),
              "crashed run wrote no bundle at %s" % bundle_path)

        bundle = validate_bundle(bundle_path)
        check(bundle["reason"] == "signal",
              "crash bundle reason %r, want signal" % bundle["reason"])
        check(bundle["signal"] == int(signal.SIGABRT),
              "crash bundle signal %d, want %d"
              % (bundle["signal"], int(signal.SIGABRT)))
        check(bundle["recorder"]["installed"] is True,
              "crash bundle has no recorder journal")
        events = bundle["recorder"]["events"]
        types = [e["type"] for e in events]
        check("fault_injected" in types,
              "crash bundle journal has no fault_injected event")
        check("doc_begin" in types,
              "crash bundle journal has no doc_begin event")
        check(bundle["recorder"]["thread_docs"],
              "crash bundle has no in-flight document fingerprint")
        check(any(m["name"].startswith("xpred_documents_total")
                  for m in bundle["metrics"]),
              "crash bundle metrics lack xpred_documents_total")

        # Diagnose reconstructs a merged, decoded timeline from the
        # bundle; its summary must agree with the raw journal.
        out = subprocess.check_output([cli, "diagnose", bundle_path],
                                      text=True)
        timeline = validate_timeline(json.loads(out), "diagnose output")
        check(timeline["reason"] == "signal",
              "timeline reason %r" % timeline["reason"])
        check(timeline["signal"] == int(signal.SIGABRT),
              "timeline signal %d" % timeline["signal"])
        check(timeline["event_count"] == len(events),
              "timeline has %d events, bundle has %d"
              % (timeline["event_count"], len(events)))
        check(timeline["summary"]["faults_injected"] >= 1,
              "timeline summary counts no injected faults")
        fault_details = [e["detail"] for e in timeline["events"]
                         if e["type"] == "fault_injected"]
        check(any("engine.begin_document" in d for d in fault_details),
              "fault_injected detail did not decode the site hash: %r"
              % fault_details)

        # Non-bundles are rejected with exit code 2.
        not_bundle = os.path.join(tmp, "not_a_bundle.json")
        with open(not_bundle, "w", encoding="utf-8") as f:
            f.write('{"hello": 1}')
        proc = subprocess.run([cli, "diagnose", not_bundle],
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
        check(proc.returncode == 2,
              "diagnose accepted a non-bundle (rc=%d)" % proc.returncode)

        print("check_diag_schema: OK end-to-end (%s)" % cli)


# ---------------------------------------------------------- recovery report

RECOVERY_REPORT_FIELDS = (
    "snapshot_loaded", "snapshot_path", "snapshot_epoch", "snapshot_seq",
    "snapshot_entries", "snapshots_quarantined", "wal_segments_scanned",
    "wal_records_replayed", "wal_subscribes", "wal_unsubscribes",
    "wal_epoch_marks", "wal_bytes_truncated", "wal_segments_quarantined",
    "last_durable_seq", "issued_subscriptions", "live_subscriptions",
    "published_epoch",
)


def validate_recovery_report(report, source):
    """Validates the RecoveryReport JSON emitted by
    `xpred_cli restore --json` (see storage/recovery_report.h)."""
    check(isinstance(report, dict), "%s: report is not an object" % source)
    check(report.get("xpred_recovery_report") == 1,
          "%s: xpred_recovery_report magic must be 1" % source)
    for field in RECOVERY_REPORT_FIELDS:
        check(field in report, "%s: missing %r" % (source, field))
    check(isinstance(report["snapshot_loaded"], bool),
          "%s: snapshot_loaded is not a bool" % source)
    check(isinstance(report["snapshot_path"], str),
          "%s: snapshot_path is not a string" % source)
    for field in RECOVERY_REPORT_FIELDS:
        if field in ("snapshot_loaded", "snapshot_path"):
            continue
        check_uint(report, field, source)
    check(report["snapshot_loaded"] == bool(report["snapshot_path"]),
          "%s: snapshot_loaded disagrees with snapshot_path" % source)
    check(report["live_subscriptions"] <= report["issued_subscriptions"],
          "%s: more live than issued subscriptions" % source)
    check(report["wal_records_replayed"] ==
          report["wal_subscribes"] + report["wal_unsubscribes"] +
          report["wal_epoch_marks"],
          "%s: replayed-record kinds do not sum" % source)
    print("check_diag_schema: OK recovery report %s (%d records replayed, "
          "%d subscriptions)" % (source, report["wal_records_replayed"],
                                 report["issued_subscriptions"]))
    return report


def run_restore_end_to_end(cli):
    """Builds a small durable store with `xpred_cli snapshot`, restores
    it with `xpred_cli restore --json`, and validates the report."""
    with tempfile.TemporaryDirectory(prefix="xpred_restore_") as tmp:
        exprs = os.path.join(tmp, "exprs.txt")
        store = os.path.join(tmp, "store")
        with open(exprs, "w", encoding="utf-8") as f:
            f.write(subprocess.check_output(
                [cli, "generate-queries", "--dtd=nitf", "--count=50",
                 "--seed=11"], text=True))
        subprocess.check_call(
            [cli, "snapshot", "--store=" + store, "--exprs=" + exprs,
             "--quiet"])
        out = subprocess.check_output(
            [cli, "restore", "--store=" + store, "--json"], text=True)
        report = validate_recovery_report(json.loads(out),
                                          "restore output")
        check(report["snapshot_loaded"] is True,
              "snapshot command left no loadable snapshot")
        check(report["issued_subscriptions"] == 50,
              "restored %d subscriptions, want 50"
              % report["issued_subscriptions"])
        # Restore is idempotent and deterministic: a second run over
        # the untouched store must report byte-identical JSON.
        again = subprocess.check_output(
            [cli, "restore", "--store=" + store, "--json"], text=True)
        check(out == again, "restore JSON is not deterministic")
        print("check_diag_schema: OK restore end-to-end (%s)" % cli)


def main(argv):
    if len(argv) >= 2 and argv[0] == "--cli":
        run_cli_end_to_end(argv[1])
        return
    if len(argv) >= 2 and argv[0] == "--restore":
        run_restore_end_to_end(argv[1])
        return
    if len(argv) >= 2 and argv[0] == "--recovery-report":
        for path in argv[1:]:
            validate_recovery_report(load_json(path), path)
        return
    if len(argv) >= 2 and argv[0] == "--timeline":
        for path in argv[1:]:
            validate_timeline(path)
        return
    if not argv:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in argv:
        validate_bundle(path)


if __name__ == "__main__":
    main(sys.argv[1:])
