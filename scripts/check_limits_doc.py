#!/usr/bin/env python3
"""Checks that DESIGN.md documents the resource-governance surface.

Two registries in the source of truth are cross-checked against the
design document:

  * every fault-injection site declared in the `faultsite` namespace of
    src/common/fault_injection.h (the canonical registry) must appear
    verbatim in DESIGN.md — an undocumented site means chaos coverage
    the operators cannot reason about;
  * every ResourceLimits knob declared in src/common/limits.h must be
    named in DESIGN.md so the limits table cannot silently drift from
    the struct.

Usage:
    check_limits_doc.py [--repo-root DIR]

Exits non-zero with a per-item report when anything is missing.
"""

import argparse
import os
import re
import sys


def fail(msg):
    print("check_limits_doc: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def fault_sites(header_text):
    """Extracts site strings from the faultsite namespace."""
    match = re.search(r"namespace faultsite \{(.*?)\}  // namespace faultsite",
                      header_text, re.S)
    if not match:
        fail("could not locate the faultsite namespace in fault_injection.h")
    sites = re.findall(r'"([a-z_]+(?:\.[a-z_]+)+)"', match.group(1))
    if not sites:
        fail("faultsite namespace declares no sites (parse drift?)")
    return sites


def limit_knobs(header_text):
    """Extracts knob member names from the ResourceLimits struct."""
    match = re.search(r"struct ResourceLimits \{(.*?)\n\};", header_text, re.S)
    if not match:
        fail("could not locate struct ResourceLimits in limits.h")
    knobs = re.findall(r"^\s*(?:size_t|double|uint\d+_t)\s+(\w+)\s*=",
                       match.group(1), re.M)
    if not knobs:
        fail("ResourceLimits declares no knobs (parse drift?)")
    return knobs


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo-root", default=".")
    args = parser.parse_args()

    design_path = os.path.join(args.repo_root, "DESIGN.md")
    fault_header = os.path.join(args.repo_root,
                                "src/common/fault_injection.h")
    limits_header = os.path.join(args.repo_root, "src/common/limits.h")
    design = read(design_path)

    sites = fault_sites(read(fault_header))
    missing_sites = [s for s in sites if s not in design]
    knobs = limit_knobs(read(limits_header))
    missing_knobs = [k for k in knobs if k not in design]

    for site in missing_sites:
        print("check_limits_doc: undocumented fault site: %s" % site,
              file=sys.stderr)
    for knob in missing_knobs:
        print("check_limits_doc: undocumented limits knob: %s" % knob,
              file=sys.stderr)
    if missing_sites or missing_knobs:
        fail("DESIGN.md is missing %d fault site(s) and %d limit knob(s)"
             % (len(missing_sites), len(missing_knobs)))
    print("check_limits_doc: OK (%d fault sites, %d limit knobs documented "
          "in %s)" % (len(sites), len(knobs), design_path))


if __name__ == "__main__":
    main()
