#!/usr/bin/env python3
"""Validates the xpred live introspection plane (DESIGN.md §17).

Two modes:

  * file mode: validate a saved /statusz JSON document;
  * --cli mode (wired into ctest as `obs_endpoints_check`): launch
    `xpred_cli serve-obs` against a generated workload, scrape every
    endpoint over real HTTP while the filter loop runs, and validate

      - /metrics against the Prometheus exposition rules of
        check_metrics_schema.py,
      - /healthz and /readyz check-list JSON (names, kinds, details),
      - /statusz against the schema below,
      - /debug/workload, /debug/recorder (NDJSON), /debug/trace
        (including the ?doc= filter and its 400 on garbage),
      - 404/405 routing behavior,

    then re-launch with --stall-test and assert /healthz flips to 503
    naming the failing "watchdog" check in the JSON body.

Usage:
    check_statusz_schema.py statusz.json [statusz2.json ...]
    check_statusz_schema.py --cli path/to/xpred_cli
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_metrics_schema  # noqa: E402  (sibling module)

SERVING_RE = re.compile(r"^serving on (?P<host>[0-9.]+):(?P<port>\d+)$")


def fail(msg):
    print("check_statusz_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


# ---------------------------------------------------------------- statusz

def validate_statusz(source, doc):
    check(doc.get("service") == "xpred",
          "%s: service must be 'xpred'" % source)
    build = doc.get("build")
    check(isinstance(build, dict), "%s: missing build object" % source)
    for field in ("version", "build_type", "compiler"):
        check(isinstance(build.get(field), str) and build[field],
              "%s: build.%s missing or empty" % (source, field))
    check(build["build_type"] in ("optimized", "debug"),
          "%s: build.build_type %r not optimized|debug"
          % (source, build["build_type"]))
    check(isinstance(doc.get("uptime_seconds"), (int, float))
          and doc["uptime_seconds"] >= 0,
          "%s: uptime_seconds invalid" % source)
    check(isinstance(doc.get("metrics_publishes"), int)
          and doc["metrics_publishes"] >= 0,
          "%s: metrics_publishes invalid" % source)
    check(isinstance(doc.get("metrics_age_seconds"), (int, float)),
          "%s: metrics_age_seconds invalid" % source)
    server = doc.get("server")
    check(isinstance(server, dict), "%s: missing server object" % source)
    for field in ("accepted", "requests", "parse_errors",
                  "deadline_closes", "rejected_over_capacity"):
        check(isinstance(server.get(field), int) and server[field] >= 0,
              "%s: server.%s invalid" % (source, field))
    check(server["requests"] >= 1,
          "%s: server.requests must count this very request" % source)
    for section in ("gauges", "counters"):
        check(isinstance(doc.get(section), dict),
              "%s: missing %s object" % (source, section))
        for key, value in doc[section].items():
            check(isinstance(value, (int, float)),
                  "%s: %s[%r] not numeric" % (source, section, key))
    print("check_statusz_schema: OK statusz %s (%d gauges, %d counters)"
          % (source, len(doc["gauges"]), len(doc["counters"])))


def validate_statusz_file(path):
    with open(path, "r", encoding="utf-8") as f:
        validate_statusz(path, json.load(f))


# ----------------------------------------------------------- http helpers

def fetch(port, target, timeout=10):
    """GET the target; returns (status, body-bytes)."""
    url = "http://127.0.0.1:%d%s" % (port, target)
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as e:
        return e.code, e.read()


def fetch_json(port, target, expect_status=200):
    status, body = fetch(port, target)
    check(status == expect_status, "%s: expected HTTP %d, got %d: %r"
          % (target, expect_status, status, body[:200]))
    try:
        return json.loads(body)
    except json.JSONDecodeError as e:
        fail("%s: invalid JSON: %s" % (target, e))


def validate_health_body(target, doc, expect_ok):
    check(doc.get("status") == ("ok" if expect_ok else "unhealthy"),
          "%s: status %r" % (target, doc.get("status")))
    checks = doc.get("checks")
    check(isinstance(checks, list), "%s: missing checks list" % target)
    for i, entry in enumerate(checks):
        for field in ("name", "kind", "ok", "detail"):
            check(field in entry,
                  "%s: checks[%d] missing %r" % (target, i, field))
        check(entry["kind"] in ("liveness", "readiness"),
              "%s: checks[%d] bad kind %r" % (target, i, entry["kind"]))
    return checks


class ServeObs:
    """Context manager around one `xpred_cli serve-obs` process."""

    def __init__(self, cli, extra_flags):
        self.cli = cli
        self.flags = extra_flags
        self.process = None
        self.port = None

    def __enter__(self):
        self.process = subprocess.Popen(
            [self.cli, "serve-obs", "--port=0"] + self.flags,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        line = self.process.stdout.readline().strip()
        m = SERVING_RE.match(line)
        if m is None:
            self.process.kill()
            out, err = self.process.communicate()
            fail("serve-obs did not announce a port (got %r; stderr %r)"
                 % (line, err[:500]))
        self.port = int(m.group("port"))
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
        try:
            out, err = self.process.communicate(timeout=20)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.communicate()
            fail("serve-obs did not exit on SIGTERM")
        if exc_type is None:
            check(self.process.returncode == 0,
                  "serve-obs exited %d (stderr %r)"
                  % (self.process.returncode, err[:500]))


# ---------------------------------------------------------------- cli e2e

def check_endpoints(cli):
    flags = ["--dtd=nitf", "--subs=60", "--docs=4", "--batch-delay-ms=10",
             "--duration-ms=60000", "--seed=7", "--quiet"]
    with ServeObs(cli, flags) as server:
        port = server.port

        # Index lists every endpoint.
        status, body = fetch(port, "/")
        check(status == 200, "/ returned %d" % status)
        for endpoint in ("/metrics", "/healthz", "/readyz", "/statusz",
                         "/debug/workload", "/debug/recorder",
                         "/debug/trace"):
            check(endpoint.encode() in body,
                  "/ index does not list %s" % endpoint)

        # Let the filter loop publish a few metric snapshots first.
        time.sleep(0.5)

        # /metrics: full Prometheus exposition validation.
        status, metrics = fetch(port, "/metrics")
        check(status == 200, "/metrics returned %d" % status)
        check(b"xpred_documents_total" in metrics,
              "/metrics has no xpred_documents_total")
        with tempfile.NamedTemporaryFile("wb", suffix=".prom",
                                         delete=False) as f:
            f.write(metrics)
            prom_path = f.name
        try:
            check_metrics_schema.validate_prometheus(prom_path)
        finally:
            os.unlink(prom_path)

        # Health: live and ready while the loop is humming.
        validate_health_body("/healthz", fetch_json(port, "/healthz"),
                             expect_ok=True)
        ready = validate_health_body("/readyz", fetch_json(port, "/readyz"),
                                     expect_ok=True)
        check(any(c["name"] == "watchdog" for c in ready),
              "/readyz does not include the watchdog check")
        check(any(c["kind"] == "readiness" for c in ready),
              "/readyz includes no readiness-kind check")

        # /statusz schema, including live server counters.
        validate_statusz("/statusz", fetch_json(port, "/statusz"))

        # /debug/workload: the profiler report becomes visible at the
        # slow publication cadence (~0.5s); poll briefly.
        workload = None
        for _ in range(40):
            workload = fetch_json(port, "/debug/workload")
            if "schema_version" in workload:
                break
            time.sleep(0.1)
        check(workload is not None and "schema_version" in workload,
              "/debug/workload never published a report")
        check_metrics_schema.validate_workload("/debug/workload", workload)

        # /debug/recorder: NDJSON, header line first.
        status, recorder = fetch(port, "/debug/recorder")
        check(status == 200, "/debug/recorder returned %d" % status)
        lines = [l for l in recorder.decode().splitlines() if l]
        check(lines, "/debug/recorder is empty")
        header = json.loads(lines[0])
        check("recorder" in header and "events" in header["recorder"],
              "/debug/recorder header line malformed: %r" % lines[0])
        check(header["recorder"]["events"] == len(lines) - 1,
              "/debug/recorder event count %d != %d lines"
              % (header["recorder"]["events"], len(lines) - 1))
        for line in lines[1:3]:
            event = json.loads(line)
            for field in ("nanos", "thread", "type", "a", "b"):
                check(field in event,
                      "/debug/recorder event missing %r: %r" % (field, line))

        # /debug/trace: spans appear at the slow cadence too.
        trace = None
        for _ in range(40):
            trace = fetch_json(port, "/debug/trace")
            if trace.get("spans"):
                break
            time.sleep(0.1)
        check(trace.get("spans"), "/debug/trace never served spans")
        span = trace["spans"][0]
        for field in ("doc", "engine", "span", "start_ns", "dur_ns"):
            check(field in span, "/debug/trace span missing %r" % field)
        doc_id = span["doc"]
        filtered = fetch_json(port, "/debug/trace?doc=%d" % doc_id)
        check(filtered["spans"]
              and all(s["doc"] == doc_id for s in filtered["spans"]),
              "/debug/trace?doc=%d filter broken" % doc_id)
        status, _ = fetch(port, "/debug/trace?doc=bogus")
        check(status == 400, "/debug/trace?doc=bogus returned %d" % status)

        # Routing: unknown path 404; POST on a known path 405.
        status, _ = fetch(port, "/no-such-endpoint")
        check(status == 404, "unknown path returned %d" % status)
        request = urllib.request.Request(
            "http://127.0.0.1:%d/metrics" % port, data=b"x", method="POST")
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                status = response.status
        except urllib.error.HTTPError as e:
            status = e.code
        check(status == 405, "POST /metrics returned %d" % status)

    print("check_statusz_schema: OK endpoints (all 7 served and valid)")


def check_stall_flips_healthz(cli):
    flags = ["--dtd=nitf", "--subs=20", "--docs=2", "--batch-delay-ms=10",
             "--duration-ms=60000", "--stall-test", "--stall-ms=100",
             "--seed=7", "--quiet"]
    with ServeObs(cli, flags) as server:
        port = server.port
        # The phantom worker goes silent immediately; the watchdog needs
        # one stall window (100ms) plus a scan to notice.
        deadline = time.time() + 10
        doc = None
        while time.time() < deadline:
            status, body = fetch(port, "/healthz")
            if status == 503:
                doc = json.loads(body)
                break
            time.sleep(0.1)
        check(doc is not None, "/healthz never flipped to 503")
        checks = validate_health_body("/healthz", doc, expect_ok=False)
        failing = [c for c in checks if not c["ok"]]
        check(failing, "503 /healthz body lists no failing check")
        check(any(c["name"] == "watchdog" for c in failing),
              "failing check not named 'watchdog': %r" % failing)
        check(any("stalled" in c["detail"] for c in failing),
              "watchdog failure detail does not mention the stall: %r"
              % failing)
        # Liveness failures gate readiness too.
        status, _ = fetch(port, "/readyz")
        check(status == 503, "/readyz is %d while /healthz is 503" % status)
    print("check_statusz_schema: OK stall test (healthz flipped to 503 "
          "naming watchdog)")


def main(argv):
    if len(argv) >= 2 and argv[0] == "--cli":
        check_endpoints(argv[1])
        check_stall_flips_healthz(argv[1])
        return
    if not argv or argv[0].startswith("-"):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in argv:
        validate_statusz_file(path)


if __name__ == "__main__":
    main(sys.argv[1:])
