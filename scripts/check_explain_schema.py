#!/usr/bin/env python3
"""Validates `xpred_cli explain --json` output.

Schema: a single JSON object with schema_version 1, the expression and
its predicate encoding, the verdict (matched/total_paths/
first_matching_path), miss attribution (first_failing_predicate +
first_failing_text), and a per-path trace array whose entries carry
the publication, per-predicate occurrence rows, and the recorded
backtracking steps (try/reject/accept/backtrack/match).

Cross-field invariants enforced:

  * matched <=> first_matching_path >= 0;
  * a miss names a first failing predicate (index and text) and every
    traced path pinpoints its own failure;
  * a path's matched flag agrees with its trace: matched paths end in
    a "match" step (unless truncated), failed paths never contain one;
  * step kinds come from the known vocabulary and respect the chain
    constraint fields (reject steps carry a required_first).

Usage:
    check_explain_schema.py explain.json [explain2.json ...]
    check_explain_schema.py --cli path/to/xpred_cli

The --cli mode is the end-to-end check wired into ctest: it runs the
explain subcommand on a seeded match and a seeded miss, validates both
JSON documents, and checks the exit-code convention (0 match, 1 no
match, 2 error) plus the human-readable miss output naming the first
failing predicate.
"""

import json
import os
import subprocess
import sys
import tempfile

STEP_KINDS = {"try", "reject", "accept", "backtrack", "match"}


def fail(msg):
    print("check_explain_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


def validate_path(ctx, pe):
    for field in ("path", "publication", "matched", "structural_match",
                  "deferred_failed", "first_failing_predicate",
                  "steps_truncated", "predicates", "steps"):
        check(field in pe, "%s: missing %r" % (ctx, field))
    check(isinstance(pe["path"], str) and pe["path"],
          "%s: empty path" % ctx)
    check(isinstance(pe["publication"], str),
          "%s: publication not a string" % ctx)

    for i, ev in enumerate(pe["predicates"]):
        pctx = "%s predicates[%d]" % (ctx, i)
        for field in ("chain_pos", "pid", "text", "matched", "pairs"):
            check(field in ev, "%s: missing %r" % (pctx, field))
        check(ev["chain_pos"] == i,
              "%s: chain_pos %r != position %d" % (pctx, ev["chain_pos"], i))
        check(isinstance(ev["text"], str) and ev["text"],
              "%s: empty predicate text" % pctx)
        for pair in ev["pairs"]:
            check(isinstance(pair, list) and len(pair) == 2 and
                  all(isinstance(v, int) and v >= 1 for v in pair),
                  "%s: bad occurrence pair %r" % (pctx, pair))
        # A predicate with no occurrence rows did not match; rows imply
        # the row-level predicate held.
        check(ev["matched"] == bool(ev["pairs"]),
              "%s: matched=%r but pairs=%r" % (pctx, ev["matched"],
                                               ev["pairs"]))

    saw_match_step = False
    for i, step in enumerate(pe["steps"]):
        sctx = "%s steps[%d]" % (ctx, i)
        for field in ("kind", "chain_pos", "pair", "required_first"):
            check(field in step, "%s: missing %r" % (sctx, field))
        check(step["kind"] in STEP_KINDS,
              "%s: unknown step kind %r" % (sctx, step["kind"]))
        saw_match_step |= step["kind"] == "match"

    # The trace must agree with the verdict: a matched path's recorded
    # search ends in a match step (unless the cap cut it short), and a
    # failed path never records one.
    if pe["matched"] and pe["steps"] and not pe["steps_truncated"]:
        check(pe["steps"][-1]["kind"] == "match",
              "%s: matched path's trace does not end in a match step" % ctx)
    if not pe["structural_match"]:
        check(not saw_match_step,
              "%s: structurally failed path records a match step" % ctx)
    if not pe["matched"] and not pe["deferred_failed"]:
        check(pe["first_failing_predicate"] >= 0,
              "%s: failed path names no failing predicate" % ctx)


def validate(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(doc.get("schema_version") == 1,
          "%s: schema_version must be 1" % path)
    for field in ("expression", "encoding", "matched", "total_paths",
                  "first_matching_path", "first_failing_predicate",
                  "first_failing_text", "paths"):
        check(field in doc, "%s: missing top-level field %r" % (path, field))
    check(isinstance(doc["expression"], str) and doc["expression"],
          "%s: empty expression" % path)
    check(isinstance(doc["encoding"], str) and doc["encoding"],
          "%s: empty encoding" % path)
    check(isinstance(doc["paths"], list),
          "%s: paths not an array" % path)
    check(len(doc["paths"]) <= doc["total_paths"],
          "%s: more traced paths than total_paths" % path)

    if doc["matched"]:
        check(doc["first_matching_path"] >= 0,
              "%s: matched but first_matching_path < 0" % path)
        check(doc["first_matching_path"] < doc["total_paths"],
              "%s: first_matching_path out of range" % path)
    else:
        check(doc["first_matching_path"] == -1,
              "%s: miss must report first_matching_path -1" % path)
        if doc["paths"]:
            check(doc["first_failing_predicate"] >= 0,
                  "%s: miss names no first failing predicate" % path)
            check(doc["first_failing_text"],
                  "%s: miss has empty first_failing_text" % path)

    for i, pe in enumerate(doc["paths"]):
        validate_path("%s: paths[%d]" % (path, i), pe)
    print("check_explain_schema: OK %s (%s, %d/%d paths traced)"
          % (path, "match" if doc["matched"] else "miss",
             len(doc["paths"]), doc["total_paths"]))
    return doc


def run_cli_end_to_end(cli):
    with tempfile.TemporaryDirectory(prefix="xpred_explain_") as tmp:
        doc = os.path.join(tmp, "doc.xml")
        with open(doc, "w", encoding="utf-8") as f:
            f.write("<a><b><c/></b><b><d/></b></a>\n")

        def explain(xpath, *extra):
            proc = subprocess.run([cli, "explain", *extra, doc, xpath],
                                  stdout=subprocess.PIPE, text=True,
                                  timeout=120)
            return proc.returncode, proc.stdout

        # Seeded match: exit 0, valid JSON, verdict matched.
        code, out = explain("/a/b/c", "--json")
        check(code == 0, "match case exited %d, want 0" % code)
        match_json = os.path.join(tmp, "match.json")
        with open(match_json, "w", encoding="utf-8") as f:
            f.write(out)
        match_doc = validate(match_json)
        check(match_doc["matched"], "expected /a/b/c to match")
        check(any(pe["steps"] for pe in match_doc["paths"]),
              "match trace records no backtracking steps")

        # Seeded miss: exit 1, the JSON and the text output both name
        # the first failing predicate.
        code, out = explain("/a/b/e", "--json")
        check(code == 1, "miss case exited %d, want 1" % code)
        miss_json = os.path.join(tmp, "miss.json")
        with open(miss_json, "w", encoding="utf-8") as f:
            f.write(out)
        miss_doc = validate(miss_json)
        check(not miss_doc["matched"], "expected /a/b/e to miss")
        check(miss_doc["first_failing_predicate"] >= 0,
              "miss JSON names no first failing predicate")

        code, out = explain("/a/b/e")
        check(code == 1, "text miss case exited %d, want 1" % code)
        check("first failing predicate" in out,
              "text output does not name the first failing predicate")
        check("NO MATCH" in out, "text output lacks the verdict line")

        # Error case: nested paths are rejected with exit 2.
        code, _ = explain("/a[//q]/b", "--json")
        check(code == 2, "nested-path case exited %d, want 2" % code)
        print("check_explain_schema: OK end-to-end (%s)" % cli)


def main(argv):
    if len(argv) >= 2 and argv[0] == "--cli":
        run_cli_end_to_end(argv[1])
        return
    if not argv or any(a.startswith("-") for a in argv):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in argv:
        validate(path)


if __name__ == "__main__":
    main(sys.argv[1:])
