#!/usr/bin/env python3
"""Validates xpred differential-testing artifacts.

Two kinds of artifacts are checked:

  * `.xpredcase` regression-corpus files (CorpusStore): the
    `xpredcase 1` magic, known header keys, section order
    (document / expressions / expected / engine... / end), verdict
    lines that are 0 or 1 and agree in count with the expression
    list, and the `== end` truncation sentinel;
  * the JSON summary emitted by `xpred_fuzz`: schema_version,
    counters, the engine roster, and the per-case records.

Usage:
    check_case_schema.py case1.xpredcase [case2.xpredcase ...]
    check_case_schema.py --dir tests/testdata/corpus
    check_case_schema.py --json summary.json
    check_case_schema.py --fuzz path/to/xpred_fuzz
    check_case_schema.py --churn-fuzz path/to/xpred_fuzz
    check_case_schema.py --recovery path/to/xpred_fuzz

`.xpredcase` files come in three layouts: classic differential cases,
`mode: churn` live-subscription cases (document pool / op script /
expected match sets — see testing/churn_harness.h), and
`mode: recovery` crash/recovery cases (fsync policy + crash point
headers, op script, expected recovered subscription table — see
testing/recovery_harness.h); all are checked.

The --fuzz, --churn-fuzz, and --recovery modes are the end-to-end
checks wired into ctest: each runs a short deterministic fuzzing
session twice, requires byte-identical JSON (the determinism
contract), a zero-mismatch verdict, and a valid summary schema.
"""

import json
import os
import subprocess
import sys
import tempfile

MAGIC = "xpredcase 1"
HEADER_KEYS = {"seed", "dtd", "description", "mode",
               "fsync", "crash_site", "crash_visit"}
CHURN_OPS = ("sub ", "unsub ", "filter ")  # `publish` is bare.
RECOVERY_OPS = ("sub ", "unsub ")  # `publish`/`checkpoint` are bare.
FSYNC_POLICIES = {"never", "publish", "always"}
STORAGE_SITES = {"storage.wal.write", "storage.wal.fsync",
                 "storage.snapshot.rename"}

SUMMARY_COUNTERS = ("documents", "expressions", "verdicts",
                    "expr_mutations", "doc_mutations",
                    "removal_interleavings", "rejected_expressions")
CASE_KINDS = {"verdict", "status", "acceptance"}


def fail(msg):
    print("check_case_schema: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check(cond, msg):
    if not cond:
        fail(msg)


# -------------------------------------------------------------- .xpredcase

def validate_case(path):
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()  # Trailing newline, not an empty final line.
    check(lines and lines[0] == MAGIC,
          "%s: missing '%s' magic" % (path, MAGIC))

    i = 1
    mode = ""
    headers = {}
    while i < len(lines) and not lines[i].startswith("== "):
        line = lines[i]
        i += 1
        if not line:
            continue
        check(": " in line, "%s: malformed header line %r" % (path, line))
        key, value = line.split(": ", 1)
        check(key in HEADER_KEYS, "%s: unknown header key %r" % (path, key))
        headers[key] = value
        if key == "seed":
            check(value.isdigit(), "%s: non-numeric seed %r" % (path, value))
        elif key == "mode":
            check(value in ("churn", "recovery"),
                  "%s: unknown mode %r" % (path, value))
            mode = value
        elif key == "crash_visit":
            check(value.isdigit(),
                  "%s: non-numeric crash_visit %r" % (path, value))

    if mode != "recovery":
        for key in ("fsync", "crash_site", "crash_visit"):
            check(key not in headers,
                  "%s: %r header outside mode: recovery" % (path, key))
    if mode == "churn":
        validate_churn_case(path, lines, i)
        return
    if mode == "recovery":
        check(headers.get("fsync", "publish") in FSYNC_POLICIES,
              "%s: unknown fsync policy %r" % (path, headers.get("fsync")))
        if "crash_site" in headers:
            check(headers["crash_site"] in STORAGE_SITES,
                  "%s: unknown crash_site %r" % (path, headers["crash_site"]))
            check("crash_visit" in headers,
                  "%s: crash_site without crash_visit" % path)
        validate_recovery_case(path, lines, i)
        return

    def section(marker):
        nonlocal i
        check(i < len(lines) and lines[i] == marker,
              "%s: missing '%s' section" % (path, marker))
        i += 1
        body = []
        while i < len(lines) and not lines[i].startswith("== "):
            body.append(lines[i])
            i += 1
        return body

    document = section("== document")
    check(any(line.strip() for line in document),
          "%s: empty document section" % path)
    expressions = [line for line in section("== expressions") if line]

    def verdicts(body, where):
        out = [line for line in body if line]
        for v in out:
            check(v in ("0", "1"),
                  "%s: %s: bad verdict line %r" % (path, where, v))
        check(len(out) == len(expressions),
              "%s: %s: %d verdicts for %d expressions"
              % (path, where, len(out), len(expressions)))
        return out

    expected = [line for line in section("== expected") if line]
    if any(line.startswith("error: ") for line in expected):
        # Expected-error case: the document is poison by contract; a
        # single error line replaces the verdicts and expressions are
        # optional (usually absent).
        check(len(expected) == 1,
              "%s: expected section mixes error and verdicts" % path)
        check(expected[0][len("error: "):].strip(),
              "%s: empty expected error message" % path)
    else:
        check(expressions, "%s: no expressions" % path)
        verdicts(expected, "expected")

    engines = []
    while i < len(lines) and lines[i] != "== end":
        marker = lines[i]
        check(marker.startswith("== engine "),
              "%s: unexpected section %r" % (path, marker))
        engine = marker[len("== engine "):]
        check(engine, "%s: engine section without a label" % path)
        check(engine not in engines,
              "%s: duplicate engine section %r" % (path, engine))
        engines.append(engine)
        i += 1
        body = []
        while i < len(lines) and not lines[i].startswith("== "):
            body.append(lines[i])
            i += 1
        if any(line.startswith("error: ") for line in body):
            check(len([line for line in body if line]) == 1,
                  "%s: engine %s mixes error and verdicts" % (path, engine))
        else:
            verdicts(body, "engine %s" % engine)

    check(i < len(lines) and lines[i] == "== end",
          "%s: missing '== end' marker (truncated?)" % path)
    check(i == len(lines) - 1,
          "%s: trailing content after '== end'" % path)
    print("check_case_schema: OK case %s (%d expressions, %d engine "
          "sections)" % (path, len(expressions), len(engines)))


def validate_churn_case(path, lines, i):
    """Validates the section list of a `mode: churn` case: one or more
    document sections, a script of churn ops, and one expected line
    (space-separated sorted sids, or `-`) per `filter` op."""
    documents = 0
    while i < len(lines) and lines[i] == "== document":
        i += 1
        body = []
        while i < len(lines) and not lines[i].startswith("== "):
            body.append(lines[i])
            i += 1
        check(any(line.strip() for line in body),
              "%s: empty document section" % path)
        documents += 1
    check(documents, "%s: churn case without documents" % path)

    check(i < len(lines) and lines[i] == "== script",
          "%s: missing '== script' section" % path)
    i += 1
    filter_ops = 0
    script_ops = 0
    while i < len(lines) and not lines[i].startswith("== "):
        line = lines[i]
        i += 1
        if not line:
            continue
        check(line == "publish" or line.startswith(CHURN_OPS),
              "%s: bad churn script line %r" % (path, line))
        if line.startswith(("unsub ", "filter ")):
            check(line.split(" ", 1)[1].isdigit(),
                  "%s: non-numeric operand in %r" % (path, line))
        if line.startswith("filter "):
            filter_ops += 1
        script_ops += 1
    check(script_ops, "%s: empty churn script" % path)

    check(i < len(lines) and lines[i] == "== expected",
          "%s: missing '== expected' section" % path)
    i += 1
    expected = 0
    while i < len(lines) and not lines[i].startswith("== "):
        line = lines[i]
        i += 1
        if not line:
            continue
        if line != "-":
            sids = line.split(" ")
            check(all(s.isdigit() for s in sids),
                  "%s: bad expected-match line %r" % (path, line))
            check(sids == sorted(sids, key=int),
                  "%s: expected matches not sorted in %r" % (path, line))
        expected += 1
    check(expected == filter_ops,
          "%s: %d expected lines for %d filter ops"
          % (path, expected, filter_ops))

    check(i < len(lines) and lines[i] == "== end",
          "%s: missing '== end' marker (truncated?)" % path)
    check(i == len(lines) - 1,
          "%s: trailing content after '== end'" % path)
    print("check_case_schema: OK churn case %s (%d documents, %d ops, "
          "%d filter ops)" % (path, documents, script_ops, filter_ops))


def validate_recovery_case(path, lines, i):
    """Validates the section list of a `mode: recovery` case: one or
    more document sections, a script of durable-store ops, and the
    expected recovered subscription table (live/dead lines)."""
    documents = 0
    while i < len(lines) and lines[i] == "== document":
        i += 1
        body = []
        while i < len(lines) and not lines[i].startswith("== "):
            body.append(lines[i])
            i += 1
        check(any(line.strip() for line in body),
              "%s: empty document section" % path)
        documents += 1
    check(documents, "%s: recovery case without documents" % path)

    check(i < len(lines) and lines[i] == "== script",
          "%s: missing '== script' section" % path)
    i += 1
    script_ops = 0
    while i < len(lines) and not lines[i].startswith("== "):
        line = lines[i]
        i += 1
        if not line:
            continue
        check(line in ("publish", "checkpoint")
              or line.startswith(RECOVERY_OPS),
              "%s: bad recovery script line %r" % (path, line))
        if line.startswith("unsub "):
            check(line.split(" ", 1)[1].isdigit(),
                  "%s: non-numeric operand in %r" % (path, line))
        script_ops += 1
    check(script_ops, "%s: empty recovery script" % path)

    check(i < len(lines) and lines[i] == "== expected",
          "%s: missing '== expected' section" % path)
    i += 1
    table_lines = 0
    while i < len(lines) and not lines[i].startswith("== "):
        line = lines[i]
        i += 1
        if not line:
            continue
        check(line.startswith(("live ", "dead ")),
              "%s: bad expected-table line %r" % (path, line))
        check(line.split(" ", 1)[1].strip(),
              "%s: expected-table line without an expression" % path)
        table_lines += 1

    check(i < len(lines) and lines[i] == "== end",
          "%s: missing '== end' marker (truncated?)" % path)
    check(i == len(lines) - 1,
          "%s: trailing content after '== end'" % path)
    print("check_case_schema: OK recovery case %s (%d documents, %d ops, "
          "%d table lines)" % (path, documents, script_ops, table_lines))


def validate_dir(directory):
    cases = sorted(name for name in os.listdir(directory)
                   if name.endswith(".xpredcase"))
    check(cases, "%s: no .xpredcase files" % directory)
    for name in cases:
        validate_case(os.path.join(directory, name))
    print("check_case_schema: OK corpus %s (%d cases)"
          % (directory, len(cases)))


# ---------------------------------------------------------------- summary

CHURN_COUNTERS = ("scripts", "ops", "filters", "subscribes",
                  "unsubscribes", "epochs_published", "minimize_probes")
RECOVERY_COUNTERS = ("scripts", "ops", "crash_points", "crashes_fired",
                     "recoveries", "torn_tails", "records_replayed")


def validate_recovery_summary(path, doc):
    """Validates the JSON summary of an `xpred_fuzz --recovery` session."""
    for field in ("seed", "runs_requested", "runs_executed", "mismatches"):
        check(isinstance(doc.get(field), int) and doc[field] >= 0,
              "%s: missing or negative %r" % (path, field))
    check(doc.get("fsync") in FSYNC_POLICIES,
          "%s: unknown fsync policy %r" % (path, doc.get("fsync")))
    counters = doc.get("counters")
    check(isinstance(counters, dict), "%s: missing counters" % path)
    for key in RECOVERY_COUNTERS:
        check(isinstance(counters.get(key), int) and counters[key] >= 0,
              "%s: counter %r missing or negative" % (path, key))
    check(counters["scripts"] == doc["runs_executed"],
          "%s: script count disagrees with runs_executed" % path)
    check(counters["recoveries"] == counters["crash_points"],
          "%s: every crash point must recover" % path)
    sites = doc.get("sites")
    check(isinstance(sites, list), "%s: missing sites list" % path)
    seen_sites = set()
    for idx, site in enumerate(sites):
        where = "%s: sites[%d]" % (path, idx)
        check(site.get("site") in STORAGE_SITES,
              "%s: unknown site %r" % (where, site.get("site")))
        check(site["site"] not in seen_sites,
              "%s: duplicate site entry" % where)
        seen_sites.add(site["site"])
        for field in ("crash_points", "mismatches"):
            check(isinstance(site.get(field), int) and site[field] >= 0,
                  "%s: missing or negative %r" % (where, field))
    if counters["crash_points"]:
        check(seen_sites == STORAGE_SITES,
              "%s: crash points must cover every storage site (got %s)"
              % (path, sorted(seen_sites)))
    check(doc.get("status") in ("agree", "diverged"),
          "%s: status must be agree|diverged" % path)
    check((doc["status"] == "agree") == (doc["mismatches"] == 0),
          "%s: status disagrees with mismatch count" % path)
    cases = doc.get("cases")
    check(isinstance(cases, list), "%s: missing cases list" % path)
    check(len(cases) <= doc["mismatches"],
          "%s: more case records than mismatches" % path)
    for idx, record in enumerate(cases):
        where = "%s: cases[%d]" % (path, idx)
        for field in ("run", "seed", "crash_site", "crash_visit",
                      "divergence", "file"):
            check(field in record, "%s: missing %r" % (where, field))
    print("check_case_schema: OK recovery summary %s (%d runs, %d crash "
          "points, %d mismatches)"
          % (path, doc["runs_executed"], counters["crash_points"],
             doc["mismatches"]))
    return doc


def validate_churn_summary(path, doc):
    """Validates the JSON summary of an `xpred_fuzz --churn` session."""
    for field in ("seed", "runs_requested", "runs_executed", "mismatches"):
        check(isinstance(doc.get(field), int) and doc[field] >= 0,
              "%s: missing or negative %r" % (path, field))
    check(doc["runs_executed"] <= doc["runs_requested"],
          "%s: executed more runs than requested" % path)
    counters = doc.get("counters")
    check(isinstance(counters, dict), "%s: missing counters" % path)
    for key in CHURN_COUNTERS:
        check(isinstance(counters.get(key), int) and counters[key] >= 0,
              "%s: counter %r missing or negative" % (path, key))
    check(counters["scripts"] == doc["runs_executed"],
          "%s: script count disagrees with runs_executed" % path)
    check(doc.get("status") in ("agree", "diverged"),
          "%s: status must be agree|diverged" % path)
    check((doc["status"] == "agree") == (doc["mismatches"] == 0),
          "%s: status disagrees with mismatch count" % path)
    cases = doc.get("cases")
    check(isinstance(cases, list), "%s: missing cases list" % path)
    check(len(cases) <= doc["mismatches"],
          "%s: more case records than mismatches" % path)
    for idx, record in enumerate(cases):
        where = "%s: cases[%d]" % (path, idx)
        for field in ("run", "seed", "dtd", "op_index", "epoch", "doc",
                      "ops_before", "ops_after", "file"):
            check(field in record, "%s: missing %r" % (where, field))
        check(record["ops_after"] <= record["ops_before"],
              "%s: minimization grew the script" % where)
    print("check_case_schema: OK churn summary %s (%d runs, %d mismatches)"
          % (path, doc["runs_executed"], doc["mismatches"]))
    return doc


def validate_summary(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    check(doc.get("schema_version") == 1,
          "%s: schema_version must be 1" % path)
    check(doc.get("tool") == "xpred_fuzz", "%s: tool must be xpred_fuzz"
          % path)
    if doc.get("mode") == "churn":
        return validate_churn_summary(path, doc)
    if doc.get("mode") == "recovery":
        return validate_recovery_summary(path, doc)
    for field in ("seed", "runs_requested", "runs_executed", "mismatches"):
        check(isinstance(doc.get(field), int) and doc[field] >= 0,
              "%s: missing or negative %r" % (path, field))
    check(doc["runs_executed"] <= doc["runs_requested"],
          "%s: executed more runs than requested" % path)
    check(isinstance(doc.get("engines"), list) and doc["engines"],
          "%s: missing engine roster" % path)
    check(len(set(doc["engines"])) == len(doc["engines"]),
          "%s: duplicate engine labels in roster" % path)
    counters = doc.get("counters")
    check(isinstance(counters, dict), "%s: missing counters" % path)
    for key in SUMMARY_COUNTERS:
        check(isinstance(counters.get(key), int) and counters[key] >= 0,
              "%s: counter %r missing or negative" % (path, key))
    check(doc.get("status") in ("agree", "diverged"),
          "%s: status must be agree|diverged" % path)
    check((doc["status"] == "agree") == (doc["mismatches"] == 0),
          "%s: status disagrees with mismatch count" % path)
    cases = doc.get("cases")
    check(isinstance(cases, list), "%s: missing cases list" % path)
    check(len(cases) <= doc["mismatches"],
          "%s: more case records than mismatches" % path)
    for idx, record in enumerate(cases):
        where = "%s: cases[%d]" % (path, idx)
        for field in ("engine", "kind", "document", "expressions",
                      "expected"):
            check(field in record, "%s: missing %r" % (where, field))
        check(record["kind"] in CASE_KINDS,
              "%s: unknown kind %r" % (where, record["kind"]))
        check(len(record["expected"]) == len(record["expressions"]),
              "%s: expected/expressions length mismatch" % where)
    print("check_case_schema: OK summary %s (%d engines, %d runs, "
          "%d mismatches)" % (path, len(doc["engines"]),
                              doc["runs_executed"], doc["mismatches"]))
    return doc


# --------------------------------------------------------------- fuzz e2e

def run_fuzz_end_to_end(fuzz):
    with tempfile.TemporaryDirectory(prefix="xpred_fuzz_") as tmp:
        a = os.path.join(tmp, "a.json")
        b = os.path.join(tmp, "b.json")
        args = ["--runs", "200", "--seed", "1", "--quiet"]
        subprocess.check_call([fuzz] + args + ["--json", a])
        # Second run uses the --key=value spelling deliberately: flag
        # syntax must not leak into the output.
        subprocess.check_call(
            [fuzz, "--runs=200", "--seed=1", "--quiet", "--json=" + b])
        with open(a, "rb") as fa, open(b, "rb") as fb:
            check(fa.read() == fb.read(),
                  "same seed produced different JSON (determinism broken)")
        doc = validate_summary(a)
        check(doc["mismatches"] == 0,
              "engines diverged on the smoke workload: %s"
              % json.dumps(doc["cases"])[:2000])
        check(doc["runs_executed"] == 200, "smoke run did not finish")
        print("check_case_schema: OK end-to-end (%s)" % fuzz)


def run_churn_fuzz_end_to_end(fuzz):
    with tempfile.TemporaryDirectory(prefix="xpred_churn_") as tmp:
        a = os.path.join(tmp, "a.json")
        b = os.path.join(tmp, "b.json")
        args = ["--churn", "--runs", "25", "--seed", "1", "--quiet"]
        subprocess.check_call([fuzz] + args + ["--json", a])
        subprocess.check_call(
            [fuzz, "--churn", "--runs=25", "--seed=1", "--quiet",
             "--json=" + b])
        with open(a, "rb") as fa, open(b, "rb") as fb:
            check(fa.read() == fb.read(),
                  "same seed produced different churn JSON "
                  "(determinism broken)")
        doc = validate_summary(a)
        check(doc.get("mode") == "churn", "churn run missing mode marker")
        check(doc["mismatches"] == 0,
              "live filter diverged from the epoch oracle: %s"
              % json.dumps(doc["cases"])[:2000])
        check(doc["runs_executed"] == 25, "churn smoke run did not finish")
        print("check_case_schema: OK churn end-to-end (%s)" % fuzz)


def run_recovery_fuzz_end_to_end(fuzz):
    with tempfile.TemporaryDirectory(prefix="xpred_recovery_") as tmp:
        a = os.path.join(tmp, "a.json")
        b = os.path.join(tmp, "b.json")
        args = ["--recovery", "--runs", "3", "--seed", "1",
                "--crash-points", "3", "--quiet"]
        subprocess.check_call([fuzz] + args + ["--json", a])
        subprocess.check_call(
            [fuzz, "--recovery", "--runs=3", "--seed=1",
             "--crash-points=3", "--quiet", "--json=" + b])
        with open(a, "rb") as fa, open(b, "rb") as fb:
            check(fa.read() == fb.read(),
                  "same seed produced different recovery JSON "
                  "(determinism broken)")
        doc = validate_summary(a)
        check(doc.get("mode") == "recovery",
              "recovery run missing mode marker")
        check(doc["mismatches"] == 0,
              "recovered index diverged from the durable-prefix oracle: %s"
              % json.dumps(doc["cases"])[:2000])
        check(doc["counters"]["crash_points"] > 0,
              "recovery smoke run exercised no crash points")
        check(doc["counters"]["torn_tails"] > 0,
              "recovery smoke run never salvaged a torn tail")
        print("check_case_schema: OK recovery end-to-end (%s)" % fuzz)


def main(argv):
    if len(argv) >= 2 and argv[0] == "--fuzz":
        run_fuzz_end_to_end(argv[1])
        return
    if len(argv) >= 2 and argv[0] == "--churn-fuzz":
        run_churn_fuzz_end_to_end(argv[1])
        return
    if len(argv) >= 2 and argv[0] == "--recovery":
        run_recovery_fuzz_end_to_end(argv[1])
        return
    if len(argv) >= 2 and argv[0] == "--dir":
        validate_dir(argv[1])
        return
    if not argv:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate = validate_case
    seen_file = False
    for arg in argv:
        if arg == "--json":
            validate = validate_summary
        elif arg.startswith("-"):
            print("unknown option %r" % arg, file=sys.stderr)
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        else:
            validate(arg)
            seen_file = True
    if not seen_file:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv[1:])
