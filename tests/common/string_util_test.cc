#include "common/string_util.h"

#include "gtest/gtest.h"

namespace xpred {
namespace {

TEST(SplitTest, BasicSplitting) {
  auto pieces = Split("a/b/c", '/');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitTest, EmptyPiecesKept) {
  auto pieces = Split("a//b", '/');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(Split("", '/').size(), 1u);
  EXPECT_EQ(Split("/", '/').size(), 2u);
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TrimTest, TrimsWhitespace) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "el"));
}

TEST(ParseDoubleTest, ValidNumbers) {
  EXPECT_EQ(ParseDouble("3.5"), 3.5);
  EXPECT_EQ(ParseDouble("-2"), -2.0);
  EXPECT_EQ(ParseDouble("0"), 0.0);
  EXPECT_EQ(ParseDouble("1e3"), 1000.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble(" 1").has_value());
}

TEST(ParseUintTest, ValidNumbers) {
  EXPECT_EQ(ParseUint("0"), 0u);
  EXPECT_EQ(ParseUint("123456789"), 123456789u);
  EXPECT_EQ(ParseUint("18446744073709551615"), UINT64_MAX);
}

TEST(ParseUintTest, Invalid) {
  EXPECT_FALSE(ParseUint("").has_value());
  EXPECT_FALSE(ParseUint("-1").has_value());
  EXPECT_FALSE(ParseUint("12a").has_value());
  // Overflow.
  EXPECT_FALSE(ParseUint("18446744073709551616").has_value());
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  EXPECT_EQ(StringPrintf("%05u", 42u), "00042");
}

}  // namespace
}  // namespace xpred
