#include "common/arena.h"

#include <cstring>

#include "gtest/gtest.h"

namespace xpred {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
  Arena arena;
  int* a = arena.New<int>(1);
  int* b = arena.New<int>(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  *a = 99;
  EXPECT_EQ(*b, 2);
}

TEST(ArenaTest, AlignmentHonored) {
  Arena arena;
  arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  arena.Allocate(3, 1);
  void* p16 = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
}

TEST(ArenaTest, GrowsAcrossBlocks) {
  Arena arena(/*block_size=*/128);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xAB, 64);
  }
  EXPECT_GE(arena.bytes_used(), 6400u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_size=*/64);
  void* big = arena.Allocate(10000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 10000);
  // Subsequent small allocations still work.
  void* small = arena.Allocate(8);
  EXPECT_NE(small, nullptr);
}

TEST(ArenaTest, CopyStringNulTerminates) {
  Arena arena;
  const char* copy = arena.CopyString("hello", 5);
  EXPECT_STREQ(copy, "hello");
  const char* empty = arena.CopyString("", 0);
  EXPECT_STREQ(empty, "");
}

TEST(ArenaTest, ByteAccountingMonotone) {
  Arena arena;
  size_t before = arena.bytes_used();
  arena.Allocate(100);
  EXPECT_EQ(arena.bytes_used(), before + 100);
}

}  // namespace
}  // namespace xpred
