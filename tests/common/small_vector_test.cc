#include "common/small_vector.h"

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace xpred::common {
namespace {

uint64_t HeapAllocations() { return detail::SmallVectorHeapAllocations(); }

TEST(SmallVectorTest, StartsInlineAndEmpty) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.is_inline());
}

TEST(SmallVectorTest, NoHeapAllocationUpToInlineCapacity) {
  const uint64_t before = HeapAllocations();
  SmallVector<int, 8> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  // The hot-path guarantee the matcher relies on: filling up to N
  // elements never touches the heap.
  EXPECT_EQ(HeapAllocations(), before);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVectorTest, SpillsToHeapBeyondInlineCapacity) {
  const uint64_t before = HeapAllocations();
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_GT(HeapAllocations(), before);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<size_t>(i)], i);
}

TEST(SmallVectorTest, InitializerListAndEquality) {
  SmallVector<int, 4> a = {1, 2, 3};
  SmallVector<int, 4> b = {1, 2, 3};
  SmallVector<int, 4> c = {1, 2, 4};
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVectorTest, CopyPreservesValues) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.push_back("beta");
  v.push_back("gamma");  // Spills.
  SmallVector<std::string, 2> copy(v);
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[0], "alpha");
  EXPECT_EQ(copy[2], "gamma");
  copy[0] = "mutated";
  EXPECT_EQ(v[0], "alpha");
  SmallVector<std::string, 2> assigned;
  assigned = v;
  EXPECT_EQ(assigned[1], "beta");
}

TEST(SmallVectorTest, MoveStealsHeapStorage) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const int* heap_data = v.data();
  SmallVector<int, 2> moved(std::move(v));
  // Heap-backed move is a pointer steal — no element copies.
  EXPECT_EQ(moved.data(), heap_data);
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(v.is_inline());
  v.push_back(42);  // Reusable after move.
  EXPECT_EQ(v[0], 42);
}

TEST(SmallVectorTest, MoveInlineMovesElements) {
  SmallVector<std::string, 4> v;
  v.push_back("abc");
  SmallVector<std::string, 4> moved(std::move(v));
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(moved[0], "abc");
  EXPECT_TRUE(moved.is_inline());
}

TEST(SmallVectorTest, ClearKeepsCapacity) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const size_t cap = v.capacity();
  const uint64_t before = HeapAllocations();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  // Refilling to the old size allocates nothing — the pooling
  // behavior the per-path OccList reuse depends on.
  for (int i = 0; i < 50; ++i) v.push_back(i);
  EXPECT_EQ(HeapAllocations(), before);
}

TEST(SmallVectorTest, ResizeAndPopBack) {
  SmallVector<std::string, 2> v;
  v.resize(5, "x");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], "x");
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
  v.pop_back();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, NonTrivialDestructorsRun) {
  // Destruction correctness for non-trivial types: no leaks under
  // ASan, values survive growth.
  SmallVector<std::vector<int>, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(std::vector<int>(100, i));
  EXPECT_EQ(v[19][0], 19);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, IterationMatchesIndices) {
  SmallVector<int, 4> v = {5, 6, 7};
  int expected = 5;
  for (int x : v) EXPECT_EQ(x, expected++);
  EXPECT_EQ(v.front(), 5);
  EXPECT_EQ(v.back(), 7);
}

TEST(SmallVectorTest, ReserveSpillsOnce) {
  const uint64_t before = HeapAllocations();
  SmallVector<int, 2> v;
  v.reserve(100);
  EXPECT_EQ(HeapAllocations(), before + 1);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(HeapAllocations(), before + 1);
}

}  // namespace
}  // namespace xpred::common
