#include "common/interner.h"

#include "gtest/gtest.h"

namespace xpred {
namespace {

TEST(InternerTest, DenseIdsInFirstSeenOrder) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("b"), 1u);
  EXPECT_EQ(interner.Intern("a"), 0u);
  EXPECT_EQ(interner.Intern("c"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, LookupNeverAllocates) {
  Interner interner;
  interner.Intern("known");
  EXPECT_EQ(interner.Lookup("known"), 0u);
  EXPECT_EQ(interner.Lookup("unknown"), kInvalidSymbol);
  EXPECT_EQ(interner.size(), 1u);  // Lookup did not intern.
}

TEST(InternerTest, NameRoundTrip) {
  Interner interner;
  SymbolId a = interner.Intern("alpha");
  SymbolId b = interner.Intern("beta");
  EXPECT_EQ(interner.Name(a), "alpha");
  EXPECT_EQ(interner.Name(b), "beta");
}

TEST(InternerTest, EmptyStringIsValid) {
  Interner interner;
  SymbolId e = interner.Intern("");
  EXPECT_EQ(interner.Lookup(""), e);
  EXPECT_EQ(interner.Name(e), "");
}

TEST(InternerTest, ManySymbols) {
  Interner interner;
  for (int i = 0; i < 1000; ++i) {
    std::string name = "sym" + std::to_string(i);
    EXPECT_EQ(interner.Intern(name), static_cast<SymbolId>(i));
  }
  EXPECT_EQ(interner.size(), 1000u);
  EXPECT_EQ(interner.Lookup("sym500"), 500u);
  EXPECT_EQ(interner.Name(999), "sym999");
}

}  // namespace
}  // namespace xpred
