// FaultInjector unit coverage: deterministic firing (byte-identical
// journals across runs with the same seed and workload), period/offset
// scheduling, probability coin flips, input truncation, and the
// install/uninstall contract of XPRED_FAULT_POINT.

#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "common/status.h"

namespace xpred {
namespace {

/// A function with a fault point, standing in for library code.
Status GuardedOperation() {
  XPRED_FAULT_POINT(faultsite::kMatcherProcessPath);
  return Status::OK();
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  // Tests install process-global injectors; always uninstall so a
  // failure cannot poison later tests.
  void TearDown() override { FaultInjector::Install(nullptr); }
};

TEST_F(FaultInjectionTest, NoInjectorMeansNoFaults) {
  ASSERT_EQ(FaultInjector::Installed(), nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
}

TEST_F(FaultInjectionTest, InstalledInjectorWithoutRulesIsANoOp) {
  FaultInjector injector(42);
  FaultInjector::Install(&injector);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
  EXPECT_TRUE(injector.journal().empty());
  EXPECT_EQ(injector.visits(faultsite::kMatcherProcessPath), 100u);
}

TEST_F(FaultInjectionTest, PeriodAndOffsetScheduleFaults) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kMatcherProcessPath);
  rule.code = StatusCode::kInternal;
  rule.period = 3;
  rule.offset = 2;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  // Visits 0..8: fire at 2, 5, 8.
  std::vector<int> failed;
  for (int i = 0; i < 9; ++i) {
    if (!GuardedOperation().ok()) failed.push_back(i);
  }
  EXPECT_EQ(failed, (std::vector<int>{2, 5, 8}));
  EXPECT_EQ(injector.journal().size(), 3u);
}

TEST_F(FaultInjectionTest, FiredStatusCarriesConfiguredCodeAndMessage) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kMatcherProcessPath);
  rule.code = StatusCode::kResourceExhausted;
  rule.message = "synthetic resource failure";
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  Status st = GuardedOperation();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(st.message(), "synthetic resource failure");
}

TEST_F(FaultInjectionTest, DeadlineExpiryRuleSimulatesTimeout) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kMatcherProcessPath);
  rule.kind = FaultInjector::FaultKind::kDeadlineExpiry;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  Status st = GuardedOperation();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, JournalIsByteIdenticalAcrossRuns) {
  auto run_workload = [](FaultInjector* injector) {
    FaultInjector::Install(injector);
    for (int i = 0; i < 200; ++i) {
      GuardedOperation().ok();  // Outcome recorded via the journal.
      injector->Check(faultsite::kYFilterTraverse).ok();
    }
    FaultInjector::Install(nullptr);
  };
  auto make_rules = [](FaultInjector* injector) {
    FaultInjector::Rule a;
    a.site = std::string(faultsite::kMatcherProcessPath);
    a.period = 7;
    a.probability = 0.5;
    injector->AddRule(a);
    FaultInjector::Rule b;
    b.site = std::string(faultsite::kYFilterTraverse);
    b.kind = FaultInjector::FaultKind::kDeadlineExpiry;
    b.period = 11;
    b.offset = 3;
    injector->AddRule(b);
  };

  FaultInjector first(1234);
  make_rules(&first);
  run_workload(&first);

  FaultInjector second(1234);
  make_rules(&second);
  run_workload(&second);

  ASSERT_FALSE(first.journal().empty());
  EXPECT_EQ(first.journal(), second.journal());

  // Same rules under a different seed must flip some probabilistic
  // coins differently (0.5 over ~28 scheduled firings).
  FaultInjector other_seed(99);
  make_rules(&other_seed);
  run_workload(&other_seed);
  EXPECT_NE(first.journal(), other_seed.journal());
}

TEST_F(FaultInjectionTest, ResetClearsVisitsAndJournalButKeepsRules) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kMatcherProcessPath);
  rule.offset = 1;
  rule.period = 1000;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  EXPECT_TRUE(GuardedOperation().ok());    // Visit 0.
  EXPECT_FALSE(GuardedOperation().ok());   // Visit 1: fires.
  injector.Reset();
  EXPECT_EQ(injector.visits(faultsite::kMatcherProcessPath), 0u);
  EXPECT_TRUE(injector.journal().empty());
  EXPECT_TRUE(GuardedOperation().ok());    // Visit 0 again.
  EXPECT_FALSE(GuardedOperation().ok());   // Visit 1: same schedule.
}

TEST_F(FaultInjectionTest, ZeroProbabilityNeverFires) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kMatcherProcessPath);
  rule.probability = 0.0;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
  EXPECT_TRUE(injector.journal().empty());
}

TEST_F(FaultInjectionTest, TruncationTrimsInputAndJournals) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kParserInput);
  rule.kind = FaultInjector::FaultKind::kTruncateInput;
  rule.truncate_to = 4;
  injector.AddRule(rule);

  std::string backing = "<a><b/></a>";
  std::string_view text = backing;
  EXPECT_TRUE(injector.MaybeTruncate(faultsite::kParserInput, &text));
  EXPECT_EQ(text, "<a><");
  ASSERT_EQ(injector.journal().size(), 1u);
  EXPECT_NE(injector.journal()[0].find(faultsite::kParserInput),
            std::string::npos);
}

TEST_F(FaultInjectionTest, TruncationRulesDoNotFireAtStatusCheckpoints) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kMatcherProcessPath);
  rule.kind = FaultInjector::FaultKind::kTruncateInput;
  rule.truncate_to = 0;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultInjectionTest, RulesOnlyAffectTheirOwnSite) {
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kYFilterTraverse);
  injector.AddRule(rule);
  FaultInjector::Install(&injector);
  EXPECT_TRUE(GuardedOperation().ok());  // Different site: untouched.
  EXPECT_FALSE(injector.Check(faultsite::kYFilterTraverse).ok());
}

}  // namespace
}  // namespace xpred
