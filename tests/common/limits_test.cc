// Table-driven coverage of every ResourceLimits knob: consumption at
// the limit must pass, one past the limit must fail with
// kResourceExhausted, and a disarmed budget must never fail. The
// deadline knob (wall clock, not a counter) is exercised separately.

#include <string>

#include "gtest/gtest.h"

#include "common/limits.h"
#include "common/status.h"

namespace xpred {
namespace {

TEST(ResourceLimitsTest, DefaultKeepsHistoricalBehavior) {
  ResourceLimits limits;
  EXPECT_EQ(limits.max_element_depth, 512u);
  EXPECT_EQ(limits.max_document_bytes, 0u);
  EXPECT_EQ(limits.max_attributes_per_element, 0u);
  EXPECT_EQ(limits.max_extracted_paths, 0u);
  EXPECT_EQ(limits.max_entity_expansions, 0u);
  EXPECT_EQ(limits.deadline_ms, 0);
  EXPECT_TRUE(limits.any_enabled());
}

TEST(ResourceLimitsTest, UnlimitedDisablesEveryGuard) {
  EXPECT_FALSE(ResourceLimits::Unlimited().any_enabled());
}

TEST(ResourceLimitsTest, ProductionEnablesEveryGuard) {
  ResourceLimits limits = ResourceLimits::Production();
  EXPECT_GT(limits.max_document_bytes, 0u);
  EXPECT_GT(limits.max_element_depth, 0u);
  EXPECT_GT(limits.max_attributes_per_element, 0u);
  EXPECT_GT(limits.max_extracted_paths, 0u);
  EXPECT_GT(limits.max_entity_expansions, 0u);
  EXPECT_GT(limits.deadline_ms, 0);
}

struct KnobCase {
  const char* name;
  /// Sets the knob under test to \p value on \p limits.
  void (*set)(ResourceLimits* limits, size_t value);
  /// Consumes/checks \p amount against an armed budget.
  Status (*probe)(ExecBudget* budget, size_t amount);
};

const KnobCase kKnobs[] = {
    {"document_bytes",
     [](ResourceLimits* l, size_t v) { l->max_document_bytes = v; },
     [](ExecBudget* b, size_t amount) {
       return b->CheckDocumentBytes(amount);
     }},
    {"element_depth",
     [](ResourceLimits* l, size_t v) { l->max_element_depth = v; },
     [](ExecBudget* b, size_t amount) { return b->CheckDepth(amount); }},
    {"attributes_per_element",
     [](ResourceLimits* l, size_t v) { l->max_attributes_per_element = v; },
     [](ExecBudget* b, size_t amount) {
       return b->CheckAttributeCount(amount);
     }},
    {"extracted_paths",
     [](ResourceLimits* l, size_t v) { l->max_extracted_paths = v; },
     [](ExecBudget* b, size_t amount) {
       Status st;
       for (size_t i = 0; i < amount && st.ok(); ++i) st = b->AddPath();
       return st;
     }},
    {"entity_expansions",
     [](ResourceLimits* l, size_t v) { l->max_entity_expansions = v; },
     [](ExecBudget* b, size_t amount) {
       return b->AddEntityExpansions(amount);
     }},
};

constexpr size_t kLimit = 8;

TEST(ExecBudgetTest, EveryKnobPassesAtTheLimit) {
  for (const KnobCase& knob : kKnobs) {
    SCOPED_TRACE(knob.name);
    ResourceLimits limits = ResourceLimits::Unlimited();
    knob.set(&limits, kLimit);
    ExecBudget budget;
    budget.Arm(limits);
    EXPECT_TRUE(knob.probe(&budget, kLimit).ok());
  }
}

TEST(ExecBudgetTest, EveryKnobFailsPastTheLimit) {
  for (const KnobCase& knob : kKnobs) {
    SCOPED_TRACE(knob.name);
    ResourceLimits limits = ResourceLimits::Unlimited();
    knob.set(&limits, kLimit);
    ExecBudget budget;
    budget.Arm(limits);
    Status st = knob.probe(&budget, kLimit + 1);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
    // The message must name the limit so rejections are actionable.
    EXPECT_NE(st.message().find(std::to_string(kLimit)), std::string::npos)
        << st.message();
  }
}

TEST(ExecBudgetTest, ZeroMeansUnlimited) {
  for (const KnobCase& knob : kKnobs) {
    SCOPED_TRACE(knob.name);
    ExecBudget budget;
    budget.Arm(ResourceLimits::Unlimited());
    EXPECT_TRUE(knob.probe(&budget, 1u << 16).ok());
  }
}

TEST(ExecBudgetTest, DisarmedBudgetNeverFails) {
  for (const KnobCase& knob : kKnobs) {
    SCOPED_TRACE(knob.name);
    ResourceLimits limits = ResourceLimits::Unlimited();
    knob.set(&limits, 1);
    ExecBudget budget;
    budget.Arm(limits);
    budget.Disarm();
    EXPECT_TRUE(knob.probe(&budget, 100).ok());
  }
}

TEST(ExecBudgetTest, ReArmingResetsConsumptionCounters) {
  ResourceLimits limits = ResourceLimits::Unlimited();
  limits.max_extracted_paths = 2;
  ExecBudget budget;
  budget.Arm(limits);
  EXPECT_TRUE(budget.AddPath().ok());
  EXPECT_TRUE(budget.AddPath().ok());
  EXPECT_FALSE(budget.AddPath().ok());
  budget.Arm(limits);  // Next document: full budget again.
  EXPECT_EQ(budget.paths(), 0u);
  EXPECT_TRUE(budget.AddPath().ok());
}

TEST(ExecBudgetTest, NoDeadlineMeansCheckpointsAreFree) {
  ExecBudget budget;
  budget.Arm(ResourceLimits::Unlimited());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(budget.CheckDeadline().ok());
  }
  EXPECT_TRUE(budget.CheckDeadlineNow().ok());
}

TEST(ExecBudgetTest, ExpiredDeadlineFailsAtTheNextUnamortizedCheck) {
  ResourceLimits limits = ResourceLimits::Unlimited();
  limits.deadline_ms = 1e-6;  // Effectively already expired.
  ExecBudget budget;
  budget.Arm(limits);
  // Spin until the (tiny) deadline has certainly passed.
  Status st = Status::OK();
  for (int i = 0; i < 1 << 22 && st.ok(); ++i) {
    st = budget.CheckDeadlineNow();
  }
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecBudgetTest, ForcedExpiryFailsEvenMidStride) {
  ResourceLimits limits = ResourceLimits::Unlimited();
  limits.deadline_ms = 1e9;  // Far future: only the forced flag can fire.
  ExecBudget budget;
  budget.Arm(limits);
  EXPECT_TRUE(budget.CheckDeadline().ok());
  budget.ForceDeadlineExpiry();
  Status st = budget.CheckDeadline();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // Re-arming clears the forced flag.
  budget.Arm(limits);
  EXPECT_TRUE(budget.CheckDeadline().ok());
}

TEST(ExecBudgetTest, AmortizedCheckpointTripsWithinOneStride) {
  ResourceLimits limits = ResourceLimits::Unlimited();
  limits.deadline_ms = 1e-6;
  ExecBudget budget;
  budget.Arm(limits);
  // The amortized checkpoint reads the clock once per stride, so the
  // expired deadline must surface within kDeadlineStride calls (there
  // is no path that silently skips the clock forever).
  Status st = Status::OK();
  uint32_t calls = 0;
  while (st.ok() && calls < ExecBudget::kDeadlineStride * 4) {
    st = budget.CheckDeadline();
    ++calls;
  }
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace xpred
