#include "common/status.h"

#include "gtest/gtest.h"

namespace xpred {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");

  EXPECT_EQ(Status::XmlParseError("x").code(), StatusCode::kXmlParseError);
  EXPECT_EQ(Status::XPathParseError("x").code(),
            StatusCode::kXPathParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kXmlParseError),
            "XmlParseError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    XPRED_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);

  auto succeeds = [] { return Status::OK(); };
  auto outer2 = [&]() -> Status {
    XPRED_RETURN_NOT_OK(succeeds());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(outer2().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xpred
