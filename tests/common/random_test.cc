#include "common/random.h"

#include <set>

#include "gtest/gtest.h"

namespace xpred {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  Random rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean should be near 0.5.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, BernoulliEdgeCases) {
  Random rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliApproximatesProbability) {
  Random rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, PickReturnsElements) {
  Random rng(23);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    int v = rng.Pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(29);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

}  // namespace
}  // namespace xpred
