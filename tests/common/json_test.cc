// Tests for the minimal JSON reader behind `xpred_cli diagnose`:
// value model, exact u64 round-tripping of large payload words,
// escape handling, and error reporting.

#include <string>

#include "gtest/gtest.h"

#include "common/json.h"

namespace xpred {
namespace {

JsonValue ParseOrDie(std::string_view text) {
  Result<JsonValue> value = ParseJson(text);
  EXPECT_TRUE(value.ok()) << text << ": " << value.status();
  return value.ok() ? std::move(value).value() : JsonValue();
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseOrDie("null").is_null());
  EXPECT_TRUE(ParseOrDie("true").AsBool());
  EXPECT_FALSE(ParseOrDie("false").AsBool(true));
  EXPECT_EQ(ParseOrDie("42").AsU64(), 42u);
  EXPECT_DOUBLE_EQ(ParseOrDie("-2.5e2").AsDouble(), -250.0);
  EXPECT_EQ(ParseOrDie("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, LargeU64PayloadsRoundTripExactly) {
  // Fingerprints and FNV hashes exceed double's 2^53 exact range;
  // AsU64 must re-parse the raw token, not go through double.
  const uint64_t max = 18446744073709551615ull;
  EXPECT_EQ(ParseOrDie("18446744073709551615").AsU64(), max);
  EXPECT_EQ(ParseOrDie("9007199254740993").AsU64(), 9007199254740993ull);
  EXPECT_EQ(ParseOrDie("18446744073709551615").raw_number(),
            "18446744073709551615");
}

TEST(JsonTest, AsU64FallsBackForNonIntegers) {
  EXPECT_EQ(ParseOrDie("1.5").AsU64(7), 7u);
  EXPECT_EQ(ParseOrDie("-3").AsU64(7), 7u);
  EXPECT_EQ(ParseOrDie("\"12\"").AsU64(7), 7u);
  EXPECT_EQ(ParseOrDie("null").AsU64(7), 7u);
}

TEST(JsonTest, ParsesNestedStructures) {
  JsonValue root = ParseOrDie(
      "{\"a\": [1, {\"b\": \"x\"}, null], \"c\": {\"d\": true}}");
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(a->array()[0].AsU64(), 1u);
  EXPECT_EQ(a->array()[1].Find("b")->AsString(), "x");
  EXPECT_TRUE(a->array()[2].is_null());
  const JsonValue* d = root.FindPath({"c", "d"});
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->AsBool());
  EXPECT_EQ(root.FindPath({"c", "missing"}), nullptr);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonTest, DecodesEscapes) {
  EXPECT_EQ(ParseOrDie("\"a\\n\\t\\\"\\\\b\\/\"").AsString(),
            "a\n\t\"\\b/");
  EXPECT_EQ(ParseOrDie("\"\\u0041\\u00e9\\u20ac\"").AsString(),
            "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonTest, DuplicateKeysKeepFirstForFind) {
  JsonValue root = ParseOrDie("{\"k\": 1, \"k\": 2}");
  EXPECT_EQ(root.members().size(), 2u);
  EXPECT_EQ(root.Find("k")->AsU64(), 1u);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // Trailing garbage.
  EXPECT_FALSE(ParseJson("-").ok());
  EXPECT_FALSE(ParseJson("1.").ok());
  EXPECT_FALSE(ParseJson("1e").ok());
  EXPECT_FALSE(ParseJson("\"\x01\"").ok());  // Raw control char.
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());
  EXPECT_FALSE(ParseJson("\"\\x\"").ok());
}

TEST(JsonTest, ErrorsCarryByteOffsets) {
  Result<JsonValue> value = ParseJson("{\"a\": nope}");
  ASSERT_FALSE(value.ok());
  EXPECT_NE(value.status().message().find("at byte"), std::string::npos);
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, AllowsSurroundingWhitespace) {
  EXPECT_EQ(ParseOrDie(" \t\r\n { \"a\" : 1 } \n").Find("a")->AsU64(), 1u);
}

}  // namespace
}  // namespace xpred
