// Replays the git-tracked regression corpus: every .xpredcase under
// tests/testdata/corpus must (a) carry oracle-correct expected
// verdicts and (b) be matched identically by every engine in the full
// roster. Any engine regression reintroducing a previously minimized
// bug fails here with the self-contained repro named in the message.

#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "testing/churn_harness.h"
#include "testing/corpus_store.h"
#include "testing/differential_harness.h"
#include "testing/engine_roster.h"
#include "testing/recovery_harness.h"
#include "xml/document.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

#ifndef XPRED_CORPUS_DIR
#error "XPRED_CORPUS_DIR must point at tests/testdata/corpus"
#endif

namespace xpred::difftest {
namespace {

std::vector<std::string> CorpusFiles() {
  Result<std::vector<std::string>> files =
      CorpusStore(XPRED_CORPUS_DIR).ListCases();
  EXPECT_TRUE(files.ok()) << files.status();
  return files.ok() ? *files : std::vector<std::string>{};
}

TEST(CorpusReplayTest, CorpusIsSeeded) {
  // The corpus ships with minimized cases; an empty directory means
  // the checkout is broken (or someone deleted the repros).
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(CorpusReplayTest, StoredExpectationsMatchTheOracle) {
  for (const std::string& file : CorpusFiles()) {
    SCOPED_TRACE(file);
    Result<Case> c = CorpusStore::Load(file);
    ASSERT_TRUE(c.ok()) << c.status();
    // Script modes are covered by their own replay tests below.
    if (c->mode == "churn" || c->mode == "recovery") continue;
    if (!c->expected_error.empty()) {
      // Expected-error case: the document is poison by contract and
      // must be rejected at parse time with the recorded message.
      Result<xml::Document> doc = xml::Document::Parse(c->document_xml);
      ASSERT_FALSE(doc.ok())
          << "poison document parsed cleanly: " << c->description;
      EXPECT_NE(doc.status().message().find(c->expected_error),
                std::string::npos)
          << "rejection message drifted: got '" << doc.status().message()
          << "', want substring '" << c->expected_error << "'";
      continue;
    }
    ASSERT_EQ(c->expected.size(), c->expressions.size());

    Result<xml::Document> doc = xml::Document::Parse(c->document_xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    for (size_t i = 0; i < c->expressions.size(); ++i) {
      Result<xpath::PathExpr> expr = xpath::ParseXPath(c->expressions[i]);
      ASSERT_TRUE(expr.ok()) << c->expressions[i] << ": " << expr.status();
      EXPECT_EQ(xpath::Evaluator::Matches(*expr, *doc) ? 1 : 0,
                c->expected[i])
          << "stale expected verdict for " << c->expressions[i];
    }
  }
}

TEST(CorpusReplayTest, EveryEngineMatchesTheExpectedVerdicts) {
  std::vector<RosterEntry> roster = FullRoster();
  for (const std::string& file : CorpusFiles()) {
    SCOPED_TRACE(file);
    Result<Case> c = CorpusStore::Load(file);
    ASSERT_TRUE(c.ok()) << c.status();
    // Script modes are covered by their own replay tests below.
    if (c->mode == "churn" || c->mode == "recovery") continue;
    if (!c->expected_error.empty()) {
      // Every engine family must reject the poison document through
      // the governed ingestion path, with the same documented message.
      for (const RosterEntry& entry : roster) {
        std::unique_ptr<core::FilterEngine> engine = entry.make();
        std::vector<core::ExprId> matched;
        Status st = engine->FilterXml(c->document_xml, &matched);
        EXPECT_FALSE(st.ok())
            << entry.label << " accepted poison doc " << c->description;
        EXPECT_NE(st.message().find(c->expected_error), std::string::npos)
            << entry.label << " rejection drifted: " << st.message();
        EXPECT_TRUE(matched.empty()) << entry.label;
      }
      continue;
    }
    for (const RosterEntry& entry : roster) {
      EngineOutcome outcome = DifferentialHarness::ReplayCase(entry, *c);
      EXPECT_TRUE(outcome.error.empty())
          << entry.label << " errored: " << outcome.error;
      EXPECT_EQ(outcome.verdicts, c->expected)
          << entry.label << " regressed on " << c->description;
    }
  }
}

TEST(CorpusReplayTest, ChurnCasesReplayCleanly) {
  // Minimized live-subscription repros: the live engine must agree
  // with both the stored match sets (captured at minimization time)
  // and its own rebuild-from-scratch oracle at every pinned epoch.
  size_t churn_cases = 0;
  for (const std::string& file : CorpusFiles()) {
    SCOPED_TRACE(file);
    Result<Case> c = CorpusStore::Load(file);
    ASSERT_TRUE(c.ok()) << c.status();
    if (c->mode != "churn") continue;
    ++churn_cases;

    Result<std::vector<ChurnOp>> ops = ParseChurnOps(c->script);
    ASSERT_TRUE(ops.ok()) << ops.status();
    ChurnScript script;
    script.seed = c->seed;
    script.dtd = c->dtd;
    script.documents = c->documents;
    script.ops = std::move(*ops);

    ChurnReplayOptions options;
    Result<ChurnReplayResult> result = ReplayChurnScript(script, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->divergence.has_value())
        << "regressed on " << c->description << ": "
        << result->divergence->ToString();

    ASSERT_EQ(result->filter_results.size(), c->expected_matches.size());
    for (size_t i = 0; i < c->expected_matches.size(); ++i) {
      std::vector<core::ExprId> want(c->expected_matches[i].begin(),
                                     c->expected_matches[i].end());
      EXPECT_EQ(result->filter_results[i], want)
          << "filter op " << i << " drifted on " << c->description;
    }
  }
  // The corpus ships seeded churn repros alongside the classic ones.
  EXPECT_GE(churn_cases, 2u);
}

TEST(CorpusReplayTest, RecoveryCasesReplayCleanly) {
  // Seeded crash/recovery repros (DESIGN.md §16): replay the script,
  // kill the durable store at the pinned fault-site visit, recover,
  // and require the recovered subscription table to match both the
  // stored expectation and the durable-prefix oracle (including
  // per-document match sets).
  size_t recovery_cases = 0;
  for (const std::string& file : CorpusFiles()) {
    SCOPED_TRACE(file);
    Result<Case> c = CorpusStore::Load(file);
    ASSERT_TRUE(c.ok()) << c.status();
    if (c->mode != "recovery") continue;
    ++recovery_cases;

    Result<std::vector<RecoveryOp>> ops = ParseRecoveryOps(c->script);
    ASSERT_TRUE(ops.ok()) << ops.status();
    RecoveryScript script;
    script.seed = c->seed;
    script.dtd = c->dtd;
    script.fsync = c->fsync.empty() ? "publish" : c->fsync;
    script.crash_site = c->crash_site;
    script.crash_visit = c->crash_visit;
    script.documents = c->documents;
    script.ops = std::move(*ops);
    script.expected = c->expected_table;

    RecoveryReplayOptions options;
    options.scratch_directory =
        (std::filesystem::temp_directory_path() /
         ("xpred-corpus-recovery-" + std::to_string(c->seed)))
            .string();
    Result<RecoveryReplayResult> result =
        ReplayRecoveryScript(script, options);
    std::error_code ec;
    std::filesystem::remove_all(options.scratch_directory, ec);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->crashed, !c->crash_site.empty())
        << "crash point drifted on " << c->description;
    EXPECT_FALSE(result->divergence.has_value())
        << "regressed on " << c->description << ": " << *result->divergence;
    EXPECT_EQ(result->recovered_table, c->expected_table)
        << "recovered table drifted on " << c->description;
  }
  // The corpus ships seeded recovery repros covering each fault site.
  EXPECT_GE(recovery_cases, 3u);
}

}  // namespace
}  // namespace xpred::difftest
