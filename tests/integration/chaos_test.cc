// Chaos harness: runs the differential fuzzing harness while a seeded
// FaultInjector fires at the shared governed-entry site, and asserts
// the engine families fail IDENTICALLY — same StatusCode on the same
// documents. Uniform failure under fault injection is the governance
// acceptance criterion; any engine that swallows, translates, or
// survives the injected fault shows up as a divergence.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "common/status.h"
#include "testing/differential_harness.h"

namespace xpred::difftest {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Install(nullptr); }

  DifferentialHarness::Options HarnessOptions() {
    DifferentialHarness::Options options;
    options.seed = 7;
    options.runs = 6;
    options.minimize = false;       // Replays would re-trigger faults.
    options.exercise_removal = false;
    return options;
  }
};

TEST_F(ChaosTest, AllEnginesFailIdenticallyUnderInjectedFaults) {
  FaultInjector injector(11);
  FaultInjector::Rule rule;
  // The shared site every engine family passes through exactly once
  // per document: with period=1, every FilterDocument call fails.
  rule.site = std::string(faultsite::kEngineBeginDocument);
  rule.code = StatusCode::kInternal;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  DifferentialHarness::Options options = HarnessOptions();
  options.tolerate_uniform_errors = true;
  Result<DifferentialHarness::Summary> summary =
      DifferentialHarness(options).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->mismatches, 0u)
      << "an engine diverged under uniform fault injection";
  // The faults actually fired (one per engine per document verdict
  // round, so far more than the document count).
  EXPECT_GT(injector.journal().size(), summary->documents);
}

TEST_F(ChaosTest, HarnessStillSeesNonUniformFailures) {
  // Same setup WITHOUT tolerance: the harness must report the injected
  // failures, proving the tolerance flag (and not harness blindness)
  // explains the zero-mismatch run above.
  FaultInjector injector(11);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kEngineBeginDocument);
  rule.code = StatusCode::kInternal;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  DifferentialHarness::Options options = HarnessOptions();
  options.tolerate_uniform_errors = false;
  Result<DifferentialHarness::Summary> summary =
      DifferentialHarness(options).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary->mismatches, 0u);
}

TEST_F(ChaosTest, SingleEngineFaultIsADivergenceEvenWithTolerance) {
  // A fault only one family hits must never be excused: tolerance is
  // strictly for uniform failure.
  FaultInjector injector(11);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kYFilterTraverse);
  rule.code = StatusCode::kInternal;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  DifferentialHarness::Options options = HarnessOptions();
  options.tolerate_uniform_errors = true;
  Result<DifferentialHarness::Summary> summary =
      DifferentialHarness(options).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary->mismatches, 0u)
      << "yfilter-only faults must surface as status divergences";
}

TEST_F(ChaosTest, ChaosRunsAreDeterministicUnderAFixedSeed) {
  auto run_once = [this](std::vector<std::string>* journal,
                         uint64_t* mismatches) {
    FaultInjector injector(23);
    FaultInjector::Rule rule;
    rule.site = std::string(faultsite::kEngineBeginDocument);
    rule.code = StatusCode::kInternal;
    rule.period = 3;  // Fail a third of the governed entries.
    rule.probability = 0.5;
    injector.AddRule(rule);
    FaultInjector::Install(&injector);
    DifferentialHarness::Options options = HarnessOptions();
    options.tolerate_uniform_errors = false;
    Result<DifferentialHarness::Summary> summary =
        DifferentialHarness(options).Run();
    ASSERT_TRUE(summary.ok()) << summary.status();
    *journal = injector.journal();
    *mismatches = summary->mismatches;
    FaultInjector::Install(nullptr);
  };

  std::vector<std::string> journal_a;
  std::vector<std::string> journal_b;
  uint64_t mismatches_a = 0;
  uint64_t mismatches_b = 0;
  run_once(&journal_a, &mismatches_a);
  run_once(&journal_b, &mismatches_b);
  ASSERT_FALSE(journal_a.empty());
  EXPECT_EQ(journal_a, journal_b);  // Byte-identical failure sequence.
  EXPECT_EQ(mismatches_a, mismatches_b);
}

TEST_F(ChaosTest, UninstalledInjectorRestoresCleanRuns) {
  // After chaos, a plain harness run must be green: fault injection
  // leaves no residue in the engines or the roster.
  Result<DifferentialHarness::Summary> summary =
      DifferentialHarness(HarnessOptions()).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->mismatches, 0u);
}

}  // namespace
}  // namespace xpred::difftest
