// Appendix A stress test: the paper proves the predicate encoding
// equivalent to XPath path-matching semantics. This property test
// hammers the hardest part of that equivalence — repeated tag names
// and the occurrence-chaining constraint — with random documents and
// expressions over a tiny alphabet {a, b, c}, cross-checked against
// the brute-force oracle for every matcher mode.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/matcher.h"
#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred {
namespace {

using core::ExprId;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

const char* const kAlphabet[] = {"a", "b", "c"};

/// Random tree over the tiny alphabet: depth <= 7, fanout <= 3.
void BuildRandomTree(xml::Document* doc, xml::NodeId parent, int depth,
                     Random* rng) {
  if (depth >= 7) return;
  uint64_t children = rng->Uniform(4);  // 0..3 children.
  // Bias toward deeper, thinner trees at the top.
  if (depth < 2 && children == 0) children = 1;
  for (uint64_t c = 0; c < children; ++c) {
    xml::NodeId child =
        doc->AddElement(kAlphabet[rng->Uniform(3)], parent);
    BuildRandomTree(doc, child, depth + 1, rng);
  }
}

xml::Document RandomDocument(uint64_t seed) {
  Random rng(seed);
  xml::Document doc;
  xml::NodeId root = doc.AddElement(kAlphabet[rng.Uniform(3)],
                                    xml::kInvalidNode);
  BuildRandomTree(&doc, root, 1, &rng);
  return doc;
}

std::string RandomExpression(Random* rng) {
  std::string out;
  bool absolute = rng->Bernoulli(0.5);
  size_t steps = 1 + rng->Uniform(5);
  for (size_t i = 0; i < steps; ++i) {
    if (i == 0) {
      if (absolute) out += rng->Bernoulli(0.25) ? "//" : "/";
    } else {
      out += rng->Bernoulli(0.3) ? "//" : "/";
    }
    out += rng->Bernoulli(0.25) ? "*" : kAlphabet[rng->Uniform(3)];
  }
  return out;
}

class AppendixATest : public ::testing::TestWithParam<int> {};

TEST_P(AppendixATest, EncodingMatchesXPathSemantics) {
  uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  Random rng(seed);

  // One workload of 25 random expressions...
  std::vector<std::string> exprs;
  for (int i = 0; i < 25; ++i) exprs.push_back(RandomExpression(&rng));

  std::vector<std::unique_ptr<core::Matcher>> matchers;
  for (core::Matcher::Mode mode :
       {core::Matcher::Mode::kBasic,
        core::Matcher::Mode::kPrefixCoveringAccessPredicate,
        core::Matcher::Mode::kTrieDfs}) {
    core::Matcher::Options options;
    options.mode = mode;
    matchers.push_back(std::make_unique<core::Matcher>(options));
  }
  std::vector<std::vector<ExprId>> ids(matchers.size());
  for (size_t m = 0; m < matchers.size(); ++m) {
    for (const std::string& e : exprs) {
      Result<ExprId> id = matchers[m]->AddExpression(e);
      ASSERT_TRUE(id.ok()) << e;
      ids[m].push_back(*id);
    }
  }

  // ... against 6 random occurrence-heavy documents.
  for (int d = 0; d < 6; ++d) {
    xml::Document doc = RandomDocument(seed * 17 + static_cast<uint64_t>(d));
    std::vector<bool> expected;
    for (const std::string& e : exprs) {
      expected.push_back(
          xpath::Evaluator::Matches(ParseXPathOrDie(e), doc));
    }
    for (size_t m = 0; m < matchers.size(); ++m) {
      std::vector<ExprId> matched;
      ASSERT_TRUE(matchers[m]->FilterDocument(doc, &matched).ok());
      std::sort(matched.begin(), matched.end());
      for (size_t i = 0; i < exprs.size(); ++i) {
        bool actual = std::binary_search(matched.begin(), matched.end(),
                                         ids[m][i]);
        ASSERT_EQ(actual, expected[i])
            << "expr=" << exprs[i] << " doc:\n"
            << doc.ToXml() << "mode " << m;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppendixATest, ::testing::Range(0, 60));

}  // namespace
}  // namespace xpred
