// Property-based integration test: on randomly generated DTD-guided
// workloads, every engine in the differential roster (all matcher
// modes x attribute modes, YFilter, XFilter, Index-Filter, and the
// streaming front end) must agree with the brute-force oracle on
// every (expression, document) pair. This exercises the Appendix A
// encoding-correctness theorem end to end.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"
#include "testing/engine_roster.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/evaluator.h"
#include "xpath/query_generator.h"

namespace xpred {
namespace {

using core::ExprId;
using xpred::testing::ParseXPathOrDie;

struct WorkloadParam {
  const char* name;
  bool psd;             // PSD-like (else NITF-like).
  double wildcard;      // W
  double descendant;    // DO
  uint32_t filters;     // Attribute filters per expression.
  double nested;        // Nested-path probability.
  uint64_t seed;
};

class AgreementTest : public ::testing::TestWithParam<WorkloadParam> {};

TEST_P(AgreementTest, EnginesAgreeWithOracle) {
  const WorkloadParam& param = GetParam();
  const xml::Dtd& dtd =
      param.psd ? xml::PsdLikeDtd() : xml::NitfLikeDtd();

  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.wildcard_prob = param.wildcard;
  qopts.descendant_prob = param.descendant;
  qopts.filters_per_expr = param.filters;
  qopts.nested_path_prob = param.nested;
  qopts.distinct = false;
  xpath::QueryGenerator qgen(&dtd, qopts);
  std::vector<std::string> exprs =
      qgen.GenerateWorkloadStrings(60, param.seed);
  ASSERT_FALSE(exprs.empty());

  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  xml::DocumentGenerator dgen(&dtd, dopts);

  std::vector<std::unique_ptr<core::FilterEngine>> engines;
  std::vector<std::string> labels;
  for (const difftest::RosterEntry& entry : difftest::FullRoster()) {
    engines.push_back(entry.make());
    labels.push_back(entry.label);
  }
  ASSERT_EQ(engines.size(), 13u);  // All six engine families.
  std::vector<std::vector<ExprId>> ids(engines.size());
  for (size_t e = 0; e < engines.size(); ++e) {
    for (const std::string& expr : exprs) {
      Result<ExprId> id = engines[e]->AddExpression(expr);
      ASSERT_TRUE(id.ok()) << labels[e] << ": " << expr << ": " << id.status();
      ids[e].push_back(*id);
    }
  }

  for (uint64_t d = 0; d < 8; ++d) {
    xml::Document doc = dgen.Generate(param.seed * 1000 + d);
    ASSERT_FALSE(doc.empty());

    // Oracle verdicts.
    std::vector<bool> expected;
    expected.reserve(exprs.size());
    for (const std::string& expr : exprs) {
      expected.push_back(
          xpath::Evaluator::Matches(ParseXPathOrDie(expr), doc));
    }

    for (size_t e = 0; e < engines.size(); ++e) {
      std::vector<ExprId> matched;
      ASSERT_TRUE(engines[e]->FilterDocument(doc, &matched).ok());
      std::sort(matched.begin(), matched.end());
      for (size_t i = 0; i < exprs.size(); ++i) {
        bool actual =
            std::binary_search(matched.begin(), matched.end(), ids[e][i]);
        ASSERT_EQ(actual, expected[i])
            << "engine=" << labels[e] << " expr=" << exprs[i]
            << " doc seed=" << param.seed * 1000 + d << " ("
            << doc.tag_count() << " tags)";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AgreementTest,
    ::testing::Values(
        WorkloadParam{"nitf_plain", false, 0.2, 0.2, 0, 0.0, 11},
        WorkloadParam{"nitf_wildcards", false, 0.6, 0.2, 0, 0.0, 12},
        WorkloadParam{"nitf_descendants", false, 0.2, 0.6, 0, 0.0, 13},
        WorkloadParam{"nitf_filters", false, 0.2, 0.2, 2, 0.0, 14},
        WorkloadParam{"nitf_nested", false, 0.2, 0.2, 0, 0.5, 15},
        WorkloadParam{"psd_plain", true, 0.2, 0.2, 0, 0.0, 21},
        WorkloadParam{"psd_wildcards", true, 0.7, 0.1, 0, 0.0, 22},
        WorkloadParam{"psd_descendants", true, 0.1, 0.7, 0, 0.0, 23},
        WorkloadParam{"psd_filters", true, 0.2, 0.2, 1, 0.0, 24},
        WorkloadParam{"psd_mixed", true, 0.4, 0.4, 1, 0.3, 25}),
    [](const ::testing::TestParamInfo<WorkloadParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xpred
