// Randomized soak: larger generated workloads across many seeds, with
// all engine families cross-checked against each other (pairwise
// agreement is cheaper than the oracle at this scale, and the oracle
// itself is exercised in agreement_test). Catches rare interactions
// the small corpora miss.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "core/streaming.h"
#include "indexfilter/index_filter.h"
#include "xfilter/xfilter.h"
#include "test_util.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"
#include "yfilter/yfilter.h"

namespace xpred {
namespace {

using core::ExprId;

struct SoakParam {
  const char* name;
  bool psd;
  uint64_t seed;
  double wildcard;
  double descendant;
  uint32_t filters;
};

class SoakTest : public ::testing::TestWithParam<SoakParam> {};

TEST_P(SoakTest, EngineFamiliesAgreePairwise) {
  const SoakParam& param = GetParam();
  const xml::Dtd& dtd =
      param.psd ? xml::PsdLikeDtd() : xml::NitfLikeDtd();

  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 7;
  qopts.wildcard_prob = param.wildcard;
  qopts.descendant_prob = param.descendant;
  qopts.filters_per_expr = param.filters;
  qopts.distinct = false;
  xpath::QueryGenerator qgen(&dtd, qopts);
  std::vector<std::string> exprs =
      qgen.GenerateWorkloadStrings(800, param.seed);

  // One engine per family (plus streaming front end over a second
  // matcher, and the trie-DFS variant).
  core::Matcher pcap;
  core::Matcher::Options dfs_options;
  dfs_options.mode = core::Matcher::Mode::kTrieDfs;
  core::Matcher dfs(dfs_options);
  core::Matcher stream_backend;
  yfilter::YFilter yf;
  indexfilter::IndexFilter ixf;
  xfilter::XFilter xf;

  std::vector<core::FilterEngine*> engines = {&pcap, &dfs, &stream_backend,
                                              &yf, &ixf, &xf};
  for (core::FilterEngine* engine : engines) {
    for (const std::string& e : exprs) {
      ASSERT_TRUE(engine->AddExpression(e).ok()) << e;
    }
  }

  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 9;
  xml::DocumentGenerator dgen(&dtd, dopts);
  core::StreamingFilter streaming(&stream_backend);

  for (uint64_t d = 0; d < 12; ++d) {
    xml::Document doc = dgen.Generate(param.seed * 131 + d);
    std::string xml = doc.ToXml();

    auto run = [&](core::FilterEngine* engine) {
      std::vector<ExprId> matched;
      Status st = engine->FilterDocument(doc, &matched);
      EXPECT_TRUE(st.ok()) << st;
      std::sort(matched.begin(), matched.end());
      return matched;
    };

    std::vector<ExprId> baseline = run(&pcap);
    EXPECT_EQ(run(&dfs), baseline) << "trie-dfs diverged, doc " << d;
    EXPECT_EQ(run(&yf), baseline) << "yfilter diverged, doc " << d;
    EXPECT_EQ(run(&ixf), baseline) << "index-filter diverged, doc " << d;
    EXPECT_EQ(run(&xf), baseline) << "xfilter diverged, doc " << d;

    std::vector<ExprId> streamed;
    ASSERT_TRUE(streaming.FilterXml(xml, &streamed).ok());
    std::sort(streamed.begin(), streamed.end());
    EXPECT_EQ(streamed, baseline) << "streaming diverged, doc " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SoakTest,
    ::testing::Values(SoakParam{"nitf_a", false, 101, 0.2, 0.2, 0},
                      SoakParam{"nitf_b", false, 102, 0.5, 0.1, 0},
                      SoakParam{"nitf_c", false, 103, 0.1, 0.5, 1},
                      SoakParam{"nitf_d", false, 104, 0.4, 0.4, 2},
                      SoakParam{"psd_a", true, 201, 0.2, 0.2, 0},
                      SoakParam{"psd_b", true, 202, 0.6, 0.2, 0},
                      SoakParam{"psd_c", true, 203, 0.2, 0.6, 1},
                      SoakParam{"psd_d", true, 204, 0.3, 0.3, 2}),
    [](const ::testing::TestParamInfo<SoakParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xpred
