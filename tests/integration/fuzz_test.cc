// Failure-injection tests: malformed XML and XPath inputs must produce
// Status errors, never crashes or state corruption.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "core/matcher.h"
#include "core/streaming.h"
#include "indexfilter/index_filter.h"
#include "test_util.h"
#include "testing/engine_roster.h"
#include "xfilter/xfilter.h"
#include "xml/document.h"
#include "xpath/parser.h"
#include "yfilter/yfilter.h"

namespace xpred {
namespace {

const char* const kBadXml[] = {
    "",
    "   ",
    "<",
    "<a",
    "<a>",
    "<a></b>",
    "<a><b></a></b>",
    "<a b=></a>",
    "<a b=\"1></a>",
    "<a b='1' b='2'/>",
    "<a>&unknown;</a>",
    "<a>&#xZZ;</a>",
    "<a>&#0;</a>",
    "<a/><b/>",
    "text only",
    "<a><!-- unterminated </a>",
    "<a><![CDATA[ unterminated </a>",
    "<?xml version=\"1.0\"?>",
    "</a>",
    "<a><b/>",
    "<1a/>",
    "<a 1b=\"2\"/>",
    "<a>\xff\xfe</a",
};

const char* const kBadXPath[] = {
    "",
    "   ",
    "/",
    "//",
    "///a",
    "a//",
    "/a/",
    "[a]",
    "/a[",
    "/a[]",
    "/a[@]",
    "/a[@x=]",
    "/a[@x >]",
    "/a[@x = ']",
    "/a[1]",
    "/a[b",
    "/a]b",
    "/a/b()",
    "/a:b",
    "/a/@href",
    "@x",
    "/a[@x ~ 3]",
    "/a/*]",
    "/a[[b]]",
    "a b",
};

TEST(FuzzTest, MalformedXmlReturnsStatus) {
  for (const char* text : kBadXml) {
    Result<xml::Document> doc = xml::Document::Parse(text);
    EXPECT_FALSE(doc.ok()) << "accepted: " << text;
    if (!doc.ok()) {
      EXPECT_FALSE(doc.status().message().empty());
    }
  }
}

TEST(FuzzTest, MalformedXPathReturnsStatus) {
  for (const char* text : kBadXPath) {
    Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
    EXPECT_FALSE(expr.ok()) << "accepted: " << text;
  }
}

TEST(FuzzTest, EnginesRejectMalformedExpressionsWithoutCorruption) {
  core::Matcher matcher;
  yfilter::YFilter yf;
  xfilter::XFilter xf;
  indexfilter::IndexFilter ixf;
  difftest::StreamingEngine streaming;
  std::vector<core::FilterEngine*> engines = {&matcher, &yf, &xf, &ixf,
                                              &streaming};
  for (core::FilterEngine* engine : engines) {
    for (const char* text : kBadXPath) {
      EXPECT_FALSE(engine->AddExpression(text).ok())
          << engine->name() << " accepted: " << text;
    }
    // The engine still works after the rejections.
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok());
    xml::Document doc = xpred::testing::ParseXmlOrDie("<a><b/></a>");
    std::vector<core::ExprId> matched;
    ASSERT_TRUE(engine->FilterDocument(doc, &matched).ok());
    EXPECT_EQ(matched, (std::vector<core::ExprId>{*id}));
  }
}

TEST(FuzzTest, EveryEngineRejectsMalformedXmlWithoutCorruption) {
  // Each kBadXml input goes through every engine family's FilterXml
  // path — including the streaming SAX front end and XFilter — and
  // must come back as a Status error, never a crash; afterwards the
  // engine still filters well-formed documents correctly.
  for (const difftest::RosterEntry& entry : difftest::FullRoster()) {
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok()) << entry.label;
    for (const char* text : kBadXml) {
      std::vector<core::ExprId> matched;
      Status status = engine->FilterXml(text, &matched);
      EXPECT_FALSE(status.ok())
          << entry.label << " accepted malformed XML: " << text;
      EXPECT_FALSE(status.message().empty()) << entry.label;
    }
    std::vector<core::ExprId> matched;
    ASSERT_TRUE(engine->FilterXml("<a><b/></a>", &matched).ok())
        << entry.label << " corrupted by malformed input";
    EXPECT_EQ(matched, (std::vector<core::ExprId>{*id})) << entry.label;
  }
}

TEST(FuzzTest, StreamingFilterRejectsMalformedXmlMidStream) {
  // The one-pass SAX path never builds a tree, so it sees malformed
  // input mid-stream rather than at a parse boundary; it must still
  // surface Status errors and recover for the next document.
  core::Matcher matcher;
  ASSERT_TRUE(matcher.AddExpression("/a/b").ok());
  core::StreamingFilter filter(&matcher);
  for (const char* text : kBadXml) {
    std::vector<core::ExprId> matched;
    EXPECT_FALSE(filter.FilterXml(text, &matched).ok())
        << "streaming accepted: " << text;
  }
  std::vector<core::ExprId> matched;
  ASSERT_TRUE(filter.FilterXml("<a><b/></a>", &matched).ok());
  EXPECT_EQ(matched.size(), 1u);
}

TEST(FuzzTest, RandomBytesNeverCrashTheXmlParser) {
  Random rng(42);
  const char alphabet[] = "<>/=\"'ab &;![]-?x\n\t";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input;
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    // Must terminate and return a status, not crash; if it parses, the
    // document must be sane.
    Result<xml::Document> doc = xml::Document::Parse(input);
    if (doc.ok()) {
      EXPECT_FALSE(doc->empty());
    }
  }
}

TEST(FuzzTest, RandomStringsNeverCrashTheXPathParser) {
  Random rng(43);
  const char alphabet[] = "/*[]@=<>!ab12 .\"'-";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string input;
    size_t len = rng.Uniform(40);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Result<xpath::PathExpr> expr = xpath::ParseXPath(input);
    if (expr.ok()) {
      // Round-trip: the canonical form must re-parse to itself.
      std::string canonical = expr->ToString();
      Result<xpath::PathExpr> again = xpath::ParseXPath(canonical);
      ASSERT_TRUE(again.ok()) << "canonical form rejected: " << canonical
                              << " (from " << input << ")";
      EXPECT_EQ(again->ToString(), canonical);
    }
  }
}

TEST(FuzzTest, DeeplyNestedXmlHitsDepthLimit) {
  std::string open;
  std::string close;
  for (int i = 0; i < 1000; ++i) {
    open += "<a>";
    close += "</a>";
  }
  Result<xml::Document> doc = xml::Document::Parse(open + close);
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

TEST(FuzzTest, HugeAttributeValuesSurvive) {
  std::string xml = "<a x=\"" + std::string(100000, 'v') + "\"/>";
  Result<xml::Document> doc = xml::Document::Parse(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->element(0).attributes[0].value.size(), 100000u);
}

TEST(FuzzTest, ManyPathsDocument) {
  // A very wide document: 500 leaves, each its own path.
  std::string xml = "<root>";
  for (int i = 0; i < 500; ++i) xml += "<leaf/>";
  xml += "</root>";
  core::Matcher m;
  auto id = m.AddExpression("/root/leaf");
  ASSERT_TRUE(id.ok());
  std::vector<core::ExprId> matched;
  xml::Document doc = xpred::testing::ParseXmlOrDie(xml);
  ASSERT_TRUE(m.FilterDocument(doc, &matched).ok());
  EXPECT_EQ(matched.size(), 1u);
  EXPECT_EQ(m.stats().paths, 500u);
}

}  // namespace
}  // namespace xpred
