// Tests for the delta-debugging case minimizer: document shrinking,
// expression-set reduction, expression-level edits, probe budgets, and
// the invariant that the returned case still fails.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "testing/case_minimizer.h"
#include "xml/document.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpred::difftest {
namespace {

xml::Document ParseOrDie(const std::string& xml) {
  Result<xml::Document> doc = xml::Document::Parse(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(*doc);
}

// A synthetic failure: the "bug" fires whenever any expression in the
// set contains a '//' and the document contains a <target/> element.
// The minimal failing case is therefore a 1-2 node document and one
// expression.
bool SyntheticFailure(const xml::Document& doc,
                      const std::vector<std::string>& exprs) {
  bool has_target = false;
  for (const xml::Element& element : doc.elements()) {
    if (element.tag == "target") has_target = true;
  }
  if (!has_target) return false;
  for (const std::string& expr : exprs) {
    if (expr.find("//") != std::string::npos) return true;
  }
  return false;
}

TEST(CaseMinimizerTest, ShrinksDocumentAndExpressionSet) {
  xml::Document doc = ParseOrDie(
      "<root a=\"1\" b=\"2\">"
      "  <noise><deep><deeper>text</deeper></deep></noise>"
      "  <branch><target year=\"3\">payload</target><sibling/></branch>"
      "  <more><noise2/><noise3 c=\"9\"/></more>"
      "</root>");
  std::vector<std::string> exprs = {
      "/root/branch",
      "/root//target",
      "/root/more/noise2",
      "/root/noise/deep",
  };
  ASSERT_TRUE(SyntheticFailure(doc, exprs));

  CaseMinimizer::Output out =
      CaseMinimizer::Minimize(doc, exprs, SyntheticFailure);
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.probes, 0u);

  // Still failing, and tiny: one expression, document reduced to the
  // <target> element itself (root promotion reaches it).
  xml::Document minimized = ParseOrDie(out.document_xml);
  EXPECT_TRUE(SyntheticFailure(minimized, out.expressions));
  EXPECT_EQ(out.expressions.size(), 1u);
  EXPECT_EQ(out.document_nodes, 1u);
  EXPECT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized.element(0).tag, "target");
  // Attribute and text stripping applied too.
  EXPECT_TRUE(minimized.element(0).attributes.empty());
  EXPECT_TRUE(minimized.element(0).text.empty());
  // Every expression still parses after AST-level edits.
  for (const std::string& expr : out.expressions) {
    EXPECT_TRUE(xpath::ParseXPath(expr).ok()) << expr;
  }
}

TEST(CaseMinimizerTest, SimplifiesExpressionsViaAstEdits) {
  // Failure depends only on the expression mentioning tag "b" with a
  // descendant axis somewhere; extra steps and filters are noise the
  // expression-edit pass should strip.
  auto fails = [](const xml::Document&,
                  const std::vector<std::string>& exprs) {
    for (const std::string& expr : exprs) {
      if (expr.find("//b") != std::string::npos) return true;
    }
    return false;
  };
  xml::Document doc = ParseOrDie("<a><b x=\"3\"/></a>");
  std::vector<std::string> exprs = {"/a[@y = 2]//b[@x = 3]/c/d"};
  ASSERT_TRUE(fails(doc, exprs));

  CaseMinimizer::Output out = CaseMinimizer::Minimize(doc, exprs, fails);
  EXPECT_TRUE(out.converged);
  ASSERT_EQ(out.expressions.size(), 1u);
  EXPECT_EQ(out.expressions[0], "//b");
}

TEST(CaseMinimizerTest, RespectsProbeBudget) {
  // Build a deliberately large document so a tiny budget runs out.
  std::string xml = "<root>";
  for (int i = 0; i < 40; ++i) xml += "<leaf n=\"" + std::to_string(i) + "\"/>";
  xml += "<target/></root>";
  xml::Document doc = ParseOrDie(xml);
  std::vector<std::string> exprs = {"//target", "/root/leaf"};

  CaseMinimizer::Options options;
  options.max_probes = 5;
  CaseMinimizer::Output out =
      CaseMinimizer::Minimize(doc, exprs, SyntheticFailure, options);
  EXPECT_FALSE(out.converged);
  EXPECT_LE(out.probes, 5u);
  // Whatever was reached still fails.
  EXPECT_TRUE(SyntheticFailure(ParseOrDie(out.document_xml), out.expressions));
}

TEST(CaseMinimizerTest, RealOracleDivergencePredicate) {
  // Exercise the minimizer with the predicate shape the harness uses:
  // "engine disagrees with the oracle", here simulated by an engine
  // that answers false for every absolute expression of length >= 2
  // whenever the document has more than one node.
  auto fails = [](const xml::Document& doc,
                  const std::vector<std::string>& exprs) {
    for (const std::string& text : exprs) {
      Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
      if (!expr.ok()) return false;
      bool oracle = xpath::Evaluator::Matches(*expr, doc);
      bool engine =
          (doc.size() <= 1 || expr->length() < 2) ? oracle : false;
      if (oracle != engine) return true;
    }
    return false;
  };
  xml::Document doc = ParseOrDie(
      "<site><regions><asia><item/><item/></asia><europe/></regions>"
      "<people><person/></people></site>");
  std::vector<std::string> exprs = {"/site/regions//item", "/site/people"};
  ASSERT_TRUE(fails(doc, exprs));

  CaseMinimizer::Output out = CaseMinimizer::Minimize(doc, exprs, fails);
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.expressions.size(), 1u);
  // The 9-node document shrinks to a short chain (the edit set has no
  // splice-out-intermediate move, so a '//' witness chain may keep a
  // couple of interior nodes); one-node documents cannot diverge here.
  EXPECT_GE(out.document_nodes, 2u);
  EXPECT_LE(out.document_nodes, 4u);
  EXPECT_TRUE(fails(ParseOrDie(out.document_xml), out.expressions));
}

}  // namespace
}  // namespace xpred::difftest
