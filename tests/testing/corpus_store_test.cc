// Round-trip and validation tests for the .xpredcase format and the
// corpus directory store.

#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "testing/corpus_store.h"

namespace xpred::difftest {
namespace {

Case MakeCase() {
  Case c;
  c.seed = 42;
  c.dtd = "nitf";
  c.description = "yfilter disagreed on expr 1";
  c.document_xml = "<nitf>\n  <head/>\n</nitf>\n";
  c.expressions = {"/nitf/head", "/nitf//body"};
  c.expected = {1, 0};
  EngineOutcome outcome;
  outcome.engine = "yfilter";
  outcome.verdicts = {1, 1};
  c.outcomes.push_back(outcome);
  EngineOutcome errored;
  errored.engine = "xfilter";
  errored.error = "internal: boom";
  c.outcomes.push_back(errored);
  return c;
}

TEST(CorpusStoreTest, SerializeDeserializeRoundTrip) {
  Case original = MakeCase();
  std::string text = SerializeCase(original);
  Result<Case> parsed = DeserializeCase(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->seed, original.seed);
  EXPECT_EQ(parsed->dtd, original.dtd);
  EXPECT_EQ(parsed->description, original.description);
  EXPECT_EQ(parsed->document_xml, original.document_xml);
  EXPECT_EQ(parsed->expressions, original.expressions);
  EXPECT_EQ(parsed->expected, original.expected);
  ASSERT_EQ(parsed->outcomes.size(), 2u);
  EXPECT_EQ(parsed->outcomes[0].engine, "yfilter");
  EXPECT_EQ(parsed->outcomes[0].verdicts, (std::vector<int>{1, 1}));
  EXPECT_TRUE(parsed->outcomes[0].error.empty());
  EXPECT_EQ(parsed->outcomes[1].engine, "xfilter");
  EXPECT_EQ(parsed->outcomes[1].error, "internal: boom");
  EXPECT_TRUE(parsed->outcomes[1].verdicts.empty());

  // Serialization is canonical: a second round trip is byte-identical.
  EXPECT_EQ(SerializeCase(*parsed), text);
}

TEST(CorpusStoreTest, RejectsMalformedText) {
  const std::string good = SerializeCase(MakeCase());

  EXPECT_FALSE(DeserializeCase("").ok());
  EXPECT_FALSE(DeserializeCase("xpredcase 2\n== end\n").ok());
  EXPECT_FALSE(DeserializeCase("not a case at all").ok());

  // Truncation (missing the '== end' sentinel) is rejected.
  std::string truncated = good.substr(0, good.size() - 7);
  ASSERT_EQ(good.compare(good.size() - 7, 7, "== end\n"), 0);
  EXPECT_FALSE(DeserializeCase(truncated).ok());

  // A verdict count that disagrees with the expression count is
  // rejected.
  Case bad = MakeCase();
  bad.expected = {1};
  EXPECT_FALSE(DeserializeCase(SerializeCase(bad)).ok());

  // Unknown verdict characters are rejected.
  std::string corrupt = good;
  size_t pos = corrupt.find("== expected\n");
  ASSERT_NE(pos, std::string::npos);
  corrupt.replace(pos + 12, 1, "7");
  EXPECT_FALSE(DeserializeCase(corrupt).ok());
}

TEST(CorpusStoreTest, SaveLoadListAndDedup) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "xpred_corpus_store_test")
          .string();
  std::filesystem::remove_all(dir);
  CorpusStore store(dir);

  // An absent directory is an empty corpus.
  Result<std::vector<std::string>> empty = store.ListCases();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->empty());

  Case a = MakeCase();
  std::string path_a;
  ASSERT_TRUE(store.Save(a, &path_a).ok());
  EXPECT_TRUE(std::filesystem::exists(path_a));

  // Saving the identical case again is idempotent (content-hash name).
  std::string path_a2;
  ASSERT_TRUE(store.Save(a, &path_a2).ok());
  EXPECT_EQ(path_a, path_a2);

  Case b = MakeCase();
  b.expressions = {"/nitf/head", "/nitf//docdata"};
  std::string path_b;
  ASSERT_TRUE(store.Save(b, &path_b).ok());
  EXPECT_NE(path_a, path_b);

  Result<std::vector<std::string>> listed = store.ListCases();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);

  Result<Case> loaded = CorpusStore::Load(path_b);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->expressions, b.expressions);

  EXPECT_FALSE(CorpusStore::Load(dir + "/no-such-file.xpredcase").ok());
  std::filesystem::remove_all(dir);
}

Case MakeChurnCase() {
  Case c;
  c.mode = "churn";
  c.seed = 7;
  c.dtd = "nitf";
  c.description = "live filter dropped a publish";
  c.documents = {"<a><b/></a>\n", "<a><c/></a>\n"};
  c.script = {"sub /a/b", "sub /a/c", "publish", "filter 0",
              "unsub 0",  "publish",  "filter 1"};
  c.expected_matches = {{0}, {1}};
  return c;
}

TEST(CorpusStoreTest, ChurnCaseRoundTrip) {
  Case original = MakeChurnCase();
  std::string text = SerializeCase(original);
  Result<Case> parsed = DeserializeCase(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->mode, "churn");
  EXPECT_EQ(parsed->seed, original.seed);
  EXPECT_EQ(parsed->documents, original.documents);
  EXPECT_EQ(parsed->script, original.script);
  EXPECT_EQ(parsed->expected_matches, original.expected_matches);
  EXPECT_TRUE(parsed->expressions.empty());

  // Canonical here too: the second round trip is byte-identical.
  EXPECT_EQ(SerializeCase(*parsed), text);

  // Empty match sets serialize as `-`.
  original.expected_matches = {{}, {0, 1}};
  parsed = DeserializeCase(SerializeCase(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->expected_matches, original.expected_matches);
}

TEST(CorpusStoreTest, ChurnCaseRejectsMalformedText) {
  const std::string good = SerializeCase(MakeChurnCase());

  // Unknown modes, junk script lines, and expected/filter-op count
  // drift are all rejected.
  std::string bad = good;
  bad.replace(bad.find("mode: churn"), 11, "mode: storm");
  EXPECT_FALSE(DeserializeCase(bad).ok());

  bad = good;
  bad.replace(bad.find("sub /a/b"), 8, "subscribe");
  EXPECT_FALSE(DeserializeCase(bad).ok());

  bad = good;
  bad.replace(bad.find("filter 1"), 8, "publish");
  EXPECT_FALSE(DeserializeCase(bad).ok());

  bad = good;
  bad.replace(bad.find("== end"), 6, "");
  EXPECT_FALSE(DeserializeCase(bad).ok());

  bad = good;
  bad.replace(bad.find("\n0\n"), 3, "\nx y\n");
  EXPECT_FALSE(DeserializeCase(bad).ok());
}

}  // namespace
}  // namespace xpred::difftest
