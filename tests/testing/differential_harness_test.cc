// Tests of the differential fuzzing harness: determinism of the
// summary, zero divergence on the real engine roster, and — the
// harness's reason to exist — detection plus minimization of an
// injected engine bug down to a tiny repro.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "testing/differential_harness.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xpred::difftest {
namespace {

using Harness = DifferentialHarness;

Harness::Options SmallOptions() {
  Harness::Options options;
  options.runs = 30;
  options.seed = 7;
  options.exprs_per_run = 8;
  options.docs_per_run = 2;
  return options;
}

TEST(DifferentialHarnessTest, RealEnginesAgreeWithOracle) {
  Result<Harness::Summary> summary = Harness(SmallOptions()).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->mismatches, 0u) << summary->ToJson();
  EXPECT_EQ(summary->runs_executed, 30u);
  EXPECT_GT(summary->verdicts, 0u);
  EXPECT_GT(summary->expr_mutations, 0u);
  EXPECT_GT(summary->doc_mutations, 0u);
  EXPECT_GT(summary->removal_interleavings, 0u);
  EXPECT_EQ(summary->engines.size(), 13u);
}

TEST(DifferentialHarnessTest, SummaryJsonIsDeterministic) {
  Result<Harness::Summary> a = Harness(SmallOptions()).Run();
  Result<Harness::Summary> b = Harness(SmallOptions()).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToJson(), b->ToJson());

  Harness::Options other = SmallOptions();
  other.seed = 8;
  Result<Harness::Summary> c = Harness(other).Run();
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->ToJson(), c->ToJson());
}

TEST(DifferentialHarnessTest, RejectsUnknownEngineAndDtd) {
  Harness::Options options = SmallOptions();
  options.engines = {"no-such-engine"};
  EXPECT_FALSE(Harness(options).Run().ok());

  options = SmallOptions();
  options.dtd = "docbook";
  EXPECT_FALSE(Harness(options).Run().ok());
}

TEST(DifferentialHarnessTest, EngineFilterRestrictsRoster) {
  Harness::Options options = SmallOptions();
  options.runs = 5;
  options.engines = {"yfilter", "matcher-pc-ap"};
  Result<Harness::Summary> summary = Harness(options).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->engines,
            (std::vector<std::string>{"matcher-pc-ap-inline",
                                      "matcher-pc-ap-sp", "yfilter"}));
}

/// An engine with an injected bug: it silently drops every match for
/// expressions that contain a descendant ('//') step — the kind of
/// axis-semantics slip the harness exists to catch.
class BrokenEngine : public core::FilterEngine {
 public:
  Result<core::ExprId> AddExpression(std::string_view xpath) override {
    Result<core::ExprId> id = matcher_.AddExpression(xpath);
    if (id.ok()) {
      Result<xpath::PathExpr> expr = xpath::ParseXPath(xpath);
      bool has_descendant = false;
      if (expr.ok()) {
        for (const xpath::Step& step : expr->steps) {
          if (step.axis == xpath::Axis::kDescendant) has_descendant = true;
        }
      }
      if (has_descendant) broken_.push_back(*id);
    }
    return id;
  }

  Status FilterDocument(const xml::Document& document,
                        std::vector<core::ExprId>* matched) override {
    std::vector<core::ExprId> all;
    XPRED_RETURN_NOT_OK(matcher_.FilterDocument(document, &all));
    for (core::ExprId id : all) {
      if (std::find(broken_.begin(), broken_.end(), id) == broken_.end()) {
        matched->push_back(id);
      }
    }
    return Status::OK();
  }

  size_t subscription_count() const override {
    return matcher_.subscription_count();
  }
  std::string_view name() const override { return "broken"; }

 private:
  core::Matcher matcher_;
  std::vector<core::ExprId> broken_;
};

TEST(DifferentialHarnessTest, InjectedBugIsCaughtAndMinimized) {
  std::string corpus_dir =
      (std::filesystem::temp_directory_path() / "xpred_harness_test_corpus")
          .string();
  std::filesystem::remove_all(corpus_dir);

  Harness::Options options;
  options.runs = 40;
  options.seed = 3;
  options.exprs_per_run = 8;
  options.docs_per_run = 2;
  options.max_cases = 4;
  options.corpus_dir = corpus_dir;
  std::vector<RosterEntry> roster;
  roster.push_back(
      RosterEntry{"broken", [] { return std::make_unique<BrokenEngine>(); }});
  Result<Harness::Summary> summary = Harness(options, roster).Run();
  ASSERT_TRUE(summary.ok()) << summary.status();

  ASSERT_GT(summary->mismatches, 0u)
      << "the injected '//' bug was not detected";
  ASSERT_FALSE(summary->cases.empty());

  // The acceptance bar: delta debugging shrinks a generated workload
  // failure to a repro of at most 10 document nodes and 1 expression.
  for (const Harness::CaseRecord& record : summary->cases) {
    EXPECT_TRUE(record.minimized);
    EXPECT_TRUE(record.converged);
    EXPECT_LE(record.document_nodes, 10u) << record.repro.document_xml;
    EXPECT_EQ(record.repro.expressions.size(), 1u);
    // The minimized expression still exhibits the bug trigger.
    ASSERT_FALSE(record.repro.expressions.empty());
    EXPECT_NE(record.repro.expressions[0].find("//"), std::string::npos);
    // Repro files landed in the corpus directory and replay cleanly.
    ASSERT_FALSE(record.file.empty());
    Result<Case> loaded = CorpusStore::Load(record.file);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EngineOutcome outcome = Harness::ReplayCase(
        RosterEntry{"broken", [] { return std::make_unique<BrokenEngine>(); }},
        *loaded);
    EXPECT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_NE(outcome.verdicts, loaded->expected)
        << "replayed repro no longer diverges";
  }
  std::filesystem::remove_all(corpus_dir);
}

TEST(DifferentialHarnessTest, ReplayCaseMatchesExpectedOnHealthyEngine) {
  Case c;
  c.document_xml = "<a>\n  <b/>\n</a>\n";
  c.expressions = {"/a/b", "/a/c"};
  c.expected = {1, 0};
  for (const RosterEntry& entry : FullRoster()) {
    EngineOutcome outcome = Harness::ReplayCase(entry, c);
    EXPECT_TRUE(outcome.error.empty())
        << entry.label << ": " << outcome.error;
    EXPECT_EQ(outcome.verdicts, c.expected) << entry.label;
  }
}

}  // namespace
}  // namespace xpred::difftest
