// Tests for the grammar-aware workload mutator: every mutated
// expression must stay inside the supported XPath subset, every
// mutated document must stay well-formed, and mutation choices must be
// deterministic in the RNG seed.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"
#include "testing/workload_mutator.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/parser.h"
#include "xpath/query_generator.h"

namespace xpred::difftest {
namespace {

xpath::QueryGenerator::Options RichQueryOptions() {
  xpath::QueryGenerator::Options options;
  options.max_length = 5;
  options.wildcard_prob = 0.25;
  options.descendant_prob = 0.3;
  options.filters_per_expr = 2;
  options.nested_path_prob = 0.4;
  options.distinct = false;
  return options;
}

bool NoFilterOnWildcardStep(const xpath::PathExpr& expr) {
  for (const xpath::Step& step : expr.steps) {
    if (step.wildcard && step.HasFilters()) return false;
    for (const xpath::PathExpr& nested : step.nested_paths) {
      if (!NoFilterOnWildcardStep(nested)) return false;
    }
  }
  return true;
}

TEST(WorkloadMutatorTest, MutatedExpressionsStayInTheSupportedSubset) {
  xml::Dtd dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator generator(&dtd, RichQueryOptions());
  WorkloadMutator mutator(&dtd);

  Random rng(11);
  std::set<std::string> kinds;
  size_t mutated = 0;
  for (int i = 0; i < 400; ++i) {
    xpath::PathExpr expr = generator.Generate(&rng);
    std::string before = expr.ToString();
    std::string_view kind = mutator.MutateExpression(&expr, &rng);
    if (kind.empty()) continue;
    ++mutated;
    kinds.insert(std::string(kind));

    std::string after = expr.ToString();
    Result<xpath::PathExpr> reparsed = xpath::ParseXPath(after);
    ASSERT_TRUE(reparsed.ok())
        << "mutation '" << kind << "' broke '" << before << "' -> '" << after
        << "': " << reparsed.status();
    EXPECT_EQ(reparsed->ToString(), after) << "non-canonical: " << after;
    EXPECT_TRUE(NoFilterOnWildcardStep(expr))
        << "mutation '" << kind << "' put a filter on a wildcard step: "
        << after;
  }
  // Mutations apply to the overwhelming majority of generated
  // expressions, and the full move set gets exercised.
  EXPECT_GT(mutated, 350u);
  for (const char* kind :
       {"axis-flip", "wildcard-inject", "tag-swap", "attr-boundary",
        "nested-graft", "nested-drop", "step-dup", "step-drop"}) {
    EXPECT_TRUE(kinds.count(kind)) << "mutation kind never chosen: " << kind;
  }
}

TEST(WorkloadMutatorTest, MutatedDocumentsStayWellFormed) {
  xml::Dtd dtd = xml::PsdLikeDtd();
  xml::DocumentGenerator::Options doc_options;
  doc_options.max_depth = 6;
  xml::DocumentGenerator doc_generator(&dtd, doc_options);
  WorkloadMutator mutator(&dtd);

  Random rng(12);
  std::set<std::string> kinds;
  size_t mutated = 0;
  for (uint64_t i = 0; i < 200; ++i) {
    xml::Document doc = doc_generator.Generate(/*seed=*/i + 1);
    std::string_view kind = mutator.MutateDocument(&doc, &rng);
    if (kind.empty()) continue;
    ++mutated;
    kinds.insert(std::string(kind));

    ASSERT_GE(doc.size(), 1u);
    EXPECT_EQ(doc.element(doc.root()).parent, xml::kInvalidNode);
    Result<xml::Document> reparsed = xml::Document::Parse(doc.ToXml());
    ASSERT_TRUE(reparsed.ok())
        << "mutation '" << kind << "' broke well-formedness: "
        << reparsed.status();
    EXPECT_EQ(reparsed->size(), doc.size());
    EXPECT_EQ(reparsed->ToXml(), doc.ToXml());
  }
  EXPECT_GT(mutated, 150u);
  for (const char* kind : {"tag-swap", "attr-perturb", "attr-drop",
                           "attr-add", "subtree-dup", "subtree-drop"}) {
    EXPECT_TRUE(kinds.count(kind)) << "mutation kind never chosen: " << kind;
  }
}

TEST(WorkloadMutatorTest, MutationsAreDeterministicInTheSeed) {
  xml::Dtd dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator generator(&dtd, RichQueryOptions());
  WorkloadMutator mutator(&dtd);

  auto run = [&] {
    Random rng(99);
    std::vector<std::string> out;
    for (int i = 0; i < 50; ++i) {
      xpath::PathExpr expr = generator.Generate(&rng);
      mutator.MutateExpression(&expr, &rng);
      out.push_back(expr.ToString());
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(WorkloadMutatorTest, CopyDocumentSkipsSubtrees) {
  Result<xml::Document> doc =
      xml::Document::Parse("<a><b><c/><d/></b><e x=\"1\">t</e></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->size(), 5u);

  xml::Document full = CopyDocument(*doc);
  EXPECT_EQ(full.ToXml(), doc->ToXml());

  // Skipping node 1 (<b>) drops its whole subtree.
  xml::Document skipped = CopyDocument(*doc, 1);
  EXPECT_EQ(skipped.size(), 2u);
  EXPECT_EQ(skipped.element(0).tag, "a");
  EXPECT_EQ(skipped.element(1).tag, "e");
  EXPECT_EQ(*skipped.element(1).FindAttribute("x"), "1");
  EXPECT_EQ(skipped.element(1).text, "t");
}

TEST(WorkloadMutatorTest, ExtractSubtreePromotesToRoot) {
  Result<xml::Document> doc =
      xml::Document::Parse("<a><b><c year=\"7\"/><d/></b><e/></a>");
  ASSERT_TRUE(doc.ok());

  xml::Document sub = ExtractSubtree(*doc, 1);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.element(sub.root()).tag, "b");
  EXPECT_EQ(sub.element(sub.root()).depth, 1u);
  EXPECT_EQ(sub.element(1).tag, "c");
  EXPECT_EQ(*sub.element(1).FindAttribute("year"), "7");
  EXPECT_EQ(sub.element(2).tag, "d");
}

}  // namespace
}  // namespace xpred::difftest
