// Tests for the differential-test engine roster: completeness, label
// filtering, the StreamingFilter adapter, and removal-capability
// detection.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "testing/engine_roster.h"
#include "xml/document.h"

namespace xpred::difftest {
namespace {

TEST(EngineRosterTest, FullRosterCoversEveryEngineFamily) {
  std::vector<std::string> labels;
  for (const RosterEntry& entry : FullRoster()) labels.push_back(entry.label);

  // Four Matcher modes x two attribute modes, plus the five other
  // engine families = 13 configurations.
  EXPECT_EQ(labels.size(), 13u);
  const char* const expected[] = {
      "matcher-basic-inline", "matcher-basic-sp",
      "matcher-pc-inline",    "matcher-pc-sp",
      "matcher-pc-ap-inline", "matcher-pc-ap-sp",
      "matcher-trie-dfs-inline", "matcher-trie-dfs-sp",
      "yfilter", "xfilter", "index-filter", "streaming", "parallel",
  };
  for (const char* label : expected) {
    EXPECT_NE(std::find(labels.begin(), labels.end(), label), labels.end())
        << "missing roster entry: " << label;
  }
  // Labels are unique (they name JSON keys and .xpredcase sections).
  std::vector<std::string> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(EngineRosterTest, EveryFactoryBuildsAWorkingEngine) {
  for (const RosterEntry& entry : FullRoster()) {
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    ASSERT_NE(engine, nullptr) << entry.label;
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok()) << entry.label << ": " << id.status();
    EXPECT_EQ(engine->subscription_count(), 1u) << entry.label;

    Result<xml::Document> doc = xml::Document::Parse("<a><b/></a>");
    ASSERT_TRUE(doc.ok());
    std::vector<core::ExprId> matched;
    Status status = engine->FilterDocument(*doc, &matched);
    ASSERT_TRUE(status.ok()) << entry.label << ": " << status;
    EXPECT_EQ(matched, std::vector<core::ExprId>{*id}) << entry.label;
  }
}

TEST(EngineRosterTest, FilteredRosterMatchesPrefixes) {
  std::vector<std::string> unmatched;
  std::vector<RosterEntry> matchers = FilteredRoster({"matcher"}, &unmatched);
  EXPECT_EQ(matchers.size(), 8u);
  EXPECT_TRUE(unmatched.empty());

  std::vector<RosterEntry> one =
      FilteredRoster({"matcher-pc-ap-inline"}, &unmatched);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].label, "matcher-pc-ap-inline");
  EXPECT_TRUE(unmatched.empty());

  std::vector<RosterEntry> none = FilteredRoster({"saxon"}, &unmatched);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(unmatched, std::vector<std::string>{"saxon"});

  // Empty filter list = full roster.
  EXPECT_EQ(FilteredRoster({}).size(), FullRoster().size());
}

TEST(EngineRosterTest, StreamingEngineAgreesWithDirectMatcher) {
  const char* kXml =
      "<site><people><person id=\"3\"><name>n</name></person></people>"
      "<regions><asia><item id=\"3\"/></asia></regions></site>";
  const char* kExprs[] = {
      "/site/people/person",  "/site//item",
      "//person[@id = 3]",    "/site/regions/*/item",
      "/site/people/person[name]", "/site/closed_auctions",
  };
  Result<xml::Document> doc = xml::Document::Parse(kXml);
  ASSERT_TRUE(doc.ok());

  core::Matcher matcher;
  StreamingEngine streaming;
  for (const char* expr : kExprs) {
    ASSERT_TRUE(matcher.AddExpression(expr).ok()) << expr;
    ASSERT_TRUE(streaming.AddExpression(expr).ok()) << expr;
  }
  std::vector<core::ExprId> direct, streamed;
  ASSERT_TRUE(matcher.FilterDocument(*doc, &direct).ok());
  ASSERT_TRUE(streaming.FilterDocument(*doc, &streamed).ok());
  std::sort(direct.begin(), direct.end());
  std::sort(streamed.begin(), streamed.end());
  EXPECT_EQ(direct, streamed);
  EXPECT_FALSE(direct.empty());
}

TEST(EngineRosterTest, RemovableMatcherDetection) {
  size_t removable = 0;
  for (const RosterEntry& entry : FullRoster()) {
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    core::Matcher* matcher = RemovableMatcherOf(engine.get());
    bool expect_removable = entry.label.rfind("matcher", 0) == 0 ||
                            entry.label == "streaming";
    EXPECT_EQ(matcher != nullptr, expect_removable) << entry.label;
    if (matcher == nullptr) continue;
    ++removable;

    // Removal through the exposed matcher is visible in the engine's
    // verdicts (ids stay dense, so subscription_count() is unchanged).
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(matcher->RemoveSubscription(*id).ok());
    Result<xml::Document> doc = xml::Document::Parse("<a><b/></a>");
    ASSERT_TRUE(doc.ok());
    std::vector<core::ExprId> matched;
    ASSERT_TRUE(engine->FilterDocument(*doc, &matched).ok());
    EXPECT_TRUE(matched.empty())
        << entry.label << " still matches a removed subscription";
  }
  EXPECT_EQ(removable, 9u);  // 8 matcher configs + streaming.
}

}  // namespace
}  // namespace xpred::difftest
