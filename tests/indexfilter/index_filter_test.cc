// Tests for the Index-Filter baseline (query prefix tree + per-document
// element index).

#include "indexfilter/index_filter.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred::indexfilter {
namespace {

using core::ExprId;
using xpred::testing::EngineMatches;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

TEST(IndexFilterTest, SimplePaths) {
  IndexFilter f;
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a/b/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "/c", doc));
}

TEST(IndexFilterTest, WildcardAndDescendant) {
  IndexFilter f;
  xml::Document doc = ParseXmlOrDie("<a><x><b/></x><y><b><z/></b></y></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a/*/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a//b", doc));
  EXPECT_TRUE(EngineMatches(&f, "//b/z", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a/*/z", doc));
}

TEST(IndexFilterTest, RelativeExpressions) {
  IndexFilter f;
  xml::Document doc = ParseXmlOrDie("<r><x><b><c/></b></x></r>");
  EXPECT_TRUE(EngineMatches(&f, "b/c", doc));
  EXPECT_TRUE(EngineMatches(&f, "x//c", doc));
  EXPECT_FALSE(EngineMatches(&f, "c/b", doc));
}

TEST(IndexFilterTest, PrefixTreeSharing) {
  IndexFilter f;
  ASSERT_TRUE(f.AddExpression("/a/b/c").ok());
  size_t after_first = f.query_tree_size();
  ASSERT_TRUE(f.AddExpression("/a/b/d").ok());
  EXPECT_EQ(f.query_tree_size(), after_first + 1);
  ASSERT_TRUE(f.AddExpression("/a/b").ok());
  EXPECT_EQ(f.query_tree_size(), after_first + 1);
}

TEST(IndexFilterTest, LevelSensitivity) {
  // child vs descendant distinguished through levels.
  IndexFilter f;
  xml::Document doc = ParseXmlOrDie("<a><m><b/></m></a>");
  EXPECT_FALSE(EngineMatches(&f, "/a/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a//b", doc));
}

TEST(IndexFilterTest, IntervalContainment) {
  // b outside a's subtree must not join.
  IndexFilter f;
  xml::Document doc = ParseXmlOrDie("<r><a><x/></a><b/></r>");
  EXPECT_FALSE(EngineMatches(&f, "a//b", doc));
  EXPECT_TRUE(EngineMatches(&f, "r//b", doc));
}

TEST(IndexFilterTest, DuplicatesShareInternalState) {
  IndexFilter f;
  auto id1 = f.AddExpression("/a/b");
  auto id2 = f.AddExpression("/a/b");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(f.distinct_expression_count(), 1u);
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(FilterSorted(&f, doc), (std::vector<ExprId>{*id1, *id2}));
}

TEST(IndexFilterTest, AttributeAndNestedFilters) {
  IndexFilter f;
  xml::Document doc = ParseXmlOrDie("<a x=\"3\"><b/><c/></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a[@x = 3]/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a[@x = 4]/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a[b]/c", doc));
}

TEST(IndexFilterTest, OccurrenceHeavyPaths) {
  IndexFilter f;
  xml::Document doc =
      ParseXmlOrDie("<a><b><c><a><b><c/></b></a></c></b></a>");
  EXPECT_TRUE(EngineMatches(&f, "a//b/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "c//b//a", doc));
}

TEST(IndexFilterTest, AgainstOracleOnFixedCorpus) {
  const std::vector<std::string> docs = {
      "<a><b><c/></b></a>",
      "<a><b/><b><c/></b></a>",
      "<a><a><b><a/></b></a></a>",
      "<x><y><z/></y><y><w><z/></w></y></x>",
      "<a><c><a><c><a><c/></a></c></a></c></a>",
  };
  const std::vector<std::string> exprs = {
      "/a",      "/a/b",   "/a/b/c", "a",      "b/c",    "c",
      "//b",     "/a//c",  "a//a",   "/*/b",   "/*/*",   "*",
      "*/*/*",   "/a/*/c", "b//c",   "/x/y/z", "x//z",   "a/c/a",
      "a//c//a", "/a/c/*/a",
  };
  IndexFilter f;
  std::vector<ExprId> ids = xpred::testing::AddAll(&f, exprs);
  for (const std::string& doc_text : docs) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    std::vector<ExprId> matched = FilterSorted(&f, doc);
    for (size_t i = 0; i < exprs.size(); ++i) {
      bool expected =
          xpath::Evaluator::Matches(ParseXPathOrDie(exprs[i]), doc);
      bool actual =
          std::binary_search(matched.begin(), matched.end(), ids[i]);
      EXPECT_EQ(actual, expected)
          << "doc=" << doc_text << " expr=" << exprs[i];
    }
  }
}

TEST(IndexFilterTest, InvalidExpressionRejected) {
  IndexFilter f;
  EXPECT_FALSE(f.AddExpression("").ok());
  EXPECT_FALSE(f.AddExpression("/a[").ok());
}

}  // namespace
}  // namespace xpred::indexfilter
