// Tests for the XFilter baseline (per-expression FSMs + query index).

#include "xfilter/xfilter.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred::xfilter {
namespace {

using core::ExprId;
using xpred::testing::EngineMatches;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

TEST(XFilterTest, SimplePaths) {
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a/b/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a/c", doc));
}

TEST(XFilterTest, LevelConstraints) {
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<a><m><b/></m></a>");
  EXPECT_FALSE(EngineMatches(&f, "/a/b", doc));  // b is a grandchild.
  EXPECT_TRUE(EngineMatches(&f, "/a//b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a/*/b", doc));
}

TEST(XFilterTest, PromotionsRetractedAcrossSubtrees) {
  // The 'a' in the left subtree must not license a 'b' in the right
  // subtree.
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<r><x><a/></x><y><b/></y></r>");
  EXPECT_FALSE(EngineMatches(&f, "a/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "a//b", doc));
  XFilter f2;
  xml::Document nested = ParseXmlOrDie("<r><x><a><b/></a></x></r>");
  EXPECT_TRUE(EngineMatches(&f2, "a/b", nested));
}

TEST(XFilterTest, RelativeExpressionsFloat) {
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<r><x><b><c/></b></x></r>");
  EXPECT_TRUE(EngineMatches(&f, "b/c", doc));
  EXPECT_TRUE(EngineMatches(&f, "c", doc));
  EXPECT_FALSE(EngineMatches(&f, "c/b", doc));
}

TEST(XFilterTest, WildcardsProbeEveryElement) {
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<a><b/><c><d/></c></a>");
  EXPECT_TRUE(EngineMatches(&f, "/*/c/*", doc));
  EXPECT_TRUE(EngineMatches(&f, "*/*/*", doc));
  EXPECT_FALSE(EngineMatches(&f, "/*/*/*/*", doc));
}

TEST(XFilterTest, SelfRecursiveTags) {
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<a><a><a/></a></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a/a/a", doc));
  EXPECT_TRUE(EngineMatches(&f, "a//a", doc));
  XFilter f2;
  EXPECT_FALSE(EngineMatches(&f2, "/a/a/a/a", doc));
}

TEST(XFilterTest, OccurrenceHeavyPaths) {
  XFilter f;
  xml::Document doc =
      ParseXmlOrDie("<a><b><c><a><b><c/></b></a></c></b></a>");
  EXPECT_TRUE(EngineMatches(&f, "a//b/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "c//b//a", doc));
}

TEST(XFilterTest, DuplicatesShareFsms) {
  XFilter f;
  auto s1 = f.AddExpression("/a/b");
  auto s2 = f.AddExpression("/a/b");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(f.distinct_expression_count(), 1u);
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(FilterSorted(&f, doc), (std::vector<ExprId>{*s1, *s2}));
}

TEST(XFilterTest, SelectionPostponedFilters) {
  XFilter f;
  xml::Document doc = ParseXmlOrDie("<a x=\"3\"><b/><c/></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a[@x = 3]/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a[@x = 4]/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a[b]/c", doc));
}

TEST(XFilterTest, RepeatedFilteringIsStateless) {
  XFilter f;
  auto id = f.AddExpression("/a/b");
  ASSERT_TRUE(id.ok());
  xml::Document hit = ParseXmlOrDie("<a><b/></a>");
  xml::Document miss = ParseXmlOrDie("<a><c/></a>");
  EXPECT_EQ(FilterSorted(&f, hit).size(), 1u);
  EXPECT_EQ(FilterSorted(&f, miss).size(), 0u);
  EXPECT_EQ(FilterSorted(&f, hit).size(), 1u);
}

TEST(XFilterTest, AgainstOracleOnFixedCorpus) {
  const std::vector<std::string> docs = {
      "<a><b><c/></b></a>",
      "<a><b/><b><c/></b></a>",
      "<a><a><b><a/></b></a></a>",
      "<x><y><z/></y><y><w><z/></w></y></x>",
      "<a><c><a><c><a><c/></a></c></a></c></a>",
  };
  const std::vector<std::string> exprs = {
      "/a",      "/a/b",   "/a/b/c", "a",      "b/c",    "c",
      "//b",     "/a//c",  "a//a",   "/*/b",   "/*/*",   "*",
      "*/*/*",   "/a/*/c", "b//c",   "/x/y/z", "x//z",   "a/c/a",
      "a//c//a", "/a/c/*/a",
  };
  XFilter f;
  std::vector<ExprId> ids = xpred::testing::AddAll(&f, exprs);
  for (const std::string& doc_text : docs) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    std::vector<ExprId> matched = FilterSorted(&f, doc);
    for (size_t i = 0; i < exprs.size(); ++i) {
      bool expected =
          xpath::Evaluator::Matches(ParseXPathOrDie(exprs[i]), doc);
      bool actual =
          std::binary_search(matched.begin(), matched.end(), ids[i]);
      EXPECT_EQ(actual, expected)
          << "doc=" << doc_text << " expr=" << exprs[i];
    }
  }
}

TEST(XFilterTest, InvalidExpressionRejected) {
  XFilter f;
  EXPECT_FALSE(f.AddExpression("").ok());
  EXPECT_FALSE(f.AddExpression("/a[").ok());
}

}  // namespace
}  // namespace xpred::xfilter
