// HttpServer end-to-end tests over real loopback sockets: routing,
// keep-alive pipelining, parse-error close, the slowloris deadline,
// and the over-capacity shed path (DESIGN.md §17).

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "net/http_client.h"
#include "net/server.h"

namespace xpred::net {
namespace {

/// Raw loopback TCP client for the shapes HttpGet cannot produce
/// (trickled bytes, pipelined writes, half-open connections).
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(std::string_view data) {
    return ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(data.size());
  }

  /// Reads until EOF or \p timeout_ms of socket silence.
  std::string ReadAll(int timeout_ms = 2000) {
    std::string out;
    char buf[4096];
    while (true) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) break;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

Router TestRouter() {
  Router router;
  router.Handle("/ping", [](const HttpRequest&) {
    return HttpResponse::Text(200, "pong");
  });
  router.Handle("/echo-query", [](const HttpRequest& request) {
    return HttpResponse::Text(200, request.QueryParam("q"));
  });
  return router;
}

TEST(HttpServerTest, ServesAndStops) {
  Router router = TestRouter();
  HttpServer server(HttpServer::Options{}, &router);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Result<FetchResult> result = HttpGet("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body, "pong");

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stop is idempotent.
  server.Stop();
}

TEST(HttpServerTest, QueryParamsReachHandlers) {
  Router router = TestRouter();
  HttpServer server(HttpServer::Options{}, &router);
  ASSERT_TRUE(server.Start().ok());
  Result<FetchResult> result =
      HttpGet("127.0.0.1", server.port(), "/echo-query?q=42&x=y");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->body, "42");
  server.Stop();
}

TEST(HttpServerTest, UnknownPathIs404KnownPathBadMethodIs405) {
  Router router = TestRouter();
  HttpServer server(HttpServer::Options{}, &router);
  ASSERT_TRUE(server.Start().ok());

  Result<FetchResult> missing =
      HttpGet("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.Send("POST /ping HTTP/1.1\r\nConnection: close\r\n"
                       "Content-Length: 0\r\n\r\n"));
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(response.find("Allow: GET, HEAD"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HeadMirrorsGetWithoutBody) {
  Router router = TestRouter();
  HttpServer server(HttpServer::Options{}, &router);
  ASSERT_TRUE(server.Start().ok());
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.Send("HEAD /ping HTTP/1.1\r\nConnection: close\r\n\r\n"));
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  // Content-Length reflects the GET body, but no body follows.
  EXPECT_NE(response.find("Content-Length: 4"), std::string::npos);
  EXPECT_EQ(response.find("pong"), std::string::npos);
  server.Stop();
}

/// Two requests written in one burst on one connection come back as
/// two responses, in order, on the same connection.
TEST(HttpServerTest, KeepAlivePipelining) {
  Router router = TestRouter();
  HttpServer server(HttpServer::Options{}, &router);
  ASSERT_TRUE(server.Start().ok());
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.Send("GET /ping HTTP/1.1\r\n\r\n"
                       "GET /echo-query?q=second HTTP/1.1\r\n"
                       "Connection: close\r\n\r\n"));
  const std::string response = raw.ReadAll();
  const size_t first = response.find("pong");
  const size_t second = response.find("second");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);

  HttpServer::Stats stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.accepted, 1u);
  server.Stop();
}

/// Garbage on the wire gets a 400 and a close, and is counted.
TEST(HttpServerTest, ParseErrorAnswers400AndCloses) {
  Router router = TestRouter();
  HttpServer server(HttpServer::Options{}, &router);
  ASSERT_TRUE(server.Start().ok());
  RawClient raw(server.port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.Send("NOT-HTTP\r\n\r\n"));
  const std::string response = raw.ReadAll();
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server.stats().parse_errors, 1u);
  server.Stop();
}

/// The slowloris defense: a client trickling one byte at a time past
/// the connection deadline is cut off and counted, and the serving
/// thread stays responsive for well-behaved clients afterwards.
TEST(HttpServerTest, SlowlorisHitsConnectionDeadline) {
  Router router = TestRouter();
  HttpServer::Options options;
  options.connection_deadline_ms = 300;
  HttpServer server(options, &router);
  ASSERT_TRUE(server.Start().ok());

  RawClient slow(server.port());
  ASSERT_TRUE(slow.connected());
  const std::string wire = "GET /ping HTTP/1.1\r\n";
  const auto start = std::chrono::steady_clock::now();
  size_t sent = 0;
  // Trickle a byte every 50ms, never completing the request.
  while (std::chrono::steady_clock::now() - start <
         std::chrono::milliseconds(900)) {
    if (sent < wire.size()) {
      if (!slow.Send(std::string_view(&wire[sent], 1))) break;
      ++sent;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // The server must have closed on us: recv sees EOF, no response.
  const std::string response = slow.ReadAll(500);
  EXPECT_EQ(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(server.stats().deadline_closes, 1u);

  // And a prompt client still gets served.
  Result<FetchResult> ok = HttpGet("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200);
  server.Stop();
}

/// Connections beyond max_connections are shed immediately.
TEST(HttpServerTest, OverCapacityConnectionsAreShed) {
  Router router = TestRouter();
  HttpServer::Options options;
  options.max_connections = 2;
  HttpServer server(options, &router);
  ASSERT_TRUE(server.Start().ok());

  // Two idle connections occupy the table...
  RawClient first(server.port());
  RawClient second(server.port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  // ...give the serving thread a moment to accept both.
  for (int i = 0; i < 100 && server.stats().accepted < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(server.stats().accepted, 2u);

  // The third is accepted at the socket layer, then closed at once.
  RawClient third(server.port());
  ASSERT_TRUE(third.connected());
  ASSERT_TRUE(third.Send("GET /ping HTTP/1.1\r\n\r\n"));
  const std::string response = third.ReadAll(1000);
  EXPECT_TRUE(response.empty()) << response;
  for (int i = 0; i < 100 && server.stats().rejected_over_capacity < 1;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().rejected_over_capacity, 1u);
  server.Stop();
}

TEST(HttpServerTest, StartFailsOnPortInUse) {
  Router router = TestRouter();
  HttpServer first(HttpServer::Options{}, &router);
  ASSERT_TRUE(first.Start().ok());
  HttpServer::Options clash;
  clash.port = first.port();
  HttpServer second(clash, &router);
  Status st = second.Start();
  EXPECT_FALSE(st.ok());
  first.Stop();
}

}  // namespace
}  // namespace xpred::net
