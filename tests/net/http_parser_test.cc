// RequestParser wire-format tests: torn reads, pipelining, limits, and
// the error-status taxonomy the introspection server sends back
// (DESIGN.md §17). Table-driven where the cases are uniform.

#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "net/http.h"

namespace xpred::net {
namespace {

using Result = RequestParser::Result;

HttpRequest ParseOneOrDie(std::string_view wire) {
  RequestParser parser;
  parser.Append(wire);
  HttpRequest request;
  EXPECT_EQ(parser.TryNext(&request), Result::kReady) << wire;
  return request;
}

TEST(RequestParserTest, ParsesSimpleGet) {
  HttpRequest request = ParseOneOrDie(
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n");
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.path(), "/metrics");
  EXPECT_EQ(request.query(), "");
  EXPECT_EQ(request.Header("host"), "localhost");
  EXPECT_TRUE(request.keep_alive());
}

TEST(RequestParserTest, HeaderNamesAreLowercasedValuesTrimmed) {
  HttpRequest request = ParseOneOrDie(
      "GET / HTTP/1.1\r\nX-Custom-HEADER:   spaced value  \r\n\r\n");
  EXPECT_EQ(request.Header("x-custom-header"), "spaced value");
}

TEST(RequestParserTest, QueryParamSplitting) {
  HttpRequest request = ParseOneOrDie(
      "GET /debug/trace?doc=3&verbose=1 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(request.path(), "/debug/trace");
  EXPECT_EQ(request.query(), "doc=3&verbose=1");
  EXPECT_EQ(request.QueryParam("doc"), "3");
  EXPECT_EQ(request.QueryParam("verbose"), "1");
  EXPECT_EQ(request.QueryParam("absent"), "");
}

TEST(RequestParserTest, BareLfLineEndingsAccepted) {
  HttpRequest request =
      ParseOneOrDie("GET /healthz HTTP/1.1\nHost: x\n\n");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.Header("host"), "x");
}

TEST(RequestParserTest, ContentLengthBodyConsumed) {
  HttpRequest request = ParseOneOrDie(
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "hello");
}

/// Keep-alive semantics per version and Connection header.
TEST(RequestParserTest, KeepAliveSemantics) {
  struct Case {
    const char* wire;
    bool keep_alive;
  };
  const Case kCases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(ParseOneOrDie(c.wire).keep_alive(), c.keep_alive) << c.wire;
  }
}

/// The slowloris shape at the parser layer: bytes arrive one at a
/// time; the parser must report kNeedMore for every proper prefix and
/// kReady exactly at the final byte.
TEST(RequestParserTest, TornReadsByteAtATime) {
  const std::string wire =
      "GET /statusz?x=1 HTTP/1.1\r\nHost: a\r\nAccept: */*\r\n\r\n";
  RequestParser parser;
  HttpRequest request;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.Append(std::string_view(&wire[i], 1));
    ASSERT_EQ(parser.TryNext(&request), Result::kNeedMore) << i;
  }
  parser.Append(std::string_view(&wire[wire.size() - 1], 1));
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.path(), "/statusz");
  EXPECT_FALSE(parser.has_buffered_input());
}

/// A body split across appends must also assemble.
TEST(RequestParserTest, TornBodyAssembles) {
  RequestParser parser;
  parser.Append("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  HttpRequest request;
  ASSERT_EQ(parser.TryNext(&request), Result::kNeedMore);
  parser.Append("defghij");
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.body, "abcdefghij");
}

/// Pipelined requests drain one TryNext at a time, in order.
TEST(RequestParserTest, PipelinedRequestsDrainInOrder) {
  RequestParser parser;
  parser.Append(
      "GET /first HTTP/1.1\r\n\r\n"
      "GET /second HTTP/1.1\r\nHost: b\r\n\r\n"
      "GET /third HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.target, "/first");
  ASSERT_TRUE(parser.has_buffered_input());
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.target, "/second");
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.target, "/third");
  EXPECT_FALSE(parser.has_buffered_input());
  EXPECT_EQ(parser.TryNext(&request), Result::kNeedMore);
}

TEST(RequestParserTest, LeadingCrlfBetweenPipelinedRequestsTolerated) {
  RequestParser parser;
  parser.Append("GET /a HTTP/1.1\r\n\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.target, "/a");
  ASSERT_EQ(parser.TryNext(&request), Result::kReady);
  EXPECT_EQ(request.target, "/b");
}

/// Malformed input taxonomy: each case must fail with the exact HTTP
/// status the server sends before closing.
TEST(RequestParserTest, ErrorStatusTaxonomy) {
  struct Case {
    const char* name;
    std::string wire;
    int status;
  };
  const Case kCases[] = {
      {"missing version", "GET /\r\n\r\n", 400},
      {"garbage request line", "%%%\r\n\r\n", 400},
      {"non-origin-form target", "GET http://evil/ HTTP/1.1\r\n\r\n", 400},
      {"bad method token", "GE T / HTTP/1.1\r\n\r\n", 400},
      {"unsupported version", "GET / HTTP/2.0\r\n\r\n", 505},
      {"obsolete header folding",
       "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", 400},
      {"transfer-encoding unsupported",
       "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"non-numeric content-length",
       "GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400},
      {"header without colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
  };
  for (const Case& c : kCases) {
    RequestParser parser;
    parser.Append(c.wire);
    HttpRequest request;
    EXPECT_EQ(parser.TryNext(&request), Result::kError) << c.name;
    EXPECT_EQ(parser.error_status(), c.status) << c.name;
    EXPECT_FALSE(parser.error_reason().empty()) << c.name;
    // A poisoned parser stays poisoned, even with fresh valid input.
    parser.Append("GET / HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.TryNext(&request), Result::kError) << c.name;
  }
}

/// The header-section cap fires even when the section never
/// terminates — the defense against an attacker streaming an
/// unbounded header.
TEST(RequestParserTest, OversizedHeaderSectionIs431) {
  RequestParser::Options options;
  options.max_header_bytes = 128;
  RequestParser parser(options);
  parser.Append("GET / HTTP/1.1\r\n");
  std::string filler(200, 'a');
  parser.Append("X-Big: " + filler + "\r\n");
  HttpRequest request;
  EXPECT_EQ(parser.TryNext(&request), Result::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParserTest, OversizedBodyIs413) {
  RequestParser::Options options;
  options.max_body_bytes = 16;
  RequestParser parser(options);
  parser.Append("POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  HttpRequest request;
  EXPECT_EQ(parser.TryNext(&request), Result::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, ConflictingContentLengthsRejected) {
  RequestParser parser;
  parser.Append(
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n"
      "\r\nabcd");
  HttpRequest request;
  EXPECT_EQ(parser.TryNext(&request), Result::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

/// Serialize always frames with Content-Length and carries the
/// requested Connection disposition.
TEST(HttpResponseTest, SerializeFraming) {
  HttpResponse response = HttpResponse::Text(200, "hello");
  const std::string keep = response.Serialize(/*close=*/false);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(keep.find("Connection: close"), std::string::npos);
  EXPECT_EQ(keep.substr(keep.size() - 5), "hello");

  const std::string close = response.Serialize(/*close=*/true);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpResponseTest, JsonHelperSetsContentType) {
  HttpResponse response = HttpResponse::Json(503, "{}");
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(response.content_type, "application/json");
  const std::string wire = response.Serialize(true);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
}

}  // namespace
}  // namespace xpred::net
