#ifndef XPRED_TESTS_TEST_UTIL_H_
#define XPRED_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"

#include "core/engine.h"
#include "xml/document.h"
#include "xpath/ast.h"
#include "xpath/parser.h"

namespace xpred::testing {

/// Parses XML or aborts the test.
inline xml::Document ParseXmlOrDie(std::string_view text) {
  Result<xml::Document> doc = xml::Document::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

/// Parses an XPath or aborts the test.
inline xpath::PathExpr ParseXPathOrDie(std::string_view text) {
  Result<xpath::PathExpr> expr = xpath::ParseXPath(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
  return std::move(expr).value();
}

/// Adds expressions to an engine; returns their subscription ids.
inline std::vector<core::ExprId> AddAll(
    core::FilterEngine* engine, const std::vector<std::string>& exprs) {
  std::vector<core::ExprId> ids;
  for (const std::string& e : exprs) {
    Result<core::ExprId> id = engine->AddExpression(e);
    EXPECT_TRUE(id.ok()) << e << ": " << id.status();
    ids.push_back(id.ok() ? *id : 0);
  }
  return ids;
}

/// Filters a document and returns the sorted matched subscription ids.
inline std::vector<core::ExprId> FilterSorted(core::FilterEngine* engine,
                                              const xml::Document& doc) {
  std::vector<core::ExprId> matched;
  Status st = engine->FilterDocument(doc, &matched);
  EXPECT_TRUE(st.ok()) << st;
  std::sort(matched.begin(), matched.end());
  return matched;
}

/// True iff \p engine matches \p expr (added fresh) on \p doc.
inline bool EngineMatches(core::FilterEngine* engine, const std::string& expr,
                          const xml::Document& doc) {
  Result<core::ExprId> id = engine->AddExpression(expr);
  EXPECT_TRUE(id.ok()) << expr << ": " << id.status();
  std::vector<core::ExprId> matched;
  Status st = engine->FilterDocument(doc, &matched);
  EXPECT_TRUE(st.ok()) << st;
  return std::find(matched.begin(), matched.end(), *id) != matched.end();
}

}  // namespace xpred::testing

#endif  // XPRED_TESTS_TEST_UTIL_H_
