// Tests for the tracing layer: sink semantics (ring buffer, JSONL)
// and the end-to-end span stream produced by a real streaming
// filtering run.

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace xpred::obs {
namespace {

TraceSpan MakeSpan(uint64_t doc, Stage stage, uint64_t start,
                   uint64_t dur) {
  TraceSpan span;
  span.document = doc;
  span.stage = stage;
  span.engine = "test";
  span.start_nanos = start;
  span.duration_nanos = dur;
  return span;
}

TEST(StageNameTest, AllStagesNamed) {
  EXPECT_EQ(StageName(Stage::kParse), "parse");
  EXPECT_EQ(StageName(Stage::kEncode), "encode");
  EXPECT_EQ(StageName(Stage::kPredicate), "predicate");
  EXPECT_EQ(StageName(Stage::kOccurrence), "occurrence");
  EXPECT_EQ(StageName(Stage::kVerify), "verify");
  EXPECT_EQ(StageName(Stage::kCollect), "collect");
}

TEST(RingBufferSinkTest, KeepsMostRecentSpans) {
  RingBufferSink sink(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    sink.Emit(MakeSpan(i, Stage::kEncode, i * 10, i));
  }
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.dropped(), 2u);
  std::vector<TraceSpan> spans = sink.Drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].document, 3u);  // Oldest surviving span first.
  EXPECT_EQ(spans[1].document, 4u);
  EXPECT_EQ(spans[2].document, 5u);
  EXPECT_EQ(sink.size(), 0u);
  // The sink keeps accepting after a drain.
  sink.Emit(MakeSpan(6, Stage::kCollect, 0, 1));
  EXPECT_EQ(sink.Drain().size(), 1u);
}

/// Regression: Drain() used to hand back the buffered spans but leave
/// `dropped_` at its pre-drain value, so the counter double-reported
/// evictions from earlier windows forever after.
TEST(RingBufferSinkTest, DrainResetsDroppedCounter) {
  RingBufferSink sink(2);
  for (uint64_t i = 1; i <= 5; ++i) {
    sink.Emit(MakeSpan(i, Stage::kParse, i * 10, i));
  }
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.Drain().size(), 2u);
  EXPECT_EQ(sink.dropped(), 0u);
  // A fresh window that never overflows stays at zero...
  sink.Emit(MakeSpan(6, Stage::kParse, 60, 1));
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.Drain().size(), 1u);
  // ...and a window that overflows again counts only its own drops.
  for (uint64_t i = 7; i <= 9; ++i) {
    sink.Emit(MakeSpan(i, Stage::kParse, i * 10, i));
  }
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(RingBufferSinkTest, UnderCapacityKeepsEverything) {
  RingBufferSink sink(10);
  sink.Emit(MakeSpan(1, Stage::kParse, 0, 5));
  sink.Emit(MakeSpan(1, Stage::kEncode, 5, 7));
  EXPECT_EQ(sink.dropped(), 0u);
  std::vector<TraceSpan> spans = sink.Drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, Stage::kParse);
  EXPECT_EQ(spans[1].stage, Stage::kEncode);
}

TEST(JsonlSinkTest, WritesOneObjectPerLine) {
  std::ostringstream out;
  JsonlSink sink(&out);
  sink.Emit(MakeSpan(1, Stage::kPredicate, 123, 456));
  sink.Emit(MakeSpan(2, Stage::kCollect, 1000, 1));
  sink.Flush();
  EXPECT_EQ(out.str(),
            "{\"doc\":1,\"engine\":\"test\",\"span\":\"predicate\","
            "\"start_ns\":123,\"dur_ns\":456}\n"
            "{\"doc\":2,\"engine\":\"test\",\"span\":\"collect\","
            "\"start_ns\":1000,\"dur_ns\":1}\n");
}

TEST(TracerTest, NumbersDocumentsSequentially) {
  RingBufferSink sink;
  Tracer tracer(&sink);
  EXPECT_EQ(tracer.BeginDocument(), 1u);
  EXPECT_EQ(tracer.BeginDocument(), 2u);
  tracer.EmitSpan("e", Stage::kVerify, 10, 20);
  std::vector<TraceSpan> spans = sink.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].document, 2u);
  EXPECT_EQ(spans[0].engine, "e");
}

/// The integration contract from the issue: a StreamingFilter run
/// emits the per-document stage spans in pipeline order, and their
/// durations account for the engine's total measured time.
TEST(TracingIntegrationTest, StreamingFilterEmitsStageSpans) {
  core::Matcher matcher;
  ASSERT_TRUE(matcher.AddExpression("/a//b").ok());
  ASSERT_TRUE(matcher.AddExpression("/a/c[@x = '1']").ok());

  RingBufferSink sink;
  Tracer tracer(&sink);
  matcher.set_tracer(&tracer);

  core::StreamingFilter filter(&matcher);
  std::vector<core::ExprId> matched;
  const char* doc = "<a><x><b/></x><c x=\"1\"/></a>";
  ASSERT_TRUE(filter.FilterXml(doc, &matched).ok());
  ASSERT_TRUE(filter.FilterXml(doc, &matched).ok());

  std::vector<TraceSpan> spans = sink.Drain();
  ASSERT_FALSE(spans.empty());

  // Group by document; each document's spans arrive in Stage order
  // with contiguous synthetic offsets.
  std::map<uint64_t, std::vector<TraceSpan>> by_doc;
  for (const TraceSpan& span : spans) {
    EXPECT_EQ(span.engine, matcher.name());
    by_doc[span.document].push_back(span);
  }
  ASSERT_EQ(by_doc.size(), 2u);
  uint64_t all_span_nanos = 0;
  for (const auto& [doc_id, doc_spans] : by_doc) {
    // The streaming pipeline always touches these stages.
    std::vector<Stage> stages;
    for (const TraceSpan& span : doc_spans) stages.push_back(span.stage);
    std::vector<Stage> want = {Stage::kEncode, Stage::kPredicate,
                               Stage::kOccurrence, Stage::kCollect};
    EXPECT_EQ(stages, want) << "document " << doc_id;
    // Spans tile: each starts where the previous ended.
    for (size_t i = 1; i < doc_spans.size(); ++i) {
      EXPECT_EQ(doc_spans[i].start_nanos,
                doc_spans[i - 1].start_nanos +
                    doc_spans[i - 1].duration_nanos);
    }
    for (const TraceSpan& span : doc_spans) {
      all_span_nanos += span.duration_nanos;
    }
  }

  // Span durations and EngineStats are two views of the same stage
  // accumulators: the totals must agree (spans here exclude the parse
  // stage, which StreamingFilter never populates — FilterXml parses
  // inline with encode).
  double stats_micros = matcher.stats().total_micros();
  double span_micros = static_cast<double>(all_span_nanos) / 1000.0;
  EXPECT_NEAR(span_micros, stats_micros,
              stats_micros * 0.01 + 1.0);

  // The per-stage latency histograms saw one sample per document.
  obs::MetricsSnapshot snapshot = matcher.metrics_registry()->Snapshot();
  const std::string key = "xpred_stage_latency_ns{engine=\"" +
                          std::string(matcher.name()) +
                          "\",stage=\"predicate\"}";
  ASSERT_TRUE(snapshot.histograms.count(key)) << key;
  EXPECT_EQ(snapshot.histograms.at(key).count, 2u);
}

}  // namespace
}  // namespace xpred::obs
