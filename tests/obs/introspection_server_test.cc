// IntrospectionServer end-to-end tests: every endpoint served over a
// real socket, health transitions driven by a wedged watchdog slot,
// and — under -L parallel, i.e. also TSan — concurrent scraping while
// a ParallelFilter batch loop publishes through the hub
// (DESIGN.md §17).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "exec/parallel_filter.h"
#include "net/http_client.h"
#include "obs/flight_recorder.h"
#include "obs/introspection_server.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "test_util.h"

namespace xpred::obs {
namespace {

using net::FetchResult;
using net::HttpGet;
using xpred::testing::AddAll;
using xpred::testing::ParseXmlOrDie;

FetchResult GetOrDie(const IntrospectionServer& server,
                     std::string_view target) {
  Result<FetchResult> result =
      HttpGet("127.0.0.1", server.port(), target);
  EXPECT_TRUE(result.ok()) << target << ": " << result.status().ToString();
  return result.ok() ? *result : FetchResult{};
}

/// A registry with one counter and one gauge, pre-incremented.
void SeedRegistry(MetricsRegistry* registry) {
  Counter* docs = registry->AddCounter(
      "xpred_documents_total", "Documents filtered.", {{"engine", "test"}});
  docs->Increment(7);
  Gauge* depth = registry->AddGauge(
      "xpred_pool_queue_depth", "Queue depth.", {{"engine", "test"}});
  depth->Set(3);
}

TEST(IntrospectionServerTest, IndexListsEveryEndpoint) {
  IntrospectionHub hub;
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());
  FetchResult index = GetOrDie(server, "/");
  EXPECT_EQ(index.status, 200);
  for (const char* path :
       {"/metrics", "/healthz", "/readyz", "/statusz", "/debug/workload",
        "/debug/recorder", "/debug/trace"}) {
    EXPECT_NE(index.body.find(path), std::string::npos) << path;
  }
  server.Stop();
}

TEST(IntrospectionServerTest, MetricsServesPublishedText) {
  MetricsRegistry registry;
  SeedRegistry(&registry);
  IntrospectionHub hub;
  hub.PublishMetrics(registry);
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  FetchResult metrics = GetOrDie(server, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.Header("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(
      metrics.body.find("xpred_documents_total{engine=\"test\"} 7"),
      std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("# TYPE xpred_documents_total counter"),
            std::string::npos);
  server.Stop();
}

TEST(IntrospectionServerTest, HealthzTransitionsWithWedgedWorker) {
  // Two real slots plus a phantom third we wedge by hand.
  Watchdog::Options options;
  options.stall_timeout_ms = 0;  // Silent-since-last-scan counts as stalled.
  Watchdog watchdog(3, options);
  IntrospectionHub hub;
  hub.AddWatchdogCheck(&watchdog);
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  FetchResult healthy = GetOrDie(server, "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"status\": \"ok\""), std::string::npos);

  // Wedge: slot 2 goes busy, baseline scan, then a scan with no beat.
  watchdog.BeginWork(2);
  watchdog.ScanOnce();
  watchdog.ScanOnce();

  FetchResult unhealthy = GetOrDie(server, "/healthz");
  EXPECT_EQ(unhealthy.status, 503);
  // The failing check is named, with its human-readable detail.
  EXPECT_NE(unhealthy.body.find("\"name\": \"watchdog\""),
            std::string::npos)
      << unhealthy.body;
  EXPECT_NE(unhealthy.body.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(unhealthy.body.find("stalled"), std::string::npos);
  EXPECT_NE(unhealthy.body.find("\"status\": \"unhealthy\""),
            std::string::npos);

  // Recovery: the wedged slot beats and finishes; /healthz goes green.
  watchdog.Beat(2);
  watchdog.EndWork(2);
  watchdog.ScanOnce();
  FetchResult recovered = GetOrDie(server, "/healthz");
  EXPECT_EQ(recovered.status, 200);
  server.Stop();
}

TEST(IntrospectionServerTest, ReadyzIncludesReadinessChecks) {
  IntrospectionHub hub;
  bool ready = false;
  hub.AddCheck("warmup", IntrospectionHub::CheckKind::kReadiness, [&ready] {
    HealthCheckResult result;
    result.ok = ready;
    result.detail = ready ? "warm" : "still warming up";
    return result;
  });
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  // Not ready: /readyz is 503 but /healthz stays 200 (liveness only).
  EXPECT_EQ(GetOrDie(server, "/healthz").status, 200);
  FetchResult not_ready = GetOrDie(server, "/readyz");
  EXPECT_EQ(not_ready.status, 503);
  EXPECT_NE(not_ready.body.find("\"kind\": \"readiness\""),
            std::string::npos);
  EXPECT_NE(not_ready.body.find("still warming up"), std::string::npos);

  ready = true;
  EXPECT_EQ(GetOrDie(server, "/readyz").status, 200);
  server.Stop();
}

TEST(IntrospectionServerTest, StatuszReportsBuildUptimeAndGauges) {
  MetricsRegistry registry;
  SeedRegistry(&registry);
  IntrospectionHub hub;
  IntrospectionHub::BuildInfo build = hub.build_info();
  build.version = "test-version";
  hub.set_build_info(std::move(build));
  hub.PublishMetrics(registry);
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  FetchResult statusz = GetOrDie(server, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_EQ(statusz.Header("content-type"), "application/json");
  EXPECT_NE(statusz.body.find("\"service\": \"xpred\""),
            std::string::npos);
  EXPECT_NE(statusz.body.find("\"version\": \"test-version\""),
            std::string::npos);
  EXPECT_NE(statusz.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(statusz.body.find("\"metrics_publishes\": 1"),
            std::string::npos);
  EXPECT_NE(
      statusz.body.find("\"xpred_pool_queue_depth{engine=\\\"test\\\"}\""),
      std::string::npos)
      << statusz.body;
  server.Stop();
}

TEST(IntrospectionServerTest, DebugWorkloadServesPublishedJson) {
  IntrospectionHub hub;
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  // Before any publication: a JSON note, not an error.
  FetchResult empty = GetOrDie(server, "/debug/workload");
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("no workload report"), std::string::npos);

  hub.PublishWorkload("{\"schema_version\": 1, \"totals\": {}}");
  FetchResult report = GetOrDie(server, "/debug/workload");
  EXPECT_NE(report.body.find("\"schema_version\": 1"), std::string::npos);
  server.Stop();
}

TEST(IntrospectionServerTest, DebugRecorderStreamsEventsAsJsonl) {
  FlightRecorder recorder;
  recorder.Record(EventType::kDocBegin, 11, 0);
  recorder.Record(EventType::kDocEnd, 11, 42);

  IntrospectionHub hub;
  hub.set_recorder(&recorder);
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  FetchResult events = GetOrDie(server, "/debug/recorder");
  EXPECT_EQ(events.status, 200);
  EXPECT_EQ(events.Header("content-type"), "application/x-ndjson");
  EXPECT_NE(events.body.find("\"events\": 2"), std::string::npos)
      << events.body;
  EXPECT_NE(events.body.find("\"type\": \"doc_begin\""),
            std::string::npos);

  // The scrape is a Peek: the recorder still holds everything.
  EXPECT_EQ(recorder.Drain().events.size(), 2u);
  server.Stop();
}

TEST(IntrospectionServerTest, DebugRecorderWithoutRecorderIs404) {
  IntrospectionHub hub;
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(GetOrDie(server, "/debug/recorder").status, 404);
  server.Stop();
}

TEST(IntrospectionServerTest, DebugTraceFiltersByDocument) {
  IntrospectionHub hub;
  std::vector<IntrospectionHub::Span> spans;
  for (uint64_t doc : {1u, 1u, 2u}) {
    IntrospectionHub::Span span;
    span.document = doc;
    span.stage = Stage::kPredicate;
    span.engine = "test";
    span.duration_nanos = 10 * doc;
    spans.push_back(std::move(span));
  }
  hub.PublishSpans(std::move(spans));
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  FetchResult all = GetOrDie(server, "/debug/trace");
  EXPECT_EQ(all.status, 200);
  EXPECT_NE(all.body.find("\"doc\": 2"), std::string::npos);

  FetchResult doc1 = GetOrDie(server, "/debug/trace?doc=1");
  EXPECT_NE(doc1.body.find("\"doc\": 1"), std::string::npos);
  EXPECT_EQ(doc1.body.find("\"doc\": 2"), std::string::npos);

  EXPECT_EQ(GetOrDie(server, "/debug/trace?doc=bogus").status, 400);
  server.Stop();
}

TEST(IntrospectionServerTest, MaybePublishRateLimits) {
  MetricsRegistry registry;
  SeedRegistry(&registry);
  IntrospectionHub hub;
  EXPECT_TRUE(hub.MaybePublishMetrics(registry, /*min_interval_ms=*/1000));
  // Immediately again: inside the interval, skipped.
  EXPECT_FALSE(hub.MaybePublishMetrics(registry, 1000));
  EXPECT_EQ(hub.metrics_publishes(), 1u);
  // Zero interval always publishes.
  EXPECT_TRUE(hub.MaybePublishMetrics(registry, 0));
}

/// The TSan-covered contract of the whole plane: HTTP scrapers hammer
/// every endpoint while the owner thread runs ParallelFilter batches
/// and publishes metrics/workload/spans through the hub. Any
/// unsynchronized sharing between the serving thread and the filter
/// pipeline shows up here as a race.
TEST(IntrospectionScrapeRaceTest, ConcurrentScrapeAndFilterBatches) {
  FlightRecorder recorder;
  FlightRecorder::Install(&recorder);

  exec::ParallelFilter::Options pool;
  pool.threads = 4;
  pool.partitions = 2;
  exec::ParallelFilter engine(pool);
  MetricsRegistry registry;
  engine.BindMetrics(&registry);
  AddAll(&engine, {"/a/b", "//c", "/a/b[@x=1]", "/a/*"});

  Watchdog::Options wd_options;
  wd_options.poll_interval_ms = 1;
  wd_options.stall_timeout_ms = 60000;
  Watchdog watchdog(pool.threads, wd_options);
  engine.set_watchdog(&watchdog);
  watchdog.Start();

  IntrospectionHub hub;
  hub.set_recorder(&recorder);
  hub.AddWatchdogCheck(&watchdog);
  hub.AddBreakerCheck();
  hub.PublishMetrics(registry);
  IntrospectionServer server(&hub, {});
  ASSERT_TRUE(server.Start().ok());

  std::vector<xml::Document> docs;
  for (int i = 0; i < 32; ++i) {
    docs.push_back(ParseXmlOrDie(
        i % 2 == 0 ? "<a><b x=\"1\"/><c/></a>"
                   : "<a><b><c/></b><b x=\"2\"/></a>"));
  }
  std::vector<exec::DocRef> refs;
  for (const xml::Document& doc : docs) refs.push_back({&doc});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};
  std::vector<std::thread> scrapers;
  const char* kTargets[] = {"/metrics", "/healthz", "/readyz", "/statusz",
                            "/debug/recorder", "/debug/trace"};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        Result<FetchResult> result = HttpGet(
            "127.0.0.1", server.port(), kTargets[i % 6], /*timeout_ms=*/2000);
        if (result.ok()) scrapes.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  exec::CollectingResultSink sink;
  std::vector<IntrospectionHub::Span> spans;
  for (int round = 0; round < 20; ++round) {
    sink.clear();
    ASSERT_TRUE(engine.FilterBatch(refs, sink).ok());
    ASSERT_EQ(sink.results().size(), docs.size());
    hub.MaybePublishMetrics(registry, /*min_interval_ms=*/1);
    IntrospectionHub::Span span;
    span.document = static_cast<uint64_t>(round);
    span.engine = "parallel";
    spans.push_back(std::move(span));
    hub.PublishSpans(spans);
    hub.PublishWorkload("{\"round\": " + std::to_string(round) + "}");
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& scraper : scrapers) scraper.join();
  server.Stop();
  watchdog.Stop();
  FlightRecorder::Install(nullptr);

  // The scrapers must have actually exercised the endpoints.
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_GT(server.http_stats().requests, 0u);
}

}  // namespace
}  // namespace xpred::obs
