// Tests for the observability metrics primitives: counters, gauges,
// log-linear histograms (bucket boundaries and quantiles), registry
// registration semantics, and snapshot/delta arithmetic.

#include <cstdint>
#include <limits>

#include "gtest/gtest.h"

#include "obs/metrics.h"

namespace xpred::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramBucketsTest, SmallValuesAreExact) {
  // Indexes [0, 16) hold values 0..15 exactly: singleton buckets.
  for (uint64_t v = 0; v < 16; ++v) {
    uint32_t index = Histogram::BucketIndex(v);
    EXPECT_EQ(index, v);
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(Histogram::BucketUpperBound(index), v);
  }
}

TEST(HistogramBucketsTest, OctaveBoundaries) {
  // Octave o >= 1 covers [16 << (o-1), 16 << o) with 16 sub-buckets of
  // width 2^(o-1). Check the first octave explicitly...
  EXPECT_EQ(Histogram::BucketIndex(16), 16u);
  EXPECT_EQ(Histogram::BucketIndex(17), 17u);
  EXPECT_EQ(Histogram::BucketIndex(31), 31u);
  // ...and the second octave (width-2 buckets over [32, 64)).
  EXPECT_EQ(Histogram::BucketIndex(32), 32u);
  EXPECT_EQ(Histogram::BucketIndex(33), 32u);
  EXPECT_EQ(Histogram::BucketIndex(34), 33u);
  EXPECT_EQ(Histogram::BucketLowerBound(32), 32u);
  EXPECT_EQ(Histogram::BucketUpperBound(32), 33u);
}

TEST(HistogramBucketsTest, BoundsAreConsistentEverywhere) {
  // For a spread of magnitudes: every value lands in a bucket whose
  // [lower, upper] range contains it, whose width is at most 1/16 of
  // the value, and bucket indexes are monotone in the value.
  uint32_t prev_index = 0;
  for (uint64_t v = 1; v < (uint64_t{1} << 62); v = v * 3 + 1) {
    uint32_t index = Histogram::BucketIndex(v);
    EXPECT_GE(index, prev_index);
    prev_index = index;
    uint64_t lo = Histogram::BucketLowerBound(index);
    uint64_t hi = Histogram::BucketUpperBound(index);
    EXPECT_LE(lo, v);
    EXPECT_GE(hi, v);
    if (v >= 16) {
      EXPECT_LE(hi - lo + 1, v / 8 + 1) << "bucket too wide at " << v;
    }
    // Adjacent buckets tile the value axis without gaps or overlap.
    EXPECT_EQ(Histogram::BucketIndex(lo), index);
    EXPECT_EQ(Histogram::BucketIndex(hi), index);
    if (index + 1 < Histogram::kBucketCount) {
      EXPECT_EQ(Histogram::BucketLowerBound(index + 1), hi + 1);
    }
  }
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(100);
  h.Record(7);
  h.Record(100000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 100107u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 100000u);
}

TEST(HistogramTest, QuantilesOnUniformData) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // The bucket upper bound over-reports by at most the bucket width
  // (<= value/16 at these magnitudes).
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(h.Quantile(0.9), 900.0, 900.0 / 16 + 1);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 990.0 / 16 + 1);
  // Quantile(1.0) is clamped to the exact maximum.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  // Quantiles never exceed the exact max even in the top bucket.
  EXPECT_LE(h.Quantile(0.999), 1000.0);
}

TEST(HistogramTest, QuantileOfSingleValue) {
  Histogram h;
  h.Record(12345);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 12345.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 12345.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 12345.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  h.Record(3);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 3u);
}

TEST(HistogramTest, MergeFromCombinesRecordings) {
  Histogram a, b;
  a.Record(10);
  a.Record(1000);
  b.Record(1);
  b.Record(100000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 101011u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100000u);
}

TEST(HistogramTest, HandlesHugeValues) {
  Histogram h;
  uint64_t huge = std::numeric_limits<uint64_t>::max();
  h.Record(huge);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), huge);
  EXPECT_LT(Histogram::BucketIndex(huge), Histogram::kBucketCount);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("reqs", "Requests.", {{"engine", "x"}});
  Counter* b = registry.AddCounter("reqs", "Requests.", {{"engine", "x"}});
  EXPECT_EQ(a, b);
  // Different labels make a different instance of the same family.
  Counter* c = registry.AddCounter("reqs", "Requests.", {{"engine", "y"}});
  EXPECT_NE(a, c);
  a->Increment(3);
  c->Increment(4);
  EXPECT_EQ(registry.Snapshot().counters.at("reqs{engine=\"x\"}"), 3u);
  EXPECT_EQ(registry.Snapshot().counters.at("reqs{engine=\"y\"}"), 4u);
}

TEST(MetricsRegistryTest, PointersSurviveMoreRegistrations) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter("c0", "h");
  for (int i = 1; i < 100; ++i) {
    registry.AddCounter("c" + std::to_string(i), "h");
  }
  first->Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("c0"), 1u);
}

TEST(MetricsRegistryTest, RenderLabelsEscapes) {
  EXPECT_EQ(MetricsRegistry::RenderLabels({}), "");
  EXPECT_EQ(MetricsRegistry::RenderLabels({{"a", "b"}}), "a=\"b\"");
  EXPECT_EQ(MetricsRegistry::RenderLabels({{"a", "q\"u\\o\nte"}}),
            "a=\"q\\\"u\\\\o\\nte\"");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("n", "h");
  Gauge* g = registry.AddGauge("g", "h");
  Histogram* h = registry.AddHistogram("l", "h");
  c->Increment(7);
  g->Set(2.0);
  h->Record(100);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Same pointers still registered and usable.
  EXPECT_EQ(registry.AddCounter("n", "h"), c);
  c->Increment();
  EXPECT_EQ(registry.Snapshot().counters.at("n"), 1u);
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("docs", "h");
  Gauge* g = registry.AddGauge("depth", "h");
  Histogram* h = registry.AddHistogram("lat", "h");
  c->Increment(10);
  g->Set(5.0);
  h->Record(100);
  h->Record(200);
  MetricsSnapshot before = registry.Snapshot();
  c->Increment(5);
  g->Set(9.0);
  h->Record(300);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.at("docs"), 5u);
  // Gauges are last-value: the delta keeps the current reading.
  EXPECT_DOUBLE_EQ(delta.gauges.at("depth"), 9.0);
  const HistogramSnapshot& hs = delta.histograms.at("lat");
  EXPECT_EQ(hs.count, 1u);
  EXPECT_EQ(hs.sum, 300u);
  uint64_t bucket_total = 0;
  for (const auto& [upper, count] : hs.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, 1u);
}

TEST(MetricsSnapshotTest, SparseBucketsMatchCount) {
  MetricsRegistry registry;
  Histogram* h = registry.AddHistogram("lat", "h");
  h->Record(3);
  h->Record(3);
  h->Record(1000);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("lat");
  ASSERT_EQ(hs.buckets.size(), 2u);
  EXPECT_EQ(hs.buckets[0].first, 3u);  // Exact singleton bucket.
  EXPECT_EQ(hs.buckets[0].second, 2u);
  EXPECT_EQ(hs.buckets[1].second, 1u);
  EXPECT_EQ(hs.count, 3u);
  EXPECT_DOUBLE_EQ(hs.Quantile(0.5), 3.0);
}

}  // namespace
}  // namespace xpred::obs
