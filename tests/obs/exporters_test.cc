// Golden-file tests for the metrics exporters: the Prometheus text
// exposition and the JSON dump are deterministic for a given registry
// state, so their exact output is pinned under tests/obs/testdata/.
//
// To regenerate after an intentional format change:
//   XPRED_REGEN_GOLDEN=1 ./exporters_test

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

#include "obs/exporters.h"
#include "obs/metrics.h"

#ifndef XPRED_OBS_TESTDATA_DIR
#error "XPRED_OBS_TESTDATA_DIR must be defined by the build"
#endif

namespace xpred::obs {
namespace {

/// A registry with every metric type, fixed values, two label sets,
/// and characters that need escaping.
MetricsRegistry* FixtureRegistry() {
  auto* registry = new MetricsRegistry();
  Counter* docs = registry->AddCounter(
      "xpred_documents_total", "Documents filtered.", {{"engine", "fix"}});
  docs->Increment(3);
  Counter* paths = registry->AddCounter(
      "xpred_paths_total", "Root-to-leaf document paths processed.",
      {{"engine", "fix"}});
  paths->Increment(120);
  Gauge* depth = registry->AddGauge("xpred_stream_max_depth",
                                    "Maximum open-element stack depth",
                                    {{"engine", "fix"}});
  depth->Set(7);
  Gauge* ratio =
      registry->AddGauge("fixture_ratio", "A non-integral gauge value.");
  ratio->Set(0.25);
  Counter* quoted = registry->AddCounter(
      "fixture_escaped", "Label escaping.", {{"q", "a\"b\\c\nd"}});
  quoted->Increment();
  for (const char* stage : {"encode", "predicate"}) {
    Histogram* h = registry->AddHistogram(
        "xpred_stage_latency_ns",
        "Per-document filtering-stage latency in nanoseconds.",
        {{"engine", "fix"}, {"stage", stage}});
    h->Record(7);
    h->Record(100);
    h->Record(100);
    h->Record(123456);
  }
  return registry;
}

std::string GoldenPath(const std::string& name) {
  return std::string(XPRED_OBS_TESTDATA_DIR) + "/" + name;
}

void CompareOrRegen(const std::string& golden_name,
                    const std::string& actual) {
  std::string path = GoldenPath(golden_name);
  if (std::getenv("XPRED_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with XPRED_REGEN_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "exporter output changed; if "
                                    << "intentional, regenerate with "
                                    << "XPRED_REGEN_GOLDEN=1";
}

TEST(ExportersGoldenTest, PrometheusText) {
  std::unique_ptr<MetricsRegistry> registry(FixtureRegistry());
  std::ostringstream out;
  WritePrometheusText(*registry, &out);
  CompareOrRegen("prometheus.golden", out.str());
}

TEST(ExportersGoldenTest, Json) {
  std::unique_ptr<MetricsRegistry> registry(FixtureRegistry());
  std::ostringstream out;
  WriteJson(*registry, &out);
  CompareOrRegen("metrics_json.golden", out.str());
}

TEST(ExportersGoldenTest, SidecarJson) {
  std::unique_ptr<MetricsRegistry> registry(FixtureRegistry());
  std::ostringstream out;
  WriteMetricsSidecarJson(registry->Snapshot(), "exporters_test", "fix",
                          &out);
  CompareOrRegen("sidecar_json.golden", out.str());
}

TEST(ExportersTest, PrometheusHistogramInvariants) {
  // Beyond the golden bytes: cumulative bucket counts must be
  // non-decreasing and end at _count.
  std::unique_ptr<MetricsRegistry> registry(FixtureRegistry());
  std::ostringstream out;
  WritePrometheusText(*registry, &out);
  std::istringstream in(out.str());
  std::string line;
  uint64_t last_bucket = 0;
  bool saw_inf = false;
  while (std::getline(in, line)) {
    if (line.find("xpred_stage_latency_ns_bucket") != 0) continue;
    if (line.find("stage=\"encode\"") == std::string::npos) continue;
    uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, last_bucket) << line;
    last_bucket = value;
    if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(last_bucket, 4u);
}

/// A registry engineered to break naive exposition writers: HELP text
/// with backslashes/newlines/quotes, label values with every escaped
/// character, and series of one family registered interleaved with
/// other families.
MetricsRegistry* HostileRegistry() {
  auto* registry = new MetricsRegistry();
  registry
      ->AddCounter("hostile_requests_total",
                   "Path C:\\temp\\x, a \"quoted\" phrase,\nsecond line.",
                   {{"tenant", "a\\b"}})
      ->Increment(1);
  // Interleave another family before this one's second series; TYPE
  // and HELP must still appear exactly once per family.
  registry->AddCounter("innocent_total", "Nothing special.")->Increment(7);
  registry
      ->AddCounter("hostile_requests_total",
                   "Path C:\\temp\\x, a \"quoted\" phrase,\nsecond line.",
                   {{"tenant", "c\"d\ne\\f"}})
      ->Increment(3);
  registry
      ->AddGauge("hostile_gauge", "Trailing backslash in help \\",
                 {{"k", "\n\\\""}})
      ->Set(-1.5);
  return registry;
}

TEST(ExportersGoldenTest, PrometheusHostileNames) {
  std::unique_ptr<MetricsRegistry> registry(HostileRegistry());
  std::ostringstream out;
  WritePrometheusText(*registry, &out);
  CompareOrRegen("prometheus_hostile.golden", out.str());
}

TEST(ExportersTest, TypeAndHelpEmittedOncePerFamily) {
  std::unique_ptr<MetricsRegistry> registry(HostileRegistry());
  std::ostringstream out;
  WritePrometheusText(*registry, &out);
  std::istringstream in(out.str());
  std::string line;
  int type_lines = 0;
  int help_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE hostile_requests_total ", 0) == 0) ++type_lines;
    if (line.rfind("# HELP hostile_requests_total ", 0) == 0) ++help_lines;
  }
  EXPECT_EQ(type_lines, 1);
  EXPECT_EQ(help_lines, 1);
}

TEST(ExportersTest, HelpAndLabelEscaping) {
  std::unique_ptr<MetricsRegistry> registry(HostileRegistry());
  std::ostringstream out;
  WritePrometheusText(*registry, &out);
  const std::string text = out.str();

  // Every comment line must be exactly "# HELP" or "# TYPE": a raw
  // newline in help text would orphan its continuation.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '#') continue;
    EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                line.rfind("# TYPE ", 0) == 0)
        << "orphan comment line: " << line;
  }

  // HELP escaping: backslash doubled, newline as \n (4 raw chars
  // "\\n" in the C++ literal below is backslash + 'n' on the wire).
  EXPECT_NE(text.find("C:\\\\temp\\\\x"), std::string::npos);
  EXPECT_NE(text.find("phrase,\\nsecond line."), std::string::npos);
  EXPECT_NE(text.find("Trailing backslash in help \\\\\n"),
            std::string::npos);
  // Label escaping: value a\b renders as "a\\b", the quote as \".
  EXPECT_NE(text.find("tenant=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("tenant=\"c\\\"d\\ne\\\\f\""), std::string::npos);
}

TEST(ExportersTest, EmptyRegistryProducesEmptyOutputs) {
  MetricsRegistry registry;
  std::ostringstream prom;
  WritePrometheusText(registry, &prom);
  EXPECT_EQ(prom.str(), "");
  std::ostringstream json;
  WriteJson(registry, &json);
  EXPECT_EQ(json.str(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

}  // namespace
}  // namespace xpred::obs
