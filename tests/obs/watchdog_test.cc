// Unit tests for the parallel-pipeline watchdog: heartbeat and busy
// bookkeeping, edge-triggered stall reporting via deterministic
// ScanOnce calls, flight-recorder integration, and the one-shot
// voluntary dump.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

#include "common/json.h"
#include "obs/flight_recorder.h"
#include "obs/watchdog.h"

namespace xpred::obs {
namespace {

/// Options with a zero stall timeout: a busy worker whose beat did
/// not move between two scans counts as stalled immediately, which
/// makes stall detection fully deterministic (no sleeps).
Watchdog::Options ImmediateStall() {
  Watchdog::Options options;
  options.stall_timeout_ms = 0;
  return options;
}

TEST(WatchdogTest, IdleWorkersNeverStall) {
  Watchdog watchdog(4, ImmediateStall());
  watchdog.ScanOnce();
  watchdog.ScanOnce();
  Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.scans, 2u);
  EXPECT_EQ(stats.stalls, 0u);
  EXPECT_EQ(stats.stalled_now, 0u);
}

TEST(WatchdogTest, StallIsEdgeTriggeredPerBeat) {
  Watchdog watchdog(2, ImmediateStall());
  watchdog.BeginWork(0);
  watchdog.ScanOnce();  // Baseline: beat observed for the first time.
  EXPECT_EQ(watchdog.stats().stalls, 0u);
  watchdog.ScanOnce();  // Same beat, silence >= timeout: stall.
  Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.stalled_now, 1u);
  // Further scans of the same stuck beat do not re-report.
  watchdog.ScanOnce();
  watchdog.ScanOnce();
  stats = watchdog.stats();
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.stalled_now, 1u);
}

TEST(WatchdogTest, HeartbeatClearsStallAndReArms) {
  Watchdog watchdog(1, ImmediateStall());
  watchdog.BeginWork(0);
  watchdog.ScanOnce();
  watchdog.ScanOnce();
  EXPECT_EQ(watchdog.stats().stalls, 1u);
  watchdog.Beat(0);  // Progress: the worker is alive after all.
  watchdog.ScanOnce();
  EXPECT_EQ(watchdog.stats().stalled_now, 0u);
  // A second silent stretch on the new beat value is a new episode.
  watchdog.ScanOnce();
  Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.stalls, 2u);
  EXPECT_EQ(stats.stalled_now, 1u);
}

TEST(WatchdogTest, EndWorkStopsWatching) {
  Watchdog watchdog(1, ImmediateStall());
  watchdog.BeginWork(0);
  watchdog.ScanOnce();
  watchdog.EndWork(0);
  watchdog.ScanOnce();
  watchdog.ScanOnce();
  Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.stalls, 0u);
  EXPECT_EQ(stats.stalled_now, 0u);
}

TEST(WatchdogTest, OutOfRangeWorkersAreIgnored) {
  Watchdog watchdog(1, ImmediateStall());
  watchdog.BeginWork(7);  // Must not crash.
  watchdog.Beat(7);
  watchdog.EndWork(7);
  watchdog.ScanOnce();
  EXPECT_EQ(watchdog.stats().stalls, 0u);
}

TEST(WatchdogTest, StallTimeoutIsHonoured) {
  // A generous timeout means back-to-back scans never see enough
  // silence to call a busy worker stalled.
  Watchdog::Options options;
  options.stall_timeout_ms = 60000;
  Watchdog watchdog(1, options);
  watchdog.BeginWork(0);
  for (int i = 0; i < 5; ++i) watchdog.ScanOnce();
  EXPECT_EQ(watchdog.stats().stalls, 0u);
}

TEST(WatchdogTest, RecordsStallAndScanEvents) {
  FlightRecorder recorder;
  Watchdog::Options options = ImmediateStall();
  options.recorder = &recorder;
  Watchdog watchdog(2, options);
  watchdog.BeginWork(1);
  watchdog.ScanOnce();
  watchdog.ScanOnce();
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  bool saw_stall = false;
  size_t scan_events = 0;
  for (const FlightRecorder::Event& event : snapshot.events) {
    if (event.type == EventType::kStall) {
      saw_stall = true;
      EXPECT_EQ(event.a, 1u);  // The stalled worker index.
    } else if (event.type == EventType::kWatchdogScan) {
      ++scan_events;
    }
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_EQ(scan_events, 2u);
}

TEST(WatchdogTest, FirstStallEpisodeWritesOneVoluntaryBundle) {
  const std::string path =
      ::testing::TempDir() + "/xpred_watchdog_test_bundle.json";
  std::remove(path.c_str());
  FlightRecorder recorder;
  Watchdog::Options options = ImmediateStall();
  options.recorder = &recorder;
  options.dump_path = path;
  Watchdog watchdog(1, options);
  watchdog.BeginWork(0);
  watchdog.ScanOnce();
  watchdog.ScanOnce();  // First stall: writes the bundle.
  watchdog.Beat(0);
  watchdog.ScanOnce();
  watchdog.ScanOnce();  // Second stall episode: must NOT overwrite.
  Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.stalls, 2u);
  EXPECT_EQ(stats.dumps, 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> bundle = ParseJson(buffer.str());
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  const JsonValue* magic = bundle->Find("xpred_diag_bundle");
  ASSERT_NE(magic, nullptr);
  EXPECT_EQ(magic->AsU64(), 1u);
  const JsonValue* reason = bundle->Find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->AsString(), "watchdog");
  // The bundle carries the stall event that triggered it.
  const JsonValue* events = bundle->FindPath({"recorder", "events"});
  ASSERT_NE(events, nullptr);
  bool saw_stall = false;
  for (const JsonValue& event : events->array()) {
    const JsonValue* type = event.Find("type");
    if (type != nullptr && type->AsString() == "stall") saw_stall = true;
  }
  EXPECT_TRUE(saw_stall);
  std::remove(path.c_str());
}

TEST(WatchdogTest, StartAndStopAreIdempotent) {
  Watchdog::Options options;
  options.poll_interval_ms = 1;
  Watchdog watchdog(1, options);
  watchdog.Start();
  watchdog.Start();
  watchdog.Stop();
  watchdog.Stop();
  watchdog.Start();  // Restartable after a stop.
  watchdog.Stop();
}

TEST(WatchdogTest, LastStallTimestampTransitions) {
  Watchdog watchdog(1, ImmediateStall());
  // Never stalled: the timestamp gauge reads 0.
  watchdog.ScanOnce();
  EXPECT_EQ(watchdog.stats().last_stall_nanos, 0u);

  watchdog.BeginWork(0);
  watchdog.ScanOnce();  // Baseline.
  EXPECT_EQ(watchdog.stats().last_stall_nanos, 0u);
  watchdog.ScanOnce();  // First stall: timestamp set.
  const uint64_t first = watchdog.stats().last_stall_nanos;
  EXPECT_GT(first, 0u);

  // Recovery does not clear the timestamp — it records the *last*
  // stall, and together with stalled_now=0 reads as "was stalled,
  // recovered".
  watchdog.Beat(0);
  watchdog.ScanOnce();
  EXPECT_EQ(watchdog.stats().stalled_now, 0u);
  EXPECT_EQ(watchdog.stats().last_stall_nanos, first);

  // A new stall episode advances it.
  watchdog.ScanOnce();
  const uint64_t second = watchdog.stats().last_stall_nanos;
  EXPECT_EQ(watchdog.stats().stalls, 2u);
  EXPECT_GE(second, first);
  EXPECT_EQ(watchdog.stats().stalled_now, 1u);
}

}  // namespace
}  // namespace xpred::obs
