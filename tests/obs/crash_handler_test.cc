// Tests for the crash handler: voluntary WriteBundle output, the
// Install/Uninstall file lifecycle, and — via gtest death tests — the
// async-signal-safe dump path on a real SIGABRT and on
// std::terminate.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

#include "common/json.h"
#include "obs/crash_handler.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace xpred::obs {
namespace {

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.is_open();
}

TEST(DumpReasonNameTest, StableWireNames) {
  EXPECT_EQ(DumpReasonName(DumpReason::kSignal), "signal");
  EXPECT_EQ(DumpReasonName(DumpReason::kTerminate), "terminate");
  EXPECT_EQ(DumpReasonName(DumpReason::kWatchdog), "watchdog");
  EXPECT_EQ(DumpReasonName(DumpReason::kManual), "manual");
}

TEST(CrashHandlerTest, WriteBundleCapturesRecorderAndMetrics) {
  const std::string path =
      ::testing::TempDir() + "/xpred_manual_bundle.json";
  std::remove(path.c_str());

  FlightRecorder recorder;
  recorder.Record(EventType::kDocBegin, 1, 0);
  recorder.Record(EventType::kQuarantine, 1, 9);
  recorder.AnnotateDocument(/*fingerprint=*/0x1234, /*doc_seq=*/1);

  MetricsRegistry registry;
  Counter* docs = registry.AddCounter("xpred_docs_total", "docs",
                                      {{"engine", "test"}});
  docs->Increment();
  docs->Increment();
  registry.AddGauge("xpred_breaker_state", "breaker")->Set(2);

  ASSERT_TRUE(CrashHandler::WriteBundle(path, DumpReason::kManual,
                                        &recorder, &registry)
                  .ok());

  Result<JsonValue> bundle = ParseJson(ReadFileOrEmpty(path));
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->Find("xpred_diag_bundle")->AsU64(), 1u);
  EXPECT_EQ(bundle->Find("reason")->AsString(), "manual");

  // The dump itself is journaled: doc_begin, quarantine, then the
  // kDump marker recorded by WriteBundle.
  const JsonValue* events = bundle->FindPath({"recorder", "events"});
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 3u);
  EXPECT_EQ(events->array()[0].Find("type")->AsString(), "doc_begin");
  EXPECT_EQ(events->array()[1].Find("type")->AsString(), "quarantine");
  EXPECT_EQ(events->array()[1].Find("b")->AsU64(), 9u);
  EXPECT_EQ(events->array()[2].Find("type")->AsString(), "dump");
  EXPECT_EQ(events->array()[2].Find("a")->AsU64(),
            static_cast<uint64_t>(DumpReason::kManual));

  const JsonValue* docs_json = bundle->FindPath({"recorder", "thread_docs"});
  ASSERT_NE(docs_json, nullptr);
  ASSERT_EQ(docs_json->array().size(), 1u);
  EXPECT_EQ(docs_json->array()[0].Find("fingerprint")->AsU64(), 0x1234u);

  const JsonValue* metrics = bundle->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  bool saw_counter = false, saw_gauge = false;
  for (const JsonValue& metric : metrics->array()) {
    const std::string_view name = metric.Find("name")->AsString();
    if (name == "xpred_docs_total{engine=\"test\"}") {
      saw_counter = true;
      EXPECT_EQ(metric.Find("type")->AsString(), "counter");
      EXPECT_EQ(metric.Find("value")->AsU64(), 2u);
    } else if (name == "xpred_breaker_state") {
      saw_gauge = true;
      EXPECT_EQ(metric.Find("type")->AsString(), "gauge");
      EXPECT_EQ(metric.Find("value")->AsDouble(), 2.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);

  // WriteBundle reads the recorder non-destructively: a later Drain
  // still sees the events (plus the journaled dump marker).
  EXPECT_EQ(recorder.Drain().events.size(), 3u);
  std::remove(path.c_str());
}

TEST(CrashHandlerTest, PeekScrapeThenCrashStillYieldsFullBundle) {
  // Regression for the introspection plane: a `/debug/recorder`
  // scrape (Peek) between the events and the crash must not consume
  // anything the bundle needs.
  const std::string path =
      ::testing::TempDir() + "/xpred_post_scrape_bundle.json";
  std::remove(path.c_str());

  FlightRecorder recorder;
  recorder.Record(EventType::kDocBegin, 1, 0);
  recorder.Record(EventType::kQuarantine, 1, 9);

  // The scrape.
  EXPECT_EQ(recorder.Peek().events.size(), 2u);

  // The crash.
  ASSERT_TRUE(CrashHandler::WriteBundle(path, DumpReason::kManual,
                                        &recorder, nullptr)
                  .ok());
  Result<JsonValue> bundle = ParseJson(ReadFileOrEmpty(path));
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  const JsonValue* events = bundle->FindPath({"recorder", "events"});
  ASSERT_NE(events, nullptr);
  // Both pre-scrape events plus the journaled dump marker.
  ASSERT_EQ(events->array().size(), 3u);
  EXPECT_EQ(events->array()[0].Find("type")->AsString(), "doc_begin");
  EXPECT_EQ(events->array()[1].Find("type")->AsString(), "quarantine");
  EXPECT_EQ(events->array()[2].Find("type")->AsString(), "dump");
  std::remove(path.c_str());
}

TEST(CrashHandlerTest, WriteBundleToleratesNullSources) {
  const std::string path =
      ::testing::TempDir() + "/xpred_null_bundle.json";
  std::remove(path.c_str());
  ASSERT_TRUE(CrashHandler::WriteBundle(path, DumpReason::kManual,
                                        nullptr, nullptr)
                  .ok());
  Result<JsonValue> bundle = ParseJson(ReadFileOrEmpty(path));
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  const JsonValue* installed =
      bundle->FindPath({"recorder", "installed"});
  ASSERT_NE(installed, nullptr);
  EXPECT_FALSE(installed->AsBool(true));
  std::remove(path.c_str());
}

TEST(CrashHandlerTest, WriteBundleFailsOnUnwritablePath) {
  EXPECT_FALSE(CrashHandler::WriteBundle(
                   "/nonexistent-dir/bundle.json", DumpReason::kManual,
                   nullptr, nullptr)
                   .ok());
}

TEST(CrashHandlerTest, UninstallRemovesBundleWhenNothingDumped) {
  const std::string path =
      ::testing::TempDir() + "/xpred_clean_run_bundle.json";
  std::remove(path.c_str());
  CrashHandler::Options options;
  options.bundle_path = path;
  ASSERT_TRUE(CrashHandler::Install(options).ok());
  EXPECT_TRUE(CrashHandler::Installed());
  EXPECT_TRUE(FileExists(path));  // Pre-opened at install time.
  CrashHandler::Uninstall();
  EXPECT_FALSE(CrashHandler::Installed());
  // A clean run leaves no empty bundle behind.
  EXPECT_FALSE(FileExists(path));
}

TEST(CrashHandlerTest, InstallFailsWhenBundleCannotBeCreated) {
  CrashHandler::Options options;
  options.bundle_path = "/nonexistent-dir/bundle.json";
  EXPECT_FALSE(CrashHandler::Install(options).ok());
  EXPECT_FALSE(CrashHandler::Installed());
}

/// Runs in the death-test child: installs the handler and dies the
/// requested way. The bundle lands in a file the parent inspects.
[[noreturn]] void DieWithHandlerInstalled(const std::string& path,
                                          bool via_terminate) {
  static FlightRecorder recorder;  // Outlives the "crash".
  recorder.Record(EventType::kDocBegin, 1, 0);
  recorder.AnnotateDocument(/*fingerprint=*/0xdead, /*doc_seq=*/1);
  CrashHandler::Options options;
  options.bundle_path = path;
  options.recorder = &recorder;
  if (!CrashHandler::Install(options).ok()) _exit(97);
  if (via_terminate) std::terminate();
  std::abort();
}

JsonValue LoadBundleOrDie(const std::string& path) {
  const std::string text = ReadFileOrEmpty(path);
  Result<JsonValue> bundle = ParseJson(text);
  EXPECT_TRUE(bundle.ok()) << bundle.status() << "\n" << text;
  return bundle.ok() ? std::move(bundle).value() : JsonValue();
}

TEST(CrashHandlerDeathTest, AbortWritesSignalBundle) {
  const std::string path =
      ::testing::TempDir() + "/xpred_abort_bundle.json";
  std::remove(path.c_str());
  EXPECT_EXIT(DieWithHandlerInstalled(path, /*via_terminate=*/false),
              ::testing::KilledBySignal(SIGABRT), "");
  JsonValue bundle = LoadBundleOrDie(path);
  ASSERT_TRUE(bundle.is_object());
  EXPECT_EQ(bundle.Find("xpred_diag_bundle")->AsU64(), 1u);
  EXPECT_EQ(bundle.Find("reason")->AsString(), "signal");
  EXPECT_EQ(bundle.Find("signal")->AsU64(), static_cast<uint64_t>(SIGABRT));
  // doc_begin plus the kDump marker the crash path journals.
  const JsonValue* events = bundle.FindPath({"recorder", "events"});
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 2u);
  EXPECT_EQ(events->array()[0].Find("type")->AsString(), "doc_begin");
  EXPECT_EQ(events->array()[1].Find("type")->AsString(), "dump");
  const JsonValue* docs = bundle.FindPath({"recorder", "thread_docs"});
  ASSERT_NE(docs, nullptr);
  ASSERT_EQ(docs->array().size(), 1u);
  EXPECT_EQ(docs->array()[0].Find("fingerprint")->AsU64(), 0xdeadu);
  std::remove(path.c_str());
}

TEST(CrashHandlerDeathTest, TerminateWritesTerminateBundle) {
  const std::string path =
      ::testing::TempDir() + "/xpred_terminate_bundle.json";
  std::remove(path.c_str());
  EXPECT_EXIT(DieWithHandlerInstalled(path, /*via_terminate=*/true),
              ::testing::KilledBySignal(SIGABRT), "");
  JsonValue bundle = LoadBundleOrDie(path);
  ASSERT_TRUE(bundle.is_object());
  EXPECT_EQ(bundle.Find("reason")->AsString(), "terminate");
  std::remove(path.c_str());
}

TEST(CrashHandlerDeathTest, SegvWritesSignalBundle) {
  const std::string path =
      ::testing::TempDir() + "/xpred_segv_bundle.json";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        CrashHandler::Options options;
        options.bundle_path = path;
        if (!CrashHandler::Install(options).ok()) _exit(97);
        raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  JsonValue bundle = LoadBundleOrDie(path);
  ASSERT_TRUE(bundle.is_object());
  EXPECT_EQ(bundle.Find("reason")->AsString(), "signal");
  EXPECT_EQ(bundle.Find("signal")->AsU64(), static_cast<uint64_t>(SIGSEGV));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xpred::obs
