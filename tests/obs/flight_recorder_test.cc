// Unit tests for the flight recorder: drain-window semantics,
// overwrite accounting, thread registration limits, the installation
// hook (including the FaultInjector observer wiring), and the raw
// slot-access API the crash handler uses.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "common/hash.h"
#include "obs/flight_recorder.h"

namespace xpred::obs {
namespace {

FlightRecorder::Options SmallOptions(size_t events, size_t threads = 4) {
  FlightRecorder::Options options;
  options.events_per_thread = events;
  options.max_threads = threads;
  return options;
}

TEST(FlightRecorderTest, RecordsAndDrainsInOrder) {
  FlightRecorder recorder(SmallOptions(16));
  recorder.Record(EventType::kDocBegin, 1, 0);
  recorder.Record(EventType::kStage, 2, 12345);
  recorder.Record(EventType::kDocEnd, 1, 99);

  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 3u);
  EXPECT_EQ(snapshot.dropped, 0u);
  EXPECT_EQ(snapshot.unregistered_drops, 0u);
  EXPECT_EQ(snapshot.events[0].type, EventType::kDocBegin);
  EXPECT_EQ(snapshot.events[1].type, EventType::kStage);
  EXPECT_EQ(snapshot.events[1].a, 2u);
  EXPECT_EQ(snapshot.events[1].b, 12345u);
  EXPECT_EQ(snapshot.events[2].type, EventType::kDocEnd);
  // Timestamps are monotone non-decreasing within one thread.
  EXPECT_LE(snapshot.events[0].nanos, snapshot.events[1].nanos);
  EXPECT_LE(snapshot.events[1].nanos, snapshot.events[2].nanos);
}

TEST(FlightRecorderTest, DrainWindowsDoNotOverlap) {
  FlightRecorder recorder(SmallOptions(16));
  recorder.Record(EventType::kDocBegin, 1, 0);
  EXPECT_EQ(recorder.Drain().events.size(), 1u);
  // A second drain with no new events is empty, not a replay.
  EXPECT_EQ(recorder.Drain().events.size(), 0u);
  recorder.Record(EventType::kDocEnd, 1, 0);
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].type, EventType::kDocEnd);
}

TEST(FlightRecorderTest, OverwrittenEventsAreCountedDropped) {
  // Capacity 16 (the floor): writing 40 events keeps the newest 16
  // and counts the 24 overwritten ones as dropped.
  FlightRecorder recorder(SmallOptions(16));
  for (uint64_t i = 0; i < 40; ++i) {
    recorder.Record(EventType::kStage, i, 0);
  }
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 16u);
  EXPECT_EQ(snapshot.dropped, 24u);
  EXPECT_EQ(snapshot.events[0].a, 24u);
  EXPECT_EQ(snapshot.events[15].a, 39u);
  // The drop counter covers the drained window only.
  recorder.Record(EventType::kStage, 40, 0);
  snapshot = recorder.Drain();
  EXPECT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.dropped, 0u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder recorder(SmallOptions(17));
  EXPECT_EQ(recorder.events_per_thread(), 32u);
  // Tiny requests are clamped to the 16-event floor.
  FlightRecorder tiny(SmallOptions(2));
  EXPECT_EQ(tiny.events_per_thread(), 16u);
}

TEST(FlightRecorderTest, ThreadsBeyondMaxAreCountedNotCrashed) {
  FlightRecorder recorder(SmallOptions(16, /*threads=*/1));
  recorder.Record(EventType::kDocBegin, 1, 0);  // Takes the only slot.
  std::thread other([&recorder] {
    recorder.Record(EventType::kDocEnd, 2, 0);
    recorder.Record(EventType::kDocEnd, 3, 0);
  });
  other.join();
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].type, EventType::kDocBegin);
  EXPECT_EQ(snapshot.unregistered_drops, 2u);
  // unregistered_drops is also a per-window counter.
  EXPECT_EQ(recorder.Drain().unregistered_drops, 0u);
}

TEST(FlightRecorderTest, EventsCarryStableThreadSlots) {
  FlightRecorder recorder(SmallOptions(16));
  recorder.Record(EventType::kDocBegin, 1, 0);
  std::thread other([&recorder] {
    recorder.Record(EventType::kDocBegin, 2, 0);
    recorder.Record(EventType::kDocEnd, 2, 0);
  });
  other.join();
  EXPECT_EQ(recorder.registered_threads(), 2u);
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 3u);
  uint32_t main_slot = 0, other_slot = 0;
  for (const FlightRecorder::Event& event : snapshot.events) {
    if (event.a == 1) {
      main_slot = event.thread;
    } else {
      other_slot = event.thread;
    }
  }
  EXPECT_NE(main_slot, other_slot);
}

TEST(FlightRecorderTest, AnnotateDocumentPublishesThreadDocs) {
  FlightRecorder recorder(SmallOptions(16));
  recorder.AnnotateDocument(/*fingerprint=*/0xabcdef, /*doc_seq=*/7);
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.thread_docs.size(), 1u);
  EXPECT_EQ(snapshot.thread_docs[0].fingerprint, 0xabcdefu);
  EXPECT_EQ(snapshot.thread_docs[0].doc_seq, 7u);
  // Annotations persist across drains (last-value, not a stream).
  snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.thread_docs.size(), 1u);
  EXPECT_EQ(snapshot.thread_docs[0].doc_seq, 7u);
}

TEST(FlightRecorderTest, RawReadMatchesDrain) {
  FlightRecorder recorder(SmallOptions(8));
  recorder.Record(EventType::kSteal, 3, 1);
  ASSERT_EQ(recorder.registered_threads(), 1u);
  EXPECT_EQ(recorder.thread_written(0), 1u);
  FlightRecorder::Event event;
  ASSERT_TRUE(recorder.ReadEventRaw(0, 0, &event));
  EXPECT_EQ(event.type, EventType::kSteal);
  EXPECT_EQ(event.a, 3u);
  EXPECT_EQ(event.b, 1u);
  // Raw reads do not consume: Drain still sees the event.
  EXPECT_EQ(recorder.Drain().events.size(), 1u);
  // Never-written slots read false.
  EXPECT_FALSE(recorder.ReadEventRaw(0, 1, &event));
  EXPECT_FALSE(recorder.ReadEventRaw(1, 0, &event));
}

TEST(FlightRecorderTest, MacroIsInertWithoutInstallation) {
  ASSERT_EQ(FlightRecorder::Installed(), nullptr);
  XPRED_RECORD_EVENT(EventType::kDocBegin, 1, 0);  // Must not crash.
}

TEST(FlightRecorderTest, InstallRoutesMacroEvents) {
  FlightRecorder recorder(SmallOptions(16));
  FlightRecorder::Install(&recorder);
  XPRED_RECORD_EVENT(EventType::kShed, 42, 0);
  FlightRecorder::Install(nullptr);
  XPRED_RECORD_EVENT(EventType::kShed, 43, 0);  // Dropped: uninstalled.
  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].a, 42u);
}

TEST(FlightRecorderTest, DestructionClearsDanglingInstallation) {
  {
    FlightRecorder recorder(SmallOptions(16));
    FlightRecorder::Install(&recorder);
  }
  EXPECT_EQ(FlightRecorder::Installed(), nullptr);
}

TEST(FlightRecorderTest, RecorderIsReusableAcrossInstances) {
  // Thread registrations are cached in TLS keyed by a per-instance id;
  // a second recorder must not inherit the first one's slot claims.
  {
    FlightRecorder first(SmallOptions(16));
    first.Record(EventType::kDocBegin, 1, 0);
  }
  FlightRecorder second(SmallOptions(16));
  second.Record(EventType::kDocBegin, 2, 0);
  FlightRecorder::Snapshot snapshot = second.Drain();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].a, 2u);
}

TEST(FlightRecorderTest, FaultInjectorFiringsAreRecorded) {
  FlightRecorder recorder(SmallOptions(16));
  FlightRecorder::Install(&recorder);
  FaultInjector injector(/*seed=*/1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kEngineBeginDocument);
  rule.kind = FaultInjector::FaultKind::kStatusFailure;
  rule.code = StatusCode::kInternal;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  EXPECT_FALSE(injector.Check(faultsite::kEngineBeginDocument).ok());

  FaultInjector::Install(nullptr);
  FlightRecorder::Install(nullptr);

  FlightRecorder::Snapshot snapshot = recorder.Drain();
  ASSERT_EQ(snapshot.events.size(), 1u);
  EXPECT_EQ(snapshot.events[0].type, EventType::kFaultInjected);
  EXPECT_EQ(snapshot.events[0].a, Fnv1a(faultsite::kEngineBeginDocument));
  EXPECT_EQ(snapshot.events[0].b, 0u);  // First visit.
}

TEST(EventTypeNameTest, StableWireNames) {
  EXPECT_EQ(EventTypeName(EventType::kDocBegin), "doc_begin");
  EXPECT_EQ(EventTypeName(EventType::kDocEnd), "doc_end");
  EXPECT_EQ(EventTypeName(EventType::kStage), "stage");
  EXPECT_EQ(EventTypeName(EventType::kBatchBegin), "batch_begin");
  EXPECT_EQ(EventTypeName(EventType::kBatchEnd), "batch_end");
  EXPECT_EQ(EventTypeName(EventType::kQuarantine), "quarantine");
  EXPECT_EQ(EventTypeName(EventType::kRetry), "retry");
  EXPECT_EQ(EventTypeName(EventType::kBreaker), "breaker");
  EXPECT_EQ(EventTypeName(EventType::kShed), "shed");
  EXPECT_EQ(EventTypeName(EventType::kSteal), "steal");
  EXPECT_EQ(EventTypeName(EventType::kPark), "park");
  EXPECT_EQ(EventTypeName(EventType::kBudgetExhausted),
            "budget_exhausted");
  EXPECT_EQ(EventTypeName(EventType::kFaultInjected), "fault_injected");
  EXPECT_EQ(EventTypeName(EventType::kStall), "stall");
  EXPECT_EQ(EventTypeName(EventType::kWatchdogScan), "watchdog_scan");
  EXPECT_EQ(EventTypeName(EventType::kDump), "dump");
  EXPECT_EQ(EventTypeName(static_cast<EventType>(999)), "unknown");
}

/// Concurrent smoke: hammer one recorder from several threads while a
/// drainer loops. The seqlock contract is "no torn events": every
/// drained event must be one that some thread actually wrote.
TEST(FlightRecorderTest, ConcurrentWritersNeverProduceTornEvents) {
  constexpr int kWriters = 4;
  constexpr uint64_t kEventsPerWriter = 2000;
  FlightRecorder recorder(SmallOptions(64, kWriters + 1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (uint64_t i = 0; i < kEventsPerWriter; ++i) {
        // Payload invariant checked below: b == a * 3 + w.
        recorder.Record(EventType::kStage, i,
                        i * 3 + static_cast<uint64_t>(w));
      }
    });
  }
  uint64_t drained = 0;
  uint64_t dropped = 0;
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      FlightRecorder::Snapshot snapshot = recorder.Drain();
      for (const FlightRecorder::Event& event : snapshot.events) {
        ASSERT_EQ(event.type, EventType::kStage);
        const uint64_t w = event.b - event.a * 3;
        ASSERT_LT(w, static_cast<uint64_t>(kWriters))
            << "torn event: a=" << event.a << " b=" << event.b;
      }
      drained += snapshot.events.size();
      dropped += snapshot.dropped;
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  drainer.join();
  FlightRecorder::Snapshot final_snapshot = recorder.Drain();
  drained += final_snapshot.events.size();
  dropped += final_snapshot.dropped;
  // Conservation: every written event was either drained or counted.
  EXPECT_EQ(drained + dropped, kWriters * kEventsPerWriter);
}

TEST(FlightRecorderTest, PeekIsNonDestructive) {
  FlightRecorder recorder(SmallOptions(16));
  recorder.Record(EventType::kDocBegin, 1, 0);
  recorder.Record(EventType::kDocEnd, 1, 7);

  // Two scrapes in a row see the same window.
  FlightRecorder::Snapshot peek1 = recorder.Peek();
  FlightRecorder::Snapshot peek2 = recorder.Peek();
  ASSERT_EQ(peek1.events.size(), 2u);
  ASSERT_EQ(peek2.events.size(), 2u);
  EXPECT_EQ(peek1.events[0].type, EventType::kDocBegin);
  EXPECT_EQ(peek1.events[1].type, EventType::kDocEnd);

  // The drain window is untouched: everything is still undrained.
  FlightRecorder::Snapshot drained = recorder.Drain();
  EXPECT_EQ(drained.events.size(), 2u);

  // Peek after a drain still sees the full live ring (the events are
  // consumed from the drain window, not erased from the slots).
  EXPECT_EQ(recorder.Peek().events.size(), 2u);
  // ...while a second drain is empty, as ever.
  EXPECT_EQ(recorder.Drain().events.size(), 0u);
}

TEST(FlightRecorderTest, PeekDoesNotResetUnregisteredDrops) {
  FlightRecorder recorder(SmallOptions(16, /*threads=*/1));
  recorder.Record(EventType::kDocBegin, 1, 0);  // Registers this thread.
  std::thread extra([&] {
    // No slot left: counted as an unregistered drop.
    recorder.Record(EventType::kDocEnd, 2, 0);
  });
  extra.join();

  EXPECT_EQ(recorder.Peek().unregistered_drops, 1u);
  // Peek reported without consuming; Drain still owns the reset.
  EXPECT_EQ(recorder.Peek().unregistered_drops, 1u);
  EXPECT_EQ(recorder.Drain().unregistered_drops, 1u);
  EXPECT_EQ(recorder.Drain().unregistered_drops, 0u);
}

}  // namespace
}  // namespace xpred::obs
