// Tests for the YFilter baseline (NFA-based filtering).

#include "yfilter/yfilter.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred::yfilter {
namespace {

using core::ExprId;
using xpred::testing::EngineMatches;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

TEST(YFilterTest, SimplePaths) {
  YFilter f;
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a/b/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "/b", doc));
}

TEST(YFilterTest, WildcardAndDescendant) {
  YFilter f;
  xml::Document doc = ParseXmlOrDie("<a><x><b/></x><y><b><z/></b></y></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a/*/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a//b", doc));
  EXPECT_TRUE(EngineMatches(&f, "//b/z", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a//z", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "//z/b", doc));
}

TEST(YFilterTest, RelativeExpressions) {
  YFilter f;
  xml::Document doc = ParseXmlOrDie("<r><x><b><c/></b></x></r>");
  EXPECT_TRUE(EngineMatches(&f, "b/c", doc));
  EXPECT_TRUE(EngineMatches(&f, "x//c", doc));
  EXPECT_FALSE(EngineMatches(&f, "c/b", doc));
}

TEST(YFilterTest, PrefixSharingBuildsCompactNfa) {
  YFilter f;
  ASSERT_TRUE(f.AddExpression("/a/b/c").ok());
  size_t after_first = f.state_count();
  ASSERT_TRUE(f.AddExpression("/a/b/d").ok());
  // Shares /a/b: exactly one new state for d.
  EXPECT_EQ(f.state_count(), after_first + 1);
  ASSERT_TRUE(f.AddExpression("/a/b").ok());
  // Fully shared: no new state.
  EXPECT_EQ(f.state_count(), after_first + 1);
}

TEST(YFilterTest, AllAcceptingStatesVisited) {
  // Unlike a classical NFA, execution continues past the first accept.
  YFilter f;
  auto a = f.AddExpression("/a");
  auto ab = f.AddExpression("/a/b");
  auto any = f.AddExpression("*");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(any.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(FilterSorted(&f, doc), (std::vector<ExprId>{*a, *ab, *any}));
}

TEST(YFilterTest, DuplicatesShareInternalState) {
  YFilter f;
  auto id1 = f.AddExpression("/a/b");
  auto id2 = f.AddExpression("/a/b");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(f.distinct_expression_count(), 1u);
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(FilterSorted(&f, doc), (std::vector<ExprId>{*id1, *id2}));
}

TEST(YFilterTest, SelectionPostponedAttributeFilters) {
  YFilter f;
  xml::Document doc = ParseXmlOrDie("<a x=\"3\"><b y=\"1\"/></a>");
  EXPECT_TRUE(EngineMatches(&f, "/a[@x = 3]/b", doc));
  EXPECT_FALSE(EngineMatches(&f, "/a[@x = 4]/b", doc));
  EXPECT_TRUE(EngineMatches(&f, "/a/b[@y >= 1]", doc));
  EXPECT_GT(f.stats().verify_micros, 0.0);
}

TEST(YFilterTest, NestedPathFilters) {
  YFilter f;
  xml::Document doc = ParseXmlOrDie("<r><a><b/></a><a><c/></a></r>");
  EXPECT_FALSE(EngineMatches(&f, "/r/a[b]/c", doc));
  YFilter f2;
  xml::Document joined = ParseXmlOrDie("<r><a><b/><c/></a></r>");
  EXPECT_TRUE(EngineMatches(&f2, "/r/a[b]/c", joined));
}

TEST(YFilterTest, OccurrenceHeavyPaths) {
  YFilter f;
  xml::Document doc =
      ParseXmlOrDie("<a><b><c><a><b><c/></b></a></c></b></a>");
  EXPECT_TRUE(EngineMatches(&f, "a//b/c", doc));
  EXPECT_FALSE(EngineMatches(&f, "c//b//a", doc));
}

TEST(YFilterTest, AgainstOracleOnFixedCorpus) {
  const std::vector<std::string> docs = {
      "<a><b><c/></b></a>",
      "<a><b/><b><c/></b></a>",
      "<a><a><b><a/></b></a></a>",
      "<x><y><z/></y><y><w><z/></w></y></x>",
      "<a><c><a><c><a><c/></a></c></a></c></a>",
  };
  const std::vector<std::string> exprs = {
      "/a",     "/a/b",   "/a/b/c", "a",      "b/c",    "c",
      "//b",    "/a//c",  "a//a",   "/*/b",   "/*/*",   "*",
      "*/*/*",  "/a/*/c", "b//c",   "/x/y/z", "x//z",   "a/c/a",
      "a//c//a", "/a/c/*/a",
  };
  YFilter f;
  std::vector<ExprId> ids = xpred::testing::AddAll(&f, exprs);
  for (const std::string& doc_text : docs) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    std::vector<ExprId> matched = FilterSorted(&f, doc);
    for (size_t i = 0; i < exprs.size(); ++i) {
      bool expected =
          xpath::Evaluator::Matches(ParseXPathOrDie(exprs[i]), doc);
      bool actual =
          std::binary_search(matched.begin(), matched.end(), ids[i]);
      EXPECT_EQ(actual, expected)
          << "doc=" << doc_text << " expr=" << exprs[i];
    }
  }
}

TEST(YFilterTest, InvalidExpressionRejected) {
  YFilter f;
  EXPECT_FALSE(f.AddExpression("").ok());
  EXPECT_FALSE(f.AddExpression("/a[").ok());
}

}  // namespace
}  // namespace xpred::yfilter
