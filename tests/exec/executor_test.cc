#include "exec/executor.h"

#include <atomic>
#include <cstddef>
#include <vector>

#include "gtest/gtest.h"

namespace xpred::exec {
namespace {

TEST(ChaseLevDequeTest, OwnerLifoThiefFifo) {
  ChaseLevDeque deque;
  deque.Reset(8);
  for (size_t i = 0; i < 5; ++i) deque.PushUnsynchronized(i);
  EXPECT_EQ(deque.SizeApprox(), 5u);
  size_t v = 0;
  ASSERT_TRUE(deque.Pop(&v));
  EXPECT_EQ(v, 4u);  // Owner pops newest.
  ASSERT_TRUE(deque.Steal(&v));
  EXPECT_EQ(v, 0u);  // Thief steals oldest.
  ASSERT_TRUE(deque.Steal(&v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(deque.Pop(&v));
  EXPECT_EQ(v, 3u);
  ASSERT_TRUE(deque.Pop(&v));
  EXPECT_EQ(v, 2u);
  EXPECT_FALSE(deque.Pop(&v));
  EXPECT_FALSE(deque.Steal(&v));
}

TEST(ChaseLevDequeTest, ResetReusesAcrossJobs) {
  ChaseLevDeque deque;
  for (int round = 0; round < 3; ++round) {
    deque.Reset(4);
    deque.PushUnsynchronized(7);
    size_t v = 0;
    ASSERT_TRUE(deque.Pop(&v));
    EXPECT_EQ(v, 7u);
    EXPECT_FALSE(deque.Pop(&v));
  }
}

TEST(WorkStealingExecutorTest, RunsEveryIndexExactlyOnce) {
  WorkStealingExecutor::Options options;
  options.workers = 4;
  WorkStealingExecutor executor(options);
  constexpr size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  executor.ParallelFor(kTasks, [&](size_t worker, size_t index) {
    EXPECT_LT(worker, 4u);
    hits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(WorkStealingExecutorTest, SingleWorkerRunsInline) {
  WorkStealingExecutor executor(WorkStealingExecutor::Options{});
  EXPECT_EQ(executor.workers(), 1u);
  std::vector<size_t> order;
  executor.ParallelFor(5, [&](size_t worker, size_t index) {
    EXPECT_EQ(worker, 0u);
    order.push_back(index);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkStealingExecutorTest, ReusableAcrossJobs) {
  WorkStealingExecutor::Options options;
  options.workers = 3;
  WorkStealingExecutor executor(options);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    executor.ParallelFor(17, [&](size_t, size_t index) {
      sum.fetch_add(index + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 17u * 18u / 2);
  }
}

TEST(WorkStealingExecutorTest, ZeroTasksIsANoop) {
  WorkStealingExecutor::Options options;
  options.workers = 2;
  WorkStealingExecutor executor(options);
  executor.ParallelFor(0, [&](size_t, size_t) { FAIL(); });
}

TEST(WorkStealingExecutorTest, StatsAccountForAllTasks) {
  WorkStealingExecutor::Options options;
  options.workers = 4;
  WorkStealingExecutor executor(options);
  executor.ParallelFor(64, [&](size_t, size_t) {});
  WorkStealingExecutor::Stats stats = executor.ConsumeStats();
  EXPECT_EQ(stats.tasks_executed, 64u);
  EXPECT_GE(stats.steals_attempted, stats.steals_succeeded);
  EXPECT_GE(stats.max_initial_queue_depth, 16u);
  // Counters reset on consume.
  stats = executor.ConsumeStats();
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(WorkStealingExecutorTest, ConcurrentMutationUnderContention) {
  WorkStealingExecutor::Options options;
  options.workers = 8;
  WorkStealingExecutor executor(options);
  std::atomic<uint64_t> total{0};
  executor.ParallelFor(500, [&](size_t, size_t index) {
    // Uneven task sizes force stealing.
    uint64_t acc = 0;
    for (size_t i = 0; i < (index % 7) * 100; ++i) acc += i;
    total.fetch_add(acc + 1, std::memory_order_relaxed);
  });
  EXPECT_GE(total.load(), 500u);
}

}  // namespace
}  // namespace xpred::exec
