// Concurrency tests (run under -L parallel, including the TSan
// configuration) for the flight recorder and watchdog inside the
// parallel pipeline: eight workers record events concurrently during
// FilterBatch while a drainer races them, and watchdog heartbeats are
// published from worker threads and surfaced as xpred_watchdog_*
// metrics from the batch caller's thread.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "exec/parallel_filter.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "test_util.h"

namespace xpred::exec {
namespace {

using xpred::testing::AddAll;
using xpred::testing::ParseXmlOrDie;

constexpr size_t kWorkers = 8;

ParallelFilter::Options Config(size_t threads, size_t partitions = 1) {
  ParallelFilter::Options options;
  options.threads = threads;
  options.partitions = partitions;
  return options;
}

std::vector<xml::Document> MakeDocs(size_t n) {
  std::vector<xml::Document> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    docs.push_back(ParseXmlOrDie(
        i % 2 == 0 ? "<a><b x=\"1\"/><c/></a>"
                   : "<a><b><c/></b><b x=\"2\"/></a>"));
  }
  return docs;
}

std::vector<DocRef> Refs(const std::vector<xml::Document>& docs) {
  std::vector<DocRef> refs;
  refs.reserve(docs.size());
  for (const xml::Document& doc : docs) refs.push_back(DocRef{&doc});
  return refs;
}

/// Tentpole concurrency contract: eight workers write into one
/// installed recorder during FilterBatch while a drainer thread loops
/// Drain() against them. No torn events may surface, every drained
/// event must be a known type, and batches keep producing correct
/// results.
TEST(RecorderParallelTest, EightWorkersRecordDuringFilterBatch) {
  obs::FlightRecorder::Options rec_options;
  rec_options.events_per_thread = 256;
  rec_options.max_threads = kWorkers + 2;  // Workers + caller + slack.
  obs::FlightRecorder recorder(rec_options);
  obs::FlightRecorder::Install(&recorder);

  ParallelFilter parallel(Config(kWorkers, 2));
  AddAll(&parallel, {"/a/b", "//c", "/a/b[@x=1]", "/a/*"});

  std::vector<xml::Document> docs = MakeDocs(64);
  std::vector<DocRef> refs = Refs(docs);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> drained{0};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      obs::FlightRecorder::Snapshot snapshot = recorder.Drain();
      for (const obs::FlightRecorder::Event& event : snapshot.events) {
        // Torn reads would surface as garbage types/payloads here
        // (and as data races under TSan).
        ASSERT_NE(obs::EventTypeName(event.type), "unknown")
            << static_cast<int>(event.type);
        ASSERT_LT(event.thread, rec_options.max_threads);
      }
      drained.fetch_add(snapshot.events.size(),
                        std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  CollectingResultSink sink;
  for (int round = 0; round < 10; ++round) {
    sink.clear();
    ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
    ASSERT_EQ(sink.results().size(), docs.size());
    for (const auto& result : sink.results()) {
      EXPECT_TRUE(result.status.ok());
      EXPECT_FALSE(result.matched.empty());
    }
  }

  stop.store(true, std::memory_order_release);
  drainer.join();
  obs::FlightRecorder::Install(nullptr);
  drained.fetch_add(recorder.Drain().events.size(),
                    std::memory_order_relaxed);

  // Every batch records at least its begin/end markers; with 10
  // batches something must have been drained.
  EXPECT_GT(drained.load(), 0u);
}

/// Worker heartbeats are wait-free atomics published from all eight
/// workers; a scan thread polls them concurrently. Under TSan this
/// proves the heartbeat path is race-free.
TEST(RecorderParallelTest, WatchdogHeartbeatsPublishFromWorkers) {
  obs::Watchdog::Options wd_options;
  wd_options.poll_interval_ms = 1;
  wd_options.stall_timeout_ms = 60000;  // Nothing should stall.
  obs::Watchdog watchdog(kWorkers, wd_options);
  watchdog.Start();

  ParallelFilter parallel(Config(kWorkers));
  parallel.set_watchdog(&watchdog);
  AddAll(&parallel, {"/a/b", "//c"});

  std::vector<xml::Document> docs = MakeDocs(48);
  std::vector<DocRef> refs = Refs(docs);
  CollectingResultSink sink;
  for (int round = 0; round < 10; ++round) {
    sink.clear();
    ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  }
  watchdog.Stop();

  obs::Watchdog::Stats stats = watchdog.stats();
  EXPECT_EQ(stats.stalls, 0u);
  EXPECT_EQ(stats.dumps, 0u);

  // The batch caller published the watchdog totals into the engine's
  // registry as xpred_watchdog_* metrics.
  obs::MetricsSnapshot snapshot = parallel.metrics_registry()->Snapshot();
  const std::string labels = "{engine=\"parallel\"}";
  ASSERT_TRUE(snapshot.counters.count("xpred_watchdog_scans_total" + labels));
  ASSERT_TRUE(snapshot.counters.count("xpred_watchdog_stalls_total" + labels));
  ASSERT_TRUE(snapshot.counters.count("xpred_watchdog_dumps_total" + labels));
  ASSERT_TRUE(
      snapshot.gauges.count("xpred_watchdog_stalled_workers" + labels));
  EXPECT_EQ(
      snapshot.counters.at("xpred_watchdog_stalls_total" + labels), 0u);
  EXPECT_EQ(
      snapshot.gauges.at("xpred_watchdog_stalled_workers" + labels), 0.0);
  // No stall ever: the last-stall timestamp gauge reads 0.
  ASSERT_TRUE(
      snapshot.gauges.count("xpred_watchdog_last_stall_ns" + labels));
  EXPECT_EQ(snapshot.gauges.at("xpred_watchdog_last_stall_ns" + labels),
            0.0);
}

/// A stalled phantom worker flips the registry gauges on the next
/// publication — the transition /healthz and /metrics must agree on.
TEST(RecorderParallelTest, StallFlipsRegistryGauges) {
  obs::Watchdog::Options wd_options;
  wd_options.stall_timeout_ms = 0;  // Deterministic: see watchdog_test.
  // One slot beyond the workers: a phantom worker we wedge by hand.
  obs::Watchdog watchdog(kWorkers + 1, wd_options);

  ParallelFilter parallel(Config(kWorkers));
  parallel.set_watchdog(&watchdog);
  AddAll(&parallel, {"/a/b"});
  std::vector<xml::Document> docs = MakeDocs(8);
  std::vector<DocRef> refs = Refs(docs);
  CollectingResultSink sink;
  const std::string labels = "{engine=\"parallel\"}";

  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  obs::MetricsSnapshot before = parallel.metrics_registry()->Snapshot();
  EXPECT_EQ(before.gauges.at("xpred_watchdog_stalled_workers" + labels),
            0.0);
  EXPECT_EQ(before.gauges.at("xpred_watchdog_last_stall_ns" + labels),
            0.0);

  // Wedge the phantom worker: busy, baseline scan, silent scan.
  watchdog.BeginWork(kWorkers);
  watchdog.ScanOnce();
  watchdog.ScanOnce();

  sink.clear();
  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  obs::MetricsSnapshot stalled = parallel.metrics_registry()->Snapshot();
  EXPECT_EQ(stalled.counters.at("xpred_watchdog_stalls_total" + labels),
            1u);
  EXPECT_EQ(stalled.gauges.at("xpred_watchdog_stalled_workers" + labels),
            1.0);
  EXPECT_GT(stalled.gauges.at("xpred_watchdog_last_stall_ns" + labels),
            0.0);

  // Recovery: the worker beats, stalled_now returns to 0, but the
  // last-stall timestamp keeps pointing at the episode.
  watchdog.Beat(kWorkers);
  watchdog.EndWork(kWorkers);
  watchdog.ScanOnce();
  sink.clear();
  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  obs::MetricsSnapshot after = parallel.metrics_registry()->Snapshot();
  EXPECT_EQ(after.gauges.at("xpred_watchdog_stalled_workers" + labels),
            0.0);
  EXPECT_EQ(after.gauges.at("xpred_watchdog_last_stall_ns" + labels),
            stalled.gauges.at("xpred_watchdog_last_stall_ns" + labels));
}

/// Metric publication is delta-based: totals already published are
/// not re-added by later batches.
TEST(RecorderParallelTest, WatchdogMetricDeltasAreMonotone) {
  obs::Watchdog::Options wd_options;
  wd_options.stall_timeout_ms = 0;
  obs::Watchdog watchdog(kWorkers, wd_options);
  // No Start(): drive scans manually so counts are deterministic.

  ParallelFilter parallel(Config(2));
  parallel.set_watchdog(&watchdog);
  AddAll(&parallel, {"/a/b"});
  std::vector<xml::Document> docs = MakeDocs(4);
  std::vector<DocRef> refs = Refs(docs);
  CollectingResultSink sink;

  watchdog.ScanOnce();
  watchdog.ScanOnce();
  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  const std::string key = "xpred_watchdog_scans_total{engine=\"parallel\"}";
  obs::MetricsSnapshot snapshot = parallel.metrics_registry()->Snapshot();
  ASSERT_TRUE(snapshot.counters.count(key));
  EXPECT_EQ(snapshot.counters.at(key), 2u);

  watchdog.ScanOnce();
  sink.clear();
  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  snapshot = parallel.metrics_registry()->Snapshot();
  EXPECT_EQ(snapshot.counters.at(key), 3u);
}

}  // namespace
}  // namespace xpred::exec
