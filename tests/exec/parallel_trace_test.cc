// Tracing- and attribution-enabled batch filtering across worker
// threads. Runs under `ctest -L parallel`, so the SanitizeThread
// build exercises it with TSan: worker MatchContexts must only touch
// their own StageSpanBuffer, and the Tracer (not thread-safe) must
// only ever be driven from the batch-owning thread.
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "analytics/workload_profiler.h"
#include "exec/parallel_filter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace xpred::exec {
namespace {

using xpred::testing::AddAll;

std::vector<xml::Document> GenerateDocs(size_t count) {
  xml::DocumentGenerator::Options options;
  options.max_depth = 6;
  xml::DocumentGenerator generator(&xml::NitfLikeDtd(), options);
  std::vector<xml::Document> docs;
  for (size_t i = 0; i < count; ++i) docs.push_back(generator.Generate(i));
  return docs;
}

std::vector<std::string> GenerateExprs(size_t count) {
  xpath::QueryGenerator::Options options;
  options.max_length = 5;
  options.filters_per_expr = 1;
  xpath::QueryGenerator generator(&xml::NitfLikeDtd(), options);
  return generator.GenerateWorkloadStrings(count, 23);
}

TEST(ParallelTraceTest, TracedBatchEmitsMergedStageSpans) {
  ParallelFilter::Options options;
  options.threads = 4;
  options.partitions = 2;
  ParallelFilter parallel(options);
  AddAll(&parallel, GenerateExprs(40));

  obs::MetricsRegistry registry;
  parallel.BindMetrics(&registry);
  obs::RingBufferSink sink;
  obs::Tracer tracer(&sink);
  parallel.set_tracer(&tracer);

  const std::vector<xml::Document> docs = GenerateDocs(24);
  std::vector<DocRef> refs;
  for (const xml::Document& doc : docs) refs.push_back({&doc});

  for (int batch = 0; batch < 3; ++batch) {
    CollectingResultSink results;
    ASSERT_TRUE(parallel.FilterBatch(refs, results).ok());
    ASSERT_EQ(results.results().size(), docs.size());
  }

  // The workers accumulate per-stage time in their own span buffers;
  // the batch thread merges them and emits one aggregate span per
  // touched stage per batch.
  std::vector<obs::TraceSpan> spans = sink.Drain();
  ASSERT_FALSE(spans.empty());
  uint64_t total_nanos = 0;
  for (const obs::TraceSpan& span : spans) {
    EXPECT_EQ(span.engine, parallel.name());
    total_nanos += span.duration_nanos;
  }
  EXPECT_GT(total_nanos, 0u);
}

TEST(ParallelTraceTest, TracedBatchWithAttributionSink) {
  // Tracing and attribution together on the parallel path: spans merge
  // per batch, attribution deltas drain per context from the batch
  // thread (the profiler itself is single-threaded by contract).
  ParallelFilter::Options options;
  options.threads = 4;
  options.partitions = 2;
  ParallelFilter parallel(options);
  const std::vector<std::string> exprs = GenerateExprs(40);
  AddAll(&parallel, exprs);

  obs::MetricsRegistry registry;
  parallel.BindMetrics(&registry);
  obs::RingBufferSink sink;
  obs::Tracer tracer(&sink);
  parallel.set_tracer(&tracer);

  analytics::WorkloadProfiler profiler;
  parallel.set_attribution_sink(&profiler);

  const std::vector<xml::Document> docs = GenerateDocs(24);
  std::vector<DocRef> refs;
  for (const xml::Document& doc : docs) refs.push_back({&doc});
  CollectingResultSink results;
  ASSERT_TRUE(parallel.FilterBatch(refs, results).ok());

  EXPECT_FALSE(sink.Drain().empty());
  EXPECT_GT(profiler.total_evals(), 0u);
  const uint64_t first_batch_evals = profiler.total_evals();

  // Attribution alone (tracer detached) keeps working, and the same
  // batch attributes the same work again.
  parallel.set_tracer(nullptr);
  CollectingResultSink results2;
  ASSERT_TRUE(parallel.FilterBatch(refs, results2).ok());
  EXPECT_EQ(profiler.total_evals(), 2 * first_batch_evals);
}

TEST(ParallelTraceTest, SerialAndParallelAttributionAgree) {
  const std::vector<std::string> exprs = GenerateExprs(30);
  const std::vector<xml::Document> docs = GenerateDocs(12);

  core::Matcher serial;
  AddAll(&serial, exprs);
  analytics::WorkloadProfiler serial_profiler;
  serial.set_attribution_sink(&serial_profiler);
  for (const xml::Document& doc : docs) {
    std::vector<core::ExprId> matched;
    ASSERT_TRUE(serial.FilterDocument(doc, &matched).ok());
  }

  // One partition so the expression set (and therefore the covering
  // structure driving evaluation counts) is identical to the serial
  // matcher; four workers still split the documents.
  ParallelFilter::Options options;
  options.threads = 4;
  options.partitions = 1;
  ParallelFilter parallel(options);
  AddAll(&parallel, exprs);
  analytics::WorkloadProfiler parallel_profiler;
  parallel.set_attribution_sink(&parallel_profiler);
  std::vector<DocRef> refs;
  for (const xml::Document& doc : docs) refs.push_back({&doc});
  CollectingResultSink results;
  ASSERT_TRUE(parallel.FilterBatch(refs, results).ok());

  EXPECT_EQ(serial_profiler.total_evals(), parallel_profiler.total_evals());
  EXPECT_EQ(serial_profiler.total_matches(),
            parallel_profiler.total_matches());
  EXPECT_EQ(serial_profiler.total_cost(), parallel_profiler.total_cost());
}

}  // namespace
}  // namespace xpred::exec
