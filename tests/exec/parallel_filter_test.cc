#include "exec/parallel_filter.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"
#include "xml/generator.h"
#include "xml/path.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace xpred::exec {
namespace {

using xpred::testing::AddAll;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;

ParallelFilter::Options Config(size_t threads, size_t partitions) {
  ParallelFilter::Options options;
  options.threads = threads;
  options.partitions = partitions;
  return options;
}

TEST(ParallelFilterTest, MatchesLikeSerialMatcherOnHandDocs) {
  const std::vector<std::string> exprs = {
      "/a/b", "/a/c", "//c", "/a/*", "a//b", "/a/b[@x=1]", "/a[//c]/b"};
  const std::vector<std::string> docs = {
      "<a><b x=\"1\"/></a>", "<a><c/><b x=\"2\"/></a>", "<b><c/></b>",
      "<a><b><c/></b></a>"};
  for (size_t threads : {1, 4}) {
    for (size_t partitions : {1, 3}) {
      core::Matcher reference;
      ParallelFilter parallel(Config(threads, partitions));
      AddAll(&reference, exprs);
      AddAll(&parallel, exprs);
      for (const std::string& xml : docs) {
        xml::Document doc = ParseXmlOrDie(xml);
        EXPECT_EQ(FilterSorted(&parallel, doc), FilterSorted(&reference, doc))
            << "threads=" << threads << " partitions=" << partitions
            << " doc=" << xml;
      }
    }
  }
}

TEST(ParallelFilterTest, DuplicateExpressionsGetDistinctSids) {
  ParallelFilter parallel(Config(2, 2));
  Result<core::ExprId> a = parallel.AddExpression("/a/b");
  Result<core::ExprId> b = parallel.AddExpression("/a/b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(FilterSorted(&parallel, doc),
            (std::vector<core::ExprId>{*a, *b}));
}

TEST(ParallelFilterTest, InvalidExpressionDoesNotSkewPartitions) {
  ParallelFilter parallel(Config(1, 2));
  EXPECT_TRUE(parallel.AddExpression("/a").ok());
  EXPECT_FALSE(parallel.AddExpression("////").ok());
  EXPECT_TRUE(parallel.AddExpression("/b").ok());
  EXPECT_EQ(parallel.subscription_count(), 2u);
  xml::Document doc = ParseXmlOrDie("<b/>");
  EXPECT_EQ(FilterSorted(&parallel, doc), (std::vector<core::ExprId>{1}));
}

TEST(ParallelFilterTest, OverLimitDocumentRejected) {
  for (size_t threads : {1, 4}) {
    ParallelFilter parallel(Config(threads, 2));
    ASSERT_TRUE(parallel.AddExpression("//d").ok());
    ASSERT_TRUE(parallel.AddExpression("//a").ok());
    ResourceLimits limits;
    limits.max_element_depth = 2;
    parallel.set_resource_limits(limits);
    xml::Document doc = ParseXmlOrDie("<a><b><c><d/></c></b></a>");
    std::vector<core::ExprId> matched;
    Status st = parallel.FilterDocument(doc, &matched);
    EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
    EXPECT_TRUE(matched.empty());
  }
}

TEST(ParallelFilterTest, BatchReportsPerDocumentInOrder) {
  ParallelFilter parallel(Config(4, 2));
  Result<core::ExprId> ab = parallel.AddExpression("/a/b");
  Result<core::ExprId> c = parallel.AddExpression("//c");
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(c.ok());
  ResourceLimits limits;
  limits.max_element_depth = 3;
  parallel.set_resource_limits(limits);

  xml::Document d0 = ParseXmlOrDie("<a><b/></a>");
  xml::Document d1 = ParseXmlOrDie("<a><b><c><d/></c></b></a>");  // Too deep.
  xml::Document d2 = ParseXmlOrDie("<x><c/></x>");
  std::vector<DocRef> docs = {{&d0}, {&d1}, {&d2}};

  CollectingResultSink sink;
  Status st = parallel.FilterBatch(docs, sink);
  // Batch status is the first failing document's status; the failure
  // does not abort the rest of the batch.
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  ASSERT_EQ(sink.results().size(), 3u);
  EXPECT_TRUE(sink.results()[0].status.ok());
  EXPECT_EQ(sink.results()[0].matched, (std::vector<core::ExprId>{*ab}));
  EXPECT_EQ(sink.results()[1].status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(sink.results()[1].matched.empty());
  EXPECT_TRUE(sink.results()[2].status.ok());
  EXPECT_EQ(sink.results()[2].matched, (std::vector<core::ExprId>{*c}));
}

TEST(ParallelFilterTest, EmptyBatchAndEmptyEngine) {
  ParallelFilter parallel(Config(2, 2));
  CollectingResultSink sink;
  EXPECT_TRUE(parallel.FilterBatch({}, sink).ok());
  EXPECT_TRUE(sink.results().empty());
  xml::Document doc = ParseXmlOrDie("<a/>");
  EXPECT_TRUE(FilterSorted(&parallel, doc).empty());
}

TEST(ParallelFilterTest, CountersAggregateAcrossPartitions) {
  ParallelFilter parallel(Config(2, 2));
  AddAll(&parallel, {"/a/b", "/a/c"});
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  std::vector<core::ExprId> matched;
  ASSERT_TRUE(parallel.FilterDocument(doc, &matched).ok());
  const core::EngineStats& stats = parallel.stats();
  EXPECT_EQ(stats.documents, 1u);
  // Paths counted once per document, not once per partition.
  EXPECT_EQ(stats.paths, 2u);
  EXPECT_GT(stats.predicate_matches, 0u);
}

TEST(ParallelFilterTest, BatchAgreesWithGeneratedWorkload) {
  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 6;
  qopts.filters_per_expr = 1;
  qopts.nested_path_prob = 0.15;
  std::vector<std::string> exprs =
      xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(150, 7);
  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 8;
  xml::DocumentGenerator generator(&dtd, dopts);

  core::Matcher reference;
  ParallelFilter parallel(Config(4, 3));
  for (const std::string& e : exprs) {
    Result<core::ExprId> a = reference.AddExpression(e);
    Result<core::ExprId> b = parallel.AddExpression(e);
    ASSERT_EQ(a.ok(), b.ok()) << e;
  }

  std::vector<xml::Document> docs;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    docs.push_back(generator.Generate(seed));
  }
  std::vector<DocRef> refs;
  for (const xml::Document& d : docs) refs.push_back({&d});
  CollectingResultSink sink;
  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  ASSERT_EQ(sink.results().size(), docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(sink.results()[i].matched, FilterSorted(&reference, docs[i]))
        << "doc seed " << i;
  }
}

// Regression for the shared-epoch corruption the MatchContext refactor
// fixed: two interleaved documents on one Matcher, each with its own
// context, must not see each other's per-document state.
TEST(ParallelFilterTest, InterleavedContextsStayIndependent) {
  core::Matcher matcher;
  Result<core::ExprId> ab = matcher.AddExpression("/a/b");
  Result<core::ExprId> ac = matcher.AddExpression("/a/c");
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ac.ok());
  matcher.PrepareForFiltering();

  xml::Document doc1 = ParseXmlOrDie("<a><b/></a>");
  xml::Document doc2 = ParseXmlOrDie("<a><c/></a>");
  std::vector<xml::DocumentPath> paths1 = xml::ExtractPaths(doc1);
  std::vector<xml::DocumentPath> paths2 = xml::ExtractPaths(doc2);
  ASSERT_EQ(paths1.size(), 1u);
  ASSERT_EQ(paths2.size(), 1u);

  auto views_of = [](const xml::DocumentPath& path) {
    std::vector<core::PathElementView> views;
    for (uint32_t pos = 1; pos <= path.length(); ++pos) {
      core::PathElementView v;
      v.tag = path.Tag(pos);
      v.attributes = &path.Attributes(pos);
      v.node = path.Node(pos);
      views.push_back(v);
    }
    return views;
  };

  core::MatchContext ctx1;
  core::MatchContext ctx2;
  matcher.BeginDocumentStream(&ctx1);
  std::vector<core::PathElementView> v1 = views_of(paths1[0]);
  ASSERT_TRUE(matcher.ProcessStreamedPath(v1, &ctx1).ok());

  // Start and finish a second document mid-flight on a second context.
  matcher.BeginDocumentStream(&ctx2);
  std::vector<core::PathElementView> v2 = views_of(paths2[0]);
  ASSERT_TRUE(matcher.ProcessStreamedPath(v2, &ctx2).ok());
  std::vector<core::ExprId> matched2;
  ASSERT_TRUE(matcher.EndDocumentStream(&ctx2, &matched2).ok());

  std::vector<core::ExprId> matched1;
  ASSERT_TRUE(matcher.EndDocumentStream(&ctx1, &matched1).ok());

  EXPECT_EQ(matched1, (std::vector<core::ExprId>{*ab}));
  EXPECT_EQ(matched2, (std::vector<core::ExprId>{*ac}));
}

}  // namespace
}  // namespace xpred::exec
