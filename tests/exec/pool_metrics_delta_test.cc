// Snapshot / delta semantics for the gauges the work-stealing pool
// publishes (queue depth, busy fraction, worker count): counters are
// differenced by DeltaSince, gauges must keep their current reading —
// a batch-over-batch delta that zeroed the pool gauges would read as
// "no workers, empty queue".
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "exec/parallel_filter.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace xpred::exec {
namespace {

using xpred::testing::AddAll;

class PoolMetricsDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ParallelFilter::Options options;
    options.threads = 4;
    options.partitions = 2;
    parallel_ = std::make_unique<ParallelFilter>(options);

    xpath::QueryGenerator::Options qopts;
    qopts.max_length = 5;
    xpath::QueryGenerator qgen(&xml::NitfLikeDtd(), qopts);
    AddAll(parallel_.get(), qgen.GenerateWorkloadStrings(30, 5));

    xml::DocumentGenerator::Options dopts;
    dopts.max_depth = 6;
    xml::DocumentGenerator dgen(&xml::NitfLikeDtd(), dopts);
    for (size_t i = 0; i < 16; ++i) docs_.push_back(dgen.Generate(i));
    for (const xml::Document& doc : docs_) refs_.push_back({&doc});

    parallel_->BindMetrics(&registry_);
  }

  void RunBatch() {
    CollectingResultSink sink;
    ASSERT_TRUE(parallel_->FilterBatch(refs_, sink).ok());
  }

  static double Value(const obs::MetricsSnapshot& snapshot,
                      const std::string& name_prefix) {
    for (const auto& [key, value] : snapshot.gauges) {
      if (key.rfind(name_prefix, 0) == 0) return value;
    }
    ADD_FAILURE() << "gauge " << name_prefix << " not in snapshot";
    return -1;
  }

  std::unique_ptr<ParallelFilter> parallel_;
  std::vector<xml::Document> docs_;
  std::vector<DocRef> refs_;
  obs::MetricsRegistry registry_;
};

TEST_F(PoolMetricsDeltaTest, GaugesKeepCurrentValueAcrossDelta) {
  RunBatch();
  obs::MetricsSnapshot before = registry_.Snapshot();
  RunBatch();
  obs::MetricsSnapshot after = registry_.Snapshot();
  obs::MetricsSnapshot delta = after.DeltaSince(before);

  // The pool gauges exist and survived the delta with their current
  // values (not the difference, which would be ~0 for a steady pool).
  const double workers = Value(delta, "xpred_pool_workers");
  EXPECT_EQ(workers, 4.0);
  EXPECT_EQ(Value(after, "xpred_pool_workers"), workers);

  const double depth = Value(delta, "xpred_pool_queue_depth");
  EXPECT_GT(depth, 0.0);
  EXPECT_EQ(Value(after, "xpred_pool_queue_depth"), depth);

  const double busy = Value(delta, "xpred_pool_worker_busy_fraction");
  EXPECT_GE(busy, 0.0);
  EXPECT_LE(busy, 1.0);
  EXPECT_EQ(Value(after, "xpred_pool_worker_busy_fraction"), busy);

  // Counters, by contrast, are differenced: one batch's documents.
  bool found_docs = false;
  for (const auto& [key, value] : delta.counters) {
    if (key.rfind("xpred_documents_total", 0) == 0) {
      EXPECT_EQ(value, docs_.size());
      found_docs = true;
    }
  }
  EXPECT_TRUE(found_docs);
}

TEST_F(PoolMetricsDeltaTest, DeltaExportsPoolGaugesInJson) {
  RunBatch();
  obs::MetricsSnapshot before = registry_.Snapshot();
  RunBatch();
  obs::MetricsSnapshot delta = registry_.Snapshot().DeltaSince(before);

  std::ostringstream out;
  obs::WriteJson(delta, &out);
  const std::string json = out.str();
  EXPECT_NE(json.find("xpred_pool_workers"), std::string::npos);
  EXPECT_NE(json.find("xpred_pool_queue_depth"), std::string::npos);
  EXPECT_NE(json.find("xpred_pool_worker_busy_fraction"), std::string::npos);
}

}  // namespace
}  // namespace xpred::exec
