// Oracle-differential churn tests (ISSUE 7): live subscription
// mutations racing concurrent filter batches, every batch's match set
// checked against a rebuild-from-scratch matcher at the batch's
// pinned epoch. Labeled `churn parallel` so the TSan suite
// (`ctest -L parallel`) covers the real interleavings too.

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/epoch_manager.h"
#include "exec/parallel_filter.h"
#include "test_util.h"
#include "testing/churn_harness.h"

namespace xpred {
namespace {

using xpred::testing::ParseXmlOrDie;

std::vector<core::ExprId> BatchMatches(exec::ParallelFilter& filter,
                                       const xml::Document& doc) {
  exec::DocRef ref{&doc};
  exec::CollectingResultSink sink;
  Status st = filter.FilterBatch({&ref, 1}, sink);
  EXPECT_TRUE(st.ok()) << st;
  std::vector<core::ExprId> matched = sink.results().at(0).matched;
  std::sort(matched.begin(), matched.end());
  return matched;
}

TEST(LiveFilterTest, BatchesSeeOnlyPublishedEpochs) {
  core::IndexEpochManager::Options mopts;
  mopts.partitions = 2;
  core::IndexEpochManager manager(mopts);
  exec::ParallelFilter::Options fopts;
  fopts.threads = 2;
  exec::ParallelFilter filter(fopts, &manager);
  EXPECT_TRUE(filter.live());
  EXPECT_EQ(filter.partitions(), 2u);

  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  Result<core::ExprId> b = manager.Subscribe("/a/b");
  ASSERT_TRUE(b.ok());
  // Queued but unpublished: the batch pins epoch 0 and sees nothing.
  EXPECT_TRUE(BatchMatches(filter, doc).empty());
  EXPECT_EQ(filter.last_batch_epoch(), 0u);

  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(BatchMatches(filter, doc), (std::vector<core::ExprId>{*b}));
  EXPECT_EQ(filter.last_batch_epoch(), 1u);
}

TEST(LiveFilterTest, AddExpressionPublishesImmediately) {
  core::IndexEpochManager::Options mopts;
  mopts.partitions = 2;
  core::IndexEpochManager manager(mopts);
  exec::ParallelFilter filter(exec::ParallelFilter::Options{}, &manager);

  Result<core::ExprId> sid = filter.AddExpression("/a/b");
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(manager.current_epoch(), 1u);
  EXPECT_EQ(filter.subscription_count(), 1u);

  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  std::vector<core::ExprId> matched;
  ASSERT_TRUE(filter.FilterDocument(doc, &matched).ok());
  EXPECT_EQ(matched, (std::vector<core::ExprId>{*sid}));

  EXPECT_FALSE(filter.AddExpression("not an xpath ]][").ok());
}

TEST(LiveFilterTest, TwoFiltersShareOneManager) {
  // The harness topology in miniature: independent ParallelFilter
  // front ends over one manager see the same subscription set.
  core::IndexEpochManager::Options mopts;
  mopts.partitions = 3;
  core::IndexEpochManager manager(mopts);
  exec::ParallelFilter f1(exec::ParallelFilter::Options{}, &manager);
  exec::ParallelFilter f2(exec::ParallelFilter::Options{}, &manager);

  Result<core::ExprId> sid = f1.AddExpression("//b");
  ASSERT_TRUE(sid.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(BatchMatches(f1, doc), (std::vector<core::ExprId>{*sid}));
  EXPECT_EQ(BatchMatches(f2, doc), (std::vector<core::ExprId>{*sid}));
  EXPECT_EQ(f2.last_batch_epoch(), 1u);
}

TEST(ChurnScriptTest, OpsRoundTripThroughText) {
  std::vector<difftest::ChurnOp> ops(4);
  ops[0].kind = difftest::ChurnOp::Kind::kSubscribe;
  ops[0].xpath = "/a/b[@x = 1]";
  ops[1].kind = difftest::ChurnOp::Kind::kUnsubscribe;
  ops[1].pick = 7;
  ops[2].kind = difftest::ChurnOp::Kind::kPublish;
  ops[3].kind = difftest::ChurnOp::Kind::kFilter;
  ops[3].doc = 2;

  std::vector<std::string> lines = difftest::SerializeChurnOps(ops);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "sub /a/b[@x = 1]");
  EXPECT_EQ(lines[1], "unsub 7");
  EXPECT_EQ(lines[2], "publish");
  EXPECT_EQ(lines[3], "filter 2");

  Result<std::vector<difftest::ChurnOp>> parsed =
      difftest::ParseChurnOps(lines);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 4u);
  EXPECT_EQ((*parsed)[0].xpath, ops[0].xpath);
  EXPECT_EQ((*parsed)[1].pick, 7u);
  EXPECT_EQ((*parsed)[3].doc, 2u);

  std::vector<std::string> bad = {"subscribe /a"};
  EXPECT_FALSE(difftest::ParseChurnOps(bad).ok());
}

TEST(ChurnScriptTest, GenerationIsDeterministic) {
  difftest::ChurnScriptOptions opts;
  opts.seed = 42;
  opts.ops = 30;
  opts.documents = 2;
  difftest::ChurnScript a = difftest::GenerateChurnScript(opts);
  difftest::ChurnScript b = difftest::GenerateChurnScript(opts);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_EQ(difftest::SerializeChurnOps(a.ops),
            difftest::SerializeChurnOps(b.ops));
  EXPECT_EQ(a.documents, b.documents);
  EXPECT_FALSE(a.documents.empty());
  // Scripts are replayable: end with publish + filter.
  ASSERT_GE(a.ops.size(), 2u);
  EXPECT_EQ(a.ops[a.ops.size() - 2].kind, difftest::ChurnOp::Kind::kPublish);
  EXPECT_EQ(a.ops.back().kind, difftest::ChurnOp::Kind::kFilter);

  opts.seed = 43;
  difftest::ChurnScript c = difftest::GenerateChurnScript(opts);
  EXPECT_NE(difftest::SerializeChurnOps(a.ops),
            difftest::SerializeChurnOps(c.ops));
}

TEST(ChurnReplayTest, GeneratedScriptsAgreeWithOracle) {
  // Serial oracle differential over a spread of seeds and DTDs: the
  // live engine's published epochs must match a from-scratch rebuild
  // at every filter op.
  for (uint64_t seed : {1u, 7u, 23u, 77u}) {
    difftest::ChurnScriptOptions gen;
    gen.seed = seed;
    gen.dtd = (seed % 2 == 0) ? "psd" : "nitf";
    gen.ops = 60;
    gen.documents = 3;
    difftest::ChurnScript script = difftest::GenerateChurnScript(gen);

    difftest::ChurnReplayOptions replay;
    replay.partitions = 1 + seed % 3;
    Result<difftest::ChurnReplayResult> result =
        difftest::ReplayChurnScript(script, replay);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->divergence.has_value())
        << "seed " << seed << ": " << result->divergence->ToString();
    EXPECT_GT(result->filters, 0u);
    EXPECT_EQ(result->filter_results.size(), result->filters);
    EXPECT_GT(result->epochs_published, 0u);
  }
}

TEST(ChurnReplayTest, PartitionCountDoesNotChangeResults) {
  difftest::ChurnScriptOptions gen;
  gen.seed = 99;
  gen.ops = 50;
  gen.documents = 2;
  difftest::ChurnScript script = difftest::GenerateChurnScript(gen);

  std::vector<std::vector<std::vector<core::ExprId>>> per_partitions;
  for (size_t partitions : {1u, 2u, 4u}) {
    difftest::ChurnReplayOptions replay;
    replay.partitions = partitions;
    Result<difftest::ChurnReplayResult> result =
        difftest::ReplayChurnScript(script, replay);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->divergence.has_value());
    per_partitions.push_back(result->filter_results);
  }
  EXPECT_EQ(per_partitions[0], per_partitions[1]);
  EXPECT_EQ(per_partitions[0], per_partitions[2]);
}

TEST(ChurnHarnessTest, ConcurrentChurnMatchesOracle) {
  difftest::ChurnHarness::Options opts;
  opts.seed = 5;
  opts.partitions = 2;
  opts.filter_threads = 3;
  opts.documents = 4;
  opts.initial_subscriptions = 16;
  opts.mutation_ops = 80;
  opts.publish_every = 4;
  opts.batches_per_thread = 12;
  opts.batch_size = 2;
  difftest::ChurnHarness harness(opts);
  Result<difftest::ChurnHarness::Report> report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u)
      << (report->divergences.empty() ? std::string()
                                        : report->divergences.front());
  EXPECT_EQ(report->batch_errors, 0u);
  EXPECT_EQ(report->batches, 3u * 12u);
  EXPECT_GT(report->oracle_checks, 0u);
  EXPECT_GT(report->epochs_published, 0u);
  EXPECT_GE(report->distinct_epochs_pinned, 1u);
}

TEST(ChurnHarnessTest, EpochRetireStress) {
  // Publish after every mutation with a non-blocking writer: maximal
  // swap/retire pressure, the configuration the TSan build leans on.
  difftest::ChurnHarness::Options opts;
  opts.seed = 11;
  opts.partitions = 2;
  opts.filter_threads = 4;
  opts.workers_per_filter = 2;
  opts.documents = 3;
  opts.initial_subscriptions = 12;
  opts.mutation_ops = 60;
  opts.publish_every = 1;
  opts.non_blocking_publish = true;
  opts.batches_per_thread = 10;
  opts.batch_size = 2;
  difftest::ChurnHarness harness(opts);
  Result<difftest::ChurnHarness::Report> report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u)
      << (report->divergences.empty() ? std::string()
                                        : report->divergences.front());
  EXPECT_EQ(report->batch_errors, 0u);
  EXPECT_GT(report->epochs_published, 0u);
}

TEST(ChurnHarnessTest, SingleThreadedDegenerateRunStillChecks) {
  difftest::ChurnHarness::Options opts;
  opts.seed = 3;
  opts.filter_threads = 1;
  opts.mutation_ops = 20;
  opts.publish_every = 2;
  opts.batches_per_thread = 5;
  difftest::ChurnHarness harness(opts);
  Result<difftest::ChurnHarness::Report> report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->batches, 5u);
  EXPECT_GT(report->oracle_checks, 0u);
}

}  // namespace
}  // namespace xpred
