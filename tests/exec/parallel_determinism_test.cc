// Determinism contract of the parallel pipeline (DESIGN.md §12): for
// any (threads, partitions) configuration, the per-document match sets
// are identical to the serial Matcher's — set-equal, reported sorted,
// so byte-identical as vectors. Runs under ctest -L parallel and is
// the primary TSan workload (8 threads racing over the shared
// read-only indexes with thread-local contexts).

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "exec/parallel_filter.h"
#include "test_util.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace xpred::exec {
namespace {

using xpred::testing::FilterSorted;

struct Corpus {
  std::vector<std::string> exprs;
  std::vector<xml::Document> docs;
};

const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    Corpus* c = new Corpus();
    const xml::Dtd& dtd = xml::NitfLikeDtd();
    xpath::QueryGenerator::Options qopts;
    qopts.max_length = 6;
    qopts.wildcard_prob = 0.2;
    qopts.descendant_prob = 0.2;
    qopts.filters_per_expr = 1;
    qopts.nested_path_prob = 0.1;
    c->exprs =
        xpath::QueryGenerator(&dtd, qopts).GenerateWorkloadStrings(200, 42);
    xml::DocumentGenerator::Options dopts;
    dopts.max_depth = 8;
    xml::DocumentGenerator generator(&dtd, dopts);
    for (uint64_t seed = 1; seed <= 24; ++seed) {
      c->docs.push_back(generator.Generate(seed));
    }
    return c;
  }();
  return *corpus;
}

/// Per-document sorted match sets of the serial reference Matcher.
const std::vector<std::vector<core::ExprId>>& ReferenceMatches() {
  static const std::vector<std::vector<core::ExprId>>* reference = [] {
    const Corpus& corpus = SharedCorpus();
    core::Matcher matcher;
    for (const std::string& e : corpus.exprs) {
      Result<core::ExprId> id = matcher.AddExpression(e);
      EXPECT_TRUE(id.ok()) << e << ": " << id.status();
    }
    auto* out = new std::vector<std::vector<core::ExprId>>();
    for (const xml::Document& doc : corpus.docs) {
      out->push_back(FilterSorted(&matcher, doc));
    }
    return out;
  }();
  return *reference;
}

class ParallelDeterminismTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ParallelDeterminismTest, MatchSetsIdenticalToSerialReference) {
  const auto [threads, partitions] = GetParam();
  const Corpus& corpus = SharedCorpus();

  ParallelFilter::Options options;
  options.threads = threads;
  options.partitions = partitions;
  ParallelFilter parallel(options);
  for (const std::string& e : corpus.exprs) {
    ASSERT_TRUE(parallel.AddExpression(e).ok()) << e;
  }

  // Batch path.
  std::vector<DocRef> refs;
  for (const xml::Document& d : corpus.docs) refs.push_back({&d});
  CollectingResultSink sink;
  ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
  ASSERT_EQ(sink.results().size(), corpus.docs.size());
  const std::vector<std::vector<core::ExprId>>& reference =
      ReferenceMatches();
  for (size_t d = 0; d < corpus.docs.size(); ++d) {
    ASSERT_TRUE(sink.results()[d].status.ok()) << sink.results()[d].status;
    EXPECT_EQ(sink.results()[d].matched, reference[d])
        << "batch, doc " << d << ", threads=" << threads
        << ", partitions=" << partitions;
  }

  // Per-document path agrees with the batch path.
  for (size_t d = 0; d < corpus.docs.size(); ++d) {
    EXPECT_EQ(FilterSorted(&parallel, corpus.docs[d]), reference[d])
        << "per-doc, doc " << d << ", threads=" << threads
        << ", partitions=" << partitions;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ParallelDeterminismTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{1, 3},
                      std::pair<size_t, size_t>{8, 1},
                      std::pair<size_t, size_t>{8, 3}),
    [](const ::testing::TestParamInfo<std::pair<size_t, size_t>>& info) {
      return "t" + std::to_string(info.param.first) + "p" +
             std::to_string(info.param.second);
    });

// Repeated batches on one engine (context reuse across batches) stay
// deterministic — the allocation-pooling must never leak state.
TEST(ParallelDeterminismTest2, RepeatedBatchesAreStable) {
  const Corpus& corpus = SharedCorpus();
  ParallelFilter::Options options;
  options.threads = 8;
  options.partitions = 2;
  ParallelFilter parallel(options);
  for (const std::string& e : corpus.exprs) {
    ASSERT_TRUE(parallel.AddExpression(e).ok());
  }
  std::vector<DocRef> refs;
  for (const xml::Document& d : corpus.docs) refs.push_back({&d});
  std::vector<std::vector<core::ExprId>> first;
  for (int round = 0; round < 3; ++round) {
    CollectingResultSink sink;
    ASSERT_TRUE(parallel.FilterBatch(refs, sink).ok());
    if (round == 0) {
      for (const auto& r : sink.results()) first.push_back(r.matched);
      continue;
    }
    for (size_t d = 0; d < corpus.docs.size(); ++d) {
      EXPECT_EQ(sink.results()[d].matched, first[d])
          << "round " << round << ", doc " << d;
    }
  }
}

}  // namespace
}  // namespace xpred::exec
