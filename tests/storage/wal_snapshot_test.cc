// Unit tests for the WAL framing/salvage layer and the snapshot
// checkpoint files (DESIGN.md §16): CRC vectors, append/scan
// roundtrips, segment rotation, torn-tail truncation, quarantine
// rules, and snapshot atomicity.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "storage/crc32c.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace xpred::storage {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WalRecord Sub(uint64_t seq, uint64_t sid, std::string xpath) {
  WalRecord r;
  r.kind = WalRecord::Kind::kSubscribe;
  r.seq = seq;
  r.sid = sid;
  r.xpath = std::move(xpath);
  return r;
}

WalRecord Unsub(uint64_t seq, uint64_t sid) {
  WalRecord r;
  r.kind = WalRecord::Kind::kUnsubscribe;
  r.seq = seq;
  r.sid = sid;
  return r;
}

WalRecord Mark(uint64_t seq, uint64_t epoch) {
  WalRecord r;
  r.kind = WalRecord::Kind::kEpochMark;
  r.seq = seq;
  r.epoch = epoch;
  return r;
}

void AppendRawBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(out.good());
  out << bytes;
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Masking is reversible and moves the value (LevelDB property).
  uint32_t crc = Crc32c("hello");
  EXPECT_NE(MaskCrc32c(crc), crc);
  EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
}

TEST(WalTest, AppendScanRoundtrip) {
  TempDir dir("xpred_wal_roundtrip");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 1);
  ASSERT_TRUE(wal.ok()) << wal.status();

  ASSERT_TRUE((*wal)->Append(Sub(1, 0, "/a/b")).ok());
  ASSERT_TRUE((*wal)->Append(Sub(2, 1, "/a[c]")).ok());
  ASSERT_TRUE((*wal)->Append(Mark(3, 1)).ok());
  ASSERT_TRUE((*wal)->Append(Unsub(4, 0)).ok());
  EXPECT_EQ((*wal)->last_written_seq(), 4u);
  wal->reset();

  Result<WalScanResult> scan = ScanWal(dir.path(), 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 4u);
  EXPECT_EQ(scan->last_seq, 4u);
  EXPECT_EQ(scan->bytes_truncated, 0u);
  EXPECT_EQ(scan->segments_quarantined, 0u);
  EXPECT_EQ(scan->records[0].kind, WalRecord::Kind::kSubscribe);
  EXPECT_EQ(scan->records[0].xpath, "/a/b");
  EXPECT_EQ(scan->records[1].xpath, "/a[c]");
  EXPECT_EQ(scan->records[2].kind, WalRecord::Kind::kEpochMark);
  EXPECT_EQ(scan->records[2].epoch, 1u);
  EXPECT_EQ(scan->records[3].kind, WalRecord::Kind::kUnsubscribe);
  EXPECT_EQ(scan->records[3].sid, 0u);

  // after_seq skips the covered prefix.
  Result<WalScanResult> tail = ScanWal(dir.path(), 2);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->records.size(), 2u);
  EXPECT_EQ(tail->records[0].seq, 3u);
}

TEST(WalTest, OutOfSequenceAppendIsRejected) {
  TempDir dir("xpred_wal_outofseq");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 5);
  ASSERT_TRUE(wal.ok());
  Status st = (*wal)->Append(Sub(7, 0, "/a"));
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("out of sequence"), std::string::npos);
}

TEST(WalTest, RotationSplitsSegmentsAndScanStitchesThem) {
  TempDir dir("xpred_wal_rotate");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  options.segment_bytes = 64;  // A few records per segment.
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    ASSERT_TRUE((*wal)->Append(Sub(seq, seq - 1, "/a/b/c")).ok()) << seq;
  }
  EXPECT_GT((*wal)->segments_created(), 1u);
  wal->reset();

  Result<WalScanResult> scan = ScanWal(dir.path(), 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 20u);
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    EXPECT_EQ(scan->records[seq - 1].seq, seq);
  }
  EXPECT_GT(scan->segments_scanned, 1u);
}

TEST(WalTest, TornTailIsTruncated) {
  TempDir dir("xpred_wal_torn");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(Sub(1, 0, "/a")).ok());
  ASSERT_TRUE((*wal)->Append(Sub(2, 1, "/b")).ok());
  wal->reset();

  // Simulate a kill mid-write: half a frame lands after the valid
  // records.
  std::string torn = EncodeWalRecord(Sub(3, 2, "/c"));
  torn.resize(torn.size() / 2);
  std::vector<std::string> files = SegmentFiles(dir.path());
  ASSERT_EQ(files.size(), 1u);
  const std::string segment = dir.path() + "/" + files[0];
  const auto before = std::filesystem::file_size(segment);
  AppendRawBytes(segment, torn);

  Result<WalScanResult> scan = ScanWal(dir.path(), 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->last_seq, 2u);
  EXPECT_EQ(scan->bytes_truncated, torn.size());
  EXPECT_TRUE(scan->tail_truncated);
  // The truncation is physical: a second scan sees a clean log.
  EXPECT_EQ(std::filesystem::file_size(segment), before);
  Result<WalScanResult> rescan = ScanWal(dir.path(), 0);
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan->bytes_truncated, 0u);
  EXPECT_EQ(rescan->records.size(), 2u);
}

TEST(WalTest, CorruptHeaderQuarantinesSegmentAndSuccessors) {
  TempDir dir("xpred_wal_badheader");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  options.segment_bytes = 48;
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  for (uint64_t seq = 1; seq <= 12; ++seq) {
    ASSERT_TRUE((*wal)->Append(Sub(seq, seq - 1, "/a/b")).ok());
  }
  wal->reset();
  std::vector<std::string> files = SegmentFiles(dir.path());
  ASSERT_GE(files.size(), 3u);

  // Flip a byte in the second segment's header.
  const std::string victim = dir.path() + "/" + files[1];
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(2);
    f.put('!');
  }

  Result<WalScanResult> scan = ScanWal(dir.path(), 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  // Only the first segment's records survive; the corrupt one and all
  // its successors are quarantined (their records would leave a gap).
  EXPECT_EQ(scan->segments_quarantined, files.size() - 1);
  ASSERT_FALSE(scan->records.empty());
  for (const WalRecord& rec : scan->records) {
    EXPECT_LT(rec.seq, 13u);
  }
  uint64_t expected = scan->records.front().seq;
  for (const WalRecord& rec : scan->records) {
    EXPECT_EQ(rec.seq, expected++);  // Contiguous prefix only.
  }
  // Quarantined files keep their bytes under a new name.
  size_t quarantined = 0;
  for (const std::string& name : SegmentFiles(dir.path())) {
    if (name.find(".quarantined") != std::string::npos) ++quarantined;
  }
  EXPECT_EQ(quarantined, scan->segments_quarantined);
}

TEST(WalTest, RotateAndCompactDropsCoveredSegments) {
  TempDir dir("xpred_wal_compact");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  options.segment_bytes = 48;
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  for (uint64_t seq = 1; seq <= 12; ++seq) {
    ASSERT_TRUE((*wal)->Append(Sub(seq, seq - 1, "/a/b")).ok());
  }
  Result<size_t> before = (*wal)->SegmentCount();
  ASSERT_TRUE(before.ok());
  ASSERT_GE(*before, 3u);

  // Checkpoint through seq 12: every closed segment is covered.
  Result<size_t> removed = (*wal)->RotateAndCompact(13, 12);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, *before);
  Result<size_t> after = (*wal)->SegmentCount();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, 1u);  // Only the fresh segment remains.

  // Appends continue seamlessly and scans see only the tail.
  ASSERT_TRUE((*wal)->Append(Sub(13, 12, "/z")).ok());
  wal->reset();
  Result<WalScanResult> scan = ScanWal(dir.path(), 12);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].seq, 13u);
}

TEST(WalTest, PartialCompactionKeepsUncoveredSegments) {
  TempDir dir("xpred_wal_partial");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  options.segment_bytes = 48;
  Result<std::unique_ptr<SubscriptionWal>> wal =
      SubscriptionWal::Open(options, 1);
  ASSERT_TRUE(wal.ok());
  for (uint64_t seq = 1; seq <= 12; ++seq) {
    ASSERT_TRUE((*wal)->Append(Sub(seq, seq - 1, "/a/b")).ok());
  }
  // A checkpoint through seq 5 must keep every segment holding a
  // record > 5.
  Result<size_t> removed = (*wal)->RotateAndCompact(13, 5);
  ASSERT_TRUE(removed.ok());
  wal->reset();
  Result<WalScanResult> scan = ScanWal(dir.path(), 5);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_FALSE(scan->records.empty());
  EXPECT_EQ(scan->records.front().seq, 6u);
  EXPECT_EQ(scan->records.back().seq, 12u);
}

TEST(WalTest, ScanAnchorsContiguityToSnapshotCoverage) {
  TempDir dir("xpred_wal_anchor");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  // Segment with records 1..2: an earlier recovery truncated it below
  // the snapshot's coverage (the snapshot covers through seq 5)...
  {
    Result<std::unique_ptr<SubscriptionWal>> wal =
        SubscriptionWal::Open(options, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Sub(1, 0, "/a")).ok());
    ASSERT_TRUE((*wal)->Append(Sub(2, 1, "/b")).ok());
  }
  // ...and then reopened a fresh segment at snapshot_seq + 1 = 6.
  {
    Result<std::unique_ptr<SubscriptionWal>> wal =
        SubscriptionWal::Open(options, 6);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Sub(6, 5, "/f")).ok());
    ASSERT_TRUE((*wal)->Append(Sub(7, 6, "/g")).ok());
  }

  // The segments are non-contiguous (3..5 missing) but the hole is
  // fully covered by the snapshot: the scan must re-anchor at base 6
  // and return the acked durable records instead of quarantining them.
  Result<WalScanResult> scan = ScanWal(dir.path(), 5);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->segments_quarantined, 0u);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0].seq, 6u);
  EXPECT_EQ(scan->records[1].seq, 7u);
  EXPECT_EQ(scan->last_seq, 7u);
}

TEST(WalTest, ScanRefusesGapPastSnapshotCoverage) {
  TempDir dir("xpred_wal_gap");
  SubscriptionWal::Options options;
  options.directory = dir.path();
  options.fsync = FsyncPolicy::kNever;
  {
    Result<std::unique_ptr<SubscriptionWal>> wal =
        SubscriptionWal::Open(options, 6);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(Sub(6, 5, "/f")).ok());
  }

  // The snapshot only covers through seq 2: seqs 3..5 were compacted
  // against a newer checkpoint that is gone. Replaying from 6 would
  // silently skip them — the scan must refuse.
  Result<WalScanResult> scan = ScanWal(dir.path(), 2);
  ASSERT_FALSE(scan.ok());
  EXPECT_NE(scan.status().message().find("WAL gap"), std::string::npos);

  // Even a header-only segment proves the hole (its base seq records
  // that seqs up to base-1 once existed).
  TempDir dir2("xpred_wal_gap_empty");
  options.directory = dir2.path();
  { ASSERT_TRUE(SubscriptionWal::Open(options, 6).ok()); }
  Result<WalScanResult> empty = ScanWal(dir2.path(), 2);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("WAL gap"), std::string::npos);

  // With full coverage (snapshot through 5) the same log is fine.
  Result<WalScanResult> covered = ScanWal(dir.path(), 5);
  ASSERT_TRUE(covered.ok()) << covered.status();
  ASSERT_EQ(covered->records.size(), 1u);
}

TEST(SnapshotTest, WriteLoadRoundtrip) {
  TempDir dir("xpred_snap_roundtrip");
  SnapshotData data;
  data.epoch = 7;
  data.last_seq = 42;
  data.entries.push_back({0, true, "/a/b"});
  data.entries.push_back({1, false, "/a[c]"});
  data.entries.push_back({2, true, "/d//e"});
  Result<std::string> path = SnapshotWriter::Write(dir.path(), data);
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_TRUE(std::filesystem::exists(*path));

  uint64_t quarantined = 0;
  Result<std::optional<LoadedSnapshot>> loaded =
      SnapshotLoader::LoadNewest(dir.path(), &quarantined);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ(quarantined, 0u);
  const SnapshotData& got = (**loaded).data;
  EXPECT_EQ(got.epoch, 7u);
  EXPECT_EQ(got.last_seq, 42u);
  ASSERT_EQ(got.entries.size(), 3u);
  EXPECT_EQ(got.entries[0].xpath, "/a/b");
  EXPECT_TRUE(got.entries[0].live);
  EXPECT_FALSE(got.entries[1].live);
  EXPECT_EQ(got.entries[2].xpath, "/d//e");
}

TEST(SnapshotTest, EmptyDirectoryLoadsNothing) {
  TempDir dir("xpred_snap_empty");
  Result<std::optional<LoadedSnapshot>> loaded =
      SnapshotLoader::LoadNewest(dir.path(), nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->has_value());
}

TEST(SnapshotTest, CorruptNewestFallsBackToOlderAndQuarantines) {
  TempDir dir("xpred_snap_corrupt");
  SnapshotData old_data;
  old_data.epoch = 1;
  old_data.last_seq = 10;
  old_data.entries.push_back({0, true, "/a"});
  ASSERT_TRUE(SnapshotWriter::Write(dir.path(), old_data).ok());

  SnapshotData new_data = old_data;
  new_data.epoch = 2;
  new_data.last_seq = 20;
  Result<std::string> newest = SnapshotWriter::Write(dir.path(), new_data);
  ASSERT_TRUE(newest.ok());
  {
    // Flip a payload byte: the CRC must catch it.
    std::fstream f(*newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    f.put('\x7f');
  }

  uint64_t quarantined = 0;
  Result<std::optional<LoadedSnapshot>> loaded =
      SnapshotLoader::LoadNewest(dir.path(), &quarantined);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ(quarantined, 1u);
  EXPECT_EQ((**loaded).data.last_seq, 10u);  // The older, valid one.
  EXPECT_FALSE(std::filesystem::exists(*newest));
  EXPECT_TRUE(std::filesystem::exists(*newest + ".quarantined"));
}

TEST(SnapshotTest, PruneOldKeepsNewest) {
  TempDir dir("xpred_snap_prune");
  for (uint64_t seq = 10; seq <= 50; seq += 10) {
    SnapshotData data;
    data.epoch = seq / 10;
    data.last_seq = seq;
    ASSERT_TRUE(SnapshotWriter::Write(dir.path(), data).ok());
  }
  Result<size_t> removed = SnapshotLoader::PruneOld(dir.path(), 2);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 3u);
  Result<std::optional<LoadedSnapshot>> loaded =
      SnapshotLoader::LoadNewest(dir.path(), nullptr);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ((**loaded).data.last_seq, 50u);
}

TEST(SnapshotTest, ImplausibleEntryCountIsRejected) {
  TempDir dir("xpred_snap_count");
  // Hand-craft a header-only snapshot whose entry count claims ~2^64
  // entries, with a CRC that verifies — reserve() must not be reached
  // (it would throw length_error/bad_alloc instead of returning a
  // status).
  std::string bytes = "XPSNAP01";
  auto put_u64 = [&bytes](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put_u64(3);                      // epoch
  put_u64(9);                      // last_seq
  put_u64(0xFFFFFFFFFFFFFFFFull);  // entry count
  uint32_t crc = MaskCrc32c(Crc32c(bytes));
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  const std::string path =
      dir.path() + "/snapshot-0000000000000009.xsnap";
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  Result<SnapshotData> loaded = SnapshotLoader::LoadFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("implausible"),
            std::string::npos);
}

TEST(SnapshotTest, OldestRetainedSeqTracksOnDiskFiles) {
  TempDir dir("xpred_snap_oldest");
  Result<std::optional<uint64_t>> none =
      SnapshotLoader::OldestRetainedSeq(dir.path());
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());

  for (uint64_t seq = 10; seq <= 30; seq += 10) {
    SnapshotData data;
    data.epoch = seq / 10;
    data.last_seq = seq;
    ASSERT_TRUE(SnapshotWriter::Write(dir.path(), data).ok());
  }
  Result<std::optional<uint64_t>> oldest =
      SnapshotLoader::OldestRetainedSeq(dir.path());
  ASSERT_TRUE(oldest.ok());
  ASSERT_TRUE(oldest->has_value());
  EXPECT_EQ(**oldest, 10u);

  ASSERT_TRUE(SnapshotLoader::PruneOld(dir.path(), 2).ok());
  oldest = SnapshotLoader::OldestRetainedSeq(dir.path());
  ASSERT_TRUE(oldest.ok());
  ASSERT_TRUE(oldest->has_value());
  EXPECT_EQ(**oldest, 20u);
}

TEST(SnapshotTest, LoadNewestReportsQuarantinedClaim) {
  TempDir dir("xpred_snap_claim");
  SnapshotData old_data;
  old_data.epoch = 1;
  old_data.last_seq = 10;
  ASSERT_TRUE(SnapshotWriter::Write(dir.path(), old_data).ok());
  SnapshotData new_data;
  new_data.epoch = 2;
  new_data.last_seq = 20;
  Result<std::string> newest = SnapshotWriter::Write(dir.path(), new_data);
  ASSERT_TRUE(newest.ok());
  {
    std::fstream f(*newest, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    f.put('\x7f');
  }
  uint64_t quarantined = 0;
  uint64_t claimed = 0;
  Result<std::optional<LoadedSnapshot>> loaded =
      SnapshotLoader::LoadNewest(dir.path(), &quarantined, &claimed);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_TRUE(loaded->has_value());
  EXPECT_EQ((**loaded).data.last_seq, 10u);
  EXPECT_EQ(quarantined, 1u);
  // The corrupt file's name still records what it once covered.
  EXPECT_EQ(claimed, 20u);
}

TEST(SnapshotTest, TruncatedFileIsRejected) {
  TempDir dir("xpred_snap_trunc");
  SnapshotData data;
  data.epoch = 1;
  data.last_seq = 5;
  data.entries.push_back({0, true, "/a/b/c"});
  Result<std::string> path = SnapshotWriter::Write(dir.path(), data);
  ASSERT_TRUE(path.ok());
  std::filesystem::resize_file(*path,
                               std::filesystem::file_size(*path) - 3);
  Result<SnapshotData> loaded = SnapshotLoader::LoadFile(*path);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace xpred::storage
