// The tentpole acceptance test (ctest -L recovery): enumerate every
// visit of every registered storage fault site under a seeded
// workload, kill the durable store at each one, recover, and verify
// the recovered index byte-for-byte against the durable-prefix oracle
// (subscription table + per-document sorted match sets).

#include <algorithm>
#include <filesystem>
#include <string>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "testing/recovery_harness.h"

namespace xpred::difftest {
namespace {

std::string ScratchRoot(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void ExpectCleanSweep(const RecoveryHarness::Report& report) {
  EXPECT_EQ(report.mismatches, 0u);
  for (const std::string& d : report.divergences) {
    ADD_FAILURE() << "divergence: " << d;
  }
  EXPECT_GT(report.crash_points, 0u);
  EXPECT_EQ(report.recoveries, report.crash_points);
  ASSERT_EQ(report.sites.size(), 3u);
  for (const auto& site : report.sites) {
    SCOPED_TRACE(site.site);
    // The workload must actually drive every registered site: a site
    // with zero visits means the sweep proved nothing about it.
    EXPECT_GT(site.visits, 0u);
    EXPECT_GT(site.crash_points, 0u);
    EXPECT_EQ(site.crashes_fired, site.crash_points);
    EXPECT_EQ(site.recoveries, site.crash_points);
    EXPECT_EQ(site.mismatches, 0u);
  }
}

TEST(RecoveryCrashpointTest, SweepAllSitesFsyncPublish) {
  RecoveryHarness::Options options;
  options.seed = 11;
  options.fsync = "publish";
  options.ops = 40;
  options.scratch_directory = ScratchRoot("xpred_crashpoints_publish");
  // Keep the sweep fast under TSan while still covering every site.
  options.max_crash_points_per_site = 12;
  RecoveryHarness harness(options);
  Result<RecoveryHarness::Report> report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ExpectCleanSweep(*report);

  // A mid-write kill leaves a torn tail; at least one of the wal.write
  // crash points must exercise the salvage-and-truncate path.
  const auto write_site = std::find_if(
      report->sites.begin(), report->sites.end(), [](const auto& s) {
        return s.site == faultsite::kStorageWalWrite;
      });
  ASSERT_NE(write_site, report->sites.end());
  EXPECT_GT(write_site->torn_tails, 0u);
}

TEST(RecoveryCrashpointTest, SweepAllSitesFsyncAlways) {
  // fsync=always fires the fsync site after every record, so the
  // dying-op-durable classification (record on disk, barrier lost)
  // gets dense coverage.
  RecoveryHarness::Options options;
  options.seed = 23;
  options.fsync = "always";
  options.ops = 30;
  options.scratch_directory = ScratchRoot("xpred_crashpoints_always");
  options.max_crash_points_per_site = 10;
  RecoveryHarness harness(options);
  Result<RecoveryHarness::Report> report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status();
  ExpectCleanSweep(*report);
}

TEST(RecoveryCrashpointTest, HandcraftedCrashPointReplay) {
  // A pinned script + crash point, the same shape the mode:recovery
  // corpus cases replay: subscribe, checkpoint, then die mid-write on
  // the post-checkpoint subscribe.
  RecoveryScript script;
  script.seed = 5;
  script.fsync = "publish";
  script.documents = {"<a><b/><c/></a>", "<a><c><b/></c></a>"};
  script.ops.push_back({RecoveryOp::Kind::kSubscribe, "/a/b", 0});
  script.ops.push_back({RecoveryOp::Kind::kSubscribe, "/a//c", 0});
  script.ops.push_back({RecoveryOp::Kind::kPublish, "", 0});
  script.ops.push_back({RecoveryOp::Kind::kCheckpoint, "", 0});
  script.ops.push_back({RecoveryOp::Kind::kSubscribe, "/a/c/b", 0});
  script.crash_site = std::string(faultsite::kStorageWalWrite);
  // Write visits: the two subscribes, the publish's epoch mark, then
  // the dying post-checkpoint subscribe.
  script.crash_visit = 3;

  RecoveryReplayOptions options;
  options.scratch_directory = ScratchRoot("xpred_crashpoint_pinned");
  Result<RecoveryReplayResult> result = ReplayRecoveryScript(script, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->crashed);
  EXPECT_FALSE(result->divergence.has_value())
      << *result->divergence;
  // The torn post-checkpoint record is gone; the checkpointed table
  // survives via the snapshot.
  EXPECT_TRUE(result->report.snapshot_loaded);
  std::vector<std::string> want = {"live /a/b", "live /a//c"};
  EXPECT_EQ(result->recovered_table, want);
  std::error_code ec;
  std::filesystem::remove_all(options.scratch_directory, ec);
}

TEST(RecoveryCrashpointTest, FaultFreeReplayMatchesOracle) {
  // Sanity: with no crash point the replay still differentials the
  // reopened store against the oracle — a clean shutdown/reopen cycle.
  RecoveryScriptOptions gen;
  gen.seed = 31;
  gen.ops = 25;
  RecoveryScript script = GenerateRecoveryScript(gen);
  ASSERT_TRUE(script.crash_site.empty());

  RecoveryReplayOptions options;
  options.scratch_directory = ScratchRoot("xpred_crashpoint_faultfree");
  Result<RecoveryReplayResult> result = ReplayRecoveryScript(script, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->crashed);
  EXPECT_FALSE(result->divergence.has_value()) << *result->divergence;
  EXPECT_EQ(result->engine_matches, result->oracle_matches);
  std::error_code ec;
  std::filesystem::remove_all(options.scratch_directory, ec);
}

}  // namespace
}  // namespace xpred::difftest
