// DurableSubscriptionStore lifecycle tests: open/mutate/reopen
// roundtrips, checkpoint compaction, injected write/fsync/rename
// crashes, recovery reporting, obs gauges, and the bounded op-log
// contract under record_history.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "core/epoch_manager.h"
#include "obs/metrics.h"
#include "storage/durable_store.h"

namespace xpred::storage {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

using Store = DurableSubscriptionStore;

Store::Options BaseOptions(const std::string& dir) {
  Store::Options options;
  options.directory = dir;
  options.fsync = FsyncPolicy::kNever;  // Tests don't need the barrier.
  options.partitions = 2;
  return options;
}

std::vector<std::string> Table(const core::IndexEpochManager& manager) {
  Result<core::IndexEpochManager::SubscriptionExport> exported =
      manager.ExportSubscriptions();
  EXPECT_TRUE(exported.ok()) << exported.status();
  std::vector<std::string> lines;
  if (!exported.ok()) return lines;
  for (const auto& entry : exported->entries) {
    lines.push_back((entry.live ? "live " : "dead ") + entry.xpath);
  }
  return lines;
}

TEST(DurableStoreTest, EmptyDirectoryOpensEmpty) {
  TempDir dir("xpred_store_empty");
  RecoveryReport report;
  Result<std::unique_ptr<Store>> store =
      Store::Open(BaseOptions(dir.path()), &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.wal_records_replayed, 0u);
  EXPECT_EQ(report.issued_subscriptions, 0u);
  EXPECT_EQ((*store)->next_durable_seq(), 1u);
}

TEST(DurableStoreTest, ReopenReplaysTheWal) {
  TempDir dir("xpred_store_reopen");
  {
    Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
    ASSERT_TRUE(store.ok()) << store.status();
    Result<core::ExprId> a = (*store)->Subscribe("/a/b");
    Result<core::ExprId> b = (*store)->Subscribe("/a[c]");
    Result<core::ExprId> c = (*store)->Subscribe("/d//e");
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_TRUE((*store)->Publish().ok());
    ASSERT_TRUE((*store)->Unsubscribe(*b).ok());
    ASSERT_TRUE((*store)->Publish().ok());
  }

  RecoveryReport report;
  Result<std::unique_ptr<Store>> store =
      Store::Open(BaseOptions(dir.path()), &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_FALSE(report.snapshot_loaded);  // No checkpoint was taken.
  EXPECT_EQ(report.wal_subscribes, 3u);
  EXPECT_EQ(report.wal_unsubscribes, 1u);
  EXPECT_EQ(report.wal_epoch_marks, 2u);
  EXPECT_EQ(report.issued_subscriptions, 3u);
  EXPECT_EQ(report.live_subscriptions, 2u);
  std::vector<std::string> want = {"live /a/b", "dead /a[c]", "live /d//e"};
  EXPECT_EQ(Table((*store)->manager()), want);
  // Appends resume exactly after the durable frontier.
  EXPECT_EQ((*store)->next_durable_seq(), report.last_durable_seq + 1);
}

TEST(DurableStoreTest, CheckpointCompactsAndSeedsRecovery) {
  TempDir dir("xpred_store_checkpoint");
  Store::Options options = BaseOptions(dir.path());
  options.wal_segment_bytes = 128;  // Force rotations.
  {
    Result<std::unique_ptr<Store>> store = Store::Open(options);
    ASSERT_TRUE(store.ok()) << store.status();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->Subscribe("/a/b").ok());
    }
    ASSERT_TRUE((*store)->Publish().ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    // Post-checkpoint mutations land in the fresh WAL tail.
    ASSERT_TRUE((*store)->Subscribe("/tail").ok());
    ASSERT_TRUE((*store)->Publish().ok());
  }

  RecoveryReport report;
  Result<std::unique_ptr<Store>> store = Store::Open(options, &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_entries, 10u);
  // Only the post-checkpoint tail is replayed from the WAL.
  EXPECT_EQ(report.wal_subscribes, 1u);
  EXPECT_EQ(report.issued_subscriptions, 11u);
  EXPECT_EQ(report.live_subscriptions, 11u);
  EXPECT_EQ(Table((*store)->manager()).back(), "live /tail");
}

TEST(DurableStoreTest, CheckpointPublishesPendingOpsFirst) {
  TempDir dir("xpred_store_pending");
  Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Subscribe("/a").ok());
  // No explicit Publish: Checkpoint is defined at epoch boundaries and
  // must publish the queued op itself.
  ASSERT_TRUE((*store)->Checkpoint().ok());
  EXPECT_EQ((*store)->manager().pending_ops(), 0u);
}

TEST(DurableStoreTest, InjectedWriteFaultTearsTailAndRecoverySalvages) {
  TempDir dir("xpred_store_torn");
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kStorageWalWrite);
  rule.offset = 2;  // The third record (seq 3) dies mid-write.
  rule.period = uint64_t{1} << 62;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);
  {
    Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    ASSERT_TRUE((*store)->Subscribe("/b").ok());
    Result<core::ExprId> dying = (*store)->Subscribe("/c");
    EXPECT_FALSE(dying.ok());
    EXPECT_TRUE((*store)->dead());
    // The poison is sticky: later mutations fail without touching the
    // dead WAL.
    EXPECT_FALSE((*store)->Subscribe("/d").ok());
  }
  FaultInjector::Install(nullptr);

  RecoveryReport report;
  Result<std::unique_ptr<Store>> store =
      Store::Open(BaseOptions(dir.path()), &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_GT(report.wal_bytes_truncated, 0u);  // The torn half-frame.
  EXPECT_EQ(report.wal_subscribes, 2u);
  std::vector<std::string> want = {"live /a", "live /b"};
  EXPECT_EQ(Table((*store)->manager()), want);
}

TEST(DurableStoreTest, InjectedFsyncFaultLeavesRecordDurable) {
  TempDir dir("xpred_store_fsync");
  Store::Options options = BaseOptions(dir.path());
  options.fsync = FsyncPolicy::kAlways;
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kStorageWalFsync);
  rule.offset = 1;  // The second record's fsync dies.
  rule.period = uint64_t{1} << 62;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);
  {
    Result<std::unique_ptr<Store>> store = Store::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    uint64_t written_before = (*store)->last_written_seq();
    Result<core::ExprId> dying = (*store)->Subscribe("/b");
    EXPECT_FALSE(dying.ok());
    // Die-at-fsync: the frame reached the disk before the barrier.
    EXPECT_EQ((*store)->last_written_seq(), written_before + 1);
  }
  FaultInjector::Install(nullptr);

  Result<std::unique_ptr<Store>> store = Store::Open(options);
  ASSERT_TRUE(store.ok()) << store.status();
  std::vector<std::string> want = {"live /a", "live /b"};
  EXPECT_EQ(Table((*store)->manager()), want);
}

TEST(DurableStoreTest, InjectedRenameFaultLosesNoData) {
  TempDir dir("xpred_store_rename");
  FaultInjector injector(1);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kStorageSnapshotRename);
  rule.period = uint64_t{1} << 62;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);
  std::vector<std::string> want;
  {
    Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    ASSERT_TRUE((*store)->Subscribe("/b").ok());
    ASSERT_TRUE((*store)->Publish().ok());
    want = Table((*store)->manager());
    Status st = (*store)->Checkpoint();
    EXPECT_FALSE(st.ok());  // The rename died...
    EXPECT_FALSE((*store)->dead());  // ...but the WAL is intact.
  }
  FaultInjector::Install(nullptr);

  RecoveryReport report;
  Result<std::unique_ptr<Store>> store =
      Store::Open(BaseOptions(dir.path()), &report);
  ASSERT_TRUE(store.ok()) << store.status();
  // The .tmp never became a snapshot; the WAL still covers everything.
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(Table((*store)->manager()), want);
}

TEST(DurableStoreTest, RecoveryReportJsonAndGauges) {
  TempDir dir("xpred_store_obs");
  {
    Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a/b").ok());
    ASSERT_TRUE((*store)->Publish().ok());
  }
  obs::MetricsRegistry metrics;
  Store::Options options = BaseOptions(dir.path());
  options.metrics = &metrics;
  RecoveryReport report;
  Result<std::unique_ptr<Store>> store = Store::Open(options, &report);
  ASSERT_TRUE(store.ok()) << store.status();

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"xpred_recovery_report\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"wal_records_replayed\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"live_subscriptions\": 1"), std::string::npos);

  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.gauges.at("xpred_storage_recovery_records_replayed"), 2.0);
  EXPECT_EQ(snap.gauges.at("xpred_storage_durable_seq"), 2.0);
  EXPECT_EQ(snap.gauges.at("xpred_storage_recovery_bytes_truncated"), 0.0);
}

std::vector<std::string> SnapshotPaths(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0 &&
        name.find(".xsnap") == name.size() - 6) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

void CorruptFile(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekp(12);
  f.put('\x7f');
}

// The newest snapshot goes corrupt; recovery falls back to the older
// retained one. The ops between the two checkpoints (an unsubscribe —
// the kind whose loss is silent, not sid-divergent) must come back
// from the WAL: checkpoints only compact through the *oldest* retained
// snapshot precisely so this replay is possible.
TEST(DurableStoreTest, CorruptNewestSnapshotFallsBackWithoutDataLoss) {
  TempDir dir("xpred_store_fallback");
  Store::Options options = BaseOptions(dir.path());
  std::vector<std::string> want;
  core::ExprId b_sid = 0;
  {
    Result<std::unique_ptr<Store>> store = Store::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    Result<core::ExprId> b = (*store)->Subscribe("/b");
    ASSERT_TRUE(b.ok());
    b_sid = *b;
    ASSERT_TRUE((*store)->Subscribe("/c").ok());
    ASSERT_TRUE((*store)->Publish().ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // Older snapshot.
    ASSERT_TRUE((*store)->Unsubscribe(b_sid).ok());
    ASSERT_TRUE((*store)->Publish().ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // Newest snapshot.
    ASSERT_TRUE((*store)->Subscribe("/d").ok());  // WAL tail.
    ASSERT_TRUE((*store)->Publish().ok());
    want = Table((*store)->manager());
  }
  std::vector<std::string> snapshots = SnapshotPaths(dir.path());
  ASSERT_EQ(snapshots.size(), 2u);  // snapshots_to_keep default.
  CorruptFile(snapshots.back());

  RecoveryReport report;
  Result<std::unique_ptr<Store>> store = Store::Open(options, &report);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(report.snapshots_quarantined, 1u);
  EXPECT_TRUE(report.snapshot_loaded);
  // Everything after the older snapshot replays from the WAL — the
  // unsubscribe is not silently lost.
  EXPECT_EQ(Table((*store)->manager()), want);
  EXPECT_EQ(report.live_subscriptions, 3u);
}

// With snapshots_to_keep = 1 a corrupt snapshot has no replayable
// fallback: the WAL was compacted against it. Recovery must refuse
// with a clear error instead of replaying over the gap.
TEST(DurableStoreTest, RecoveryRefusesReplayOverCompactedGap) {
  TempDir dir("xpred_store_gap");
  Store::Options options = BaseOptions(dir.path());
  options.snapshots_to_keep = 1;
  {
    Result<std::unique_ptr<Store>> store = Store::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    ASSERT_TRUE((*store)->Subscribe("/b").ok());
    ASSERT_TRUE((*store)->Publish().ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    ASSERT_TRUE((*store)->Subscribe("/c").ok());
    ASSERT_TRUE((*store)->Publish().ok());
  }
  std::vector<std::string> snapshots = SnapshotPaths(dir.path());
  ASSERT_EQ(snapshots.size(), 1u);
  CorruptFile(snapshots.front());

  Result<std::unique_ptr<Store>> store = Store::Open(options);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().message().find("WAL gap"), std::string::npos);
}

// If the WAL segments are gone too, the gap is invisible to ScanWal —
// but the quarantined snapshot's name still claims coverage recovery
// cannot rebuild, which must also refuse.
TEST(DurableStoreTest, RecoveryRefusesWhenQuarantinedClaimExceedsRebuild) {
  TempDir dir("xpred_store_claim");
  Store::Options options = BaseOptions(dir.path());
  options.snapshots_to_keep = 1;
  {
    Result<std::unique_ptr<Store>> store = Store::Open(options);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    ASSERT_TRUE((*store)->Publish().ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
  }
  std::vector<std::string> snapshots = SnapshotPaths(dir.path());
  ASSERT_EQ(snapshots.size(), 1u);
  CorruptFile(snapshots.front());
  for (const auto& entry : std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().extension() == ".xwal") {
      std::filesystem::remove(entry.path());
    }
  }

  Result<std::unique_ptr<Store>> store = Store::Open(options);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().message().find("claimed coverage"),
            std::string::npos);
}

// Mutations issued directly on manager() (e.g. by a live
// ParallelFilter's AddExpression) are mirrored into the WAL without
// store_mu_; they must still be durable, and a checkpoint that races
// one must fail cleanly (kRejected) rather than write a snapshot that
// disagrees with the log.
TEST(DurableStoreTest, DirectManagerMutationsAreDurable) {
  TempDir dir("xpred_store_direct");
  std::vector<std::string> want;
  {
    Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Subscribe("/a").ok());
    core::IndexEpochManager& manager = (*store)->manager();
    ASSERT_TRUE(manager.Subscribe("/direct").ok());
    ASSERT_TRUE(manager.Publish().ok());
    // Quiesced direct mutations checkpoint fine.
    ASSERT_TRUE((*store)->Checkpoint().ok());
    ASSERT_TRUE(manager.Subscribe("/direct2").ok());
    ASSERT_TRUE(manager.Publish().ok());
    want = Table((*store)->manager());
  }
  Result<std::unique_ptr<Store>> store = Store::Open(BaseOptions(dir.path()));
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(Table((*store)->manager()), want);
}

TEST(DurableStoreTest, CheckpointRacingDirectMutationsStaysConsistent) {
  TempDir dir("xpred_store_race");
  Result<std::unique_ptr<Store>> opened = Store::Open(BaseOptions(dir.path()));
  ASSERT_TRUE(opened.ok());
  Store* store = opened->get();
  std::thread writer([store] {
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(store->manager().Subscribe("/r").ok());
      if (i % 8 == 7) ASSERT_TRUE(store->manager().Publish().ok());
    }
    ASSERT_TRUE(store->manager().Publish().ok());
  });
  int rejected = 0;
  for (int i = 0; i < 32; ++i) {
    Status st = store->Checkpoint();
    // kRejected = the checkpoint raced a direct mutation (or pins); any
    // other failure is real.
    if (!st.ok()) {
      ASSERT_EQ(st.code(), StatusCode::kRejected) << st;
      ++rejected;
    }
  }
  writer.join();
  ASSERT_TRUE(store->Checkpoint().ok());
  std::vector<std::string> want = Table(store->manager());
  EXPECT_EQ(want.size(), 64u);
  opened->reset();

  Result<std::unique_ptr<Store>> reopened =
      Store::Open(BaseOptions(dir.path()));
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Table((*reopened)->manager()), want);
}

TEST(DurableStoreTest, CheckpointTrimsRecordedHistory) {
  TempDir dir("xpred_store_trim");
  Store::Options options = BaseOptions(dir.path());
  options.record_history = true;
  Result<std::unique_ptr<Store>> store = Store::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*store)->Subscribe("/a/b").ok());
    ASSERT_TRUE((*store)->Publish().ok());
  }
  core::IndexEpochManager& manager = (*store)->manager();
  EXPECT_EQ(manager.history_base().seq, 0u);
  ASSERT_TRUE((*store)->Checkpoint().ok());
  // The checkpoint's epoch became the new history base: earlier epochs
  // are no longer rebuildable, the current one still is.
  EXPECT_GT(manager.history_base().seq, 0u);
  uint64_t base_epoch = manager.history_base().epoch;
  ASSERT_GT(base_epoch, 1u);
  Result<std::vector<core::IndexEpochManager::OpView>> old_ops =
      manager.OpsUpToEpoch(1);
  EXPECT_FALSE(old_ops.ok());
  EXPECT_NE(old_ops.status().message().find("trimmed"), std::string::npos);
  EXPECT_TRUE(manager.OpsUpToEpoch(base_epoch).ok());
}

}  // namespace
}  // namespace xpred::storage
