// Attribution hooks on the serial matcher: deltas flushed per
// document, epoch-reset correctness across documents, sink detach,
// and the ExpressionStrings key mapping used to label reports.
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/attribution.h"
#include "core/matcher.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::AddAll;
using xpred::testing::ParseXmlOrDie;

/// Records every ingested delta verbatim.
class RecordingSink : public AttributionSink {
 public:
  void Ingest(const AttributionDelta& delta,
              uint64_t key_namespace) override {
    deltas.push_back(delta);
    namespaces.push_back(key_namespace);
  }

  uint64_t TotalEvals() const {
    uint64_t n = 0;
    for (const AttributionDelta& d : deltas) {
      for (const auto& e : d.exprs) n += e.evals;
    }
    return n;
  }
  uint64_t TotalMatches() const {
    uint64_t n = 0;
    for (const AttributionDelta& d : deltas) {
      for (const auto& e : d.exprs) n += e.matches;
    }
    return n;
  }

  std::vector<AttributionDelta> deltas;
  std::vector<uint64_t> namespaces;
};

TEST(AttributionTest, SerialMatcherFlushesPerDocument) {
  Matcher matcher;
  AddAll(&matcher, {"/a/b", "/a/c", "//b"});
  RecordingSink sink;
  matcher.set_attribution_sink(&sink);

  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched).ok());
  EXPECT_EQ(matched.size(), 2u);  // /a/b and //b.

  ASSERT_EQ(sink.deltas.size(), 1u);
  EXPECT_EQ(sink.namespaces[0], 0u);  // Serial namespace.
  EXPECT_EQ(sink.TotalMatches(), 2u);
  EXPECT_GT(sink.TotalEvals(), 0u);
  EXPECT_FALSE(sink.deltas[0].predicates.empty());

  // A second document flushes a fresh delta (epoch reset: counts are
  // per-flush, not cumulative).
  std::vector<ExprId> matched2;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched2).ok());
  ASSERT_EQ(sink.deltas.size(), 2u);
  EXPECT_EQ(sink.TotalMatches(), 4u);
}

TEST(AttributionTest, CostCountsOccurrenceChainLength) {
  Matcher matcher;
  AddAll(&matcher, {"/a/b/c"});
  RecordingSink sink;
  matcher.set_attribution_sink(&sink);

  // Structural match: cost = visit (1) + chain length (3 predicates).
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched).ok());
  ASSERT_EQ(sink.deltas.size(), 1u);
  uint64_t match_cost = 0;
  for (const auto& e : sink.deltas[0].exprs) match_cost += e.cost;
  EXPECT_GT(match_cost, 0u);

  // A path failing predicate matching never runs occurrence
  // determination: per-eval cost is 1.
  Matcher miss_matcher;
  AddAll(&miss_matcher, {"/x/y/z"});
  RecordingSink miss_sink;
  miss_matcher.set_attribution_sink(&miss_sink);
  std::vector<ExprId> no_match;
  ASSERT_TRUE(miss_matcher.FilterDocument(doc, &no_match).ok());
  EXPECT_TRUE(no_match.empty());
  for (const AttributionDelta& d : miss_sink.deltas) {
    for (const auto& e : d.exprs) EXPECT_EQ(e.cost, e.evals);
  }
}

TEST(AttributionTest, DetachStopsAttribution) {
  Matcher matcher;
  AddAll(&matcher, {"/a/b"});
  RecordingSink sink;
  matcher.set_attribution_sink(&sink);
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched).ok());
  ASSERT_EQ(sink.deltas.size(), 1u);

  matcher.set_attribution_sink(nullptr);
  std::vector<ExprId> matched2;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched2).ok());
  EXPECT_EQ(sink.deltas.size(), 1u);  // Nothing new.
}

TEST(AttributionTest, ExpressionStringsCoverInternalIds) {
  Matcher matcher;
  AddAll(&matcher, {"/a/b", "/a[//c]/b", "//d"});
  const std::vector<std::string> names = matcher.ExpressionStrings();
  // Every name resolves and nested sub-expressions are labelled.
  ASSERT_FALSE(names.empty());
  bool saw_sub = false;
  for (const std::string& name : names) {
    EXPECT_FALSE(name.empty());
    saw_sub |= name.find("#sub") != std::string::npos;
  }
  EXPECT_TRUE(saw_sub);

  // Attribution keys stay within the name table.
  RecordingSink sink;
  matcher.set_attribution_sink(&sink);
  xml::Document doc = ParseXmlOrDie("<a><c/><b/></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched).ok());
  for (const AttributionDelta& d : sink.deltas) {
    for (const auto& e : d.exprs) EXPECT_LT(e.id, names.size());
    for (const auto& s : d.latencies) EXPECT_LT(s.id, names.size());
  }
}

TEST(AttributionTest, LatencySamplePeriodOne) {
  Matcher matcher;
  AddAll(&matcher, {"/a/b", "//b"});
  RecordingSink sink;
  matcher.set_attribution_sink(&sink);
  matcher.set_attribution_latency_period(1);

  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(matcher.FilterDocument(doc, &matched).ok());
  uint64_t samples = 0;
  uint64_t evals = 0;
  for (const AttributionDelta& d : sink.deltas) {
    samples += d.latencies.size();
    for (const auto& e : d.exprs) evals += e.evals;
  }
  // Period 1: every evaluation is timed.
  EXPECT_EQ(samples, evals);
}

}  // namespace
}  // namespace xpred::core
