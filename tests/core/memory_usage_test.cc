// Tests for engine memory accounting: the numbers are estimates, but
// they must be non-trivial, grow with distinct state, and expose the
// paper's sharing effects (duplicates are nearly free).

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/memory_usage.h"
#include "core/matcher.h"
#include "indexfilter/index_filter.h"
#include "xfilter/xfilter.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"
#include "yfilter/yfilter.h"

namespace xpred::core {
namespace {

std::vector<std::string> Workload(size_t count, bool distinct,
                                  uint64_t seed) {
  xpath::QueryGenerator::Options options;
  options.distinct = distinct;
  xpath::QueryGenerator gen(&xml::NitfLikeDtd(), options);
  return gen.GenerateWorkloadStrings(count, seed);
}

template <typename Engine>
size_t LoadedBytes(const std::vector<std::string>& exprs) {
  Engine engine;
  for (const std::string& e : exprs) {
    EXPECT_TRUE(engine.AddExpression(e).ok());
  }
  return engine.ApproximateMemoryBytes();
}

TEST(MemoryUsageTest, GrowsWithDistinctExpressions) {
  auto small = Workload(500, true, 7);
  auto large = Workload(5000, true, 7);
  EXPECT_GT(LoadedBytes<Matcher>(large), LoadedBytes<Matcher>(small));
  EXPECT_GT(LoadedBytes<yfilter::YFilter>(large),
            LoadedBytes<yfilter::YFilter>(small));
  EXPECT_GT(LoadedBytes<indexfilter::IndexFilter>(large),
            LoadedBytes<indexfilter::IndexFilter>(small));
  EXPECT_GT(LoadedBytes<xfilter::XFilter>(large),
            LoadedBytes<xfilter::XFilter>(small));
}

TEST(MemoryUsageTest, DuplicatesAreNearlyFree) {
  // 10x duplicate subscriptions on the same distinct population must
  // cost far less than 10x memory (a subscription id per duplicate).
  auto distinct = Workload(2000, true, 11);
  std::vector<std::string> duplicated;
  for (int round = 0; round < 10; ++round) {
    duplicated.insert(duplicated.end(), distinct.begin(), distinct.end());
  }
  size_t base = LoadedBytes<Matcher>(distinct);
  size_t duped = LoadedBytes<Matcher>(duplicated);
  EXPECT_LT(duped, base * 3) << "duplicates should share all index state";
  EXPECT_GT(duped, base) << "subscription ids still cost something";
}

TEST(MemoryUsageTest, EmptyEngineIsSmall) {
  Matcher m;
  EXPECT_LT(m.ApproximateMemoryBytes(), 4096u);
}

TEST(MemoryUsageTest, BytesPerExpressionIsModest) {
  // Sanity bound: the engine should hold NITF-scale workloads at well
  // under ~1 KiB per distinct expression (the paper filters millions
  // of XPEs in 2 GB of 2006-era RAM).
  auto exprs = Workload(10000, true, 13);
  Matcher m;
  for (const std::string& e : exprs) ASSERT_TRUE(m.AddExpression(e).ok());
  double per_expr = static_cast<double>(m.ApproximateMemoryBytes()) /
                    static_cast<double>(m.distinct_expression_count());
  EXPECT_LT(per_expr, 1024.0) << per_expr << " bytes/expression";
}

TEST(MemoryUsageHelpersTest, VectorAndStringBytes) {
  std::vector<int> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(int));

  std::string sso = "hi";
  EXPECT_EQ(StringBytes(sso), 0u);
  // Anything within the SSO capacity lives inline, not on the heap.
  std::string sso_full(std::string().capacity(), 'x');
  EXPECT_EQ(StringBytes(sso_full), 0u);
  // A heap string's allocation is capacity() + 1 (the terminating NUL).
  std::string heap(200, 'x');
  EXPECT_EQ(StringBytes(heap), heap.capacity() + 1);
  std::string barely(std::string().capacity() + 1, 'x');
  EXPECT_EQ(StringBytes(barely), barely.capacity() + 1);
}

}  // namespace
}  // namespace xpred::core
