// Tests for subscription save/load.

#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;

TEST(PersistenceTest, SaveLoadRoundTripPreservesBehavior) {
  Matcher original;
  xpred::testing::AddAll(&original,
                         {"/a/b", "/a/c", "a//d", "/a/b", "/a[b]/c",
                          "/a/b[@x = 1]"});

  std::ostringstream out;
  ASSERT_TRUE(original.SaveSubscriptions(&out).ok());

  Matcher restored;
  std::istringstream in(out.str());
  Result<std::vector<ExprId>> loaded = restored.LoadSubscriptions(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 6u);
  EXPECT_EQ(restored.subscription_count(), original.subscription_count());
  EXPECT_EQ(restored.distinct_expression_count(),
            original.distinct_expression_count());

  for (const char* doc_text :
       {"<a><b/><c/></a>", "<a><b x=\"1\"/></a>", "<a><x><d/></x></a>",
        "<a><c/></a>"}) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    EXPECT_EQ(FilterSorted(&restored, doc), FilterSorted(&original, doc))
        << doc_text;
  }
}

TEST(PersistenceTest, SavePreservesMultiplicityAndSkipsRemoved) {
  Matcher m;
  auto s1 = m.AddExpression("/a/b");
  auto s2 = m.AddExpression("/a/b");
  auto s3 = m.AddExpression("/a/c");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  ASSERT_TRUE(m.RemoveSubscription(*s3).ok());

  std::ostringstream out;
  ASSERT_TRUE(m.SaveSubscriptions(&out).ok());

  Matcher restored;
  std::istringstream in(out.str());
  Result<std::vector<ExprId>> loaded = restored.LoadSubscriptions(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);  // Both /a/b duplicates, not /a/c.
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  EXPECT_EQ(FilterSorted(&restored, doc).size(), 2u);
}

TEST(PersistenceTest, CommentsAndBlankLinesIgnored) {
  Matcher m;
  std::istringstream in("# header\n\n/a/b\n\n# trailing\n/a/c\n");
  Result<std::vector<ExprId>> loaded = m.LoadSubscriptions(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(PersistenceTest, BadLineReportedWithPosition) {
  Matcher m;
  std::istringstream in("/a/b\n/a[\n");
  Result<std::vector<ExprId>> loaded = m.LoadSubscriptions(&in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status();
}

TEST(PersistenceTest, NullStreamsRejected) {
  Matcher m;
  EXPECT_FALSE(m.SaveSubscriptions(nullptr).ok());
  EXPECT_FALSE(m.LoadSubscriptions(nullptr).ok());
}

}  // namespace
}  // namespace xpred::core
