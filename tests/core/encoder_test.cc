// Tests for the XPE -> ordered-predicate encoding (paper §3.2).
//
// Every example expression from the paper (s1-s15 plus the
// order-sensitivity example) is asserted against its published
// encoding, rendered through EncodedExpression::ToString.

#include "core/encoder.h"

#include <string>

#include "gtest/gtest.h"

#include "common/interner.h"
#include "xpath/parser.h"

namespace xpred::core {
namespace {

std::string Encode(const std::string& xpath,
                   AttributeMode mode = AttributeMode::kInline) {
  Result<xpath::PathExpr> expr = xpath::ParseXPath(xpath);
  EXPECT_TRUE(expr.ok()) << expr.status();
  Interner interner;
  Result<EncodedExpression> enc = EncodeExpression(*expr, mode, &interner);
  EXPECT_TRUE(enc.ok()) << xpath << ": " << enc.status();
  if (!enc.ok()) return "<error>";
  return enc->ToString(interner);
}

// --- Simple XPEs (paper §3.2, first table) -------------------------------

TEST(EncoderPaperExamples, S1AbsoluteSimple) {
  EXPECT_EQ(Encode("/a/b/b"),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 1) -> (d(p_b, p_b), =, 1)");
}

TEST(EncoderPaperExamples, S2SingleRelativeTag) {
  EXPECT_EQ(Encode("a"), "(p_a, >=, 1)");
}

TEST(EncoderPaperExamples, S3RelativeOmitsVacuousFirstPredicate) {
  EXPECT_EQ(Encode("a/a/b/c"),
            "(d(p_a, p_a), =, 1) -> (d(p_a, p_b), =, 1) -> "
            "(d(p_b, p_c), =, 1)");
}

// --- Wildcards (paper §3.2, second table) ---------------------------------

TEST(EncoderPaperExamples, S4WildcardsInMiddle) {
  EXPECT_EQ(Encode("/a/*/*/b"), "(p_a, =, 1) -> (d(p_a, p_b), =, 3)");
}

TEST(EncoderPaperExamples, S5TrailingWildcards) {
  EXPECT_EQ(Encode("/a/b/*/*"),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 1) -> (p_b-|, >=, 2)");
}

TEST(EncoderPaperExamples, S6LeadingWildcardAbsolute) {
  EXPECT_EQ(Encode("/*/a/b"), "(p_a, =, 2) -> (d(p_a, p_b), =, 1)");
}

TEST(EncoderPaperExamples, S7AllWildcardsAbsolute) {
  EXPECT_EQ(Encode("/*/*/*/*"), "(length, >=, 4)");
}

TEST(EncoderPaperExamples, S8RelativeTrailingWildcards) {
  EXPECT_EQ(Encode("a/b/*/*"), "(d(p_a, p_b), =, 1) -> (p_b-|, >=, 2)");
}

TEST(EncoderPaperExamples, S9RelativeLeadingWildcards) {
  EXPECT_EQ(Encode("*/*/a/*/b"), "(p_a, >=, 3) -> (d(p_a, p_b), =, 2)");
}

TEST(EncoderPaperExamples, S10RelativeMiddleWildcards) {
  EXPECT_EQ(Encode("a/*/*/b/c"),
            "(d(p_a, p_b), =, 3) -> (d(p_b, p_c), =, 1)");
}

TEST(EncoderPaperExamples, S11AllWildcardsRelative) {
  // The paper deliberately gives */*/*/* the same mapping as /*/*/*/*.
  EXPECT_EQ(Encode("*/*/*/*"), "(length, >=, 4)");
}

// --- Descendant operators (paper §3.2, third table) -----------------------

TEST(EncoderPaperExamples, S12DescendantAbsolute) {
  EXPECT_EQ(Encode("/a//b/c"),
            "(p_a, =, 1) -> (d(p_a, p_b), >=, 1) -> (d(p_b, p_c), =, 1)");
}

TEST(EncoderPaperExamples, S13DescendantWithWildcards) {
  EXPECT_EQ(Encode("/*/b//c/*"),
            "(p_b, =, 2) -> (d(p_b, p_c), >=, 1) -> (p_c-|, >=, 1)");
}

TEST(EncoderPaperExamples, S14RelativeDescendant) {
  EXPECT_EQ(Encode("a/b//c"),
            "(d(p_a, p_b), =, 1) -> (d(p_b, p_c), >=, 1)");
}

TEST(EncoderPaperExamples, S15Combined) {
  EXPECT_EQ(Encode("*/a/*/b//c/*/*"),
            "(p_a, >=, 2) -> (d(p_a, p_b), =, 2) -> (d(p_b, p_c), >=, 1) -> "
            "(p_c-|, >=, 2)");
}

// --- Order sensitivity (paper §3.2, closing example) -----------------------

TEST(EncoderPaperExamples, OrderOfPredicatesDistinguishesExpressions) {
  // a/c/*/a//c and a//c/*/a/c use the same multiset of predicates in
  // different orders.
  EXPECT_EQ(Encode("a/c/*/a//c"),
            "(d(p_a, p_c), =, 1) -> (d(p_c, p_a), =, 2) -> "
            "(d(p_a, p_c), >=, 1)");
  EXPECT_EQ(Encode("a//c/*/a/c"),
            "(d(p_a, p_c), >=, 1) -> (d(p_c, p_a), =, 2) -> "
            "(d(p_a, p_c), =, 1)");
}

// --- Additional structural cases -------------------------------------------

TEST(EncoderTest, AbsoluteSingleTag) {
  EXPECT_EQ(Encode("/a"), "(p_a, =, 1)");
}

TEST(EncoderTest, LeadingDescendantEqualsRelative) {
  // //a floats like a relative expression (appendix case 2).
  EXPECT_EQ(Encode("//a"), "(p_a, >=, 1)");
  EXPECT_EQ(Encode("//a/b"), Encode("a/b"));
}

TEST(EncoderTest, DescendantBeforeFirstAnchorForcesGe) {
  // /a is rooted; /*//a is not (the descendant axis floats a's
  // position), so the first predicate must be >=.
  EXPECT_EQ(Encode("/*//a"), "(p_a, >=, 2)");
}

TEST(EncoderTest, SingleWildcard) {
  EXPECT_EQ(Encode("*"), "(length, >=, 1)");
  EXPECT_EQ(Encode("/*"), "(length, >=, 1)");
}

TEST(EncoderTest, TrailingWildcardAfterSingleAnchor) {
  EXPECT_EQ(Encode("/a/*"), "(p_a, =, 1) -> (p_a-|, >=, 1)");
  EXPECT_EQ(Encode("a/*/*"), "(p_a, >=, 1) -> (p_a-|, >=, 2)");
}

TEST(EncoderTest, TrailingDescendantWildcard) {
  EXPECT_EQ(Encode("/a//*"), "(p_a, =, 1) -> (p_a-|, >=, 1)");
}

TEST(EncoderTest, LongMixedExpression) {
  EXPECT_EQ(Encode("/a/*/b//c/*/d/*"),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 2) -> (d(p_b, p_c), >=, 1) -> "
            "(d(p_c, p_d), =, 2) -> (p_d-|, >=, 1)");
}

// --- Anchor metadata --------------------------------------------------------

TEST(EncoderTest, AnchorStepsAndSlots) {
  Interner interner;
  Result<xpath::PathExpr> expr = xpath::ParseXPath("*/a/*/b//c/*/*");
  ASSERT_TRUE(expr.ok());
  Result<EncodedExpression> enc =
      EncodeExpression(*expr, AttributeMode::kInline, &interner);
  ASSERT_TRUE(enc.ok());
  ASSERT_EQ(enc->anchor_steps.size(), 3u);
  EXPECT_EQ(enc->anchor_steps[0], 2);  // a
  EXPECT_EQ(enc->anchor_steps[1], 4);  // b
  EXPECT_EQ(enc->anchor_steps[2], 5);  // c
  EXPECT_EQ(enc->num_steps, 7);

  // a introduced by predicate 0 (the absolute predicate), b and c by
  // the relative predicates as second tags.
  EXPECT_EQ(enc->anchor_slots[0].pred_index, 0);
  EXPECT_FALSE(enc->anchor_slots[0].on_second);
  EXPECT_EQ(enc->anchor_slots[1].pred_index, 1);
  EXPECT_TRUE(enc->anchor_slots[1].on_second);
  EXPECT_EQ(enc->anchor_slots[2].pred_index, 2);
  EXPECT_TRUE(enc->anchor_slots[2].on_second);
}

TEST(EncoderTest, AnchorSlotsWhenFirstPredicateOmitted) {
  Interner interner;
  Result<xpath::PathExpr> expr = xpath::ParseXPath("a/b/c");
  ASSERT_TRUE(expr.ok());
  Result<EncodedExpression> enc =
      EncodeExpression(*expr, AttributeMode::kInline, &interner);
  ASSERT_TRUE(enc.ok());
  ASSERT_EQ(enc->predicates.size(), 2u);
  // a is introduced as the first tag of the first relative predicate.
  EXPECT_EQ(enc->anchor_slots[0].pred_index, 0);
  EXPECT_FALSE(enc->anchor_slots[0].on_second);
  EXPECT_EQ(enc->anchor_slots[1].pred_index, 0);
  EXPECT_TRUE(enc->anchor_slots[1].on_second);
  EXPECT_EQ(enc->anchor_slots[2].pred_index, 1);
  EXPECT_TRUE(enc->anchor_slots[2].on_second);
}

// --- Attribute filters (§5) -------------------------------------------------

TEST(EncoderAttributeTest, InlineAttachesToIntroducingPredicate) {
  EXPECT_EQ(Encode("/*/t1[@x = 3]"), "(p_t1([x, =, 3]), =, 2)");
  EXPECT_EQ(Encode("/a/b[@y >= 5]"),
            "(p_a, =, 1) -> (d(p_a, p_b([y, >=, 5])), =, 1)");
  EXPECT_EQ(Encode("a[@x = 1]/b"), "(d(p_a([x, =, 1]), p_b), =, 1)");
}

TEST(EncoderAttributeTest, ExistenceFilter) {
  EXPECT_EQ(Encode("/a[@id]"), "(p_a([id]), =, 1)");
}

TEST(EncoderAttributeTest, MultipleFiltersAreSortedCanonically) {
  // Reordered filters must produce the same predicate (sharing).
  EXPECT_EQ(Encode("/a[@x = 1][@y = 2]"), Encode("/a[@y = 2][@x = 1]"));
}

TEST(EncoderAttributeTest, SelectionPostponedKeepsPredicatesStructural) {
  Interner interner;
  Result<xpath::PathExpr> expr = xpath::ParseXPath("/a/b[@y = 5]");
  ASSERT_TRUE(expr.ok());
  Result<EncodedExpression> enc = EncodeExpression(
      *expr, AttributeMode::kSelectionPostponed, &interner);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->ToString(interner),
            "(p_a, =, 1) -> (d(p_a, p_b), =, 1)");
  ASSERT_EQ(enc->deferred_filters.size(), 1u);
  EXPECT_EQ(enc->deferred_filters[0].anchor_index, 1);
  ASSERT_EQ(enc->deferred_filters[0].filters.size(), 1u);
  EXPECT_EQ(enc->deferred_filters[0].filters[0].name, "y");
}

TEST(EncoderAttributeTest, FilterOnWildcardStepRejected) {
  Interner interner;
  Result<xpath::PathExpr> expr = xpath::ParseXPath("/a/*[@x = 1]");
  ASSERT_TRUE(expr.ok());
  Result<EncodedExpression> enc =
      EncodeExpression(*expr, AttributeMode::kInline, &interner);
  EXPECT_FALSE(enc.ok());
  EXPECT_EQ(enc.status().code(), StatusCode::kInvalidArgument);
}

// --- Error handling ---------------------------------------------------------

TEST(EncoderTest, NestedPathRejected) {
  Interner interner;
  Result<xpath::PathExpr> expr = xpath::ParseXPath("/a[b]/c");
  ASSERT_TRUE(expr.ok());
  Result<EncodedExpression> enc =
      EncodeExpression(*expr, AttributeMode::kInline, &interner);
  EXPECT_FALSE(enc.ok());
}

// --- Sharing: identical sub-paths map to identical predicates ---------------

TEST(EncoderSharingTest, CommonPartsShareEncodings) {
  // The paper's motivating example: a/b/c/d and b//b/c share b/c,
  // which must encode to the same predicate in both.
  Interner interner;
  auto enc1 = EncodeExpression(*xpath::ParseXPath("a/b/c/d"),
                               AttributeMode::kInline, &interner);
  auto enc2 = EncodeExpression(*xpath::ParseXPath("b//b/c"),
                               AttributeMode::kInline, &interner);
  ASSERT_TRUE(enc1.ok());
  ASSERT_TRUE(enc2.ok());
  // (d(p_b, p_c), =, 1) appears in both encodings.
  bool found1 = false;
  bool found2 = false;
  for (const Predicate& p : enc1->predicates) {
    if (p.ToString(interner) == "(d(p_b, p_c), =, 1)") found1 = true;
  }
  for (const Predicate& p : enc2->predicates) {
    if (p.ToString(interner) == "(d(p_b, p_c), =, 1)") found2 = true;
  }
  EXPECT_TRUE(found1);
  EXPECT_TRUE(found2);
}

TEST(EncoderSharingTest, PositionIndependentRelativePredicates) {
  // a/b encodes to the same predicate wherever it appears (§3.2: "a/b
  // is translated into only one predicate ... in spite of the position
  // it appears in the XPEs").
  Interner interner;
  auto enc1 = EncodeExpression(*xpath::ParseXPath("x/a/b"),
                               AttributeMode::kInline, &interner);
  auto enc2 = EncodeExpression(*xpath::ParseXPath("a/b/y"),
                               AttributeMode::kInline, &interner);
  ASSERT_TRUE(enc1.ok());
  ASSERT_TRUE(enc2.ok());
  EXPECT_EQ(enc1->predicates[1].ToString(interner), "(d(p_a, p_b), =, 1)");
  EXPECT_EQ(enc2->predicates[0].ToString(interner), "(d(p_a, p_b), =, 1)");
  EXPECT_EQ(enc1->predicates[1], enc2->predicates[0]);
}

}  // namespace
}  // namespace xpred::core
