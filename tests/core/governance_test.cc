// Roster-wide governance contract: every engine family must reject an
// over-limit or deadline-expired document with the SAME documented
// StatusCode, whether the document arrives as raw XML (FilterXml) or
// as a pre-parsed tree (FilterDocument). A healthy document under the
// same limits must still be filtered.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/status.h"
#include "core/engine.h"
#include "testing/engine_roster.h"
#include "xml/document.h"

namespace xpred {
namespace {

using difftest::FullRoster;
using difftest::RosterEntry;

std::string NestedXml(size_t depth) {
  std::string xml;
  for (size_t i = 0; i < depth; ++i) xml += "<a>";
  xml += "<b/>";
  for (size_t i = 0; i < depth; ++i) xml += "</a>";
  return xml;
}

/// One over-limit scenario: a limits configuration plus an XML
/// document that violates exactly one knob.
struct Scenario {
  const char* name;
  ResourceLimits limits;
  std::string xml;
  StatusCode want = StatusCode::kResourceExhausted;
};

std::vector<Scenario> OverLimitScenarios() {
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "document_bytes";
    s.limits = ResourceLimits::Unlimited();
    s.limits.max_document_bytes = 16;
    s.xml = "<a><b/><c/><d/><e/></a>";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "element_depth";
    s.limits = ResourceLimits::Unlimited();
    s.limits.max_element_depth = 4;
    s.xml = NestedXml(6);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "attributes_per_element";
    s.limits = ResourceLimits::Unlimited();
    s.limits.max_attributes_per_element = 2;
    s.xml = "<a w=\"1\" x=\"2\" y=\"3\" z=\"4\"/>";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "extracted_paths";
    s.limits = ResourceLimits::Unlimited();
    s.limits.max_extracted_paths = 2;
    s.xml = "<a><b/><b/><b/><b/></a>";
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "entity_expansions";
    s.limits = ResourceLimits::Unlimited();
    s.limits.max_entity_expansions = 2;
    s.xml = "<a>&amp;&amp;&amp;&amp;</a>";
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

TEST(GovernanceTest, EveryEngineRejectsOverLimitXmlWithTheSameCode) {
  for (const Scenario& scenario : OverLimitScenarios()) {
    SCOPED_TRACE(scenario.name);
    for (const RosterEntry& entry : FullRoster()) {
      SCOPED_TRACE(entry.label);
      std::unique_ptr<core::FilterEngine> engine = entry.make();
      ASSERT_TRUE(engine->AddExpression("/a").ok());
      engine->set_resource_limits(scenario.limits);
      std::vector<core::ExprId> matched;
      Status st = engine->FilterXml(scenario.xml, &matched);
      ASSERT_FALSE(st.ok()) << "over-limit document accepted";
      EXPECT_EQ(st.code(), scenario.want) << st.message();
      EXPECT_TRUE(matched.empty());
    }
  }
}

TEST(GovernanceTest, EveryEngineRejectsOverLimitTreesViaFilterDocument) {
  // Direct FilterDocument callers (no parse step) must get the same
  // contract through the structural pre-scan. Entity expansion is a
  // text-level concept, so only the structural knobs apply here.
  for (const Scenario& scenario : OverLimitScenarios()) {
    if (std::string(scenario.name) == "entity_expansions" ||
        std::string(scenario.name) == "document_bytes") {
      continue;
    }
    SCOPED_TRACE(scenario.name);
    Result<xml::Document> doc = xml::Document::Parse(scenario.xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    for (const RosterEntry& entry : FullRoster()) {
      SCOPED_TRACE(entry.label);
      std::unique_ptr<core::FilterEngine> engine = entry.make();
      ASSERT_TRUE(engine->AddExpression("/a").ok());
      engine->set_resource_limits(scenario.limits);
      std::vector<core::ExprId> matched;
      Status st = engine->FilterDocument(*doc, &matched);
      ASSERT_FALSE(st.ok()) << "over-limit tree accepted";
      EXPECT_EQ(st.code(), scenario.want) << st.message();
    }
  }
}

TEST(GovernanceTest, EveryEngineStillFiltersHealthyDocumentsUnderLimits) {
  // Production limits are strict but must be invisible to a normal
  // document: same verdicts as an unlimited engine.
  const std::string xml = "<a><b/><c x=\"1\"/></a>";
  for (const RosterEntry& entry : FullRoster()) {
    SCOPED_TRACE(entry.label);
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok());
    engine->set_resource_limits(ResourceLimits::Production());
    std::vector<core::ExprId> matched;
    ASSERT_TRUE(engine->FilterXml(xml, &matched).ok());
    EXPECT_EQ(matched, std::vector<core::ExprId>{*id});
  }
}

TEST(GovernanceTest, EveryEngineReportsSimulatedDeadlineExpiryUniformly) {
  // kDeadlineExpiry at the shared engine.begin_document site stands in
  // for a wall-clock expiry without timing flakiness: every family
  // must surface kDeadlineExceeded from its governed entry point.
  FaultInjector injector(7);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kEngineBeginDocument);
  rule.kind = FaultInjector::FaultKind::kDeadlineExpiry;
  injector.AddRule(rule);
  FaultInjector::Install(&injector);

  for (const RosterEntry& entry : FullRoster()) {
    SCOPED_TRACE(entry.label);
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    ASSERT_TRUE(engine->AddExpression("/a").ok());
    std::vector<core::ExprId> matched;
    Status st = engine->FilterXml("<a><b/></a>", &matched);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.message();
  }
  FaultInjector::Install(nullptr);
}

TEST(GovernanceTest, RejectionDoesNotPoisonTheNextDocument) {
  // After an over-limit rejection the engine must filter the next
  // healthy document correctly — no partial traversal state (e.g.
  // XFilter promotions) may leak across documents.
  ResourceLimits limits = ResourceLimits::Unlimited();
  limits.max_element_depth = 4;
  for (const RosterEntry& entry : FullRoster()) {
    SCOPED_TRACE(entry.label);
    std::unique_ptr<core::FilterEngine> engine = entry.make();
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok());
    engine->set_resource_limits(limits);
    std::vector<core::ExprId> matched;
    ASSERT_FALSE(engine->FilterXml(NestedXml(6), &matched).ok());
    matched.clear();
    ASSERT_TRUE(engine->FilterXml("<a><b/></a>", &matched).ok());
    EXPECT_EQ(matched, std::vector<core::ExprId>{*id});
  }
}

TEST(GovernanceTest, MidTraversalAbortDoesNotPoisonTheNextDocument) {
  // Abort each engine partway through a document (second visit of its
  // per-element / per-path fault site) and verify the NEXT document is
  // filtered correctly: aborted traversals must unwind any in-flight
  // state (e.g. XFilter's promoted FSM entries).
  for (const RosterEntry& entry : FullRoster()) {
    SCOPED_TRACE(entry.label);
    std::string_view site;
    if (entry.label.rfind("yfilter", 0) == 0) {
      site = faultsite::kYFilterTraverse;
    } else if (entry.label.rfind("xfilter", 0) == 0) {
      site = faultsite::kXFilterElement;
    } else if (entry.label.rfind("index-filter", 0) == 0) {
      continue;  // Rebuilds its index per document; no fault site mid-eval.
    } else {
      site = faultsite::kMatcherProcessPath;
    }
    FaultInjector injector(3);
    FaultInjector::Rule rule;
    rule.site = std::string(site);
    rule.offset = 1;       // Second visit: mid-document.
    rule.period = 100000;  // Effectively once.
    injector.AddRule(rule);

    std::unique_ptr<core::FilterEngine> engine = entry.make();
    Result<core::ExprId> id = engine->AddExpression("/a/b");
    ASSERT_TRUE(id.ok());

    FaultInjector::Install(&injector);
    std::vector<core::ExprId> matched;
    Status st = engine->FilterXml("<a><b/><c/><d/></a>", &matched);
    FaultInjector::Install(nullptr);
    ASSERT_FALSE(st.ok()) << "fault did not fire";
    EXPECT_EQ(injector.journal().size(), 1u);

    matched.clear();
    ASSERT_TRUE(engine->FilterXml("<a><b/></a>", &matched).ok());
    EXPECT_EQ(matched, std::vector<core::ExprId>{*id});
  }
}

}  // namespace
}  // namespace xpred
