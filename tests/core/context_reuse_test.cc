// Regression tests for context scratch keyed to the index size — the
// latent assumptions fixed alongside the epoch-snapshot work (ISSUE 7
// audit): a MatchContext sized at document start must stay in bounds
// when the index grows mid-stream, and a context must be reusable
// across differently-sized matchers (the live-filter pattern, where
// one worker context serves alternating epoch sides).

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "core/publication.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::ParseXmlOrDie;

std::vector<ExprId> ContextFilter(const Matcher& m, MatchContext* ctx,
                                  const xml::Document& doc) {
  std::vector<ExprId> matched;
  Status st = m.FilterDocument(doc, ctx, &matched);
  EXPECT_TRUE(st.ok()) << st;
  std::sort(matched.begin(), matched.end());
  return matched;
}

TEST(ContextReuseTest, MidStreamAddExpressionStaysInBounds) {
  // Trie attachments are visible immediately, so an expression added
  // while a document stream is open can be reached by the covering
  // propagation on the very next path. Before the audit fix the
  // context's matched-epoch array was sized once, at document start,
  // and the new InternalId indexed out of bounds (caught by ASan).
  Matcher m;
  auto ab = m.AddExpression("/a/b");
  ASSERT_TRUE(ab.ok());
  m.PrepareForFiltering();

  MatchContext ctx;
  m.BeginDocumentStream(&ctx);
  const std::vector<xml::Attribute> no_attrs;
  std::vector<PathElementView> path(2);
  path[0].tag = "a";
  path[0].attributes = &no_attrs;
  path[0].node = 0;
  path[1].tag = "b";
  path[1].attributes = &no_attrs;
  path[1].node = 1;
  ASSERT_TRUE(m.ProcessStreamedPath(path, &ctx).ok());

  // "/a" attaches to an existing trie node (a prefix of "/a/b"), so
  // its slot is reachable by the covering propagation on the very
  // next path even though the expression only becomes *matchable* at
  // the next PrepareForFiltering. The guarantee under test is bounds
  // safety, not early visibility.
  auto a = m.AddExpression("/a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(m.ProcessStreamedPath(path, &ctx).ok());

  std::vector<ExprId> matched;
  ASSERT_TRUE(m.EndDocumentStream(&ctx, &matched).ok());
  EXPECT_EQ(matched, (std::vector<ExprId>{*ab}));

  // After the next prepare the late expression matches normally.
  m.PrepareForFiltering();
  m.BeginDocumentStream(&ctx);
  ASSERT_TRUE(m.ProcessStreamedPath(path, &ctx).ok());
  matched.clear();
  ASSERT_TRUE(m.EndDocumentStream(&ctx, &matched).ok());
  std::sort(matched.begin(), matched.end());
  EXPECT_EQ(matched, (std::vector<ExprId>{*ab, *a}));
}

TEST(ContextReuseTest, MidStreamNestedGroupAddStaysInBounds) {
  // Same hazard for the group-witness scratch: a nested expression
  // registered mid-document must not push the end-of-stream join out
  // of bounds.
  Matcher m;
  auto plain = m.AddExpression("/a/b");
  ASSERT_TRUE(plain.ok());
  m.PrepareForFiltering();

  MatchContext ctx;
  m.BeginDocumentStream(&ctx);
  const std::vector<xml::Attribute> no_attrs;
  std::vector<PathElementView> path(2);
  path[0].tag = "a";
  path[0].attributes = &no_attrs;
  path[0].node = 0;
  path[1].tag = "b";
  path[1].attributes = &no_attrs;
  path[1].node = 1;
  ASSERT_TRUE(m.ProcessStreamedPath(path, &ctx).ok());

  auto nested = m.AddExpression("/a[b]/c");
  ASSERT_TRUE(nested.ok());

  std::vector<ExprId> matched;
  ASSERT_TRUE(m.EndDocumentStream(&ctx, &matched).ok());
  std::sort(matched.begin(), matched.end());
  EXPECT_EQ(matched, (std::vector<ExprId>{*plain}));
}

TEST(ContextReuseTest, ContextServesMatchersOfDifferentSizes) {
  // The live-filter pattern: one long-lived worker context is used
  // against whichever epoch side a batch pins, and sides differ in
  // index size. Results must not leak between matchers, in either
  // growth direction.
  Matcher big;
  Matcher small;
  std::vector<std::string> big_exprs = {"/a/b", "/a/c", "/a//d", "/a/b/c",
                                        "/a[@x = 1]", "//c"};
  for (const std::string& e : big_exprs) {
    ASSERT_TRUE(big.AddExpression(e).ok());
  }
  auto small_ab = small.AddExpression("/a/b");
  ASSERT_TRUE(small_ab.ok());
  big.PrepareForFiltering();
  small.PrepareForFiltering();

  xml::Document doc = ParseXmlOrDie("<a x=\"1\"><b><c/></b><c/></a>");
  MatchContext ctx;
  std::vector<ExprId> from_big = ContextFilter(big, &ctx, doc);
  EXPECT_FALSE(from_big.empty());

  // Shrinking direction: the context's scratch stays sized for the
  // big matcher; the small matcher must neither crash nor report the
  // big matcher's sids.
  std::vector<ExprId> from_small = ContextFilter(small, &ctx, doc);
  EXPECT_EQ(from_small, (std::vector<ExprId>{*small_ab}));

  // And back up again.
  EXPECT_EQ(ContextFilter(big, &ctx, doc), from_big);
}

TEST(ContextReuseTest, ContextSurvivesIndexGrowthBetweenDocuments) {
  Matcher m;
  auto ab = m.AddExpression("/a/b");
  ASSERT_TRUE(ab.ok());
  m.PrepareForFiltering();
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");

  MatchContext ctx;
  EXPECT_EQ(ContextFilter(m, &ctx, doc), (std::vector<ExprId>{*ab}));

  auto ac = m.AddExpression("/a/c");
  ASSERT_TRUE(ac.ok());
  m.PrepareForFiltering();
  EXPECT_EQ(ContextFilter(m, &ctx, doc), (std::vector<ExprId>{*ab, *ac}));
}

}  // namespace
}  // namespace xpred::core
