// Tests for the predicate model: rendering, equality, and attribute
// constraints.

#include "core/predicate.h"

#include "gtest/gtest.h"

namespace xpred::core {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() {
    a_ = interner_.Intern("a");
    b_ = interner_.Intern("b");
  }

  Interner interner_;
  SymbolId a_;
  SymbolId b_;
};

TEST_F(PredicateTest, AbsoluteToString) {
  Predicate p;
  p.type = PredicateType::kAbsolute;
  p.op = PredOp::kEq;
  p.value = 1;
  p.tag1 = a_;
  EXPECT_EQ(p.ToString(interner_), "(p_a, =, 1)");
  p.op = PredOp::kGe;
  p.value = 3;
  EXPECT_EQ(p.ToString(interner_), "(p_a, >=, 3)");
}

TEST_F(PredicateTest, RelativeToString) {
  Predicate p;
  p.type = PredicateType::kRelative;
  p.op = PredOp::kGe;
  p.value = 1;
  p.tag1 = a_;
  p.tag2 = b_;
  EXPECT_EQ(p.ToString(interner_), "(d(p_a, p_b), >=, 1)");
}

TEST_F(PredicateTest, EndOfPathAndLengthToString) {
  Predicate eop;
  eop.type = PredicateType::kEndOfPath;
  eop.value = 2;
  eop.tag1 = b_;
  EXPECT_EQ(eop.ToString(interner_), "(p_b-|, >=, 2)");

  Predicate len;
  len.type = PredicateType::kLength;
  len.value = 4;
  EXPECT_EQ(len.ToString(interner_), "(length, >=, 4)");
}

TEST_F(PredicateTest, AttributeConstraintToString) {
  Predicate p;
  p.type = PredicateType::kAbsolute;
  p.op = PredOp::kEq;
  p.value = 2;
  p.tag1 = a_;
  AttributeConstraint c;
  c.name = "x";
  c.has_comparison = true;
  c.op = xpath::CompareOp::kEq;
  c.value = xpath::Literal::Number(3);
  p.attrs1.push_back(c);
  // The paper's §5 spelling: (p_t1([x, =, 3]), =, 2).
  EXPECT_EQ(p.ToString(interner_), "(p_a([x, =, 3]), =, 2)");
}

TEST_F(PredicateTest, EqualityIncludesEverything) {
  Predicate p1;
  p1.type = PredicateType::kRelative;
  p1.op = PredOp::kEq;
  p1.value = 2;
  p1.tag1 = a_;
  p1.tag2 = b_;
  Predicate p2 = p1;
  EXPECT_EQ(p1, p2);
  p2.value = 3;
  EXPECT_FALSE(p1 == p2);
  p2 = p1;
  p2.op = PredOp::kGe;
  EXPECT_FALSE(p1 == p2);
  p2 = p1;
  AttributeConstraint c;
  c.name = "k";
  p2.attrs2.push_back(c);
  EXPECT_FALSE(p1 == p2);
}

TEST(AttributeConstraintTest, ExistenceMatchesAnyValue) {
  AttributeConstraint c;
  c.name = "id";
  EXPECT_TRUE(c.Matches("anything"));
  EXPECT_TRUE(c.Matches(""));
}

TEST(AttributeConstraintTest, NumericComparisons) {
  AttributeConstraint c;
  c.name = "x";
  c.has_comparison = true;
  c.op = xpath::CompareOp::kLe;
  c.value = xpath::Literal::Number(5);
  EXPECT_TRUE(c.Matches("5"));
  EXPECT_TRUE(c.Matches("4.99"));
  EXPECT_FALSE(c.Matches("5.01"));
  EXPECT_FALSE(c.Matches("junk"));
}

TEST(AttributeConstraintTest, RoundTripFromFilter) {
  xpath::AttributeFilter f;
  f.name = "k";
  f.has_comparison = true;
  f.op = xpath::CompareOp::kGt;
  f.value = xpath::Literal::String("m");
  AttributeConstraint c = AttributeConstraint::FromFilter(f);
  EXPECT_EQ(c.name, "k");
  EXPECT_TRUE(c.has_comparison);
  EXPECT_EQ(c.op, xpath::CompareOp::kGt);
  EXPECT_TRUE(c.Matches("z"));
  EXPECT_FALSE(c.Matches("a"));
}

TEST(OccPairTest, Ordering) {
  EXPECT_EQ((OccPair{1, 2}), (OccPair{1, 2}));
  EXPECT_LT((OccPair{1, 2}), (OccPair{1, 3}));
  EXPECT_LT((OccPair{1, 9}), (OccPair{2, 0}));
}

}  // namespace
}  // namespace xpred::core
