// Tests for IndexEpochManager: epoch-snapshot semantics of live
// subscribe/unsubscribe (DESIGN.md §15).

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "core/epoch_manager.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::ParseXmlOrDie;

IndexEpochManager::Options ManagerOptions(size_t partitions,
                                          bool record_history = false) {
  IndexEpochManager::Options options;
  options.partitions = partitions;
  options.record_history = record_history;
  return options;
}

std::vector<ExprId> FilterSnapshot(
    const IndexEpochManager::Snapshot& snap, const xml::Document& doc) {
  std::vector<ExprId> merged;
  for (size_t p = 0; p < snap.partition_count(); ++p) {
    MatchContext ctx;
    std::vector<ExprId> local;
    Status st = snap.partition(p).FilterDocument(doc, &ctx, &local);
    EXPECT_TRUE(st.ok()) << st;
    for (ExprId sid : local) merged.push_back(snap.GlobalSid(p, sid));
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

TEST(EpochManagerTest, SubscriptionsInvisibleUntilPublish) {
  IndexEpochManager manager(ManagerOptions(2));
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");

  Result<ExprId> sid = manager.Subscribe("/a/b");
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(manager.current_epoch(), 0u);
  EXPECT_EQ(manager.pending_ops(), 1u);
  {
    IndexEpochManager::PinnedSnapshot pin = manager.Pin();
    EXPECT_EQ(pin->epoch(), 0u);
    EXPECT_TRUE(FilterSnapshot(*pin, doc).empty());
  }

  Result<uint64_t> epoch = manager.Publish();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ(manager.pending_ops(), 0u);
  IndexEpochManager::PinnedSnapshot pin = manager.Pin();
  EXPECT_EQ(pin->epoch(), 1u);
  EXPECT_EQ(FilterSnapshot(*pin, doc), (std::vector<ExprId>{*sid}));
}

TEST(EpochManagerTest, UnsubscribeTakesEffectAtNextPublish) {
  IndexEpochManager manager(ManagerOptions(2));
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  Result<ExprId> b = manager.Subscribe("/a/b");
  Result<ExprId> c = manager.Subscribe("/a/c");
  ASSERT_TRUE(b.ok() && c.ok());
  ASSERT_TRUE(manager.Publish().ok());

  ASSERT_TRUE(manager.Unsubscribe(*b).ok());
  {
    IndexEpochManager::PinnedSnapshot pin = manager.Pin();
    EXPECT_EQ(FilterSnapshot(*pin, doc), (std::vector<ExprId>{*b, *c}));
  }
  ASSERT_TRUE(manager.Publish().ok());
  IndexEpochManager::PinnedSnapshot pin = manager.Pin();
  EXPECT_EQ(FilterSnapshot(*pin, doc), (std::vector<ExprId>{*c}));
  EXPECT_EQ(pin->live_subscriptions(), 1u);
}

TEST(EpochManagerTest, UnsubscribeValidatesEagerly) {
  IndexEpochManager manager(ManagerOptions(1));
  EXPECT_FALSE(manager.Unsubscribe(7).ok());
  Result<ExprId> sid = manager.Subscribe("/a");
  ASSERT_TRUE(sid.ok());
  EXPECT_TRUE(manager.Unsubscribe(*sid).ok());
  // Double unsubscribe is rejected even before any publish.
  EXPECT_FALSE(manager.Unsubscribe(*sid).ok());
}

TEST(EpochManagerTest, SubscribeValidatesEagerly) {
  IndexEpochManager manager(ManagerOptions(2));
  EXPECT_FALSE(manager.Subscribe("not an xpath ]][").ok());
  EXPECT_EQ(manager.pending_ops(), 0u);
  // Rejected subscribes consume no sid: the next success is dense.
  Result<ExprId> sid = manager.Subscribe("/a");
  ASSERT_TRUE(sid.ok());
  EXPECT_EQ(*sid, 0u);
}

TEST(EpochManagerTest, PinnedSnapshotSurvivesLaterPublishes) {
  IndexEpochManager manager(ManagerOptions(2));
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  Result<ExprId> b = manager.Subscribe("/a/b");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(manager.Publish().ok());

  // Hold epoch 1 pinned while epoch 2 publishes.
  IndexEpochManager::PinnedSnapshot old_pin = manager.Pin();
  Result<ExprId> c = manager.Subscribe("/a/c");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(manager.Publish().ok());

  EXPECT_EQ(old_pin->epoch(), 1u);
  EXPECT_EQ(FilterSnapshot(*old_pin, doc), (std::vector<ExprId>{*b}));
  IndexEpochManager::PinnedSnapshot new_pin = manager.Pin();
  EXPECT_EQ(new_pin->epoch(), 2u);
  EXPECT_EQ(FilterSnapshot(*new_pin, doc), (std::vector<ExprId>{*b, *c}));
}

TEST(EpochManagerTest, TryPublishRejectsWhileSparePinned) {
  IndexEpochManager manager(ManagerOptions(1));
  ASSERT_TRUE(manager.Subscribe("/a").ok());
  // Pin epoch 0 (side A). Publishing epoch 1 rebuilds side B — fine.
  IndexEpochManager::PinnedSnapshot pin = manager.Pin();
  ASSERT_TRUE(manager.TryPublish().ok());
  // Epoch 2 would need side A back, but the pin holds it.
  Result<uint64_t> blocked = manager.TryPublish();
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kRejected);
  EXPECT_EQ(manager.stats().publish_rejected, 1u);

  pin.Release();
  EXPECT_TRUE(manager.TryPublish().ok());
  EXPECT_EQ(manager.current_epoch(), 2u);
}

TEST(EpochManagerTest, PublishWaitsForGracePeriod) {
  IndexEpochManager manager(ManagerOptions(1));
  ASSERT_TRUE(manager.Subscribe("/a").ok());
  IndexEpochManager::PinnedSnapshot pin = manager.Pin();
  ASSERT_TRUE(manager.Publish().ok());

  // A blocking publish must wait until the epoch-0 pin drains.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pin.Release();
  });
  Result<uint64_t> epoch = manager.Publish();
  releaser.join();
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 2u);
}

TEST(EpochManagerTest, DuplicateExpressionsGetDistinctSids) {
  IndexEpochManager manager(ManagerOptions(2));
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  Result<ExprId> s1 = manager.Subscribe("/a/b");
  Result<ExprId> s2 = manager.Subscribe("/a/b");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(*s1, *s2);
  ASSERT_TRUE(manager.Publish().ok());
  {
    IndexEpochManager::PinnedSnapshot pin = manager.Pin();
    EXPECT_EQ(FilterSnapshot(*pin, doc), (std::vector<ExprId>{*s1, *s2}));
  }
  // Removing one subscriber must not silence the duplicate, even
  // though the copies live in different partitions.
  ASSERT_TRUE(manager.Unsubscribe(*s1).ok());
  ASSERT_TRUE(manager.Publish().ok());
  IndexEpochManager::PinnedSnapshot pin = manager.Pin();
  EXPECT_EQ(FilterSnapshot(*pin, doc), (std::vector<ExprId>{*s2}));
}

TEST(EpochManagerTest, OpsUpToEpochReplaysHistory) {
  IndexEpochManager manager(ManagerOptions(3, /*record_history=*/true));
  Result<ExprId> b = manager.Subscribe("/a/b");
  Result<ExprId> c = manager.Subscribe("/a/c");
  ASSERT_TRUE(b.ok() && c.ok());
  ASSERT_TRUE(manager.Publish().ok());  // epoch 1
  ASSERT_TRUE(manager.Unsubscribe(*b).ok());
  ASSERT_TRUE(manager.Publish().ok());  // epoch 2

  Result<std::vector<IndexEpochManager::OpView>> at0 =
      manager.OpsUpToEpoch(0);
  ASSERT_TRUE(at0.ok());
  EXPECT_TRUE(at0->empty());

  Result<std::vector<IndexEpochManager::OpView>> at1 =
      manager.OpsUpToEpoch(1);
  ASSERT_TRUE(at1.ok());
  ASSERT_EQ(at1->size(), 2u);
  EXPECT_TRUE((*at1)[0].subscribe);
  EXPECT_EQ((*at1)[0].sid, *b);

  Result<std::vector<IndexEpochManager::OpView>> at2 =
      manager.OpsUpToEpoch(2);
  ASSERT_TRUE(at2.ok());
  ASSERT_EQ(at2->size(), 3u);
  EXPECT_FALSE((*at2)[2].subscribe);
  EXPECT_EQ((*at2)[2].sid, *b);

  EXPECT_FALSE(manager.OpsUpToEpoch(9).ok());
  IndexEpochManager no_history(ManagerOptions(1));
  EXPECT_FALSE(no_history.OpsUpToEpoch(0).ok());
}

TEST(EpochManagerTest, TrimHistoryBeforeDropsOldOps) {
  IndexEpochManager manager(ManagerOptions(2, /*record_history=*/true));
  for (int epoch = 0; epoch < 4; ++epoch) {
    ASSERT_TRUE(manager.Subscribe("/a/b").ok());
    ASSERT_TRUE(manager.Publish().ok());
  }
  EXPECT_EQ(manager.history_base().epoch, 0u);
  EXPECT_EQ(manager.history_base().seq, 0u);
  size_t before = manager.ApproximateMemoryBytes();

  Result<size_t> dropped = manager.TrimHistoryBefore(3);
  ASSERT_TRUE(dropped.ok()) << dropped.status();
  EXPECT_EQ(*dropped, 3u);  // Seqs 1..3 are covered by epoch 3's boundary.
  EXPECT_EQ(manager.history_base().epoch, 3u);
  EXPECT_EQ(manager.history_base().seq, 3u);
  EXPECT_LT(manager.ApproximateMemoryBytes(), before);

  // The base epoch is the empty incremental view (the anchor a
  // checkpoint seeds from); later epochs replay from there.
  Result<std::vector<IndexEpochManager::OpView>> ops = manager.OpsUpToEpoch(3);
  ASSERT_TRUE(ops.ok()) << ops.status();
  EXPECT_TRUE(ops->empty());
  Result<std::vector<IndexEpochManager::OpView>> all = manager.OpsUpToEpoch(4);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);

  // Epochs before the base are gone, with a trim-specific error.
  Result<std::vector<IndexEpochManager::OpView>> old = manager.OpsUpToEpoch(2);
  EXPECT_FALSE(old.ok());
  EXPECT_NE(old.status().message().find("trimmed"), std::string::npos)
      << old.status();
}

TEST(EpochManagerTest, TrimHistoryRefusesWhilePinned) {
  IndexEpochManager manager(ManagerOptions(1, /*record_history=*/true));
  ASSERT_TRUE(manager.Subscribe("/a").ok());
  ASSERT_TRUE(manager.Publish().ok());
  {
    IndexEpochManager::PinnedSnapshot pin = manager.Pin();
    ASSERT_TRUE(manager.Subscribe("/b").ok());
    ASSERT_TRUE(manager.Publish().ok());
    // Epoch 1 is still pinned; dropping its ops would strand the
    // reader's rebuild path.
    Result<size_t> trim = manager.TrimHistoryBefore(2);
    EXPECT_FALSE(trim.ok());
    EXPECT_EQ(trim.status().code(), StatusCode::kRejected);
  }
  // Pin released: the same trim now succeeds.
  Result<size_t> trim = manager.TrimHistoryBefore(2);
  ASSERT_TRUE(trim.ok()) << trim.status();
  EXPECT_EQ(manager.history_base().epoch, 2u);
}

TEST(EpochManagerTest, TrimHistoryValidatesArguments) {
  IndexEpochManager no_history(ManagerOptions(1));
  EXPECT_FALSE(no_history.TrimHistoryBefore(0).ok());

  IndexEpochManager manager(ManagerOptions(1, /*record_history=*/true));
  ASSERT_TRUE(manager.Subscribe("/a").ok());
  ASSERT_TRUE(manager.Publish().ok());
  // Unpublished epochs cannot justify a trim.
  EXPECT_FALSE(manager.TrimHistoryBefore(7).ok());
  // Trimming is idempotent at the same base.
  ASSERT_TRUE(manager.TrimHistoryBefore(1).ok());
  Result<size_t> again = manager.TrimHistoryBefore(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(EpochManagerTest, EmptyPublishBumpsEpoch) {
  IndexEpochManager manager(ManagerOptions(1));
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(manager.current_epoch(), 2u);
  EXPECT_EQ(manager.stats().publishes, 2u);
}

TEST(EpochManagerTest, StatsTrackOperations) {
  IndexEpochManager manager(ManagerOptions(2));
  ASSERT_TRUE(manager.Subscribe("/a").ok());
  ASSERT_TRUE(manager.Subscribe("/a/b").ok());
  ASSERT_TRUE(manager.Unsubscribe(0).ok());
  ASSERT_TRUE(manager.Publish().ok());
  IndexEpochManager::Stats stats = manager.stats();
  EXPECT_EQ(stats.subscribes, 2u);
  EXPECT_EQ(stats.unsubscribes, 1u);
  EXPECT_EQ(stats.publishes, 1u);
  // The first publish replays all three ops into one side.
  EXPECT_EQ(stats.ops_applied, 3u);
  EXPECT_EQ(manager.subscription_count(), 2u);
  EXPECT_EQ(manager.live_subscriptions(), 1u);
}

}  // namespace
}  // namespace xpred::core
