// Tests for containment covering — the paper's §4.2.2 future work
// ("the covering relation also holds, if for two expressions, one
// constitutes a suffix or a contained expression of the other one").

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred::core {
namespace {

using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

Matcher MakeCc(Matcher::Mode mode = Matcher::Mode::kPrefixCovering) {
  Matcher::Options options;
  options.mode = mode;
  options.enable_containment_covering = true;
  return Matcher(options);
}

TEST(ContainmentTest, SuffixExpressionCoveredWithoutExtraRuns) {
  // b/c is a suffix subchain of /a/b/c: a match of the long expression
  // must settle the suffix with a single occurrence run.
  Matcher m = MakeCc();
  auto long_id = m.AddExpression("/a/b/c");
  auto suffix_id = m.AddExpression("b/c");
  ASSERT_TRUE(long_id.ok() && suffix_id.ok());
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  EXPECT_EQ(FilterSorted(&m, doc),
            (std::vector<ExprId>{*long_id, *suffix_id}));
  EXPECT_EQ(m.stats().occurrence_runs, 1u);
}

TEST(ContainmentTest, InfixExpressionCovered) {
  // b/c is an infix subchain of a/b/c/d.
  Matcher m = MakeCc();
  auto long_id = m.AddExpression("a/b/c/d");
  auto infix_id = m.AddExpression("b/c");
  ASSERT_TRUE(long_id.ok() && infix_id.ok());
  xml::Document doc = ParseXmlOrDie("<r><a><b><c><d/></c></b></a></r>");
  EXPECT_EQ(FilterSorted(&m, doc),
            (std::vector<ExprId>{*long_id, *infix_id}));
  EXPECT_EQ(m.stats().occurrence_runs, 1u);
}

TEST(ContainmentTest, ContainedDoesNotImplyContainer) {
  // Matching only the short expression must not mark the long one.
  Matcher m = MakeCc();
  auto long_id = m.AddExpression("/a/b/c");
  auto suffix_id = m.AddExpression("b/c");
  ASSERT_TRUE(long_id.ok() && suffix_id.ok());
  xml::Document doc = ParseXmlOrDie("<x><b><c/></b></x>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*suffix_id}));
}

TEST(ContainmentTest, DisabledByDefault) {
  Matcher::Options options;
  options.mode = Matcher::Mode::kPrefixCovering;
  Matcher m(options);
  ASSERT_TRUE(m.AddExpression("/a/b/c").ok());
  ASSERT_TRUE(m.AddExpression("b/c").ok());
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  EXPECT_EQ(FilterSorted(&m, doc).size(), 2u);
  // Without containment covering both expressions ran.
  EXPECT_EQ(m.stats().occurrence_runs, 2u);
}

TEST(ContainmentTest, LateInsertsRebuildTheIndex) {
  Matcher m = MakeCc();
  auto long_id = m.AddExpression("/a/b/c");
  ASSERT_TRUE(long_id.ok());
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  EXPECT_EQ(FilterSorted(&m, doc).size(), 1u);
  // Insert the contained expression after a document was filtered.
  auto suffix_id = m.AddExpression("b/c");
  ASSERT_TRUE(suffix_id.ok());
  EXPECT_EQ(FilterSorted(&m, doc),
            (std::vector<ExprId>{*long_id, *suffix_id}));
}

TEST(ContainmentTest, DeferredFiltersStillVerified) {
  // The contained expression carries an attribute filter in
  // selection-postponed mode: covering marks it structurally but the
  // filter must still be checked.
  Matcher::Options options;
  options.mode = Matcher::Mode::kPrefixCovering;
  options.attribute_mode = AttributeMode::kSelectionPostponed;
  options.enable_containment_covering = true;
  Matcher m(options);
  auto long_id = m.AddExpression("/a/b/c");
  auto hit = m.AddExpression("b/c[@x = 1]");
  auto miss = m.AddExpression("b/c[@x = 2]");
  ASSERT_TRUE(long_id.ok() && hit.ok() && miss.ok());
  xml::Document doc = ParseXmlOrDie("<a><b><c x=\"1\"/></b></a>");
  EXPECT_EQ(FilterSorted(&m, doc),
            (std::vector<ExprId>{*long_id, *hit}));
}

TEST(ContainmentTest, AgreementWithOracleOnCorpus) {
  // Containment covering must not change outcomes, only costs.
  const std::vector<std::string> docs = {
      "<a><b><c><d/></c></b></a>",
      "<x><a><b/></a></x>",
      "<b><c/></b>",
      "<a><c><b/></c></a>",
      "<a><b><c><a><b><c/></b></a></c></b></a>",
  };
  const std::vector<std::string> exprs = {
      "/a/b/c", "a/b/c/d", "b/c", "c", "a/b", "c/d", "/a", "b//c",
      "a//b/c", "b/a",
  };
  for (Matcher::Mode mode :
       {Matcher::Mode::kPrefixCovering,
        Matcher::Mode::kPrefixCoveringAccessPredicate}) {
    Matcher m = MakeCc(mode);
    std::vector<ExprId> ids = xpred::testing::AddAll(&m, exprs);
    for (const std::string& doc_text : docs) {
      xml::Document doc = ParseXmlOrDie(doc_text);
      std::vector<ExprId> matched = FilterSorted(&m, doc);
      for (size_t i = 0; i < exprs.size(); ++i) {
        bool expected =
            xpath::Evaluator::Matches(ParseXPathOrDie(exprs[i]), doc);
        bool actual =
            std::binary_search(matched.begin(), matched.end(), ids[i]);
        EXPECT_EQ(actual, expected)
            << "doc=" << doc_text << " expr=" << exprs[i];
      }
    }
  }
}

TEST(ContainmentTest, ReducesOccurrenceRunsOnCoveringWorkload) {
  auto runs = [](bool enable) {
    Matcher::Options options;
    options.mode = Matcher::Mode::kPrefixCovering;
    options.enable_containment_covering = enable;
    Matcher m(options);
    const std::vector<std::string> workload = {
        "/a/b/c/d", "b/c", "c/d", "b/c/d", "a/b", "/a/b",
    };
    xpred::testing::AddAll(&m, workload);
    xml::Document doc = ParseXmlOrDie("<a><b><c><d/></c></b></a>");
    FilterSorted(&m, doc);
    return m.stats().occurrence_runs;
  };
  EXPECT_LT(runs(true), runs(false));
}

}  // namespace
}  // namespace xpred::core
