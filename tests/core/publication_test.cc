// Tests for the document-path -> tuple encoding (paper §3.3).

#include "core/publication.h"

#include "gtest/gtest.h"

#include "test_util.h"
#include "xml/path.h"

namespace xpred::core {
namespace {

using xpred::testing::ParseXmlOrDie;

class PublicationTest : public ::testing::Test {
 protected:
  /// Interns the tags predicates would mention.
  void InternTags(const std::vector<std::string>& tags) {
    for (const std::string& t : tags) interner_.Intern(t);
  }

  Interner interner_;
};

TEST_F(PublicationTest, PaperExample1) {
  // The path e = (a, b, c, a, b, c) from Example 1 translates to
  // (length, 6), (a^1, 1), (b^1, 2), (c^1, 3), (a^2, 4), (b^2, 5),
  // (c^2, 6).
  InternTags({"a", "b", "c"});
  xml::Document doc = ParseXmlOrDie(
      "<a><b><c><a><b><c/></b></a></c></b></a>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  Publication pub(paths[0], interner_);
  EXPECT_EQ(pub.ToString(interner_),
            "(length, 6), (a^1, 1), (b^1, 2), (c^1, 3), (a^2, 4), "
            "(b^2, 5), (c^2, 6)");
}

TEST_F(PublicationTest, LengthAndPositions) {
  InternTags({"x", "y"});
  xml::Document doc = ParseXmlOrDie("<x><y><x/></y></x>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  Publication pub(paths[0], interner_);
  EXPECT_EQ(pub.length(), 3u);
  SymbolId x = interner_.Lookup("x");
  SymbolId y = interner_.Lookup("y");
  EXPECT_EQ(pub.PositionOf(x, 1), 1u);
  EXPECT_EQ(pub.PositionOf(x, 2), 3u);
  EXPECT_EQ(pub.PositionOf(y, 1), 2u);
  EXPECT_EQ(pub.PositionOf(x, 3), 0u);  // No third x.
  EXPECT_EQ(pub.PositionOf(y, 0), 0u);  // Occurrences start at 1.
}

TEST_F(PublicationTest, UnknownTagsKeepPositionsButNoSymbol) {
  // Tags never interned (no expression mentions them) must still
  // occupy their positions so distances and length stay correct.
  InternTags({"b"});
  xml::Document doc = ParseXmlOrDie("<a><b><zz/></b></a>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  Publication pub(paths[0], interner_);
  EXPECT_EQ(pub.length(), 3u);
  EXPECT_EQ(pub.tuple(1).tag, kInvalidSymbol);
  EXPECT_EQ(pub.tuple(2).tag, interner_.Lookup("b"));
  EXPECT_EQ(pub.tuple(2).position, 2u);
  EXPECT_EQ(pub.tuple(3).tag, kInvalidSymbol);
}

TEST_F(PublicationTest, OccurrencesArePerPathNotPerDocument) {
  // Two sibling branches each see their own occurrence numbering.
  InternTags({"a", "b"});
  xml::Document doc = ParseXmlOrDie("<a><b/><b/></a>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 2u);
  Publication p1(paths[0], interner_);
  Publication p2(paths[1], interner_);
  // Both paths are (a, b): each b is occurrence 1 of its own path.
  EXPECT_EQ(p1.tuple(2).occurrence, 1u);
  EXPECT_EQ(p2.tuple(2).occurrence, 1u);
  EXPECT_NE(p1.NodeAt(2), p2.NodeAt(2));
}

TEST_F(PublicationTest, AttributesReachableByPosition) {
  InternTags({"a", "b"});
  xml::Document doc = ParseXmlOrDie("<a x=\"1\"><b y=\"2\" z=\"3\"/></a>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  Publication pub(paths[0], interner_);
  ASSERT_EQ(pub.AttributesAt(1).size(), 1u);
  EXPECT_EQ(pub.AttributesAt(1)[0].name, "x");
  ASSERT_EQ(pub.AttributesAt(2).size(), 2u);
  EXPECT_EQ(pub.AttributesAt(2)[1].value, "3");
}

}  // namespace
}  // namespace xpred::core
