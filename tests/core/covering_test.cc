// Tests for the prefix-covering organization (paper §4.2.2, Figure 2)
// and the access-predicate clustering.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/expression_index.h"
#include "core/matcher.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;

// --- ExpressionTrie unit behavior --------------------------------------------

TEST(ExpressionTrieTest, ChainsSharePrefixNodes) {
  ExpressionTrie trie;
  uint32_t n1 = trie.InsertChain({10, 11, 12});
  uint32_t n2 = trie.InsertChain({10, 11, 13});
  uint32_t n3 = trie.InsertChain({10, 11});
  uint32_t n4 = trie.InsertChain({10, 11, 12});
  EXPECT_EQ(n1, n4);
  EXPECT_NE(n1, n2);
  // Root + 10 + 11 + 12 + 13 = 5 nodes.
  EXPECT_EQ(trie.node_count(), 5u);
  EXPECT_EQ(trie.node(n3).depth, 2);
  EXPECT_EQ(trie.node(n1).depth, 3);
  EXPECT_EQ(trie.node(n1).parent, n3);
}

TEST(ExpressionTrieTest, PrefixCollection) {
  ExpressionTrie trie;
  uint32_t n_ab = trie.InsertChain({1, 2});
  uint32_t n_abc = trie.InsertChain({1, 2, 3});
  uint32_t n_a = trie.InsertChain({1});
  trie.AttachExpression(n_a, 100);
  trie.AttachExpression(n_ab, 101);
  trie.AttachExpression(n_abc, 102);

  std::vector<InternalId> prefixes;
  trie.CollectPrefixExpressions(n_abc, &prefixes);
  std::sort(prefixes.begin(), prefixes.end());
  EXPECT_EQ(prefixes, (std::vector<InternalId>{100, 101}));

  prefixes.clear();
  trie.CollectPrefixExpressions(n_a, &prefixes);
  EXPECT_TRUE(prefixes.empty());
}

TEST(ExpressionTrieTest, ClustersGroupByFirstPredicate) {
  ExpressionTrie trie;
  trie.AttachExpression(trie.InsertChain({1, 2}), 0);
  trie.AttachExpression(trie.InsertChain({1, 3}), 1);
  trie.AttachExpression(trie.InsertChain({7}), 2);
  const auto& clusters = trie.clusters();
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].access_pid, 1u);
  EXPECT_EQ(clusters[0].expressions_by_length.size(), 2u);
  EXPECT_EQ(clusters[1].access_pid, 7u);
  EXPECT_EQ(clusters[1].expressions_by_length,
            (std::vector<InternalId>{2}));
}

TEST(ExpressionTrieTest, LongestFirstOrdering) {
  ExpressionTrie trie;
  trie.AttachExpression(trie.InsertChain({1}), 0);
  trie.AttachExpression(trie.InsertChain({1, 2, 3, 4}), 1);
  trie.AttachExpression(trie.InsertChain({1, 2}), 2);
  const auto& order = trie.expressions_by_length();
  EXPECT_EQ(order, (std::vector<InternalId>{1, 2, 0}));
}

TEST(ExpressionTrieTest, ShortestFirstOrderingForAblation) {
  ExpressionTrie trie;
  trie.SetOrderLongestFirst(false);
  trie.AttachExpression(trie.InsertChain({1}), 0);
  trie.AttachExpression(trie.InsertChain({1, 2, 3, 4}), 1);
  trie.AttachExpression(trie.InsertChain({1, 2}), 2);
  EXPECT_EQ(trie.expressions_by_length(),
            (std::vector<InternalId>{0, 2, 1}));
  // Flipping the order dirties and rebuilds.
  trie.SetOrderLongestFirst(true);
  EXPECT_EQ(trie.expressions_by_length(),
            (std::vector<InternalId>{1, 2, 0}));
}

TEST(ExpressionTrieTest, RebuildAfterLateInsert) {
  ExpressionTrie trie;
  trie.AttachExpression(trie.InsertChain({1}), 0);
  EXPECT_EQ(trie.clusters().size(), 1u);
  trie.AttachExpression(trie.InsertChain({2}), 1);
  EXPECT_EQ(trie.clusters().size(), 2u);  // Lazily rebuilt.
}

// --- Covering semantics end to end -------------------------------------------

TEST(CoveringTest, CoveredPrefixesReportedWithoutSeparateEvaluation) {
  // /a/b/c covers /a/b covers /a: one occurrence-determination run
  // should settle all three when the longest matches.
  Matcher::Options options;
  options.mode = Matcher::Mode::kPrefixCovering;
  Matcher m(options);
  auto a = m.AddExpression("/a");
  auto ab = m.AddExpression("/a/b");
  auto abc = m.AddExpression("/a/b/c");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(abc.ok());

  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{*a, *ab, *abc}));
  // The document has one path; the longest expression is evaluated
  // once and the two prefixes are derived: exactly 1 run.
  EXPECT_EQ(m.stats().occurrence_runs, 1u);
}

TEST(CoveringTest, BasicModeRunsEveryExpression) {
  Matcher::Options options;
  options.mode = Matcher::Mode::kBasic;
  Matcher m(options);
  ASSERT_TRUE(m.AddExpression("/a").ok());
  ASSERT_TRUE(m.AddExpression("/a/b").ok());
  ASSERT_TRUE(m.AddExpression("/a/b/c").ok());
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched.size(), 3u);
  EXPECT_EQ(m.stats().occurrence_runs, 3u);
}

TEST(CoveringTest, FailedLongExpressionDoesNotPoisonPrefixes) {
  Matcher::Options options;
  options.mode = Matcher::Mode::kPrefixCovering;
  Matcher m(options);
  auto ab = m.AddExpression("/a/b");
  auto abc = m.AddExpression("/a/b/c");
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(abc.ok());
  xml::Document doc = ParseXmlOrDie("<a><b><d/></b></a>");
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  // /a/b/c fails, /a/b still matches.
  EXPECT_EQ(matched, (std::vector<ExprId>{*ab}));
}

TEST(CoveringTest, AccessPredicateSkipsWholeClusters) {
  Matcher::Options options;
  options.mode = Matcher::Mode::kPrefixCoveringAccessPredicate;
  Matcher m(options);
  // Cluster 1: first predicate (p_z, =, 1) — z never appears in the
  // document, so the cluster is ruled out without any occurrence run.
  ASSERT_TRUE(m.AddExpression("/z/a").ok());
  ASSERT_TRUE(m.AddExpression("/z/b").ok());
  ASSERT_TRUE(m.AddExpression("/z/a/b").ok());
  auto hit = m.AddExpression("/a/b");
  ASSERT_TRUE(hit.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{*hit}));
  EXPECT_EQ(m.stats().occurrence_runs, 1u);
}

TEST(CoveringTest, CoveringAcrossSharedMiddlePredicates) {
  // b/c is a chain prefix of b/c/d even though both are relative
  // expressions appearing in larger ones; check reporting stays exact.
  Matcher::Options options;
  options.mode = Matcher::Mode::kPrefixCoveringAccessPredicate;
  Matcher m(options);
  auto bc = m.AddExpression("b/c");
  auto bcd = m.AddExpression("b/c/d");
  ASSERT_TRUE(bc.ok());
  ASSERT_TRUE(bcd.ok());
  xml::Document with_d = ParseXmlOrDie("<r><b><c><d/></c></b></r>");
  xml::Document without_d = ParseXmlOrDie("<r><b><c><e/></c></b></r>");
  EXPECT_EQ(FilterSorted(&m, with_d),
            (std::vector<ExprId>{*bc, *bcd}));
  EXPECT_EQ(FilterSorted(&m, without_d), (std::vector<ExprId>{*bc}));
}

TEST(CoveringTest, SameChainExpressionsAllReported) {
  // /*/*/* and */*/* encode to the same single predicate chain
  // (length, >=, 3): both must be reported from one evaluation.
  for (Matcher::Mode mode :
       {Matcher::Mode::kPrefixCovering,
        Matcher::Mode::kPrefixCoveringAccessPredicate,
        Matcher::Mode::kTrieDfs}) {
    Matcher::Options options;
    options.mode = mode;
    Matcher m(options);
    auto abs = m.AddExpression("/*/*/*");
    auto rel = m.AddExpression("*/*/*");
    ASSERT_TRUE(abs.ok());
    ASSERT_TRUE(rel.ok());
    xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
    std::vector<ExprId> matched = FilterSorted(&m, doc);
    EXPECT_EQ(matched, (std::vector<ExprId>{*abs, *rel}))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(CoveringTest, OccurrenceRunsOrderedByModeEfficiency) {
  // With a covering-heavy workload, pc should need no more runs than
  // basic, and ap no more than pc.
  const std::vector<std::string> workload = {
      "/a",       "/a/b",     "/a/b/c",  "/a/b/c/d", "/a/x",
      "/z",       "/z/y",     "b/c",     "b/c/d",    "/q/r/s",
  };
  xml::Document doc = ParseXmlOrDie("<a><b><c><d/></c></b><x/></a>");

  auto runs = [&](Matcher::Mode mode) {
    Matcher::Options options;
    options.mode = mode;
    Matcher m(options);
    xpred::testing::AddAll(&m, workload);
    FilterSorted(&m, doc);
    return m.stats().occurrence_runs;
  };

  uint64_t basic = runs(Matcher::Mode::kBasic);
  uint64_t pc = runs(Matcher::Mode::kPrefixCovering);
  uint64_t ap = runs(Matcher::Mode::kPrefixCoveringAccessPredicate);
  EXPECT_LE(pc, basic);
  EXPECT_LE(ap, pc);
  EXPECT_LT(ap, basic);
}

}  // namespace
}  // namespace xpred::core
