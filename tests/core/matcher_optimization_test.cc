// Regression tests for the matcher's performance machinery: path
// deduplication, the hot-expression layout, and the predicate-index
// equality acceleration. These optimizations must be invisible to the
// matching semantics.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::EngineMatches;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;

TEST(PathDedupTest, IdenticalStructuralPathsSkipped) {
  // The second a/b path is structurally identical; skipping it must
  // not change the outcome.
  Matcher m;
  auto id = m.AddExpression("/a/b");
  ASSERT_TRUE(id.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/><b/><b/></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*id}));
  // Three extracted paths, but predicate matching ran once.
  EXPECT_EQ(m.stats().paths, 3u);
}

TEST(PathDedupTest, DifferingAttributesAreNotDeduplicated) {
  // Two paths with the same tags but different attribute values: only
  // the second satisfies the filter. If dedup ignored attributes the
  // match would be lost.
  Matcher m;
  auto id = m.AddExpression("/a/b[@x = 2]");
  ASSERT_TRUE(id.ok());
  xml::Document doc = ParseXmlOrDie("<a><b x=\"1\"/><b x=\"2\"/></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*id}));
}

TEST(PathDedupTest, AttributeOrderAndNamesDistinguishPaths) {
  Matcher m;
  auto id = m.AddExpression("/a/b[@y = 1]");
  ASSERT_TRUE(id.ok());
  // First b has x=1 (no y), second has y=1.
  xml::Document doc = ParseXmlOrDie("<a><b x=\"1\"/><b y=\"1\"/></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*id}));
}

TEST(PathDedupTest, SelectionPostponedSeesAttributedPaths) {
  Matcher::Options options;
  options.attribute_mode = AttributeMode::kSelectionPostponed;
  Matcher m(options);
  auto id = m.AddExpression("/a/b[@x = 2]");
  ASSERT_TRUE(id.ok());
  xml::Document doc = ParseXmlOrDie("<a><b x=\"1\"/><b x=\"2\"/></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*id}));
}

TEST(PathDedupTest, NestedExpressionsDisableDedup) {
  // With a nested expression stored, node-identity witnesses must not
  // be lost to dedup: the two a children have identical tag paths but
  // only one of them has both b and c.
  Matcher m;
  auto id = m.AddExpression("/r/a[b]/c");
  ASSERT_TRUE(id.ok());
  xml::Document doc =
      ParseXmlOrDie("<r><a><b/></a><a><b/><c/></a></r>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*id}));
}

TEST(HotLayoutTest, LongChainsUseOverflowStorage) {
  // Expressions with more than 8 predicates exercise the overflow
  // path: /a/b/c/d/e/f/g/h/i has 9 predicates (1 absolute + 8
  // relative).
  Matcher m;
  auto long_id = m.AddExpression("/e1/e2/e3/e4/e5/e6/e7/e8/e9");
  auto short_id = m.AddExpression("/e1/e2");
  ASSERT_TRUE(long_id.ok());
  ASSERT_TRUE(short_id.ok());
  xml::Document hit = ParseXmlOrDie(
      "<e1><e2><e3><e4><e5><e6><e7><e8><e9/></e8></e7></e6></e5></e4>"
      "</e3></e2></e1>");
  std::vector<ExprId> matched = FilterSorted(&m, hit);
  EXPECT_EQ(matched, (std::vector<ExprId>{*long_id, *short_id}));

  xml::Document miss = ParseXmlOrDie(
      "<e1><e2><e3><e4><e5><e6><e7><e8><wrong/></e8></e7></e6></e5></e4>"
      "</e3></e2></e1>");
  EXPECT_EQ(FilterSorted(&m, miss), (std::vector<ExprId>{*short_id}));
}

TEST(EqualityIndexTest, NumericCanonicalizationAcrossSpellings) {
  // The equality acceleration must treat "3", "3.0" and 3.0 as equal
  // and must not confuse them with the string "3.0".
  Matcher m;
  auto num = m.AddExpression("/a[@x = 3]");
  auto str = m.AddExpression("/a[@x = \"3.0\"]");
  ASSERT_TRUE(num.ok());
  ASSERT_TRUE(str.ok());

  xml::Document spelled = ParseXmlOrDie("<a x=\"3.0\"/>");
  std::vector<ExprId> matched = FilterSorted(&m, spelled);
  // Numeric filter matches (3.0 == 3); string filter matches ("3.0").
  EXPECT_EQ(matched, (std::vector<ExprId>{*num, *str}));

  xml::Document plain = ParseXmlOrDie("<a x=\"3\"/>");
  matched = FilterSorted(&m, plain);
  // Numeric matches; the string literal "3.0" does not equal "3".
  EXPECT_EQ(matched, (std::vector<ExprId>{*num}));
}

TEST(EqualityIndexTest, ManyValueVariantsStaySound) {
  // 50 equality variants on one coordinate: exactly the right one must
  // fire for each document.
  Matcher m;
  std::vector<ExprId> ids;
  for (int v = 0; v < 50; ++v) {
    auto id = m.AddExpression("/a/b[@k = " + std::to_string(v) + "]");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (int v = 0; v < 50; v += 7) {
    xml::Document doc = ParseXmlOrDie(
        "<a><b k=\"" + std::to_string(v) + "\"/></a>");
    EXPECT_EQ(FilterSorted(&m, doc),
              (std::vector<ExprId>{ids[static_cast<size_t>(v)]}));
  }
}

TEST(EqualityIndexTest, MixedEqualityAndRelationalConstraints) {
  // Relational and multi-constraint predicates take the scan path;
  // they must coexist with equality-indexed ones on the same slot.
  Matcher m;
  auto eq = m.AddExpression("/a/b[@k = 10]");
  auto ge = m.AddExpression("/a/b[@k >= 10]");
  auto both = m.AddExpression("/a/b[@k >= 5][@k <= 15]");
  auto exists = m.AddExpression("/a/b[@k]");
  ASSERT_TRUE(eq.ok() && ge.ok() && both.ok() && exists.ok());

  xml::Document at10 = ParseXmlOrDie("<a><b k=\"10\"/></a>");
  EXPECT_EQ(FilterSorted(&m, at10),
            (std::vector<ExprId>{*eq, *ge, *both, *exists}));

  xml::Document at20 = ParseXmlOrDie("<a><b k=\"20\"/></a>");
  EXPECT_EQ(FilterSorted(&m, at20), (std::vector<ExprId>{*ge, *exists}));

  xml::Document at7 = ParseXmlOrDie("<a><b k=\"7\"/></a>");
  EXPECT_EQ(FilterSorted(&m, at7), (std::vector<ExprId>{*both, *exists}));
}

TEST(EqualityIndexTest, StringEqualityIndexed) {
  Matcher m;
  auto news = m.AddExpression("/a[@kind = \"news\"]");
  auto sports = m.AddExpression("/a[@kind = \"sports\"]");
  ASSERT_TRUE(news.ok() && sports.ok());
  xml::Document doc = ParseXmlOrDie("<a kind=\"news\"/>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*news}));
}

TEST(EqualityIndexTest, RelativePredicateConstraintOnEitherTag) {
  // Constraints on the first vs second tag variable of a relative
  // predicate must not be confused (side is part of the index key).
  Matcher m;
  auto on_first = m.AddExpression("a[@k = 1]/b");
  auto on_second = m.AddExpression("a/b[@k = 1]");
  ASSERT_TRUE(on_first.ok() && on_second.ok());

  xml::Document first_doc = ParseXmlOrDie("<r><a k=\"1\"><b/></a></r>");
  EXPECT_EQ(FilterSorted(&m, first_doc),
            (std::vector<ExprId>{*on_first}));

  xml::Document second_doc = ParseXmlOrDie("<r><a><b k=\"1\"/></a></r>");
  EXPECT_EQ(FilterSorted(&m, second_doc),
            (std::vector<ExprId>{*on_second}));
}

}  // namespace
}  // namespace xpred::core
