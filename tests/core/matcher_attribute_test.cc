// Tests for attribute-based filters (paper §5): inline and
// selection-postponed evaluation must agree with each other and with
// the oracle.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred::core {
namespace {

using xpred::testing::EngineMatches;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

struct AttributeParam {
  Matcher::Mode mode;
  AttributeMode attribute_mode;
};

class AttributeModeTest : public ::testing::TestWithParam<AttributeParam> {
 protected:
  Matcher MakeMatcher() {
    Matcher::Options options;
    options.mode = GetParam().mode;
    options.attribute_mode = GetParam().attribute_mode;
    return Matcher(options);
  }
};

TEST_P(AttributeModeTest, EqualityFilter) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a><b x=\"3\"/><b x=\"5\"/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a/b[@x = 3]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/b[@x = 5]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/b[@x = 4]", doc));
}

TEST_P(AttributeModeTest, RelationalOperators) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a v=\"10\"><b v=\"20\"/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[@v >= 10]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a[@v < 11]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/b[@v > 15]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/b[@v != 10]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@v > 10]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/b[@v <= 19]", doc));
}

TEST_P(AttributeModeTest, ExistenceFilter) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a id=\"7\"><b/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[@id]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/b[@id]", doc));
}

TEST_P(AttributeModeTest, StringValuedFilter) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a kind=\"news\"/>");
  EXPECT_TRUE(EngineMatches(&m, "/a[@kind = \"news\"]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@kind = \"sports\"]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a[@kind != \"sports\"]", doc));
}

TEST_P(AttributeModeTest, MultipleFiltersOnOneStep) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a x=\"1\" y=\"2\"/>");
  EXPECT_TRUE(EngineMatches(&m, "/a[@x = 1][@y = 2]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@x = 1][@y = 3]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@x = 2][@y = 2]", doc));
}

TEST_P(AttributeModeTest, FiltersOnMultipleSteps) {
  Matcher m = MakeMatcher();
  xml::Document doc =
      ParseXmlOrDie("<a x=\"1\"><m><b y=\"2\"/></m></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[@x = 1]/*/b[@y = 2]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a[@x = 1]//b[@y = 2]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@x = 2]/*/b[@y = 2]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@x = 1]/*/b[@y = 1]", doc));
}

TEST_P(AttributeModeTest, FilterMustHoldOnTheChainedOccurrence) {
  // The b at distance 1 from a has x=1; the b at distance 2 has x=2.
  // a/b[@x = 2] must NOT match: the b adjacent to a carries the wrong
  // value, and the right-valued b is at the wrong distance.
  Matcher m = MakeMatcher();
  xml::Document doc =
      ParseXmlOrDie("<a><b x=\"1\"><b x=\"2\"/></b></a>");
  EXPECT_TRUE(EngineMatches(&m, "a/b[@x = 1]", doc));
  EXPECT_FALSE(EngineMatches(&m, "a/b[@x = 2]", doc));
  EXPECT_TRUE(EngineMatches(&m, "a//b[@x = 2]", doc));
  EXPECT_TRUE(EngineMatches(&m, "a/b/b[@x = 2]", doc));
  EXPECT_FALSE(EngineMatches(&m, "a/b/b[@x = 1]", doc));
}

TEST_P(AttributeModeTest, OccurrenceInterplay) {
  // Repeated tags with different attribute values: the witness chain
  // must pick consistent occurrences.
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(
      "<a k=\"1\"><x><a k=\"2\"><y><a k=\"3\"/></y></a></x></a>");
  EXPECT_TRUE(EngineMatches(&m, "a[@k = 1]//a[@k = 3]", doc));
  EXPECT_TRUE(EngineMatches(&m, "a[@k = 2]/*/a[@k = 3]", doc));
  EXPECT_FALSE(EngineMatches(&m, "a[@k = 1]/*/a[@k = 3]", doc));
  EXPECT_FALSE(EngineMatches(&m, "a[@k = 3]//a[@k = 1]", doc));
}

TEST_P(AttributeModeTest, NonNumericValueNeverSatisfiesNumericRelation) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a x=\"abc\"/>");
  EXPECT_FALSE(EngineMatches(&m, "/a[@x = 3]", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a[@x >= 3]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a[@x != 3]", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a[@x]", doc));
}

TEST_P(AttributeModeTest, AgainstOracleOnAttributeCorpus) {
  const std::vector<std::string> docs = {
      "<a x=\"1\"><b y=\"2\"><c/></b></a>",
      "<a x=\"5\"><b y=\"2\"/><b y=\"7\"/></a>",
      "<a><a x=\"3\"><b/></a></a>",
      "<r><a x=\"1\"/><a x=\"2\"/><a x=\"3\"/></r>",
  };
  const std::vector<std::string> exprs = {
      "/a[@x = 1]",        "/a[@x >= 2]",      "a[@x = 3]",
      "/a/b[@y = 2]",      "/a/b[@y > 2]",     "b[@y != 2]",
      "a[@x = 3]/b",       "/a[@x = 1]/b/c",   "//a[@x]",
      "/r/a[@x >= 2]",     "/r/a[@x = 9]",     "a[@x = 1][@x = 2]",
  };
  Matcher m = MakeMatcher();
  std::vector<ExprId> ids = xpred::testing::AddAll(&m, exprs);
  for (const std::string& doc_text : docs) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    std::vector<ExprId> matched = FilterSorted(&m, doc);
    for (size_t i = 0; i < exprs.size(); ++i) {
      bool expected =
          xpath::Evaluator::Matches(ParseXPathOrDie(exprs[i]), doc);
      bool actual =
          std::binary_search(matched.begin(), matched.end(), ids[i]);
      EXPECT_EQ(actual, expected)
          << "doc=" << doc_text << " expr=" << exprs[i];
    }
  }
}

std::string ParamName(
    const ::testing::TestParamInfo<AttributeParam>& info) {
  std::string name;
  switch (info.param.mode) {
    case Matcher::Mode::kBasic:
      name = "basic";
      break;
    case Matcher::Mode::kPrefixCovering:
      name = "pc";
      break;
    case Matcher::Mode::kPrefixCoveringAccessPredicate:
      name = "pcap";
      break;
    case Matcher::Mode::kTrieDfs:
      name = "triedfs";
      break;
  }
  name += (info.param.attribute_mode == AttributeMode::kInline)
              ? "_inline"
              : "_sp";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, AttributeModeTest,
    ::testing::Values(
        AttributeParam{Matcher::Mode::kBasic, AttributeMode::kInline},
        AttributeParam{Matcher::Mode::kBasic,
                       AttributeMode::kSelectionPostponed},
        AttributeParam{Matcher::Mode::kPrefixCovering,
                       AttributeMode::kInline},
        AttributeParam{Matcher::Mode::kPrefixCovering,
                       AttributeMode::kSelectionPostponed},
        AttributeParam{Matcher::Mode::kPrefixCoveringAccessPredicate,
                       AttributeMode::kInline},
        AttributeParam{Matcher::Mode::kPrefixCoveringAccessPredicate,
                       AttributeMode::kSelectionPostponed},
        AttributeParam{Matcher::Mode::kTrieDfs, AttributeMode::kInline},
        AttributeParam{Matcher::Mode::kTrieDfs,
                       AttributeMode::kSelectionPostponed}),
    ParamName);

// --- Mode-specific structural behavior ---------------------------------------

TEST(AttributeSharingTest, InlineConstraintsShareAcrossExpressions) {
  // Two expressions with the same constrained step share one
  // predicate; a third with a different value does not.
  Matcher::Options options;
  options.attribute_mode = AttributeMode::kInline;
  Matcher m(options);
  ASSERT_TRUE(m.AddExpression("/a[@x = 1]/b").ok());
  size_t after_first = m.distinct_predicate_count();
  ASSERT_TRUE(m.AddExpression("/a[@x = 1]/c").ok());
  // Shares (p_a([x,=,1]),=,1); adds only (d(a,c),=,1).
  EXPECT_EQ(m.distinct_predicate_count(), after_first + 1);
  ASSERT_TRUE(m.AddExpression("/a[@x = 2]/b").ok());
  // New constrained absolute predicate, shares (d(a,b),=,1).
  EXPECT_EQ(m.distinct_predicate_count(), after_first + 2);
}

TEST(AttributeSharingTest, SelectionPostponedSharesStructuralPredicates) {
  // In SP mode the predicates are purely structural, so differently
  // filtered expressions share everything.
  Matcher::Options options;
  options.attribute_mode = AttributeMode::kSelectionPostponed;
  Matcher m(options);
  ASSERT_TRUE(m.AddExpression("/a[@x = 1]/b").ok());
  size_t after_first = m.distinct_predicate_count();
  ASSERT_TRUE(m.AddExpression("/a[@x = 2]/b").ok());
  ASSERT_TRUE(m.AddExpression("/a[@x = 3]/b").ok());
  EXPECT_EQ(m.distinct_predicate_count(), after_first);
  // And they are distinct subscriptions with distinct outcomes.
  xml::Document doc = xpred::testing::ParseXmlOrDie("<a x=\"2\"><b/></a>");
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{1}));
}

}  // namespace
}  // namespace xpred::core
