// Tests for the predicate index (paper §4.1): evaluation rules,
// deduplication, and the Table 1 example.

#include "core/predicate_index.h"

#include <algorithm>

#include "gtest/gtest.h"

#include "core/encoder.h"
#include "test_util.h"
#include "xml/path.h"
#include "xpath/parser.h"

namespace xpred::core {
namespace {

using xpred::testing::ParseXmlOrDie;

class PredicateIndexTest : public ::testing::Test {
 protected:
  PredicateId Insert(const Predicate& p) {
    Result<PredicateId> pid = index_.InsertOrFind(p);
    EXPECT_TRUE(pid.ok()) << pid.status();
    return pid.ok() ? *pid : kInvalidPredicate;
  }

  Predicate Absolute(const std::string& tag, PredOp op, uint32_t v) {
    Predicate p;
    p.type = PredicateType::kAbsolute;
    p.op = op;
    p.value = v;
    p.tag1 = interner_.Intern(tag);
    return p;
  }

  Predicate Relative(const std::string& t1, const std::string& t2,
                     PredOp op, uint32_t v) {
    Predicate p;
    p.type = PredicateType::kRelative;
    p.op = op;
    p.value = v;
    p.tag1 = interner_.Intern(t1);
    p.tag2 = interner_.Intern(t2);
    return p;
  }

  Predicate EndOfPath(const std::string& tag, uint32_t v) {
    Predicate p;
    p.type = PredicateType::kEndOfPath;
    p.op = PredOp::kGe;
    p.value = v;
    p.tag1 = interner_.Intern(tag);
    return p;
  }

  Predicate Length(uint32_t v) {
    Predicate p;
    p.type = PredicateType::kLength;
    p.op = PredOp::kGe;
    p.value = v;
    return p;
  }

  /// Matches the single path of \p xml and returns results for \p pid.
  std::vector<OccPair> MatchPath(const std::string& xml, PredicateId pid) {
    xml::Document doc = ParseXmlOrDie(xml);
    std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
    EXPECT_EQ(paths.size(), 1u);
    Publication pub(paths[0], interner_);
    index_.Match(pub, &results_);
    const OccList* r = results_.Find(pid);
    if (r == nullptr) return {};
    return std::vector<OccPair>(r->begin(), r->end());
  }

  Interner interner_;
  PredicateIndex index_;
  MatchResultSet results_;
};

// --- Deduplication (the overlap-sharing core idea) -------------------------

TEST_F(PredicateIndexTest, IdenticalPredicatesShareOnePid) {
  PredicateId p1 = Insert(Relative("a", "c", PredOp::kEq, 2));
  PredicateId p2 = Insert(Relative("a", "c", PredOp::kEq, 2));
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(index_.distinct_count(), 1u);
}

TEST_F(PredicateIndexTest, DistinctCoordinatesGetDistinctPids) {
  PredicateId p1 = Insert(Relative("a", "c", PredOp::kEq, 2));
  PredicateId p2 = Insert(Relative("a", "c", PredOp::kEq, 3));
  PredicateId p3 = Insert(Relative("a", "c", PredOp::kGe, 2));
  PredicateId p4 = Insert(Relative("c", "a", PredOp::kEq, 2));
  PredicateId p5 = Insert(Absolute("a", PredOp::kEq, 2));
  EXPECT_EQ(index_.distinct_count(), 5u);
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_NE(p1, p4);
  EXPECT_NE(p1, p5);
}

TEST_F(PredicateIndexTest, FigureOneExample) {
  // Figure 1: /a/*/c and */a/*/c/*/*/* share the predicate
  // (d(p_a, p_c), =, 2), stored once.
  Interner shared;
  auto enc1 = EncodeExpression(*xpath::ParseXPath("/a/*/c"),
                               AttributeMode::kInline, &shared);
  auto enc2 = EncodeExpression(*xpath::ParseXPath("*/a/*/c/*/*/*"),
                               AttributeMode::kInline, &shared);
  ASSERT_TRUE(enc1.ok());
  ASSERT_TRUE(enc2.ok());
  PredicateIndex index;
  std::vector<PredicateId> pids1;
  std::vector<PredicateId> pids2;
  for (const Predicate& p : enc1->predicates) {
    pids1.push_back(*index.InsertOrFind(p));
  }
  for (const Predicate& p : enc2->predicates) {
    pids2.push_back(*index.InsertOrFind(p));
  }
  // enc1: (p_a,=,1), (d(a,c),=,2). enc2: (p_a,>=,2), (d(a,c),=,2),
  // (p_c-|,>=,3). The relative predicate is shared.
  EXPECT_EQ(pids1[1], pids2[1]);
  EXPECT_EQ(index.distinct_count(), 4u);
}

TEST_F(PredicateIndexTest, ValueOutsideRangeRejected) {
  PredicateIndex small(PredicateIndex::Options{4});
  Predicate p = Absolute("a", PredOp::kEq, 5);
  Result<PredicateId> pid = small.InsertOrFind(p);
  EXPECT_FALSE(pid.ok());
  EXPECT_EQ(pid.status().code(), StatusCode::kCapacityExceeded);
  EXPECT_FALSE(small.InsertOrFind(Length(0)).ok());
}

// --- Evaluation rules (§4.1.1) ----------------------------------------------

TEST_F(PredicateIndexTest, AbsoluteEqualityRule) {
  PredicateId pid = Insert(Absolute("b", PredOp::kEq, 2));
  EXPECT_EQ(MatchPath("<a><b/></a>", pid),
            (std::vector<OccPair>{{1, 1}}));
  EXPECT_TRUE(MatchPath("<b><a/></b>", pid).empty());   // b at 1, not 2.
  EXPECT_TRUE(MatchPath("<a><c><b/></c></a>", pid).empty());  // b at 3.
}

TEST_F(PredicateIndexTest, AbsoluteGreaterEqualRule) {
  PredicateId pid = Insert(Absolute("b", PredOp::kGe, 2));
  EXPECT_TRUE(MatchPath("<b><a/></b>", pid).empty());  // 1 >= 2 fails.
  EXPECT_EQ(MatchPath("<a><b/></a>", pid), (std::vector<OccPair>{{1, 1}}));
  EXPECT_EQ(MatchPath("<a><c><b/></c></a>", pid),
            (std::vector<OccPair>{{1, 1}}));
}

TEST_F(PredicateIndexTest, RelativeEqualityRule) {
  // The §4.1.1 example: given tuples (a, 2) and (b, 6),
  // (d(p_a, p_b), =, 2) is not matched since 6 - 2 = 2 does not hold.
  PredicateId pid = Insert(Relative("a", "b", PredOp::kEq, 2));
  EXPECT_TRUE(
      MatchPath("<r><a><x><y><z><b/></z></y></x></a></r>", pid).empty());
  EXPECT_EQ(MatchPath("<r><a><x><b/></x></a></r>", pid),
            (std::vector<OccPair>{{1, 1}}));
}

TEST_F(PredicateIndexTest, RelativeOrderMatters) {
  // (d(p_a, p_b), op, v) requires a BEFORE b in the path.
  PredicateId pid = Insert(Relative("a", "b", PredOp::kGe, 1));
  EXPECT_TRUE(MatchPath("<b><a/></b>", pid).empty());
  EXPECT_FALSE(MatchPath("<a><b/></a>", pid).empty());
}

TEST_F(PredicateIndexTest, EndOfPathRule) {
  PredicateId pid = Insert(EndOfPath("a", 2));
  // l - pos(a) >= 2.
  EXPECT_TRUE(MatchPath("<a><b/></a>", pid).empty());          // 2-1=1.
  EXPECT_EQ(MatchPath("<a><b><c/></b></a>", pid),              // 3-1=2.
            (std::vector<OccPair>{{1, 1}}));
  EXPECT_TRUE(MatchPath("<x><y><a/></y></x>", pid).empty());   // 3-3=0.
}

TEST_F(PredicateIndexTest, LengthRule) {
  PredicateId pid = Insert(Length(3));
  EXPECT_TRUE(MatchPath("<a><b/></a>", pid).empty());
  EXPECT_EQ(MatchPath("<a><b><c/></b></a>", pid),
            (std::vector<OccPair>{{1, 1}}));
  EXPECT_EQ(MatchPath("<a><b><c><d/></c></b></a>", pid),
            (std::vector<OccPair>{{1, 1}}));
}

// --- Table 1 -----------------------------------------------------------------

TEST_F(PredicateIndexTest, PaperTable1) {
  // Path (a, b, c, a, b, c); expressions a//b/c and c//b//a.
  PredicateId ab_ge1 = Insert(Relative("a", "b", PredOp::kGe, 1));
  PredicateId bc_eq1 = Insert(Relative("b", "c", PredOp::kEq, 1));
  PredicateId cb_ge1 = Insert(Relative("c", "b", PredOp::kGe, 1));
  PredicateId ba_ge1 = Insert(Relative("b", "a", PredOp::kGe, 1));

  xml::Document doc =
      ParseXmlOrDie("<a><b><c><a><b><c/></b></a></c></b></a>");
  std::vector<xml::DocumentPath> paths = xml::ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  Publication pub(paths[0], interner_);
  index_.Match(pub, &results_);

  auto sorted = [&](PredicateId pid) {
    std::vector<OccPair> r;
    if (const auto* found = results_.Find(pid)) {
      r.assign(found->begin(), found->end());
    }
    std::sort(r.begin(), r.end(), [](OccPair x, OccPair y) {
      return std::tie(x.first, x.second) < std::tie(y.first, y.second);
    });
    return r;
  };

  // (d(p_a, p_b), >=, 1): (a1,b1), (a1,b2), (a2,b2).
  EXPECT_EQ(sorted(ab_ge1),
            (std::vector<OccPair>{{1, 1}, {1, 2}, {2, 2}}));
  // (d(p_b, p_c), =, 1): (b1,c1), (b2,c2).
  EXPECT_EQ(sorted(bc_eq1), (std::vector<OccPair>{{1, 1}, {2, 2}}));
  // (d(p_c, p_b), >=, 1): (c1,b2).
  EXPECT_EQ(sorted(cb_ge1), (std::vector<OccPair>{{1, 2}}));
  // (d(p_b, p_a), >=, 1): (b1,a2).
  EXPECT_EQ(sorted(ba_ge1), (std::vector<OccPair>{{1, 2}}));
}

// --- Inline attribute constraints (§5) ---------------------------------------

TEST_F(PredicateIndexTest, AttributeConstraintsSplitSlots) {
  Predicate plain = Absolute("a", PredOp::kEq, 1);
  Predicate constrained = plain;
  AttributeConstraint c;
  c.name = "x";
  c.has_comparison = true;
  c.op = xpath::CompareOp::kEq;
  c.value = xpath::Literal::Number(3);
  constrained.attrs1.push_back(c);

  PredicateId p1 = Insert(plain);
  PredicateId p2 = Insert(constrained);
  PredicateId p3 = Insert(constrained);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(p2, p3);
  EXPECT_EQ(index_.distinct_count(), 2u);

  // Only the matching element satisfies the constrained pid.
  EXPECT_FALSE(MatchPath("<a x=\"3\"><b/></a>", p2).empty());
  EXPECT_TRUE(MatchPath("<a x=\"4\"><b/></a>", p2).empty());
  EXPECT_TRUE(MatchPath("<a><b/></a>", p2).empty());  // Attribute absent.
  // The plain pid matches regardless.
  EXPECT_FALSE(MatchPath("<a x=\"4\"><b/></a>", p1).empty());
}

TEST_F(PredicateIndexTest, PaperSection5Example) {
  // Given tuple (a([x, 6]), 5), the predicate (a([x, >=, 3]), >=, 2)
  // is matched since 6 >= 3 and 5 >= 2.
  Predicate p = Absolute("a", PredOp::kGe, 2);
  AttributeConstraint c;
  c.name = "x";
  c.has_comparison = true;
  c.op = xpath::CompareOp::kGe;
  c.value = xpath::Literal::Number(3);
  p.attrs1.push_back(c);
  PredicateId pid = Insert(p);
  EXPECT_FALSE(
      MatchPath("<r><q><s><t><a x=\"6\"/></t></s></q></r>", pid).empty());
  EXPECT_TRUE(
      MatchPath("<r><q><s><t><a x=\"2\"/></t></s></q></r>", pid).empty());
}

// --- MatchResultSet epochs ----------------------------------------------------

TEST_F(PredicateIndexTest, ResultsResetBetweenPaths) {
  PredicateId pid = Insert(Absolute("a", PredOp::kEq, 1));
  EXPECT_FALSE(MatchPath("<a><b/></a>", pid).empty());
  // A path without 'a' at position 1 must not leak earlier results.
  EXPECT_TRUE(MatchPath("<x><a/></x>", pid).empty());
}

}  // namespace
}  // namespace xpred::core
