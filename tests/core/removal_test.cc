// Tests for dynamic subscription removal (an extension; the paper
// names dynamic maintenance as an advantage over compiled automata).

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;

class RemovalTest : public ::testing::TestWithParam<Matcher::Mode> {
 protected:
  Matcher MakeMatcher() {
    Matcher::Options options;
    options.mode = GetParam();
    return Matcher(options);
  }
};

TEST_P(RemovalTest, RemovedSubscriptionStopsMatching) {
  Matcher m = MakeMatcher();
  auto a = m.AddExpression("/a/b");
  auto b = m.AddExpression("/a/c");
  ASSERT_TRUE(a.ok() && b.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*a, *b}));

  ASSERT_TRUE(m.RemoveSubscription(*a).ok());
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*b}));
}

TEST_P(RemovalTest, DuplicatesSurviveUntilLastRemoval) {
  Matcher m = MakeMatcher();
  auto s1 = m.AddExpression("/a/b");
  auto s2 = m.AddExpression("/a/b");
  ASSERT_TRUE(s1.ok() && s2.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");

  ASSERT_TRUE(m.RemoveSubscription(*s1).ok());
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*s2}));
  ASSERT_TRUE(m.RemoveSubscription(*s2).ok());
  EXPECT_TRUE(FilterSorted(&m, doc).empty());
}

TEST_P(RemovalTest, ResubscriptionReactivates) {
  Matcher m = MakeMatcher();
  auto s1 = m.AddExpression("/a/b");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(m.RemoveSubscription(*s1).ok());
  auto s2 = m.AddExpression("/a/b");
  ASSERT_TRUE(s2.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*s2}));
}

TEST_P(RemovalTest, RemovalErrors) {
  Matcher m = MakeMatcher();
  auto s = m.AddExpression("/a");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(m.RemoveSubscription(999).code(), StatusCode::kNotFound);
  ASSERT_TRUE(m.RemoveSubscription(*s).ok());
  EXPECT_EQ(m.RemoveSubscription(*s).code(), StatusCode::kNotFound);
}

TEST_P(RemovalTest, CoveringUnaffectedByInactiveExpressions) {
  // An inactive long expression must not mark covered prefixes, and an
  // inactive prefix must not be reported via covering propagation.
  Matcher m = MakeMatcher();
  auto short_sub = m.AddExpression("/a/b");
  auto long_sub = m.AddExpression("/a/b/c");
  ASSERT_TRUE(short_sub.ok() && long_sub.ok());
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");

  ASSERT_TRUE(m.RemoveSubscription(*short_sub).ok());
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*long_sub}));

  ASSERT_TRUE(m.RemoveSubscription(*long_sub).ok());
  EXPECT_TRUE(FilterSorted(&m, doc).empty());
}

TEST_P(RemovalTest, NestedGroupRemoval) {
  Matcher m = MakeMatcher();
  auto nested = m.AddExpression("/a[b]/c");
  auto plain = m.AddExpression("/a/c");
  ASSERT_TRUE(nested.ok() && plain.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  EXPECT_EQ(FilterSorted(&m, doc),
            (std::vector<ExprId>{*nested, *plain}));

  ASSERT_TRUE(m.RemoveSubscription(*nested).ok());
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*plain}));

  // Re-subscribe the nested expression.
  auto again = m.AddExpression("/a[b]/c");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(FilterSorted(&m, doc),
            (std::vector<ExprId>{*plain, *again}));
}

TEST_P(RemovalTest, SharedPredicatesSurviveRemoval) {
  // Removing one expression must not disturb others sharing its
  // predicates.
  Matcher m = MakeMatcher();
  auto e1 = m.AddExpression("/a/b/c");
  auto e2 = m.AddExpression("/a/b/d");
  auto e3 = m.AddExpression("a/b");
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  ASSERT_TRUE(m.RemoveSubscription(*e1).ok());

  xml::Document doc = ParseXmlOrDie("<a><b><c/><d/></b></a>");
  EXPECT_EQ(FilterSorted(&m, doc), (std::vector<ExprId>{*e2, *e3}));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RemovalTest,
    ::testing::Values(Matcher::Mode::kBasic, Matcher::Mode::kPrefixCovering,
                      Matcher::Mode::kPrefixCoveringAccessPredicate,
                      Matcher::Mode::kTrieDfs));

}  // namespace
}  // namespace xpred::core
