// End-to-end tests for the predicate-based matcher: all modes against
// hand-constructed documents and the brute-force oracle.

#include "core/matcher.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "test_util.h"
#include "xpath/evaluator.h"

namespace xpred::core {
namespace {

using xpred::testing::EngineMatches;
using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

Matcher::Options ModeOptions(Matcher::Mode mode) {
  Matcher::Options options;
  options.mode = mode;
  return options;
}

/// Parameterized over the four expression-matching organizations; each
/// must produce identical results.
class MatcherModeTest : public ::testing::TestWithParam<Matcher::Mode> {
 protected:
  Matcher MakeMatcher() { return Matcher(ModeOptions(GetParam())); }
};

TEST_P(MatcherModeTest, SimpleAbsolutePaths) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b><d/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/b", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/b/c", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/d", doc));
  EXPECT_FALSE(EngineMatches(&m, "/b", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/c", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/b/c/d", doc));
}

TEST_P(MatcherModeTest, RelativePathsMatchAnywhere) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<r><x><b><c/></b></x></r>");
  EXPECT_TRUE(EngineMatches(&m, "b/c", doc));
  EXPECT_TRUE(EngineMatches(&m, "c", doc));
  EXPECT_TRUE(EngineMatches(&m, "x//c", doc));
  EXPECT_FALSE(EngineMatches(&m, "c/b", doc));
  EXPECT_FALSE(EngineMatches(&m, "r/c", doc));
}

TEST_P(MatcherModeTest, WildcardsAndDescendants) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(
      "<a><x><b/></x><y><z><b/></z></y></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a/*/b", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a//b", doc));
  EXPECT_TRUE(EngineMatches(&m, "/a/*/*/b", doc));
  EXPECT_TRUE(EngineMatches(&m, "/*/*", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/b", doc));
  EXPECT_FALSE(EngineMatches(&m, "/*/*/*/*/*", doc));
  EXPECT_TRUE(EngineMatches(&m, "*/*/*/*", doc));
}

TEST_P(MatcherModeTest, OccurrenceDisambiguation) {
  // The paper's Example 2: path (a,b,c,a,b,c) matches a//b/c but NOT
  // c//b//a.
  Matcher m = MakeMatcher();
  xml::Document doc =
      ParseXmlOrDie("<a><b><c><a><b><c/></b></a></c></b></a>");
  EXPECT_TRUE(EngineMatches(&m, "a//b/c", doc));
  EXPECT_FALSE(EngineMatches(&m, "c//b//a", doc));
}

TEST_P(MatcherModeTest, OrderSensitiveEncodings) {
  // a/c/*/a//c vs a//c/*/a/c (the paper's order-sensitivity example):
  // construct a path matching the first but not the second.
  Matcher m = MakeMatcher();
  // Path a,c,x,a,y,c: a/c (=1) then c..a (=2) then a..c (>=1: distance 2).
  xml::Document doc =
      ParseXmlOrDie("<a><c><x><a><y><c/></y></a></x></c></a>");
  EXPECT_TRUE(EngineMatches(&m, "a/c/*/a//c", doc));
  EXPECT_FALSE(EngineMatches(&m, "a//c/*/a/c", doc));
}

TEST_P(MatcherModeTest, MultiPathDocuments) {
  // Expressions matched by different paths of the same document.
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(
      "<root><left><l1/><l2/></left><right><r1><deep/></r1></right></root>");
  std::vector<ExprId> ids = xpred::testing::AddAll(
      &m, {"/root/left/l1", "/root/right/r1/deep", "/root/left/deep",
           "deep", "l2", "/root/*/r1"});
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{0, 1, 3, 4, 5}));
}

TEST_P(MatcherModeTest, DuplicateSubscriptionsAllReported) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  auto id1 = m.AddExpression("/a/b");
  auto id2 = m.AddExpression("/a/b");
  auto id3 = m.AddExpression("/a/c");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(id3.ok());
  EXPECT_EQ(m.subscription_count(), 3u);
  EXPECT_EQ(m.distinct_expression_count(), 2u);
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{*id1, *id2}));
}

TEST_P(MatcherModeTest, RepeatedFilteringIsStateless) {
  Matcher m = MakeMatcher();
  auto id = m.AddExpression("/a/b");
  ASSERT_TRUE(id.ok());
  xml::Document hit = ParseXmlOrDie("<a><b/></a>");
  xml::Document miss = ParseXmlOrDie("<a><c/></a>");
  EXPECT_EQ(FilterSorted(&m, hit).size(), 1u);
  EXPECT_EQ(FilterSorted(&m, miss).size(), 0u);
  EXPECT_EQ(FilterSorted(&m, hit).size(), 1u);
  EXPECT_EQ(FilterSorted(&m, hit).size(), 1u);
}

TEST_P(MatcherModeTest, SameNameDifferentTagsInPath) {
  // /a/b/a/b type repetition exercises occurrence bookkeeping.
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a><b><a><b/></a></b></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a/b/a/b", doc));
  EXPECT_TRUE(EngineMatches(&m, "a/b/a", doc));
  EXPECT_TRUE(EngineMatches(&m, "a//a", doc));
  EXPECT_TRUE(EngineMatches(&m, "b/a/b", doc));
  EXPECT_FALSE(EngineMatches(&m, "/a/a", doc));
  EXPECT_FALSE(EngineMatches(&m, "b/b", doc));
}

TEST_P(MatcherModeTest, DeepDocumentLongExpression) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(
      "<e1><e2><e3><e4><e5><e6><e7><e8/></e7></e6></e5></e4></e3></e2></e1>");
  EXPECT_TRUE(EngineMatches(&m, "/e1/e2/e3/e4/e5/e6/e7/e8", doc));
  EXPECT_TRUE(EngineMatches(&m, "/e1//e4//e8", doc));
  EXPECT_TRUE(EngineMatches(&m, "e3/*/*/e6", doc));
  EXPECT_FALSE(EngineMatches(&m, "/e1/e3", doc));
}

TEST_P(MatcherModeTest, AgainstOracleOnFixedCorpus) {
  // A compact fixed corpus of documents and expressions, exhaustively
  // cross-checked against the reference evaluator.
  const std::vector<std::string> docs = {
      "<a><b><c/></b></a>",
      "<a><b/><b><c/></b></a>",
      "<a><a><b><a/></b></a></a>",
      "<x><y><z/></y><y><w><z/></w></y></x>",
      "<a><b><c><d><e/></d></c></b></a>",
      "<m/>",
      "<a><c><a><c><a><c/></a></c></a></c></a>",
  };
  const std::vector<std::string> exprs = {
      "/a",        "/a/b",      "/a/b/c",  "a",       "b/c",     "c",
      "//b",       "/a//c",     "a//a",    "/*/b",    "/*/*",    "*",
      "*/*/*",     "/a/*/c",    "b//c",    "/x/y/z",  "x//z",    "y/w",
      "/a/b/*",    "a/*/*",     "//*",     "/m",      "m",       "z",
      "a/c/a",     "a//c//a",   "/a/c/*/a", "c/a/c",  "/a/a",    "d/e",
  };
  Matcher m = MakeMatcher();
  std::vector<ExprId> ids = xpred::testing::AddAll(&m, exprs);
  for (const std::string& doc_text : docs) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    std::vector<ExprId> matched = FilterSorted(&m, doc);
    for (size_t i = 0; i < exprs.size(); ++i) {
      bool expected =
          xpath::Evaluator::Matches(ParseXPathOrDie(exprs[i]), doc);
      bool actual = std::binary_search(matched.begin(), matched.end(), ids[i]);
      EXPECT_EQ(actual, expected)
          << "doc=" << doc_text << " expr=" << exprs[i] << " mode "
          << static_cast<int>(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MatcherModeTest,
    ::testing::Values(Matcher::Mode::kBasic, Matcher::Mode::kPrefixCovering,
                      Matcher::Mode::kPrefixCoveringAccessPredicate,
                      Matcher::Mode::kTrieDfs),
    [](const ::testing::TestParamInfo<Matcher::Mode>& info) {
      switch (info.param) {
        case Matcher::Mode::kBasic:
          return "basic";
        case Matcher::Mode::kPrefixCovering:
          return "pc";
        case Matcher::Mode::kPrefixCoveringAccessPredicate:
          return "pcap";
        case Matcher::Mode::kTrieDfs:
          return "triedfs";
      }
      return "unknown";
    });

// --- Non-parameterized behaviors ---------------------------------------------

TEST(MatcherTest, InvalidExpressionRejected) {
  Matcher m;
  EXPECT_FALSE(m.AddExpression("").ok());
  EXPECT_FALSE(m.AddExpression("/a[").ok());
  EXPECT_FALSE(m.AddExpression("/a/following::b").ok());
  EXPECT_FALSE(m.AddExpression("//").ok());
  // Rejected expressions must not corrupt the engine.
  ASSERT_TRUE(m.AddExpression("/a").ok());
  xml::Document doc = xpred::testing::ParseXmlOrDie("<a/>");
  EXPECT_EQ(FilterSorted(&m, doc).size(), 1u);
}

TEST(MatcherTest, ExpressionLongerThanLimitRejected) {
  Matcher::Options options;
  options.max_expression_length = 4;
  Matcher m(options);
  EXPECT_TRUE(m.AddExpression("/a/b/c/d").ok());
  EXPECT_FALSE(m.AddExpression("/a/b/c/d/e").ok());
  EXPECT_FALSE(m.AddExpression("/*/*/*/*/*").ok());
}

TEST(MatcherTest, NullOutputRejected) {
  Matcher m;
  xml::Document doc = xpred::testing::ParseXmlOrDie("<a/>");
  EXPECT_FALSE(m.FilterDocument(doc, nullptr).ok());
}

TEST(MatcherTest, EmptyEngineMatchesNothing) {
  Matcher m;
  xml::Document doc = xpred::testing::ParseXmlOrDie("<a><b/></a>");
  EXPECT_TRUE(FilterSorted(&m, doc).empty());
}

TEST(MatcherTest, StatsAccumulate) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a/b").ok());
  xml::Document doc = xpred::testing::ParseXmlOrDie("<a><b/><c/></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(m.FilterDocument(doc, &matched).ok());
  EXPECT_EQ(m.stats().documents, 1u);
  EXPECT_EQ(m.stats().paths, 2u);
  EXPECT_GT(m.stats().occurrence_runs, 0u);
  m.ResetStats();
  EXPECT_EQ(m.stats().documents, 0u);
}

TEST(MatcherTest, DistinctPredicateSharing) {
  // 4 expressions sharing most predicates: far fewer distinct
  // predicates than predicate slots.
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a/b/c").ok());
  ASSERT_TRUE(m.AddExpression("/a/b/d").ok());
  ASSERT_TRUE(m.AddExpression("/a/b").ok());
  ASSERT_TRUE(m.AddExpression("a/b").ok());
  // Predicates: (p_a,=,1), (d(a,b),=,1), (d(b,c),=,1), (d(b,d),=,1),
  // (p_a,>=... none) — a/b is (d(a,b),=,1) only. Total distinct: 4.
  EXPECT_EQ(m.distinct_predicate_count(), 4u);
}

TEST(MatcherTest, FilterXmlParsesAndMatches) {
  Matcher m;
  auto id = m.AddExpression("/a/b");
  ASSERT_TRUE(id.ok());
  std::vector<ExprId> matched;
  ASSERT_TRUE(m.FilterXml("<a><b/></a>", &matched).ok());
  EXPECT_EQ(matched.size(), 1u);
  matched.clear();
  EXPECT_FALSE(m.FilterXml("<a><b/>", &matched).ok());
}

}  // namespace
}  // namespace xpred::core
