// IngestGovernor behavior: poison documents are quarantined with their
// cause while healthy ones keep flowing, transient failures are
// retried with exponential backoff, and the circuit breaker follows
// the closed -> open -> half-open -> closed lifecycle, all mirrored in
// the engine's metrics registry.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/status.h"
#include "core/governor.h"
#include "core/matcher.h"
#include "obs/metrics.h"

namespace xpred::core {
namespace {

std::string NestedXml(size_t depth) {
  std::string xml;
  for (size_t i = 0; i < depth; ++i) xml += "<a>";
  xml += "<b/>";
  for (size_t i = 0; i < depth; ++i) xml += "</a>";
  return xml;
}

IngestGovernor::Options TestOptions() {
  IngestGovernor::Options options;
  options.limits = ResourceLimits::Unlimited();
  options.limits.max_element_depth = 4;
  options.sleep_ms = [](uint32_t) {};  // No real delays in tests.
  return options;
}

TEST(GovernorTest, MixedPoisonAndHealthyStreamKeepsFlowing) {
  Matcher matcher;
  Result<ExprId> id = matcher.AddExpression("/a/b");
  ASSERT_TRUE(id.ok());
  IngestGovernor::Options options = TestOptions();
  options.breaker_threshold = 0;  // Isolate quarantine behavior.
  IngestGovernor governor(&matcher, options);

  const std::string healthy = "<a><b/></a>";
  const std::string poison = NestedXml(6);
  size_t healthy_matches = 0;
  for (int i = 0; i < 10; ++i) {
    std::vector<ExprId> matched;
    IngestGovernor::DocOutcome outcome;
    const std::string& doc = (i % 2 == 0) ? poison : healthy;
    ASSERT_TRUE(governor.FilterNext(doc, &matched, &outcome).ok());
    if (i % 2 == 0) {
      EXPECT_TRUE(outcome.quarantined);
      EXPECT_EQ(outcome.status.code(), StatusCode::kResourceExhausted);
      EXPECT_TRUE(matched.empty());
    } else {
      EXPECT_TRUE(outcome.status.ok());
      ASSERT_EQ(matched.size(), 1u);
      EXPECT_EQ(matched[0], *id);
      ++healthy_matches;
    }
  }
  EXPECT_EQ(healthy_matches, 5u);
  EXPECT_EQ(governor.docs_seen(), 10u);
  EXPECT_EQ(governor.docs_ok(), 5u);
  ASSERT_EQ(governor.quarantine().size(), 5u);
  EXPECT_EQ(governor.quarantine()[0].doc_index, 0u);
  EXPECT_EQ(governor.quarantine()[0].cause.code(),
            StatusCode::kResourceExhausted);
}

TEST(GovernorTest, PermanentFailuresAreNotRetried) {
  Matcher matcher;
  IngestGovernor::Options options = TestOptions();
  uint32_t sleeps = 0;
  options.sleep_ms = [&sleeps](uint32_t) { ++sleeps; };
  IngestGovernor governor(&matcher, options);

  std::vector<ExprId> matched;
  IngestGovernor::DocOutcome outcome;
  ASSERT_TRUE(governor.FilterNext(NestedXml(6), &matched, &outcome).ok());
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(sleeps, 0u);
}

TEST(GovernorTest, TransientFailuresRetryWithExponentialBackoff) {
  Matcher matcher;
  ASSERT_TRUE(matcher.AddExpression("/a").ok());
  IngestGovernor::Options options = TestOptions();
  options.max_retries = 3;
  options.backoff_base_ms = 10;
  std::vector<uint32_t> sleeps;
  options.sleep_ms = [&sleeps](uint32_t ms) { sleeps.push_back(ms); };
  IngestGovernor governor(&matcher, options);

  // Simulated deadline expiry on the first two attempts only (visits 0
  // and 1 of the shared governed-entry site); the third succeeds.
  FaultInjector injector(5);
  for (uint64_t offset : {0ull, 1ull}) {
    FaultInjector::Rule rule;
    rule.site = std::string(faultsite::kEngineBeginDocument);
    rule.kind = FaultInjector::FaultKind::kDeadlineExpiry;
    rule.offset = offset;
    rule.period = 1u << 20;
    injector.AddRule(rule);
  }
  FaultInjector::Install(&injector);
  std::vector<ExprId> matched;
  IngestGovernor::DocOutcome outcome;
  Status st = governor.FilterNext("<a/>", &matched, &outcome);
  FaultInjector::Install(nullptr);

  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_EQ(sleeps, (std::vector<uint32_t>{10, 20}));
  EXPECT_EQ(matched.size(), 1u);
  EXPECT_TRUE(governor.quarantine().empty());
}

TEST(GovernorTest, ExhaustedRetriesQuarantineWithTheTransientCause) {
  Matcher matcher;
  IngestGovernor::Options options = TestOptions();
  options.max_retries = 2;
  IngestGovernor governor(&matcher, options);

  FaultInjector injector(5);
  FaultInjector::Rule rule;
  rule.site = std::string(faultsite::kEngineBeginDocument);
  rule.kind = FaultInjector::FaultKind::kDeadlineExpiry;
  injector.AddRule(rule);  // period=1: every attempt fails.
  FaultInjector::Install(&injector);
  std::vector<ExprId> matched;
  IngestGovernor::DocOutcome outcome;
  Status st = governor.FilterNext("<a/>", &matched, &outcome);
  FaultInjector::Install(nullptr);

  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(governor.quarantine().size(), 1u);
  EXPECT_EQ(governor.quarantine()[0].retries, 2u);
}

TEST(GovernorTest, FailFastAbortsOnTheFirstPoisonDocument) {
  Matcher matcher;
  IngestGovernor::Options options = TestOptions();
  options.fail_fast = true;
  IngestGovernor governor(&matcher, options);

  std::vector<ExprId> matched;
  IngestGovernor::DocOutcome outcome;
  Status st = governor.FilterNext(NestedXml(6), &matched, &outcome);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_TRUE(governor.quarantine().empty());
}

TEST(GovernorTest, BreakerLifecycleClosedOpenHalfOpenClosed) {
  Matcher matcher;
  ASSERT_TRUE(matcher.AddExpression("/a").ok());
  IngestGovernor::Options options = TestOptions();
  options.breaker_threshold = 3;
  options.breaker_cooldown_docs = 2;
  IngestGovernor governor(&matcher, options);
  const std::string poison = NestedXml(6);

  // Three consecutive failures trip the breaker.
  for (int i = 0; i < 3; ++i) {
    std::vector<ExprId> matched;
    ASSERT_TRUE(governor.FilterNext(poison, &matched, nullptr).ok());
    if (i < 2) {
      EXPECT_EQ(governor.breaker_state(),
                IngestGovernor::BreakerState::kClosed);
    }
  }
  EXPECT_EQ(governor.breaker_state(), IngestGovernor::BreakerState::kOpen);

  // While open, even healthy documents are shed unexamined.
  for (int i = 0; i < 2; ++i) {
    std::vector<ExprId> matched;
    IngestGovernor::DocOutcome outcome;
    ASSERT_TRUE(governor.FilterNext("<a/>", &matched, &outcome).ok());
    EXPECT_EQ(outcome.status.code(), StatusCode::kRejected);
    EXPECT_FALSE(outcome.quarantined);
    EXPECT_TRUE(matched.empty());
  }
  EXPECT_EQ(governor.docs_shed(), 2u);

  // Cooldown spent: the next document is a half-open probe; success
  // closes the breaker and normal filtering resumes.
  std::vector<ExprId> matched;
  IngestGovernor::DocOutcome outcome;
  ASSERT_TRUE(governor.FilterNext("<a/>", &matched, &outcome).ok());
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(matched.size(), 1u);
  EXPECT_EQ(governor.breaker_state(), IngestGovernor::BreakerState::kClosed);
}

TEST(GovernorTest, FailedHalfOpenProbeReopensTheBreaker) {
  Matcher matcher;
  IngestGovernor::Options options = TestOptions();
  options.breaker_threshold = 2;
  options.breaker_cooldown_docs = 1;
  IngestGovernor governor(&matcher, options);
  const std::string poison = NestedXml(6);

  std::vector<ExprId> matched;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(governor.FilterNext(poison, &matched, nullptr).ok());
  }
  EXPECT_EQ(governor.breaker_state(), IngestGovernor::BreakerState::kOpen);
  ASSERT_TRUE(governor.FilterNext("<a/>", &matched, nullptr).ok());  // Shed.

  // Probe fails: back to open with a fresh cooldown.
  ASSERT_TRUE(governor.FilterNext(poison, &matched, nullptr).ok());
  EXPECT_EQ(governor.breaker_state(), IngestGovernor::BreakerState::kOpen);
  IngestGovernor::DocOutcome outcome;
  ASSERT_TRUE(governor.FilterNext("<a/>", &matched, &outcome).ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kRejected);
}

TEST(GovernorTest, OutcomesAreCountedInTheMetricsRegistry) {
  Matcher matcher;
  ASSERT_TRUE(matcher.AddExpression("/a").ok());
  obs::MetricsRegistry registry;
  matcher.BindMetrics(&registry);
  IngestGovernor::Options options = TestOptions();
  options.breaker_threshold = 2;
  options.breaker_cooldown_docs = 1;
  IngestGovernor governor(&matcher, options);
  const std::string poison = NestedXml(6);

  std::vector<ExprId> matched;
  ASSERT_TRUE(governor.FilterNext("<a/>", &matched, nullptr).ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(governor.FilterNext(poison, &matched, nullptr).ok());
  }
  // Breaker now open; one shed document.
  ASSERT_TRUE(governor.FilterNext("<a/>", &matched, nullptr).ok());

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  auto counter_of = [&snapshot](std::string_view name) -> uint64_t {
    for (const auto& [key, value] : snapshot.counters) {
      if (key.rfind(name, 0) == 0) return value;
    }
    ADD_FAILURE() << "counter not found: " << name;
    return 0;
  };
  EXPECT_EQ(counter_of("xpred_docs_rejected_total"), 2u);
  EXPECT_EQ(counter_of("xpred_docs_quarantined_total"), 2u);
  EXPECT_EQ(counter_of("xpred_docs_shed_total"), 1u);
  bool found_breaker = false;
  for (const auto& [key, value] : snapshot.gauges) {
    if (key.rfind("xpred_breaker_state", 0) == 0) {
      EXPECT_EQ(value, 1);  // Open.
      found_breaker = true;
    }
  }
  EXPECT_TRUE(found_breaker);
}

}  // namespace
}  // namespace xpred::core
