// Tests for the occurrence determination algorithm (paper §4.2.1,
// Algorithm 1, Example 2).

#include "core/occurrence.h"

#include <set>

#include "gtest/gtest.h"

namespace xpred::core {
namespace {

using Results = std::vector<OccList>;

bool Determine(const Results& results) {
  std::vector<const OccList*> views;
  views.reserve(results.size());
  for (const auto& r : results) views.push_back(&r);
  return OccurrenceDeterminer::Determine(views);
}

std::set<std::vector<OccPair>> Enumerate(const Results& results,
                                         size_t budget = 100000) {
  std::vector<const OccList*> views;
  for (const auto& r : results) views.push_back(&r);
  std::set<std::vector<OccPair>> chains;
  OccurrenceDeterminer::EnumerateChains(
      views, budget, [&](std::span<const OccPair> chain) {
        chains.emplace(chain.begin(), chain.end());
      });
  return chains;
}

TEST(OccurrenceTest, PaperExample2MatchingExpression) {
  // a//b/c over (a,b,c,a,b,c): R1 = {(1,1),(1,2),(2,2)},
  // R2 = {(1,1),(2,2)}. The combination (1,1),(1,1) (boldface in
  // Table 1) is a true match.
  Results r = {{{1, 1}, {1, 2}, {2, 2}}, {{1, 1}, {2, 2}}};
  EXPECT_TRUE(Determine(r));
}

TEST(OccurrenceTest, PaperExample2NonMatchingExpression) {
  // c//b//a over the same path: R1 = {(1,2)}, R2 = {(1,2)}.
  // (1,2) -> requires next first = 2, but R2 only offers first = 1:
  // no match.
  Results r = {{{1, 2}}, {{1, 2}}};
  EXPECT_FALSE(Determine(r));
}

TEST(OccurrenceTest, EmptyResultListMeansNoMatch) {
  EXPECT_FALSE(Determine({{{1, 1}}, {}}));
  EXPECT_FALSE(Determine({{}}));
}

TEST(OccurrenceTest, NullEntryMeansNoMatch) {
  OccList r1 = {{1, 1}};
  std::vector<const OccList*> views = {&r1, nullptr};
  EXPECT_FALSE(OccurrenceDeterminer::Determine(views));
}

TEST(OccurrenceTest, SinglePredicateAnyPairMatches) {
  EXPECT_TRUE(Determine({{{3, 3}}}));
  EXPECT_TRUE(Determine({{{1, 2}, {5, 7}}}));
}

TEST(OccurrenceTest, ChainingConstraintEnforced) {
  // (1,1) then (2,3): discontinuous, no match.
  EXPECT_FALSE(Determine({{{1, 1}}, {{2, 3}}}));
  // (1,2) then (2,3): continuous.
  EXPECT_TRUE(Determine({{{1, 2}}, {{2, 3}}}));
}

TEST(OccurrenceTest, BacktrackingFindsLaterAlternative) {
  // The first choice in R1 dead-ends; backtracking must try (1,3).
  Results r = {{{1, 2}, {1, 3}}, {{3, 4}}, {{4, 1}}};
  EXPECT_TRUE(Determine(r));
}

TEST(OccurrenceTest, DeepBacktracking) {
  // Chain must thread 1->2->3->4; decoys at every level.
  Results r = {
      {{9, 9}, {1, 2}},
      {{2, 9}, {2, 3}},
      {{3, 9}, {3, 4}},
      {{9, 9}, {4, 4}},
  };
  EXPECT_TRUE(Determine(r));
}

TEST(OccurrenceTest, AllCombinationsFail) {
  Results r = {{{1, 1}, {2, 2}}, {{3, 3}, {4, 4}}};
  EXPECT_FALSE(Determine(r));
}

TEST(OccurrenceTest, DuplicatedSingleTagPairsChain) {
  // Single-tag predicates duplicate the occurrence (o, o): a chain
  // (p_a,=,1) -> (d(a,b),=,1) -> (p_b-|,>=,2) threads a's occurrence
  // then b's.
  Results r = {{{1, 1}}, {{1, 1}}, {{1, 1}}};
  EXPECT_TRUE(Determine(r));
  Results broken = {{{1, 1}}, {{2, 1}}, {{1, 1}}};
  EXPECT_FALSE(Determine(broken));
}

TEST(OccurrenceTest, EnumerateFindsAllChains) {
  Results r = {{{1, 1}, {1, 2}, {2, 2}}, {{1, 1}, {2, 2}}};
  std::set<std::vector<OccPair>> chains = Enumerate(r);
  // Valid chains: (1,1)->(1,1); (1,2)->(2,2); (2,2)->(2,2).
  EXPECT_EQ(chains.size(), 3u);
  EXPECT_TRUE(chains.count({{1, 1}, {1, 1}}));
  EXPECT_TRUE(chains.count({{1, 2}, {2, 2}}));
  EXPECT_TRUE(chains.count({{2, 2}, {2, 2}}));
}

TEST(OccurrenceTest, EnumerateRespectsBudget) {
  // 2^10 chains but a budget of 10 steps: enumeration reports
  // truncation by returning false.
  Results r;
  for (int i = 0; i < 10; ++i) {
    r.push_back({{1, 1}, {1, 1}});
  }
  std::vector<const OccList*> views;
  for (const auto& x : r) views.push_back(&x);
  size_t count = 0;
  bool complete = OccurrenceDeterminer::EnumerateChains(
      views, 10, [&](std::span<const OccPair>) { ++count; });
  EXPECT_FALSE(complete);
}

TEST(OccurrenceTest, EmptyInputHasNoMatch) {
  EXPECT_FALSE(Determine({}));
}

// Property sweep: Determine agrees with brute-force enumeration on
// small random instances.
class OccurrencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OccurrencePropertyTest, DetermineAgreesWithEnumeration) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  // Tiny deterministic LCG for instance construction.
  uint64_t state = seed * 2654435761u + 1;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state >> 33);
  };
  Results r;
  size_t n = 1 + next() % 4;
  for (size_t i = 0; i < n; ++i) {
    OccList list;
    size_t k = 1 + next() % 4;
    for (size_t j = 0; j < k; ++j) {
      list.push_back({1 + next() % 3, 1 + next() % 3});
    }
    r.push_back(std::move(list));
  }
  bool fast = Determine(r);
  bool slow = !Enumerate(r).empty();
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, OccurrencePropertyTest,
                         ::testing::Range(0, 200));

}  // namespace
}  // namespace xpred::core
