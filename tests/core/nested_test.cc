// Tests for nested path filters (paper §5, Figures 3-5): the
// decomposition and the end-to-end structural join.

#include "core/nested.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpred::core {
namespace {

using xpred::testing::EngineMatches;
using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

// --- Decomposition ------------------------------------------------------------

TEST(DecompositionTest, PaperFigure3) {
  // s : /a[*/c[d]/e]//c[d]/e decomposes into four sub-expressions:
  //   main: /a//c/e
  //   /a/*/c/e (branch 1, itself the trunk of the nested filter)
  //     /a/*/c/d (branch 3)
  //   /a//c/d (branch 2)
  Result<Decomposition> result =
      DecomposeNested(ParseXPathOrDie("/a[*/c[d]/e]//c[d]/e"));
  ASSERT_TRUE(result.ok()) << result.status();
  const Decomposition& d = *result;
  ASSERT_EQ(d.subs.size(), 4u);

  EXPECT_EQ(d.subs[0].path.ToString(), "/a//c/e");
  EXPECT_EQ(d.subs[0].branch_step, 0u);
  EXPECT_EQ(d.subs[0].parent, UINT32_MAX);

  // First filter of step 1: */c[d]/e -> trunk /a/*/c/e at branch 1.
  EXPECT_EQ(d.subs[1].path.ToString(), "/a/*/c/e");
  EXPECT_EQ(d.subs[1].branch_step, 1u);
  EXPECT_EQ(d.subs[1].parent, 0u);

  // Its own nested filter [d] on c (step 3): /a/*/c/d.
  EXPECT_EQ(d.subs[2].path.ToString(), "/a/*/c/d");
  EXPECT_EQ(d.subs[2].branch_step, 3u);
  EXPECT_EQ(d.subs[2].parent, 1u);

  // Second filter, on the trunk's c (step 2): /a//c/d.
  EXPECT_EQ(d.subs[3].path.ToString(), "/a//c/d");
  EXPECT_EQ(d.subs[3].branch_step, 2u);
  EXPECT_EQ(d.subs[3].parent, 0u);

  // Interest steps: the main needs its children's branch points (1, 2);
  // sub 1 needs its own (1) plus its child's (3).
  EXPECT_EQ(d.subs[0].interest_steps, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(d.subs[1].interest_steps, (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(d.subs[2].interest_steps, (std::vector<uint32_t>{3}));
  EXPECT_EQ(d.subs[3].interest_steps, (std::vector<uint32_t>{2}));
}

TEST(DecompositionTest, SimpleFilter) {
  Result<Decomposition> result = DecomposeNested(ParseXPathOrDie("/a[b]/c"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->subs.size(), 2u);
  EXPECT_EQ(result->subs[0].path.ToString(), "/a/c");
  EXPECT_EQ(result->subs[1].path.ToString(), "/a/b");
  EXPECT_EQ(result->subs[1].branch_step, 1u);
}

TEST(DecompositionTest, FilterWithDescendantPath) {
  Result<Decomposition> result =
      DecomposeNested(ParseXPathOrDie("/a[//d]/c"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->subs.size(), 2u);
  EXPECT_EQ(result->subs[1].path.ToString(), "/a//d");
}

TEST(DecompositionTest, AttributeFiltersRetained) {
  Result<Decomposition> result =
      DecomposeNested(ParseXPathOrDie("/a[@x = 1][b]/c[@y = 2]"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->subs[0].path.ToString(), "/a[@x = 1]/c[@y = 2]");
  EXPECT_EQ(result->subs[1].path.ToString(), "/a[@x = 1]/b");
}

TEST(DecompositionTest, WildcardFilterStepRejected) {
  Result<Decomposition> result =
      DecomposeNested(ParseXPathOrDie("/a/*[b]/c"));
  EXPECT_FALSE(result.ok());
}

TEST(DecompositionTest, NonNestedExpressionRejected) {
  Result<Decomposition> result = DecomposeNested(ParseXPathOrDie("/a/b"));
  EXPECT_FALSE(result.ok());
}

// --- End-to-end nested matching -----------------------------------------------

class NestedMatchTest : public ::testing::TestWithParam<Matcher::Mode> {
 protected:
  Matcher MakeMatcher() {
    Matcher::Options options;
    options.mode = GetParam();
    return Matcher(options);
  }
};

TEST_P(NestedMatchTest, SimpleExistenceFilter) {
  Matcher m = MakeMatcher();
  xml::Document with_b = ParseXmlOrDie("<a><b/><c/></a>");
  xml::Document without_b = ParseXmlOrDie("<a><c/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[b]/c", with_b));
  Matcher m2 = MakeMatcher();
  EXPECT_FALSE(EngineMatches(&m2, "/a[b]/c", without_b));
}

TEST_P(NestedMatchTest, FilterAndStepMayShareWitness) {
  // /a[b]/b: the same b child can witness both the filter and the
  // step (standard XPath semantics).
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[b]/b", doc));
}

TEST_P(NestedMatchTest, BranchNodeMustBeShared) {
  // /r/a[b]/c: some a has a b child AND a c child — the same a.
  Matcher m = MakeMatcher();
  xml::Document split =
      ParseXmlOrDie("<r><a><b/></a><a><c/></a></r>");
  EXPECT_FALSE(EngineMatches(&m, "/r/a[b]/c", split));

  Matcher m2 = MakeMatcher();
  xml::Document joined =
      ParseXmlOrDie("<r><a><b/></a><a><b/><c/></a></r>");
  EXPECT_TRUE(EngineMatches(&m2, "/r/a[b]/c", joined));
}

TEST_P(NestedMatchTest, DescendantBranches) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(
      "<a><x><c><d/><e/></c></x></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a//c[d]/e", doc));
  Matcher m2 = MakeMatcher();
  xml::Document wrong = ParseXmlOrDie(
      "<a><x><c><d/></c></x><y><c><e/></c></y></a>");
  EXPECT_FALSE(EngineMatches(&m2, "/a//c[d]/e", wrong));
}

TEST_P(NestedMatchTest, PaperFigure3ExpressionPositive) {
  // Build a document satisfying /a[*/c[d]/e]//c[d]/e.
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(R"(
      <a>
        <m><c><d/><e/></c></m>
        <q><c><d/><e/></c></q>
      </a>)");
  EXPECT_TRUE(EngineMatches(&m, "/a[*/c[d]/e]//c[d]/e", doc));
}

TEST_P(NestedMatchTest, PaperFigure3ExpressionNegative) {
  // The nested-filter c has d but no e: the filter branch fails.
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie(R"(
      <a>
        <m><c><d/></c></m>
        <q><c><d/><e/></c></q>
      </a>)");
  // */c[d]/e requires a child-of-a whose c has both d and e: only q
  // qualifies... m's c lacks e, but q's c has both, so the filter on a
  // holds and the trunk //c[d]/e also holds via q.
  EXPECT_TRUE(EngineMatches(&m, "/a[*/c[d]/e]//c[d]/e", doc));

  Matcher m2 = MakeMatcher();
  xml::Document doc2 = ParseXmlOrDie(R"(
      <a>
        <m><c><d/></c></m>
        <q><c><e/></c></q>
      </a>)");
  // No c has both d and e anywhere.
  EXPECT_FALSE(EngineMatches(&m2, "/a[*/c[d]/e]//c[d]/e", doc2));
}

TEST_P(NestedMatchTest, NestedWithAttributes) {
  Matcher m = MakeMatcher();
  xml::Document doc =
      ParseXmlOrDie("<a><b x=\"3\"/><c/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[b[@x = 3]]/c", doc));
  Matcher m2 = MakeMatcher();
  EXPECT_FALSE(EngineMatches(&m2, "/a[b[@x = 4]]/c", doc));
}

TEST_P(NestedMatchTest, MultipleFiltersOnOneStep) {
  Matcher m = MakeMatcher();
  xml::Document doc = ParseXmlOrDie("<a><b/><c/><d/></a>");
  EXPECT_TRUE(EngineMatches(&m, "/a[b][c]/d", doc));
  Matcher m2 = MakeMatcher();
  xml::Document missing = ParseXmlOrDie("<a><b/><d/></a>");
  EXPECT_FALSE(EngineMatches(&m2, "/a[b][c]/d", missing));
}

TEST_P(NestedMatchTest, AgainstOracleOnNestedCorpus) {
  const std::vector<std::string> docs = {
      "<a><b/><c/></a>",
      "<a><b><c/></b></a>",
      "<r><a><b/></a><a><c/></a></r>",
      "<a><m><c><d/><e/></c></m></a>",
      "<a><m><c><d/></c></m><n><c><e/></c></n></a>",
      "<a><a><b/><c><d/></c></a></a>",
  };
  const std::vector<std::string> exprs = {
      "/a[b]/c",        "/a[b/c]",       "a[b]",         "/r/a[b]/c",
      "a[c[d]]",        "/a[m]/m/c[d]",  "//c[d]/e",     "a[c/d]/b",
      "a[b][c]",
  };
  for (const std::string& doc_text : docs) {
    xml::Document doc = ParseXmlOrDie(doc_text);
    for (const std::string& expr_text : exprs) {
      Matcher m = MakeMatcher();
      bool expected =
          xpath::Evaluator::Matches(ParseXPathOrDie(expr_text), doc);
      bool actual = EngineMatches(&m, expr_text, doc);
      EXPECT_EQ(actual, expected)
          << "doc=" << doc_text << " expr=" << expr_text;
    }
  }
}

TEST_P(NestedMatchTest, DuplicateNestedExpressionsShareState) {
  Matcher m = MakeMatcher();
  auto id1 = m.AddExpression("/a[b]/c");
  auto id2 = m.AddExpression("/a[b]/c");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  std::vector<ExprId> matched = xpred::testing::FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{*id1, *id2}));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, NestedMatchTest,
    ::testing::Values(Matcher::Mode::kBasic, Matcher::Mode::kPrefixCovering,
                      Matcher::Mode::kPrefixCoveringAccessPredicate,
                      Matcher::Mode::kTrieDfs));

}  // namespace
}  // namespace xpred::core
