// Tests for the nested-path witness enumeration budget: truncation
// must be visible in stats, and generous budgets must never truncate
// on ordinary documents.

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"

namespace xpred::core {
namespace {

using xpred::testing::FilterSorted;
using xpred::testing::ParseXmlOrDie;

/// A pathological document: a deep chain of a-elements with b and c
/// children sprinkled in, producing combinatorially many witness
/// chains for a//a//a style trunks.
xml::Document PathologicalDocument(int depth) {
  std::string open;
  std::string close;
  for (int i = 0; i < depth; ++i) {
    open += "<a><b/><c/>";
    close += "</a>";
  }
  return ParseXmlOrDie(open + close);
}

TEST(NestedBudgetTest, OrdinaryDocumentsDoNotTruncate) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a[b]/c").ok());
  xml::Document doc = ParseXmlOrDie("<a><b/><c/></a>");
  FilterSorted(&m, doc);
  EXPECT_EQ(m.stats().nested_enumeration_truncated, 0u);
}

TEST(NestedBudgetTest, TinyBudgetTruncatesVisibly) {
  Matcher::Options options;
  options.nested_chain_budget = 4;  // Absurdly small.
  Matcher m(options);
  ASSERT_TRUE(m.AddExpression("a//a//a[b]/c").ok());
  xml::Document doc = PathologicalDocument(10);
  std::vector<ExprId> matched;
  ASSERT_TRUE(m.FilterDocument(doc, &matched).ok());
  EXPECT_GT(m.stats().nested_enumeration_truncated, 0u);
}

TEST(NestedBudgetTest, DefaultBudgetHandlesModerateFanOut) {
  Matcher m;
  auto id = m.AddExpression("a//a[b]/c");
  ASSERT_TRUE(id.ok());
  xml::Document doc = PathologicalDocument(8);
  std::vector<ExprId> matched = FilterSorted(&m, doc);
  EXPECT_EQ(matched, (std::vector<ExprId>{*id}));
  EXPECT_EQ(m.stats().nested_enumeration_truncated, 0u);
}

}  // namespace
}  // namespace xpred::core
