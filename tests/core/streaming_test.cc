// Tests for the streaming (SAX-driven, one-path-at-a-time) front end.

#include "core/streaming.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "test_util.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace xpred::core {
namespace {

using xpred::testing::ParseXmlOrDie;

std::vector<ExprId> StreamFilter(Matcher* matcher, const std::string& xml) {
  StreamingFilter filter(matcher);
  std::vector<ExprId> matched;
  Status st = filter.FilterXml(xml, &matched);
  EXPECT_TRUE(st.ok()) << st;
  std::sort(matched.begin(), matched.end());
  return matched;
}

std::vector<ExprId> TreeFilter(Matcher* matcher, const xml::Document& doc) {
  std::vector<ExprId> matched;
  Status st = matcher->FilterDocument(doc, &matched);
  EXPECT_TRUE(st.ok()) << st;
  std::sort(matched.begin(), matched.end());
  return matched;
}

std::vector<ExprId> TreeFilter(Matcher* matcher, const std::string& xml) {
  return TreeFilter(matcher, ParseXmlOrDie(xml));
}

TEST(StreamingTest, BasicMatching) {
  Matcher m;
  auto ab = m.AddExpression("/a/b");
  auto ac = m.AddExpression("/a/c");
  ASSERT_TRUE(ab.ok() && ac.ok());
  EXPECT_EQ(StreamFilter(&m, "<a><b/></a>"), (std::vector<ExprId>{*ab}));
  EXPECT_EQ(StreamFilter(&m, "<a><c/></a>"), (std::vector<ExprId>{*ac}));
  EXPECT_EQ(StreamFilter(&m, "<a><b/><c/></a>"),
            (std::vector<ExprId>{*ab, *ac}));
}

TEST(StreamingTest, AgreesWithTreeModeOnFixedCorpus) {
  const std::vector<std::string> docs = {
      "<a><b><c/></b></a>",
      "<a><b/><b><c/></b></a>",
      "<a x=\"3\"><b y=\"7\"/><b y=\"9\"/></a>",
      "<a><a><b><a/></b></a></a>",
      "<r><a><b/></a><a><b/><c/></a></r>",
  };
  const std::vector<std::string> exprs = {
      "/a",       "/a/b",         "b/c",      "a//a",
      "/a[@x = 3]/b", "/a/b[@y = 9]", "*/*/*",  "/r/a[b]/c",
      "//b",      "/a/b/c",
  };
  Matcher stream_matcher;
  Matcher tree_matcher;
  xpred::testing::AddAll(&stream_matcher, exprs);
  xpred::testing::AddAll(&tree_matcher, exprs);
  for (const std::string& doc : docs) {
    EXPECT_EQ(StreamFilter(&stream_matcher, doc),
              TreeFilter(&tree_matcher, doc))
        << doc;
  }
}

TEST(StreamingTest, AgreesWithTreeModeOnGeneratedCorpus) {
  const xml::Dtd& dtd = xml::PsdLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.filters_per_expr = 1;
  qopts.nested_path_prob = 0.3;
  xpath::QueryGenerator qgen(&dtd, qopts);
  std::vector<std::string> exprs = qgen.GenerateWorkloadStrings(80, 5);

  Matcher stream_matcher;
  Matcher tree_matcher;
  xpred::testing::AddAll(&stream_matcher, exprs);
  xpred::testing::AddAll(&tree_matcher, exprs);

  xml::DocumentGenerator dgen(&dtd, {});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    xml::Document doc = dgen.Generate(seed);
    std::string xml = doc.ToXml();
    EXPECT_EQ(StreamFilter(&stream_matcher, xml),
              TreeFilter(&tree_matcher, doc))
        << "seed " << seed;
  }
}

TEST(StreamingTest, MalformedXmlPropagatesError) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a").ok());
  StreamingFilter filter(&m);
  std::vector<ExprId> matched;
  EXPECT_FALSE(filter.FilterXml("<a><b></a>", &matched).ok());
  // The engine is usable afterwards.
  EXPECT_EQ(StreamFilter(&m, "<a/>").size(), 1u);
}

TEST(StreamingTest, DepthTracksDocumentDepthNotSize) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/r/c").ok());
  StreamingFilter filter(&m);
  // Wide document: 200 siblings, depth 2.
  std::string xml = "<r>";
  for (int i = 0; i < 200; ++i) xml += "<c/>";
  xml += "</r>";
  std::vector<ExprId> matched;
  ASSERT_TRUE(filter.FilterXml(xml, &matched).ok());
  EXPECT_EQ(matched.size(), 1u);
  EXPECT_EQ(filter.max_depth_seen(), 2u);
}

TEST(StreamingTest, ReusableAcrossDocuments) {
  Matcher m;
  auto id = m.AddExpression("/a/b");
  ASSERT_TRUE(id.ok());
  StreamingFilter filter(&m);
  for (int round = 0; round < 3; ++round) {
    std::vector<ExprId> matched;
    ASSERT_TRUE(filter.FilterXml("<a><b/></a>", &matched).ok());
    EXPECT_EQ(matched.size(), 1u);
    matched.clear();
    ASSERT_TRUE(filter.FilterXml("<a><c/></a>", &matched).ok());
    EXPECT_TRUE(matched.empty());
  }
}

TEST(StreamingTest, StatsCountPathsAndDocuments) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a").ok());
  StreamingFilter filter(&m);
  std::vector<ExprId> matched;
  ASSERT_TRUE(filter.FilterXml("<a><b/><c/><d/></a>", &matched).ok());
  EXPECT_EQ(m.stats().documents, 1u);
  EXPECT_EQ(m.stats().paths, 3u);
}

}  // namespace
}  // namespace xpred::core
