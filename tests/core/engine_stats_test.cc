// Tests for the FilterEngine interface surface: stats accounting,
// FilterXml, and cross-engine interface uniformity.

#include <memory>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "indexfilter/index_filter.h"
#include "test_util.h"
#include "xfilter/xfilter.h"
#include "yfilter/yfilter.h"

namespace xpred::core {
namespace {

using xpred::testing::ParseXmlOrDie;

std::vector<std::unique_ptr<FilterEngine>> AllEngines() {
  std::vector<std::unique_ptr<FilterEngine>> engines;
  engines.push_back(std::make_unique<Matcher>());
  engines.push_back(std::make_unique<yfilter::YFilter>());
  engines.push_back(std::make_unique<xfilter::XFilter>());
  engines.push_back(std::make_unique<indexfilter::IndexFilter>());
  return engines;
}

TEST(EngineInterfaceTest, NamesAreStable) {
  Matcher::Options options;
  options.mode = Matcher::Mode::kBasic;
  EXPECT_EQ(Matcher(options).name(), "basic");
  options.mode = Matcher::Mode::kPrefixCovering;
  EXPECT_EQ(Matcher(options).name(), "basic-pc");
  options.mode = Matcher::Mode::kPrefixCoveringAccessPredicate;
  EXPECT_EQ(Matcher(options).name(), "basic-pc-ap");
  options.mode = Matcher::Mode::kTrieDfs;
  EXPECT_EQ(Matcher(options).name(), "trie-dfs");
  EXPECT_EQ(yfilter::YFilter().name(), "yfilter");
  EXPECT_EQ(xfilter::XFilter().name(), "xfilter");
  EXPECT_EQ(indexfilter::IndexFilter().name(), "index-filter");
}

TEST(EngineInterfaceTest, SubscriptionIdsAreDense) {
  for (auto& engine : AllEngines()) {
    for (ExprId expected = 0; expected < 5; ++expected) {
      Result<ExprId> id =
          engine->AddExpression("/a/e" + std::to_string(expected));
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, expected) << engine->name();
    }
    EXPECT_EQ(engine->subscription_count(), 5u) << engine->name();
  }
}

TEST(EngineInterfaceTest, FilterXmlAccountsParseTime) {
  for (auto& engine : AllEngines()) {
    ASSERT_TRUE(engine->AddExpression("/a/b").ok());
    std::vector<ExprId> matched;
    ASSERT_TRUE(engine->FilterXml("<a><b/></a>", &matched).ok());
    EXPECT_EQ(matched.size(), 1u) << engine->name();
    EXPECT_GT(engine->stats().encode_micros, 0.0) << engine->name();
    EXPECT_EQ(engine->stats().documents, 1u) << engine->name();
  }
}

TEST(EngineInterfaceTest, FilterXmlRejectsBadXml) {
  for (auto& engine : AllEngines()) {
    ASSERT_TRUE(engine->AddExpression("/a").ok());
    std::vector<ExprId> matched;
    Status st = engine->FilterXml("<a><b></a>", &matched);
    EXPECT_FALSE(st.ok()) << engine->name();
    EXPECT_EQ(st.code(), StatusCode::kXmlParseError) << engine->name();
  }
}

TEST(EngineInterfaceTest, ResetStatsClearsCounters) {
  for (auto& engine : AllEngines()) {
    ASSERT_TRUE(engine->AddExpression("/a").ok());
    std::vector<ExprId> matched;
    xml::Document doc = ParseXmlOrDie("<a><b/></a>");
    ASSERT_TRUE(engine->FilterDocument(doc, &matched).ok());
    EXPECT_GT(engine->stats().documents, 0u);
    engine->ResetStats();
    EXPECT_EQ(engine->stats().documents, 0u) << engine->name();
    EXPECT_EQ(engine->stats().total_micros(), 0.0) << engine->name();
  }
}

TEST(EngineInterfaceTest, ResetStatsZeroesAllCounters) {
  // Every engine must zero every EngineStats field, not just the
  // timers — occurrence_runs, predicate_matches, and the truncation
  // counter have historically been engine-local and easy to miss.
  for (auto& engine : AllEngines()) {
    ASSERT_TRUE(engine->AddExpression("/a/b").ok());
    ASSERT_TRUE(engine->AddExpression("/a[@x = 1]").ok());
    std::vector<ExprId> matched;
    xml::Document doc = ParseXmlOrDie("<a x=\"1\"><b/></a>");
    ASSERT_TRUE(engine->FilterDocument(doc, &matched).ok());
    ASSERT_TRUE(engine->FilterXml("<a><b/></a>", &matched).ok());
    EXPECT_GT(engine->stats().documents, 0u) << engine->name();
    engine->ResetStats();
    const EngineStats& stats = engine->stats();
    EXPECT_EQ(stats.documents, 0u) << engine->name();
    EXPECT_EQ(stats.paths, 0u) << engine->name();
    EXPECT_EQ(stats.occurrence_runs, 0u) << engine->name();
    EXPECT_EQ(stats.nested_enumeration_truncated, 0u) << engine->name();
    EXPECT_EQ(stats.predicate_matches, 0u) << engine->name();
    EXPECT_EQ(stats.total_micros(), 0.0) << engine->name();
    // The engine keeps working after a reset and counts from zero.
    matched.clear();
    ASSERT_TRUE(engine->FilterDocument(doc, &matched).ok());
    EXPECT_EQ(engine->stats().documents, 1u) << engine->name();
  }
}

TEST(EngineInterfaceTest, TotalMicrosSumsStages) {
  EngineStats stats;
  stats.encode_micros = 1;
  stats.predicate_micros = 2;
  stats.expression_micros = 3;
  stats.verify_micros = 4;
  stats.collect_micros = 5;
  EXPECT_DOUBLE_EQ(stats.total_micros(), 15.0);
}

TEST(EngineStatsTest, StageTimersAccumulateAcrossDocuments) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a//b").ok());
  xml::Document doc = ParseXmlOrDie("<a><x><b/></x><y><b/></y></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(m.FilterDocument(doc, &matched).ok());
  double after_one = m.stats().total_micros();
  matched.clear();
  ASSERT_TRUE(m.FilterDocument(doc, &matched).ok());
  EXPECT_GT(m.stats().total_micros(), after_one);
  EXPECT_EQ(m.stats().documents, 2u);
  EXPECT_EQ(m.stats().paths, 4u);
}

TEST(EngineStatsTest, PredicateMatchesCounted) {
  Matcher m;
  ASSERT_TRUE(m.AddExpression("/a/b").ok());
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(m.FilterDocument(doc, &matched).ok());
  // Two predicates, both matched once.
  EXPECT_EQ(m.stats().predicate_matches, 2u);
}

TEST(EngineStatsTest, VerifyTimeOnlyInSelectionPostponedMode) {
  Matcher::Options options;
  options.attribute_mode = AttributeMode::kSelectionPostponed;
  Matcher sp(options);
  ASSERT_TRUE(sp.AddExpression("/a[@x = 1]").ok());
  xml::Document doc = ParseXmlOrDie("<a x=\"1\"/>");
  std::vector<ExprId> matched;
  ASSERT_TRUE(sp.FilterDocument(doc, &matched).ok());
  EXPECT_EQ(matched.size(), 1u);
  // SP re-runs occurrence determination for the filter check.
  EXPECT_EQ(sp.stats().occurrence_runs, 2u);
}

}  // namespace
}  // namespace xpred::core
