#include "xpath/parser.h"

#include "gtest/gtest.h"

namespace xpred::xpath {
namespace {

PathExpr Parse(const std::string& text) {
  Result<PathExpr> expr = ParseXPath(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
  return expr.ok() ? *expr : PathExpr{};
}

TEST(XPathParserTest, AbsoluteSimplePath) {
  PathExpr e = Parse("/a/b/c");
  EXPECT_TRUE(e.absolute);
  ASSERT_EQ(e.steps.size(), 3u);
  EXPECT_EQ(e.steps[0].tag, "a");
  EXPECT_EQ(e.steps[0].axis, Axis::kChild);
  EXPECT_EQ(e.steps[2].tag, "c");
}

TEST(XPathParserTest, RelativePath) {
  PathExpr e = Parse("a/b");
  EXPECT_FALSE(e.absolute);
  EXPECT_EQ(e.steps.size(), 2u);
}

TEST(XPathParserTest, DescendantAxis) {
  PathExpr e = Parse("/a//b");
  EXPECT_EQ(e.steps[1].axis, Axis::kDescendant);
  PathExpr lead = Parse("//a");
  EXPECT_TRUE(lead.absolute);
  EXPECT_EQ(lead.steps[0].axis, Axis::kDescendant);
}

TEST(XPathParserTest, Wildcards) {
  PathExpr e = Parse("/*/a/*");
  EXPECT_TRUE(e.steps[0].wildcard);
  EXPECT_FALSE(e.steps[1].wildcard);
  EXPECT_TRUE(e.steps[2].wildcard);
}

TEST(XPathParserTest, AttributeFilters) {
  PathExpr e = Parse("/a[@x = 3]/b[@y != \"s\"][@z]");
  ASSERT_EQ(e.steps[0].attribute_filters.size(), 1u);
  const AttributeFilter& f = e.steps[0].attribute_filters[0];
  EXPECT_EQ(f.name, "x");
  EXPECT_TRUE(f.has_comparison);
  EXPECT_EQ(f.op, CompareOp::kEq);
  EXPECT_TRUE(f.value.is_number);
  EXPECT_EQ(f.value.number, 3.0);

  ASSERT_EQ(e.steps[1].attribute_filters.size(), 2u);
  EXPECT_EQ(e.steps[1].attribute_filters[0].op, CompareOp::kNe);
  EXPECT_FALSE(e.steps[1].attribute_filters[0].value.is_number);
  EXPECT_EQ(e.steps[1].attribute_filters[0].value.text, "s");
  EXPECT_FALSE(e.steps[1].attribute_filters[1].has_comparison);
}

TEST(XPathParserTest, AllComparisonOperators) {
  EXPECT_EQ(Parse("/a[@x = 1]").steps[0].attribute_filters[0].op,
            CompareOp::kEq);
  EXPECT_EQ(Parse("/a[@x != 1]").steps[0].attribute_filters[0].op,
            CompareOp::kNe);
  EXPECT_EQ(Parse("/a[@x < 1]").steps[0].attribute_filters[0].op,
            CompareOp::kLt);
  EXPECT_EQ(Parse("/a[@x <= 1]").steps[0].attribute_filters[0].op,
            CompareOp::kLe);
  EXPECT_EQ(Parse("/a[@x > 1]").steps[0].attribute_filters[0].op,
            CompareOp::kGt);
  EXPECT_EQ(Parse("/a[@x >= 1]").steps[0].attribute_filters[0].op,
            CompareOp::kGe);
}

TEST(XPathParserTest, NumericLiterals) {
  EXPECT_EQ(Parse("/a[@x = -2.5]").steps[0].attribute_filters[0].value,
            Literal::Number(-2.5));
  EXPECT_EQ(Parse("/a[@x = 10]").steps[0].attribute_filters[0].value,
            Literal::Number(10));
}

TEST(XPathParserTest, SingleQuotedStrings) {
  EXPECT_EQ(Parse("/a[@x = 'hi']").steps[0].attribute_filters[0].value,
            Literal::String("hi"));
}

TEST(XPathParserTest, NestedPathFilters) {
  PathExpr e = Parse("/a[b/c]/d");
  ASSERT_EQ(e.steps[0].nested_paths.size(), 1u);
  const PathExpr& nested = e.steps[0].nested_paths[0];
  EXPECT_FALSE(nested.absolute);
  ASSERT_EQ(nested.steps.size(), 2u);
  EXPECT_EQ(nested.steps[0].tag, "b");
  EXPECT_EQ(nested.steps[1].tag, "c");
}

TEST(XPathParserTest, NestedPathWithLeadingDescendant) {
  PathExpr e = Parse("/a[//d]");
  ASSERT_EQ(e.steps[0].nested_paths.size(), 1u);
  EXPECT_EQ(e.steps[0].nested_paths[0].steps[0].axis, Axis::kDescendant);
  EXPECT_FALSE(e.steps[0].nested_paths[0].absolute);
}

TEST(XPathParserTest, RecursiveNesting) {
  PathExpr e = Parse("/a[b[c[d]]]/e");
  const PathExpr& l1 = e.steps[0].nested_paths[0];
  const PathExpr& l2 = l1.steps[0].nested_paths[0];
  const PathExpr& l3 = l2.steps[0].nested_paths[0];
  EXPECT_EQ(l3.steps[0].tag, "d");
}

TEST(XPathParserTest, MixedFilters) {
  PathExpr e = Parse("/a[@x = 1][b][@y = 2]");
  EXPECT_EQ(e.steps[0].attribute_filters.size(), 2u);
  EXPECT_EQ(e.steps[0].nested_paths.size(), 1u);
}

TEST(XPathParserTest, WhitespaceTolerated) {
  PathExpr e = Parse("  /a[ @x = 3 ]/b  ");
  EXPECT_EQ(e.steps.size(), 2u);
  EXPECT_EQ(e.ToString(), "/a[@x = 3]/b");
}

TEST(XPathParserTest, NamesWithDashesDotsUnderscores) {
  PathExpr e = Parse("/body.content/nitf-table/_x");
  EXPECT_EQ(e.steps[0].tag, "body.content");
  EXPECT_EQ(e.steps[1].tag, "nitf-table");
  EXPECT_EQ(e.steps[2].tag, "_x");
}

struct BadCase {
  const char* text;
};

class XPathParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(XPathParserErrorTest, Rejected) {
  Result<PathExpr> expr = ParseXPath(GetParam().text);
  EXPECT_FALSE(expr.ok()) << "accepted: " << GetParam().text;
  EXPECT_EQ(expr.status().code(), StatusCode::kXPathParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XPathParserErrorTest,
    ::testing::Values(BadCase{""}, BadCase{"/"}, BadCase{"//"},
                      BadCase{"a/"}, BadCase{"/a//"}, BadCase{"a//b/"},
                      BadCase{"[b]"}, BadCase{"/a["}, BadCase{"/a[]"},
                      BadCase{"/a[@]"}, BadCase{"/a[@x ="},
                      BadCase{"/a[@x = ]"}, BadCase{"/a[1]"},
                      BadCase{"/a[@x ~ 1]"}, BadCase{"/a/b()"},
                      BadCase{"/a:b"}, BadCase{"@x"}, BadCase{"/a trailing"},
                      BadCase{"/a[@x = 'open]"}, BadCase{"/a]"}));

}  // namespace
}  // namespace xpred::xpath
