#include "xpath/evaluator.h"

#include "gtest/gtest.h"

#include "test_util.h"
#include "xpath/parser.h"

namespace xpred::xpath {
namespace {

using xpred::testing::ParseXmlOrDie;
using xpred::testing::ParseXPathOrDie;

bool Matches(const std::string& expr, const std::string& xml) {
  xml::Document doc = ParseXmlOrDie(xml);
  return Evaluator::Matches(ParseXPathOrDie(expr), doc);
}

TEST(EvaluatorTest, AbsoluteChildPaths) {
  EXPECT_TRUE(Matches("/a", "<a/>"));
  EXPECT_TRUE(Matches("/a/b", "<a><b/></a>"));
  EXPECT_FALSE(Matches("/b", "<a><b/></a>"));
  EXPECT_FALSE(Matches("/a/c", "<a><b/></a>"));
  EXPECT_FALSE(Matches("/a/a", "<a/>"));
}

TEST(EvaluatorTest, DescendantAxis) {
  EXPECT_TRUE(Matches("/a//c", "<a><b><c/></b></a>"));
  EXPECT_TRUE(Matches("/a//b", "<a><b/></a>"));  // Distance 1 counts.
  EXPECT_TRUE(Matches("//c", "<a><b><c/></b></a>"));
  EXPECT_FALSE(Matches("/a//z", "<a><b><c/></b></a>"));
  EXPECT_FALSE(Matches("//a/c", "<a><b><c/></b></a>"));
}

TEST(EvaluatorTest, RelativeMatchesAnywhere) {
  EXPECT_TRUE(Matches("c", "<a><b><c/></b></a>"));
  EXPECT_TRUE(Matches("b/c", "<a><b><c/></b></a>"));
  EXPECT_FALSE(Matches("a/c", "<a><b><c/></b></a>"));
}

TEST(EvaluatorTest, Wildcards) {
  EXPECT_TRUE(Matches("/*", "<a/>"));
  EXPECT_TRUE(Matches("/a/*", "<a><b/></a>"));
  EXPECT_FALSE(Matches("/a/*", "<a/>"));
  EXPECT_TRUE(Matches("/*/*/c", "<a><b><c/></b></a>"));
  EXPECT_TRUE(Matches("*/c", "<a><b><c/></b></a>"));
}

TEST(EvaluatorTest, SelectReturnsNodeSets) {
  xml::Document doc = ParseXmlOrDie("<a><b/><b><c/></b></a>");
  std::vector<xml::NodeId> bs =
      Evaluator::Select(ParseXPathOrDie("/a/b"), doc);
  EXPECT_EQ(bs.size(), 2u);
  std::vector<xml::NodeId> all =
      Evaluator::Select(ParseXPathOrDie("//*"), doc);
  EXPECT_EQ(all.size(), 4u);
  std::vector<xml::NodeId> none =
      Evaluator::Select(ParseXPathOrDie("/a/z"), doc);
  EXPECT_TRUE(none.empty());
}

TEST(EvaluatorTest, NoDuplicateNodesInSelection) {
  // Both //b routes reach the same node via different contexts.
  xml::Document doc = ParseXmlOrDie("<a><a><b/></a></a>");
  std::vector<xml::NodeId> result =
      Evaluator::Select(ParseXPathOrDie("//a//b"), doc);
  EXPECT_EQ(result.size(), 1u);
}

TEST(EvaluatorTest, AttributeFilters) {
  EXPECT_TRUE(Matches("/a[@x = 1]", "<a x=\"1\"/>"));
  EXPECT_FALSE(Matches("/a[@x = 1]", "<a x=\"2\"/>"));
  EXPECT_FALSE(Matches("/a[@x = 1]", "<a/>"));
  EXPECT_TRUE(Matches("/a[@x]", "<a x=\"anything\"/>"));
  EXPECT_TRUE(Matches("/a[@x > 1][@x < 3]", "<a x=\"2\"/>"));
}

TEST(EvaluatorTest, NestedPathFilters) {
  EXPECT_TRUE(Matches("/a[b]", "<a><b/></a>"));
  EXPECT_FALSE(Matches("/a[b]", "<a><c/></a>"));
  EXPECT_TRUE(Matches("/a[b]/c", "<a><b/><c/></a>"));
  EXPECT_FALSE(Matches("/a[b]/c", "<a><c/></a>"));
  EXPECT_TRUE(Matches("/a[b/d]", "<a><b><d/></b></a>"));
  EXPECT_FALSE(Matches("/a[b/d]", "<a><b/><d/></a>"));
  EXPECT_TRUE(Matches("/a[//d]", "<a><b><d/></b></a>"));
  EXPECT_TRUE(Matches("/a[b][c]", "<a><b/><c/></a>"));
  EXPECT_FALSE(Matches("/a[b][c]", "<a><b/></a>"));
}

TEST(EvaluatorTest, FilterAndStepShareWitness) {
  // /a[b]/b is satisfiable with a single b child.
  EXPECT_TRUE(Matches("/a[b]/b", "<a><b/></a>"));
}

TEST(EvaluatorTest, MatchesRelativeFromContext) {
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b><d/></a>");
  xml::NodeId b = 1;
  EXPECT_TRUE(
      Evaluator::MatchesRelative(ParseXPathOrDie("c"), doc, b));
  EXPECT_FALSE(
      Evaluator::MatchesRelative(ParseXPathOrDie("d"), doc, b));
  // From the root, d is a child.
  EXPECT_TRUE(
      Evaluator::MatchesRelative(ParseXPathOrDie("d"), doc, doc.root()));
}

TEST(EvaluatorTest, EmptyDocumentNeverMatches) {
  xml::Document doc;
  EXPECT_FALSE(Evaluator::Matches(ParseXPathOrDie("/a"), doc));
  EXPECT_FALSE(Evaluator::Matches(ParseXPathOrDie("*"), doc));
}

TEST(EvaluatorTest, PaperSemanticsOfAllWildcardExpressions) {
  // Both /*/*/* and */*/* match iff some path has length >= 3.
  const char* deep = "<a><b><c/></b></a>";
  const char* shallow = "<a><b/></a>";
  EXPECT_TRUE(Matches("/*/*/*", deep));
  EXPECT_TRUE(Matches("*/*/*", deep));
  EXPECT_FALSE(Matches("/*/*/*", shallow));
  EXPECT_FALSE(Matches("*/*/*", shallow));
}

}  // namespace
}  // namespace xpred::xpath
