#include "xpath/ast.h"

#include "gtest/gtest.h"

#include "xpath/parser.h"

namespace xpred::xpath {
namespace {

TEST(AstTest, ToStringRoundTrip) {
  const char* const cases[] = {
      "/a/b/c",
      "a/b",
      "//a",
      "/a//b",
      "/*/a/*",
      "*",
      "/a[@x = 3]",
      "/a[@x != \"s\"]",
      "/a[@y]",
      "/a[@x >= 2]/b[@z < 5]",
      "/a[b/c]/d",
      "/a[b[c]]/d[@k = 1]",
      "a//b[@x = 1.5]",
  };
  for (const char* text : cases) {
    Result<PathExpr> expr = ParseXPath(text);
    ASSERT_TRUE(expr.ok()) << text;
    EXPECT_EQ(expr->ToString(), text);
    // Canonical form is a fixed point.
    Result<PathExpr> again = ParseXPath(expr->ToString());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, *expr);
  }
}

TEST(AstTest, LiteralToString) {
  EXPECT_EQ(Literal::Number(3).ToString(), "3");
  EXPECT_EQ(Literal::Number(3.5).ToString(), "3.5");
  EXPECT_EQ(Literal::Number(-2).ToString(), "-2");
  EXPECT_EQ(Literal::String("ab").ToString(), "\"ab\"");
}

TEST(AstTest, AttributeFilterMatching) {
  AttributeFilter eq;
  eq.name = "x";
  eq.has_comparison = true;
  eq.op = CompareOp::kEq;
  eq.value = Literal::Number(3);
  EXPECT_TRUE(eq.Matches("3"));
  EXPECT_TRUE(eq.Matches("3.0"));
  EXPECT_FALSE(eq.Matches("4"));
  EXPECT_FALSE(eq.Matches("abc"));

  AttributeFilter ne = eq;
  ne.op = CompareOp::kNe;
  EXPECT_FALSE(ne.Matches("3"));
  EXPECT_TRUE(ne.Matches("4"));
  EXPECT_TRUE(ne.Matches("abc"));  // Non-numeric satisfies only !=.

  AttributeFilter lt = eq;
  lt.op = CompareOp::kLt;
  EXPECT_TRUE(lt.Matches("2.9"));
  EXPECT_FALSE(lt.Matches("3"));

  AttributeFilter str;
  str.name = "s";
  str.has_comparison = true;
  str.op = CompareOp::kEq;
  str.value = Literal::String("hello");
  EXPECT_TRUE(str.Matches("hello"));
  EXPECT_FALSE(str.Matches("world"));

  AttributeFilter exists;
  exists.name = "e";
  EXPECT_TRUE(exists.Matches("anything"));
  EXPECT_TRUE(exists.Matches(""));
}

TEST(AstTest, HasFiltersAndNestedPaths) {
  Result<PathExpr> plain = ParseXPath("/a/b");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->HasFilters());
  EXPECT_FALSE(plain->HasNestedPaths());

  Result<PathExpr> attr = ParseXPath("/a[@x = 1]/b");
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(attr->HasFilters());
  EXPECT_FALSE(attr->HasNestedPaths());

  Result<PathExpr> nested = ParseXPath("/a[b]/c");
  ASSERT_TRUE(nested.ok());
  EXPECT_TRUE(nested->HasFilters());
  EXPECT_TRUE(nested->HasNestedPaths());
}

TEST(AstTest, StepEquality) {
  Result<PathExpr> e1 = ParseXPath("/a[@x = 1]/b");
  Result<PathExpr> e2 = ParseXPath("/a[@x = 1]/b");
  Result<PathExpr> e3 = ParseXPath("/a[@x = 2]/b");
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  EXPECT_EQ(*e1, *e2);
  EXPECT_FALSE(*e1 == *e3);
}

TEST(AstTest, CompareOpNames) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kEq), "=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kNe), "!=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpToString(CompareOp::kGe), ">=");
}

TEST(AstTest, LengthCountsSteps) {
  EXPECT_EQ(ParseXPath("/a/b/c")->length(), 3u);
  EXPECT_EQ(ParseXPath("*")->length(), 1u);
}

}  // namespace
}  // namespace xpred::xpath
