#include "xpath/query_generator.h"

#include <set>

#include "gtest/gtest.h"

#include "xml/standard_dtds.h"
#include "xpath/parser.h"

namespace xpred::xpath {
namespace {

using xml::NitfLikeDtd;
using xml::PsdLikeDtd;

TEST(QueryGeneratorTest, DeterministicForSeed) {
  QueryGenerator gen(&NitfLikeDtd(), {});
  auto w1 = gen.GenerateWorkloadStrings(50, 7);
  auto w2 = gen.GenerateWorkloadStrings(50, 7);
  EXPECT_EQ(w1, w2);
  auto w3 = gen.GenerateWorkloadStrings(50, 8);
  EXPECT_NE(w1, w3);
}

TEST(QueryGeneratorTest, AllExpressionsParse) {
  QueryGenerator::Options options;
  options.filters_per_expr = 1;
  options.nested_path_prob = 0.3;
  QueryGenerator gen(&NitfLikeDtd(), options);
  for (const std::string& text : gen.GenerateWorkloadStrings(200, 3)) {
    Result<PathExpr> expr = ParseXPath(text);
    EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
  }
}

TEST(QueryGeneratorTest, RespectsMaxLength) {
  QueryGenerator::Options options;
  options.max_length = 4;
  options.min_length = 2;
  QueryGenerator gen(&PsdLikeDtd(), options);
  for (const PathExpr& expr : gen.GenerateWorkload(100, 5)) {
    EXPECT_LE(expr.length(), 4u);
    EXPECT_GE(expr.length(), 1u);  // Dead-end walks may truncate.
  }
}

TEST(QueryGeneratorTest, DistinctWorkloadHasNoDuplicates) {
  QueryGenerator::Options options;
  options.distinct = true;
  QueryGenerator gen(&NitfLikeDtd(), options);
  auto workload = gen.GenerateWorkloadStrings(300, 9);
  std::set<std::string> unique(workload.begin(), workload.end());
  EXPECT_EQ(unique.size(), workload.size());
}

TEST(QueryGeneratorTest, NonDistinctWorkloadHasDuplicates) {
  // The paper's duplicate workloads: ~30x more expressions than
  // distinct ones. On the small PSD DTD, duplicates appear quickly.
  QueryGenerator::Options options;
  options.distinct = false;
  options.max_length = 3;
  QueryGenerator gen(&PsdLikeDtd(), options);
  auto workload = gen.GenerateWorkloadStrings(2000, 9);
  ASSERT_EQ(workload.size(), 2000u);
  std::set<std::string> unique(workload.begin(), workload.end());
  EXPECT_LT(unique.size(), workload.size() / 2);
}

TEST(QueryGeneratorTest, WildcardProbabilityShapesWorkload) {
  auto wildcard_fraction = [](double w) {
    QueryGenerator::Options options;
    options.wildcard_prob = w;
    // Distinctness filtering would bias the fraction at high W (heavily
    // wildcarded expressions collide and are regenerated).
    options.distinct = false;
    QueryGenerator gen(&NitfLikeDtd(), options);
    size_t wild = 0;
    size_t total = 0;
    for (const PathExpr& e : gen.GenerateWorkload(300, 17)) {
      for (const Step& s : e.steps) {
        ++total;
        if (s.wildcard) ++wild;
      }
    }
    return static_cast<double>(wild) / static_cast<double>(total);
  };
  EXPECT_EQ(wildcard_fraction(0.0), 0.0);
  EXPECT_NEAR(wildcard_fraction(0.2), 0.2, 0.07);
  EXPECT_NEAR(wildcard_fraction(0.8), 0.8, 0.07);
}

TEST(QueryGeneratorTest, DescendantProbabilityShapesWorkload) {
  auto descendant_fraction = [](double p) {
    QueryGenerator::Options options;
    options.descendant_prob = p;
    QueryGenerator gen(&NitfLikeDtd(), options);
    size_t desc = 0;
    size_t total = 0;
    for (const PathExpr& e : gen.GenerateWorkload(300, 19)) {
      for (size_t i = 1; i < e.steps.size(); ++i) {
        ++total;
        if (e.steps[i].axis == Axis::kDescendant) ++desc;
      }
    }
    return static_cast<double>(desc) / static_cast<double>(total);
  };
  EXPECT_EQ(descendant_fraction(0.0), 0.0);
  EXPECT_NEAR(descendant_fraction(0.3), 0.3, 0.08);
}

TEST(QueryGeneratorTest, NestedPathProbabilityShapesWorkload) {
  auto nested_fraction = [](double p) {
    QueryGenerator::Options options;
    options.nested_path_prob = p;
    // Nested paths only attach to tag steps; disable wildcards so
    // every expression is eligible and the fraction is unbiased.
    options.wildcard_prob = 0.0;
    options.distinct = false;
    QueryGenerator gen(&NitfLikeDtd(), options);
    size_t nested = 0;
    size_t total = 0;
    for (const PathExpr& e : gen.GenerateWorkload(400, 43)) {
      ++total;
      if (e.HasNestedPaths()) ++nested;
    }
    return static_cast<double>(nested) / static_cast<double>(total);
  };
  EXPECT_EQ(nested_fraction(0.0), 0.0);
  EXPECT_NEAR(nested_fraction(0.3), 0.3, 0.08);
  EXPECT_NEAR(nested_fraction(0.7), 0.7, 0.08);
}

TEST(QueryGeneratorTest, FiltersPerExprCountHonored) {
  auto mean_filters = [](uint32_t n) {
    QueryGenerator::Options options;
    options.filters_per_expr = n;
    options.wildcard_prob = 0.0;  // Wildcard steps cannot carry filters.
    options.distinct = false;
    QueryGenerator gen(&NitfLikeDtd(), options);
    size_t filters = 0;
    size_t exprs = 0;
    for (const PathExpr& e : gen.GenerateWorkload(400, 47)) {
      ++exprs;
      size_t count = 0;
      for (const Step& s : e.steps) count += s.attribute_filters.size();
      // The documented contract: never more than requested; fewer only
      // when too few steps declare attributes.
      EXPECT_LE(count, n) << e.ToString();
      filters += count;
    }
    return static_cast<double>(filters) / static_cast<double>(exprs);
  };
  EXPECT_EQ(mean_filters(0), 0.0);
  // NITF-like elements mostly declare attributes, so the mean should
  // sit near the requested count (short walks through attribute-less
  // regions account for the slack).
  EXPECT_GT(mean_filters(1), 0.6);
  EXPECT_LE(mean_filters(1), 1.0);
  EXPECT_GT(mean_filters(2), 1.2);
  EXPECT_LE(mean_filters(2), 2.0);
  EXPECT_GT(mean_filters(2), mean_filters(1));
}

TEST(QueryGeneratorTest, AbsoluteFlagHonored) {
  QueryGenerator::Options options;
  options.absolute = true;
  QueryGenerator abs_gen(&PsdLikeDtd(), options);
  for (const PathExpr& e : abs_gen.GenerateWorkload(50, 23)) {
    EXPECT_TRUE(e.absolute);
  }
  options.absolute = false;
  QueryGenerator rel_gen(&PsdLikeDtd(), options);
  for (const PathExpr& e : rel_gen.GenerateWorkload(50, 23)) {
    EXPECT_FALSE(e.absolute);
  }
}

TEST(QueryGeneratorTest, FirstStepFollowsDtdRoot) {
  QueryGenerator::Options options;
  options.wildcard_prob = 0.0;
  QueryGenerator gen(&PsdLikeDtd(), options);
  for (const PathExpr& e : gen.GenerateWorkload(50, 29)) {
    EXPECT_EQ(e.steps[0].tag, "ProteinDatabase");
  }
}

TEST(QueryGeneratorTest, StepsFollowDtdEdges) {
  // With no wildcards and no descendant skips, consecutive tags must
  // be DTD parent-child pairs.
  QueryGenerator::Options options;
  options.wildcard_prob = 0.0;
  options.descendant_prob = 0.0;
  QueryGenerator gen(&PsdLikeDtd(), options);
  const xml::Dtd& dtd = PsdLikeDtd();
  for (const PathExpr& e : gen.GenerateWorkload(100, 31)) {
    for (size_t i = 1; i < e.steps.size(); ++i) {
      const xml::ElementDecl* parent = dtd.Find(e.steps[i - 1].tag);
      ASSERT_NE(parent, nullptr);
      std::vector<std::string> allowed;
      parent->content.CollectElementNames(&allowed);
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), e.steps[i].tag),
                allowed.end())
          << e.ToString();
    }
  }
}

TEST(QueryGeneratorTest, AttributeFiltersUseDeclaredAttributes) {
  QueryGenerator::Options options;
  options.filters_per_expr = 2;
  QueryGenerator gen(&NitfLikeDtd(), options);
  const xml::Dtd& dtd = NitfLikeDtd();
  size_t with_filters = 0;
  for (const PathExpr& e : gen.GenerateWorkload(200, 37)) {
    for (const Step& s : e.steps) {
      if (s.attribute_filters.empty()) continue;
      with_filters++;
      EXPECT_FALSE(s.wildcard);
      const xml::ElementDecl* decl = dtd.Find(s.tag);
      ASSERT_NE(decl, nullptr);
      for (const AttributeFilter& f : s.attribute_filters) {
        bool declared = false;
        for (const xml::AttributeDecl& ad : decl->attributes) {
          if (ad.name == f.name) declared = true;
        }
        EXPECT_TRUE(declared) << e.ToString() << " @" << f.name;
      }
    }
  }
  EXPECT_GT(with_filters, 0u);
}

TEST(QueryGeneratorTest, NestedPathsOnlyOnTagSteps) {
  QueryGenerator::Options options;
  options.nested_path_prob = 1.0;
  options.wildcard_prob = 0.4;
  QueryGenerator gen(&NitfLikeDtd(), options);
  size_t nested_count = 0;
  for (const PathExpr& e : gen.GenerateWorkload(200, 41)) {
    for (const Step& s : e.steps) {
      if (!s.nested_paths.empty()) {
        ++nested_count;
        EXPECT_FALSE(s.wildcard) << e.ToString();
      }
    }
  }
  EXPECT_GT(nested_count, 0u);
}

}  // namespace
}  // namespace xpred::xpath
