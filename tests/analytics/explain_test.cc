#include "analytics/explain.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "core/matcher.h"
#include "test_util.h"
#include "xml/generator.h"
#include "xml/standard_dtds.h"
#include "xpath/query_generator.h"

namespace xpred::analytics {
namespace {

using xpred::testing::ParseXmlOrDie;

TEST(ExplainTest, MatchProducesFullTrace) {
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b></a>");
  Result<ExplainResult> result = ExplainMatch(doc, "/a/b/c");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->matched);
  EXPECT_EQ(result->first_matching_path, 0u);
  EXPECT_EQ(result->first_failing_predicate, -1);
  ASSERT_EQ(result->paths.size(), 1u);

  const PathExplain& pe = result->paths[0];
  EXPECT_TRUE(pe.matched);
  EXPECT_TRUE(pe.structural_match);
  ASSERT_EQ(pe.evals.size(), 3u);  // Length + two distance predicates.
  for (const PredicateEval& ev : pe.evals) {
    EXPECT_TRUE(ev.matched) << ev.text;
    EXPECT_FALSE(ev.pairs.empty());
  }
  // The recorded search must end in a kMatch step.
  ASSERT_FALSE(pe.steps.empty());
  EXPECT_EQ(pe.steps.back().kind, ExplainStep::Kind::kMatch);
  EXPECT_FALSE(pe.steps_truncated);
}

TEST(ExplainTest, MissNamesFirstFailingPredicate) {
  xml::Document doc = ParseXmlOrDie("<a><b><d/></b></a>");
  Result<ExplainResult> result = ExplainMatch(doc, "/a/b/c");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->matched);
  // (p_a,=,1) and (d(p_a,p_b),=,1) match; (d(p_b,p_c),=,1) has no
  // occurrence rows — chain position 2 is the first failure.
  EXPECT_EQ(result->first_failing_predicate, 2);
  EXPECT_FALSE(result->first_failing_text.empty());
  ASSERT_EQ(result->paths.size(), 1u);
  EXPECT_EQ(result->paths[0].first_failing_predicate, 2);
}

TEST(ExplainTest, ChainFailureReportsDeepestStuckPredicate) {
  // Path a/b/a/c: every predicate of //a//a//b has occurrence rows —
  // p_a: (1,1),(2,2); d(p_a,p_a): (1,2); d(p_a,p_b): (1,1) — but no
  // chain links them ((1,2) forces the final pair to start at a
  // occurrence 2, and only (1,1) exists). Occurrence determination
  // fails and the miss points at the predicate the backtracking could
  // not extend past.
  xml::Document doc = ParseXmlOrDie("<a><b><a><c/></a></b></a>");
  Result<ExplainResult> result = ExplainMatch(doc, "//a//a//b");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->matched);
  EXPECT_GE(result->first_failing_predicate, 0);
  bool saw_structural_failure = false;
  for (const PathExplain& pe : result->paths) {
    if (pe.first_failing_predicate >= 0 && !pe.evals.empty()) {
      bool all_rows = true;
      for (const PredicateEval& ev : pe.evals) all_rows &= ev.matched;
      if (all_rows) {
        saw_structural_failure = true;
        EXPECT_FALSE(pe.structural_match);
        EXPECT_FALSE(pe.steps.empty());
      }
    }
  }
  EXPECT_TRUE(saw_structural_failure);
}

TEST(ExplainTest, RejectStepsRecordChainConstraint) {
  // Two b leaves: occurrence rows for (d(p_a,p_b),>=,1) hold two
  // pairs, and matching //a//b//c must reject the pair anchored at
  // the wrong b before accepting the right one on some path.
  xml::Document doc = ParseXmlOrDie("<a><b><c/></b><b><d/></b></a>");
  Result<ExplainResult> result = ExplainMatch(doc, "/a/b/c");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->matched);
  ASSERT_EQ(result->total_paths, 2u);
  // Path 2 (a/b/d) must fail on the (d(p_b,p_c),=,1) predicate.
  EXPECT_EQ(result->paths[1].first_failing_predicate, 2);
}

TEST(ExplainTest, DeferredFilterFailureIsFlagged) {
  xml::Document doc = ParseXmlOrDie("<a><b x=\"2\"/></a>");
  ExplainOptions options;
  options.attribute_mode = core::AttributeMode::kSelectionPostponed;
  Result<ExplainResult> result = ExplainMatch(doc, "/a/b[@x=1]", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->matched);
  ASSERT_EQ(result->paths.size(), 1u);
  // Structurally the path matches; the postponed attribute filter
  // kills every witness.
  EXPECT_TRUE(result->paths[0].structural_match);
  EXPECT_TRUE(result->paths[0].deferred_failed);
  EXPECT_FALSE(result->paths[0].matched);
}

TEST(ExplainTest, NestedPathExpressionsRejected) {
  xml::Document doc = ParseXmlOrDie("<a><b/></a>");
  Result<ExplainResult> result = ExplainMatch(doc, "/a[//c]/b");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExplainTest, StepCapTruncatesTraceNotVerdict) {
  // A long descendant chain over a deep document explodes the
  // backtracking trace; with a tiny cap the trace truncates but the
  // verdict (from the unrecorded algorithm) stays correct.
  std::string xml;
  for (int i = 0; i < 12; ++i) xml += "<a>";
  xml += "<z/>";
  for (int i = 0; i < 12; ++i) xml += "</a>";
  xml::Document doc = ParseXmlOrDie(xml);
  ExplainOptions options;
  options.max_steps_per_path = 8;
  Result<ExplainResult> result = ExplainMatch(doc, "//a//a//a//z", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->matched);
  bool truncated = false;
  for (const PathExplain& pe : result->paths) truncated |= pe.steps_truncated;
  EXPECT_TRUE(truncated);
}

TEST(ExplainTest, JsonAndTextRender) {
  xml::Document doc = ParseXmlOrDie("<a><b><d/></b></a>");
  Result<ExplainResult> result = ExplainMatch(doc, "/a/b/c");
  ASSERT_TRUE(result.ok());
  std::string json = ExplainToJson(*result);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"matched\": false"), std::string::npos);
  EXPECT_NE(json.find("\"first_failing_predicate\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"predicates\""), std::string::npos);
  EXPECT_NE(json.find("\"steps\""), std::string::npos);

  std::string text = ExplainToText(*result);
  EXPECT_NE(text.find("NO MATCH"), std::string::npos);
  EXPECT_NE(text.find("first failing predicate"), std::string::npos);
}

TEST(ExplainTest, VerdictAgreesWithMatcherOnGeneratedWorkload) {
  // The explain engine re-implements the recording half of the
  // pipeline; its verdict must agree with the production matcher on a
  // generated workload (both attribute modes).
  const xml::Dtd& dtd = xml::NitfLikeDtd();
  xpath::QueryGenerator::Options qopts;
  qopts.max_length = 5;
  qopts.filters_per_expr = 1;
  xpath::QueryGenerator generator(&dtd, qopts);
  std::vector<std::string> exprs =
      generator.GenerateWorkloadStrings(40, 17);

  xml::DocumentGenerator::Options dopts;
  dopts.max_depth = 6;
  xml::DocumentGenerator doc_gen(&dtd, dopts);

  for (uint64_t seed = 0; seed < 3; ++seed) {
    xml::Document doc = doc_gen.Generate(seed);
    for (const std::string& expr : exprs) {
      core::Matcher matcher;
      Result<core::ExprId> id = matcher.AddExpression(expr);
      ASSERT_TRUE(id.ok()) << expr;
      std::vector<core::ExprId> matched;
      ASSERT_TRUE(matcher.FilterDocument(doc, &matched).ok());

      Result<ExplainResult> result = ExplainMatch(doc, expr);
      ASSERT_TRUE(result.ok()) << expr << ": " << result.status();
      EXPECT_EQ(result->matched, !matched.empty())
          << "seed=" << seed << " expr=" << expr;
      if (!result->matched && !result->paths.empty()) {
        EXPECT_GE(result->first_failing_predicate, 0) << expr;
      }
    }
  }
}

}  // namespace
}  // namespace xpred::analytics
