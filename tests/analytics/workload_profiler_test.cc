#include "analytics/workload_profiler.h"

#include <string>

#include "gtest/gtest.h"

#include "core/attribution.h"

namespace xpred::analytics {
namespace {

core::AttributionDelta ExprDelta(uint32_t id, uint32_t evals,
                                 uint32_t matches, uint64_t cost) {
  core::AttributionDelta delta;
  delta.exprs.push_back({id, evals, matches, cost});
  return delta;
}

TEST(WorkloadProfilerTest, ExactModeAggregatesAcrossDeltas) {
  WorkloadProfiler profiler;
  profiler.Ingest(ExprDelta(0, 10, 2, 100), 0);
  profiler.Ingest(ExprDelta(0, 5, 1, 50), 0);
  profiler.Ingest(ExprDelta(1, 20, 0, 30), 0);

  ASSERT_TRUE(profiler.exact_mode());
  WorkloadProfiler::Report report = profiler.TopK(10);
  EXPECT_EQ(report.total_evals, 35u);
  EXPECT_EQ(report.total_matches, 3u);
  EXPECT_EQ(report.total_cost, 180u);
  EXPECT_EQ(report.deltas_ingested, 3u);
  EXPECT_EQ(report.distinct_expressions, 2u);

  ASSERT_EQ(report.top_expressions.size(), 2u);
  EXPECT_EQ(report.top_expressions[0].key, 0u);  // Cost 150 > 30.
  EXPECT_EQ(report.top_expressions[0].evals, 15u);
  EXPECT_EQ(report.top_expressions[0].matches, 3u);
  EXPECT_DOUBLE_EQ(report.top_expressions[0].match_rate, 0.2);
  EXPECT_NEAR(report.top_expressions[0].cost_share, 150.0 / 180.0, 1e-9);
}

TEST(WorkloadProfilerTest, KeyNamespaceSeparatesPartitions) {
  WorkloadProfiler profiler;
  profiler.Ingest(ExprDelta(3, 1, 0, 10), 0);
  profiler.Ingest(ExprDelta(3, 1, 0, 20), uint64_t{1} << 32);
  WorkloadProfiler::Report report = profiler.TopK(10);
  ASSERT_EQ(report.top_expressions.size(), 2u);
  EXPECT_EQ(report.top_expressions[0].key, (uint64_t{1} << 32) | 3);
  EXPECT_EQ(report.top_expressions[1].key, 3u);
}

TEST(WorkloadProfilerTest, SketchAgreesWithExactOnSkewedWorkload) {
  WorkloadProfiler::Options options;
  options.sketch_capacity = 32;
  WorkloadProfiler profiler(options);
  // 500 expressions, cost heavily skewed toward low ids: the top-10 by
  // cost must be identical between exact and sketch accounting.
  for (int round = 0; round < 20; ++round) {
    for (uint32_t id = 0; id < 500; ++id) {
      const uint64_t cost = id < 10 ? 1000 - 50 * id : 1 + id % 3;
      profiler.Ingest(ExprDelta(id, 1, 0, cost), 0);
    }
  }
  ASSERT_TRUE(profiler.exact_mode());
  EXPECT_EQ(profiler.TopKAgreement(10), 1.0);
  WorkloadProfiler::Report report = profiler.TopK(10);
  EXPECT_EQ(report.top_agreement, 1.0);
  ASSERT_EQ(report.top_expressions.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(report.top_expressions[i].key, i);
  }
}

TEST(WorkloadProfilerTest, DropsExactMapAtThreshold) {
  WorkloadProfiler::Options options;
  options.sketch_capacity = 16;
  options.exact_threshold = 100;
  WorkloadProfiler profiler(options);
  for (uint32_t id = 0; id < 200; ++id) {
    profiler.Ingest(ExprDelta(id, 1, 0, id < 5 ? 10000 : 1), 0);
  }
  EXPECT_FALSE(profiler.exact_mode());
  EXPECT_LE(profiler.tracked(), 16u);
  EXPECT_EQ(profiler.TopKAgreement(10), -1);

  // Totals survive the drop, and the sketch still ranks the heavy
  // hitters first.
  WorkloadProfiler::Report report = profiler.TopK(5);
  EXPECT_FALSE(report.exact_mode);
  EXPECT_EQ(report.total_evals, 200u);
  EXPECT_EQ(report.top_agreement, -1);
  ASSERT_EQ(report.top_expressions.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_LT(report.top_expressions[i].key, 5u);
  }
}

TEST(WorkloadProfilerTest, PredicateHeatAndLatency) {
  WorkloadProfiler profiler;
  core::AttributionDelta delta;
  delta.predicates.push_back({7, 30});
  delta.predicates.push_back({9, 10});
  delta.latencies.push_back({1, 100});
  delta.latencies.push_back({1, 300});
  delta.latencies.push_back({2, 200});
  profiler.Ingest(delta, 0);

  WorkloadProfiler::Report report = profiler.TopK(10);
  EXPECT_EQ(report.total_predicate_matches, 40u);
  ASSERT_EQ(report.hot_predicates.size(), 2u);
  EXPECT_EQ(report.hot_predicates[0].key, 7u);
  EXPECT_DOUBLE_EQ(report.hot_predicates[0].share, 0.75);
  EXPECT_EQ(report.latency.sampled, 3u);
  EXPECT_EQ(report.latency.p50_ns, 200u);
  EXPECT_EQ(report.latency.max_ns, 300u);
}

TEST(WorkloadProfilerTest, JsonRenderHasSchemaFields) {
  WorkloadProfiler profiler;
  profiler.Ingest(ExprDelta(0, 4, 1, 40), 0);
  std::unordered_map<uint64_t, std::string> names{{0, "/a/b[@x=1]"}};
  std::string json = RenderWorkloadJson(profiler.TopK(5), &names, nullptr);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"exact\""), std::string::npos);
  EXPECT_NE(json.find("\"top_expressions\""), std::string::npos);
  EXPECT_NE(json.find("\"hot_predicates\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"top10_agreement\""), std::string::npos);
  EXPECT_NE(json.find("/a/b[@x=1]"), std::string::npos);

  std::string table = RenderWorkloadTable(profiler.TopK(5), &names, nullptr);
  EXPECT_NE(table.find("workload profile (exact mode)"), std::string::npos);
  EXPECT_NE(table.find("/a/b[@x=1]"), std::string::npos);
}

}  // namespace
}  // namespace xpred::analytics
