#include "analytics/sketch.h"

#include <algorithm>
#include <map>
#include <vector>

#include "gtest/gtest.h"

#include "common/random.h"

namespace xpred::analytics {
namespace {

TEST(SpaceSavingSketchTest, ExactBelowCapacity) {
  SpaceSavingSketch sketch(8);
  sketch.Add(1, 10);
  sketch.Add(2, 5);
  sketch.Add(1, 7);
  sketch.Add(3, 1);

  ASSERT_EQ(sketch.size(), 3u);
  EXPECT_EQ(sketch.total_weight(), 23u);
  const SpaceSavingSketch::Entry* e = sketch.Find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 17u);
  EXPECT_EQ(e->error, 0u);

  std::vector<SpaceSavingSketch::Entry> top = sketch.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 2u);
}

TEST(SpaceSavingSketchTest, TopKTieBreaksByKey) {
  SpaceSavingSketch sketch(8);
  sketch.Add(9, 3);
  sketch.Add(4, 3);
  sketch.Add(7, 3);
  std::vector<SpaceSavingSketch::Entry> top = sketch.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 4u);
  EXPECT_EQ(top[1].key, 7u);
  EXPECT_EQ(top[2].key, 9u);
}

TEST(SpaceSavingSketchTest, EvictionInheritsCountAsError) {
  SpaceSavingSketch sketch(2);
  sketch.Add(1, 10);
  sketch.Add(2, 3);
  // 3 is unmonitored and the sketch is full: it replaces the minimum
  // entry (key 2, count 3) and inherits its count as error.
  sketch.Add(3, 1);
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_EQ(sketch.Find(2), nullptr);
  const SpaceSavingSketch::Entry* e = sketch.Find(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 4u);  // Evicted count 3 + new weight 1.
  EXPECT_EQ(e->error, 3u);
  // The bound count - error <= true count holds: 4 - 3 = 1 = true.
  EXPECT_EQ(e->count - e->error, 1u);
}

TEST(SpaceSavingSketchTest, AuxCountersResetOnEviction) {
  SpaceSavingSketch sketch(2);
  sketch.Add(1, 10, 2, 1);
  sketch.Add(2, 3, 5, 5);
  sketch.Add(1, 10, 2, 1);
  const SpaceSavingSketch::Entry* e1 = sketch.Find(1);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->aux1, 4u);
  EXPECT_EQ(e1->aux2, 2u);

  sketch.Add(3, 1, 7, 8);  // Evicts key 2; aux starts fresh.
  const SpaceSavingSketch::Entry* e3 = sketch.Find(3);
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e3->aux1, 7u);
  EXPECT_EQ(e3->aux2, 8u);
}

TEST(SpaceSavingSketchTest, ErrorBoundsHoldOnSkewedStream) {
  // Zipf-ish stream over 1000 keys through a K=64 sketch: for every
  // monitored key, count - error <= true <= count, and every key with
  // true count > total/K is monitored (the Space-Saving guarantee).
  SpaceSavingSketch sketch(64);
  std::map<uint64_t, uint64_t> truth;
  Random rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Skew: low keys vastly more frequent.
    uint64_t key = rng.Uniform(rng.Uniform(1000) + 1);
    truth[key] += 1;
    sketch.Add(key, 1);
  }
  EXPECT_EQ(sketch.size(), 64u);
  EXPECT_EQ(sketch.total_weight(), 20000u);

  for (const auto& [key, true_count] : truth) {
    const SpaceSavingSketch::Entry* e = sketch.Find(key);
    if (e != nullptr) {
      EXPECT_LE(e->count - e->error, true_count) << "key " << key;
      EXPECT_GE(e->count, true_count) << "key " << key;
    } else {
      EXPECT_LE(true_count, sketch.total_weight() / sketch.capacity())
          << "heavy key " << key << " not monitored";
    }
  }
}

TEST(ReservoirSamplerTest, KeepsEverythingBelowCapacity) {
  ReservoirSampler<int> sampler(10, 1);
  for (int i = 0; i < 7; ++i) sampler.Add(i);
  EXPECT_EQ(sampler.seen(), 7u);
  ASSERT_EQ(sampler.samples().size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(sampler.samples()[i], i);
}

TEST(ReservoirSamplerTest, BoundedAndUniformish) {
  ReservoirSampler<int> sampler(50, 7);
  for (int i = 0; i < 10000; ++i) sampler.Add(i);
  EXPECT_EQ(sampler.seen(), 10000u);
  ASSERT_EQ(sampler.samples().size(), 50u);
  // A uniform sample of [0, 10000) should not be stuck in the prefix
  // the way a fill-and-stop buffer would be.
  int above = 0;
  for (int v : sampler.samples()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10000);
    if (v >= 5000) ++above;
  }
  EXPECT_GT(above, 5);
  EXPECT_LT(above, 45);
}

TEST(ReservoirSamplerTest, DeterministicForSeed) {
  ReservoirSampler<int> a(16, 99);
  ReservoirSampler<int> b(16, 99);
  for (int i = 0; i < 1000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_EQ(a.samples(), b.samples());
}

}  // namespace
}  // namespace xpred::analytics
