#include "xml/document.h"

#include "gtest/gtest.h"

#include "test_util.h"

namespace xpred::xml {
namespace {

using xpred::testing::ParseXmlOrDie;

TEST(DocumentTest, TreeStructure) {
  Document doc = ParseXmlOrDie("<a><b><c/></b><d/></a>");
  ASSERT_EQ(doc.size(), 4u);
  const Element& a = doc.element(doc.root());
  EXPECT_EQ(a.tag, "a");
  EXPECT_EQ(a.parent, kInvalidNode);
  ASSERT_EQ(a.children.size(), 2u);
  const Element& b = doc.element(a.children[0]);
  const Element& d = doc.element(a.children[1]);
  EXPECT_EQ(b.tag, "b");
  EXPECT_EQ(d.tag, "d");
  EXPECT_EQ(b.children.size(), 1u);
  EXPECT_EQ(doc.element(b.children[0]).tag, "c");
}

TEST(DocumentTest, PreorderIds) {
  Document doc = ParseXmlOrDie("<a><b><c/></b><d/></a>");
  // a=0, b=1, c=2, d=3 in document order.
  EXPECT_EQ(doc.element(0).tag, "a");
  EXPECT_EQ(doc.element(1).tag, "b");
  EXPECT_EQ(doc.element(2).tag, "c");
  EXPECT_EQ(doc.element(3).tag, "d");
}

TEST(DocumentTest, DepthAndChildIndex) {
  Document doc = ParseXmlOrDie("<a><b/><c><d/></c></a>");
  EXPECT_EQ(doc.element(0).depth, 1u);
  EXPECT_EQ(doc.element(0).child_index, 1u);
  EXPECT_EQ(doc.element(1).depth, 2u);       // b
  EXPECT_EQ(doc.element(1).child_index, 1u); // First child of a.
  EXPECT_EQ(doc.element(2).depth, 2u);       // c
  EXPECT_EQ(doc.element(2).child_index, 2u); // Second child of a.
  EXPECT_EQ(doc.element(3).depth, 3u);       // d
  EXPECT_EQ(doc.element(3).child_index, 1u);
}

TEST(DocumentTest, AttributesAndText) {
  Document doc = ParseXmlOrDie("<a x=\"1\"><b>hello</b></a>");
  const std::string* x = doc.element(0).FindAttribute("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(*x, "1");
  EXPECT_EQ(doc.element(0).FindAttribute("y"), nullptr);
  EXPECT_EQ(doc.element(1).text, "hello");
}

TEST(DocumentTest, ToXmlRoundTrip) {
  Document doc = ParseXmlOrDie(
      "<a x=\"1\"><b>hi &amp; bye</b><c kind='q'/></a>");
  std::string serialized = doc.ToXml();
  Document again = ParseXmlOrDie(serialized);
  ASSERT_EQ(again.size(), doc.size());
  for (NodeId i = 0; i < doc.size(); ++i) {
    EXPECT_EQ(again.element(i).tag, doc.element(i).tag);
    EXPECT_EQ(again.element(i).attributes, doc.element(i).attributes);
  }
}

TEST(DocumentTest, MoveSemantics) {
  Document doc = ParseXmlOrDie("<a><b/></a>");
  Document moved = std::move(doc);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.element(0).tag, "a");
}

TEST(DocumentTest, EscapeXml) {
  EXPECT_EQ(EscapeXml("a<b>&'\"c"),
            "a&lt;b&gt;&amp;&apos;&quot;c");
  EXPECT_EQ(EscapeXml(""), "");
  EXPECT_EQ(EscapeXml("plain"), "plain");
}

TEST(DocumentTest, AddElementBuildsTree) {
  Document doc;
  NodeId root = doc.AddElement("r", kInvalidNode);
  NodeId c1 = doc.AddElement("c1", root);
  NodeId c2 = doc.AddElement("c2", root);
  NodeId g = doc.AddElement("g", c1);
  EXPECT_EQ(doc.element(root).children,
            (std::vector<NodeId>{c1, c2}));
  EXPECT_EQ(doc.element(c2).child_index, 2u);
  EXPECT_EQ(doc.element(g).depth, 3u);
}

TEST(DocumentTest, TagCountMetric) {
  Document doc = ParseXmlOrDie("<a><b/><c><d/><e/></c></a>");
  EXPECT_EQ(doc.tag_count(), 5u);
}

}  // namespace
}  // namespace xpred::xml
