#include "xml/path.h"

#include "gtest/gtest.h"

#include "test_util.h"

namespace xpred::xml {
namespace {

using xpred::testing::ParseXmlOrDie;

TEST(PathTest, OnePathPerLeaf) {
  Document doc = ParseXmlOrDie("<a><b><c/></b><d/><e><f/><g/></e></a>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(paths[0].ToString(), "a/b/c");
  EXPECT_EQ(paths[1].ToString(), "a/d");
  EXPECT_EQ(paths[2].ToString(), "a/e/f");
  EXPECT_EQ(paths[3].ToString(), "a/e/g");
}

TEST(PathTest, SingleElementDocument) {
  Document doc = ParseXmlOrDie("<only/>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 1u);
  EXPECT_EQ(paths[0].Tag(1), "only");
  EXPECT_EQ(paths[0].Occurrence(1), 1u);
}

TEST(PathTest, EmptyDocumentHasNoPaths) {
  Document doc;
  EXPECT_TRUE(ExtractPaths(doc).empty());
}

TEST(PathTest, OccurrenceNumbersPaperExample) {
  // Example 1: (a, b, c, a, b, c) annotated (a^1,b^1,c^1,a^2,b^2,c^2).
  Document doc = ParseXmlOrDie("<a><b><c><a><b><c/></b></a></c></b></a>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  const DocumentPath& p = paths[0];
  ASSERT_EQ(p.length(), 6u);
  EXPECT_EQ(p.Occurrence(1), 1u);  // a^1
  EXPECT_EQ(p.Occurrence(2), 1u);  // b^1
  EXPECT_EQ(p.Occurrence(3), 1u);  // c^1
  EXPECT_EQ(p.Occurrence(4), 2u);  // a^2
  EXPECT_EQ(p.Occurrence(5), 2u);  // b^2
  EXPECT_EQ(p.Occurrence(6), 2u);  // c^2
}

TEST(PathTest, OccurrenceCountersResetAcrossBranches) {
  // Each root-to-leaf path counts occurrences independently.
  Document doc = ParseXmlOrDie("<a><a><a/></a><a/></a>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].Occurrence(3), 3u);  // a/a/a
  ASSERT_EQ(paths[1].length(), 2u);
  EXPECT_EQ(paths[1].Occurrence(2), 2u);  // Second path: a/a.
}

TEST(PathTest, ChildIndicesAreStructureTuples) {
  // Paper Figure 4 style: structure tuple <m1, m2, ...>.
  Document doc = ParseXmlOrDie("<a><x/><y><z/></y></a>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 2u);
  // Path a/x: <1, 1>.
  EXPECT_EQ(paths[0].ChildIndex(1), 1u);
  EXPECT_EQ(paths[0].ChildIndex(2), 1u);
  // Path a/y/z: <1, 2, 1>.
  EXPECT_EQ(paths[1].ChildIndex(2), 2u);
  EXPECT_EQ(paths[1].ChildIndex(3), 1u);
}

TEST(PathTest, NodesAndAttributesAccessible) {
  Document doc = ParseXmlOrDie("<a><b k=\"7\"/></a>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].Node(1), doc.root());
  ASSERT_EQ(paths[0].Attributes(2).size(), 1u);
  EXPECT_EQ(paths[0].Attributes(2)[0].name, "k");
}

TEST(PathTest, SharedPrefixesShareNodes) {
  Document doc = ParseXmlOrDie("<a><b><x/><y/></b></a>");
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].Node(1), paths[1].Node(1));
  EXPECT_EQ(paths[0].Node(2), paths[1].Node(2));
  EXPECT_NE(paths[0].Node(3), paths[1].Node(3));
}

TEST(PathTest, WideDocument) {
  std::string xml = "<r>";
  for (int i = 0; i < 100; ++i) xml += "<c/>";
  xml += "</r>";
  Document doc = ParseXmlOrDie(xml);
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  EXPECT_EQ(paths.size(), 100u);
  for (const DocumentPath& p : paths) {
    EXPECT_EQ(p.length(), 2u);
    EXPECT_EQ(p.Occurrence(2), 1u);  // Occurrences are per path.
  }
}

}  // namespace
}  // namespace xpred::xml
