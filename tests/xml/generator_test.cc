#include "xml/generator.h"

#include <set>

#include "gtest/gtest.h"

#include "xml/path.h"
#include "xml/standard_dtds.h"

namespace xpred::xml {
namespace {

TEST(GeneratorTest, DeterministicForSeed) {
  DocumentGenerator gen(&NitfLikeDtd(), {});
  Document d1 = gen.Generate(42);
  Document d2 = gen.Generate(42);
  EXPECT_EQ(d1.ToXml(), d2.ToXml());
  Document d3 = gen.Generate(43);
  EXPECT_NE(d1.ToXml(), d3.ToXml());
}

TEST(GeneratorTest, RootMatchesDtd) {
  DocumentGenerator nitf(&NitfLikeDtd(), {});
  EXPECT_EQ(nitf.Generate(1).element(0).tag, "nitf");
  DocumentGenerator psd(&PsdLikeDtd(), {});
  EXPECT_EQ(psd.Generate(1).element(0).tag, "ProteinDatabase");
}

TEST(GeneratorTest, RespectsMaxDepth) {
  for (uint32_t depth : {6u, 8u, 10u}) {
    DocumentGenerator::Options options;
    options.max_depth = depth;
    DocumentGenerator gen(&NitfLikeDtd(), options);
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Document doc = gen.Generate(seed);
      for (const Element& e : doc.elements()) {
        EXPECT_LE(e.depth, depth);
      }
    }
  }
}

TEST(GeneratorTest, ElementsConformToDtdVocabulary) {
  const Dtd& dtd = PsdLikeDtd();
  DocumentGenerator gen(&dtd, {});
  Document doc = gen.Generate(7);
  for (const Element& e : doc.elements()) {
    EXPECT_NE(dtd.Find(e.tag), nullptr) << e.tag;
  }
}

TEST(GeneratorTest, ChildrenAllowedByContentModel) {
  const Dtd& dtd = PsdLikeDtd();
  DocumentGenerator gen(&dtd, {});
  Document doc = gen.Generate(11);
  for (const Element& e : doc.elements()) {
    const ElementDecl* decl = dtd.Find(e.tag);
    ASSERT_NE(decl, nullptr);
    std::vector<std::string> allowed;
    decl->content.CollectElementNames(&allowed);
    std::set<std::string> allowed_set(allowed.begin(), allowed.end());
    for (NodeId child : e.children) {
      EXPECT_TRUE(allowed_set.count(doc.element(child).tag))
          << e.tag << " -> " << doc.element(child).tag;
    }
  }
}

TEST(GeneratorTest, RequiredAttributesAlwaysPresent) {
  const Dtd& dtd = NitfLikeDtd();
  DocumentGenerator::Options options;
  options.attribute_prob = 0.0;  // Optional attributes suppressed.
  DocumentGenerator gen(&dtd, options);
  Document doc = gen.Generate(3);
  for (const Element& e : doc.elements()) {
    const ElementDecl* decl = dtd.Find(e.tag);
    for (const AttributeDecl& attr : decl->attributes) {
      bool present = e.FindAttribute(attr.name) != nullptr;
      if (attr.required) {
        EXPECT_TRUE(present) << e.tag << "/@" << attr.name;
      } else {
        EXPECT_FALSE(present) << e.tag << "/@" << attr.name;
      }
    }
  }
}

TEST(GeneratorTest, EnumAttributesDrawFromDeclaredValues) {
  const Dtd& dtd = NitfLikeDtd();
  DocumentGenerator gen(&dtd, {});
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Document doc = gen.Generate(seed);
    for (const Element& e : doc.elements()) {
      const ElementDecl* decl = dtd.Find(e.tag);
      for (const Attribute& a : e.attributes) {
        for (const AttributeDecl& ad : decl->attributes) {
          if (ad.name == a.name && !ad.enum_values.empty()) {
            EXPECT_NE(std::find(ad.enum_values.begin(),
                                ad.enum_values.end(), a.value),
                      ad.enum_values.end())
                << e.tag << "/@" << a.name << "=" << a.value;
          }
        }
      }
    }
  }
}

TEST(GeneratorTest, GeneratedDocumentsAreWellFormedXml) {
  DocumentGenerator gen(&NitfLikeDtd(), {});
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Document doc = gen.Generate(seed);
    Result<Document> reparsed = Document::Parse(doc.ToXml());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(reparsed->size(), doc.size());
  }
}

TEST(GeneratorTest, DocumentSizesInPaperBallpark) {
  // The paper's corpus averages ~140 tags per document. Our defaults
  // should land within a broad factor of that (shape, not exactness).
  DocumentGenerator gen(&NitfLikeDtd(), {});
  size_t total = 0;
  const int kDocs = 50;
  for (uint64_t seed = 0; seed < kDocs; ++seed) {
    total += gen.Generate(seed).tag_count();
  }
  double avg = static_cast<double>(total) / kDocs;
  EXPECT_GT(avg, 30.0) << "documents too small to be interesting";
  EXPECT_LT(avg, 1000.0) << "documents far larger than the paper corpus";
}

TEST(GeneratorTest, MaxElementsCapHolds) {
  DocumentGenerator::Options options;
  options.max_elements = 50;
  options.max_depth = 30;
  options.repeat_prob = 0.9;
  options.max_repeats = 8;
  DocumentGenerator gen(&NitfLikeDtd(), options);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_LE(gen.Generate(seed).size(), 50u);
  }
}

TEST(GeneratorTest, PathsExtractable) {
  DocumentGenerator gen(&PsdLikeDtd(), {});
  Document doc = gen.Generate(9);
  std::vector<DocumentPath> paths = ExtractPaths(doc);
  EXPECT_FALSE(paths.empty());
  for (const DocumentPath& p : paths) {
    EXPECT_GE(p.length(), 1u);
  }
}

}  // namespace
}  // namespace xpred::xml
