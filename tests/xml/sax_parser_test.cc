#include "xml/sax.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace xpred::xml {
namespace {

/// Records events as strings for easy assertions.
class RecordingHandler : public ContentHandler {
 public:
  Status StartDocument() override {
    events.push_back("startdoc");
    return Status::OK();
  }
  Status EndDocument() override {
    events.push_back("enddoc");
    return Status::OK();
  }
  Status StartElement(std::string_view name,
                      const std::vector<Attribute>& attributes) override {
    std::string e = "<" + std::string(name);
    for (const Attribute& a : attributes) {
      e += " " + a.name + "=" + a.value;
    }
    e += ">";
    events.push_back(e);
    return Status::OK();
  }
  Status EndElement(std::string_view name) override {
    events.push_back("</" + std::string(name) + ">");
    return Status::OK();
  }
  Status Characters(std::string_view text) override {
    events.push_back("text:" + std::string(text));
    return Status::OK();
  }

  std::vector<std::string> events;
};

std::vector<std::string> ParseEvents(std::string_view xml,
                                     Status* status = nullptr) {
  SaxParser parser;
  RecordingHandler handler;
  Status st = parser.Parse(xml, &handler);
  if (status != nullptr) *status = st;
  return handler.events;
}

TEST(SaxParserTest, SimpleElement) {
  Status st;
  auto events = ParseEvents("<a/>", &st);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(events,
            (std::vector<std::string>{"startdoc", "<a>", "</a>", "enddoc"}));
}

TEST(SaxParserTest, NestedElementsAndText) {
  Status st;
  auto events = ParseEvents("<a><b>hi</b></a>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events, (std::vector<std::string>{"startdoc", "<a>", "<b>",
                                              "text:hi", "</b>", "</a>",
                                              "enddoc"}));
}

TEST(SaxParserTest, Attributes) {
  Status st;
  auto events = ParseEvents("<a x=\"1\" y='two'/>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events[1], "<a x=1 y=two>");
}

TEST(SaxParserTest, AttributeEntityDecoding) {
  Status st;
  auto events = ParseEvents("<a t=\"&lt;&amp;&gt;&quot;&apos;\"/>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events[1], "<a t=<&>\"'>");
}

TEST(SaxParserTest, TextEntitiesAndCharRefs) {
  Status st;
  auto events = ParseEvents("<a>x&amp;y&#65;&#x42;</a>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events[2], "text:x&yAB");
}

TEST(SaxParserTest, Utf8CharRefs) {
  Status st;
  auto events = ParseEvents("<a>&#233;&#x4E2D;</a>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events[2], "text:\xC3\xA9\xE4\xB8\xAD");
}

TEST(SaxParserTest, CdataPassedVerbatim) {
  Status st;
  auto events = ParseEvents("<a><![CDATA[<not>&parsed;]]></a>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events[2], "text:<not>&parsed;");
}

TEST(SaxParserTest, CommentsAndPisSkipped) {
  Status st;
  auto events = ParseEvents(
      "<?xml version=\"1.0\"?><!-- c --><a><!-- c2 --><?pi data?><b/></a>",
      &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events, (std::vector<std::string>{"startdoc", "<a>", "<b>",
                                              "</b>", "</a>", "enddoc"}));
}

TEST(SaxParserTest, DoctypeSkippedIncludingInternalSubset) {
  Status st;
  ParseEvents(
      "<!DOCTYPE a [ <!ELEMENT a (b*)> <!ATTLIST a x CDATA #IMPLIED> ]>"
      "<a/>",
      &st);
  EXPECT_TRUE(st.ok()) << st;
}

TEST(SaxParserTest, WhitespaceTextSkippedByDefault) {
  Status st;
  auto events = ParseEvents("<a>\n  <b/>\n</a>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events, (std::vector<std::string>{"startdoc", "<a>", "<b>",
                                              "</b>", "</a>", "enddoc"}));
}

TEST(SaxParserTest, WhitespaceTextKeptWhenConfigured) {
  SaxParser::Options options;
  options.skip_whitespace_text = false;
  SaxParser parser(options);
  RecordingHandler handler;
  ASSERT_TRUE(parser.Parse("<a> <b/></a>", &handler).ok());
  EXPECT_EQ(handler.events[2], "text: ");
}

TEST(SaxParserTest, SelfClosingEmitsBothEvents) {
  Status st;
  auto events = ParseEvents("<a><b/><c/></a>", &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(events, (std::vector<std::string>{"startdoc", "<a>", "<b>",
                                              "</b>", "<c>", "</c>", "</a>",
                                              "enddoc"}));
}

TEST(SaxParserTest, TrailingMiscAllowed) {
  Status st;
  ParseEvents("<a/>  <!-- after --> <?pi?> ", &st);
  EXPECT_TRUE(st.ok());
}

// --- Error cases --------------------------------------------------------------

struct ErrorCase {
  const char* xml;
  const char* description;
};

class SaxParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(SaxParserErrorTest, Rejected) {
  Status st;
  ParseEvents(GetParam().xml, &st);
  EXPECT_FALSE(st.ok()) << GetParam().description;
  EXPECT_EQ(st.code(), StatusCode::kXmlParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SaxParserErrorTest,
    ::testing::Values(
        ErrorCase{"", "empty input"},
        ErrorCase{"<a>", "unterminated element"},
        ErrorCase{"<a></b>", "mismatched end tag"},
        ErrorCase{"<a><b></a></b>", "crossed nesting"},
        ErrorCase{"<a x=1/>", "unquoted attribute"},
        ErrorCase{"<a x=\"1/>", "unterminated attribute value"},
        ErrorCase{"<a x=\"1\" x=\"2\"/>", "duplicate attribute"},
        ErrorCase{"<a>&nope;</a>", "unknown entity"},
        ErrorCase{"<a>&amp</a>", "unterminated entity"},
        ErrorCase{"<a>&#xG;</a>", "bad hex char ref"},
        ErrorCase{"<a>&#;</a>", "empty char ref"},
        ErrorCase{"<a/><b/>", "two roots"},
        ErrorCase{"text", "no root element"},
        ErrorCase{"<a x=\"<\"/>", "lt in attribute value"},
        ErrorCase{"<a><!-- x </a>", "unterminated comment"},
        ErrorCase{"<a><![CDATA[x</a>", "unterminated CDATA"},
        ErrorCase{"<!DOCTYPE a", "unterminated doctype"},
        ErrorCase{"< a/>", "space before name"},
        ErrorCase{"<a/>junk", "content after root"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      std::string name = info.param.description;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(SaxParserTest, ErrorsCarryLineNumbers) {
  Status st;
  ParseEvents("<a>\n<b>\n</c>\n</a>", &st);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st;
}

TEST(SaxParserTest, DepthLimitEnforced) {
  SaxParser::Options options;
  options.max_depth = 4;
  SaxParser parser(options);
  RecordingHandler handler;
  Status st = parser.Parse("<a><a><a><a><a/></a></a></a></a>", &handler);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(SaxParserTest, HandlerErrorAbortsParse) {
  class FailingHandler : public RecordingHandler {
   public:
    Status StartElement(std::string_view name,
                        const std::vector<Attribute>& attrs) override {
      if (name == "bad") return Status::Internal("handler refused");
      return RecordingHandler::StartElement(name, attrs);
    }
  };
  SaxParser parser;
  FailingHandler handler;
  Status st = parser.Parse("<a><ok/><bad/><never/></a>", &handler);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // <never/> was not reached.
  for (const std::string& e : handler.events) {
    EXPECT_EQ(e.find("never"), std::string::npos);
  }
}

TEST(SaxParserTest, NullHandlerRejected) {
  SaxParser parser;
  EXPECT_FALSE(parser.Parse("<a/>", nullptr).ok());
}

}  // namespace
}  // namespace xpred::xml
