// Pathological-depth regression tests: with the depth guard lifted,
// the SAX parser, Document teardown, the path extractor, and the
// Matcher must all survive a 120k-deep element chain — document depth
// may cost heap, never native stack. (Serialization is exercised at a
// shallower depth because indented output grows quadratically with
// nesting.)

#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/limits.h"
#include "core/matcher.h"
#include "xml/document.h"
#include "xml/path.h"
#include "xml/sax.h"

namespace xpred::xml {
namespace {

constexpr size_t kDeepDepth = 120000;

std::string ChainXml(size_t depth, const char* tag = "a") {
  std::string xml;
  std::string open = std::string("<") + tag + ">";
  std::string close = std::string("</") + tag + ">";
  xml.reserve(depth * (open.size() + close.size()));
  for (size_t i = 0; i < depth; ++i) xml += open;
  for (size_t i = 0; i < depth; ++i) xml += close;
  return xml;
}

SaxParser::Options UnlimitedDepth() {
  SaxParser::Options options;
  options.max_depth = 0;
  return options;
}

TEST(DeepDocumentTest, ParsesExtractsAndTearsDown120kDepth) {
  Result<Document> doc = Document::Parse(ChainXml(kDeepDepth),
                                         UnlimitedDepth());
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->size(), kDeepDepth);

  std::vector<DocumentPath> paths = ExtractPaths(*doc);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), kDeepDepth);
  // Occurrence annotation must count every repetition of the tag.
  EXPECT_EQ(paths[0].Occurrence(static_cast<uint32_t>(kDeepDepth)),
            kDeepDepth);
  // Teardown happens when `doc` leaves scope: it must not recurse.
}

TEST(DeepDocumentTest, BudgetedExtractionStopsEarlyOnDeepDocuments) {
  Result<Document> doc = Document::Parse(ChainXml(kDeepDepth),
                                         UnlimitedDepth());
  ASSERT_TRUE(doc.ok()) << doc.status();
  ResourceLimits limits = ResourceLimits::Unlimited();
  limits.max_extracted_paths = 0;  // Paths are fine; use the deadline...
  ExecBudget budget;
  budget.Arm(limits);
  budget.ForceDeadlineExpiry();
  std::vector<DocumentPath> paths;
  Status st = ExtractPaths(*doc, &budget, &paths);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(DeepDocumentTest, MatcherFiltersDeepDocumentIteratively) {
  // Shallower than the parse/extract test: matcher work grows
  // quadratically with chain depth (per-position occurrence encoding),
  // and 20k already sits far beyond any native-stack recursion limit
  // the matcher could be hiding.
  constexpr size_t kMatcherDepth = 20000;
  Result<Document> doc = Document::Parse(ChainXml(kMatcherDepth),
                                         UnlimitedDepth());
  ASSERT_TRUE(doc.ok()) << doc.status();
  core::Matcher matcher;
  ASSERT_TRUE(matcher.AddExpression("/a/a").ok());
  matcher.set_resource_limits(ResourceLimits::Unlimited());
  std::vector<core::ExprId> matched;
  EXPECT_TRUE(matcher.FilterDocument(*doc, &matched).ok());
}

TEST(DeepDocumentTest, SerializationRoundTripsBeyondTheOldDefaultDepth) {
  // 4096 is deep enough to prove ToXml no longer recurses per element
  // while keeping the (quadratic, indentation-driven) output tractable.
  constexpr size_t kDepth = 4096;
  Result<Document> doc = Document::Parse(ChainXml(kDepth), UnlimitedDepth());
  ASSERT_TRUE(doc.ok()) << doc.status();
  std::string serialized = doc->ToXml();
  Result<Document> again = Document::Parse(serialized, UnlimitedDepth());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->size(), kDepth);
  EXPECT_EQ(again->ToXml(), serialized);
}

TEST(DeepDocumentTest, DepthGuardStillProtectsRecursiveConsumers) {
  // The guard itself must not be lost in the iterative rewrite: the
  // default parser configuration refuses the same chain.
  Result<Document> doc = Document::Parse(ChainXml(1000));
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace xpred::xml
