#include "xml/dtd.h"

#include "gtest/gtest.h"

#include "xml/standard_dtds.h"

namespace xpred::xml {
namespace {

TEST(DtdParserTest, SimpleElementDecl) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!ELEMENT a (b, c?)> <!ELEMENT b (#PCDATA)> <!ELEMENT c EMPTY>", "a");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->vocabulary_size(), 3u);
  const ElementDecl* a = dtd->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->content.kind, ContentParticle::Kind::kSequence);
  ASSERT_EQ(a->content.children.size(), 2u);
  EXPECT_EQ(a->content.children[0].name, "b");
  EXPECT_EQ(a->content.children[0].repeat, Repeat::kOne);
  EXPECT_EQ(a->content.children[1].repeat, Repeat::kOptional);
  EXPECT_EQ(dtd->Find("b")->content.kind, ContentParticle::Kind::kPcdata);
  EXPECT_EQ(dtd->Find("c")->content.kind, ContentParticle::Kind::kEmpty);
}

TEST(DtdParserTest, ChoiceAndRepetition) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!ELEMENT a (b | c)*> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>", "a");
  ASSERT_TRUE(dtd.ok());
  const ContentParticle& content = dtd->Find("a")->content;
  EXPECT_EQ(content.kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(content.repeat, Repeat::kStar);
  EXPECT_EQ(content.children.size(), 2u);
}

TEST(DtdParserTest, NestedGroups) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!ELEMENT a (b, (c | d)+, b?)>"
      "<!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>",
      "a");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const ContentParticle& content = dtd->Find("a")->content;
  ASSERT_EQ(content.children.size(), 3u);
  EXPECT_EQ(content.children[1].kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(content.children[1].repeat, Repeat::kPlus);
}

TEST(DtdParserTest, MixedContent) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!ELEMENT p (#PCDATA | em)*> <!ELEMENT em (#PCDATA)>", "p");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const ContentParticle& content = dtd->Find("p")->content;
  EXPECT_EQ(content.kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(content.repeat, Repeat::kStar);
}

TEST(DtdParserTest, Attlist) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!ELEMENT a EMPTY>"
      "<!ATTLIST a x CDATA #REQUIRED"
      "            y CDATA #IMPLIED"
      "            kind (red|green|blue) #IMPLIED"
      "            fixed CDATA #FIXED \"v\""
      "            dflt CDATA \"42\">",
      "a");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const ElementDecl* a = dtd->Find("a");
  ASSERT_EQ(a->attributes.size(), 5u);
  EXPECT_TRUE(a->attributes[0].required);
  EXPECT_FALSE(a->attributes[1].required);
  EXPECT_EQ(a->attributes[2].enum_values,
            (std::vector<std::string>{"red", "green", "blue"}));
  EXPECT_TRUE(a->attributes[3].required);  // #FIXED
}

TEST(DtdParserTest, CommentsIgnored) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!-- header --> <!ELEMENT a EMPTY> <!-- footer -->", "a");
  EXPECT_TRUE(dtd.ok()) << dtd.status();
}

TEST(DtdParserTest, CollectElementNames) {
  Result<Dtd> dtd = Dtd::Parse(
      "<!ELEMENT a (b, (c | d)*, b)> <!ELEMENT b EMPTY>"
      "<!ELEMENT c EMPTY> <!ELEMENT d EMPTY>",
      "a");
  ASSERT_TRUE(dtd.ok());
  std::vector<std::string> names;
  dtd->Find("a")->content.CollectElementNames(&names);
  EXPECT_EQ(names, (std::vector<std::string>{"b", "c", "d", "b"}));
}

// --- Validation ----------------------------------------------------------------

TEST(DtdValidationTest, UndeclaredRootRejected) {
  Result<Dtd> dtd = Dtd::Parse("<!ELEMENT a EMPTY>", "missing");
  EXPECT_FALSE(dtd.ok());
}

TEST(DtdValidationTest, UndeclaredChildRejected) {
  Result<Dtd> dtd = Dtd::Parse("<!ELEMENT a (ghost)>", "a");
  EXPECT_FALSE(dtd.ok());
}

TEST(DtdValidationTest, DuplicateDeclarationRejected) {
  Result<Dtd> dtd =
      Dtd::Parse("<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>", "a");
  EXPECT_FALSE(dtd.ok());
}

TEST(DtdValidationTest, AttlistForUndeclaredElementRejected) {
  Result<Dtd> dtd =
      Dtd::Parse("<!ELEMENT a EMPTY> <!ATTLIST ghost x CDATA #IMPLIED>",
                 "a");
  EXPECT_FALSE(dtd.ok());
}

TEST(DtdValidationTest, SyntaxErrors) {
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b,>", "a").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b | c, d)>", "a").ok());  // Mixed seps.
  EXPECT_FALSE(Dtd::Parse("<!WHATEVER>", "a").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a BOGUS>", "a").ok());
}

// --- Embedded standard DTDs -----------------------------------------------------

TEST(StandardDtdsTest, NitfLikeParsesAndValidates) {
  const Dtd& dtd = NitfLikeDtd();
  EXPECT_EQ(dtd.root(), "nitf");
  // Large vocabulary, the workload characteristic the experiments need.
  EXPECT_GE(dtd.vocabulary_size(), 100u);
  EXPECT_NE(dtd.Find("body.content"), nullptr);
  EXPECT_NE(dtd.Find("hl1"), nullptr);
}

TEST(StandardDtdsTest, PsdLikeParsesAndValidates) {
  const Dtd& dtd = PsdLikeDtd();
  EXPECT_EQ(dtd.root(), "ProteinDatabase");
  // Small vocabulary.
  EXPECT_LE(dtd.vocabulary_size(), 60u);
  EXPECT_GE(dtd.vocabulary_size(), 30u);
  EXPECT_NE(dtd.Find("ProteinEntry"), nullptr);
  EXPECT_NE(dtd.Find("sequence"), nullptr);
}

TEST(StandardDtdsTest, NitfHasHigherAttributeDensity) {
  // The paper relies on NITF documents carrying more attributes than
  // PSD ones (§6.4).
  auto density = [](const Dtd& dtd) {
    size_t attrs = 0;
    for (const ElementDecl& e : dtd.elements()) attrs += e.attributes.size();
    return static_cast<double>(attrs) /
           static_cast<double>(dtd.vocabulary_size());
  };
  EXPECT_GT(density(NitfLikeDtd()), 2 * density(PsdLikeDtd()));
}

}  // namespace
}  // namespace xpred::xml
