#ifndef XPRED_YFILTER_YFILTER_H_
#define XPRED_YFILTER_YFILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "core/engine.h"
#include "xpath/ast.h"

namespace xpred::yfilter {

/// \brief Reimplementation of YFilter (Diao et al.), the paper's
/// automaton-based comparison baseline.
///
/// All expressions share one NFA over location steps: common prefixes
/// share states; '*' is a wildcard transition; '//' routes through a
/// per-state descendant hub with a self-loop. Execution is driven by
/// document events with a run-time stack of active state sets, and —
/// unlike a classical NFA — continues until every reachable accepting
/// state has been visited, so all matching expressions are reported.
///
/// Attribute and nested-path filters use the selection-postponed
/// strategy (the configuration the YFilter paper recommends and the
/// one used in the paper's §6.4): the NFA matches the structural
/// skeleton, and candidates are then verified exactly on the document
/// tree.
class YFilter : public core::FilterEngine {
 public:
  YFilter() = default;

  Result<core::ExprId> AddExpression(std::string_view xpath) override;
  Result<core::ExprId> AddParsedExpression(const xpath::PathExpr& expr);

  Status FilterDocument(const xml::Document& document,
                        std::vector<core::ExprId>* matched) override;

  size_t subscription_count() const override { return next_sid_; }
  std::string_view name() const override { return "yfilter"; }

  /// NFA size (states), a workload-complexity metric.
  size_t state_count() const { return states_.size(); }
  /// Distinct structural skeletons stored.
  size_t distinct_expression_count() const { return exprs_.size(); }

  size_t ApproximateMemoryBytes() const override;

 private:
  static constexpr uint32_t kNoState = UINT32_MAX;

  struct State {
    std::unordered_map<SymbolId, uint32_t> tag_moves;
    uint32_t star_move = kNoState;
    /// Descendant hub: entered on '//', loops on any element.
    uint32_t hub = kNoState;
    bool self_loop = false;
    /// Internal expressions accepted here.
    std::vector<uint32_t> accept;
  };

  struct Internal {
    /// Full expression, kept for selection-postponed verification.
    xpath::PathExpr expr;
    bool needs_verify = false;
    std::vector<core::ExprId> subscribers;
    uint32_t matched_epoch = 0;
    uint32_t candidate_epoch = 0;
  };

  uint32_t NewState();
  /// Inserts the structural skeleton of \p expr; returns the accepting
  /// state.
  uint32_t InsertPath(const xpath::PathExpr& expr);

  void ExecuteElement(SymbolId tag, const std::vector<uint32_t>& current,
                      std::vector<uint32_t>* next);
  Status Traverse(const xml::Document& document, xml::NodeId node,
                  std::vector<std::vector<uint32_t>>* stack);
  void Accept(uint32_t state_id);

  Interner interner_;
  std::vector<State> states_{1};  // states_[0] is the start state.
  std::vector<Internal> exprs_;
  std::unordered_map<std::string, uint32_t> dedup_;
  core::ExprId next_sid_ = 0;

  uint32_t doc_epoch_ = 0;
  std::vector<uint32_t> doc_matched_;
  std::vector<uint32_t> doc_candidates_;
};

}  // namespace xpred::yfilter

#endif  // XPRED_YFILTER_YFILTER_H_
