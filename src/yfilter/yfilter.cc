#include "yfilter/yfilter.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/memory_usage.h"
#include "obs/scoped_timer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpred::yfilter {

using core::ExprId;
using xpath::Axis;
using xpath::PathExpr;
using xpath::Step;

uint32_t YFilter::NewState() {
  states_.emplace_back();
  return static_cast<uint32_t>(states_.size() - 1);
}

uint32_t YFilter::InsertPath(const PathExpr& expr) {
  uint32_t current = 0;
  for (size_t i = 0; i < expr.steps.size(); ++i) {
    const Step& step = expr.steps[i];
    // A relative expression may start anywhere: route its first step
    // through the start state's descendant hub, exactly like a leading
    // '//'.
    bool descendant = (step.axis == Axis::kDescendant) ||
                      (i == 0 && !expr.absolute);
    if (descendant) {
      if (states_[current].hub == kNoState) {
        uint32_t hub = NewState();
        states_[hub].self_loop = true;
        states_[current].hub = hub;
      }
      current = states_[current].hub;
    }
    if (step.wildcard) {
      if (states_[current].star_move == kNoState) {
        states_[current].star_move = NewState();
      }
      current = states_[current].star_move;
    } else {
      SymbolId tag = interner_.Intern(step.tag);
      auto it = states_[current].tag_moves.find(tag);
      if (it != states_[current].tag_moves.end()) {
        current = it->second;
      } else {
        uint32_t next = NewState();
        states_[current].tag_moves.emplace(tag, next);
        current = next;
      }
    }
  }
  return current;
}

Result<ExprId> YFilter::AddExpression(std::string_view xpath) {
  Result<PathExpr> parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return AddParsedExpression(*parsed);
}

Result<ExprId> YFilter::AddParsedExpression(const PathExpr& expr) {
  if (expr.steps.empty()) {
    return Status::InvalidArgument("expression has no location steps");
  }
  std::string canonical = expr.ToString();
  auto it = dedup_.find(canonical);
  if (it != dedup_.end()) {
    ExprId sid = next_sid_++;
    exprs_[it->second].subscribers.push_back(sid);
    return sid;
  }

  // The NFA matches the structural skeleton: filters are stripped and
  // verified in the selection-postponed stage.
  PathExpr skeleton;
  skeleton.absolute = expr.absolute;
  bool needs_verify = false;
  for (const Step& step : expr.steps) {
    Step s;
    s.axis = step.axis;
    s.wildcard = step.wildcard;
    s.tag = step.tag;
    skeleton.steps.push_back(std::move(s));
    if (step.HasFilters()) needs_verify = true;
  }

  uint32_t accept_state = InsertPath(skeleton);
  uint32_t internal = static_cast<uint32_t>(exprs_.size());
  Internal rec;
  rec.expr = expr;
  rec.needs_verify = needs_verify;
  exprs_.push_back(std::move(rec));
  states_[accept_state].accept.push_back(internal);

  ExprId sid = next_sid_++;
  exprs_[internal].subscribers.push_back(sid);
  dedup_.emplace(std::move(canonical), internal);
  return sid;
}

void YFilter::Accept(uint32_t state_id) {
  for (uint32_t internal : states_[state_id].accept) {
    Internal& e = exprs_[internal];
    if (e.needs_verify) {
      if (e.candidate_epoch != doc_epoch_) {
        e.candidate_epoch = doc_epoch_;
        doc_candidates_.push_back(internal);
      }
    } else if (e.matched_epoch != doc_epoch_) {
      e.matched_epoch = doc_epoch_;
      doc_matched_.push_back(internal);
    }
  }
}

void YFilter::ExecuteElement(SymbolId tag,
                             const std::vector<uint32_t>& current,
                             std::vector<uint32_t>* next) {
  next->clear();
  for (uint32_t state_id : current) {
    const State& state = states_[state_id];
    // Descendant hubs stay active for the whole subtree.
    if (state.self_loop) next->push_back(state_id);
    if (tag != kInvalidSymbol) {
      auto it = state.tag_moves.find(tag);
      if (it != state.tag_moves.end()) next->push_back(it->second);
    }
    if (state.star_move != kNoState) next->push_back(state.star_move);
    // Entering an element also activates the state's hub (the '//'
    // may skip zero further levels before its tag transition), so hub
    // transitions must be taken for this element too.
    if (state.hub != kNoState) {
      const State& hub = states_[state.hub];
      next->push_back(state.hub);
      if (tag != kInvalidSymbol) {
        auto it = hub.tag_moves.find(tag);
        if (it != hub.tag_moves.end()) next->push_back(it->second);
      }
      if (hub.star_move != kNoState) next->push_back(hub.star_move);
    }
  }
  std::sort(next->begin(), next->end());
  next->erase(std::unique(next->begin(), next->end()), next->end());
  for (uint32_t state_id : *next) {
    if (!states_[state_id].accept.empty()) Accept(state_id);
  }
}

// Recursion depth is bounded by the engine's max_element_depth limit,
// enforced in BeginGoverned before traversal starts.
Status YFilter::Traverse(const xml::Document& document, xml::NodeId node,
                         std::vector<std::vector<uint32_t>>* stack) {
  XPRED_FAULT_POINT(faultsite::kYFilterTraverse);
  XPRED_RETURN_NOT_OK(budget().CheckDeadline());
  const xml::Element& element = document.element(node);
  SymbolId tag = interner_.Lookup(element.tag);
  stack->emplace_back();
  {
    // Compute into the new top from the previous top.
    std::vector<uint32_t>& next = stack->back();
    const std::vector<uint32_t>& current = (*stack)[stack->size() - 2];
    ExecuteElement(tag, current, &next);
  }
  if (!stack->back().empty()) {
    for (xml::NodeId child : element.children) {
      XPRED_RETURN_NOT_OK(Traverse(document, child, stack));
    }
  }
  stack->pop_back();
  return Status::OK();
}

Status YFilter::FilterDocument(const xml::Document& document,
                               std::vector<ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  XPRED_RETURN_NOT_OK(BeginGoverned(document));
  ++doc_epoch_;
  doc_matched_.clear();
  doc_candidates_.clear();
  obs::EngineInstruments& instruments = inst();
  instruments.BeginDocument();
  if (document.empty()) {
    instruments.EndDocument();
    return Status::OK();
  }

  {
    // NFA execution is this engine's stage-1 analogue.
    obs::ScopedTimer timer(&instruments, obs::Stage::kPredicate);
    std::vector<std::vector<uint32_t>> stack;
    stack.push_back({0});  // Start state active before the root element.
    XPRED_RETURN_NOT_OK(Traverse(document, document.root(), &stack));

    // Selection-postponed verification of structurally matched
    // candidates with filters.
    if (!doc_candidates_.empty()) {
      timer.Rotate(obs::Stage::kVerify);
      for (uint32_t internal : doc_candidates_) {
        Internal& e = exprs_[internal];
        if (e.matched_epoch == doc_epoch_) continue;
        if (xpath::Evaluator::Matches(e.expr, document)) {
          e.matched_epoch = doc_epoch_;
          doc_matched_.push_back(internal);
        }
      }
    }

    timer.Rotate(obs::Stage::kCollect);
    for (uint32_t internal : doc_matched_) {
      const Internal& e = exprs_[internal];
      matched->insert(matched->end(), e.subscribers.begin(),
                      e.subscribers.end());
    }
  }
  instruments.EndDocument();
  return Status::OK();
}

size_t YFilter::ApproximateMemoryBytes() const {
  size_t total = interner_.ApproximateMemoryBytes() + VectorBytes(states_);
  for (const State& state : states_) {
    total += UnorderedOverheadBytes(state.tag_moves) +
             state.tag_moves.size() * (sizeof(SymbolId) + sizeof(uint32_t));
    total += VectorBytes(state.accept);
  }
  total += VectorBytes(exprs_);
  for (const Internal& e : exprs_) {
    total += VectorBytes(e.expr.steps) + VectorBytes(e.subscribers);
  }
  total += UnorderedOverheadBytes(dedup_);
  for (const auto& [canonical, id] : dedup_) {
    total += sizeof(canonical) + sizeof(id) + StringBytes(canonical);
  }
  return total;
}

}  // namespace xpred::yfilter
