#include "xml/generator.h"

#include "common/string_util.h"

namespace xpred::xml {

Document DocumentGenerator::Generate(uint64_t seed) const {
  GenState state(seed);
  const ElementDecl* root_decl = dtd_->Find(dtd_->root());
  NodeId root = state.doc.AddElement(dtd_->root(), kInvalidNode);
  ++state.element_count;
  ExpandElement(*root_decl, root, /*depth=*/1, &state);
  return std::move(state.doc);
}

uint32_t DocumentGenerator::DrawRepeats(Repeat repeat, Random* rng) const {
  switch (repeat) {
    case Repeat::kOne:
      return 1;
    case Repeat::kOptional:
      return rng->Bernoulli(options_.optional_prob) ? 1 : 0;
    case Repeat::kStar:
    case Repeat::kPlus: {
      uint32_t n = (repeat == Repeat::kPlus) ? 1 : 0;
      // '*' starts by deciding whether to emit anything at all, using
      // the same optional probability as '?'.
      if (repeat == Repeat::kStar) {
        if (!rng->Bernoulli(options_.optional_prob)) return 0;
        n = 1;
      }
      while (n < options_.max_repeats &&
             rng->Bernoulli(options_.repeat_prob)) {
        ++n;
      }
      return n;
    }
  }
  return 1;
}

void DocumentGenerator::EmitChild(const std::string& name, NodeId parent,
                                  uint32_t depth, GenState* state) const {
  if (state->element_count >= options_.max_elements) return;
  const ElementDecl* decl = dtd_->Find(name);
  NodeId node = state->doc.AddElement(name, parent);
  ++state->element_count;
  ExpandElement(*decl, node, depth + 1, state);
}

void DocumentGenerator::ExpandElement(const ElementDecl& decl, NodeId node,
                                      uint32_t depth, GenState* state) const {
  // Attributes first (content expansion may invalidate no references,
  // but keeps output deterministic and readable).
  for (const AttributeDecl& attr : decl.attributes) {
    if (!attr.required && !state->rng.Bernoulli(options_.attribute_prob)) {
      continue;
    }
    Attribute out;
    out.name = attr.name;
    if (!attr.enum_values.empty()) {
      out.value = state->rng.Pick(attr.enum_values);
    } else {
      out.value = StringPrintf(
          "%u", static_cast<uint32_t>(
                    state->rng.Uniform(options_.attribute_value_range)));
    }
    state->doc.element(node).attributes.push_back(std::move(out));
  }

  // Prune content below the maximum level, as the IBM generator does.
  if (depth >= options_.max_depth) {
    if (decl.content.kind == ContentParticle::Kind::kPcdata ||
        decl.content.kind == ContentParticle::Kind::kChoice ||
        decl.content.kind == ContentParticle::Kind::kSequence) {
      state->doc.element(node).text =
          StringPrintf("t%u", static_cast<uint32_t>(state->rng.Uniform(1000)));
    }
    return;
  }

  ExpandParticle(decl.content, node, depth, state);

  // Pure-PCDATA elements get a short random token.
  if (decl.content.kind == ContentParticle::Kind::kPcdata &&
      state->doc.element(node).children.empty()) {
    state->doc.element(node).text =
        StringPrintf("t%u", static_cast<uint32_t>(state->rng.Uniform(1000)));
  }
}

void DocumentGenerator::ExpandParticle(const ContentParticle& particle,
                                       NodeId parent, uint32_t depth,
                                       GenState* state) const {
  uint32_t repeats = DrawRepeats(particle.repeat, &state->rng);
  for (uint32_t r = 0; r < repeats; ++r) {
    switch (particle.kind) {
      case ContentParticle::Kind::kEmpty:
        return;
      case ContentParticle::Kind::kPcdata:
        // Text content handled by the caller for pure-PCDATA elements;
        // inside mixed content we simply skip (structure is what the
        // filtering workloads exercise).
        break;
      case ContentParticle::Kind::kElement:
        EmitChild(particle.name, parent, depth, state);
        break;
      case ContentParticle::Kind::kSequence:
        for (const ContentParticle& child : particle.children) {
          ExpandParticle(child, parent, depth, state);
        }
        break;
      case ContentParticle::Kind::kChoice: {
        // Mixed content ((#PCDATA | a | b)*): bias toward text so
        // documents don't explode; otherwise pick a uniform branch.
        bool mixed = false;
        for (const ContentParticle& child : particle.children) {
          if (child.kind == ContentParticle::Kind::kPcdata) mixed = true;
        }
        if (mixed && !state->rng.Bernoulli(options_.mixed_element_prob)) {
          break;  // Emit text (implicitly), no element this round.
        }
        // Collect non-PCDATA branches.
        std::vector<const ContentParticle*> branches;
        for (const ContentParticle& child : particle.children) {
          if (child.kind != ContentParticle::Kind::kPcdata) {
            branches.push_back(&child);
          }
        }
        if (branches.empty()) break;
        const ContentParticle* pick =
            branches[state->rng.Uniform(branches.size())];
        ExpandParticle(*pick, parent, depth, state);
        break;
      }
    }
  }
}

}  // namespace xpred::xml
