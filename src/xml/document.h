#ifndef XPRED_XML_DOCUMENT_H_
#define XPRED_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/sax.h"

namespace xpred::xml {

/// Pre-order index of an element within its document. The root is node 0.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// \brief An element in a parsed XML document.
///
/// Nodes are owned by the Document in a flat pre-order vector;
/// parent/child links are NodeIds, which makes structural-join ids
/// (Index-Filter's start/end numbering, the paper's structure tuples)
/// trivial to derive.
struct Element {
  std::string tag;
  std::vector<Attribute> attributes;
  /// Concatenated character data directly under this element.
  std::string text;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
  /// 1-based index among the parent's element children; 1 for the root.
  /// These are the paper's structure-tuple entries m_k (§5, Fig. 4).
  uint32_t child_index = 1;
  /// 1-based depth; the root has depth 1.
  uint32_t depth = 1;

  /// Returns the value of attribute \p name, or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const {
    for (const Attribute& a : attributes) {
      if (a.name == name) return &a.value;
    }
    return nullptr;
  }
};

/// \brief A parsed XML document: a flat pre-order array of elements.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Parses \p text into a document.
  static Result<Document> Parse(std::string_view text);

  /// Parses \p text under explicit parser options (resource limits,
  /// deadline budget). Violations surface as kResourceExhausted /
  /// kDeadlineExceeded.
  static Result<Document> Parse(std::string_view text,
                                const SaxParser::Options& options);

  bool empty() const { return elements_.empty(); }
  size_t size() const { return elements_.size(); }

  const Element& element(NodeId id) const { return elements_[id]; }
  Element& element(NodeId id) { return elements_[id]; }

  NodeId root() const { return 0; }

  const std::vector<Element>& elements() const { return elements_; }

  /// Appends an element and returns its id. \p parent must already
  /// exist (or kInvalidNode for the root). Used by the builder and the
  /// document generator.
  NodeId AddElement(std::string tag, NodeId parent);

  /// Serializes the document back to XML text (no declaration, two-space
  /// indent).
  std::string ToXml() const;

  /// Total number of tags — the "140 tags on average" document-size
  /// metric used in the paper's §6.1.
  size_t tag_count() const { return elements_.size(); }

 private:
  std::vector<Element> elements_;
};

/// \brief SAX handler that builds a Document. Exposed so callers can
/// feed it from a custom event source.
class DocumentBuilder : public ContentHandler {
 public:
  Status StartElement(std::string_view name,
                      const std::vector<Attribute>& attributes) override;
  Status EndElement(std::string_view name) override;
  Status Characters(std::string_view text) override;

  /// Takes the built document. Call once, after a successful parse.
  Document TakeDocument() { return std::move(document_); }

 private:
  Document document_;
  std::vector<NodeId> stack_;
};

/// Escapes the five special characters for use in text content or
/// attribute values.
std::string EscapeXml(std::string_view text);

}  // namespace xpred::xml

#endif  // XPRED_XML_DOCUMENT_H_
