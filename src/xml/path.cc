#include "xml/path.h"

#include <unordered_map>

#include "common/limits.h"

namespace xpred::xml {

std::string DocumentPath::ToString() const {
  std::string out;
  for (uint32_t pos = 1; pos <= length(); ++pos) {
    if (pos > 1) out.push_back('/');
    out.append(Tag(pos));
  }
  return out;
}

namespace {

/// Iterative DFS that maintains tag occurrence counts along the current
/// root-to-node path. An explicit frame stack (not recursion) keeps
/// native stack usage constant regardless of document depth.
class PathCollector {
 public:
  PathCollector(const Document& document, ExecBudget* budget)
      : document_(document), budget_(budget) {}

  Status Collect(std::vector<DocumentPath>* out) {
    if (document_.empty()) return Status::OK();
    XPRED_RETURN_NOT_OK(Enter(document_.root()));
    while (!stack_.empty()) {
      Frame& frame = stack_.back();
      const Element& element = document_.element(frame.node);
      if (frame.next_child < element.children.size()) {
        NodeId child = element.children[frame.next_child++];
        XPRED_RETURN_NOT_OK(Enter(child));
        continue;
      }
      --tag_counts_[element.tag];
      current_.pop_back();
      stack_.pop_back();
    }
    *out = std::move(paths_);
    return Status::OK();
  }

 private:
  struct Frame {
    NodeId node;
    size_t next_child = 0;
  };

  /// Opens \p node on the current path; records the path when it is a
  /// leaf.
  Status Enter(NodeId node) {
    if (budget_ != nullptr) XPRED_RETURN_NOT_OK(budget_->CheckDeadline());
    const Element& element = document_.element(node);
    uint32_t& count = tag_counts_[element.tag];
    ++count;
    current_.push_back(PathStep{node, count});
    if (element.children.empty()) {
      if (budget_ != nullptr) XPRED_RETURN_NOT_OK(budget_->AddPath());
      paths_.emplace_back(&document_, current_);
    }
    stack_.push_back(Frame{node});
    return Status::OK();
  }

  const Document& document_;
  ExecBudget* budget_;
  std::unordered_map<std::string, uint32_t> tag_counts_;
  std::vector<PathStep> current_;
  std::vector<Frame> stack_;
  std::vector<DocumentPath> paths_;
};

}  // namespace

std::vector<DocumentPath> ExtractPaths(const Document& document) {
  std::vector<DocumentPath> paths;
  // Without a budget the collector cannot fail.
  Status st = PathCollector(document, nullptr).Collect(&paths);
  (void)st;
  return paths;
}

Status ExtractPaths(const Document& document, ExecBudget* budget,
                    std::vector<DocumentPath>* out) {
  return PathCollector(document, budget).Collect(out);
}

}  // namespace xpred::xml
