#include "xml/path.h"

#include <unordered_map>

namespace xpred::xml {

std::string DocumentPath::ToString() const {
  std::string out;
  for (uint32_t pos = 1; pos <= length(); ++pos) {
    if (pos > 1) out.push_back('/');
    out.append(Tag(pos));
  }
  return out;
}

namespace {

/// Iterative DFS that maintains tag occurrence counts along the current
/// root-to-node path.
class PathCollector {
 public:
  explicit PathCollector(const Document& document) : document_(document) {}

  std::vector<DocumentPath> Collect() {
    if (document_.empty()) return {};
    Visit(document_.root());
    return std::move(paths_);
  }

 private:
  void Visit(NodeId node) {
    const Element& element = document_.element(node);
    uint32_t& count = tag_counts_[element.tag];
    ++count;
    current_.push_back(PathStep{node, count});

    if (element.children.empty()) {
      paths_.emplace_back(&document_, current_);
    } else {
      for (NodeId child : element.children) Visit(child);
    }

    current_.pop_back();
    --count;
  }

  const Document& document_;
  std::unordered_map<std::string, uint32_t> tag_counts_;
  std::vector<PathStep> current_;
  std::vector<DocumentPath> paths_;
};

}  // namespace

std::vector<DocumentPath> ExtractPaths(const Document& document) {
  PathCollector collector(document);
  return collector.Collect();
}

}  // namespace xpred::xml
