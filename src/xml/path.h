#ifndef XPRED_XML_PATH_H_
#define XPRED_XML_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xml/document.h"

namespace xpred::xml {

/// One location step of a root-to-leaf document path.
struct PathStep {
  /// The element this step refers to.
  NodeId node = kInvalidNode;
  /// Occurrence number of the tag within the path: counts how many
  /// times this tag name has already appeared in the path, starting at
  /// 1 (paper §3.3, Example 1: path (a,b,c,a,b,c) is annotated
  /// (a^1,b^1,c^1,a^2,b^2,c^2)).
  uint32_t occurrence = 1;
};

/// \brief A root-to-leaf path through a document, with the annotations
/// the paper's encodings need.
///
/// Positions are 1-based (the root element is position 1). The
/// structure tuple <m_1, ..., m_n> of §5 / Fig. 4 is available via
/// ChildIndex(i).
class DocumentPath {
 public:
  DocumentPath(const Document* document, std::vector<PathStep> steps)
      : document_(document), steps_(std::move(steps)) {}

  /// Number of location steps (the publication's `length` attribute).
  uint32_t length() const { return static_cast<uint32_t>(steps_.size()); }

  /// Tag name at 1-based position \p pos.
  std::string_view Tag(uint32_t pos) const {
    return document_->element(steps_[pos - 1].node).tag;
  }

  /// Occurrence number of the tag at 1-based position \p pos.
  uint32_t Occurrence(uint32_t pos) const {
    return steps_[pos - 1].occurrence;
  }

  /// Document node at 1-based position \p pos.
  NodeId Node(uint32_t pos) const { return steps_[pos - 1].node; }

  /// Structure-tuple entry m_pos: the 1-based child index of the
  /// element at \p pos within its parent (1 for the root).
  uint32_t ChildIndex(uint32_t pos) const {
    return document_->element(steps_[pos - 1].node).child_index;
  }

  /// Attributes of the element at 1-based position \p pos.
  const std::vector<Attribute>& Attributes(uint32_t pos) const {
    return document_->element(steps_[pos - 1].node).attributes;
  }

  const Document& document() const { return *document_; }

  /// Renders the path as "a/b/c" (diagnostics and tests).
  std::string ToString() const;

 private:
  const Document* document_;
  std::vector<PathStep> steps_;
};

/// \brief Extracts every root-to-leaf path of \p document, with
/// per-path tag occurrence numbers.
///
/// This is the "collecting" stage of §3.1. The extraction is a single
/// DFS; occurrence counters are maintained incrementally along the
/// current path (the paper's per-path hash table).
std::vector<DocumentPath> ExtractPaths(const Document& document);

/// Budget-governed variant: honors the budget's extracted-path cap and
/// deadline checkpoints, failing with kResourceExhausted /
/// kDeadlineExceeded instead of silently truncating. \p budget may be
/// null (never fails then).
Status ExtractPaths(const Document& document, ExecBudget* budget,
                    std::vector<DocumentPath>* out);

}  // namespace xpred::xml

#endif  // XPRED_XML_PATH_H_
