#ifndef XPRED_XML_DTD_H_
#define XPRED_XML_DTD_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xpred::xml {

/// Repetition modifier on a content-model particle.
enum class Repeat {
  kOne,       ///< exactly once
  kOptional,  ///< '?'
  kStar,      ///< '*'
  kPlus,      ///< '+'
};

/// \brief A node in an element's content model:
/// EMPTY | (#PCDATA) | element ref | sequence | choice, each with a
/// repetition modifier.
struct ContentParticle {
  enum class Kind { kEmpty, kPcdata, kElement, kSequence, kChoice };

  Kind kind = Kind::kEmpty;
  Repeat repeat = Repeat::kOne;
  /// Element name when kind == kElement.
  std::string name;
  /// Sub-particles when kind is kSequence or kChoice.
  std::vector<ContentParticle> children;

  /// Collects the names of all elements referenced anywhere below this
  /// particle.
  void CollectElementNames(std::vector<std::string>* out) const;
};

/// How attribute values are generated for a declared attribute.
struct AttributeDecl {
  std::string name;
  /// Enumerated values, from "(a|b|c)" declarations; empty means CDATA
  /// (the generator then emits a small random integer so numeric
  /// attribute predicates are meaningful).
  std::vector<std::string> enum_values;
  /// True for #REQUIRED attributes; optional ones appear with a
  /// generator-controlled probability.
  bool required = false;
};

/// \brief One <!ELEMENT ...> declaration plus its <!ATTLIST ...>.
struct ElementDecl {
  std::string name;
  ContentParticle content;
  std::vector<AttributeDecl> attributes;
};

/// \brief A (simplified) Document Type Definition.
///
/// Parsed from standard DTD syntax: <!ELEMENT name model> and
/// <!ATTLIST name attr type default> declarations. Entity declarations
/// and notations are not supported — the embedded NITF-like / PSD-like
/// DTDs don't need them.
class Dtd {
 public:
  /// Parses DTD text. \p root_name names the document element (DTD
  /// syntax itself does not designate a root).
  static Result<Dtd> Parse(std::string_view text, std::string root_name);

  const std::string& root() const { return root_; }

  /// Looks up a declaration; nullptr when \p name is not declared.
  const ElementDecl* Find(std::string_view name) const;

  /// All declarations in declaration order.
  const std::vector<ElementDecl>& elements() const { return elements_; }

  /// Distinct element-name vocabulary size (the knob separating the
  /// NITF-like and PSD-like workloads).
  size_t vocabulary_size() const { return elements_.size(); }

  /// Verifies that the root and every referenced child element are
  /// declared.
  Status Validate() const;

 private:
  std::string root_;
  std::vector<ElementDecl> elements_;
  std::map<std::string, size_t, std::less<>> index_;
};

}  // namespace xpred::xml

#endif  // XPRED_XML_DTD_H_
