#include "xml/dtd.h"

#include <cctype>

#include "common/string_util.h"

namespace xpred::xml {

void ContentParticle::CollectElementNames(
    std::vector<std::string>* out) const {
  if (kind == Kind::kElement) out->push_back(name);
  for (const ContentParticle& child : children) {
    child.CollectElementNames(out);
  }
}

namespace {

/// Recursive-descent parser for DTD declarations.
class DtdParser {
 public:
  explicit DtdParser(std::string_view text) : text_(text) {}

  Status Run(std::vector<ElementDecl>* elements) {
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= text_.size()) break;
      if (Consume("<!ELEMENT")) {
        XPRED_RETURN_NOT_OK(ParseElementDecl(elements));
      } else if (Consume("<!ATTLIST")) {
        XPRED_RETURN_NOT_OK(ParseAttlistDecl(elements));
      } else {
        return Error("expected <!ELEMENT or <!ATTLIST");
      }
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::InvalidArgument(
        StringPrintf("DTD: %s (line %zu)", message.c_str(), line));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void SkipSpaceAndComments() {
    for (;;) {
      SkipSpace();
      if (pos_ + 4 <= text_.size() && text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == '.' || c == ':';
  }

  Status ParseName(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected name");
    out->assign(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Repeat ParseRepeat() {
    if (pos_ < text_.size()) {
      switch (text_[pos_]) {
        case '?':
          ++pos_;
          return Repeat::kOptional;
        case '*':
          ++pos_;
          return Repeat::kStar;
        case '+':
          ++pos_;
          return Repeat::kPlus;
        default:
          break;
      }
    }
    return Repeat::kOne;
  }

  /// Parses a parenthesized group: '(' particle (sep particle)* ')'
  /// where sep is consistently ',' (sequence) or '|' (choice).
  Status ParseGroup(ContentParticle* out) {
    SkipSpace();
    if (!Consume("(")) return Error("expected '('");
    std::vector<ContentParticle> parts;
    char separator = '\0';
    for (;;) {
      ContentParticle part;
      XPRED_RETURN_NOT_OK(ParseParticle(&part));
      parts.push_back(std::move(part));
      SkipSpace();
      if (Consume(")")) break;
      char sep = (pos_ < text_.size()) ? text_[pos_] : '\0';
      if (sep != ',' && sep != '|') {
        return Error("expected ',', '|' or ')' in content model");
      }
      if (separator == '\0') {
        separator = sep;
      } else if (sep != separator) {
        return Error("mixed ',' and '|' in one group");
      }
      ++pos_;
    }
    if (parts.size() == 1 && separator == '\0') {
      *out = std::move(parts[0]);
      // Group-level repeat applies on top of the inner particle's
      // repeat; combining conservatively: outer repeat wins when inner
      // is kOne.
      Repeat group_repeat = ParseRepeat();
      if (group_repeat != Repeat::kOne) out->repeat = group_repeat;
      return Status::OK();
    }
    out->kind = (separator == '|') ? ContentParticle::Kind::kChoice
                                   : ContentParticle::Kind::kSequence;
    out->children = std::move(parts);
    out->repeat = ParseRepeat();
    return Status::OK();
  }

  Status ParseParticle(ContentParticle* out) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '(') {
      return ParseGroup(out);
    }
    if (Consume("#PCDATA")) {
      out->kind = ContentParticle::Kind::kPcdata;
      return Status::OK();
    }
    out->kind = ContentParticle::Kind::kElement;
    XPRED_RETURN_NOT_OK(ParseName(&out->name));
    out->repeat = ParseRepeat();
    return Status::OK();
  }

  Status ParseElementDecl(std::vector<ElementDecl>* elements) {
    ElementDecl decl;
    XPRED_RETURN_NOT_OK(ParseName(&decl.name));
    SkipSpace();
    if (Consume("EMPTY")) {
      decl.content.kind = ContentParticle::Kind::kEmpty;
    } else if (Consume("ANY")) {
      // Treated as EMPTY for generation purposes; the embedded DTDs do
      // not use ANY.
      decl.content.kind = ContentParticle::Kind::kEmpty;
    } else {
      XPRED_RETURN_NOT_OK(ParseGroup(&decl.content));
    }
    SkipSpace();
    if (!Consume(">")) return Error("expected '>' after element model");
    elements->push_back(std::move(decl));
    return Status::OK();
  }

  Status ParseAttlistDecl(std::vector<ElementDecl>* elements) {
    std::string element_name;
    XPRED_RETURN_NOT_OK(ParseName(&element_name));
    ElementDecl* target = nullptr;
    for (ElementDecl& decl : *elements) {
      if (decl.name == element_name) {
        target = &decl;
        break;
      }
    }
    if (target == nullptr) {
      return Error("ATTLIST for undeclared element '" + element_name + "'");
    }
    for (;;) {
      SkipSpace();
      if (Consume(">")) return Status::OK();
      AttributeDecl attr;
      XPRED_RETURN_NOT_OK(ParseName(&attr.name));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '(') {
        // Enumerated type.
        ++pos_;
        for (;;) {
          std::string value;
          XPRED_RETURN_NOT_OK(ParseName(&value));
          attr.enum_values.push_back(std::move(value));
          SkipSpace();
          if (Consume(")")) break;
          if (!Consume("|")) return Error("expected '|' in enumeration");
        }
      } else {
        std::string type;
        XPRED_RETURN_NOT_OK(ParseName(&type));
        if (type != "CDATA" && type != "ID" && type != "IDREF" &&
            type != "NMTOKEN" && type != "NMTOKENS") {
          return Error("unsupported attribute type '" + type + "'");
        }
      }
      SkipSpace();
      if (Consume("#REQUIRED")) {
        attr.required = true;
      } else if (Consume("#IMPLIED")) {
        attr.required = false;
      } else if (Consume("#FIXED")) {
        attr.required = true;
        SkipSpace();
        XPRED_RETURN_NOT_OK(SkipQuotedValue());
      } else if (pos_ < text_.size() &&
                 (text_[pos_] == '"' || text_[pos_] == '\'')) {
        XPRED_RETURN_NOT_OK(SkipQuotedValue());
      } else {
        return Error("expected attribute default");
      }
      target->attributes.push_back(std::move(attr));
    }
  }

  Status SkipQuotedValue() {
    if (pos_ >= text_.size() ||
        (text_[pos_] != '"' && text_[pos_] != '\'')) {
      return Error("expected quoted default value");
    }
    char quote = text_[pos_++];
    size_t end = text_.find(quote, pos_);
    if (end == std::string_view::npos) {
      return Error("unterminated default value");
    }
    pos_ = end + 1;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Dtd> Dtd::Parse(std::string_view text, std::string root_name) {
  Dtd dtd;
  dtd.root_ = std::move(root_name);
  DtdParser parser(text);
  Status st = parser.Run(&dtd.elements_);
  if (!st.ok()) return st;
  for (size_t i = 0; i < dtd.elements_.size(); ++i) {
    auto [it, inserted] = dtd.index_.emplace(dtd.elements_[i].name, i);
    if (!inserted) {
      return Status::InvalidArgument("duplicate element declaration '" +
                                     dtd.elements_[i].name + "'");
    }
  }
  st = dtd.Validate();
  if (!st.ok()) return st;
  return dtd;
}

const ElementDecl* Dtd::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &elements_[it->second];
}

Status Dtd::Validate() const {
  if (Find(root_) == nullptr) {
    return Status::InvalidArgument("root element '" + root_ +
                                   "' is not declared");
  }
  for (const ElementDecl& decl : elements_) {
    std::vector<std::string> referenced;
    decl.content.CollectElementNames(&referenced);
    for (const std::string& child : referenced) {
      if (Find(child) == nullptr) {
        return Status::InvalidArgument("element '" + decl.name +
                                       "' references undeclared '" + child +
                                       "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace xpred::xml
