#ifndef XPRED_XML_SAX_H_
#define XPRED_XML_SAX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace xpred {
class ExecBudget;
}

namespace xpred::xml {

/// A single attribute on an element, in document order.
struct Attribute {
  std::string name;
  std::string value;

  bool operator==(const Attribute&) const = default;
};

/// \brief Receiver of SAX events, in the style of org.xml.sax.
///
/// The paper's engines (ours and YFilter) are SAX-driven: document paths
/// are extracted one at a time during parsing (§3.1). Implementations
/// return a Status from each callback; a non-OK status aborts the parse
/// and is propagated to the SaxParser::Parse caller.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  /// Called once before any other event.
  virtual Status StartDocument() { return Status::OK(); }

  /// Called once after all other events, only on success.
  virtual Status EndDocument() { return Status::OK(); }

  /// Start tag. \p name and \p attributes are only valid during the
  /// call.
  virtual Status StartElement(std::string_view name,
                              const std::vector<Attribute>& attributes) = 0;

  /// End tag (also emitted for self-closing elements).
  virtual Status EndElement(std::string_view name) = 0;

  /// Character data between tags, with entities already expanded.
  /// Whitespace-only runs are reported too; handlers that don't care
  /// can ignore them.
  virtual Status Characters(std::string_view text) {
    (void)text;
    return Status::OK();
  }
};

/// \brief A small, non-validating, namespace-unaware XML parser.
///
/// Supports exactly what XML filtering workloads need: elements,
/// attributes (single- or double-quoted), character data, CDATA
/// sections, comments, processing instructions, an optional XML
/// declaration, an optional (skipped) DOCTYPE, the five predefined
/// entities and decimal/hex character references. It checks
/// well-formedness (tag balance, attribute syntax, uniqueness of
/// attribute names per element) and reports errors with line/column
/// positions.
class SaxParser {
 public:
  struct Options {
    /// When true, whitespace-only character runs are not reported.
    bool skip_whitespace_text = true;
    /// Maximum element nesting depth (guards against pathological
    /// inputs); exceeding it yields kResourceExhausted. 0 = unlimited —
    /// safe because the parser is fully iterative.
    size_t max_depth = 512;
    /// Maximum attributes on a single element (kResourceExhausted when
    /// exceeded). 0 = unlimited.
    size_t max_attributes_per_element = 0;
    /// Maximum entity / character references expanded across the whole
    /// document, text and attribute values combined (kResourceExhausted
    /// when exceeded). 0 = unlimited.
    size_t max_entity_expansions = 0;
    /// Optional per-document budget; when set, the parser runs its
    /// amortized deadline checkpoint once per content step so a parse
    /// of a huge document cannot outlive the document deadline. Not
    /// owned; must outlive the Parse call.
    ExecBudget* budget = nullptr;
  };

  SaxParser() = default;
  explicit SaxParser(Options options) : options_(options) {}

  /// Parses \p input, delivering events to \p handler. Returns the
  /// first error (from the document or from the handler).
  Status Parse(std::string_view input, ContentHandler* handler);

 private:
  Options options_;
};

}  // namespace xpred::xml

#endif  // XPRED_XML_SAX_H_
