#include "xml/standard_dtds.h"

#include <cstdio>
#include <cstdlib>

namespace xpred::xml {

namespace {

// ---------------------------------------------------------------------------
// NITF-like DTD. Abridged from the News Industry Text Format structure:
// nitf -> head (metadata) + body (headlines, rich text with mixed
// content and entity markup). ~120 elements, many attributes, deep
// optional branches, recursion through block/p/fn.
// ---------------------------------------------------------------------------
const char kNitfLikeDtdText[] = R"DTD(
<!-- NITF-like news article DTD (abridged reconstruction). -->
<!ELEMENT nitf (head?, body)>
<!ATTLIST nitf uno CDATA #IMPLIED
               version CDATA #IMPLIED
               change.date CDATA #IMPLIED
               change.time CDATA #IMPLIED>

<!ELEMENT head (title?, meta*, tobject?, iim?, docdata?, pubdata*, revision-history*)>
<!ATTLIST head id CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ATTLIST title type (main|subtitle|abbrev) #IMPLIED>
<!ELEMENT meta EMPTY>
<!ATTLIST meta name CDATA #REQUIRED content CDATA #REQUIRED>
<!ELEMENT tobject (tobject.property*, tobject.subject*)>
<!ATTLIST tobject tobject.type CDATA #IMPLIED>
<!ELEMENT tobject.property EMPTY>
<!ATTLIST tobject.property tobject.property.type CDATA #IMPLIED>
<!ELEMENT tobject.subject EMPTY>
<!ATTLIST tobject.subject tobject.subject.refnum CDATA #REQUIRED
                          tobject.subject.code CDATA #IMPLIED
                          tobject.subject.type CDATA #IMPLIED
                          tobject.subject.matter CDATA #IMPLIED>
<!ELEMENT iim (ds*)>
<!ATTLIST iim ver CDATA #IMPLIED>
<!ELEMENT ds EMPTY>
<!ATTLIST ds num CDATA #REQUIRED value CDATA #IMPLIED>

<!ELEMENT docdata (correction?, evloc*, doc-id?, del-list?, urgency?,
                   fixture?, date.issue?, date.release?, date.expire?,
                   doc-scope*, series?, ed-msg?, du-key?, doc.copyright?,
                   doc.rights?, key-list?, identified-content?)>
<!ELEMENT correction EMPTY>
<!ATTLIST correction info CDATA #IMPLIED id-string CDATA #IMPLIED>
<!ELEMENT evloc EMPTY>
<!ATTLIST evloc iso-cc CDATA #IMPLIED state-prov CDATA #IMPLIED
                county-dist CDATA #IMPLIED city CDATA #IMPLIED>
<!ELEMENT doc-id EMPTY>
<!ATTLIST doc-id regsrc CDATA #IMPLIED id-string CDATA #IMPLIED>
<!ELEMENT del-list (from-src*)>
<!ELEMENT from-src EMPTY>
<!ATTLIST from-src src-name CDATA #IMPLIED level-number CDATA #IMPLIED>
<!ELEMENT urgency EMPTY>
<!ATTLIST urgency ed-urg CDATA #IMPLIED>
<!ELEMENT fixture EMPTY>
<!ATTLIST fixture fix-id CDATA #IMPLIED>
<!ELEMENT date.issue EMPTY>
<!ATTLIST date.issue norm CDATA #IMPLIED>
<!ELEMENT date.release EMPTY>
<!ATTLIST date.release norm CDATA #IMPLIED>
<!ELEMENT date.expire EMPTY>
<!ATTLIST date.expire norm CDATA #IMPLIED>
<!ELEMENT doc-scope EMPTY>
<!ATTLIST doc-scope scope CDATA #IMPLIED>
<!ELEMENT series EMPTY>
<!ATTLIST series series.name CDATA #IMPLIED
                 series.part CDATA #IMPLIED
                 series.totalpart CDATA #IMPLIED>
<!ELEMENT ed-msg EMPTY>
<!ATTLIST ed-msg msg-type CDATA #IMPLIED info CDATA #IMPLIED>
<!ELEMENT du-key EMPTY>
<!ATTLIST du-key generation CDATA #IMPLIED part CDATA #IMPLIED
                 version CDATA #IMPLIED key CDATA #IMPLIED>
<!ELEMENT doc.copyright EMPTY>
<!ATTLIST doc.copyright year CDATA #IMPLIED holder CDATA #IMPLIED>
<!ELEMENT doc.rights EMPTY>
<!ATTLIST doc.rights owner CDATA #IMPLIED startdate CDATA #IMPLIED
                     enddate CDATA #IMPLIED agent CDATA #IMPLIED
                     geography CDATA #IMPLIED limitations CDATA #IMPLIED>
<!ELEMENT key-list (keyword*)>
<!ELEMENT keyword EMPTY>
<!ATTLIST keyword key CDATA #REQUIRED>
<!ELEMENT identified-content (person | org | location | event | function |
                              object.title | virtloc | chron | copyrite |
                              classifier)*>

<!ELEMENT pubdata EMPTY>
<!ATTLIST pubdata type (print|audio|video|web|appliance|other) #IMPLIED
                  item-length CDATA #IMPLIED
                  unit-of-measure (word|character|byte|inch|pica|cm|hour|minute|second|other) #IMPLIED
                  date.publication CDATA #IMPLIED
                  name CDATA #IMPLIED
                  issue CDATA #IMPLIED
                  edition.name CDATA #IMPLIED
                  edition.area CDATA #IMPLIED
                  position.section CDATA #IMPLIED
                  position.sequence CDATA #IMPLIED>
<!ELEMENT revision-history EMPTY>
<!ATTLIST revision-history name CDATA #IMPLIED function CDATA #IMPLIED
                           norm CDATA #IMPLIED comment CDATA #IMPLIED>

<!ELEMENT body (body.head?, body.content*, body.end?)>
<!ELEMENT body.head (hedline?, note*, rights?, byline*, distributor?,
                     dateline*, abstract*, series?)>
<!ELEMENT hedline (hl1, hl2*)>
<!ELEMENT hl1 (#PCDATA)>
<!ATTLIST hl1 id CDATA #IMPLIED>
<!ELEMENT hl2 (#PCDATA)>
<!ATTLIST hl2 id CDATA #IMPLIED>
<!ELEMENT note (body.content)>
<!ATTLIST note noteclass (cpyrt|end|hd|editorsnote|trademk|undef) #IMPLIED
               type (std|pa|npa) #IMPLIED>
<!ELEMENT rights (#PCDATA | rights.owner | rights.startdate | rights.enddate |
                  rights.agent | rights.geography | rights.type |
                  rights.limitations)*>
<!ELEMENT rights.owner (#PCDATA)>
<!ELEMENT rights.startdate (#PCDATA)>
<!ELEMENT rights.enddate (#PCDATA)>
<!ELEMENT rights.agent (#PCDATA)>
<!ELEMENT rights.geography (#PCDATA)>
<!ELEMENT rights.type (#PCDATA)>
<!ELEMENT rights.limitations (#PCDATA)>
<!ELEMENT byline (#PCDATA | person | byttl | virtloc | location)*>
<!ELEMENT byttl (#PCDATA | org)*>
<!ELEMENT distributor (#PCDATA | org)*>
<!ELEMENT dateline (#PCDATA | location | story.date)*>
<!ELEMENT story.date (#PCDATA)>
<!ATTLIST story.date norm CDATA #IMPLIED>
<!ELEMENT abstract (p*)>

<!ELEMENT body.content (block | p | table | media | ol | ul | dl | bq |
                        fn | hr | pre | nitf-table)*>
<!ELEMENT block (tagline?, (p | table | media | ol | ul | dl | bq | fn |
                 hr | pre)*, datasource?)>
<!ATTLIST block id CDATA #IMPLIED style CDATA #IMPLIED>
<!ELEMENT tagline (#PCDATA | a | em)*>
<!ATTLIST tagline type (print|none) #IMPLIED>
<!ELEMENT datasource (#PCDATA)>
<!ELEMENT p (#PCDATA | chron | copyrite | event | function | location |
             money | num | object.title | org | person | postaddr |
             virtloc | a | br | em | lang | pronounce | q | classifier)*>
<!ATTLIST p id CDATA #IMPLIED lede (true|false) #IMPLIED
            summary (true|false) #IMPLIED
            optional-text (true|false) #IMPLIED>
<!ELEMENT q (#PCDATA | em | person | org | location)*>
<!ATTLIST q quote-source CDATA #IMPLIED>
<!ELEMENT br EMPTY>
<!ELEMENT hr EMPTY>
<!ELEMENT pre (#PCDATA)>
<!ELEMENT a (#PCDATA | em)*>
<!ATTLIST a id CDATA #IMPLIED href CDATA #IMPLIED name CDATA #IMPLIED>
<!ELEMENT em (#PCDATA | a | em)*>
<!ATTLIST em class CDATA #IMPLIED>
<!ELEMENT lang (#PCDATA)>
<!ATTLIST lang lang CDATA #IMPLIED>
<!ELEMENT pronounce EMPTY>
<!ATTLIST pronounce guide CDATA #IMPLIED phonetic CDATA #IMPLIED>
<!ELEMENT fn (p+)>
<!ELEMENT bq (block, credit?)>
<!ATTLIST bq nowrap (nowrap) #IMPLIED quote-source CDATA #IMPLIED>
<!ELEMENT credit (#PCDATA | a | em)*>
<!ELEMENT ol (li+)>
<!ATTLIST ol seqnum CDATA #IMPLIED>
<!ELEMENT ul (li+)>
<!ELEMENT li (#PCDATA | a | em | q | person | org | location | num)*>
<!ELEMENT dl (dt | dd)+>
<!ELEMENT dt (#PCDATA | em)*>
<!ELEMENT dd (#PCDATA | em | p)*>

<!ELEMENT table (caption?, (col* | colgroup*), thead?, tfoot?, (tbody | tr+))>
<!ATTLIST table id CDATA #IMPLIED width CDATA #IMPLIED
                border CDATA #IMPLIED align (left|center|right) #IMPLIED>
<!ELEMENT nitf-table (nitf-table-metadata, table)>
<!ELEMENT nitf-table-metadata (nitf-col* , nitf-colgroup*)>
<!ATTLIST nitf-table-metadata subclass CDATA #IMPLIED status CDATA #IMPLIED>
<!ELEMENT nitf-col EMPTY>
<!ATTLIST nitf-col value CDATA #IMPLIED occurrences CDATA #IMPLIED>
<!ELEMENT nitf-colgroup (nitf-col+)>
<!ATTLIST nitf-colgroup count CDATA #IMPLIED>
<!ELEMENT caption (#PCDATA | em)*>
<!ELEMENT col EMPTY>
<!ATTLIST col span CDATA #IMPLIED width CDATA #IMPLIED>
<!ELEMENT colgroup (col*)>
<!ATTLIST colgroup span CDATA #IMPLIED>
<!ELEMENT thead (tr+)>
<!ELEMENT tfoot (tr+)>
<!ELEMENT tbody (tr+)>
<!ELEMENT tr (th | td)+>
<!ATTLIST tr align (left|center|right) #IMPLIED>
<!ELEMENT th (#PCDATA | em | num)*>
<!ATTLIST th rowspan CDATA #IMPLIED colspan CDATA #IMPLIED>
<!ELEMENT td (#PCDATA | em | num)*>
<!ATTLIST td rowspan CDATA #IMPLIED colspan CDATA #IMPLIED>

<!ELEMENT media (media-reference+, media-metadata*, media-producer?,
                 media-caption*)>
<!ATTLIST media media-type (text|audio|image|video|data|other) #REQUIRED>
<!ELEMENT media-reference (#PCDATA)>
<!ATTLIST media-reference source CDATA #IMPLIED
                          mime-type CDATA #IMPLIED
                          coding (base64|binary) #IMPLIED
                          time CDATA #IMPLIED
                          height CDATA #IMPLIED
                          width CDATA #IMPLIED>
<!ELEMENT media-metadata EMPTY>
<!ATTLIST media-metadata name CDATA #REQUIRED value CDATA #IMPLIED>
<!ELEMENT media-producer (#PCDATA | person | org)*>
<!ELEMENT media-caption (#PCDATA | p | em)*>
<!ELEMENT body.end (tagline?, bibliography?)>
<!ELEMENT bibliography (#PCDATA)>

<!ELEMENT person (#PCDATA | name.given | name.family | function | alt-code)*>
<!ATTLIST person idsrc CDATA #IMPLIED value CDATA #IMPLIED>
<!ELEMENT name.given (#PCDATA)>
<!ELEMENT name.family (#PCDATA)>
<!ELEMENT org (#PCDATA | alt-code)*>
<!ATTLIST org idsrc CDATA #IMPLIED value CDATA #IMPLIED>
<!ELEMENT location (#PCDATA | sublocation | city | state | region | country |
                    alt-code)*>
<!ATTLIST location location-code CDATA #IMPLIED code-source CDATA #IMPLIED>
<!ELEMENT sublocation (#PCDATA)>
<!ATTLIST sublocation location-code CDATA #IMPLIED>
<!ELEMENT city (#PCDATA)>
<!ATTLIST city city-code CDATA #IMPLIED>
<!ELEMENT state (#PCDATA)>
<!ATTLIST state state-code CDATA #IMPLIED>
<!ELEMENT region (#PCDATA)>
<!ATTLIST region region-code CDATA #IMPLIED>
<!ELEMENT country (#PCDATA)>
<!ATTLIST country iso-cc CDATA #IMPLIED>
<!ELEMENT event (#PCDATA | alt-code)*>
<!ATTLIST event idsrc CDATA #IMPLIED value CDATA #IMPLIED>
<!ELEMENT function (#PCDATA)>
<!ATTLIST function idsrc CDATA #IMPLIED value CDATA #IMPLIED>
<!ELEMENT object.title (#PCDATA | alt-code)*>
<!ATTLIST object.title idsrc CDATA #IMPLIED value CDATA #IMPLIED>
<!ELEMENT virtloc (#PCDATA)>
<!ATTLIST virtloc idsrc CDATA #IMPLIED value CDATA #IMPLIED>
<!ELEMENT chron (#PCDATA)>
<!ATTLIST chron norm CDATA #IMPLIED>
<!ELEMENT copyrite (#PCDATA | copyrite.year | copyrite.holder)*>
<!ELEMENT copyrite.year (#PCDATA)>
<!ELEMENT copyrite.holder (#PCDATA)>
<!ELEMENT classifier (#PCDATA)>
<!ATTLIST classifier type CDATA #IMPLIED idsrc CDATA #IMPLIED
                     value CDATA #IMPLIED>
<!ELEMENT money (#PCDATA)>
<!ATTLIST money unit CDATA #IMPLIED>
<!ELEMENT num (#PCDATA | frac | sub | sup)*>
<!ATTLIST num units CDATA #IMPLIED decimal-ch CDATA #IMPLIED
              thousands-ch CDATA #IMPLIED>
<!ELEMENT frac (frac-num, frac-sep?, frac-den)>
<!ELEMENT frac-num (#PCDATA)>
<!ELEMENT frac-sep (#PCDATA)>
<!ELEMENT frac-den (#PCDATA)>
<!ELEMENT sub (#PCDATA)>
<!ELEMENT sup (#PCDATA)>
<!ELEMENT postaddr (addr-line+)>
<!ELEMENT addr-line (#PCDATA)>
<!ELEMENT alt-code EMPTY>
<!ATTLIST alt-code idsrc CDATA #REQUIRED value CDATA #REQUIRED>
)DTD";

// ---------------------------------------------------------------------------
// PSD-like DTD. Abridged from the Protein Sequence Database structure:
// flat, repetitive records with a small vocabulary and few attributes.
// ---------------------------------------------------------------------------
const char kPsdLikeDtdText[] = R"DTD(
<!-- PSD-like protein sequence database DTD (abridged reconstruction). -->
<!ELEMENT ProteinDatabase (ProteinEntry+)>
<!ELEMENT ProteinEntry (header, protein, organism, reference+,
                        genetics*, complex?, function*, classification?,
                        keywords?, feature*, summary, sequence)>
<!ATTLIST ProteinEntry id CDATA #REQUIRED>
<!ELEMENT header (uid, accession+, created_date, seq-rev_date, ann-rev_date)>
<!ELEMENT uid (#PCDATA)>
<!ELEMENT accession (#PCDATA)>
<!ELEMENT created_date (#PCDATA)>
<!ELEMENT seq-rev_date (#PCDATA)>
<!ELEMENT ann-rev_date (#PCDATA)>
<!ELEMENT protein (name, alt-name*, contains*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT alt-name (#PCDATA)>
<!ELEMENT contains (#PCDATA)>
<!ELEMENT organism (source, common?, formal?, variety?, note?)>
<!ELEMENT source (#PCDATA)>
<!ELEMENT common (#PCDATA)>
<!ELEMENT formal (#PCDATA)>
<!ELEMENT variety (#PCDATA)>
<!ELEMENT note (#PCDATA)>
<!ELEMENT reference (refinfo, accinfo+)>
<!ELEMENT refinfo (authors, citation, title?, volume?, year, pages?,
                   xrefs?, note?)>
<!ATTLIST refinfo refid CDATA #REQUIRED>
<!ELEMENT authors (author+)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT citation (#PCDATA)>
<!ATTLIST citation type CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT volume (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT pages (#PCDATA)>
<!ELEMENT xrefs (xref+)>
<!ELEMENT xref (db, uid)>
<!ELEMENT db (#PCDATA)>
<!ELEMENT accinfo (accession, mol-type?, label?, status?, note?)>
<!ELEMENT genetics (gene?, gene-map?, codon?, introns?, mosaic?, note?)>
<!ATTLIST genetics gentype CDATA #IMPLIED>
<!ELEMENT gene (#PCDATA)>
<!ELEMENT gene-map (#PCDATA)>
<!ELEMENT codon (#PCDATA)>
<!ELEMENT introns (#PCDATA)>
<!ELEMENT mosaic (#PCDATA)>
<!ELEMENT complex (#PCDATA)>
<!ELEMENT function (description?, pathway?, note?)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT pathway (#PCDATA)>
<!ELEMENT classification (superfamily+)>
<!ELEMENT superfamily (#PCDATA)>
<!ELEMENT keywords (keyword+)>
<!ELEMENT keyword (#PCDATA)>
<!ELEMENT feature (seq-spec, feature-type, description?, status?, link?)>
<!ELEMENT seq-spec (#PCDATA)>
<!ELEMENT feature-type (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT link (#PCDATA)>
<!ELEMENT mol-type (#PCDATA)>
<!ELEMENT label (#PCDATA)>
<!ELEMENT summary (length, type)>
<!ELEMENT length (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT sequence (#PCDATA)>
)DTD";

const Dtd* BuildOrDie(const char* text, const char* root, const char* what) {
  Result<Dtd> result = Dtd::Parse(text, root);
  if (!result.ok()) {
    std::fprintf(stderr, "embedded %s DTD failed to parse: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return new Dtd(std::move(result).value());
}

}  // namespace

const Dtd& NitfLikeDtd() {
  static const Dtd* dtd = BuildOrDie(kNitfLikeDtdText, "nitf", "NITF-like");
  return *dtd;
}

const Dtd& PsdLikeDtd() {
  static const Dtd* dtd =
      BuildOrDie(kPsdLikeDtdText, "ProteinDatabase", "PSD-like");
  return *dtd;
}

const char* NitfLikeDtdText() { return kNitfLikeDtdText; }
const char* PsdLikeDtdText() { return kPsdLikeDtdText; }

}  // namespace xpred::xml
