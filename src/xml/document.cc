#include "xml/document.h"

namespace xpred::xml {

Result<Document> Document::Parse(std::string_view text) {
  return Parse(text, SaxParser::Options{});
}

Result<Document> Document::Parse(std::string_view text,
                                 const SaxParser::Options& options) {
  SaxParser parser(options);
  DocumentBuilder builder;
  Status st = parser.Parse(text, &builder);
  if (!st.ok()) return st;
  return builder.TakeDocument();
}

NodeId Document::AddElement(std::string tag, NodeId parent) {
  NodeId id = static_cast<NodeId>(elements_.size());
  Element element;
  element.tag = std::move(tag);
  element.parent = parent;
  if (parent != kInvalidNode) {
    Element& p = elements_[parent];
    p.children.push_back(id);
    element.child_index = static_cast<uint32_t>(p.children.size());
    element.depth = p.depth + 1;
  }
  elements_.push_back(std::move(element));
  return id;
}

std::string Document::ToXml() const {
  // Iterative pre-order walk with an explicit frame stack: serializing
  // a pathologically deep document must not consume native stack.
  struct Frame {
    NodeId id;
    int indent;
    size_t next_child = 0;
  };
  std::string out;
  if (elements_.empty()) return out;
  std::vector<Frame> stack;
  stack.push_back(Frame{root(), 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Element& e = elements_[frame.id];
    if (frame.next_child == 0) {
      out.append(static_cast<size_t>(frame.indent) * 2, ' ');
      out.push_back('<');
      out.append(e.tag);
      for (const Attribute& a : e.attributes) {
        out.push_back(' ');
        out.append(a.name);
        out.append("=\"");
        out.append(EscapeXml(a.value));
        out.push_back('"');
      }
      if (e.children.empty() && e.text.empty()) {
        out.append("/>\n");
        stack.pop_back();
        continue;
      }
      out.push_back('>');
      if (!e.text.empty()) out.append(EscapeXml(e.text));
      if (!e.children.empty()) out.push_back('\n');
    }
    if (frame.next_child < e.children.size()) {
      NodeId child = e.children[frame.next_child++];
      int child_indent = frame.indent + 1;
      stack.push_back(Frame{child, child_indent});
      continue;
    }
    if (!e.children.empty()) {
      out.append(static_cast<size_t>(frame.indent) * 2, ' ');
    }
    out.append("</");
    out.append(e.tag);
    out.append(">\n");
    stack.pop_back();
  }
  return out;
}

Status DocumentBuilder::StartElement(std::string_view name,
                                     const std::vector<Attribute>& attributes) {
  if (stack_.empty() && !document_.empty()) {
    return Status::XmlParseError("multiple root elements");
  }
  NodeId parent = stack_.empty() ? kInvalidNode : stack_.back();
  NodeId id = document_.AddElement(std::string(name), parent);
  document_.element(id).attributes = attributes;
  stack_.push_back(id);
  return Status::OK();
}

Status DocumentBuilder::EndElement(std::string_view name) {
  (void)name;  // The SAX parser already verified tag balance.
  stack_.pop_back();
  return Status::OK();
}

Status DocumentBuilder::Characters(std::string_view text) {
  if (!stack_.empty()) {
    document_.element(stack_.back()).text.append(text);
  }
  return Status::OK();
}

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      case '"':
        out.append("&quot;");
        break;
      case '\'':
        out.append("&apos;");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace xpred::xml
