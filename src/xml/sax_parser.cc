#include "xml/sax.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/limits.h"
#include "common/string_util.h"

namespace xpred::xml {

namespace {

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t p = pos_ + offset;
    return p < input_.size() ? input_[p] : '\0';
  }
  size_t Remaining() const { return input_.size() - pos_; }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool ConsumeIf(std::string_view token) {
    if (Remaining() < token.size()) return false;
    if (input_.substr(pos_, token.size()) != token) return false;
    AdvanceBy(token.size());
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  std::string_view Slice(size_t start, size_t end) const {
    return input_.substr(start, end - start);
  }

  size_t pos() const { return pos_; }
  size_t line() const { return line_; }
  size_t column() const { return column_; }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class ParserImpl {
 public:
  ParserImpl(std::string_view input, const SaxParser::Options& options,
             ContentHandler* handler)
      : input_(input), cursor_(input), options_(options), handler_(handler) {}

  Status Run() {
    XPRED_FAULT_POINT(faultsite::kParserBeginDocument);
    XPRED_RETURN_NOT_OK(handler_->StartDocument());
    XPRED_RETURN_NOT_OK(SkipProlog());
    if (cursor_.AtEnd() || cursor_.Peek() != '<') {
      return Error("expected root element");
    }
    XPRED_RETURN_NOT_OK(ParseRootElement());
    // Only misc (comments/PIs/whitespace) may follow the root element.
    for (;;) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) break;
      if (cursor_.ConsumeIf("<!--")) {
        XPRED_RETURN_NOT_OK(SkipUntil("-->", "unterminated comment"));
      } else if (cursor_.ConsumeIf("<?")) {
        XPRED_RETURN_NOT_OK(
            SkipUntil("?>", "unterminated processing instruction"));
      } else {
        return Error("content after root element");
      }
    }
    return handler_->EndDocument();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::XmlParseError(
        StringPrintf("%s (line %zu, column %zu)", message.c_str(),
                     cursor_.line(), cursor_.column()));
  }

  Status SkipUntil(std::string_view token, const char* error) {
    while (!cursor_.AtEnd()) {
      if (cursor_.ConsumeIf(token)) return Status::OK();
      cursor_.Advance();
    }
    return Error(error);
  }

  /// Skips the XML declaration, DOCTYPE, comments and PIs before the
  /// root element.
  Status SkipProlog() {
    for (;;) {
      cursor_.SkipWhitespace();
      if (cursor_.ConsumeIf("<?")) {
        XPRED_RETURN_NOT_OK(
            SkipUntil("?>", "unterminated processing instruction"));
      } else if (cursor_.ConsumeIf("<!--")) {
        XPRED_RETURN_NOT_OK(SkipUntil("-->", "unterminated comment"));
      } else if (cursor_.ConsumeIf("<!DOCTYPE")) {
        XPRED_RETURN_NOT_OK(SkipDoctype());
      } else {
        return Status::OK();
      }
    }
  }

  /// Skips a DOCTYPE declaration, including an internal subset.
  Status SkipDoctype() {
    int bracket_depth = 0;
    while (!cursor_.AtEnd()) {
      char c = cursor_.Advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        return Status::OK();
      }
    }
    return Error("unterminated DOCTYPE");
  }

  Status ParseName(std::string_view* name) {
    size_t start = cursor_.pos();
    if (cursor_.AtEnd() || !IsNameStartChar(cursor_.Peek())) {
      return Error("expected name");
    }
    while (!cursor_.AtEnd() && IsNameChar(cursor_.Peek())) cursor_.Advance();
    *name = cursor_.Slice(start, cursor_.pos());
    return Status::OK();
  }

  /// Decodes entity and character references in \p raw into \p out.
  Status DecodeText(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      char c = raw[i];
      if (c != '&') {
        out->push_back(c);
        ++i;
        continue;
      }
      XPRED_FAULT_POINT(faultsite::kParserDecodeText);
      ++entity_expansions_;
      if (options_.max_entity_expansions != 0 &&
          entity_expansions_ > options_.max_entity_expansions) {
        return Status::ResourceExhausted(
            StringPrintf("entity expansions exceed %zu",
                         options_.max_entity_expansions));
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        // Distinguish a reference truncated by end-of-input from one
        // merely interrupted by markup, so truncated documents report
        // what actually happened.
        if (raw.data() + raw.size() == input_.data() + input_.size()) {
          return Error("unterminated entity reference at end of input");
        }
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out->push_back('&');
      } else if (entity == "lt") {
        out->push_back('<');
      } else if (entity == "gt") {
        out->push_back('>');
      } else if (entity == "apos") {
        out->push_back('\'');
      } else if (entity == "quot") {
        out->push_back('"');
      } else if (!entity.empty() && entity[0] == '#') {
        uint64_t code = 0;
        bool ok = entity.size() > 1;
        if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
          for (size_t k = 2; k < entity.size() && ok; ++k) {
            char h = entity[k];
            int digit;
            if (h >= '0' && h <= '9') {
              digit = h - '0';
            } else if (h >= 'a' && h <= 'f') {
              digit = h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              digit = h - 'A' + 10;
            } else {
              ok = false;
              break;
            }
            code = code * 16 + static_cast<uint64_t>(digit);
            // Saturate instead of wrapping: a reference beyond the
            // Unicode range must be rejected, not silently aliased to
            // whatever the modular arithmetic lands on.
            if (code > 0x10FFFF) code = 0x110000;
          }
          ok = ok && entity.size() > 2;
        } else {
          for (size_t k = 1; k < entity.size() && ok; ++k) {
            if (entity[k] < '0' || entity[k] > '9') {
              ok = false;
              break;
            }
            code = code * 10 + static_cast<uint64_t>(entity[k] - '0');
            if (code > 0x10FFFF) code = 0x110000;
          }
        }
        if (!ok || code == 0 || code > 0x10FFFF) {
          return Error("invalid character reference");
        }
        AppendUtf8(static_cast<uint32_t>(code), out);
      } else {
        return Error("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseAttributes(std::vector<Attribute>* attributes) {
    attributes->clear();
    for (;;) {
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd()) return Error("unterminated start tag");
      char c = cursor_.Peek();
      if (c == '>' || c == '/') return Status::OK();
      std::string_view name;
      XPRED_RETURN_NOT_OK(ParseName(&name));
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd() || cursor_.Peek() != '=') {
        return Error("expected '=' after attribute name");
      }
      cursor_.Advance();
      cursor_.SkipWhitespace();
      if (cursor_.AtEnd() ||
          (cursor_.Peek() != '"' && cursor_.Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = cursor_.Advance();
      size_t start = cursor_.pos();
      while (!cursor_.AtEnd() && cursor_.Peek() != quote) {
        if (cursor_.Peek() == '<') {
          return Error("'<' in attribute value");
        }
        cursor_.Advance();
      }
      if (cursor_.AtEnd()) return Error("unterminated attribute value");
      std::string_view raw = cursor_.Slice(start, cursor_.pos());
      cursor_.Advance();  // Closing quote.
      for (const Attribute& existing : *attributes) {
        if (existing.name == name) {
          return Error("duplicate attribute '" + std::string(name) + "'");
        }
      }
      Attribute attr;
      attr.name.assign(name);
      XPRED_RETURN_NOT_OK(DecodeText(raw, &attr.value));
      attributes->push_back(std::move(attr));
      if (options_.max_attributes_per_element != 0 &&
          attributes->size() > options_.max_attributes_per_element) {
        return Status::ResourceExhausted(
            StringPrintf("attributes per element exceed %zu",
                         options_.max_attributes_per_element));
      }
    }
  }

  /// Parses the root element and everything inside it.
  ///
  /// Iterative with an explicit open-element stack, so document depth
  /// costs heap, never native stack: a depth cap of 100k+ is safe. The
  /// text buffer is shared across levels — it is always flushed before
  /// descending into a child and drained at each end tag, so character
  /// runs never span an element boundary.
  Status ParseRootElement() {
    XPRED_RETURN_NOT_OK(HandleStartTag());
    while (!open_elements_.empty()) {
      if (options_.budget != nullptr) {
        XPRED_RETURN_NOT_OK(options_.budget->CheckDeadline());
      }
      XPRED_RETURN_NOT_OK(ParseContentStep());
    }
    return Status::OK();
  }

  /// Parses one start tag at the cursor's '<'. Empty elements emit both
  /// events immediately; open elements are pushed onto the stack.
  Status HandleStartTag() {
    if (options_.max_depth != 0 &&
        open_elements_.size() + 1 > options_.max_depth) {
      return Status::ResourceExhausted(
          StringPrintf("element nesting exceeds %zu", options_.max_depth));
    }
    cursor_.Advance();  // '<'
    std::string_view name;
    XPRED_RETURN_NOT_OK(ParseName(&name));
    std::string element_name(name);  // Owned: attribute parsing advances.
    XPRED_RETURN_NOT_OK(ParseAttributes(&attributes_));
    if (cursor_.ConsumeIf("/>")) {
      XPRED_RETURN_NOT_OK(handler_->StartElement(element_name, attributes_));
      return handler_->EndElement(element_name);
    }
    if (!cursor_.ConsumeIf(">")) return Error("expected '>'");
    XPRED_RETURN_NOT_OK(handler_->StartElement(element_name, attributes_));
    open_elements_.push_back(std::move(element_name));
    return Status::OK();
  }

  /// Consumes one unit of content inside the innermost open element: a
  /// text run plus the markup that terminates it (end tag, child start
  /// tag, comment, CDATA, or PI).
  Status ParseContentStep() {
    size_t start = cursor_.pos();
    while (!cursor_.AtEnd() && cursor_.Peek() != '<') cursor_.Advance();
    if (cursor_.pos() > start) {
      XPRED_RETURN_NOT_OK(
          DecodeText(cursor_.Slice(start, cursor_.pos()), &decoded_));
      text_ += decoded_;
    }
    if (cursor_.AtEnd()) {
      return Error("unterminated element '" + open_elements_.back() + "'");
    }
    if (cursor_.ConsumeIf("</")) {
      XPRED_RETURN_NOT_OK(FlushText(&text_));
      std::string_view end_name;
      XPRED_RETURN_NOT_OK(ParseName(&end_name));
      cursor_.SkipWhitespace();
      if (!cursor_.ConsumeIf(">")) return Error("expected '>' in end tag");
      if (end_name != open_elements_.back()) {
        return Error("mismatched end tag: expected </" +
                     open_elements_.back() + ">, found </" +
                     std::string(end_name) + ">");
      }
      XPRED_RETURN_NOT_OK(handler_->EndElement(open_elements_.back()));
      open_elements_.pop_back();
      return Status::OK();
    }
    if (cursor_.ConsumeIf("<!--")) {
      return SkipUntil("-->", "unterminated comment");
    }
    if (cursor_.ConsumeIf("<![CDATA[")) {
      size_t cdata_start = cursor_.pos();
      for (;;) {
        if (cursor_.AtEnd()) return Error("unterminated CDATA section");
        if (cursor_.Peek() == ']' && cursor_.PeekAt(1) == ']' &&
            cursor_.PeekAt(2) == '>') {
          break;
        }
        cursor_.Advance();
      }
      text_.append(cursor_.Slice(cdata_start, cursor_.pos()));
      cursor_.AdvanceBy(3);  // "]]>"
      return Status::OK();
    }
    if (cursor_.ConsumeIf("<?")) {
      return SkipUntil("?>", "unterminated processing instruction");
    }
    // Child element.
    XPRED_RETURN_NOT_OK(FlushText(&text_));
    return HandleStartTag();
  }

  Status FlushText(std::string* text) {
    if (text->empty()) return Status::OK();
    bool all_space = true;
    for (char c : *text) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        all_space = false;
        break;
      }
    }
    Status st = Status::OK();
    if (!all_space || !options_.skip_whitespace_text) {
      st = handler_->Characters(*text);
    }
    text->clear();
    return st;
  }

  std::string_view input_;
  Cursor cursor_;
  SaxParser::Options options_;
  ContentHandler* handler_;
  /// Names of the currently open elements, outermost first.
  std::vector<std::string> open_elements_;
  /// Pending character data for the innermost open element.
  std::string text_;
  /// Scratch buffers reused across elements.
  std::string decoded_;
  std::vector<Attribute> attributes_;
  uint64_t entity_expansions_ = 0;
};

}  // namespace

Status SaxParser::Parse(std::string_view input, ContentHandler* handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("handler must not be null");
  }
  ParserImpl impl(input, options_, handler);
  return impl.Run();
}

}  // namespace xpred::xml
