#ifndef XPRED_XML_GENERATOR_H_
#define XPRED_XML_GENERATOR_H_

#include <cstdint>

#include "common/random.h"
#include "xml/document.h"
#include "xml/dtd.h"

namespace xpred::xml {

/// \brief Random XML document generator guided by a DTD.
///
/// Substitute for the IBM XML Generator used in the paper (§6.1). Like
/// that tool, it expands content models randomly from the root element
/// and prunes the expansion at a configurable maximum number of levels
/// (the paper varies this from 6 to 10, matching the maximum XPE
/// length).
class DocumentGenerator {
 public:
  struct Options {
    /// Maximum number of levels in the generated tree (root = level 1).
    /// Content below this level is pruned, as in the IBM generator.
    uint32_t max_depth = 8;
    /// Probability that an optional ('?') particle is instantiated.
    double optional_prob = 0.7;
    /// Probability of adding one more repetition to a '*' / '+'
    /// particle (geometric; expected extra repeats p/(1-p)).
    double repeat_prob = 0.55;
    /// Hard cap on repetitions of a single particle.
    uint32_t max_repeats = 6;
    /// Probability that an #IMPLIED attribute is emitted. #REQUIRED
    /// attributes are always emitted.
    double attribute_prob = 0.55;
    /// Numeric CDATA attribute values are drawn uniformly from
    /// [0, attribute_value_range). Kept small so equality filters have
    /// realistic selectivity (shared pub/sub interests).
    uint32_t attribute_value_range = 25;
    /// Number of items generated for mixed content ((#PCDATA | ...)*) is
    /// geometric with repeat_prob, but element children within mixed
    /// content are chosen with this probability (vs. text).
    double mixed_element_prob = 0.4;
    /// Safety bound on the number of elements per document.
    uint32_t max_elements = 5000;
  };

  DocumentGenerator(const Dtd* dtd, Options options)
      : dtd_(dtd), options_(options) {}

  /// Generates one document. Deterministic in \p seed.
  Document Generate(uint64_t seed) const;

 private:
  struct GenState {
    Random rng;
    Document doc;
    uint32_t element_count = 0;
    explicit GenState(uint64_t seed) : rng(seed) {}
  };

  void ExpandElement(const ElementDecl& decl, NodeId node,
                     uint32_t depth, GenState* state) const;
  void ExpandParticle(const ContentParticle& particle, NodeId parent,
                      uint32_t depth, GenState* state) const;
  void EmitChild(const std::string& name, NodeId parent, uint32_t depth,
                 GenState* state) const;
  uint32_t DrawRepeats(Repeat repeat, Random* rng) const;

  const Dtd* dtd_;
  Options options_;
};

}  // namespace xpred::xml

#endif  // XPRED_XML_GENERATOR_H_
