#ifndef XPRED_XML_STANDARD_DTDS_H_
#define XPRED_XML_STANDARD_DTDS_H_

#include "xml/dtd.h"

namespace xpred::xml {

/// \brief NITF-like DTD (News Industry Text Format).
///
/// Substitute for the real NITF DTD (nitf.org) used in the paper.
/// Reproduces the characteristics the experiments depend on: a large
/// element vocabulary (~120 names), deep and heavily optional content
/// models, mixed content with recursion (p / em / fn), and a high
/// attribute density. Random query workloads over this DTD are highly
/// selective (the paper reports ~6% matched expressions).
const Dtd& NitfLikeDtd();

/// \brief PSD-like DTD (Protein Sequence Database).
///
/// Substitute for the real PSD DTD (pir.georgetown.edu). Small
/// vocabulary (~35 names), shallow and repetitive structure, few
/// attributes; generated documents instantiate most of the vocabulary,
/// so random query workloads match often (the paper reports ~75%).
const Dtd& PsdLikeDtd();

/// Raw DTD text (exposed for tests of the DTD parser).
const char* NitfLikeDtdText();
const char* PsdLikeDtdText();

}  // namespace xpred::xml

#endif  // XPRED_XML_STANDARD_DTDS_H_
