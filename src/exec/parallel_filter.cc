#include "exec/parallel_filter.h"

#include <algorithm>
#include <atomic>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/stopwatch.h"
#include "obs/flight_recorder.h"

namespace xpred::exec {

ParallelFilter::ParallelFilter(const Options& options) : options_(options) {
  options_.threads = std::max<size_t>(options_.threads, 1);
  options_.partitions = std::max<size_t>(options_.partitions, 1);
  partitions_.reserve(options_.partitions);
  for (size_t p = 0; p < options_.partitions; ++p) {
    partitions_.push_back(std::make_unique<core::Matcher>(options_.matcher));
  }
  local_to_global_.resize(options_.partitions);
  if (options_.threads > 1) {
    WorkStealingExecutor::Options exec_options;
    exec_options.workers = options_.threads;
    exec_options.seed = options_.seed;
    executor_ = std::make_unique<WorkStealingExecutor>(exec_options);
  }
}

ParallelFilter::ParallelFilter(const Options& options,
                               core::IndexEpochManager* manager)
    : options_(options), manager_(manager) {
  options_.threads = std::max<size_t>(options_.threads, 1);
  options_.partitions = manager_->partition_count();
  if (options_.threads > 1) {
    WorkStealingExecutor::Options exec_options;
    exec_options.workers = options_.threads;
    exec_options.seed = options_.seed;
    executor_ = std::make_unique<WorkStealingExecutor>(exec_options);
  }
}

ParallelFilter::~ParallelFilter() = default;

Result<core::ExprId> ParallelFilter::AddExpression(std::string_view xpath) {
  if (manager_ != nullptr) {
    Result<core::ExprId> sid = manager_->Subscribe(xpath);
    if (!sid.ok()) return sid.status();
    Result<uint64_t> epoch = manager_->Publish();
    if (!epoch.ok()) return epoch.status();
    return *sid;
  }
  const size_t p = next_partition_;
  Result<core::ExprId> local = partitions_[p]->AddExpression(xpath);
  if (!local.ok()) return local.status();
  // Round-robin only on success, keeping partition loads balanced
  // even when some expressions fail to parse.
  next_partition_ = (next_partition_ + 1) % partitions_.size();
  const core::ExprId global = next_sid_++;
  SidSlot slot;
  slot.partition = static_cast<uint32_t>(p);
  slot.local = *local;
  sids_.push_back(slot);
  std::vector<core::ExprId>& map = local_to_global_[p];
  if (map.size() <= *local) map.resize(*local + 1, 0);
  map[*local] = global;
  return global;
}

Status ParallelFilter::FilterDocument(const xml::Document& document,
                                      std::vector<core::ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  CollectingResultSink sink;
  DocRef ref;
  ref.doc = &document;
  Status st = FilterBatch(std::span<const DocRef>(&ref, 1), sink);
  if (!sink.results().empty()) {
    const CollectingResultSink::DocResult& r = sink.results()[0];
    matched->insert(matched->end(), r.matched.begin(), r.matched.end());
  }
  return st;
}

Status ParallelFilter::FilterBatch(std::span<const DocRef> docs,
                                   ResultSink& sink) {
  const size_t num_docs = docs.size();
  if (num_docs == 0) return Status::OK();
  for (const DocRef& ref : docs) {
    if (ref.doc == nullptr) {
      return Status::InvalidArgument("DocRef::doc must not be null");
    }
  }
  Stopwatch batch_watch;
  // Live mode: pin the current epoch snapshot for the whole batch.
  // The pin is the entire read-side protocol — one fetch_add plus a
  // re-check — and guarantees the writer cannot recycle this side
  // until the batch completes (grace-period counting, DESIGN.md §15).
  core::IndexEpochManager::PinnedSnapshot pinned;
  if (manager_ != nullptr) {
    pinned = manager_->Pin();
    last_batch_epoch_ = pinned->epoch();
  }
  const size_t num_parts =
      manager_ != nullptr ? pinned->partition_count() : partitions_.size();
#ifndef XPRED_NO_FLIGHT_RECORDER
  obs::FlightRecorder* recorder = obs::FlightRecorder::Installed();
#else
  obs::FlightRecorder* recorder = nullptr;
#endif
  // Cheap per-document fingerprints (root tag hash + element count)
  // for crash-bundle in-flight annotations; computed only when a
  // recorder is installed.
  std::vector<uint64_t> fingerprints;
  if (recorder != nullptr) {
    fingerprints.reserve(num_docs);
    for (const DocRef& ref : docs) {
      if (ref.doc->tag_count() == 0) {
        fingerprints.push_back(0);
        continue;
      }
      const xml::Element& root = ref.doc->element(ref.doc->root());
      fingerprints.push_back(
          HashCombine(Fnv1a(root.tag), ref.doc->tag_count()));
    }
  }
  // Frozen mode flushes lazy evaluation orders here, between batches.
  // In live mode this is the writer's job (IndexEpochManager prepares
  // every partition before publishing): a pinned snapshot is shared
  // with concurrent batches and must never be written to.
  if (manager_ == nullptr) {
    for (const std::unique_ptr<core::Matcher>& m : partitions_) {
      m->PrepareForFiltering();
    }
  }
  const size_t workers = executor_ != nullptr ? executor_->workers() : 1;
  if (contexts_.size() < workers * num_parts) {
    contexts_.resize(workers * num_parts);
  }
  obs::Tracer* tracer = inst().tracer();
  if (tracer != nullptr && span_buffers_.size() < contexts_.size()) {
    span_buffers_.resize(contexts_.size());
  }
  for (size_t i = 0; i < contexts_.size(); ++i) {
    std::unique_ptr<core::MatchContext>& ctx = contexts_[i];
    if (ctx == nullptr) ctx = std::make_unique<core::MatchContext>();
    ctx->BindSpanBuffer(tracer != nullptr ? &span_buffers_[i] : nullptr);
    ctx->EnableAttribution(attribution_sink_ != nullptr);
  }

  const size_t num_tasks = num_docs * num_parts;
  std::vector<TaskResult> results(num_tasks);
  // One failure flag per document; sibling partition tasks poll it at
  // path granularity and bail out early (cooperative cancellation).
  std::vector<std::atomic<bool>> failed(num_docs);
  const ResourceLimits& limits = resource_limits();

  auto task = [&](size_t worker, size_t t) {
    const size_t d = t / num_parts;
    const size_t p = t % num_parts;
    TaskResult& out = results[t];
    if (failed[d].load(std::memory_order_acquire)) {
      out.cancelled = true;
      return;
    }
    if (watchdog_ != nullptr) watchdog_->BeginWork(worker);
    if (recorder != nullptr) {
      recorder->AnnotateDocument(fingerprints[d], d + 1);
    }
    core::MatchContext& ctx = *contexts_[worker * num_parts + p];
    ctx.budget().Arm(limits);
    ctx.set_cancel_flag(&failed[d]);
    Status st = Status::OK();
    // Structural validation runs once per document (partition 0), the
    // same single begin-document checkpoint the serial path has.
    if (p == 0) {
      st = ValidateDocumentAgainstBudget(*docs[d].doc, &ctx.budget(),
                                         limits);
    }
    if (st.ok()) {
      const core::Matcher& matcher = manager_ != nullptr
                                         ? pinned->partition(p)
                                         : *partitions_[p];
      st = matcher.FilterDocument(*docs[d].doc, &ctx, &out.matched);
    }
    ctx.set_cancel_flag(nullptr);
    if (!st.ok()) {
      out.matched.clear();
      if (st.code() == StatusCode::kRejected &&
          st.message() == core::kMatchCancelledMessage) {
        out.cancelled = true;
      } else {
        out.status = st;
        failed[d].store(true, std::memory_order_release);
        if (st.code() == StatusCode::kResourceExhausted ||
            st.code() == StatusCode::kDeadlineExceeded) {
          XPRED_RECORD_EVENT(obs::EventType::kBudgetExhausted, t,
                             static_cast<uint64_t>(st.code()));
        }
      }
    }
    if (watchdog_ != nullptr) watchdog_->EndWork(worker);
  };

  XPRED_RECORD_EVENT(obs::EventType::kBatchBegin, num_docs, num_tasks);
  RunTasks(num_tasks, task);

  // Flush counters the worker contexts accumulated (their instruments
  // are unbound; the registry is not thread-safe). Paths are counted
  // once per document, from the partition-0 context, since every
  // partition walks the same paths.
  core::MatchCounters totals;
  for (size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i] == nullptr) continue;
    core::MatchCounters c = contexts_[i]->TakeCounters();
    if (i % num_parts != 0) c.paths = 0;
    totals.Accumulate(c);
  }
  obs::EngineInstruments& instruments = inst();
  if (totals.paths != 0) instruments.AddPaths(totals.paths);
  if (totals.occurrence_runs != 0) {
    instruments.AddOccurrenceRuns(totals.occurrence_runs);
  }
  if (totals.nested_truncated != 0) {
    instruments.AddNestedTruncated(totals.nested_truncated);
  }
  if (totals.predicate_matches != 0) {
    instruments.AddPredicateMatches(totals.predicate_matches);
  }
  // Drain attribution the same way: worker contexts recorded locally,
  // the sink is fed only from this (the calling) thread. Keys from
  // partition p are namespaced p << 32 because each partition's
  // matcher has its own InternalId space.
  if (attribution_sink_ != nullptr) {
    for (size_t i = 0; i < contexts_.size(); ++i) {
      if (contexts_[i] == nullptr) continue;
      core::AttributionDelta delta = contexts_[i]->TakeAttribution();
      if (delta.empty()) continue;
      attribution_sink_->Ingest(delta,
                                static_cast<uint64_t>(i % num_parts) << 32);
    }
  }

  // Merge and report per document, in ascending document order.
  Status first_error = Status::OK();
  std::vector<core::ExprId> merged;
  for (size_t d = 0; d < num_docs; ++d) {
    Status doc_status = Status::OK();
    for (size_t p = 0; p < num_parts; ++p) {
      const TaskResult& r = results[d * num_parts + p];
      if (!r.cancelled && !r.status.ok()) {
        doc_status = r.status;
        break;
      }
    }
    merged.clear();
    if (doc_status.ok()) {
      for (size_t p = 0; p < num_parts; ++p) {
        for (core::ExprId sid : results[d * num_parts + p].matched) {
          merged.push_back(manager_ != nullptr
                               ? pinned->GlobalSid(p, sid)
                               : local_to_global_[p][sid]);
        }
      }
      std::sort(merged.begin(), merged.end());
      instruments.BeginDocument();
      instruments.EndDocument();
    } else if (first_error.ok()) {
      first_error = doc_status;
    }
    sink.OnDocument(d, doc_status, merged);
  }

  // Unpin before anything below touches the manager again. Blocking
  // publishes hold writer_mu_ while waiting for this side's pins to
  // drain, so holding the pin across any writer_mu_ acquisition (e.g.
  // a metrics gauge read) is a lock-order inversion that deadlocks
  // against a concurrent Publish().
  pinned.Release();

  // Merge the worker-local stage spans and emit them through the
  // tracer from this thread, as one aggregate span per touched stage
  // for the whole batch (attached to the batch's last document).
  if (tracer != nullptr) {
    obs::StageSpanBuffer merged;
    for (obs::StageSpanBuffer& buf : span_buffers_) {
      merged.Merge(buf);
      buf.Reset();
    }
    if (merged.any_touched()) {
      uint64_t total = 0;
      for (size_t s = 0; s < obs::kStageCount; ++s) {
        total += merged.stage_nanos(static_cast<obs::Stage>(s));
      }
      const uint64_t now = tracer->NowNanos();
      tracer->EmitStageBuffer(name(), &merged,
                              now >= total ? now - total : 0);
    }
  }

  PublishPoolMetrics(static_cast<uint64_t>(batch_watch.ElapsedNanos()));
  XPRED_RECORD_EVENT(obs::EventType::kBatchEnd, num_docs,
                     static_cast<uint64_t>(first_error.code()));
  return first_error;
}

void ParallelFilter::RunTasks(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  bool serial = executor_ == nullptr;
#ifndef XPRED_DISABLE_FAULT_INJECTION
  // The fault injector is not thread-safe and chaos journals must be
  // byte-identical across runs: execute inline, in task order.
  if (FaultInjector::Installed() != nullptr) serial = true;
#endif
  if (serial) {
    for (size_t t = 0; t < n; ++t) fn(0, t);
    return;
  }
  executor_->ParallelFor(n, fn);
}

void ParallelFilter::PublishPoolMetrics(uint64_t batch_nanos) {
  obs::MetricsRegistry* registry = metrics_registry();
  if (registry == nullptr) return;
  if (pool_registry_ != registry) {
    const std::vector<obs::Label> labels = {{"engine", std::string(name())}};
    pool_workers_gauge_ = registry->AddGauge(
        "xpred_pool_workers", "Worker threads in the filtering pool",
        labels);
    pool_queue_depth_gauge_ = registry->AddGauge(
        "xpred_pool_queue_depth",
        "Largest per-worker initial task queue depth of recent batches",
        labels);
    pool_steal_counter_ = registry->AddCounter(
        "xpred_pool_steal_count", "Successful work-steal operations",
        labels);
    pool_busy_fraction_gauge_ = registry->AddGauge(
        "xpred_pool_worker_busy_fraction",
        "Fraction of pool wall time spent executing tasks", labels);
    pool_batch_latency_ = registry->AddHistogram(
        "xpred_pool_batch_latency_ns", "FilterBatch wall latency", labels);
    watchdog_scans_counter_ = registry->AddCounter(
        "xpred_watchdog_scans_total", "Watchdog heartbeat scans completed",
        labels);
    watchdog_stalls_counter_ = registry->AddCounter(
        "xpred_watchdog_stalls_total",
        "Stalled-worker episodes detected by the watchdog", labels);
    watchdog_dumps_counter_ = registry->AddCounter(
        "xpred_watchdog_dumps_total",
        "Voluntary diagnostic bundles written by the watchdog", labels);
    watchdog_stalled_gauge_ = registry->AddGauge(
        "xpred_watchdog_stalled_workers",
        "Workers currently considered stalled", labels);
    watchdog_last_stall_gauge_ = registry->AddGauge(
        "xpred_watchdog_last_stall_ns",
        "Watchdog-epoch nanoseconds of the most recent stall report "
        "(0 = never)",
        labels);
    watchdog_published_ = obs::Watchdog::Stats{};
    if (manager_ != nullptr) {
      epoch_current_gauge_ = registry->AddGauge(
          "xpred_epoch_current", "Currently published index epoch",
          labels);
      epoch_pins_gauge_ = registry->AddGauge(
          "xpred_epoch_pins",
          "Batches currently pinning the published epoch snapshot",
          labels);
      epoch_pending_ops_gauge_ = registry->AddGauge(
          "xpred_epoch_pending_ops",
          "Subscription mutations queued for the next epoch", labels);
      epoch_publish_counter_ = registry->AddCounter(
          "xpred_epoch_publishes_total", "Index epochs published",
          labels);
      epoch_ops_applied_counter_ = registry->AddCounter(
          "xpred_epoch_ops_applied_total",
          "Subscription mutations replayed into epoch sides", labels);
      epoch_retire_wait_counter_ = registry->AddCounter(
          "xpred_epoch_retire_waits_total",
          "Publishes that waited for a side's grace period to drain",
          labels);
      epoch_published_ = core::IndexEpochManager::Stats{};
    }
    pool_registry_ = registry;
  }
  const size_t workers = executor_ != nullptr ? executor_->workers() : 1;
  pool_workers_gauge_->Set(static_cast<double>(workers));
  if (executor_ != nullptr) {
    WorkStealingExecutor::Stats stats = executor_->ConsumeStats();
    pool_queue_depth_gauge_->Set(
        static_cast<double>(stats.max_initial_queue_depth));
    pool_steal_counter_->Increment(stats.steals_succeeded);
    if (stats.wall_nanos > 0) {
      pool_busy_fraction_gauge_->Set(
          static_cast<double>(stats.busy_nanos) /
          (static_cast<double>(stats.wall_nanos) *
           static_cast<double>(workers)));
    }
  }
  pool_batch_latency_->Record(batch_nanos);
  if (watchdog_ != nullptr) {
    // The watchdog thread never touches the registry (registries are
    // not thread-safe); its atomic totals are converted to counter
    // increments here, on the registry owner's thread.
    const obs::Watchdog::Stats stats = watchdog_->stats();
    watchdog_scans_counter_->Increment(stats.scans -
                                       watchdog_published_.scans);
    watchdog_stalls_counter_->Increment(stats.stalls -
                                        watchdog_published_.stalls);
    watchdog_dumps_counter_->Increment(stats.dumps -
                                       watchdog_published_.dumps);
    watchdog_stalled_gauge_->Set(static_cast<double>(stats.stalled_now));
    watchdog_last_stall_gauge_->Set(
        static_cast<double>(stats.last_stall_nanos));
    watchdog_published_ = stats;
  }
  if (manager_ != nullptr) {
    // Like the watchdog: the manager's atomic totals become counter
    // increments here, on the registry owner's thread.
    const core::IndexEpochManager::Stats stats = manager_->stats();
    epoch_current_gauge_->Set(
        static_cast<double>(manager_->current_epoch()));
    epoch_pins_gauge_->Set(static_cast<double>(manager_->current_pins()));
    epoch_pending_ops_gauge_->Set(
        static_cast<double>(manager_->pending_ops()));
    epoch_publish_counter_->Increment(stats.publishes -
                                      epoch_published_.publishes);
    epoch_ops_applied_counter_->Increment(stats.ops_applied -
                                          epoch_published_.ops_applied);
    epoch_retire_wait_counter_->Increment(stats.retire_waits -
                                          epoch_published_.retire_waits);
    epoch_published_ = stats;
  }
}

size_t ParallelFilter::ApproximateMemoryBytes() const {
  if (manager_ != nullptr) {
    // The manager (shared, possibly across several live filters) owns
    // the indexes; only the filter's own contexts are counted here.
    return contexts_.size() * sizeof(core::MatchContext);
  }
  size_t total = sids_.size() * sizeof(SidSlot);
  for (const std::unique_ptr<core::Matcher>& m : partitions_) {
    total += m->ApproximateMemoryBytes();
  }
  for (const std::vector<core::ExprId>& map : local_to_global_) {
    total += map.size() * sizeof(core::ExprId);
  }
  return total;
}

}  // namespace xpred::exec
