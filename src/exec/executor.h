#ifndef XPRED_EXEC_EXECUTOR_H_
#define XPRED_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xpred::exec {

/// \brief Chase–Lev work-stealing deque over task indices.
///
/// The owner pushes and pops at the bottom; thieves steal from the
/// top. This implementation is specialized for ParallelFor's usage:
/// the deque is filled once, under quiescence, before workers start
/// (PushUnsynchronized), so only Pop and Steal need the published
/// memory-model dance (Chase & Lev, SPAA'05; the C11 formulation of
/// Lê et al., PPoPP'13).
class ChaseLevDeque {
 public:
  /// Re-initializes for a job of at most \p capacity tasks. Must be
  /// called while no concurrent Pop/Steal is possible.
  void Reset(size_t capacity);

  /// Owner-only, pre-publication: append without synchronization.
  void PushUnsynchronized(size_t value);

  /// Owner-only: pop the most recently pushed element (LIFO keeps the
  /// owner cache-warm). Returns false when empty.
  bool Pop(size_t* value);

  /// Any thread: steal the oldest element (FIFO spreads the largest
  /// remaining chunk of work). Returns false when empty or when the
  /// race for the element was lost.
  bool Steal(size_t* value);

  /// Racy size estimate for gauges; never used for correctness.
  size_t SizeApprox() const;

 private:
  std::vector<size_t> buffer_;
  size_t mask_ = 0;
  /// Steal end. Strictly increases.
  std::atomic<int64_t> top_{0};
  /// Owner end. Only the owner writes it.
  std::atomic<int64_t> bottom_{0};
};

/// \brief Fixed-size work-stealing thread pool executing index-space
/// parallel-for jobs.
///
/// Design (see DESIGN.md §12):
///  - `workers` fixed threads; the caller of ParallelFor participates
///    as worker 0, so `workers == 1` means no background threads and
///    fully inline execution.
///  - Each worker owns a Chase–Lev deque. The task index space is
///    pre-split round-robin across deques before the job is
///    published, so every worker starts with local work.
///  - An idle worker picks steal victims with a SplitMix64 generator
///    seeded from (options.seed, worker id, job epoch): runs are
///    deterministic in *which* victim sequence each worker probes for
///    a given seed, keeping steal behavior reproducible enough to
///    debug, while the actual interleaving stays scheduler-dependent
///    (results must therefore never depend on execution order).
///  - Completion: an atomic remaining-task counter; workers spin/yield
///    on steal failure until it hits zero, and the job returns when
///    every background worker has quiesced.
class WorkStealingExecutor {
 public:
  struct Options {
    /// Total workers including the calling thread. Clamped to >= 1.
    size_t workers = 1;
    /// Seed for deterministic victim-selection sequences.
    uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  /// Aggregate counters since the last ConsumeStats() call.
  struct Stats {
    uint64_t tasks_executed = 0;
    uint64_t steals_attempted = 0;
    uint64_t steals_succeeded = 0;
    /// Sum over workers of time spent running task bodies.
    uint64_t busy_nanos = 0;
    /// Sum over jobs of wall time inside ParallelFor.
    uint64_t wall_nanos = 0;
    /// Largest per-worker initial queue depth seen in any job.
    uint64_t max_initial_queue_depth = 0;
  };

  explicit WorkStealingExecutor(const Options& options);
  ~WorkStealingExecutor();

  WorkStealingExecutor(const WorkStealingExecutor&) = delete;
  WorkStealingExecutor& operator=(const WorkStealingExecutor&) = delete;

  /// Runs fn(worker, index) for every index in [0, n), distributed
  /// over the pool. Blocks until all n calls returned. The calling
  /// thread executes tasks as worker 0. \p fn must be safe to call
  /// concurrently from different workers with distinct indices and
  /// must not call ParallelFor reentrantly.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& fn);

  size_t workers() const { return workers_; }

  /// Returns counters accumulated since the previous call and resets
  /// them. Call only while no job is in flight.
  Stats ConsumeStats();

 private:
  struct alignas(64) WorkerState {
    ChaseLevDeque deque;
    uint64_t tasks_executed = 0;
    uint64_t steals_attempted = 0;
    uint64_t steals_succeeded = 0;
    uint64_t busy_nanos = 0;
  };

  void RunWorker(size_t worker);
  /// Drains local work, then steals, until the current job is done.
  void WorkUntilJobDone(size_t worker, uint64_t epoch);

  const size_t workers_;
  const uint64_t seed_;
  std::vector<std::unique_ptr<WorkerState>> states_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  uint64_t job_epoch_ = 0;
  bool shutdown_ = false;
  size_t active_workers_ = 0;
  const std::function<void(size_t, size_t)>* job_fn_ = nullptr;

  std::atomic<size_t> remaining_{0};

  Stats stats_;
  uint64_t stats_wall_nanos_ = 0;
  uint64_t stats_max_depth_ = 0;
};

}  // namespace xpred::exec

#endif  // XPRED_EXEC_EXECUTOR_H_
