#ifndef XPRED_EXEC_PARALLEL_FILTER_H_
#define XPRED_EXEC_PARALLEL_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/epoch_manager.h"
#include "core/match_context.h"
#include "core/matcher.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace xpred::exec {

/// A document handed to FilterBatch. The pointed-to document must stay
/// valid for the duration of the call.
struct DocRef {
  const xml::Document* doc = nullptr;
};

/// \brief Receiver of per-document batch results.
///
/// OnDocument is invoked from the thread that called FilterBatch, in
/// ascending document order, exactly once per input document — so a
/// sink needs no synchronization. \p matched is sorted ascending and
/// only valid for the duration of the call.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnDocument(size_t doc_index, const Status& status,
                          std::span<const core::ExprId> matched) = 0;
};

/// Sink that copies every result; convenient for tests and the CLI.
class CollectingResultSink : public ResultSink {
 public:
  struct DocResult {
    Status status;
    std::vector<core::ExprId> matched;
  };

  void OnDocument(size_t doc_index, const Status& status,
                  std::span<const core::ExprId> matched) override {
    if (results_.size() <= doc_index) results_.resize(doc_index + 1);
    results_[doc_index].status = status;
    results_[doc_index].matched.assign(matched.begin(), matched.end());
  }

  const std::vector<DocResult>& results() const { return results_; }
  void clear() { results_.clear(); }

 private:
  std::vector<DocResult> results_;
};

/// \brief Parallel batch front end over the paper's matcher
/// (DESIGN.md §12).
///
/// Two parallelism axes, composable:
///  - *Document sharding*: each document of a batch is an independent
///    task; worker threads filter different documents concurrently
///    against the shared read-only indexes, each with a thread-local
///    MatchContext.
///  - *Expression partitioning*: subscriptions are split round-robin
///    across `partitions` disjoint Matchers; one document fans out to
///    one task per partition and the per-partition match sets are
///    merged. This shrinks the per-task expression sweep, the
///    dominant §6.5 cost, at the price of encoding the document's
///    paths once per partition.
///
/// Determinism contract: for a given subscription set, the *set* of
/// (document, subscription) matches is identical for every (threads,
/// partitions) configuration and identical to a single Matcher's
/// output; per-document match lists are reported sorted ascending.
/// Only scheduling order varies across runs — never results.
class ParallelFilter : public core::FilterEngine {
 public:
  struct Options {
    /// Worker threads (including the calling thread). 1 = inline.
    size_t threads = 1;
    /// Expression partitions (disjoint matcher shards). 1 = none.
    size_t partitions = 1;
    /// Seed for the executor's deterministic victim selection.
    uint64_t seed = 0x9e3779b97f4a7c15ull;
    core::Matcher::Options matcher;
  };

  explicit ParallelFilter(const Options& options);
  ParallelFilter() : ParallelFilter(Options{}) {}

  /// Live-subscription mode: filters against \p manager's published
  /// epoch snapshots instead of engine-owned frozen matchers
  /// (DESIGN.md §15). Each FilterBatch pins the current snapshot for
  /// the batch's lifetime, so Subscribe/Unsubscribe/Publish may run
  /// concurrently on the manager from another thread. Options::
  /// partitions and Options::matcher are ignored — the manager owns
  /// the index layout. \p manager is not owned and must outlive the
  /// filter.
  ParallelFilter(const Options& options, core::IndexEpochManager* manager);
  ~ParallelFilter() override;

  /// In live mode, queues the subscription on the epoch manager and
  /// publishes immediately (one epoch per call — bulk loaders should
  /// batch Subscribe calls on the manager and Publish once).
  Result<core::ExprId> AddExpression(std::string_view xpath) override;

  /// Filters one document — a batch of one (same governance and
  /// determinism contract as FilterBatch).
  Status FilterDocument(const xml::Document& document,
                        std::vector<core::ExprId>* matched) override;

  /// Filters a batch of documents across the pool. Per-document
  /// status and sorted matches are delivered through \p sink in
  /// ascending document order from the calling thread. Returns the
  /// first non-OK per-document status (by document order) or OK; a
  /// failed document never aborts the rest of the batch.
  Status FilterBatch(std::span<const DocRef> docs, ResultSink& sink);

  size_t subscription_count() const override {
    return manager_ != nullptr ? manager_->subscription_count() : next_sid_;
  }
  std::string_view name() const override { return "parallel"; }
  size_t ApproximateMemoryBytes() const override;

  size_t threads() const { return options_.threads; }
  size_t partitions() const {
    return manager_ != nullptr ? manager_->partition_count()
                               : partitions_.size();
  }

  /// \name Live-subscription mode
  ///@{
  bool live() const { return manager_ != nullptr; }
  core::IndexEpochManager* epoch_manager() const { return manager_; }
  /// Epoch pinned by the most recent FilterBatch (0 before the first
  /// batch). Read it from the FilterBatch caller's thread only.
  uint64_t last_batch_epoch() const { return last_batch_epoch_; }
  ///@}

  /// Enables per-expression attribution on every worker context.
  /// Deltas are drained and ingested from the FilterBatch caller's
  /// thread after each batch, keyed `partition << 32 | InternalId` —
  /// the sink is never touched from worker threads.
  void set_attribution_sink(core::AttributionSink* sink) {
    attribution_sink_ = sink;
  }
  core::AttributionSink* attribution_sink() const {
    return attribution_sink_;
  }

  /// Read-only access to a partition's matcher, for resolving
  /// attribution keys to display strings
  /// (core::Matcher::ExpressionStrings) and predicates. Frozen mode
  /// only — in live mode pin a snapshot on the epoch manager instead
  /// (the partitions rotate between epoch sides).
  const core::Matcher& partition_matcher(size_t p) const {
    return *partitions_[p];
  }

  /// Attaches a stall watchdog (not owned; nullptr detaches). Workers
  /// publish per-task heartbeats during FilterBatch, and
  /// xpred_watchdog_* metrics are published from the calling thread
  /// alongside the pool metrics. The watchdog should be sized for at
  /// least threads() workers.
  void set_watchdog(obs::Watchdog* watchdog) { watchdog_ = watchdog; }
  obs::Watchdog* watchdog() const { return watchdog_; }

 private:
  struct TaskResult {
    Status status;
    /// True when the task aborted because a sibling task of the same
    /// document failed — excluded from the status merge.
    bool cancelled = false;
    std::vector<core::ExprId> matched;  // Partition-local sids.
  };

  /// Runs fn(worker, task) for every task index; serial (and in
  /// deterministic ascending order) when no executor exists or a
  /// fault injector is installed — the injector is not thread-safe
  /// and chaos journals must stay byte-identical.
  void RunTasks(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Publishes executor stats and batch latency into the metrics
  /// registry (gauge pointers cached per registry).
  void PublishPoolMetrics(uint64_t batch_nanos);

  Options options_;
  /// Live mode: published-epoch snapshots replace partitions_ (which
  /// stays empty). Not owned.
  core::IndexEpochManager* manager_ = nullptr;
  uint64_t last_batch_epoch_ = 0;
  std::vector<std::unique_ptr<core::Matcher>> partitions_;
  /// Global sid -> {partition, partition-local sid}.
  struct SidSlot {
    uint32_t partition = 0;
    core::ExprId local = 0;
  };
  std::vector<SidSlot> sids_;
  /// Per partition: local sid -> global sid.
  std::vector<std::vector<core::ExprId>> local_to_global_;
  core::ExprId next_sid_ = 0;
  size_t next_partition_ = 0;

  std::unique_ptr<WorkStealingExecutor> executor_;
  /// contexts_[worker * partitions + p]: each worker uses its own
  /// context per partition, so contexts are never shared across
  /// threads and carry their own ExecBudget.
  std::vector<std::unique_ptr<core::MatchContext>> contexts_;

  core::AttributionSink* attribution_sink_ = nullptr;
  /// One worker-local stage-span buffer per context; merged and
  /// emitted through the tracer from the calling thread after each
  /// batch (workers must never touch the tracer's sinks).
  std::vector<obs::StageSpanBuffer> span_buffers_;

  obs::Watchdog* watchdog_ = nullptr;

  obs::MetricsRegistry* pool_registry_ = nullptr;
  obs::Gauge* pool_workers_gauge_ = nullptr;
  obs::Gauge* pool_queue_depth_gauge_ = nullptr;
  obs::Counter* pool_steal_counter_ = nullptr;
  obs::Gauge* pool_busy_fraction_gauge_ = nullptr;
  obs::Histogram* pool_batch_latency_ = nullptr;
  obs::Counter* watchdog_scans_counter_ = nullptr;
  obs::Counter* watchdog_stalls_counter_ = nullptr;
  obs::Counter* watchdog_dumps_counter_ = nullptr;
  obs::Gauge* watchdog_stalled_gauge_ = nullptr;
  obs::Gauge* watchdog_last_stall_gauge_ = nullptr;
  /// Watchdog totals already published as counter increments.
  obs::Watchdog::Stats watchdog_published_;
  /// Live-mode epoch metrics (registered only when manager_ != null).
  obs::Gauge* epoch_current_gauge_ = nullptr;
  obs::Gauge* epoch_pins_gauge_ = nullptr;
  obs::Gauge* epoch_pending_ops_gauge_ = nullptr;
  obs::Counter* epoch_publish_counter_ = nullptr;
  obs::Counter* epoch_ops_applied_counter_ = nullptr;
  obs::Counter* epoch_retire_wait_counter_ = nullptr;
  /// Epoch totals already published as counter increments.
  core::IndexEpochManager::Stats epoch_published_;
};

}  // namespace xpred::exec

#endif  // XPRED_EXEC_PARALLEL_FILTER_H_
