#include "exec/executor.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "obs/flight_recorder.h"

namespace xpred::exec {
namespace {

/// SplitMix64 (Steele et al.) — tiny, statistically solid, and
/// deterministic per seed; used only for steal-victim selection.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void ChaseLevDeque::Reset(size_t capacity) {
  size_t cap = NextPowerOfTwo(std::max<size_t>(capacity, 2));
  buffer_.assign(cap, 0);
  mask_ = cap - 1;
  top_.store(0, std::memory_order_relaxed);
  bottom_.store(0, std::memory_order_relaxed);
}

void ChaseLevDeque::PushUnsynchronized(size_t value) {
  int64_t b = bottom_.load(std::memory_order_relaxed);
  buffer_[static_cast<size_t>(b) & mask_] = value;
  bottom_.store(b + 1, std::memory_order_relaxed);
}

bool ChaseLevDeque::Pop(size_t* value) {
  int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  bottom_.store(b, std::memory_order_relaxed);
  // The fence orders the bottom_ store before the top_ load, so a
  // concurrent thief either sees the shrunken deque or this owner sees
  // the thief's advanced top_.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {
    // Empty: undo the speculative decrement.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }
  *value = buffer_[static_cast<size_t>(b) & mask_];
  if (t == b) {
    // Last element: race against thieves via CAS on top_.
    bool won = top_.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }
  return true;
}

bool ChaseLevDeque::Steal(size_t* value) {
  int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return false;
  *value = buffer_[static_cast<size_t>(t) & mask_];
  return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed);
}

size_t ChaseLevDeque::SizeApprox() const {
  int64_t b = bottom_.load(std::memory_order_relaxed);
  int64_t t = top_.load(std::memory_order_relaxed);
  return b > t ? static_cast<size_t>(b - t) : 0;
}

WorkStealingExecutor::WorkStealingExecutor(const Options& options)
    : workers_(std::max<size_t>(options.workers, 1)), seed_(options.seed) {
  states_.reserve(workers_);
  for (size_t w = 0; w < workers_; ++w) {
    states_.push_back(std::make_unique<WorkerState>());
  }
  threads_.reserve(workers_ - 1);
  for (size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { RunWorker(w); });
  }
}

WorkStealingExecutor::~WorkStealingExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealingExecutor::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  Stopwatch wall;
  if (workers_ == 1 || n == 1) {
    // Inline fast path: no publication, no atomics.
    WorkerState& s = *states_[0];
    Stopwatch busy;
    for (size_t i = 0; i < n; ++i) fn(0, i);
    s.tasks_executed += n;
    s.busy_nanos += static_cast<uint64_t>(busy.ElapsedNanos());
    stats_wall_nanos_ += static_cast<uint64_t>(wall.ElapsedNanos());
    stats_max_depth_ = std::max<uint64_t>(stats_max_depth_, n);
    return;
  }

  // Pre-split the index space round-robin so every worker starts with
  // local work; filled under quiescence, before the job publishes.
  const size_t per_worker = (n + workers_ - 1) / workers_;
  for (size_t w = 0; w < workers_; ++w) {
    states_[w]->deque.Reset(per_worker);
  }
  for (size_t i = 0; i < n; ++i) {
    states_[i % workers_]->deque.PushUnsynchronized(i);
  }
  stats_max_depth_ = std::max<uint64_t>(stats_max_depth_, per_worker);
  remaining_.store(n, std::memory_order_release);

  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    active_workers_ = workers_ - 1;
    epoch = ++job_epoch_;
  }
  job_cv_.notify_all();

  WorkUntilJobDone(0, epoch);

  // Wait for background workers to quiesce before the deques (and fn)
  // can be touched again.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return active_workers_ == 0; });
  job_fn_ = nullptr;
  stats_wall_nanos_ += static_cast<uint64_t>(wall.ElapsedNanos());
}

void WorkStealingExecutor::RunWorker(size_t worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || job_epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
    }
    WorkUntilJobDone(worker, seen_epoch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

void WorkStealingExecutor::WorkUntilJobDone(size_t worker, uint64_t epoch) {
  WorkerState& self = *states_[worker];
  const std::function<void(size_t, size_t)>& fn = *job_fn_;
  // Victim sequence deterministic per (seed, worker, epoch).
  uint64_t rng = seed_ ^ (0x100000001b3ull * (worker + 1)) ^
                 (epoch * 0x9e3779b97f4a7c15ull);
  // Consecutive failed steal probes; a kPark event fires once when a
  // dry streak reaches kParkStreak (edge-triggered, so a starved
  // worker does not flood the recorder).
  constexpr uint64_t kParkStreak = 64;
  uint64_t dry_streak = 0;
  while (true) {
    size_t index;
    if (self.deque.Pop(&index)) {
      dry_streak = 0;
      Stopwatch busy;
      fn(worker, index);
      self.busy_nanos += static_cast<uint64_t>(busy.ElapsedNanos());
      ++self.tasks_executed;
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    // Local deque dry: probe a random victim.
    size_t victim = static_cast<size_t>(SplitMix64Next(&rng) % workers_);
    if (victim == worker) {
      std::this_thread::yield();
      continue;
    }
    ++self.steals_attempted;
    if (states_[victim]->deque.Steal(&index)) {
      ++self.steals_succeeded;
      XPRED_RECORD_EVENT(obs::EventType::kSteal, worker, victim);
      dry_streak = 0;
      Stopwatch busy;
      fn(worker, index);
      self.busy_nanos += static_cast<uint64_t>(busy.ElapsedNanos());
      ++self.tasks_executed;
      remaining_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      if (++dry_streak == kParkStreak) {
        XPRED_RECORD_EVENT(obs::EventType::kPark, worker, dry_streak);
      }
      std::this_thread::yield();
    }
  }
}

WorkStealingExecutor::Stats WorkStealingExecutor::ConsumeStats() {
  Stats out;
  for (const std::unique_ptr<WorkerState>& s : states_) {
    out.tasks_executed += s->tasks_executed;
    out.steals_attempted += s->steals_attempted;
    out.steals_succeeded += s->steals_succeeded;
    out.busy_nanos += s->busy_nanos;
    s->tasks_executed = 0;
    s->steals_attempted = 0;
    s->steals_succeeded = 0;
    s->busy_nanos = 0;
  }
  out.wall_nanos = stats_wall_nanos_;
  out.max_initial_queue_depth = stats_max_depth_;
  stats_wall_nanos_ = 0;
  stats_max_depth_ = 0;
  return out;
}

}  // namespace xpred::exec
