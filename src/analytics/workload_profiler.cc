#include "analytics/workload_profiler.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_set>

#include "common/string_util.h"

namespace xpred::analytics {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string KeyName(uint64_t key, const char* prefix,
                    const std::unordered_map<uint64_t, std::string>* names) {
  if (names != nullptr) {
    auto it = names->find(key);
    if (it != names->end()) return it->second;
  }
  return StringPrintf("%s:%" PRIx64, prefix, key);
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

WorkloadProfiler::WorkloadProfiler(const Options& options)
    : options_(options),
      cost_sketch_(options.sketch_capacity),
      pred_sketch_(options.sketch_capacity),
      latency_(options.latency_reservoir, options.seed) {}

void WorkloadProfiler::Ingest(const core::AttributionDelta& delta,
                              uint64_t key_namespace) {
  ++deltas_;
  for (const core::AttributionDelta::ExprEntry& e : delta.exprs) {
    const uint64_t key = key_namespace | e.id;
    total_evals_ += e.evals;
    total_matches_ += e.matches;
    total_cost_ += e.cost;
    cost_sketch_.Add(key, e.cost, e.evals, e.matches);
    if (exact_mode_) {
      ExactExpr& x = exact_[key];
      x.evals += e.evals;
      x.matches += e.matches;
      x.cost += e.cost;
      if (exact_.size() > options_.exact_threshold) {
        // O(K) memory from here on: the sketch carries the ranking.
        exact_.clear();
        pred_exact_.clear();
        exact_mode_ = false;
      }
    }
  }
  for (const core::AttributionDelta::PredEntry& p : delta.predicates) {
    const uint64_t key = key_namespace | p.pid;
    total_predicate_matches_ += p.matches;
    pred_sketch_.Add(key, p.matches);
    if (exact_mode_) pred_exact_[key] += p.matches;
  }
  for (const core::AttributionDelta::LatencySample& s : delta.latencies) {
    latency_.Add({key_namespace | s.id, s.nanos});
  }
}

WorkloadProfiler::Report WorkloadProfiler::TopK(size_t k) const {
  Report report;
  report.exact_mode = exact_mode_;
  report.distinct_expressions = exact_mode_ ? exact_.size() : 0;
  report.total_evals = total_evals_;
  report.total_matches = total_matches_;
  report.total_cost = total_cost_;
  report.total_predicate_matches = total_predicate_matches_;
  report.deltas_ingested = deltas_;

  const double cost_denom =
      total_cost_ == 0 ? 1.0 : static_cast<double>(total_cost_);
  if (exact_mode_) {
    std::vector<ExprStats> all;
    all.reserve(exact_.size());
    for (const auto& [key, x] : exact_) {
      ExprStats s;
      s.key = key;
      s.evals = x.evals;
      s.matches = x.matches;
      s.cost = x.cost;
      all.push_back(s);
    }
    std::sort(all.begin(), all.end(),
              [](const ExprStats& a, const ExprStats& b) {
                if (a.cost != b.cost) return a.cost > b.cost;
                return a.key < b.key;
              });
    if (all.size() > k) all.resize(k);
    report.top_expressions = std::move(all);
  } else {
    for (const SpaceSavingSketch::Entry& e : cost_sketch_.TopK(k)) {
      ExprStats s;
      s.key = e.key;
      s.cost = e.count;
      s.cost_error = e.error;
      s.evals = e.aux1;
      s.matches = e.aux2;
      report.top_expressions.push_back(s);
    }
  }
  for (ExprStats& s : report.top_expressions) {
    s.match_rate = s.evals == 0
                       ? 0
                       : static_cast<double>(s.matches) /
                             static_cast<double>(s.evals);
    s.cost_share = static_cast<double>(s.cost) / cost_denom;
  }

  const double pred_denom = total_predicate_matches_ == 0
                                ? 1.0
                                : static_cast<double>(
                                      total_predicate_matches_);
  if (exact_mode_) {
    std::vector<PredStats> all;
    all.reserve(pred_exact_.size());
    for (const auto& [key, matches] : pred_exact_) {
      PredStats p;
      p.key = key;
      p.matches = matches;
      all.push_back(p);
    }
    std::sort(all.begin(), all.end(),
              [](const PredStats& a, const PredStats& b) {
                if (a.matches != b.matches) return a.matches > b.matches;
                return a.key < b.key;
              });
    if (all.size() > k) all.resize(k);
    report.hot_predicates = std::move(all);
  } else {
    for (const SpaceSavingSketch::Entry& e : pred_sketch_.TopK(k)) {
      PredStats p;
      p.key = e.key;
      p.matches = e.count;
      p.error = e.error;
      report.hot_predicates.push_back(p);
    }
  }
  for (PredStats& p : report.hot_predicates) {
    p.share = static_cast<double>(p.matches) / pred_denom;
  }

  std::vector<uint64_t> nanos;
  nanos.reserve(latency_.samples().size());
  for (const auto& [key, ns] : latency_.samples()) nanos.push_back(ns);
  std::sort(nanos.begin(), nanos.end());
  report.latency.sampled = latency_.seen();
  report.latency.p50_ns = Percentile(nanos, 0.50);
  report.latency.p99_ns = Percentile(nanos, 0.99);
  report.latency.max_ns = nanos.empty() ? 0 : nanos.back();

  report.top_agreement = TopKAgreement(k < 10 ? k : 10);
  return report;
}

double WorkloadProfiler::TopKAgreement(size_t k) const {
  if (!exact_mode_ || k == 0) return -1;
  if (exact_.empty()) return 1;

  std::vector<std::pair<uint64_t, uint64_t>> exact_sorted;  // (cost, key)
  exact_sorted.reserve(exact_.size());
  for (const auto& [key, x] : exact_) exact_sorted.push_back({x.cost, key});
  std::sort(exact_sorted.begin(), exact_sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  // Expand by ties at the k-th cost: when several expressions share
  // the boundary cost their relative order is arbitrary, so a sketch
  // picking any of them is correct.
  const size_t cut = std::min(k, exact_sorted.size());
  const uint64_t boundary = exact_sorted[cut - 1].first;
  std::unordered_set<uint64_t> exact_top;
  for (const auto& [cost, key] : exact_sorted) {
    if (exact_top.size() >= cut && cost < boundary) break;
    exact_top.insert(key);
  }

  const std::vector<SpaceSavingSketch::Entry> sketch_top =
      cost_sketch_.TopK(cut);
  if (sketch_top.empty()) return 1;
  size_t hits = 0;
  for (const SpaceSavingSketch::Entry& e : sketch_top) {
    if (exact_top.contains(e.key)) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(sketch_top.size());
}

std::string RenderWorkloadJson(
    const WorkloadProfiler::Report& report,
    const std::unordered_map<uint64_t, std::string>* expr_names,
    const std::unordered_map<uint64_t, std::string>* pred_names) {
  std::string out;
  out += StringPrintf(
      "{\"schema_version\": 1, \"mode\": \"%s\", "
      "\"totals\": {\"evals\": %" PRIu64 ", \"matches\": %" PRIu64
      ", \"cost\": %" PRIu64 ", \"predicate_matches\": %" PRIu64
      ", \"deltas\": %" PRIu64 ", \"distinct_expressions\": %" PRIu64 "}",
      report.exact_mode ? "exact" : "sketch", report.total_evals,
      report.total_matches, report.total_cost,
      report.total_predicate_matches, report.deltas_ingested,
      report.distinct_expressions);
  out += ", \"top_expressions\": [";
  for (size_t i = 0; i < report.top_expressions.size(); ++i) {
    const WorkloadProfiler::ExprStats& s = report.top_expressions[i];
    out += StringPrintf(
        "%s{\"key\": %" PRIu64 ", \"name\": \"%s\", \"evals\": %" PRIu64
        ", \"matches\": %" PRIu64 ", \"match_rate\": %.6f, \"cost\": %" PRIu64
        ", \"cost_share\": %.6f, \"cost_error\": %" PRIu64 "}",
        i == 0 ? "" : ", ", s.key,
        JsonEscape(KeyName(s.key, "expr", expr_names)).c_str(), s.evals,
        s.matches, s.match_rate, s.cost, s.cost_share, s.cost_error);
  }
  out += "], \"hot_predicates\": [";
  for (size_t i = 0; i < report.hot_predicates.size(); ++i) {
    const WorkloadProfiler::PredStats& p = report.hot_predicates[i];
    out += StringPrintf(
        "%s{\"key\": %" PRIu64 ", \"name\": \"%s\", \"matches\": %" PRIu64
        ", \"share\": %.6f, \"error\": %" PRIu64 "}",
        i == 0 ? "" : ", ", p.key,
        JsonEscape(KeyName(p.key, "pid", pred_names)).c_str(), p.matches,
        p.share, p.error);
  }
  out += StringPrintf(
      "], \"latency_ns\": {\"sampled\": %" PRIu64 ", \"p50\": %" PRIu64
      ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64 "}",
      report.latency.sampled, report.latency.p50_ns, report.latency.p99_ns,
      report.latency.max_ns);
  out += StringPrintf(", \"top10_agreement\": %.6f}", report.top_agreement);
  return out;
}

std::string RenderWorkloadTable(
    const WorkloadProfiler::Report& report,
    const std::unordered_map<uint64_t, std::string>* expr_names,
    const std::unordered_map<uint64_t, std::string>* pred_names) {
  std::string out;
  out += StringPrintf(
      "workload profile (%s mode): %" PRIu64 " evals, %" PRIu64
      " matches, cost %" PRIu64 ", %" PRIu64 " predicate matches\n",
      report.exact_mode ? "exact" : "sketch", report.total_evals,
      report.total_matches, report.total_cost,
      report.total_predicate_matches);
  if (report.top_agreement >= 0) {
    out += StringPrintf("exact-vs-sketch top-10 agreement: %.2f\n",
                        report.top_agreement);
  }
  out += StringPrintf("latency (sampled %" PRIu64 "): p50 %" PRIu64
                      "ns p99 %" PRIu64 "ns max %" PRIu64 "ns\n",
                      report.latency.sampled, report.latency.p50_ns,
                      report.latency.p99_ns, report.latency.max_ns);
  out += "\n  rank  cost       share   evals      match-rate  expression\n";
  for (size_t i = 0; i < report.top_expressions.size(); ++i) {
    const WorkloadProfiler::ExprStats& s = report.top_expressions[i];
    out += StringPrintf("  %-4zu  %-9" PRIu64 "  %5.1f%%  %-9" PRIu64
                        "  %9.4f   %s\n",
                        i + 1, s.cost, 100.0 * s.cost_share, s.evals,
                        s.match_rate,
                        KeyName(s.key, "expr", expr_names).c_str());
  }
  out += "\n  rank  matches    share   predicate\n";
  for (size_t i = 0; i < report.hot_predicates.size(); ++i) {
    const WorkloadProfiler::PredStats& p = report.hot_predicates[i];
    out += StringPrintf("  %-4zu  %-9" PRIu64 "  %5.1f%%  %s\n", i + 1,
                        p.matches, 100.0 * p.share,
                        KeyName(p.key, "pid", pred_names).c_str());
  }
  return out;
}

}  // namespace xpred::analytics
