#ifndef XPRED_ANALYTICS_EXPLAIN_H_
#define XPRED_ANALYTICS_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/encoder.h"
#include "core/predicate.h"
#include "xml/document.h"

namespace xpred::analytics {

/// One backtracking event of the recorded occurrence-determination
/// search (paper §4.2.1, Algorithm 1).
struct ExplainStep {
  enum class Kind : uint8_t {
    /// A candidate pair of predicate chain_pos is considered.
    kTry,
    /// The pair violates the chain constraint
    /// (pair.first != previous pair.second).
    kReject,
    /// The pair is accepted; the search descends to the next predicate.
    kAccept,
    /// Predicate chain_pos is exhausted under the current prefix; the
    /// search pops back to the previous predicate.
    kBacktrack,
    /// A complete chain was found (one pair per predicate).
    kMatch,
  };
  Kind kind = Kind::kTry;
  /// 0-based position in the predicate chain.
  uint16_t chain_pos = 0;
  core::OccPair pair;
  /// The chain constraint in force (previous pair's second occurrence;
  /// unconstrained for the first predicate).
  uint32_t required_first = 0;
};

/// The occurrence-table row of one predicate for one path (§4.1.1,
/// Table 1), plus its verdict.
struct PredicateEval {
  /// 0-based position in the predicate chain.
  uint16_t chain_pos = 0;
  core::PredicateId pid = 0;
  /// Paper-style rendering, e.g. "(d(p_a, p_b), >=, 1)".
  std::string text;
  bool matched = false;
  std::vector<core::OccPair> pairs;
};

/// Full provenance for one document path.
struct PathExplain {
  std::string path;         // "a/b/c"
  std::string publication;  // Paper-style tuple rendering.
  /// Occurrence determination found a valid chain.
  bool structural_match = false;
  /// Final verdict including deferred attribute verification.
  bool matched = false;
  /// 0-based chain position of the first predicate with an empty
  /// occurrence row (Algorithm 1's immediate noMatch), or -1 when
  /// every predicate had at least one pair.
  int first_failing_predicate = -1;
  /// Structural chain existed but a selection-postponed attribute
  /// filter eliminated every witness (§5).
  bool deferred_failed = false;
  std::vector<PredicateEval> evals;
  std::vector<ExplainStep> steps;
  /// The recorded trace hit ExplainOptions::max_steps_per_path; the
  /// verdict above is still authoritative (computed by the real,
  /// unrecorded algorithm).
  bool steps_truncated = false;
};

/// \brief Match provenance for one (document, expression) pair: the
/// predicate-encoding pipeline re-run in recording mode (DESIGN.md
/// §13).
struct ExplainResult {
  std::string expression;  // Canonical form.
  std::string encoding;    // EncodedExpression::ToString rendering.
  bool matched = false;
  /// 0-based index of the first matching path in the document's path
  /// list (SIZE_MAX on a miss). May exceed paths.size() when the
  /// match lies beyond the ExplainOptions::max_paths trace cap — the
  /// verdict is computed over every path regardless of the cap.
  size_t first_matching_path = SIZE_MAX;
  /// For a miss: the first failing predicate on the path that got
  /// furthest — the 0-based chain position and its rendering. A path
  /// failing in occurrence chaining (every predicate matched, no valid
  /// chain) reports the deepest predicate the backtracking could not
  /// extend past. -1 / empty when the expression matched.
  int first_failing_predicate = -1;
  std::string first_failing_text;
  size_t total_paths = 0;
  /// Explained paths (capped by ExplainOptions::max_paths).
  std::vector<PathExplain> paths;
};

struct ExplainOptions {
  core::AttributeMode attribute_mode = core::AttributeMode::kInline;
  uint32_t max_expression_length = 16;
  /// Cap on recorded backtracking steps per path (the authoritative
  /// verdict is never truncated, only the trace).
  size_t max_steps_per_path = 2048;
  /// Cap on explained paths per document.
  size_t max_paths = 256;
};

/// Re-runs the predicate-encoding pipeline for (\p document, \p xpath)
/// in recording mode: encodes the expression into its ordered
/// predicate chain, matches every document path through a private
/// PredicateIndex (the real §4.1 matching code), and records each
/// occurrence-table row and occurrence-determination backtracking
/// step. Nested-path expressions are rejected (their witness joins
/// have no per-path trace; decompose and explain each branch).
Result<ExplainResult> ExplainMatch(const xml::Document& document,
                                   std::string_view xpath,
                                   const ExplainOptions& options = {});

/// Serializes \p result as a single JSON object (schema checked by
/// scripts/check_explain_schema.py).
std::string ExplainToJson(const ExplainResult& result);

/// Human-readable rendering for the CLI's `explain` subcommand.
std::string ExplainToText(const ExplainResult& result);

}  // namespace xpred::analytics

#endif  // XPRED_ANALYTICS_EXPLAIN_H_
