#ifndef XPRED_ANALYTICS_SKETCH_H_
#define XPRED_ANALYTICS_SKETCH_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace xpred::analytics {

/// \brief Space-Saving top-K heavy-hitter sketch (Metwally, Agrawal,
/// El Abbadi: "Efficient Computation of Frequent and Top-k Elements in
/// Data Streams", 2005).
///
/// Keeps at most `capacity` monitored keys. A weight added to an
/// unmonitored key when the sketch is full evicts the current minimum
/// entry: the new key inherits the evicted count as its over-estimation
/// `error`, so for every entry
///
///     count - error <= true count <= count
///
/// and any key whose true count exceeds total_weight / capacity is
/// guaranteed to be monitored. Two auxiliary counters ride along with
/// each entry (the profiler stores evals / matches next to the cost
/// ranking); they are reset on eviction, so they are exact *since the
/// entry was created* — lower bounds of the true values.
///
/// The minimum entry is tracked with an indexed binary min-heap: Add is
/// O(log capacity) and memory is O(capacity), independent of the
/// number of distinct keys streamed through.
class SpaceSavingSketch {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t count = 0;
    /// Over-estimation bound inherited from the evicted entry.
    uint64_t error = 0;
    uint64_t aux1 = 0;
    uint64_t aux2 = 0;
  };

  explicit SpaceSavingSketch(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Add(uint64_t key, uint64_t weight, uint64_t aux1 = 0,
           uint64_t aux2 = 0) {
    total_weight_ += weight;
    auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& e = entries_[it->second];
      e.count += weight;
      e.aux1 += aux1;
      e.aux2 += aux2;
      SiftDown(pos_[it->second]);
      return;
    }
    if (entries_.size() < capacity_) {
      const size_t idx = entries_.size();
      entries_.push_back(Entry{key, weight, 0, aux1, aux2});
      heap_.push_back(idx);
      pos_.push_back(heap_.size() - 1);
      SiftUp(heap_.size() - 1);
      index_.emplace(key, idx);
      return;
    }
    // Full: replace the minimum-count entry (Space-Saving eviction).
    const size_t idx = heap_[0];
    Entry& e = entries_[idx];
    index_.erase(e.key);
    e.error = e.count;
    e.key = key;
    e.count += weight;
    e.aux1 = aux1;
    e.aux2 = aux2;
    index_.emplace(key, idx);
    SiftDown(0);
  }

  /// Monitored entries sorted by count descending (key ascending on
  /// ties, for determinism), truncated to \p k.
  std::vector<Entry> TopK(size_t k) const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.key < b.key;
    });
    if (out.size() > k) out.resize(k);
    return out;
  }

  const Entry* Find(uint64_t key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_weight() const { return total_weight_; }

 private:
  bool Less(size_t a, size_t b) const {
    const Entry& ea = entries_[heap_[a]];
    const Entry& eb = entries_[heap_[b]];
    if (ea.count != eb.count) return ea.count < eb.count;
    return heap_[a] < heap_[b];
  }

  void Swap(size_t a, size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Less(i, parent)) break;
      Swap(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    for (;;) {
      size_t smallest = i;
      const size_t l = 2 * i + 1;
      const size_t r = 2 * i + 2;
      if (l < n && Less(l, smallest)) smallest = l;
      if (r < n && Less(r, smallest)) smallest = r;
      if (smallest == i) return;
      Swap(i, smallest);
      i = smallest;
    }
  }

  size_t capacity_;
  uint64_t total_weight_ = 0;
  std::vector<Entry> entries_;
  /// heap_ holds entry indices ordered by count (min at the root);
  /// pos_[entry] is the entry's position in heap_.
  std::vector<size_t> heap_;
  std::vector<size_t> pos_;
  std::unordered_map<uint64_t, size_t> index_;
};

/// \brief Fixed-size uniform reservoir (Vitter's Algorithm R) over a
/// stream of values, deterministic via xpred::Random.
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity == 0 ? 1 : capacity), rng_(seed) {}

  void Add(const T& value) {
    ++seen_;
    if (samples_.size() < capacity_) {
      samples_.push_back(value);
      return;
    }
    const uint64_t j = rng_.Uniform(seen_);
    if (j < capacity_) samples_[j] = value;
  }

  const std::vector<T>& samples() const { return samples_; }
  /// Stream length so far (samples() is a uniform sample of it).
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  xpred::Random rng_;
  std::vector<T> samples_;
};

}  // namespace xpred::analytics

#endif  // XPRED_ANALYTICS_SKETCH_H_
