#include "analytics/explain.h"

#include <algorithm>
#include <cinttypes>

#include "common/interner.h"
#include "common/string_util.h"
#include "core/occurrence.h"
#include "core/predicate_index.h"
#include "core/publication.h"
#include "xml/path.h"
#include "xpath/parser.h"

namespace xpred::analytics {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

const char* StepKindName(ExplainStep::Kind kind) {
  switch (kind) {
    case ExplainStep::Kind::kTry:
      return "try";
    case ExplainStep::Kind::kReject:
      return "reject";
    case ExplainStep::Kind::kAccept:
      return "accept";
    case ExplainStep::Kind::kBacktrack:
      return "backtrack";
    case ExplainStep::Kind::kMatch:
      return "match";
  }
  return "?";
}

/// Mirror of OccurrenceDeterminer's DetermineRec, recording every
/// try / reject / accept / backtrack / match event. The recorded
/// search aborts at the step cap (sets *truncated); callers use the
/// real, unrecorded algorithm for the authoritative verdict.
bool RecordRec(core::OccurrenceDeterminer::ResultView results, size_t index,
               uint32_t required_first, size_t max_steps,
               std::vector<ExplainStep>* steps, bool* truncated,
               size_t* deepest_stuck) {
  const core::OccList& candidates = *results[index];
  for (const core::OccPair& pair : candidates) {
    if (steps->size() + 2 > max_steps) {
      *truncated = true;
      return false;
    }
    steps->push_back({ExplainStep::Kind::kTry,
                      static_cast<uint16_t>(index), pair, required_first});
    if (index > 0 && pair.first != required_first) {
      steps->push_back({ExplainStep::Kind::kReject,
                        static_cast<uint16_t>(index), pair,
                        required_first});
      continue;
    }
    steps->push_back({ExplainStep::Kind::kAccept,
                      static_cast<uint16_t>(index), pair, required_first});
    if (index + 1 == results.size()) {
      steps->push_back({ExplainStep::Kind::kMatch,
                        static_cast<uint16_t>(index), pair,
                        required_first});
      return true;
    }
    if (RecordRec(results, index + 1, pair.second, max_steps, steps,
                  truncated, deepest_stuck)) {
      return true;
    }
    if (*truncated) return false;
    steps->push_back({ExplainStep::Kind::kBacktrack,
                      static_cast<uint16_t>(index), pair, required_first});
  }
  // No candidate of this predicate extended the current prefix; this
  // is where the search got stuck (the deepest such index names the
  // predicate a miss explanation points at).
  *deepest_stuck = std::max(*deepest_stuck, index);
  return false;
}

/// Selection-postponed verification (§5), mirroring
/// Matcher::ApplyDeferredFilters against the explain-local encoding.
bool VerifyDeferredFilters(const core::EncodedExpression& enc,
                           const core::Publication& pub,
                           std::vector<const core::OccList*>* views,
                           std::vector<core::OccList>* storage) {
  storage->clear();
  storage->resize(enc.deferred_filters.size());
  size_t used = 0;
  for (const core::DeferredFilters& df : enc.deferred_filters) {
    const core::AnchorSlot& slot = enc.anchor_slots[df.anchor_index];
    const SymbolId tag = enc.anchor_tags[df.anchor_index];
    const core::OccList& source = *(*views)[slot.pred_index];
    core::OccList& filtered = (*storage)[used++];
    for (const core::OccPair& pair : source) {
      const uint32_t occ = slot.on_second ? pair.second : pair.first;
      const uint32_t position = pub.PositionOf(tag, occ);
      if (position == 0) continue;
      bool ok = true;
      const std::vector<xml::Attribute>& attrs = pub.AttributesAt(position);
      for (const core::AttributeConstraint& c : df.filters) {
        bool found = false;
        for (const xml::Attribute& a : attrs) {
          if (a.name == c.name) {
            found = true;
            if (!c.Matches(a.value)) ok = false;
            break;
          }
        }
        if (!found) ok = false;
        if (!ok) break;
      }
      if (ok) filtered.push_back(pair);
    }
    if (filtered.empty()) return false;
    (*views)[slot.pred_index] = &filtered;
  }
  return core::OccurrenceDeterminer::Determine(*views);
}

}  // namespace

Result<ExplainResult> ExplainMatch(const xml::Document& document,
                                   std::string_view xpath,
                                   const ExplainOptions& options) {
  Result<xpath::PathExpr> parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  if (parsed->HasNestedPaths()) {
    return Status::InvalidArgument(
        "explain supports single-path expressions only; nested-path "
        "filters are matched via decomposed witness joins with no "
        "per-path trace — explain each branch separately");
  }
  if (parsed->length() > options.max_expression_length) {
    return Status::CapacityExceeded(StringPrintf(
        "expression has %zu location steps; explain was configured for "
        "at most %u",
        parsed->length(), options.max_expression_length));
  }

  // Private pipeline state: the explain engine owns its interner and
  // predicate index so recording never touches a live engine.
  Interner interner;
  Result<core::EncodedExpression> encoded =
      core::EncodeExpression(*parsed, options.attribute_mode, &interner);
  if (!encoded.ok()) return encoded.status();
  const core::EncodedExpression& enc = *encoded;

  core::PredicateIndex index(
      core::PredicateIndex::Options{options.max_expression_length});
  std::vector<core::PredicateId> chain;
  chain.reserve(enc.predicates.size());
  for (const core::Predicate& p : enc.predicates) {
    Result<core::PredicateId> pid = index.InsertOrFind(p);
    if (!pid.ok()) return pid.status();
    chain.push_back(*pid);
  }

  ExplainResult result;
  result.expression = parsed->ToString();
  result.encoding = enc.ToString(interner);

  const std::vector<xml::DocumentPath> paths = xml::ExtractPaths(document);
  result.total_paths = paths.size();

  core::Publication pub;
  core::MatchResultSet results;
  std::vector<core::PathElementView> views;
  std::vector<const core::OccList*> occ_views;
  std::vector<core::OccList> filtered;

  // Miss explanation: track the path that got furthest — the largest
  // first-failing chain position (a chaining failure counts as the
  // deepest predicate the backtracking could not extend past).
  int best_fail_pos = -1;

  for (size_t pi = 0; pi < paths.size(); ++pi) {
    // Past max_paths the trace is dropped but paths keep being
    // evaluated — the verdict is never truncated. Once a match is in
    // hand nothing beyond the cap can change the summary either.
    const bool record = result.paths.size() < options.max_paths;
    if (!record && result.matched) break;
    const xml::DocumentPath& path = paths[pi];
    views.clear();
    for (uint32_t pos = 1; pos <= path.length(); ++pos) {
      core::PathElementView view;
      view.tag = path.Tag(pos);
      view.attributes = &path.Attributes(pos);
      view.node = path.Node(pos);
      views.push_back(view);
    }
    pub.Assign(views, interner);

    PathExplain pe;
    if (record) {
      pe.path = path.ToString();
      pe.publication = pub.ToString(interner);
    }

    // Stage 1 (§4.1): the real predicate-matching code path.
    index.Match(pub, &results);
    occ_views.clear();
    for (size_t i = 0; i < chain.size(); ++i) {
      const core::OccList* row = results.Find(chain[i]);
      const bool row_matched = row != nullptr && !row->empty();
      if (!row_matched && pe.first_failing_predicate < 0) {
        pe.first_failing_predicate = static_cast<int>(i);
      }
      occ_views.push_back(row);
      if (record) {
        PredicateEval ev;
        ev.chain_pos = static_cast<uint16_t>(i);
        ev.pid = chain[i];
        ev.text = enc.predicates[i].ToString(interner);
        ev.matched = row_matched;
        if (row_matched) ev.pairs.assign(row->begin(), row->end());
        pe.evals.push_back(std::move(ev));
      }
    }

    // Stage 2 (§4.2.1): authoritative verdict by the real algorithm,
    // then the recorded re-run for the trace.
    if (pe.first_failing_predicate < 0 && !chain.empty()) {
      pe.structural_match = core::OccurrenceDeterminer::Determine(occ_views);
      size_t deepest_stuck = 0;
      if (record) {
        RecordRec(occ_views, 0, 0, options.max_steps_per_path, &pe.steps,
                  &pe.steps_truncated, &deepest_stuck);
      }
      if (pe.structural_match) {
        pe.matched = true;
        if (!enc.deferred_filters.empty() &&
            !VerifyDeferredFilters(enc, pub, &occ_views, &filtered)) {
          pe.matched = false;
          pe.deferred_failed = true;
        }
      } else {
        // Every predicate had rows but no valid chain exists: the
        // failure is the predicate the search could not extend past
        // (0, the safe lower bound, when the trace was not recorded).
        pe.first_failing_predicate = static_cast<int>(deepest_stuck);
      }
    }

    if (pe.matched && result.first_matching_path == SIZE_MAX) {
      result.first_matching_path = pi;
      result.matched = true;
    }
    if (!pe.matched && pe.first_failing_predicate > best_fail_pos) {
      best_fail_pos = pe.first_failing_predicate;
    }
    if (record) result.paths.push_back(std::move(pe));
  }

  if (!result.matched) {
    if (best_fail_pos < 0 && !chain.empty()) best_fail_pos = 0;
    if (best_fail_pos >= 0 &&
        static_cast<size_t>(best_fail_pos) < enc.predicates.size()) {
      result.first_failing_predicate = best_fail_pos;
      result.first_failing_text =
          enc.predicates[static_cast<size_t>(best_fail_pos)]
              .ToString(interner);
    }
  }
  return result;
}

std::string ExplainToJson(const ExplainResult& result) {
  std::string out;
  out += StringPrintf(
      "{\"schema_version\": 1, \"expression\": \"%s\", \"encoding\": "
      "\"%s\", \"matched\": %s, \"total_paths\": %zu, "
      "\"first_matching_path\": %lld, \"first_failing_predicate\": %d, "
      "\"first_failing_text\": \"%s\", \"paths\": [",
      JsonEscape(result.expression).c_str(),
      JsonEscape(result.encoding).c_str(),
      result.matched ? "true" : "false", result.total_paths,
      result.first_matching_path == SIZE_MAX
          ? -1LL
          : static_cast<long long>(result.first_matching_path),
      result.first_failing_predicate,
      JsonEscape(result.first_failing_text).c_str());
  for (size_t i = 0; i < result.paths.size(); ++i) {
    const PathExplain& pe = result.paths[i];
    out += StringPrintf(
        "%s{\"path\": \"%s\", \"publication\": \"%s\", \"matched\": %s, "
        "\"structural_match\": %s, \"deferred_failed\": %s, "
        "\"first_failing_predicate\": %d, \"steps_truncated\": %s, "
        "\"predicates\": [",
        i == 0 ? "" : ", ", JsonEscape(pe.path).c_str(),
        JsonEscape(pe.publication).c_str(), pe.matched ? "true" : "false",
        pe.structural_match ? "true" : "false",
        pe.deferred_failed ? "true" : "false", pe.first_failing_predicate,
        pe.steps_truncated ? "true" : "false");
    for (size_t j = 0; j < pe.evals.size(); ++j) {
      const PredicateEval& ev = pe.evals[j];
      out += StringPrintf(
          "%s{\"chain_pos\": %u, \"pid\": %u, \"text\": \"%s\", "
          "\"matched\": %s, \"pairs\": [",
          j == 0 ? "" : ", ", ev.chain_pos, ev.pid,
          JsonEscape(ev.text).c_str(), ev.matched ? "true" : "false");
      for (size_t m = 0; m < ev.pairs.size(); ++m) {
        out += StringPrintf("%s[%u, %u]", m == 0 ? "" : ", ",
                            ev.pairs[m].first, ev.pairs[m].second);
      }
      out += "]}";
    }
    out += "], \"steps\": [";
    for (size_t s = 0; s < pe.steps.size(); ++s) {
      const ExplainStep& step = pe.steps[s];
      out += StringPrintf(
          "%s{\"kind\": \"%s\", \"chain_pos\": %u, \"pair\": [%u, %u], "
          "\"required_first\": %u}",
          s == 0 ? "" : ", ", StepKindName(step.kind), step.chain_pos,
          step.pair.first, step.pair.second, step.required_first);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ExplainToText(const ExplainResult& result) {
  std::string out;
  out += StringPrintf("expression: %s\n", result.expression.c_str());
  out += StringPrintf("encoding:   %s\n", result.encoding.c_str());
  if (result.matched) {
    out += StringPrintf("verdict:    MATCH (path %zu of %zu)\n",
                        result.first_matching_path + 1, result.total_paths);
  } else {
    out += StringPrintf("verdict:    NO MATCH (%zu paths)\n",
                        result.total_paths);
    if (result.first_failing_predicate >= 0) {
      out += StringPrintf("first failing predicate: #%d %s\n",
                          result.first_failing_predicate,
                          result.first_failing_text.c_str());
    }
  }
  for (size_t i = 0; i < result.paths.size(); ++i) {
    const PathExplain& pe = result.paths[i];
    out += StringPrintf("\npath %zu: %s — %s\n", i + 1, pe.path.c_str(),
                        pe.matched            ? "match"
                        : pe.deferred_failed ? "no match (deferred filters)"
                                              : "no match");
    out += StringPrintf("  publication: %s\n", pe.publication.c_str());
    for (const PredicateEval& ev : pe.evals) {
      out += StringPrintf("  [%u] %s: ", ev.chain_pos, ev.text.c_str());
      if (!ev.matched) {
        out += "no occurrence rows";
        if (pe.first_failing_predicate == static_cast<int>(ev.chain_pos)) {
          out += "   <- first failing predicate";
        }
        out += "\n";
        continue;
      }
      for (size_t m = 0; m < ev.pairs.size(); ++m) {
        out += StringPrintf("%s(%u,%u)", m == 0 ? "" : " ",
                            ev.pairs[m].first, ev.pairs[m].second);
      }
      if (!pe.matched && !pe.structural_match &&
          pe.first_failing_predicate == static_cast<int>(ev.chain_pos)) {
        out += "   <- chain could not be extended past this predicate";
      }
      out += "\n";
    }
    if (!pe.steps.empty()) {
      out += StringPrintf("  occurrence determination (%zu steps%s):\n",
                          pe.steps.size(),
                          pe.steps_truncated ? ", truncated" : "");
      for (const ExplainStep& step : pe.steps) {
        out += StringPrintf("    %-9s #%u (%u,%u)", StepKindName(step.kind),
                            step.chain_pos, step.pair.first,
                            step.pair.second);
        if (step.kind == ExplainStep::Kind::kReject) {
          out += StringPrintf("  needs first=%u", step.required_first);
        }
        out += "\n";
      }
    }
  }
  return out;
}

}  // namespace xpred::analytics
