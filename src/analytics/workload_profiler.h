#ifndef XPRED_ANALYTICS_WORKLOAD_PROFILER_H_
#define XPRED_ANALYTICS_WORKLOAD_PROFILER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/sketch.h"
#include "core/attribution.h"

namespace xpred::analytics {

/// \brief Per-expression selectivity / cost profiler and per-predicate
/// heat tracker (DESIGN.md §13).
///
/// Implements core::AttributionSink: the matching layer hands it
/// compact AttributionDelta batches (always from the batch-owning
/// thread — this class is not thread-safe). Two accounting regimes run
/// side by side:
///
///  - An *exact* hash map per expression (evals / matches / cost),
///    kept while the number of distinct keys stays at or below
///    Options::exact_threshold and dropped wholesale the moment it
///    would exceed it — memory then stops growing with the workload.
///  - A Space-Saving top-K sketch, *always on*, ranking expressions by
///    cost with the usual count-error bound. Because both regimes run
///    together below the threshold, the exact-vs-sketch top-K
///    agreement is directly measurable (TopKAgreement) before the
///    exact map is retired.
///
/// Predicate heat uses the same exact-then-sketch pattern keyed by
/// namespaced pid; per-expression latency is reservoir-sampled
/// (attribution already samples 1-in-N evaluations, the reservoir
/// bounds memory on top).
class WorkloadProfiler : public core::AttributionSink {
 public:
  struct Options {
    /// Monitored entries in the cost and predicate sketches (K).
    size_t sketch_capacity = 256;
    /// Distinct expression keys tracked exactly before the exact map
    /// is dropped (sketch-only from then on). Same threshold applies
    /// to the predicate map.
    size_t exact_threshold = 65536;
    /// Latency samples retained (reservoir capacity).
    size_t latency_reservoir = 512;
    uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  WorkloadProfiler() : WorkloadProfiler(Options{}) {}
  explicit WorkloadProfiler(const Options& options);

  void Ingest(const core::AttributionDelta& delta,
              uint64_t key_namespace) override;

  struct ExprStats {
    uint64_t key = 0;
    uint64_t evals = 0;
    uint64_t matches = 0;
    uint64_t cost = 0;
    /// Sketch over-estimation bound on cost (0 in exact mode).
    uint64_t cost_error = 0;
    double match_rate = 0;
    double cost_share = 0;
  };
  struct PredStats {
    uint64_t key = 0;
    uint64_t matches = 0;
    uint64_t error = 0;
    double share = 0;
  };
  struct LatencyStats {
    uint64_t sampled = 0;   // Values that entered the reservoir stream.
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
    uint64_t max_ns = 0;
  };
  struct Report {
    bool exact_mode = true;
    uint64_t distinct_expressions = 0;  // Exact-mode only; 0 after drop.
    uint64_t total_evals = 0;
    uint64_t total_matches = 0;
    uint64_t total_cost = 0;
    uint64_t total_predicate_matches = 0;
    uint64_t deltas_ingested = 0;
    std::vector<ExprStats> top_expressions;  // Cost-descending.
    std::vector<PredStats> hot_predicates;   // Matches-descending.
    LatencyStats latency;
    /// Fraction of the sketch's top-\p k also in the exact top-k
    /// (boundary ties included); -1 when the exact map was dropped.
    double top_agreement = -1;
  };

  /// Builds the top-\p k report from the current state (cold path).
  Report TopK(size_t k) const;

  /// Exact-vs-sketch top-\p k ranking agreement in [0, 1]: the
  /// fraction of the sketch's top-k keys present in the exact top-k
  /// (expanded by cost ties at the k-th place, so boundary ties never
  /// count against the sketch). Returns -1 once the exact map has
  /// been dropped (no ground truth anymore).
  double TopKAgreement(size_t k) const;

  bool exact_mode() const { return exact_mode_; }
  uint64_t total_cost() const { return total_cost_; }
  /// Distinct expression keys currently tracked: the exact map's size,
  /// or the sketch's monitored-entry count after the exact map drop.
  size_t tracked() const {
    return exact_mode_ ? exact_.size() : cost_sketch_.size();
  }
  uint64_t total_evals() const { return total_evals_; }
  uint64_t total_matches() const { return total_matches_; }
  const Options& options() const { return options_; }

 private:
  struct ExactExpr {
    uint64_t evals = 0;
    uint64_t matches = 0;
    uint64_t cost = 0;
  };

  Options options_;
  bool exact_mode_ = true;
  uint64_t deltas_ = 0;
  uint64_t total_evals_ = 0;
  uint64_t total_matches_ = 0;
  uint64_t total_cost_ = 0;
  uint64_t total_predicate_matches_ = 0;
  std::unordered_map<uint64_t, ExactExpr> exact_;
  std::unordered_map<uint64_t, uint64_t> pred_exact_;
  SpaceSavingSketch cost_sketch_;
  SpaceSavingSketch pred_sketch_;
  ReservoirSampler<std::pair<uint64_t, uint64_t>> latency_;  // (key, ns).
};

/// Renders \p report as a compact JSON object (the exporter sidecar's
/// "workload" section; schema checked by scripts/check_metrics_schema.py).
/// \p names, when given, maps attribution keys to display strings —
/// unresolved keys render as "expr:<hex key>".
std::string RenderWorkloadJson(
    const WorkloadProfiler::Report& report,
    const std::unordered_map<uint64_t, std::string>* expr_names = nullptr,
    const std::unordered_map<uint64_t, std::string>* pred_names = nullptr);

/// Renders \p report as an aligned human-readable table for the CLI's
/// --profile-workload output.
std::string RenderWorkloadTable(
    const WorkloadProfiler::Report& report,
    const std::unordered_map<uint64_t, std::string>* expr_names = nullptr,
    const std::unordered_map<uint64_t, std::string>* pred_names = nullptr);

}  // namespace xpred::analytics

#endif  // XPRED_ANALYTICS_WORKLOAD_PROFILER_H_
