#include "xfilter/xfilter.h"

#include "common/fault_injection.h"
#include "common/memory_usage.h"
#include "obs/scoped_timer.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpred::xfilter {

using core::ExprId;
using xpath::Axis;
using xpath::PathExpr;
using xpath::Step;

Result<ExprId> XFilter::AddExpression(std::string_view xpath) {
  Result<PathExpr> parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return AddParsedExpression(*parsed);
}

Result<ExprId> XFilter::AddParsedExpression(const PathExpr& expr) {
  if (expr.steps.empty()) {
    return Status::InvalidArgument("expression has no location steps");
  }
  std::string canonical = expr.ToString();
  auto it = dedup_.find(canonical);
  if (it != dedup_.end()) {
    ExprId sid = next_sid_++;
    exprs_[it->second].subscribers.push_back(sid);
    return sid;
  }

  Internal rec;
  rec.expr = expr;
  for (size_t i = 0; i < expr.steps.size(); ++i) {
    const Step& step = expr.steps[i];
    FsmStep fsm;
    fsm.wildcard = step.wildcard;
    if (!step.wildcard) fsm.tag = interner_.Intern(step.tag);
    fsm.descendant = (step.axis == Axis::kDescendant) ||
                     (i == 0 && !expr.absolute);
    rec.steps.push_back(fsm);
    if (step.HasFilters()) rec.needs_verify = true;
  }

  uint32_t internal = static_cast<uint32_t>(exprs_.size());
  exprs_.push_back(std::move(rec));

  // Seed the query index with the expression's first state. Initial
  // entries are permanent: they apply to every document.
  Entry entry;
  entry.internal = internal;
  entry.step = 0;
  if (exprs_[internal].steps[0].descendant) {
    entry.min_level = 1;
  } else {
    entry.exact_level = 1;
  }
  InsertEntry(entry, /*permanent=*/true);

  ExprId sid = next_sid_++;
  exprs_[internal].subscribers.push_back(sid);
  dedup_.emplace(std::move(canonical), internal);
  return sid;
}

void XFilter::InsertEntry(const Entry& entry, bool permanent) {
  const FsmStep& step = exprs_[entry.internal].steps[entry.step];
  if (step.wildcard) {
    wildcard_list_.push_back(entry);
  } else {
    lists_[step.tag].push_back(entry);
  }
  if (!permanent) {
    promotion_log_.back().push_back(
        Promotion{step.wildcard ? kInvalidSymbol : step.tag});
  }
}

void XFilter::Advance(const Entry& entry, uint32_t level) {
  const Internal& e = exprs_[entry.internal];
  if (entry.step + 1u == e.steps.size()) {
    // Final state reached.
    Internal& mutable_e = exprs_[entry.internal];
    if (mutable_e.needs_verify) {
      if (mutable_e.candidate_epoch != doc_epoch_) {
        mutable_e.candidate_epoch = doc_epoch_;
        doc_candidates_.push_back(entry.internal);
      }
    } else if (mutable_e.matched_epoch != doc_epoch_) {
      mutable_e.matched_epoch = doc_epoch_;
      doc_matched_.push_back(entry.internal);
    }
    return;
  }
  // Promote the next state; it is only valid within the current
  // element's subtree and is retracted when this element ends.
  Entry next;
  next.internal = entry.internal;
  next.step = static_cast<uint16_t>(entry.step + 1);
  if (e.steps[next.step].descendant) {
    next.min_level = level + 1;
  } else {
    next.exact_level = level + 1;
  }
  InsertEntry(next, /*permanent=*/false);
}

void XFilter::ProbeList(std::vector<Entry>* list, uint32_t level) {
  // Entries appended during the probe belong to deeper levels and can
  // never satisfy the constraints at `level`; iterate the prefix that
  // existed on entry (by index: Advance may reallocate the vector).
  const size_t initial_size = list->size();
  for (size_t i = 0; i < initial_size; ++i) {
    Entry entry = (*list)[i];  // Copy: the vector may grow.
    bool level_ok = (entry.exact_level != 0) ? (level == entry.exact_level)
                                             : (level >= entry.min_level);
    if (!level_ok) continue;
    Advance(entry, level);
  }
}

// Recursion depth is bounded by the engine's max_element_depth limit,
// enforced in BeginGoverned before traversal starts. An error return
// leaves this element's promotions on their lists; FilterDocument
// unwinds the whole promotion log before propagating the error.
Status XFilter::HandleElement(const xml::Document& document, xml::NodeId node,
                              uint32_t level) {
  XPRED_FAULT_POINT(faultsite::kXFilterElement);
  XPRED_RETURN_NOT_OK(budget().CheckDeadline());
  const xml::Element& element = document.element(node);
  promotion_log_.emplace_back();

  SymbolId tag = interner_.Lookup(element.tag);
  if (tag != kInvalidSymbol) {
    auto it = lists_.find(tag);
    if (it != lists_.end()) ProbeList(&it->second, level);
  }
  if (!wildcard_list_.empty()) ProbeList(&wildcard_list_, level);

  for (xml::NodeId child : element.children) {
    XPRED_RETURN_NOT_OK(HandleElement(document, child, level + 1));
  }

  // Element end: retract this element's promotions (they were appended
  // in order, and all deeper promotions were already retracted, so
  // they sit at the tails of their lists).
  RetractTopPromotions();
  return Status::OK();
}

void XFilter::RetractTopPromotions() {
  for (auto promotion = promotion_log_.back().rbegin();
       promotion != promotion_log_.back().rend(); ++promotion) {
    if (promotion->tag == kInvalidSymbol) {
      wildcard_list_.pop_back();
    } else {
      lists_[promotion->tag].pop_back();
    }
  }
  promotion_log_.pop_back();
}

Status XFilter::FilterDocument(const xml::Document& document,
                               std::vector<ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  XPRED_RETURN_NOT_OK(BeginGoverned(document));
  ++doc_epoch_;
  doc_matched_.clear();
  doc_candidates_.clear();
  obs::EngineInstruments& instruments = inst();
  instruments.BeginDocument();
  if (document.empty()) {
    instruments.EndDocument();
    return Status::OK();
  }

  {
    // FSM probing is this engine's stage-1 analogue.
    obs::ScopedTimer timer(&instruments, obs::Stage::kPredicate);
    promotion_log_.clear();
    Status traverse_status =
        HandleElement(document, document.root(), /*level=*/1);
    if (!traverse_status.ok()) {
      // Unwind the promotions the aborted traversal left behind so the
      // next document starts from clean per-expression lists.
      while (!promotion_log_.empty()) RetractTopPromotions();
      return traverse_status;
    }

    if (!doc_candidates_.empty()) {
      timer.Rotate(obs::Stage::kVerify);
      for (uint32_t internal : doc_candidates_) {
        Internal& e = exprs_[internal];
        if (e.matched_epoch == doc_epoch_) continue;
        if (xpath::Evaluator::Matches(e.expr, document)) {
          e.matched_epoch = doc_epoch_;
          doc_matched_.push_back(internal);
        }
      }
    }

    timer.Rotate(obs::Stage::kCollect);
    for (uint32_t internal : doc_matched_) {
      const Internal& e = exprs_[internal];
      matched->insert(matched->end(), e.subscribers.begin(),
                      e.subscribers.end());
    }
  }
  instruments.EndDocument();
  return Status::OK();
}

size_t XFilter::ApproximateMemoryBytes() const {
  size_t total = interner_.ApproximateMemoryBytes() + VectorBytes(exprs_);
  for (const Internal& e : exprs_) {
    total += VectorBytes(e.steps) + VectorBytes(e.expr.steps) +
             VectorBytes(e.subscribers);
  }
  total += MapOfVectorsBytes(lists_) + VectorBytes(wildcard_list_);
  total += UnorderedOverheadBytes(dedup_);
  for (const auto& [canonical, id] : dedup_) {
    total += sizeof(canonical) + sizeof(id) + StringBytes(canonical);
  }
  return total;
}

}  // namespace xpred::xfilter
