#ifndef XPRED_XFILTER_XFILTER_H_
#define XPRED_XFILTER_XFILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "core/engine.h"
#include "xpath/ast.h"

namespace xpred::xfilter {

/// \brief Reimplementation of XFilter (Altinel & Franklin, VLDB 2000),
/// the earliest automaton baseline discussed in the paper's §2.
///
/// Each expression is its own finite state machine; a *query index*
/// maps element names to the FSM states currently waiting for that
/// name. Element-start events probe the index, check the level
/// constraint of each candidate, and on success either report a match
/// (final state) or *promote* the FSM's next state into the index;
/// element-end events retract the promotions made in the closed
/// subtree.
///
/// Unlike YFilter there is no prefix sharing: expressions with a
/// common prefix each keep their own states, which is exactly the
/// shortcoming the paper cites ("not able to adequately handle
/// overlap, especially prefix overlap"). Kept here to make that
/// difference measurable.
///
/// Attribute and nested-path filters are handled selection-postponed,
/// as in the other baselines.
class XFilter : public core::FilterEngine {
 public:
  XFilter() = default;

  Result<core::ExprId> AddExpression(std::string_view xpath) override;
  Result<core::ExprId> AddParsedExpression(const xpath::PathExpr& expr);

  Status FilterDocument(const xml::Document& document,
                        std::vector<core::ExprId>* matched) override;

  size_t subscription_count() const override { return next_sid_; }
  std::string_view name() const override { return "xfilter"; }

  size_t distinct_expression_count() const { return exprs_.size(); }

  size_t ApproximateMemoryBytes() const override;

 private:
  /// One location step of an expression's FSM.
  struct FsmStep {
    SymbolId tag = kInvalidSymbol;  // kInvalidSymbol for '*'.
    bool wildcard = false;
    /// True when this step may match at any deeper level (descendant
    /// axis, or the floating start of a relative expression).
    bool descendant = false;
  };

  struct Internal {
    std::vector<FsmStep> steps;
    xpath::PathExpr expr;  // For selection-postponed verification.
    bool needs_verify = false;
    std::vector<core::ExprId> subscribers;
    uint32_t matched_epoch = 0;
    uint32_t candidate_epoch = 0;
  };

  /// A waiting FSM state in the query index.
  struct Entry {
    uint32_t internal = 0;
    uint16_t step = 0;
    /// Exact level required (child axis), or 0 when min_level applies.
    uint32_t exact_level = 0;
    /// Minimum level (descendant axis); used when exact_level == 0.
    uint32_t min_level = 0;
  };

  void InsertEntry(const Entry& entry, bool permanent);
  Status HandleElement(const xml::Document& document, xml::NodeId node,
                       uint32_t level);
  /// Pops the innermost element's promotions off their lists.
  void RetractTopPromotions();
  void ProbeList(std::vector<Entry>* list, uint32_t level);
  void Advance(const Entry& entry, uint32_t level);

  Interner interner_;
  std::vector<Internal> exprs_;
  std::unordered_map<std::string, uint32_t> dedup_;
  core::ExprId next_sid_ = 0;

  /// The query index: element name -> waiting states; '*' states live
  /// in wildcard_list_ and are probed for every element.
  std::unordered_map<SymbolId, std::vector<Entry>> lists_;
  std::vector<Entry> wildcard_list_;

  /// Per-depth log of promotions, unwound on element end.
  struct Promotion {
    SymbolId tag = kInvalidSymbol;  // kInvalidSymbol -> wildcard_list_.
  };
  std::vector<std::vector<Promotion>> promotion_log_;

  uint32_t doc_epoch_ = 0;
  std::vector<uint32_t> doc_matched_;
  std::vector<uint32_t> doc_candidates_;
};

}  // namespace xpred::xfilter

#endif  // XPRED_XFILTER_XFILTER_H_
