#ifndef XPRED_CORE_MATCHER_H_
#define XPRED_CORE_MATCHER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "core/encoder.h"
#include "core/engine.h"
#include "core/expression_index.h"
#include "core/match_context.h"
#include "core/nested.h"
#include "core/occurrence.h"
#include "core/predicate.h"
#include "core/predicate_index.h"
#include "core/publication.h"
#include "xml/path.h"

namespace xpred::core {

/// \brief The paper's predicate-based XPath filtering engine.
///
/// Expressions are encoded as ordered predicate sets stored in a
/// shared PredicateIndex; documents are decomposed into paths, each
/// translated to a Publication and matched in two stages: predicate
/// matching (§4.1) and expression matching via occurrence
/// determination (§4.2), organized per the configured Mode.
class Matcher : public FilterEngine {
 public:
  /// Expression-matching organization (§4.2.2 and §6.2's algorithm
  /// variants).
  enum class Mode {
    /// Evaluate every expression per path (paper: "basic").
    kBasic,
    /// Prefix-covering trie, longest expression first; a match marks
    /// all covered prefixes without re-running occurrence
    /// determination (paper: "basic-pc").
    kPrefixCovering,
    /// basic-pc plus access predicates: a cluster whose first
    /// predicate has no matching result is ruled out wholesale
    /// (paper: "basic-pc-ap").
    kPrefixCoveringAccessPredicate,
    /// Extension (not in the paper): a single DFS over the trie
    /// propagating reachable occurrence sets evaluates every
    /// expression in one pass. Used as an ablation point.
    kTrieDfs,
  };

  struct Options {
    Mode mode = Mode::kPrefixCoveringAccessPredicate;
    AttributeMode attribute_mode = AttributeMode::kInline;
    /// Maximum supported XPE length (bounds the predicate-index value
    /// arrays, §4.1.2).
    uint32_t max_expression_length = 16;
    /// Search-step budget for witness enumeration per nested
    /// sub-expression per path.
    size_t nested_chain_budget = 100000;
    /// Covering-chain evaluation order (§4.2.2's longest-first
    /// heuristic; false = shortest-first, an ablation point).
    bool covering_longest_first = true;
    /// Containment covering — the future work of §4.2.2 ("the covering
    /// relation also holds if ... one constitutes a suffix or a
    /// contained expression of the other one"): when an expression
    /// matches, every expression whose predicate chain is a contiguous
    /// subchain of the matched chain is marked matched too, without
    /// running occurrence determination (the matched witness chain's
    /// sub-chain is a witness). Applies to the covering modes.
    bool enable_containment_covering = false;
  };

  explicit Matcher(Options options);
  Matcher() : Matcher(Options{}) {}

  Result<ExprId> AddExpression(std::string_view xpath) override;
  /// Adds an already-parsed expression.
  Result<ExprId> AddParsedExpression(const xpath::PathExpr& expr);

  /// Cancels a subscription. The paper highlights dynamic
  /// subscription maintenance as an advantage over compiled automata
  /// (XPush, §2): removal here is O(subscribers of the expression) and
  /// never rebuilds the predicate or expression indexes. When the last
  /// subscriber of an expression is removed, the expression is
  /// deactivated (its shared predicates stay — they are cheap, and a
  /// re-subscription reactivates the expression in O(1)).
  Status RemoveSubscription(ExprId sid);

  Status FilterDocument(const xml::Document& document,
                        std::vector<ExprId>* matched) override;

  /// \name Streaming interface
  ///
  /// The paper's implementation is SAX-driven: paths are extracted one
  /// at a time while parsing (§3.1). These entry points let a caller
  /// (see core::StreamingFilter) feed root-to-leaf paths as they
  /// complete, without materializing a Document — memory stays
  /// proportional to document depth.
  ///@{
  /// Starts a new document.
  void BeginDocumentStream();
  /// Processes one completed root-to-leaf path. The views' storage
  /// must stay valid for the duration of the call. \p elements' node
  /// ids must be unique per element within the document.
  Status ProcessStreamedPath(std::span<const PathElementView> elements);
  /// Finishes the document: runs the nested-path join and appends the
  /// matched subscription ids.
  Status EndDocumentStream(std::vector<ExprId>* matched);
  ///@}

  /// \name Context-based const filter path
  ///
  /// The shared indexes are read-only during filtering; all mutable
  /// per-document state lives in the caller's MatchContext. After
  /// PrepareForFiltering(), any number of threads may run these
  /// concurrently on one Matcher — each with its own context — as
  /// long as no expressions are added or removed meanwhile (see
  /// DESIGN.md §12). The legacy entry points above are thin wrappers
  /// over these with an engine-owned default context.
  ///@{
  /// Flushes lazily-built evaluation orders (trie clusters,
  /// containment index) so filtering never mutates shared state. Must
  /// be called after the last expression mutation and before
  /// concurrent filtering; the legacy wrappers call it implicitly.
  void PrepareForFiltering();
  void BeginDocumentStream(MatchContext* ctx) const;
  Status ProcessStreamedPath(std::span<const PathElementView> elements,
                             MatchContext* ctx) const;
  Status EndDocumentStream(MatchContext* ctx,
                           std::vector<ExprId>* matched) const;
  /// Tree-mode filtering against \p ctx. Does NOT run BeginGoverned:
  /// the caller arms ctx->budget() and validates the document
  /// (FilterEngine::ValidateDocumentAgainstBudget) first.
  Status FilterDocument(const xml::Document& document, MatchContext* ctx,
                        std::vector<ExprId>* matched) const;
  ///@}

  size_t subscription_count() const override { return next_sid_; }
  std::string_view name() const override;

  /// Distinct predicates stored (the §6.5 metric).
  size_t distinct_predicate_count() const {
    return predicate_index_.distinct_count();
  }
  /// Distinct stored expressions (after duplicate elimination),
  /// excluding nested sub-expressions.
  size_t distinct_expression_count() const { return plain_exprs_.size(); }

  const PredicateIndex& predicate_index() const { return predicate_index_; }
  const Interner& interner() const { return interner_; }
  const Options& options() const { return options_; }

  /// \name Workload attribution (analytics layer)
  ///
  /// Setting a sink enables attribution recording on the engine-owned
  /// default context; the legacy entry points flush the accumulated
  /// delta to it after each document under key namespace 0.
  /// Context-based callers (exec::ParallelFilter) instead enable
  /// attribution on their own contexts and drain them per batch — the
  /// sink itself is never touched from worker threads.
  ///@{
  void set_attribution_sink(AttributionSink* sink) {
    attribution_sink_ = sink;
    default_context_.EnableAttribution(sink != nullptr);
  }
  AttributionSink* attribution_sink() const { return attribution_sink_; }

  /// Latency sampling period for serial-path attribution: one in
  /// \p period evaluations is wall-clocked (1 = every evaluation;
  /// default 64 keeps the clock off the hot path).
  void set_attribution_latency_period(uint32_t period) {
    default_context_.set_latency_sample_period(period);
  }

  /// Canonical display string per InternalId (the attribution key's
  /// low 32 bits): the expression's canonical XPath, with nested
  /// sub-expressions suffixed "#sub<k>". Cold path — rebuilt on every
  /// call from the dedup map.
  std::vector<std::string> ExpressionStrings() const;
  ///@}

  size_t ApproximateMemoryBytes() const override;

  /// \name Subscription persistence
  ///
  /// Text format, one line per live subscription: the canonical
  /// expression. Loading re-adds each line through AddExpression, so a
  /// freshly loaded engine assigns new dense subscription ids
  /// (returned in order). Lines starting with '#' and blank lines are
  /// ignored.
  ///@{
  Status SaveSubscriptions(std::ostream* out) const;
  Result<std::vector<ExprId>> LoadSubscriptions(std::istream* in);
  ///@}

 private:
  /// A deduplicated expression (or nested sub-expression) — cold data,
  /// touched only on structural match (SP verification, nested
  /// witnesses, result collection).
  struct Internal {
    std::vector<PredicateId> pids;
    std::vector<AnchorSlot> anchor_slots;
    std::vector<SymbolId> anchor_tags;
    std::vector<uint16_t> anchor_steps;
    std::vector<DeferredFilters> deferred;
    /// External subscription ids (empty for nested sub-expressions).
    std::vector<ExprId> subscribers;
    uint32_t trie_node = UINT32_MAX;
    /// Nested bookkeeping (invalid for plain expressions).
    uint32_t group = UINT32_MAX;
    uint32_t sub_index = UINT32_MAX;
    /// Expressions whose chains are proper contiguous subchains of
    /// this one (containment covering; computed lazily, non-prefix
    /// subchains only — prefixes are handled by the trie).
    std::vector<InternalId> contained;
  };

  /// Hot per-expression data for the per-path evaluation loop, which
  /// visits every unmatched expression once per document path (the
  /// dominant cost, §6.5): the pid chain, inline when short. One entry
  /// is 40 bytes, so the sweep stays cache-friendly even with 10^5+
  /// stored expressions. Read-only during filtering (the per-document
  /// matched epoch lives in MatchContext::matched_epochs_).
  struct HotExpr {
    static constexpr uint16_t kInlinePids = 8;
    uint16_t len = 0;
    /// True when the chain is longer than kInlinePids; pids[0] is then
    /// an offset into pid_overflow_.
    bool overflow = false;
    bool has_deferred = false;
    /// False when every subscriber was removed; skipped by all
    /// evaluation loops.
    bool active = true;
    PredicateId pids[kInlinePids];

    const PredicateId* Chain(const std::vector<PredicateId>& pool) const {
      return overflow ? pool.data() + pids[0] : pids;
    }
  };

  /// A nested expression's shared decomposition. Per-document witness
  /// state lives in MatchContext::GroupScratch.
  struct NestedGroup {
    Decomposition decomposition;
    std::vector<InternalId> sub_internal;
    /// Per sub, per interest step: the anchor index carrying it.
    std::vector<std::vector<uint16_t>> interest_anchors;
    std::vector<ExprId> subscribers;
  };

  Result<InternalId> AddInternalPath(const xpath::PathExpr& path,
                                     uint32_t group, uint32_t sub_index);

  /// Grows \p ctx's index-size-keyed scratch (matched epochs, group
  /// witnesses) to the current index size. Called per path and at
  /// stream end, not just at document start: the streaming API allows
  /// AddExpression while a document is open, and trie attachments are
  /// visible immediately.
  void EnsureDocumentScratch(MatchContext* ctx) const;

  /// Shared per-path pipeline: dedup check, publication encoding,
  /// predicate matching, expression matching.
  void ProcessElements(std::span<const PathElementView> elements,
                       MatchContext* ctx) const;
  void RunExpressionStage(const Publication& pub, MatchContext* ctx) const;
  void RunTrieDfs(const Publication& pub, MatchContext* ctx) const;
  void ProcessNestedSubs(const Publication& pub, MatchContext* ctx) const;
  void JoinNestedGroups(MatchContext* ctx) const;

  /// Collects result-list views for an expression's predicates.
  /// Returns false when any predicate has no result (Algorithm 1's
  /// early noMatch).
  bool GatherResults(InternalId id, const MatchResultSet& results,
                     std::vector<const OccList*>* views) const;

  /// Structural + (inline is implicit; SP verified) match on the
  /// current path.
  bool EvaluateExpression(InternalId id, const Publication& pub,
                          MatchContext* ctx) const;

  /// Re-runs occurrence determination on attribute-filtered results
  /// (selection-postponed verification, §5).
  bool VerifyDeferred(InternalId id, const Publication& pub,
                      MatchContext* ctx) const;

  /// Applies \p expr's deferred filters to \p views, storing filtered
  /// copies in \p storage. Returns false if a filtered list is empty.
  bool ApplyDeferredFilters(const Internal& expr, const Publication& pub,
                            std::vector<const OccList*>* views,
                            std::vector<OccList>* storage) const;

  void MarkMatched(InternalId id, MatchContext* ctx) const;
  /// Propagates a structural match at \p id's trie node to same-node
  /// and prefix expressions (prefix covering), and — when containment
  /// covering is enabled — to contained-subchain expressions.
  void PropagateCoveredMatches(InternalId id, const Publication& pub,
                               MatchContext* ctx) const;
  /// Builds each expression's contained-subchain list (lazy; flushed
  /// by PrepareForFiltering).
  void RebuildContainmentIndex();

  /// Points the engine-owned default context at the engine budget and
  /// instruments (legacy single-threaded entry points).
  void BindDefaultContext();
  /// Drains the default context's attribution into the sink (legacy
  /// single-threaded entry points; namespace 0).
  void FlushDefaultAttribution();

  Options options_;
  Interner interner_;
  PredicateIndex predicate_index_;
  ExpressionTrie trie_;

  std::vector<Internal> exprs_;
  std::vector<HotExpr> hot_;
  std::vector<PredicateId> pid_overflow_;
  std::vector<InternalId> plain_exprs_;
  std::vector<InternalId> nested_subs_;
  std::vector<NestedGroup> groups_;

  /// Canonical expression string -> (is_group, index).
  struct DedupTarget {
    bool is_group = false;
    uint32_t index = 0;
  };
  std::unordered_map<std::string, DedupTarget> dedup_;

  ExprId next_sid_ = 0;
  /// Subscription id -> owning expression or group (for removal).
  std::vector<DedupTarget> sid_targets_;
  /// Containment covering: exact-chain hash -> expressions, plus a
  /// dirty flag for lazy (re)builds after inserts.
  std::unordered_map<uint64_t, std::vector<InternalId>> chain_index_;
  bool containment_dirty_ = true;

  /// Per-document state for the legacy (context-free) entry points.
  MatchContext default_context_;
  AttributionSink* attribution_sink_ = nullptr;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_MATCHER_H_
