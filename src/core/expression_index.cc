#include "core/expression_index.h"

#include <algorithm>

#include "common/memory_usage.h"

namespace xpred::core {

uint32_t ExpressionTrie::InsertChain(const std::vector<PredicateId>& pids) {
  uint32_t current = root();
  for (PredicateId pid : pids) {
    uint64_t key = (static_cast<uint64_t>(current) << 32) | pid;
    auto it = edges_.find(key);
    if (it != edges_.end()) {
      current = it->second;
      continue;
    }
    uint32_t child = static_cast<uint32_t>(nodes_.size());
    Node node;
    node.pid = pid;
    node.parent = current;
    node.depth = static_cast<uint16_t>(nodes_[current].depth + 1);
    nodes_.push_back(std::move(node));
    nodes_[current].children.push_back(child);
    edges_.emplace(key, child);
    current = child;
  }
  return current;
}

void ExpressionTrie::CollectPrefixExpressions(
    uint32_t node, std::vector<InternalId>* out) const {
  // The node's own expressions are the match itself; prefixes are the
  // proper ancestors.
  uint32_t current = nodes_[node].parent;
  while (current != UINT32_MAX) {
    const Node& n = nodes_[current];
    out->insert(out->end(), n.expressions.begin(), n.expressions.end());
    current = n.parent;
  }
}

void ExpressionTrie::Rebuild() {
  clusters_.clear();
  expr_depths_.clear();

  // One DFS per root child collects the cluster's expressions.
  for (uint32_t cluster_root : nodes_[root()].children) {
    Cluster cluster;
    cluster.access_pid = nodes_[cluster_root].pid;
    std::vector<std::pair<InternalId, uint16_t>> members;
    std::vector<uint32_t> stack{cluster_root};
    while (!stack.empty()) {
      uint32_t id = stack.back();
      stack.pop_back();
      const Node& n = nodes_[id];
      for (InternalId expr : n.expressions) {
        members.emplace_back(expr, n.depth);
      }
      for (uint32_t child : n.children) stack.push_back(child);
    }
    const bool longest = longest_first_;
    std::sort(members.begin(), members.end(),
              [longest](const auto& a, const auto& b) {
                if (a.second != b.second) {
                  return longest ? a.second > b.second : a.second < b.second;
                }
                return a.first < b.first;
              });
    cluster.expressions_by_length.reserve(members.size());
    for (const auto& [expr, depth] : members) {
      cluster.expressions_by_length.push_back(expr);
      expr_depths_.emplace_back(expr, depth);
    }
    clusters_.push_back(std::move(cluster));
  }

  const bool longest = longest_first_;
  std::sort(expr_depths_.begin(), expr_depths_.end(),
            [longest](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return longest ? a.second > b.second : a.second < b.second;
              }
              return a.first < b.first;
            });
  by_length_.clear();
  by_length_.reserve(expr_depths_.size());
  for (const auto& [expr, depth] : expr_depths_) by_length_.push_back(expr);

  dirty_ = false;
}

const std::vector<ExpressionTrie::Cluster>& ExpressionTrie::clusters() {
  if (dirty_) Rebuild();
  return clusters_;
}

const std::vector<InternalId>& ExpressionTrie::expressions_by_length() {
  if (dirty_) Rebuild();
  return by_length_;
}

size_t ExpressionTrie::ApproximateMemoryBytes() const {
  size_t total = VectorBytes(nodes_);
  for (const Node& node : nodes_) {
    total += VectorBytes(node.expressions) + VectorBytes(node.children);
  }
  total += UnorderedOverheadBytes(edges_) +
           edges_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  total += VectorBytes(clusters_);
  for (const Cluster& c : clusters_) {
    total += VectorBytes(c.expressions_by_length);
  }
  total += VectorBytes(by_length_) + VectorBytes(expr_depths_);
  return total;
}

}  // namespace xpred::core
