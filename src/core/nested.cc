#include "core/nested.h"

#include <algorithm>

#include "common/string_util.h"

namespace xpred::core {

using xpath::PathExpr;
using xpath::Step;

namespace {

/// Copies \p step without its nested path filters.
Step StripStep(const Step& step) {
  Step out;
  out.axis = step.axis;
  out.wildcard = step.wildcard;
  out.tag = step.tag;
  out.attribute_filters = step.attribute_filters;
  return out;
}

Status DecomposeRec(const PathExpr& expr, uint32_t parent,
                    uint32_t branch_step, size_t max_subs,
                    Decomposition* out) {
  if (out->subs.size() >= max_subs) {
    return Status::CapacityExceeded(
        StringPrintf("nested decomposition exceeds %zu sub-expressions",
                     max_subs));
  }

  // The trunk: this path with every step's nested filters stripped.
  SubExpression sub;
  sub.path.absolute = expr.absolute;
  sub.path.steps.reserve(expr.steps.size());
  for (const Step& step : expr.steps) {
    sub.path.steps.push_back(StripStep(step));
  }
  sub.branch_step = branch_step;
  sub.parent = parent;

  const uint32_t index = static_cast<uint32_t>(out->subs.size());
  out->subs.push_back(std::move(sub));
  if (parent != UINT32_MAX) {
    out->subs[parent].children.push_back(index);
  }

  // Extended sub-expressions, one per nested filter.
  for (size_t i = 0; i < expr.steps.size(); ++i) {
    const Step& step = expr.steps[i];
    if (step.nested_paths.empty()) continue;
    if (step.wildcard) {
      return Status::InvalidArgument(
          "nested path filters on wildcard steps are not supported");
    }
    for (const PathExpr& nested : step.nested_paths) {
      if (nested.steps.empty()) {
        return Status::InvalidArgument("empty nested path filter");
      }
      PathExpr extended;
      extended.absolute = expr.absolute;
      // Shared (stripped) prefix up to and including step i...
      for (size_t k = 0; k <= i; ++k) {
        extended.steps.push_back(StripStep(expr.steps[k]));
      }
      // ...followed by the filter path (its first step keeps its own
      // axis: [d] attaches as /d, [//d] as //d).
      for (const Step& nstep : nested.steps) {
        extended.steps.push_back(nstep);  // May carry nested filters.
      }
      XPRED_RETURN_NOT_OK(DecomposeRec(extended, index,
                                       static_cast<uint32_t>(i + 1),
                                       max_subs, out));
    }
  }
  return Status::OK();
}

}  // namespace

Result<Decomposition> DecomposeNested(const PathExpr& expr,
                                      size_t max_subs) {
  if (!expr.HasNestedPaths()) {
    return Status::InvalidArgument(
        "expression has no nested path filters; encode it directly");
  }
  Decomposition out;
  Status st = DecomposeRec(expr, UINT32_MAX, 0, max_subs, &out);
  if (!st.ok()) return st;

  // Interest steps: own branch point + children's branch points.
  for (SubExpression& sub : out.subs) {
    if (sub.parent != UINT32_MAX) {
      sub.interest_steps.push_back(sub.branch_step);
    }
    for (uint32_t child : sub.children) {
      sub.interest_steps.push_back(out.subs[child].branch_step);
    }
    std::sort(sub.interest_steps.begin(), sub.interest_steps.end());
    sub.interest_steps.erase(
        std::unique(sub.interest_steps.begin(), sub.interest_steps.end()),
        sub.interest_steps.end());
  }
  return out;
}

}  // namespace xpred::core
