#include "core/predicate_index.h"

#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/memory_usage.h"
#include "common/string_util.h"

namespace xpred::core {

PredicateIndex::Slot& PredicateIndex::SlotFor(const Predicate& p) {
  switch (p.type) {
    case PredicateType::kAbsolute: {
      OpArrays& arrays = absolute_[p.tag1];
      std::vector<Slot>& arr = (p.op == PredOp::kEq) ? arrays.eq : arrays.ge;
      if (arr.size() <= options_.max_value) arr.resize(options_.max_value + 1);
      return arr[p.value];
    }
    case PredicateType::kRelative: {
      OpArrays& arrays = relative_[p.tag1][p.tag2];
      std::vector<Slot>& arr = (p.op == PredOp::kEq) ? arrays.eq : arrays.ge;
      if (arr.size() <= options_.max_value) arr.resize(options_.max_value + 1);
      return arr[p.value];
    }
    case PredicateType::kEndOfPath: {
      std::vector<Slot>& arr = end_of_path_[p.tag1];
      if (arr.size() <= options_.max_value) arr.resize(options_.max_value + 1);
      return arr[p.value];
    }
    case PredicateType::kLength: {
      if (length_.size() <= options_.max_value) {
        length_.resize(options_.max_value + 1);
      }
      return length_[p.value];
    }
  }
  // Unreachable; keep the compiler satisfied.
  static Slot dummy;
  return dummy;
}

namespace {

/// Hash of (kind, name, canonical value). Numeric values hash their
/// canonical spelling so that "3" and "3.0" collide with the literal 3.
uint64_t HashKey(char kind, std::string_view name, std::string_view value) {
  uint64_t h = Fnv1a(name, Fnv1a(std::string_view(&kind, 1)));
  h = Fnv1a(value, h);
  return h;
}

uint64_t HashNumericValue(std::string_view name, double value) {
  char buf[32];
  int len = std::snprintf(buf, sizeof(buf), "%.17g", value);
  return HashKey('N', name, std::string_view(buf, static_cast<size_t>(len)));
}

/// Folds the tag-variable side (first/second) into the hash.
uint64_t WithSide(uint64_t h, bool on_second) {
  return HashCombine(h, on_second ? 2 : 1);
}

}  // namespace

bool PredicateIndex::EqHash(const Predicate& p, uint64_t* hash) {
  // Qualifies iff the predicate carries exactly one constraint, that
  // constraint is an equality comparison with a literal.
  const std::vector<AttributeConstraint>* constraints = nullptr;
  bool on_second = false;
  if (p.attrs1.size() + p.attrs2.size() != 1) return false;
  if (!p.attrs1.empty()) {
    constraints = &p.attrs1;
  } else {
    constraints = &p.attrs2;
    on_second = true;
  }
  const AttributeConstraint& c = (*constraints)[0];
  if (!c.has_comparison || c.op != xpath::CompareOp::kEq) return false;
  uint64_t h = c.value.is_number
                   ? HashNumericValue(c.name, c.value.number)
                   : HashKey('S', c.name, c.value.text);
  *hash = WithSide(h, on_second);
  return true;
}

Result<PredicateId> PredicateIndex::InsertOrFind(const Predicate& p) {
  if (p.value == 0 || p.value > options_.max_value) {
    return Status::CapacityExceeded(StringPrintf(
        "predicate value %u outside supported range [1, %u] "
        "(maximum expression length)",
        p.value, options_.max_value));
  }
  Slot& slot = SlotFor(p);
  // The slot pins (type, tags, op, value); pids differ only in their
  // attribute constraints, so comparing those suffices. Equality-
  // indexed predicates only need their own bucket searched.
  uint64_t hash = 0;
  std::vector<PredicateId>* bucket;
  if (EqHash(p, &hash)) {
    bucket = &slot.eq[hash];
    has_eq_predicates_ = true;
  } else {
    bucket = &slot.scan;
  }
  for (PredicateId pid : *bucket) {
    const Predicate& existing = predicates_[pid];
    if (existing.attrs1 == p.attrs1 && existing.attrs2 == p.attrs2) {
      return pid;
    }
  }
  PredicateId pid = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(p);
  bucket->push_back(pid);
  return pid;
}

bool PredicateIndex::ConstraintsHold(
    const std::vector<AttributeConstraint>& constraints,
    const std::vector<xml::Attribute>& attrs) {
  for (const AttributeConstraint& c : constraints) {
    bool found = false;
    for (const xml::Attribute& a : attrs) {
      if (a.name == c.name) {
        if (!c.Matches(a.value)) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

size_t PredicateIndex::EmitSlot(const Slot& slot,
                                const Publication& publication,
                                const Tuple* t1, const Tuple* t2,
                                OccPair pair, MatchResultSet* results,
                                const ProbeTable& probes) const {
  size_t emitted = 0;
  for (PredicateId pid : slot.scan) {
    const Predicate& p = predicates_[pid];
    if (!p.attrs1.empty()) {
      if (t1 == nullptr ||
          !ConstraintsHold(p.attrs1,
                           publication.AttributesAt(t1->position))) {
        continue;
      }
    }
    if (!p.attrs2.empty()) {
      if (t2 == nullptr ||
          !ConstraintsHold(p.attrs2,
                           publication.AttributesAt(t2->position))) {
        continue;
      }
    }
    results->Add(pid, pair);
    ++emitted;
  }

  if (!slot.eq.empty()) {
    // Probe the equality index with the precomputed hashes of every
    // attribute of the involved elements; hits are re-verified against
    // the predicate's constraints (hash collisions are possible).
    auto probe = [&](bool on_second, const Tuple* t) {
      if (t == nullptr) return;
      for (const AttrHash& ah : probes.by_position[t->position]) {
        for (int form = 0; form < 2; ++form) {
          uint64_t h;
          if (form == 0) {
            h = ah.string_hash;
          } else {
            if (!ah.has_numeric) break;
            h = ah.numeric_hash;
          }
          auto it = slot.eq.find(WithSide(h, on_second));
          if (it == slot.eq.end()) continue;
          for (PredicateId pid : it->second) {
            // Full re-verification (guards against hash collisions,
            // including cross-side ones).
            const Predicate& p = predicates_[pid];
            if (!p.attrs1.empty() &&
                (t1 == nullptr ||
                 !ConstraintsHold(p.attrs1,
                                  publication.AttributesAt(t1->position)))) {
              continue;
            }
            if (!p.attrs2.empty() &&
                (t2 == nullptr ||
                 !ConstraintsHold(p.attrs2,
                                  publication.AttributesAt(t2->position)))) {
              continue;
            }
            results->Add(pid, pair);
            ++emitted;
          }
        }
      }
    };
    probe(false, t1);
    probe(true, t2);
  }
  return emitted;
}

size_t PredicateIndex::Match(const Publication& publication,
                             MatchResultSet* results) const {
  results->BeginPath(predicates_.size());
  size_t emitted = 0;
  const uint32_t path_length = publication.length();

  // Precompute equality-probe hashes for each element's attributes
  // (only when equality-indexed predicates exist).
  ProbeTable probes;
  if (has_eq_predicates_) {
    probes.by_position.resize(path_length + 1);
    for (uint32_t pos = 1; pos <= path_length; ++pos) {
      for (const xml::Attribute& attr : publication.AttributesAt(pos)) {
        AttrHash ah;
        ah.string_hash = HashKey('S', attr.name, attr.value);
        const char* begin = attr.value.c_str();
        char* end = nullptr;
        double number = std::strtod(begin, &end);
        if (!attr.value.empty() && end == begin + attr.value.size() &&
            !std::isspace(static_cast<unsigned char>(attr.value.front()))) {
          ah.numeric_hash = HashNumericValue(attr.name, number);
          ah.has_numeric = true;
        }
        probes.by_position[pos].push_back(ah);
      }
    }
  }

  // Length-of-expression predicates: (length, >=, v) matches iff
  // path_length >= v, i.e. every array slot 1..path_length.
  {
    uint32_t limit = path_length;
    if (length_.size() <= limit) {
      limit = length_.empty() ? 0 : static_cast<uint32_t>(length_.size() - 1);
    }
    for (uint32_t v = 1; v <= limit; ++v) {
      emitted += EmitSlot(length_[v], publication, nullptr, nullptr,
                          OccPair{1, 1}, results, probes);
    }
  }

  const std::vector<Tuple>& tuples = publication.tuples();

  for (const Tuple& t : tuples) {
    if (t.tag == kInvalidSymbol) continue;  // Unknown to every predicate.
    const OccPair self{t.occurrence, t.occurrence};

    // Absolute predicates: '=' at exactly the tuple's position; '>='
    // at every value 1..position.
    auto abs_it = absolute_.find(t.tag);
    if (abs_it != absolute_.end()) {
      const OpArrays& arrays = abs_it->second;
      if (t.position < arrays.eq.size()) {
        emitted += EmitSlot(arrays.eq[t.position], publication, &t, nullptr,
                            self, results, probes);
      }
      uint32_t limit = t.position;
      if (arrays.ge.size() <= limit) {
        limit = arrays.ge.empty()
                    ? 0
                    : static_cast<uint32_t>(arrays.ge.size() - 1);
      }
      for (uint32_t v = 1; v <= limit; ++v) {
        emitted += EmitSlot(arrays.ge[v], publication, &t, nullptr, self,
                            results, probes);
      }
    }

    // End-of-path predicates: (p_t-|, >=, v) matches iff
    // path_length - position >= v.
    auto eop_it = end_of_path_.find(t.tag);
    if (eop_it != end_of_path_.end()) {
      const std::vector<Slot>& arr = eop_it->second;
      uint32_t remaining = path_length - t.position;
      uint32_t limit = remaining;
      if (arr.size() <= limit) {
        limit = arr.empty() ? 0 : static_cast<uint32_t>(arr.size() - 1);
      }
      for (uint32_t v = 1; v <= limit; ++v) {
        emitted += EmitSlot(arr[v], publication, &t, nullptr, self, results, probes);
      }
    }
  }

  // Relative predicates: correlate each ordered pair of tuples; the
  // array position is the position difference (§4.1.2).
  for (size_t i = 0; i < tuples.size(); ++i) {
    const Tuple& t1 = tuples[i];
    if (t1.tag == kInvalidSymbol) continue;
    auto level1 = relative_.find(t1.tag);
    if (level1 == relative_.end()) continue;
    const auto& second_level = level1->second;
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      const Tuple& t2 = tuples[j];
      if (t2.tag == kInvalidSymbol) continue;
      auto level2 = second_level.find(t2.tag);
      if (level2 == second_level.end()) continue;
      const OpArrays& arrays = level2->second;
      const uint32_t distance = t2.position - t1.position;
      const OccPair pair{t1.occurrence, t2.occurrence};
      if (distance < arrays.eq.size()) {
        emitted += EmitSlot(arrays.eq[distance], publication, &t1, &t2, pair,
                            results, probes);
      }
      uint32_t limit = distance;
      if (arrays.ge.size() <= limit) {
        limit = arrays.ge.empty()
                    ? 0
                    : static_cast<uint32_t>(arrays.ge.size() - 1);
      }
      for (uint32_t v = 1; v <= limit; ++v) {
        emitted += EmitSlot(arrays.ge[v], publication, &t1, &t2, pair,
                            results, probes);
      }
    }
  }

  return emitted;
}

namespace {

size_t ConstraintBytes(const std::vector<AttributeConstraint>& attrs) {
  size_t total = VectorBytes(attrs);
  for (const AttributeConstraint& c : attrs) {
    total += StringBytes(c.name) + StringBytes(c.value.text);
  }
  return total;
}

}  // namespace

size_t PredicateIndex::ApproximateMemoryBytes() const {
  size_t total = VectorBytes(predicates_);
  for (const Predicate& p : predicates_) {
    total += ConstraintBytes(p.attrs1) + ConstraintBytes(p.attrs2);
  }
  auto slot_bytes = [](const Slot& slot) {
    return VectorBytes(slot.scan) + MapOfVectorsBytes(slot.eq);
  };
  auto arrays_bytes = [&](const OpArrays& arrays) {
    size_t bytes = VectorBytes(arrays.eq) + VectorBytes(arrays.ge);
    for (const Slot& s : arrays.eq) bytes += slot_bytes(s);
    for (const Slot& s : arrays.ge) bytes += slot_bytes(s);
    return bytes;
  };
  total += UnorderedOverheadBytes(absolute_);
  for (const auto& [tag, arrays] : absolute_) total += arrays_bytes(arrays);
  total += UnorderedOverheadBytes(relative_);
  for (const auto& [tag1, inner] : relative_) {
    total += UnorderedOverheadBytes(inner);
    for (const auto& [tag2, arrays] : inner) total += arrays_bytes(arrays);
  }
  total += UnorderedOverheadBytes(end_of_path_);
  for (const auto& [tag, arr] : end_of_path_) {
    total += VectorBytes(arr);
    for (const Slot& s : arr) total += slot_bytes(s);
  }
  total += VectorBytes(length_);
  for (const Slot& s : length_) total += slot_bytes(s);
  return total;
}

}  // namespace xpred::core
