#ifndef XPRED_CORE_EXPRESSION_INDEX_H_
#define XPRED_CORE_EXPRESSION_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/encoder.h"
#include "core/predicate.h"

namespace xpred::core {

/// Index of an internal (deduplicated) expression within the matcher.
using InternalId = uint32_t;
inline constexpr InternalId kInvalidInternal = UINT32_MAX;

/// \brief Trie over predicate chains (paper §4.2.2, Figure 2).
///
/// Expressions are indexed by their ordered pids; an expression whose
/// chain is a prefix of another's is *covered* by it: if the longer
/// expression matches a publication, the prefix matches too, without
/// running occurrence determination again. The trie's root children
/// partition expressions by their first predicate — the paper's
/// *access predicates*: when the first predicate has no matching
/// result, the entire cluster is ruled out.
class ExpressionTrie {
 public:
  struct Node {
    PredicateId pid = kInvalidPredicate;
    uint32_t parent = UINT32_MAX;
    /// Expressions whose chain ends at this node (several are possible:
    /// e.g. /*/*/* and */*/* share the chain (length, >=, 3), and in
    /// selection-postponed mode structurally identical expressions
    /// with different attribute filters share it too).
    std::vector<InternalId> expressions;
    std::vector<uint32_t> children;
    uint16_t depth = 0;
  };

  ExpressionTrie() {
    nodes_.push_back(Node{});  // Root.
  }

  /// Inserts (or finds) the chain and returns its final node.
  uint32_t InsertChain(const std::vector<PredicateId>& pids);

  /// Registers an expression ending at \p node.
  void AttachExpression(uint32_t node, InternalId expr) {
    nodes_[node].expressions.push_back(expr);
    dirty_ = true;
  }

  const Node& node(uint32_t id) const { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }
  uint32_t root() const { return 0; }

  /// \brief One access-predicate cluster: the subtree under a root
  /// child (all expressions sharing a first predicate).
  struct Cluster {
    PredicateId access_pid = kInvalidPredicate;
    /// Expressions in the subtree, sorted by chain length descending
    /// (the paper's longest-first covering heuristic).
    std::vector<InternalId> expressions_by_length;
  };

  /// Evaluation-order heuristic (paper §4.2.2 uses longest-first to
  /// maximize covering; shortest-first is kept as an ablation point).
  void SetOrderLongestFirst(bool longest_first) {
    if (longest_first_ != longest_first) {
      longest_first_ = longest_first;
      dirty_ = true;
    }
  }

  /// Clusters for basic-pc-ap; rebuilt lazily after inserts.
  const std::vector<Cluster>& clusters();

  /// All expressions sorted by chain length descending (basic-pc).
  const std::vector<InternalId>& expressions_by_length();

  /// Rebuilds the evaluation orders now if inserts dirtied them, so
  /// the const (multi-threaded) filter path can read them through the
  /// prepared accessors without mutating shared state mid-document.
  void EnsureOrders() {
    if (dirty_) Rebuild();
  }
  /// \name Prepared-order accessors
  /// Valid only after EnsureOrders() with no intervening insert.
  ///@{
  const std::vector<Cluster>& prepared_clusters() const { return clusters_; }
  const std::vector<InternalId>& prepared_expressions_by_length() const {
    return by_length_;
  }
  ///@}

  /// Approximate heap bytes of the trie and its evaluation orders.
  size_t ApproximateMemoryBytes() const;

  /// Expressions at \p node and every ancestor — the covered prefixes
  /// that a match at \p node subsumes. Appended to \p out.
  void CollectPrefixExpressions(uint32_t node,
                                std::vector<InternalId>* out) const;

  /// Final node of an internal expression (as recorded by the caller).
  /// The trie itself does not store this; the matcher keeps it in its
  /// expression records.

 private:
  void Rebuild();

  std::vector<Node> nodes_;
  /// (parent << 32 | pid) -> child node.
  std::unordered_map<uint64_t, uint32_t> edges_;
  std::vector<Cluster> clusters_;
  std::vector<InternalId> by_length_;
  /// Chain length per expression (parallel to by_length_ bookkeeping).
  std::vector<std::pair<InternalId, uint16_t>> expr_depths_;
  bool longest_first_ = true;
  bool dirty_ = true;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_EXPRESSION_INDEX_H_
