#ifndef XPRED_CORE_ENGINE_H_
#define XPRED_CORE_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/limits.h"
#include "common/status.h"
#include "core/predicate.h"
#include "obs/engine_instruments.h"
#include "xml/document.h"

namespace xpred::core {

/// \brief Cumulative per-engine counters and stage timings.
///
/// The stage split mirrors the paper's §6.5 cost breakdown: document
/// parsing/encoding, predicate matching, expression matching
/// (occurrence determination), and result collection. Baseline engines
/// fill the fields that apply to them (YFilter: expression_micros is
/// NFA execution; verify_micros is selection-postponed filter
/// verification).
///
/// Since the observability layer landed this struct is a *view*: the
/// numbers live in the engine's obs::MetricsRegistry (per-stage
/// latency histograms and counters, see FilterEngine::stats()), and
/// this struct is materialized from them on demand. It is kept because
/// it is the paper-era reporting surface used by the benchmarks and
/// tests.
struct EngineStats {
  uint64_t documents = 0;
  uint64_t paths = 0;

  /// Publication building / SAX-side encoding time.
  double encode_micros = 0;
  /// Stage 1: predicate matching (or NFA execution / stream joins).
  double predicate_micros = 0;
  /// Stage 2: expression matching (occurrence determination).
  double expression_micros = 0;
  /// Attribute-filter verification (selection-postponed modes).
  double verify_micros = 0;
  /// Result collection.
  double collect_micros = 0;

  /// Times the occurrence determination algorithm executed.
  uint64_t occurrence_runs = 0;
  /// Times a nested-path witness enumeration hit its search budget
  /// (possible false negatives for that sub-expression; raise
  /// Matcher::Options::nested_chain_budget if ever non-zero).
  uint64_t nested_enumeration_truncated = 0;
  /// (pid, pair) predicate matches recorded.
  uint64_t predicate_matches = 0;

  double total_micros() const {
    return encode_micros + predicate_micros + expression_micros +
           verify_micros + collect_micros;
  }
};

/// \brief Common interface of all filtering engines (our matcher,
/// YFilter, Index-Filter), so benchmarks and examples can swap them.
///
/// Usage: add all expressions first, then filter documents (the paper
/// assumes "all XPEs are processed before any XML documents are
/// matched"). AddExpression returns a subscription id; duplicate
/// expressions get distinct ids but share all internal state.
/// FilterDocument appends the ids of every matched subscription.
class FilterEngine {
 public:
  virtual ~FilterEngine() = default;

  /// Registers an XPath expression; returns its subscription id
  /// (dense, starting at 0).
  virtual Result<ExprId> AddExpression(std::string_view xpath) = 0;

  /// Filters one parsed document; appends matched subscription ids to
  /// \p matched (unordered).
  virtual Status FilterDocument(const xml::Document& document,
                                std::vector<ExprId>* matched) = 0;

  /// Convenience: parse XML text, then filter. Parsing time is added
  /// to stats().encode_micros, matching the paper's "total filtering
  /// time includes the time of parsing the XML document".
  Status FilterXml(std::string_view xml_text, std::vector<ExprId>* matched);

  /// Number of registered subscriptions (duplicates included).
  virtual size_t subscription_count() const = 0;

  /// Cumulative stats view, derived from the metrics registry (same
  /// numbers the paper reports; see EngineStats). The reference stays
  /// valid until the next stats() call on this engine.
  const EngineStats& stats() const;
  /// Zeroes every counter and latency histogram of this engine —
  /// including occurrence_runs, nested_enumeration_truncated, and
  /// predicate_matches — uniformly across all engines. Metrics of
  /// other engines sharing the registry are untouched.
  void ResetStats();

  /// \name Observability
  ///
  /// Every engine publishes into an obs::MetricsRegistry: the §6.5
  /// stage split as per-document latency histograms
  /// (xpred_stage_latency_ns{engine=...,stage=...}) plus the counters
  /// mirrored by EngineStats. By default each engine lazily creates a
  /// private registry; BindMetrics() re-homes the metrics into a
  /// shared registry (values recorded so far are carried over) so one
  /// exporter can serve several engines.
  ///@{
  void BindMetrics(obs::MetricsRegistry* registry);
  /// The registry currently holding this engine's metrics.
  obs::MetricsRegistry* metrics_registry();
  /// Attaches a tracer receiving aggregated per-document stage spans
  /// (obs::Stage taxonomy); nullptr detaches. Not owned.
  void set_tracer(obs::Tracer* tracer);
  /// Publishes workload-analytics totals as xpred_workload_* gauges
  /// under this engine's label (drivers call this after draining their
  /// profiler; see obs::EngineInstruments::PublishWorkload).
  void PublishWorkload(const obs::WorkloadSummary& summary) {
    inst().PublishWorkload(summary);
  }
  ///@}

  /// \name Resource governance
  ///
  /// Every engine honors the same ResourceLimits contract (DESIGN.md
  /// §11): FilterXml / FilterDocument reject an over-limit document
  /// with kResourceExhausted and a deadline-expired one with
  /// kDeadlineExceeded — uniformly across engine families, never with
  /// a crash or silent truncation. The default limits preserve
  /// historical behavior (depth cap 512, everything else off).
  ///@{
  /// Sets the limits governing all subsequent documents. Virtual so
  /// wrapper engines (e.g. the streaming roster adapter) can forward
  /// to the engine they delegate to.
  virtual void set_resource_limits(const ResourceLimits& limits) {
    limits_ = limits;
  }
  const ResourceLimits& resource_limits() const { return limits_; }

  /// The per-document execution budget. Armed by FilterXml (or
  /// BeginGovernedWindow / BeginGoverned) and consulted at cooperative
  /// checkpoints inside the engines.
  ExecBudget& budget() { return budget_; }

  /// Opens a governed document window: arms the budget from the
  /// current limits so the deadline covers everything the driver does
  /// next (parse + match). While a window is open, BeginGoverned and
  /// the streaming begin-document hook do not re-arm. Drivers that
  /// feed the engine pre-parsed or streamed input (StreamingFilter,
  /// custom event sources) call this; FilterXml does it internally.
  void BeginGovernedWindow() {
    budget_.Arm(limits_);
    in_governed_window_ = true;
  }
  void EndGovernedWindow() { in_governed_window_ = false; }
  ///@}

  /// Short engine name for reports ("basic-pc-ap", "yfilter", ...).
  virtual std::string_view name() const = 0;

  /// Approximate heap bytes held by the engine's index structures
  /// (RocksDB idiom; estimates container backing storage, not
  /// allocator slack). 0 when an engine does not implement it.
  virtual size_t ApproximateMemoryBytes() const { return 0; }

 protected:
  /// First call of every FilterDocument implementation: arms the
  /// budget (unless an outer governed window already did) and
  /// validates the parsed document against the structural limits —
  /// depth, attributes per element, and leaf (= extractable path)
  /// count. Direct FilterDocument callers thereby get the same
  /// governance as the FilterXml path, where the parser enforces these
  /// caps during the parse.
  Status BeginGoverned(const xml::Document& document);

  /// The validation half of BeginGoverned, usable against any armed
  /// budget (the parallel front end runs it per worker task with the
  /// task's own budget): fault-injection checkpoint, deadline check,
  /// and the structural scan (depth, attributes per element, leaf
  /// count) under \p limits.
  static Status ValidateDocumentAgainstBudget(const xml::Document& document,
                                              ExecBudget* budget,
                                              const ResourceLimits& limits);

  /// Arms the budget for a streamed document unless an outer governed
  /// window already did (streaming begin-document hook).
  void ArmBudgetIfNeeded() {
    if (!in_governed_window_) budget_.Arm(limits_);
  }

  /// This engine's observability handle; binds the private registry on
  /// first use (name() must be callable, i.e. construction finished).
  obs::EngineInstruments& inst() const {
    if (!instruments_.bound()) instruments_.BindOwned(name());
    return instruments_;
  }

  /// Hot-path variant of inst() without the lazy-bind branch. The
  /// bind check hides an out-of-line call, which blocks optimization
  /// of tight loops around it (measurably so in the per-expression
  /// matching loop). Only valid once something has bound the
  /// instruments — in practice, after the per-document inst()
  /// .BeginDocument() call.
  obs::EngineInstruments& bound_inst() const { return instruments_; }

 private:
  /// FilterXml body, running inside the governed window.
  Status GovernedFilterXml(std::string_view xml_text,
                           std::vector<ExprId>* matched);

  mutable obs::EngineInstruments instruments_;
  /// Backing storage for the stats() view.
  mutable EngineStats stats_view_;
  ResourceLimits limits_;
  ExecBudget budget_;
  bool in_governed_window_ = false;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_ENGINE_H_
