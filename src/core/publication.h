#ifndef XPRED_CORE_PUBLICATION_H_
#define XPRED_CORE_PUBLICATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "xml/path.h"

namespace xpred::core {

/// \brief One location step of a document path, as the publication
/// encoder consumes it. The referenced storage (tag text, attribute
/// vector) must outlive the Publication — it is owned by the Document
/// in tree mode, or by the streaming filter's element stack in
/// streaming mode.
struct PathElementView {
  std::string_view tag;
  /// May be null (no attributes).
  const std::vector<xml::Attribute>* attributes = nullptr;
  /// Identity of the element for nested-path joins. Tree mode passes
  /// the preorder NodeId; streaming mode passes a per-document
  /// element counter. Must be unique per element within a document.
  xml::NodeId node = xml::kInvalidNode;
};

/// \brief One (tag, position) tuple of a publication (§3.3), annotated
/// with the tag's occurrence number and the underlying document node.
struct Tuple {
  /// Interned tag name; kInvalidSymbol when the tag never appears in
  /// any stored expression (such tuples can only contribute to length /
  /// distance bookkeeping, never to a predicate match).
  SymbolId tag = kInvalidSymbol;
  /// 1-based position within the document path.
  uint32_t position = 0;
  /// 1-based occurrence number of this tag within the path (Example 1).
  uint32_t occurrence = 1;
  /// Underlying document element (attribute lookups, nested joins).
  xml::NodeId node = xml::kInvalidNode;
};

/// \brief A document path translated to the paper's tuple encoding:
/// {(length, n), (t_1, 1), ..., (t_n, n)} with occurrence annotations.
///
/// Also provides the reverse lookups the matching stages need:
/// position-by-(tag, occurrence) and the element attributes at a
/// position.
class Publication {
 public:
  /// Empty publication; fill with Assign(). Lets a per-thread match
  /// context keep one Publication alive across paths so the tuple /
  /// attribute / reverse-index buffers are reused instead of
  /// reallocated per path.
  Publication() = default;

  /// Builds the publication for a path given as element views (used by
  /// the streaming filter; the views' storage must outlive this
  /// object). Tags are resolved through \p interner with Lookup (never
  /// interning): a document tag that no expression mentions keeps
  /// tag == kInvalidSymbol. Occurrence numbers are computed here.
  Publication(std::span<const PathElementView> elements,
              const Interner& interner);

  /// Convenience: builds the publication for an extracted tree path.
  Publication(const xml::DocumentPath& path, const Interner& interner);

  /// Rebuilds this publication for a new path, reusing all backing
  /// storage (including the per-tag position vectors of the reverse
  /// index, which are pooled rather than destroyed).
  void Assign(std::span<const PathElementView> elements,
              const Interner& interner);

  /// The (length, n) tuple's value.
  uint32_t length() const { return static_cast<uint32_t>(tuples_.size()); }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  const Tuple& tuple(uint32_t position) const {
    return tuples_[position - 1];
  }

  /// 1-based position of the \p occurrence-th occurrence of \p tag, or
  /// 0 when absent.
  uint32_t PositionOf(SymbolId tag, uint32_t occurrence) const;

  /// Attributes of the element at 1-based \p position.
  const std::vector<xml::Attribute>& AttributesAt(uint32_t position) const {
    const std::vector<xml::Attribute>* attrs = attrs_[position - 1];
    return attrs != nullptr ? *attrs : EmptyAttributes();
  }

  /// Document node at 1-based \p position.
  xml::NodeId NodeAt(uint32_t position) const {
    return tuples_[position - 1].node;
  }

  /// Tag text at 1-based \p position (valid while the source path
  /// storage lives; diagnostics only).
  std::string_view TagAt(uint32_t position) const {
    return tag_text_[position - 1];
  }

  /// Paper-style rendering: "(length, 6), (a^1, 1), (b^1, 2), ...".
  std::string ToString(const Interner& interner) const;

 private:
  static const std::vector<xml::Attribute>& EmptyAttributes();

  void Build(std::span<const PathElementView> elements,
             const Interner& interner);

  std::vector<Tuple> tuples_;
  std::vector<const std::vector<xml::Attribute>*> attrs_;
  std::vector<std::string_view> tag_text_;
  /// Dense reverse index: positions of each occurrence of every known
  /// tag in this path (small: one entry per distinct known tag).
  struct TagPositions {
    SymbolId tag = kInvalidSymbol;
    std::vector<uint32_t> positions;  // positions[k] = occurrence k+1
  };
  /// Pooled: only the first by_tag_used_ entries are live for the
  /// current path; the rest keep their capacity for reuse.
  std::vector<TagPositions> by_tag_;
  size_t by_tag_used_ = 0;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_PUBLICATION_H_
