#ifndef XPRED_CORE_STREAMING_H_
#define XPRED_CORE_STREAMING_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/small_vector.h"
#include "common/status.h"
#include "core/matcher.h"
#include "xml/sax.h"

namespace xpred::core {

/// \brief SAX-driven filtering front end for the Matcher.
///
/// The paper's implementation extracts one path at a time while
/// parsing (§3.1); this class does exactly that: it consumes SAX
/// events, maintains the current root-to-leaf path on a stack, and
/// hands each completed path to the matcher. Memory use is
/// proportional to document depth — the document tree is never built.
///
/// Usage:
///
/// \code
///   Matcher matcher;
///   matcher.AddExpression("/a/b");
///   StreamingFilter filter(&matcher);
///   std::vector<ExprId> matched;
///   Status st = filter.FilterXml(xml_text, &matched);
/// \endcode
///
/// A StreamingFilter can also be driven by a custom event source
/// through the ContentHandler interface; wrap a document with
/// StartDocument() / EndDocument() calls and collect results with
/// TakeMatches().
class StreamingFilter : public xml::ContentHandler {
 public:
  /// \p matcher must outlive this object. The matcher's expression set
  /// may be modified between documents, not during one.
  explicit StreamingFilter(Matcher* matcher) : matcher_(matcher) {}

  /// Parses and filters \p xml_text in one pass; appends matched
  /// subscription ids.
  Status FilterXml(std::string_view xml_text, std::vector<ExprId>* matched);

  // ContentHandler interface (for custom event sources).
  Status StartDocument() override;
  Status EndDocument() override;
  Status StartElement(std::string_view name,
                      const std::vector<xml::Attribute>& attributes) override;
  Status EndElement(std::string_view name) override;

  /// Matches collected by the last successfully ended document.
  std::vector<ExprId> TakeMatches() { return std::move(matches_); }

  /// Maximum element-stack depth observed (memory footprint metric).
  size_t max_depth_seen() const { return max_depth_seen_; }

 private:
  struct OpenElement {
    std::string tag;
    std::vector<xml::Attribute> attributes;
    xml::NodeId node = xml::kInvalidNode;
    bool has_children = false;
  };

  /// Mirrors max_depth_seen_ into the matcher's metrics registry as
  /// the xpred_stream_max_depth gauge.
  void PublishMaxDepth();

  Matcher* matcher_;
  /// Inline up to depth 16: typical documents never touch the heap
  /// for the open-element stack.
  common::SmallVector<OpenElement, 16> stack_;
  std::vector<PathElementView> views_;
  std::vector<ExprId> matches_;
  xml::NodeId next_node_ = 0;
  size_t max_depth_seen_ = 0;
  /// Cached gauge (re-resolved if the matcher is re-bound).
  obs::Gauge* depth_gauge_ = nullptr;
  obs::MetricsRegistry* gauge_registry_ = nullptr;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_STREAMING_H_
