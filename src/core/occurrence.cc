#include "core/occurrence.h"

namespace xpred::core {

namespace {

bool DetermineRec(OccurrenceDeterminer::ResultView results, size_t index,
                  uint32_t required_first) {
  const OccList& candidates = *results[index];
  for (const OccPair& pair : candidates) {
    // Chaining constraint: this pair must continue the previous pair's
    // second occurrence (skipped for the first predicate).
    if (index > 0 && pair.first != required_first) continue;
    if (index + 1 == results.size()) return true;
    if (DetermineRec(results, index + 1, pair.second)) return true;
  }
  return false;
}

bool EnumerateRec(OccurrenceDeterminer::ResultView results, size_t index,
                  uint32_t required_first, std::vector<OccPair>* chain,
                  size_t* budget,
                  const std::function<void(std::span<const OccPair>)>& visit) {
  const OccList& candidates = *results[index];
  for (const OccPair& pair : candidates) {
    if (*budget == 0) return false;
    --*budget;
    if (index > 0 && pair.first != required_first) continue;
    chain->push_back(pair);
    if (index + 1 == results.size()) {
      visit(std::span<const OccPair>(*chain));
    } else if (!EnumerateRec(results, index + 1, pair.second, chain, budget,
                             visit)) {
      chain->pop_back();
      return false;
    }
    chain->pop_back();
  }
  return true;
}

}  // namespace

bool OccurrenceDeterminer::Determine(ResultView results) {
  if (results.empty()) return false;
  for (const OccList* r : results) {
    if (r == nullptr || r->empty()) return false;
  }
  return DetermineRec(results, 0, 0);
}

bool OccurrenceDeterminer::EnumerateChains(
    ResultView results, size_t max_steps,
    const std::function<void(std::span<const OccPair>)>& visit,
    std::vector<OccPair>* chain_scratch) {
  if (results.empty()) return true;
  for (const OccList* r : results) {
    if (r == nullptr || r->empty()) return true;  // No chains at all.
  }
  std::vector<OccPair> local;
  std::vector<OccPair>* chain = chain_scratch != nullptr ? chain_scratch
                                                         : &local;
  chain->clear();
  chain->reserve(results.size());
  size_t budget = max_steps;
  return EnumerateRec(results, 0, 0, chain, &budget, visit);
}

}  // namespace xpred::core
