#include "core/governor.h"

#include <chrono>
#include <thread>

#include "common/hash.h"
#include "obs/flight_recorder.h"

namespace xpred::core {

IngestGovernor::IngestGovernor(FilterEngine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {
  engine_->set_resource_limits(options_.limits);
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](uint32_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  obs::MetricsRegistry* registry = engine_->metrics_registry();
  const std::vector<obs::Label> labels = {
      {"engine", std::string(engine_->name())}};
  rejected_total_ = registry->AddCounter(
      "xpred_docs_rejected_total",
      "Documents rejected with a resource-limit violation", labels);
  deadline_total_ = registry->AddCounter(
      "xpred_docs_deadline_exceeded_total",
      "Documents whose per-document deadline expired (terminal, after "
      "retries)",
      labels);
  quarantined_total_ = registry->AddCounter(
      "xpred_docs_quarantined_total",
      "Documents quarantined as poison (with recorded cause)", labels);
  retried_total_ = registry->AddCounter(
      "xpred_docs_retried_total",
      "Retry attempts spent on transient document failures", labels);
  shed_total_ = registry->AddCounter(
      "xpred_docs_shed_total",
      "Documents shed unexamined by the open circuit breaker", labels);
  breaker_gauge_ = registry->AddGauge(
      "xpred_breaker_state",
      "Ingestion circuit breaker state (0=closed, 1=open, 2=half-open)",
      labels);
  SetBreakerGauge();
}

Status IngestGovernor::FilterNext(std::string_view xml_text,
                                  std::vector<ExprId>* matched,
                                  DocOutcome* outcome) {
  DocOutcome local;
  DocOutcome& out = outcome != nullptr ? *outcome : local;
  out = DocOutcome{};
  const uint64_t doc_index = docs_seen_++;
#ifndef XPRED_NO_FLIGHT_RECORDER
  // Publish the in-flight document for crash bundles: a prefix hash
  // is enough to identify the input post-mortem.
  if (obs::FlightRecorder* recorder = obs::FlightRecorder::Installed()) {
    recorder->AnnotateDocument(Fnv1a(xml_text.substr(0, 256)),
                               doc_index + 1);
  }
#endif

  // Open breaker: shed unexamined until the cooldown is spent.
  if (breaker_state_ == BreakerState::kOpen) {
    if (cooldown_remaining_ > 0) {
      --cooldown_remaining_;
      ++docs_shed_;
      shed_total_->Increment();
      XPRED_RECORD_EVENT(obs::EventType::kShed, doc_index, 0);
      out.status = Status::Rejected("circuit breaker open: document shed");
      return Status::OK();
    }
    breaker_state_ = BreakerState::kHalfOpen;
    SetBreakerGauge();
  }

  // Filter with bounded retry for transient failures. Matches are
  // staged into a scratch vector so a failed attempt cannot leak
  // partial results into the caller's list.
  Status status;
  std::vector<ExprId> attempt_matched;
  for (uint32_t attempt = 0;; ++attempt) {
    attempt_matched.clear();
    status = engine_->FilterXml(xml_text, &attempt_matched);
    if (status.ok() || !IsTransient(status) ||
        attempt >= options_.max_retries) {
      break;
    }
    ++out.retries;
    retried_total_->Increment();
    XPRED_RECORD_EVENT(obs::EventType::kRetry, doc_index, out.retries);
    options_.sleep_ms(options_.backoff_base_ms << attempt);
  }

  if (status.ok()) {
    matched->insert(matched->end(), attempt_matched.begin(),
                    attempt_matched.end());
    ++docs_ok_;
    TransitionBreaker(/*doc_failed=*/false);
    out.status = Status::OK();
    return Status::OK();
  }

  if (status.code() == StatusCode::kResourceExhausted) {
    rejected_total_->Increment();
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    deadline_total_->Increment();
  }
  out.status = status;
  if (options_.fail_fast) {
    TransitionBreaker(/*doc_failed=*/true);
    return status;
  }
  quarantine_.push_back(QuarantineRecord{doc_index, status, out.retries});
  quarantined_total_->Increment();
  XPRED_RECORD_EVENT(obs::EventType::kQuarantine, doc_index,
                     static_cast<uint64_t>(status.code()));
  out.quarantined = true;
  TransitionBreaker(/*doc_failed=*/true);
  return Status::OK();
}

void IngestGovernor::TransitionBreaker(bool doc_failed) {
  if (options_.breaker_threshold == 0) return;
  if (!doc_failed) {
    consecutive_failures_ = 0;
    if (breaker_state_ != BreakerState::kClosed) {
      breaker_state_ = BreakerState::kClosed;
      SetBreakerGauge();
    }
    return;
  }
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // Failed probe: re-open for another cooldown.
    breaker_state_ = BreakerState::kOpen;
    cooldown_remaining_ = options_.breaker_cooldown_docs;
    SetBreakerGauge();
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.breaker_threshold &&
      breaker_state_ == BreakerState::kClosed) {
    breaker_state_ = BreakerState::kOpen;
    cooldown_remaining_ = options_.breaker_cooldown_docs;
    SetBreakerGauge();
  }
}

void IngestGovernor::SetBreakerGauge() {
  breaker_gauge_->Set(static_cast<double>(static_cast<int>(breaker_state_)));
  XPRED_RECORD_EVENT(obs::EventType::kBreaker,
                     static_cast<uint64_t>(static_cast<int>(breaker_state_)),
                     consecutive_failures_);
}

}  // namespace xpred::core
