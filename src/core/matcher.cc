#include "core/matcher.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/memory_usage.h"
#include "common/string_util.h"
#include "obs/scoped_timer.h"
#include "xpath/parser.h"

namespace xpred::core {

Matcher::Matcher(Options options)
    : options_(options),
      predicate_index_(
          PredicateIndex::Options{options.max_expression_length}) {
  trie_.SetOrderLongestFirst(options_.covering_longest_first);
}

std::string_view Matcher::name() const {
  switch (options_.mode) {
    case Mode::kBasic:
      return "basic";
    case Mode::kPrefixCovering:
      return "basic-pc";
    case Mode::kPrefixCoveringAccessPredicate:
      return "basic-pc-ap";
    case Mode::kTrieDfs:
      return "trie-dfs";
  }
  return "matcher";
}

Result<ExprId> Matcher::AddExpression(std::string_view xpath) {
  Result<xpath::PathExpr> parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return AddParsedExpression(*parsed);
}

Result<ExprId> Matcher::AddParsedExpression(const xpath::PathExpr& expr) {
  std::string canonical = expr.ToString();
  auto it = dedup_.find(canonical);
  if (it != dedup_.end()) {
    // Duplicate expression: a new subscription on shared state. This
    // also reactivates an expression whose subscribers were all
    // removed.
    ExprId sid = next_sid_++;
    sid_targets_.push_back(it->second);
    if (it->second.is_group) {
      NestedGroup& group = groups_[it->second.index];
      if (group.subscribers.empty()) {
        for (InternalId sub : group.sub_internal) {
          hot_[sub].active = true;
        }
      }
      group.subscribers.push_back(sid);
    } else {
      exprs_[it->second.index].subscribers.push_back(sid);
      hot_[it->second.index].active = true;
    }
    return sid;
  }

  if (expr.HasNestedPaths()) {
    Result<Decomposition> decomposition = DecomposeNested(expr);
    if (!decomposition.ok()) return decomposition.status();
    NestedGroup group;
    group.decomposition = std::move(decomposition).value();
    const uint32_t group_id = static_cast<uint32_t>(groups_.size());

    for (size_t s = 0; s < group.decomposition.subs.size(); ++s) {
      const SubExpression& sub = group.decomposition.subs[s];
      Result<InternalId> internal =
          AddInternalPath(sub.path, group_id, static_cast<uint32_t>(s));
      if (!internal.ok()) return internal.status();
      group.sub_internal.push_back(*internal);

      // Map each interest step to the anchor carrying it.
      const Internal& rec = exprs_[*internal];
      std::vector<uint16_t> anchors;
      for (uint32_t step : sub.interest_steps) {
        uint16_t anchor = UINT16_MAX;
        for (size_t j = 0; j < rec.anchor_steps.size(); ++j) {
          if (rec.anchor_steps[j] == step) {
            anchor = static_cast<uint16_t>(j);
            break;
          }
        }
        if (anchor == UINT16_MAX) {
          return Status::Internal(
              "nested branch step is not an anchor of its sub-expression");
        }
        anchors.push_back(anchor);
      }
      group.interest_anchors.push_back(std::move(anchors));
    }

    ExprId sid = next_sid_++;
    sid_targets_.push_back(DedupTarget{true, group_id});
    group.subscribers.push_back(sid);
    groups_.push_back(std::move(group));
    dedup_.emplace(std::move(canonical), DedupTarget{true, group_id});
    return sid;
  }

  Result<InternalId> internal =
      AddInternalPath(expr, UINT32_MAX, UINT32_MAX);
  if (!internal.ok()) return internal.status();
  ExprId sid = next_sid_++;
  sid_targets_.push_back(DedupTarget{false, *internal});
  exprs_[*internal].subscribers.push_back(sid);
  dedup_.emplace(std::move(canonical), DedupTarget{false, *internal});
  return sid;
}

Status Matcher::RemoveSubscription(ExprId sid) {
  if (sid >= sid_targets_.size()) {
    return Status::NotFound(
        StringPrintf("subscription %u was never issued", sid));
  }
  const DedupTarget target = sid_targets_[sid];
  std::vector<ExprId>* subscribers =
      target.is_group ? &groups_[target.index].subscribers
                      : &exprs_[target.index].subscribers;
  auto it = std::find(subscribers->begin(), subscribers->end(), sid);
  if (it == subscribers->end()) {
    return Status::NotFound(
        StringPrintf("subscription %u already removed", sid));
  }
  subscribers->erase(it);
  if (subscribers->empty()) {
    // Last subscriber gone: deactivate (shared state stays for cheap
    // re-subscription; predicates are shared and never removed).
    if (target.is_group) {
      for (InternalId sub : groups_[target.index].sub_internal) {
        hot_[sub].active = false;
      }
    } else {
      hot_[target.index].active = false;
    }
  }
  return Status::OK();
}

Result<InternalId> Matcher::AddInternalPath(const xpath::PathExpr& path,
                                            uint32_t group,
                                            uint32_t sub_index) {
  // The predicate-index value arrays are sized for the maximum
  // supported XPE length (§4.1.2); expressions beyond it are rejected
  // outright rather than failing on some predicate's value.
  if (path.length() > options_.max_expression_length) {
    return Status::CapacityExceeded(StringPrintf(
        "expression has %zu location steps; the engine was configured "
        "for at most %u (Options::max_expression_length)",
        path.length(), options_.max_expression_length));
  }
  Result<EncodedExpression> encoded =
      EncodeExpression(path, options_.attribute_mode, &interner_);
  if (!encoded.ok()) return encoded.status();
  EncodedExpression& enc = encoded.value();

  Internal rec;
  rec.pids.reserve(enc.predicates.size());
  for (const Predicate& p : enc.predicates) {
    Result<PredicateId> pid = predicate_index_.InsertOrFind(p);
    if (!pid.ok()) return pid.status();
    rec.pids.push_back(*pid);
  }
  rec.anchor_slots = std::move(enc.anchor_slots);
  rec.anchor_tags = std::move(enc.anchor_tags);
  rec.anchor_steps = std::move(enc.anchor_steps);
  rec.deferred = std::move(enc.deferred_filters);
  rec.group = group;
  rec.sub_index = sub_index;
  rec.trie_node = trie_.InsertChain(rec.pids);

  HotExpr hot;
  hot.len = static_cast<uint16_t>(rec.pids.size());
  hot.has_deferred = !rec.deferred.empty();
  if (rec.pids.size() <= HotExpr::kInlinePids) {
    std::copy(rec.pids.begin(), rec.pids.end(), hot.pids);
  } else {
    hot.overflow = true;
    hot.pids[0] = static_cast<PredicateId>(pid_overflow_.size());
    pid_overflow_.insert(pid_overflow_.end(), rec.pids.begin(),
                         rec.pids.end());
  }

  InternalId id = static_cast<InternalId>(exprs_.size());
  exprs_.push_back(std::move(rec));
  hot_.push_back(hot);
  if (group == UINT32_MAX) {
    trie_.AttachExpression(exprs_[id].trie_node, id);
    plain_exprs_.push_back(id);
    containment_dirty_ = true;
  } else {
    nested_subs_.push_back(id);
  }
  return id;
}

// ---------------------------------------------------------------------------
// Matching.
// ---------------------------------------------------------------------------

bool Matcher::GatherResults(InternalId id, const MatchResultSet& results,
                            std::vector<const OccList*>* views) const {
  const HotExpr& hot = hot_[id];
  const PredicateId* chain = hot.Chain(pid_overflow_);
  views->clear();
  for (uint16_t i = 0; i < hot.len; ++i) {
    const OccList* r = results.Find(chain[i]);
    if (r == nullptr) return false;
    views->push_back(r);
  }
  return true;
}

bool Matcher::ApplyDeferredFilters(const Internal& expr,
                                   const Publication& pub,
                                   std::vector<const OccList*>* views,
                                   std::vector<OccList>* storage) const {
  // The pool is sized up-front so the view pointers taken below stay
  // valid; each slot keeps its (inline or spilled) capacity across
  // paths.
  if (storage->size() < expr.deferred.size()) {
    storage->resize(expr.deferred.size());
  }
  size_t used = 0;
  for (const DeferredFilters& df : expr.deferred) {
    const AnchorSlot& slot = expr.anchor_slots[df.anchor_index];
    const SymbolId tag = expr.anchor_tags[df.anchor_index];
    const OccList& source = *(*views)[slot.pred_index];
    OccList& filtered = (*storage)[used++];
    filtered.clear();
    for (const OccPair& pair : source) {
      uint32_t occ = slot.on_second ? pair.second : pair.first;
      uint32_t position = pub.PositionOf(tag, occ);
      if (position == 0) continue;
      bool ok = true;
      const std::vector<xml::Attribute>& attrs = pub.AttributesAt(position);
      for (const AttributeConstraint& c : df.filters) {
        bool found = false;
        for (const xml::Attribute& a : attrs) {
          if (a.name == c.name) {
            found = true;
            if (!c.Matches(a.value)) ok = false;
            break;
          }
        }
        if (!found) ok = false;
        if (!ok) break;
      }
      if (ok) filtered.push_back(pair);
    }
    if (filtered.empty()) return false;
    (*views)[slot.pred_index] = &filtered;
  }
  return true;
}

bool Matcher::VerifyDeferred(InternalId id, const Publication& pub,
                             MatchContext* ctx) const {
  if (!GatherResults(id, ctx->results_, &ctx->views_buf_)) return false;
  if (!ApplyDeferredFilters(exprs_[id], pub, &ctx->views_buf_,
                            &ctx->filtered_buf_)) {
    return false;
  }
  ctx->CountOccurrenceRun();
  return OccurrenceDeterminer::Determine(ctx->views_buf_);
}

bool Matcher::EvaluateExpression(InternalId id, const Publication& pub,
                                 MatchContext* ctx) const {
#ifndef XPRED_NO_ANALYTICS
  const bool attributed = ctx->attribution_enabled_;
  const bool sampled = attributed && ctx->AttrBeginEval();
#endif
  bool ran_occurrence = false;
  bool matched = false;
  if (GatherResults(id, ctx->results_, &ctx->views_buf_)) {
    ran_occurrence = true;
    ctx->CountOccurrenceRun();
    matched = OccurrenceDeterminer::Determine(ctx->views_buf_);
    if (matched && hot_[id].has_deferred) {
      matched = VerifyDeferred(id, pub, ctx);
    }
  }
#ifndef XPRED_NO_ANALYTICS
  if (attributed) {
    ctx->AttrRecordEval(id, ran_occurrence, hot_[id].len, sampled);
  }
#endif
  return matched;
}

void Matcher::MarkMatched(InternalId id, MatchContext* ctx) const {
  if (ctx->matched_epochs_[id] == ctx->doc_epoch_) return;
  ctx->matched_epochs_[id] = ctx->doc_epoch_;
  ctx->doc_matched_.push_back(id);
#ifndef XPRED_NO_ANALYTICS
  if (ctx->attribution_enabled_) ctx->AttrRecordMatch(id);
#endif
}

void Matcher::RebuildContainmentIndex() {
  // Exact-chain index: hash of the pid sequence -> expressions.
  chain_index_.clear();
  auto chain_hash = [](const std::vector<PredicateId>& pids, size_t begin,
                       size_t end) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (size_t i = begin; i < end; ++i) {
      h = HashCombine(h, pids[i] + 1);
    }
    return h;
  };
  for (InternalId id : plain_exprs_) {
    const std::vector<PredicateId>& pids = exprs_[id].pids;
    chain_index_[chain_hash(pids, 0, pids.size())].push_back(id);
  }

  // For each expression, collect expressions equal to one of its
  // proper, non-prefix contiguous subchains (prefixes are already
  // covered through the trie). A matched chain's witness restricted to
  // the subchain is a witness for the contained expression, so no
  // occurrence determination is needed for it. O(n^2) subchains per
  // expression with n <= max_expression_length + 2.
  for (InternalId id : plain_exprs_) {
    const std::vector<PredicateId>& pids = exprs_[id].pids;
    std::vector<InternalId> contained;
    const size_t n = pids.size();
    for (size_t begin = 1; begin < n; ++begin) {
      for (size_t end = begin + 1; end <= n; ++end) {
        auto it = chain_index_.find(chain_hash(pids, begin, end));
        if (it == chain_index_.end()) continue;
        for (InternalId candidate : it->second) {
          if (candidate == id) continue;
          const std::vector<PredicateId>& other = exprs_[candidate].pids;
          if (other.size() != end - begin) continue;  // Hash collision.
          if (!std::equal(other.begin(), other.end(),
                          pids.begin() + static_cast<ptrdiff_t>(begin))) {
            continue;
          }
          contained.push_back(candidate);
        }
      }
    }
    std::sort(contained.begin(), contained.end());
    contained.erase(std::unique(contained.begin(), contained.end()),
                    contained.end());
    exprs_[id].contained = std::move(contained);
  }
  containment_dirty_ = false;
}

void Matcher::PropagateCoveredMatches(InternalId id, const Publication& pub,
                                      MatchContext* ctx) const {
  // Same-node expressions share the full chain, prefix expressions a
  // prefix of it; either way the publication structurally matches them
  // (§4.2.2's covering argument), so only deferred attribute filters
  // remain to check.
  std::vector<InternalId>& prefix_buf = ctx->prefix_buf_;
  prefix_buf.clear();
  const ExpressionTrie::Node& node = trie_.node(exprs_[id].trie_node);
  prefix_buf.insert(prefix_buf.end(), node.expressions.begin(),
                    node.expressions.end());
  trie_.CollectPrefixExpressions(exprs_[id].trie_node, &prefix_buf);
  if (options_.enable_containment_covering) {
    const std::vector<InternalId>& contained = exprs_[id].contained;
    prefix_buf.insert(prefix_buf.end(), contained.begin(), contained.end());
  }
  for (InternalId covered_id : prefix_buf) {
    if (!hot_[covered_id].active ||
        ctx->matched_epochs_[covered_id] == ctx->doc_epoch_) {
      continue;
    }
    if (!hot_[covered_id].has_deferred ||
        VerifyDeferred(covered_id, pub, ctx)) {
      MarkMatched(covered_id, ctx);
    }
  }
}

void Matcher::RunExpressionStage(const Publication& pub,
                                 MatchContext* ctx) const {
  switch (options_.mode) {
    case Mode::kBasic: {
      for (InternalId id : plain_exprs_) {
        if (!hot_[id].active ||
            ctx->matched_epochs_[id] == ctx->doc_epoch_) {
          continue;
        }
        if (EvaluateExpression(id, pub, ctx)) MarkMatched(id, ctx);
      }
      break;
    }
    case Mode::kPrefixCovering:
    case Mode::kPrefixCoveringAccessPredicate: {
      const bool use_access_predicate =
          options_.mode == Mode::kPrefixCoveringAccessPredicate;
      // PrepareForFiltering flushed the lazy rebuild, so the prepared
      // accessor never mutates shared state mid-document.
      for (const ExpressionTrie::Cluster& cluster :
           trie_.prepared_clusters()) {
        // Access predicate (ap variant only): no result for the first
        // predicate rules out every expression in the cluster without
        // looking at any of them.
        if (use_access_predicate && !ctx->results_.Has(cluster.access_pid)) {
          continue;
        }
        for (InternalId id : cluster.expressions_by_length) {
          if (!hot_[id].active ||
              ctx->matched_epochs_[id] == ctx->doc_epoch_) {
            continue;
          }
          if (EvaluateExpression(id, pub, ctx)) {
            MarkMatched(id, ctx);
            PropagateCoveredMatches(id, pub, ctx);
          }
        }
      }
      break;
    }
    case Mode::kTrieDfs:
      RunTrieDfs(pub, ctx);
      break;
  }
}

void Matcher::RunTrieDfs(const Publication& pub, MatchContext* ctx) const {
  // DFS over the trie, propagating the set of occurrence values o2
  // reachable by a valid chain from the root to each node. A node is
  // reachable iff some chain exists; expressions at a reachable node
  // are structurally matched. This evaluates the whole workload in a
  // single pass without per-expression backtracking (extension; see
  // DESIGN.md §6).
  struct Frame {
    uint32_t node;
    std::vector<uint32_t> reachable;  // Sorted unique o2 values.
  };
  std::vector<Frame> stack;
  const ExpressionTrie::Node& root = trie_.node(trie_.root());

  auto visit = [&](uint32_t child_id, const std::vector<uint32_t>* parent) {
    const ExpressionTrie::Node& child = trie_.node(child_id);
    const OccList* r = ctx->results_.Find(child.pid);
    if (r == nullptr) return;
    std::vector<uint32_t> reachable;
    for (const OccPair& pair : *r) {
      if (parent != nullptr &&
          !std::binary_search(parent->begin(), parent->end(), pair.first)) {
        continue;
      }
      reachable.push_back(pair.second);
    }
    if (reachable.empty()) return;
    std::sort(reachable.begin(), reachable.end());
    reachable.erase(std::unique(reachable.begin(), reachable.end()),
                    reachable.end());
    for (InternalId id : child.expressions) {
      if (!hot_[id].active ||
          ctx->matched_epochs_[id] == ctx->doc_epoch_) {
        continue;
      }
      if (!hot_[id].has_deferred || VerifyDeferred(id, pub, ctx)) {
        MarkMatched(id, ctx);
      }
    }
    stack.push_back(Frame{child_id, std::move(reachable)});
  };

  for (uint32_t top : root.children) visit(top, nullptr);
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    for (uint32_t child : trie_.node(frame.node).children) {
      visit(child, &frame.reachable);
    }
  }
}

void Matcher::ProcessNestedSubs(const Publication& pub,
                                MatchContext* ctx) const {
  for (InternalId id : nested_subs_) {
    if (!hot_[id].active) continue;
    const Internal& e = exprs_[id];
    if (!GatherResults(id, ctx->results_, &ctx->views_buf_)) continue;
    if (!e.deferred.empty() &&
        !ApplyDeferredFilters(e, pub, &ctx->views_buf_,
                              &ctx->filtered_buf_)) {
      continue;
    }
    const NestedGroup& group = groups_[e.group];
    MatchContext::GroupScratch& scratch = ctx->group_scratch_[e.group];
    if (scratch.touched_epoch != ctx->doc_epoch_) {
      scratch.touched_epoch = ctx->doc_epoch_;
      scratch.witnesses.resize(group.decomposition.subs.size());
      for (auto& w : scratch.witnesses) w.clear();
    }
    const std::vector<uint16_t>& anchors =
        group.interest_anchors[e.sub_index];
    auto& sink = scratch.witnesses[e.sub_index];
    ctx->CountOccurrenceRun();
    bool complete = OccurrenceDeterminer::EnumerateChains(
        ctx->views_buf_, options_.nested_chain_budget,
        [&](std::span<const OccPair> chain) {
          std::vector<xml::NodeId> tuple;
          tuple.reserve(anchors.size());
          for (uint16_t anchor : anchors) {
            const AnchorSlot& slot = e.anchor_slots[anchor];
            const OccPair& pair = chain[slot.pred_index];
            uint32_t occ = slot.on_second ? pair.second : pair.first;
            uint32_t position = pub.PositionOf(e.anchor_tags[anchor], occ);
            tuple.push_back(pub.NodeAt(position));
          }
          sink.push_back(std::move(tuple));
        },
        &ctx->chain_buf_);
    if (!complete) ctx->CountNestedTruncated();
  }
}

void Matcher::JoinNestedGroups(MatchContext* ctx) const {
  EnsureDocumentScratch(ctx);
  for (size_t g = 0; g < groups_.size(); ++g) {
    const NestedGroup& group = groups_[g];
    const MatchContext::GroupScratch& scratch = ctx->group_scratch_[g];
    if (scratch.touched_epoch != ctx->doc_epoch_) continue;

    const std::vector<SubExpression>& subs = group.decomposition.subs;
    // valid_nodes[s]: branch nodes of sub s surviving its own
    // children's constraints. Computed bottom-up; children always have
    // larger indices than their parent (DecomposeRec order).
    std::vector<std::vector<xml::NodeId>> valid_nodes(subs.size());
    bool root_matched = false;

    for (size_t s = subs.size(); s-- > 0;) {
      const SubExpression& sub = subs[s];
      const auto& tuples = scratch.witnesses[s];

      // Index of each interest step within the tuple.
      auto step_slot = [&](uint32_t step) {
        for (size_t k = 0; k < sub.interest_steps.size(); ++k) {
          if (sub.interest_steps[k] == step) return k;
        }
        return sub.interest_steps.size();
      };

      for (const std::vector<xml::NodeId>& tuple : tuples) {
        bool ok = true;
        for (uint32_t child : sub.children) {
          size_t slot = step_slot(subs[child].branch_step);
          const std::vector<xml::NodeId>& child_nodes = valid_nodes[child];
          if (!std::binary_search(child_nodes.begin(), child_nodes.end(),
                                  tuple[slot])) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        if (s == 0) {
          root_matched = true;
          break;
        }
        valid_nodes[s].push_back(tuple[step_slot(sub.branch_step)]);
      }
      if (s > 0) {
        std::sort(valid_nodes[s].begin(), valid_nodes[s].end());
        valid_nodes[s].erase(
            std::unique(valid_nodes[s].begin(), valid_nodes[s].end()),
            valid_nodes[s].end());
      }
    }

    if (root_matched) {
      ctx->matched_groups_.push_back(static_cast<uint32_t>(g));
    }
  }
}

void Matcher::EnsureDocumentScratch(MatchContext* ctx) const {
  // Context scratch is keyed to the index size, which can grow while
  // a document stream is open (the streaming API allows AddExpression
  // between paths, and trie attachments are visible immediately).
  // Re-ensuring per path keeps MarkMatched/PropagateCoveredMatches in
  // bounds; fresh entries are epoch 0, i.e. unmatched.
  if (ctx->matched_epochs_.size() < exprs_.size()) {
    ctx->matched_epochs_.resize(exprs_.size(), 0);
  }
  if (ctx->group_scratch_.size() < groups_.size()) {
    ctx->group_scratch_.resize(groups_.size());
  }
}

void Matcher::ProcessElements(std::span<const PathElementView> elements,
                              MatchContext* ctx) const {
  EnsureDocumentScratch(ctx);
  // Publication-level memoization: two paths with identical
  // (tag, attributes) sequences produce identical predicate and
  // expression matching, so the second is skipped. Disabled when
  // nested expressions are stored -- their witnesses are node
  // identities, which differ between equal-keyed paths.
  obs::ScopedTimer timer(ctx->instruments(), ctx->span_buffer(), obs::Stage::kEncode);
  if (groups_.empty()) {
    std::string& key = ctx->key_buf_;
    key.clear();
    for (const PathElementView& element : elements) {
      key.append(element.tag);
      if (element.attributes != nullptr) {
        for (const xml::Attribute& a : *element.attributes) {
          key.push_back('\x01');
          key.append(a.name);
          key.push_back('\x02');
          key.append(a.value);
        }
      }
      key.push_back('\x03');
    }
    if (ctx->seen_path_keys_.contains(std::string_view(key))) return;
    // The stored key bytes live in the per-document arena, so the set
    // itself never owns (or frees) string storage.
    const char* stored = ctx->key_arena_.CopyString(key.data(), key.size());
    ctx->seen_path_keys_.insert(std::string_view(stored, key.size()));
  }

  ctx->pub_.Assign(elements, interner_);
  const Publication& pub = ctx->pub_;

  timer.Rotate(obs::Stage::kPredicate);
  ctx->CountPredicateMatches(predicate_index_.Match(pub, &ctx->results_));
#ifndef XPRED_NO_ANALYTICS
  if (ctx->attribution_enabled_) ctx->AttrRecordPredicates(ctx->results_);
#endif

  timer.Rotate(obs::Stage::kOccurrence);
  RunExpressionStage(pub, ctx);
  if (!nested_subs_.empty()) ProcessNestedSubs(pub, ctx);
}

void Matcher::PrepareForFiltering() {
  if (options_.enable_containment_covering && containment_dirty_) {
    RebuildContainmentIndex();
  }
  trie_.EnsureOrders();
}

void Matcher::BindDefaultContext() {
  default_context_.BindInstruments(&inst());
  default_context_.BindBudget(&budget());
}

void Matcher::FlushDefaultAttribution() {
#ifndef XPRED_NO_ANALYTICS
  if (attribution_sink_ == nullptr) return;
  AttributionDelta delta = default_context_.TakeAttribution();
  if (!delta.empty()) attribution_sink_->Ingest(delta, 0);
#endif
}

std::vector<std::string> Matcher::ExpressionStrings() const {
  std::vector<std::string> names(exprs_.size());
  for (const auto& [canonical, target] : dedup_) {
    if (!target.is_group) {
      names[target.index] = canonical;
      continue;
    }
    const NestedGroup& group = groups_[target.index];
    for (size_t s = 0; s < group.sub_internal.size(); ++s) {
      names[group.sub_internal[s]] =
          StringPrintf("%s#sub%zu", canonical.c_str(), s);
    }
  }
  return names;
}

void Matcher::BeginDocumentStream(MatchContext* ctx) const {
  ++ctx->doc_epoch_;
  EnsureDocumentScratch(ctx);
  ctx->doc_matched_.clear();
  ctx->matched_groups_.clear();
  ctx->seen_path_keys_.clear();
  ctx->key_arena_.Reset();
  if (ctx->instruments() != nullptr) ctx->instruments()->BeginDocument();
}

void Matcher::BeginDocumentStream() {
  ArmBudgetIfNeeded();
  PrepareForFiltering();
  BindDefaultContext();
  BeginDocumentStream(&default_context_);
}

Status Matcher::ProcessStreamedPath(std::span<const PathElementView> elements,
                                    MatchContext* ctx) const {
  if (elements.empty()) {
    return Status::InvalidArgument("path must have at least one element");
  }
  XPRED_FAULT_POINT(faultsite::kMatcherProcessPath);
  XPRED_RETURN_NOT_OK(ctx->budget().AddPath());
  XPRED_RETURN_NOT_OK(ctx->budget().CheckDeadline());
  XPRED_RETURN_NOT_OK(ctx->CheckCancelled());
  ctx->CountPaths(1);
  ProcessElements(elements, ctx);
  return Status::OK();
}

Status Matcher::ProcessStreamedPath(
    std::span<const PathElementView> elements) {
  return ProcessStreamedPath(elements, &default_context_);
}

Status Matcher::EndDocumentStream(MatchContext* ctx,
                                  std::vector<ExprId>* matched) const {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  {
    obs::ScopedTimer timer(ctx->instruments(), ctx->span_buffer(), obs::Stage::kOccurrence);
    if (!groups_.empty()) JoinNestedGroups(ctx);

    timer.Rotate(obs::Stage::kCollect);
    for (InternalId id : ctx->doc_matched_) {
      const Internal& e = exprs_[id];
      matched->insert(matched->end(), e.subscribers.begin(),
                      e.subscribers.end());
    }
    for (uint32_t g : ctx->matched_groups_) {
      const NestedGroup& group = groups_[g];
      matched->insert(matched->end(), group.subscribers.begin(),
                      group.subscribers.end());
    }
  }
  if (ctx->instruments() != nullptr) ctx->instruments()->EndDocument();
  return Status::OK();
}

Status Matcher::EndDocumentStream(std::vector<ExprId>* matched) {
  Status status = EndDocumentStream(&default_context_, matched);
  FlushDefaultAttribution();
  return status;
}

Status Matcher::FilterDocument(const xml::Document& document,
                               MatchContext* ctx,
                               std::vector<ExprId>* matched) const {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  BeginDocumentStream(ctx);

  std::vector<xml::DocumentPath>& paths = ctx->paths_buf_;
  paths.clear();
  {
    obs::ScopedTimer timer(ctx->instruments(), ctx->span_buffer(), obs::Stage::kEncode);
    XPRED_FAULT_POINT(faultsite::kEncoderEncodePath);
    XPRED_RETURN_NOT_OK(xml::ExtractPaths(document, &ctx->budget(), &paths));
    ctx->CountPaths(paths.size());
  }

  std::vector<PathElementView>& views = ctx->path_views_;
  for (const xml::DocumentPath& path : paths) {
    XPRED_FAULT_POINT(faultsite::kMatcherProcessPath);
    XPRED_RETURN_NOT_OK(ctx->budget().CheckDeadline());
    XPRED_RETURN_NOT_OK(ctx->CheckCancelled());
    views.clear();
    const uint32_t n = path.length();
    views.reserve(n);
    for (uint32_t pos = 1; pos <= n; ++pos) {
      PathElementView view;
      view.tag = path.Tag(pos);
      view.attributes = &path.Attributes(pos);
      view.node = path.Node(pos);
      views.push_back(view);
    }
    ProcessElements(views, ctx);
  }

  return EndDocumentStream(ctx, matched);
}

Status Matcher::FilterDocument(const xml::Document& document,
                               std::vector<ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  XPRED_RETURN_NOT_OK(BeginGoverned(document));
  PrepareForFiltering();
  BindDefaultContext();
  Status status = FilterDocument(document, &default_context_, matched);
  FlushDefaultAttribution();
  return status;
}

Status Matcher::SaveSubscriptions(std::ostream* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("out must not be null");
  }
  *out << "# xpred subscriptions v1\n";
  // One line per live subscription, in subscription-id order, so a
  // save/load round trip preserves multiplicities.
  std::vector<const std::string*> by_sid(next_sid_, nullptr);
  for (const auto& [canonical, target] : dedup_) {
    const std::vector<ExprId>& subscribers =
        target.is_group ? groups_[target.index].subscribers
                        : exprs_[target.index].subscribers;
    for (ExprId sid : subscribers) by_sid[sid] = &canonical;
  }
  for (const std::string* canonical : by_sid) {
    if (canonical != nullptr) *out << *canonical << "\n";
  }
  if (!out->good()) return Status::Internal("write failed");
  return Status::OK();
}

Result<std::vector<ExprId>> Matcher::LoadSubscriptions(std::istream* in) {
  if (in == nullptr) {
    return Status::InvalidArgument("in must not be null");
  }
  std::vector<ExprId> loaded;
  std::string line;
  size_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    Result<ExprId> sid = AddExpression(trimmed);
    if (!sid.ok()) {
      return Status::InvalidArgument(
          StringPrintf("line %zu ('%.*s'): %s", line_number,
                       static_cast<int>(trimmed.size()), trimmed.data(),
                       sid.status().ToString().c_str()));
    }
    loaded.push_back(*sid);
  }
  return loaded;
}

size_t Matcher::ApproximateMemoryBytes() const {
  size_t total = interner_.ApproximateMemoryBytes() +
                 predicate_index_.ApproximateMemoryBytes() +
                 trie_.ApproximateMemoryBytes();
  total += VectorBytes(exprs_) + VectorBytes(hot_) +
           VectorBytes(pid_overflow_) + VectorBytes(plain_exprs_) +
           VectorBytes(nested_subs_) + VectorBytes(sid_targets_);
  for (const Internal& e : exprs_) {
    total += VectorBytes(e.pids) + VectorBytes(e.anchor_slots) +
             VectorBytes(e.anchor_tags) + VectorBytes(e.anchor_steps) +
             VectorBytes(e.deferred) + VectorBytes(e.subscribers) +
             VectorBytes(e.contained);
  }
  total += UnorderedOverheadBytes(dedup_);
  for (const auto& [canonical, target] : dedup_) {
    total += sizeof(target) + sizeof(canonical) + StringBytes(canonical);
  }
  total += MapOfVectorsBytes(chain_index_);
  return total;
}

}  // namespace xpred::core
