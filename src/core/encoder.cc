#include "core/encoder.h"

#include <algorithm>

namespace xpred::core {

using xpath::Axis;
using xpath::PathExpr;
using xpath::Step;

namespace {

/// Canonical ordering of attribute constraints so that syntactically
/// reordered filters produce identical predicates (maximizing sharing
/// in the predicate index).
void NormalizeConstraints(std::vector<AttributeConstraint>* constraints) {
  std::sort(constraints->begin(), constraints->end(),
            [](const AttributeConstraint& a, const AttributeConstraint& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.op != b.op) return a.op < b.op;
              if (a.value.is_number != b.value.is_number) {
                return a.value.is_number < b.value.is_number;
              }
              if (a.value.is_number) return a.value.number < b.value.number;
              return a.value.text < b.value.text;
            });
}

std::vector<AttributeConstraint> StepConstraints(const Step& step) {
  std::vector<AttributeConstraint> out;
  out.reserve(step.attribute_filters.size());
  for (const xpath::AttributeFilter& f : step.attribute_filters) {
    out.push_back(AttributeConstraint::FromFilter(f));
  }
  NormalizeConstraints(&out);
  return out;
}

}  // namespace

std::string EncodedExpression::ToString(const Interner& interner) const {
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out += " -> ";
    out += predicates[i].ToString(interner);
  }
  return out;
}

Result<EncodedExpression> EncodeExpression(const PathExpr& expr,
                                           AttributeMode mode,
                                           Interner* interner) {
  if (expr.steps.empty()) {
    return Status::InvalidArgument("expression has no location steps");
  }
  if (expr.HasNestedPaths()) {
    return Status::InvalidArgument(
        "nested path filters must be decomposed before encoding");
  }

  const uint32_t n = static_cast<uint32_t>(expr.steps.size());
  if (n > UINT16_MAX) {
    return Status::CapacityExceeded("expression too long");
  }

  EncodedExpression enc;
  enc.num_steps = static_cast<uint16_t>(n);

  // Collect anchors: the non-wildcard steps, by 1-based index.
  std::vector<uint32_t> anchors;
  for (uint32_t i = 1; i <= n; ++i) {
    const Step& step = expr.steps[i - 1];
    if (!step.wildcard) {
      anchors.push_back(i);
    } else if (step.HasFilters()) {
      return Status::InvalidArgument(
          "attribute filters on wildcard steps are not supported by the "
          "predicate language");
    }
  }

  // All-wildcard expression: a single length-of-expression predicate.
  // The paper deliberately does not distinguish /*/*/* from */*/*
  // (§3.2: both require a document path of length at least n).
  if (anchors.empty()) {
    Predicate p;
    p.type = PredicateType::kLength;
    p.op = PredOp::kGe;
    p.value = n;
    enc.predicates.push_back(std::move(p));
    return enc;
  }

  const size_t m = anchors.size();
  enc.anchor_steps.reserve(m);
  enc.anchor_tags.reserve(m);
  for (uint32_t a : anchors) {
    enc.anchor_steps.push_back(static_cast<uint16_t>(a));
    enc.anchor_tags.push_back(interner->Intern(expr.steps[a - 1].tag));
  }
  enc.anchor_slots.resize(m);

  // Attribute constraints per anchor (inline mode attaches them to the
  // introducing predicate below; selection-postponed keeps them aside).
  std::vector<std::vector<AttributeConstraint>> anchor_attrs(m);
  for (size_t j = 0; j < m; ++j) {
    const Step& step = expr.steps[anchors[j] - 1];
    if (step.attribute_filters.empty()) continue;
    std::vector<AttributeConstraint> constraints = StepConstraints(step);
    if (mode == AttributeMode::kInline) {
      anchor_attrs[j] = std::move(constraints);
    } else {
      DeferredFilters deferred;
      deferred.anchor_index = static_cast<uint16_t>(j);
      deferred.filters = std::move(constraints);
      enc.deferred_filters.push_back(std::move(deferred));
    }
  }

  const uint32_t a1 = anchors[0];

  // The start is "rooted exactly" when the expression is absolute and
  // no descendant axis occurs at or before the first anchor: the first
  // anchor's position is then exactly a1 (e.g. /*/a/b -> (p_a, =, 2)).
  bool rooted_exact = expr.absolute;
  for (uint32_t i = 1; i <= a1 && rooted_exact; ++i) {
    if (expr.steps[i - 1].axis == Axis::kDescendant) rooted_exact = false;
  }

  // First predicate: records the position of the first anchor. For a
  // floating start it is included only when informative — i.e. when
  // leading wildcards force a minimum position (s9: */*/a/*/b ->
  // (p_a, >=, 3)) or when it is the expression's only predicate
  // (s2: a -> (p_a, >=, 1)). For a/a/b/c the first predicate is
  // omitted because (p_a, >=, 1) is vacuous (§3.2).
  bool first_present =
      rooted_exact || a1 > 1 || (m == 1);
  if (first_present) {
    Predicate p;
    p.type = PredicateType::kAbsolute;
    p.op = rooted_exact ? PredOp::kEq : PredOp::kGe;
    p.value = a1;
    p.tag1 = enc.anchor_tags[0];
    p.attrs1 = anchor_attrs[0];
    enc.predicates.push_back(std::move(p));
    enc.anchor_slots[0] = AnchorSlot{0, false};
  }

  // Middle predicates: one relative predicate per adjacent anchor
  // pair. The distance value counts location steps (wildcards
  // included); a descendant axis anywhere in the gap turns '=' into
  // '>='.
  for (size_t j = 1; j < m; ++j) {
    uint32_t prev = anchors[j - 1];
    uint32_t cur = anchors[j];
    bool has_descendant = false;
    for (uint32_t i = prev + 1; i <= cur; ++i) {
      if (expr.steps[i - 1].axis == Axis::kDescendant) has_descendant = true;
    }
    Predicate p;
    p.type = PredicateType::kRelative;
    p.op = has_descendant ? PredOp::kGe : PredOp::kEq;
    p.value = cur - prev;
    p.tag1 = enc.anchor_tags[j - 1];
    p.tag2 = enc.anchor_tags[j];
    p.attrs2 = anchor_attrs[j];
    // The first anchor may be introduced here (when the first
    // predicate was omitted); its constraints then attach to tag1.
    if (!first_present && j == 1) {
      p.attrs1 = anchor_attrs[0];
      enc.anchor_slots[0] =
          AnchorSlot{static_cast<uint16_t>(enc.predicates.size()), false};
    }
    enc.anchor_slots[j] =
        AnchorSlot{static_cast<uint16_t>(enc.predicates.size()), true};
    enc.predicates.push_back(std::move(p));
  }

  // End-of-path predicate: trailing wildcards require that many more
  // tags after the last anchor (s5: /a/b/*/* -> (p_b-|, >=, 2)).
  const uint32_t am = anchors[m - 1];
  if (am < n) {
    Predicate p;
    p.type = PredicateType::kEndOfPath;
    p.op = PredOp::kGe;
    p.value = n - am;
    p.tag1 = enc.anchor_tags[m - 1];
    // The last anchor was already introduced (first predicate when
    // m == 1, relative predicate otherwise), so no constraints here:
    // occurrence chaining propagates them.
    enc.predicates.push_back(std::move(p));
  }

  return enc;
}

}  // namespace xpred::core
