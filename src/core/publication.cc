#include "core/publication.h"

#include "common/string_util.h"

namespace xpred::core {

const std::vector<xml::Attribute>& Publication::EmptyAttributes() {
  // Never destroyed (static storage must be trivially destructible).
  static const auto& empty = *new std::vector<xml::Attribute>();
  return empty;
}

Publication::Publication(std::span<const PathElementView> elements,
                         const Interner& interner) {
  Build(elements, interner);
}

Publication::Publication(const xml::DocumentPath& path,
                         const Interner& interner) {
  std::vector<PathElementView> elements;
  const uint32_t n = path.length();
  elements.reserve(n);
  for (uint32_t pos = 1; pos <= n; ++pos) {
    PathElementView view;
    view.tag = path.Tag(pos);
    view.attributes = &path.Attributes(pos);
    view.node = path.Node(pos);
    elements.push_back(view);
  }
  Build(elements, interner);
}

void Publication::Assign(std::span<const PathElementView> elements,
                         const Interner& interner) {
  tuples_.clear();
  attrs_.clear();
  tag_text_.clear();
  by_tag_used_ = 0;
  Build(elements, interner);
}

void Publication::Build(std::span<const PathElementView> elements,
                        const Interner& interner) {
  const size_t n = elements.size();
  tuples_.reserve(n);
  attrs_.reserve(n);
  tag_text_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const PathElementView& element = elements[i];
    Tuple t;
    t.tag = interner.Lookup(element.tag);
    t.position = static_cast<uint32_t>(i + 1);
    t.node = element.node;

    // Occurrence number: how many times this tag name has appeared in
    // the path so far (Example 1). Known tags count through the
    // by-tag index; unknown tags never participate in matching, so
    // their occurrence stays 1.
    if (t.tag != kInvalidSymbol) {
      TagPositions* entry = nullptr;
      for (size_t k = 0; k < by_tag_used_; ++k) {
        if (by_tag_[k].tag == t.tag) {
          entry = &by_tag_[k];
          break;
        }
      }
      if (entry == nullptr) {
        if (by_tag_used_ == by_tag_.size()) by_tag_.emplace_back();
        entry = &by_tag_[by_tag_used_++];
        entry->tag = t.tag;
        entry->positions.clear();
      }
      entry->positions.push_back(t.position);
      t.occurrence = static_cast<uint32_t>(entry->positions.size());
    }

    tuples_.push_back(t);
    attrs_.push_back(element.attributes);
    tag_text_.push_back(element.tag);
  }
}

uint32_t Publication::PositionOf(SymbolId tag, uint32_t occurrence) const {
  for (size_t k = 0; k < by_tag_used_; ++k) {
    const TagPositions& tp = by_tag_[k];
    if (tp.tag == tag) {
      if (occurrence == 0 || occurrence > tp.positions.size()) return 0;
      return tp.positions[occurrence - 1];
    }
  }
  return 0;
}

std::string Publication::ToString(const Interner& interner) const {
  std::string out = StringPrintf("(length, %u)", length());
  for (const Tuple& t : tuples_) {
    std::string name = (t.tag == kInvalidSymbol)
                           ? std::string(tag_text_[t.position - 1])
                           : std::string(interner.Name(t.tag));
    out += StringPrintf(", (%s^%u, %u)", name.c_str(), t.occurrence,
                        t.position);
  }
  return out;
}

}  // namespace xpred::core
