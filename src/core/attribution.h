#ifndef XPRED_CORE_ATTRIBUTION_H_
#define XPRED_CORE_ATTRIBUTION_H_

#include <cstdint>
#include <vector>

namespace xpred::core {

/// \brief Per-expression / per-predicate cost attribution accumulated
/// by one MatchContext between flushes.
///
/// This is the hand-off format between the matching hot path and the
/// analytics layer (analytics::WorkloadProfiler): the context records
/// into dense epoch-tagged arrays (a few array writes per expression
/// evaluation, no hashing), and the batch owner drains the compact
/// touched-entry lists from the calling thread after the batch — the
/// profiler itself is never touched by worker threads.
///
/// Keys are Matcher-internal ids (InternalId for expressions, pid for
/// predicates); the ingesting side namespaces them per partition (see
/// AttributionSink::Ingest) and resolves display strings cold via
/// Matcher::ExpressionStrings().
struct AttributionDelta {
  struct ExprEntry {
    uint32_t id = 0;
    /// Expression-stage visits (candidate evaluations).
    uint32_t evals = 0;
    /// Documents in which the expression matched.
    uint32_t matches = 0;
    /// Abstract cost units: 1 per visit plus the predicate-chain
    /// length whenever occurrence determination ran (the §6.5
    /// dominant-cost proxy).
    uint64_t cost = 0;
  };
  struct LatencySample {
    uint32_t id = 0;
    uint64_t nanos = 0;
  };
  struct PredEntry {
    uint32_t pid = 0;
    /// (pid, pair) matches recorded for this predicate.
    uint64_t matches = 0;
  };

  std::vector<ExprEntry> exprs;
  std::vector<LatencySample> latencies;
  std::vector<PredEntry> predicates;

  bool empty() const {
    return exprs.empty() && latencies.empty() && predicates.empty();
  }
};

/// \brief Consumer of attribution deltas (implemented by
/// analytics::WorkloadProfiler). Not thread-safe: every Ingest call
/// must come from the batch-owning thread.
class AttributionSink {
 public:
  virtual ~AttributionSink() = default;
  /// \p key_namespace is OR-ed into the upper 32 bits of every
  /// expression key so one profiler can serve several expression
  /// partitions (ParallelFilter passes partition << 32; the serial
  /// path passes 0). Predicate ids are namespaced the same way.
  virtual void Ingest(const AttributionDelta& delta,
                      uint64_t key_namespace) = 0;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_ATTRIBUTION_H_
