#ifndef XPRED_CORE_MATCH_CONTEXT_H_
#define XPRED_CORE_MATCH_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/limits.h"
#include "common/status.h"
#include "core/expression_index.h"
#include "core/predicate.h"
#include "core/predicate_index.h"
#include "core/publication.h"
#include "obs/engine_instruments.h"
#include "xml/path.h"

namespace xpred::core {

/// Paper-era counters mirrored by obs::EngineInstruments. A context
/// bound to instruments (the single-threaded legacy path) increments
/// them directly; an unbound context (worker threads, which must not
/// touch the shared registry) accumulates here and the parallel front
/// end flushes the totals from the calling thread after the batch.
struct MatchCounters {
  uint64_t paths = 0;
  uint64_t occurrence_runs = 0;
  uint64_t nested_truncated = 0;
  uint64_t predicate_matches = 0;

  void Accumulate(const MatchCounters& other) {
    paths += other.paths;
    occurrence_runs += other.occurrence_runs;
    nested_truncated += other.nested_truncated;
    predicate_matches += other.predicate_matches;
  }
  void Reset() { *this = MatchCounters{}; }
};

/// Status message used when a filter run is abandoned because a
/// sibling partition of the same document already failed; the parallel
/// front end recognizes and suppresses it during the result merge.
inline constexpr std::string_view kMatchCancelledMessage =
    "cancelled: sibling task of the same document failed";

/// \brief All per-document mutable state of one Matcher filter run.
///
/// The Matcher's shared indexes (PredicateIndex, ExpressionTrie, the
/// expression records) are read-only during filtering; everything that
/// mutates per path or per document lives here. Any number of threads
/// may filter through one Matcher concurrently, each with its own
/// MatchContext (see DESIGN.md §12). Extracting this state also fixes
/// the latent bug where two interleaved FilterDocument calls on one
/// engine corrupted each other's match epochs.
///
/// Scratch buffers (publication, occurrence views, path keys) persist
/// across documents so a long-lived context reaches a steady state
/// with no per-path heap allocation.
class MatchContext {
 public:
  MatchContext() = default;
  MatchContext(const MatchContext&) = delete;
  MatchContext& operator=(const MatchContext&) = delete;

  /// The budget consulted at this context's cooperative checkpoints.
  /// Owned by default; the engine's legacy single-threaded wrappers
  /// bind the engine-level budget instead so FilterXml governance
  /// windows keep their historical semantics.
  ExecBudget& budget() { return bound_budget_ ? *bound_budget_ : budget_; }
  void BindBudget(ExecBudget* budget) { bound_budget_ = budget; }

  /// Routes counters and stage timers straight into \p inst (nullptr
  /// reverts to local accumulation). Only the single-threaded legacy
  /// path binds instruments; they are not thread-safe.
  void BindInstruments(obs::EngineInstruments* inst) { inst_ = inst; }
  obs::EngineInstruments* instruments() const { return inst_; }

  /// Cooperative cancellation: when \p cancel becomes true, the next
  /// per-path checkpoint aborts the run with kMatchCancelledMessage.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  Status CheckCancelled() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return Status::Rejected(std::string(kMatchCancelledMessage));
    }
    return Status::OK();
  }

  const MatchCounters& counters() const { return counters_; }
  /// Returns the counters accumulated since the last take and zeroes
  /// them (batch-level flush by the parallel front end).
  MatchCounters TakeCounters() {
    MatchCounters out = counters_;
    counters_.Reset();
    return out;
  }

 private:
  friend class Matcher;

  void CountPaths(uint64_t n) {
    if (inst_ != nullptr) {
      inst_->AddPaths(n);
    } else {
      counters_.paths += n;
    }
  }
  void CountOccurrenceRun() {
    if (inst_ != nullptr) {
      inst_->IncOccurrenceRuns();
    } else {
      ++counters_.occurrence_runs;
    }
  }
  void CountNestedTruncated() {
    if (inst_ != nullptr) {
      inst_->IncNestedTruncated();
    } else {
      ++counters_.nested_truncated;
    }
  }
  void CountPredicateMatches(uint64_t n) {
    if (inst_ != nullptr) {
      inst_->AddPredicateMatches(n);
    } else {
      counters_.predicate_matches += n;
    }
  }

  /// Per-group witness state (one slot per Matcher nested group).
  struct GroupScratch {
    uint32_t touched_epoch = 0;
    /// Per sub-expression: witness tuples, one NodeId per interest
    /// step.
    std::vector<std::vector<std::vector<xml::NodeId>>> witnesses;
  };

  // --- bindings ---
  ExecBudget budget_;
  ExecBudget* bound_budget_ = nullptr;
  obs::EngineInstruments* inst_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  MatchCounters counters_;

  // --- per-document match state ---
  uint32_t doc_epoch_ = 0;
  /// Per InternalId: epoch of the document this expression last
  /// matched in (replaces the old HotExpr::matched_epoch field, which
  /// made the hot array per-document mutable).
  std::vector<uint32_t> matched_epochs_;
  std::vector<InternalId> doc_matched_;
  std::vector<uint32_t> matched_groups_;
  std::vector<GroupScratch> group_scratch_;
  /// Keys of paths already processed for the current document; the
  /// key bytes live in key_arena_, reset per document, so the dedup
  /// set allocates nothing in steady state beyond its own table.
  std::unordered_set<std::string_view> seen_path_keys_;
  std::string key_buf_;
  Arena key_arena_{16 * 1024};

  // --- per-path scratch ---
  MatchResultSet results_;
  Publication pub_;
  std::vector<const OccList*> views_buf_;
  std::vector<OccList> filtered_buf_;
  std::vector<InternalId> prefix_buf_;
  /// EnumerateChains backtracking frames (nested witness search).
  std::vector<OccPair> chain_buf_;
  std::vector<PathElementView> path_views_;
  std::vector<xml::DocumentPath> paths_buf_;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_MATCH_CONTEXT_H_
