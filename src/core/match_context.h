#ifndef XPRED_CORE_MATCH_CONTEXT_H_
#define XPRED_CORE_MATCH_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/limits.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/attribution.h"
#include "core/expression_index.h"
#include "core/predicate.h"
#include "core/predicate_index.h"
#include "core/publication.h"
#include "obs/engine_instruments.h"
#include "xml/path.h"

namespace xpred::core {

/// Paper-era counters mirrored by obs::EngineInstruments. A context
/// bound to instruments (the single-threaded legacy path) increments
/// them directly; an unbound context (worker threads, which must not
/// touch the shared registry) accumulates here and the parallel front
/// end flushes the totals from the calling thread after the batch.
struct MatchCounters {
  uint64_t paths = 0;
  uint64_t occurrence_runs = 0;
  uint64_t nested_truncated = 0;
  uint64_t predicate_matches = 0;

  void Accumulate(const MatchCounters& other) {
    paths += other.paths;
    occurrence_runs += other.occurrence_runs;
    nested_truncated += other.nested_truncated;
    predicate_matches += other.predicate_matches;
  }
  void Reset() { *this = MatchCounters{}; }
};

/// Status message used when a filter run is abandoned because a
/// sibling partition of the same document already failed; the parallel
/// front end recognizes and suppresses it during the result merge.
inline constexpr std::string_view kMatchCancelledMessage =
    "cancelled: sibling task of the same document failed";

/// \brief All per-document mutable state of one Matcher filter run.
///
/// The Matcher's shared indexes (PredicateIndex, ExpressionTrie, the
/// expression records) are read-only during filtering; everything that
/// mutates per path or per document lives here. Any number of threads
/// may filter through one Matcher concurrently, each with its own
/// MatchContext (see DESIGN.md §12). Extracting this state also fixes
/// the latent bug where two interleaved FilterDocument calls on one
/// engine corrupted each other's match epochs.
///
/// Scratch buffers (publication, occurrence views, path keys) persist
/// across documents so a long-lived context reaches a steady state
/// with no per-path heap allocation.
class MatchContext {
 public:
  MatchContext() = default;
  MatchContext(const MatchContext&) = delete;
  MatchContext& operator=(const MatchContext&) = delete;

  /// The budget consulted at this context's cooperative checkpoints.
  /// Owned by default; the engine's legacy single-threaded wrappers
  /// bind the engine-level budget instead so FilterXml governance
  /// windows keep their historical semantics.
  ExecBudget& budget() { return bound_budget_ ? *bound_budget_ : budget_; }
  void BindBudget(ExecBudget* budget) { bound_budget_ = budget; }

  /// Routes counters and stage timers straight into \p inst (nullptr
  /// reverts to local accumulation). Only the single-threaded legacy
  /// path binds instruments; they are not thread-safe.
  void BindInstruments(obs::EngineInstruments* inst) { inst_ = inst; }
  obs::EngineInstruments* instruments() const { return inst_; }

  /// Cooperative cancellation: when \p cancel becomes true, the next
  /// per-path checkpoint aborts the run with kMatchCancelledMessage.
  void set_cancel_flag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  Status CheckCancelled() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return Status::Rejected(std::string(kMatchCancelledMessage));
    }
    return Status::OK();
  }

  const MatchCounters& counters() const { return counters_; }
  /// Returns the counters accumulated since the last take and zeroes
  /// them (batch-level flush by the parallel front end).
  MatchCounters TakeCounters() {
    MatchCounters out = counters_;
    counters_.Reset();
    return out;
  }

  /// \name Workload attribution (analytics layer)
  ///
  /// When enabled, the matching loops record per-expression visit /
  /// match / cost counts and per-predicate match heat into dense
  /// epoch-tagged arrays here (a few array writes per evaluation —
  /// never a hash lookup or allocation in steady state), plus a
  /// 1-in-N reservoir-bound latency sample. The owner drains the
  /// compact delta with TakeAttribution() after the document (serial
  /// path) or batch (parallel path) and feeds it to an
  /// AttributionSink. Compiled out entirely with XPRED_NO_ANALYTICS.
  ///@{
  void EnableAttribution(bool enabled) {
#ifndef XPRED_NO_ANALYTICS
    attribution_enabled_ = enabled;
#else
    (void)enabled;
#endif
  }
  bool attribution_enabled() const {
#ifndef XPRED_NO_ANALYTICS
    return attribution_enabled_;
#else
    return false;
#endif
  }
  /// Every latency_sample_period-th expression evaluation is timed
  /// (clock calls on every evaluation would dominate the hot loop).
  void set_latency_sample_period(uint32_t period) {
#ifndef XPRED_NO_ANALYTICS
    latency_sample_period_ = period == 0 ? 1 : period;
#else
    (void)period;
#endif
  }

  /// Moves the accumulated attribution out (entries reset to zero).
  AttributionDelta TakeAttribution();
  ///@}

  /// \name Worker-local trace spans
  ///
  /// A worker context must not touch the engine's shared Tracer (its
  /// sinks are not thread-safe); binding a per-worker
  /// obs::StageSpanBuffer instead lets the matcher's stage timers
  /// record spans locally, merged and emitted through the tracer by
  /// the batch owner after the batch (see DESIGN.md §13).
  ///@{
  void BindSpanBuffer(obs::StageSpanBuffer* spans) { span_buffer_ = spans; }
  obs::StageSpanBuffer* span_buffer() const { return span_buffer_; }
  ///@}

 private:
  friend class Matcher;

  void CountPaths(uint64_t n) {
    if (inst_ != nullptr) {
      inst_->AddPaths(n);
    } else {
      counters_.paths += n;
    }
  }
  void CountOccurrenceRun() {
    if (inst_ != nullptr) {
      inst_->IncOccurrenceRuns();
    } else {
      ++counters_.occurrence_runs;
    }
  }
  void CountNestedTruncated() {
    if (inst_ != nullptr) {
      inst_->IncNestedTruncated();
    } else {
      ++counters_.nested_truncated;
    }
  }
  void CountPredicateMatches(uint64_t n) {
    if (inst_ != nullptr) {
      inst_->AddPredicateMatches(n);
    } else {
      counters_.predicate_matches += n;
    }
  }

#ifndef XPRED_NO_ANALYTICS
  /// Dense per-expression attribution entry; epoch-tagged so draining
  /// resets all entries in O(1) by bumping attr_epoch_.
  struct ExprAttr {
    uint32_t epoch = 0;
    uint32_t evals = 0;
    uint32_t matches = 0;
    uint64_t cost = 0;
  };

  ExprAttr& AttrEntry(InternalId id) {
    if (expr_attr_.size() <= id) expr_attr_.resize(id + 1);
    ExprAttr& e = expr_attr_[id];
    if (e.epoch != attr_epoch_) {
      e = ExprAttr{};
      e.epoch = attr_epoch_;
      touched_exprs_.push_back(id);
    }
    return e;
  }

  /// Called ahead of an expression evaluation; true when this one is
  /// latency-sampled (the watch is then running).
  bool AttrBeginEval() {
    if (++latency_tick_ < latency_sample_period_) return false;
    latency_tick_ = 0;
    latency_watch_.Reset();
    return true;
  }

  void AttrRecordEval(InternalId id, bool ran_occurrence,
                      uint16_t chain_len, bool sampled) {
    ExprAttr& e = AttrEntry(id);
    ++e.evals;
    e.cost += 1 + (ran_occurrence ? chain_len : 0);
    if (sampled) {
      latency_samples_.push_back(
          {id, static_cast<uint64_t>(latency_watch_.ElapsedNanos())});
    }
  }

  void AttrRecordMatch(InternalId id) { ++AttrEntry(id).matches; }

  void AttrRecordPredicates(const MatchResultSet& results) {
    for (PredicateId pid : results.matched_pids()) {
      if (pred_attr_.size() <= pid) {
        pred_attr_.resize(pid + 1, 0);
        pred_epoch_.resize(pid + 1, 0);
      }
      if (pred_epoch_[pid] != attr_epoch_) {
        pred_epoch_[pid] = attr_epoch_;
        pred_attr_[pid] = 0;
        touched_preds_.push_back(pid);
      }
      pred_attr_[pid] += results.Find(pid)->size();
    }
  }
#endif  // XPRED_NO_ANALYTICS

  /// Per-group witness state (one slot per Matcher nested group).
  struct GroupScratch {
    uint32_t touched_epoch = 0;
    /// Per sub-expression: witness tuples, one NodeId per interest
    /// step.
    std::vector<std::vector<std::vector<xml::NodeId>>> witnesses;
  };

  // --- bindings ---
  ExecBudget budget_;
  ExecBudget* bound_budget_ = nullptr;
  obs::EngineInstruments* inst_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  MatchCounters counters_;

  // --- per-document match state ---
  uint32_t doc_epoch_ = 0;
  /// Per InternalId: epoch of the document this expression last
  /// matched in (replaces the old HotExpr::matched_epoch field, which
  /// made the hot array per-document mutable).
  std::vector<uint32_t> matched_epochs_;
  std::vector<InternalId> doc_matched_;
  std::vector<uint32_t> matched_groups_;
  std::vector<GroupScratch> group_scratch_;
  /// Keys of paths already processed for the current document; the
  /// key bytes live in key_arena_, reset per document, so the dedup
  /// set allocates nothing in steady state beyond its own table.
  std::unordered_set<std::string_view> seen_path_keys_;
  std::string key_buf_;
  Arena key_arena_{16 * 1024};

  // --- per-path scratch ---
  MatchResultSet results_;
  Publication pub_;
  std::vector<const OccList*> views_buf_;
  std::vector<OccList> filtered_buf_;
  std::vector<InternalId> prefix_buf_;
  /// EnumerateChains backtracking frames (nested witness search).
  std::vector<OccPair> chain_buf_;
  std::vector<PathElementView> path_views_;
  std::vector<xml::DocumentPath> paths_buf_;

  // --- attribution state (drained by TakeAttribution) ---
#ifndef XPRED_NO_ANALYTICS
  bool attribution_enabled_ = false;
  uint32_t attr_epoch_ = 1;
  uint32_t latency_sample_period_ = 64;
  uint32_t latency_tick_ = 0;
  Stopwatch latency_watch_;
  std::vector<ExprAttr> expr_attr_;
  std::vector<InternalId> touched_exprs_;
  std::vector<uint64_t> pred_attr_;
  std::vector<uint32_t> pred_epoch_;
  std::vector<PredicateId> touched_preds_;
  std::vector<AttributionDelta::LatencySample> latency_samples_;
#endif
  obs::StageSpanBuffer* span_buffer_ = nullptr;
};

inline AttributionDelta MatchContext::TakeAttribution() {
  AttributionDelta delta;
#ifndef XPRED_NO_ANALYTICS
  delta.exprs.reserve(touched_exprs_.size());
  for (InternalId id : touched_exprs_) {
    const ExprAttr& e = expr_attr_[id];
    delta.exprs.push_back({id, e.evals, e.matches, e.cost});
  }
  touched_exprs_.clear();
  delta.predicates.reserve(touched_preds_.size());
  for (PredicateId pid : touched_preds_) {
    delta.predicates.push_back({pid, pred_attr_[pid]});
  }
  touched_preds_.clear();
  delta.latencies = std::move(latency_samples_);
  latency_samples_.clear();
  ++attr_epoch_;
#endif
  return delta;
}

}  // namespace xpred::core

#endif  // XPRED_CORE_MATCH_CONTEXT_H_
