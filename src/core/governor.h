#ifndef XPRED_CORE_GOVERNOR_H_
#define XPRED_CORE_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/limits.h"
#include "common/status.h"
#include "core/engine.h"

namespace xpred::core {

/// \brief One quarantined document: its position in the stream and the
/// Status that condemned it.
struct QuarantineRecord {
  /// 0-based index of the document in the ingestion stream.
  uint64_t doc_index = 0;
  /// The failure that put it here (after retries, when transient).
  Status cause;
  /// Retries attempted before quarantining (0 for permanent failures).
  uint32_t retries = 0;
};

/// \brief Fault-tolerant ingestion driver: wraps an engine with error
/// classification, bounded retry, quarantine, and a circuit breaker.
///
/// A production filtering service faces streams where some documents
/// are poison — over-limit, malformed, or pathological. The governor
/// keeps the stream flowing: poison documents are quarantined with
/// their cause, transient failures (deadline expiry, internal faults)
/// are retried with exponential backoff, and a run of consecutive
/// failures trips a circuit breaker that sheds load for a cooldown
/// instead of burning the full deadline on every document of a bad
/// batch.
///
/// Classification (DESIGN.md §11):
///  - kDeadlineExceeded, kInternal -> transient: retried up to
///    max_retries with exponential backoff, then quarantined.
///  - everything else (kResourceExhausted, kXmlParseError, ...) ->
///    permanent: quarantined immediately; retrying cannot help.
///
/// Breaker: closed -> open after breaker_threshold consecutive
/// document failures; while open, the next breaker_cooldown_docs
/// documents are shed unexamined with kRejected; then half-open: one
/// probe document runs — success closes the breaker, failure re-opens
/// it. With fail_fast, the first failure aborts ingestion instead.
///
/// All outcomes are counted in the engine's MetricsRegistry:
/// xpred_docs_rejected_total, xpred_docs_deadline_exceeded_total,
/// xpred_docs_quarantined_total, xpred_docs_retried_total,
/// xpred_docs_shed_total, and the xpred_breaker_state gauge
/// (0 = closed, 1 = open, 2 = half-open).
class IngestGovernor {
 public:
  enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Options {
    /// Limits installed into the engine before ingestion starts.
    ResourceLimits limits;
    /// Retries per transient-failing document (0 disables retry).
    uint32_t max_retries = 2;
    /// First retry backoff; doubles per attempt.
    uint32_t backoff_base_ms = 10;
    /// Consecutive failures that trip the breaker. 0 disables it.
    uint32_t breaker_threshold = 5;
    /// Documents shed (kRejected, unexamined) while the breaker is
    /// open, before probing half-open.
    uint32_t breaker_cooldown_docs = 10;
    /// Abort the run on the first failed document instead of
    /// quarantining (operator --fail-fast).
    bool fail_fast = false;
    /// Backoff sleeper, injectable so tests run without real delays.
    /// Defaults to std::this_thread::sleep_for.
    std::function<void(uint32_t /*ms*/)> sleep_ms;
  };

  /// Result of one FilterNext call.
  struct DocOutcome {
    /// OK when the document was filtered; the terminal failure Status
    /// otherwise (kRejected when shed by the breaker or fail-fast).
    Status status;
    /// True when the failure was recorded in quarantine().
    bool quarantined = false;
    /// Retries consumed by this document.
    uint32_t retries = 0;
  };

  /// \p engine is borrowed and must outlive the governor. Installs
  /// options.limits into the engine and registers the governance
  /// metrics in the engine's registry.
  IngestGovernor(FilterEngine* engine, Options options);

  /// Ingests one document: breaker check, filter, classify, retry,
  /// quarantine. Matched subscription ids are appended to \p matched
  /// only on success. Never returns a non-OK Status for a handled
  /// (quarantined/shed) failure — inspect the DocOutcome; the returned
  /// Status is non-OK only under fail_fast.
  Status FilterNext(std::string_view xml_text, std::vector<ExprId>* matched,
                    DocOutcome* outcome = nullptr);

  const std::vector<QuarantineRecord>& quarantine() const {
    return quarantine_;
  }
  BreakerState breaker_state() const { return breaker_state_; }
  uint64_t docs_seen() const { return docs_seen_; }
  uint64_t docs_ok() const { return docs_ok_; }
  uint64_t docs_shed() const { return docs_shed_; }

  /// True when \p status is worth retrying (transient classification).
  static bool IsTransient(const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded ||
           status.code() == StatusCode::kInternal;
  }

 private:
  void TransitionBreaker(bool doc_failed);
  void SetBreakerGauge();

  FilterEngine* engine_;
  Options options_;
  std::vector<QuarantineRecord> quarantine_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t cooldown_remaining_ = 0;
  uint64_t docs_seen_ = 0;
  uint64_t docs_ok_ = 0;
  uint64_t docs_shed_ = 0;

  obs::Counter* rejected_total_ = nullptr;
  obs::Counter* deadline_total_ = nullptr;
  obs::Counter* quarantined_total_ = nullptr;
  obs::Counter* retried_total_ = nullptr;
  obs::Counter* shed_total_ = nullptr;
  obs::Gauge* breaker_gauge_ = nullptr;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_GOVERNOR_H_
