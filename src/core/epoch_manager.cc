#include "core/epoch_manager.h"

#include <algorithm>
#include <thread>

#include "obs/flight_recorder.h"

namespace xpred::core {

IndexEpochManager::IndexEpochManager(const Options& options)
    : options_(options) {
  options_.partitions = std::max<size_t>(options_.partitions, 1);
  for (Snapshot& side : sides_) {
    side.partitions_.reserve(options_.partitions);
    for (size_t p = 0; p < options_.partitions; ++p) {
      side.partitions_.push_back(
          std::make_unique<Matcher>(options_.matcher));
    }
    side.local_to_global_.resize(options_.partitions);
  }
  master_ = std::make_unique<Matcher>(options_.matcher);
  partition_counts_.assign(options_.partitions, 0);
  current_.store(&sides_[0], std::memory_order_release);
  if (options_.record_history) {
    boundaries_.push_back(EpochBoundary{0, 0});
  }
}

IndexEpochManager::~IndexEpochManager() = default;

IndexEpochManager::PinnedSnapshot IndexEpochManager::Pin() {
  for (;;) {
    Snapshot* snap = current_.load(std::memory_order_acquire);
    snap->pins_.fetch_add(1, std::memory_order_acq_rel);
    if (current_.load(std::memory_order_acquire) == snap) {
      return PinnedSnapshot(snap);
    }
    // The writer republished between the load and the pin; this side
    // may be the next rebuild target. Back off and retry — the other
    // side is stable for at least one more full publish cycle.
    snap->pins_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

uint64_t IndexEpochManager::current_pins() const {
  const Snapshot* snap = current_.load(std::memory_order_acquire);
  return snap->pins_.load(std::memory_order_acquire);
}

IndexEpochManager::Stats IndexEpochManager::stats() const {
  Stats s;
  s.subscribes = stat_subscribes_.load(std::memory_order_relaxed);
  s.unsubscribes = stat_unsubscribes_.load(std::memory_order_relaxed);
  s.publishes = stat_publishes_.load(std::memory_order_relaxed);
  s.ops_applied = stat_ops_applied_.load(std::memory_order_relaxed);
  s.retire_waits = stat_retire_waits_.load(std::memory_order_relaxed);
  s.retire_wait_spins =
      stat_retire_wait_spins_.load(std::memory_order_relaxed);
  s.publish_rejected =
      stat_publish_rejected_.load(std::memory_order_relaxed);
  return s;
}

Result<ExprId> IndexEpochManager::Subscribe(std::string_view xpath) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!sink_status_.ok()) return sink_status_;
  // The master matcher is the single validation point: parse errors,
  // capacity limits and canonicalization all happen here, once, so
  // replaying the logged operation into a side is infallible and both
  // sides stay byte-for-byte equivalent.
  Result<ExprId> sid = master_->AddExpression(xpath);
  if (!sid.ok()) return sid.status();

  Op op;
  op.kind = OpKind::kSubscribe;
  op.sid = *sid;
  op.partition = static_cast<uint32_t>(next_partition_);
  op.local = partition_counts_[next_partition_]++;
  op.xpath = std::string(xpath);
  // Round-robin on success only, mirroring ParallelFilter's routing.
  next_partition_ = (next_partition_ + 1) % options_.partitions;

  if (op.sid != sid_routes_.size()) {
    // Matcher sids are dense by contract; a gap means the master and
    // the routing table diverged.
    return Status::Internal("epoch manager sid table out of sync");
  }
  sid_routes_.push_back(op);
  sid_live_.push_back(1);
  log_.push_back(std::move(op));
  ++last_seq_;
  ++live_count_;
  pending_ops_.fetch_add(1, std::memory_order_relaxed);
  issued_sids_.store(sid_routes_.size(), std::memory_order_release);
  stat_subscribes_.fetch_add(1, std::memory_order_relaxed);
  if (op_sink_ != nullptr) {
    Status mirrored = op_sink_->OnSubscribe(last_seq_, *sid, xpath);
    if (!mirrored.ok()) {
      // The op is committed in memory but not durably; see OpSink.
      sink_status_ = mirrored;
      return mirrored;
    }
  }
  return *sid;
}

Status IndexEpochManager::Unsubscribe(ExprId sid) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!sink_status_.ok()) return sink_status_;
  // Validates liveness (unknown sid, double-unsubscribe) against the
  // master, which always reflects every queued operation.
  XPRED_RETURN_NOT_OK(master_->RemoveSubscription(sid));
  Op op;
  op.kind = OpKind::kUnsubscribe;
  op.sid = sid;
  op.partition = sid_routes_[sid].partition;
  op.local = sid_routes_[sid].local;
  log_.push_back(std::move(op));
  sid_live_[sid] = 0;
  ++last_seq_;
  --live_count_;
  pending_ops_.fetch_add(1, std::memory_order_relaxed);
  stat_unsubscribes_.fetch_add(1, std::memory_order_relaxed);
  if (op_sink_ != nullptr) {
    Status mirrored = op_sink_->OnUnsubscribe(last_seq_, sid);
    if (!mirrored.ok()) {
      sink_status_ = mirrored;
      return mirrored;
    }
  }
  return Status::OK();
}

size_t IndexEpochManager::pending_ops() const {
  // Deliberately does NOT take writer_mu_: this is read by metrics
  // gauges on the filter path, potentially while a batch pin is held.
  // A blocking Publish() holds writer_mu_ while it waits for pins to
  // drain, so taking the lock here would invert the ordering and
  // deadlock. A slightly stale count is fine for a gauge.
  return static_cast<size_t>(pending_ops_.load(std::memory_order_relaxed));
}

size_t IndexEpochManager::live_subscriptions() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return live_count_;
}

uint64_t IndexEpochManager::last_op_seq() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return last_seq_;
}

Status IndexEpochManager::ApplyBacklog(Snapshot* side) {
  uint64_t applied = 0;
  for (uint64_t seq = side->applied_seq_ + 1; seq <= last_seq_; ++seq) {
    const Op& op = log_[static_cast<size_t>(seq - first_seq_)];
    Matcher& matcher = *side->partitions_[op.partition];
    if (op.kind == OpKind::kSubscribe) {
      Result<ExprId> local = matcher.AddExpression(op.xpath);
      if (!local.ok()) {
        return Status::Internal(
            "epoch replay failed on a validated subscribe: " +
            local.status().message());
      }
      if (*local != op.local) {
        return Status::Internal("epoch replay produced divergent sids");
      }
      std::vector<ExprId>& map = side->local_to_global_[op.partition];
      if (map.size() <= op.local) map.resize(op.local + 1, 0);
      map[op.local] = op.sid;
    } else {
      Status st = matcher.RemoveSubscription(op.local);
      if (!st.ok()) {
        return Status::Internal(
            "epoch replay failed on a validated unsubscribe: " +
            st.message());
      }
    }
    ++applied;
  }
  side->applied_seq_ = last_seq_;
  stat_ops_applied_.fetch_add(applied, std::memory_order_relaxed);
  return Status::OK();
}

Result<uint64_t> IndexEpochManager::PublishLocked(bool wait) {
  if (!sink_status_.ok()) return sink_status_;
  Snapshot* cur = current_.load(std::memory_order_acquire);
  Snapshot* spare = (cur == &sides_[0]) ? &sides_[1] : &sides_[0];

  // Grace period: the spare side was current two publishes ago; every
  // batch that pinned it must unpin before it can be rebuilt. The
  // release fetch_sub in PinnedSnapshot::Release synchronizes with
  // this acquire load, so all reader accesses happen-before the
  // mutations below.
  uint64_t spins = 0;
  if (spare->pins_.load(std::memory_order_acquire) != 0) {
    if (!wait) {
      stat_publish_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Rejected("spare epoch still pinned by readers");
    }
    stat_retire_waits_.fetch_add(1, std::memory_order_relaxed);
    while (spare->pins_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
      ++spins;
    }
    stat_retire_wait_spins_.fetch_add(spins, std::memory_order_relaxed);
  }
  XPRED_RECORD_EVENT(obs::EventType::kEpochRetire, spare->epoch_, spins);

  const uint64_t backlog = last_seq_ - spare->applied_seq_;
  Status applied = ApplyBacklog(spare);
  if (!applied.ok()) return applied;

  // Flush lazy evaluation orders now, on the writer: once published
  // the side is filtered concurrently and must never be mutated.
  for (std::unique_ptr<Matcher>& m : spare->partitions_) {
    m->PrepareForFiltering();
  }

  spare->epoch_ = cur->epoch_ + 1;
  spare->live_count_ = live_count_;
  current_.store(spare, std::memory_order_release);
  published_epoch_.store(spare->epoch_, std::memory_order_release);
  // The new current side has every queued op applied.
  pending_ops_.store(0, std::memory_order_relaxed);
  stat_publishes_.fetch_add(1, std::memory_order_relaxed);
  if (options_.record_history) {
    boundaries_.push_back(EpochBoundary{spare->epoch_, spare->applied_seq_});
  }
  // With record_history this only drops entries a TrimHistoryBefore
  // has already released (history_base_ caps the trim; it is 0 —
  // nothing trimmable — until the first checkpoint).
  TrimLogLocked();
  XPRED_RECORD_EVENT(obs::EventType::kEpochPublish, spare->epoch_, backlog);
  if (op_sink_ != nullptr) {
    Status mirrored = op_sink_->OnPublish(spare->epoch_, spare->applied_seq_);
    if (!mirrored.ok()) {
      // The epoch is live in memory but its boundary never reached the
      // durable log; poison the writer (see OpSink).
      sink_status_ = mirrored;
      return mirrored;
    }
  }
  return spare->epoch_;
}

Result<uint64_t> IndexEpochManager::Publish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked(/*wait=*/true);
}

Result<uint64_t> IndexEpochManager::TryPublish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked(/*wait=*/false);
}

void IndexEpochManager::TrimLogLocked() {
  // Entries applied by both sides can never be replayed again; with
  // record_history, additionally only entries a checkpoint has
  // released (seq <= history_base_.seq) may go — the rest are the
  // OpsUpToEpoch oracle's source of truth.
  uint64_t safe = std::min(sides_[0].applied_seq_, sides_[1].applied_seq_);
  if (options_.record_history) safe = std::min(safe, history_base_.seq);
  while (first_seq_ <= safe && !log_.empty()) {
    log_.pop_front();
    ++first_seq_;
  }
}

Result<std::vector<IndexEpochManager::OpView>>
IndexEpochManager::OpsUpToEpoch(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!options_.record_history) {
    return Status::InvalidArgument(
        "OpsUpToEpoch requires Options::record_history");
  }
  const EpochBoundary* boundary = nullptr;
  for (const EpochBoundary& b : boundaries_) {
    if (b.epoch == epoch) {
      boundary = &b;
      break;
    }
  }
  if (boundary == nullptr) {
    if (epoch < history_base_.epoch) {
      return Status::NotFound("epoch " + std::to_string(epoch) +
                              " was trimmed (history restarts at epoch " +
                              std::to_string(history_base_.epoch) + ")");
    }
    return Status::NotFound("epoch " + std::to_string(epoch) +
                            " was never published");
  }
  // Trimmed history: the view is incremental from history_base_.
  const uint64_t start = std::max(first_seq_, history_base_.seq + 1);
  std::vector<OpView> ops;
  ops.reserve(static_cast<size_t>(
      boundary->applied_seq >= start ? boundary->applied_seq - start + 1
                                     : 0));
  for (uint64_t seq = start; seq <= boundary->applied_seq; ++seq) {
    const Op& op = log_[static_cast<size_t>(seq - first_seq_)];
    OpView view;
    view.subscribe = op.kind == OpKind::kSubscribe;
    view.sid = op.sid;
    view.xpath = op.xpath;
    ops.push_back(std::move(view));
  }
  return ops;
}

IndexEpochManager::HistoryBase IndexEpochManager::history_base() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return history_base_;
}

Result<size_t> IndexEpochManager::TrimHistoryBefore(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (!options_.record_history) {
    return Status::InvalidArgument(
        "TrimHistoryBefore requires Options::record_history");
  }
  const EpochBoundary* boundary = nullptr;
  for (const EpochBoundary& b : boundaries_) {
    if (b.epoch == epoch) {
      boundary = &b;
      break;
    }
  }
  if (boundary == nullptr) {
    return Status::NotFound("epoch " + std::to_string(epoch) +
                            " was never published (or already trimmed)");
  }
  // A reader still pinning an older epoch keeps its history alive:
  // OpsUpToEpoch must stay answerable for every pinned epoch. New pins
  // cannot race us below the bar — Pin() only ever pins the current
  // side, whose epoch is >= every published boundary.
  for (const Snapshot& side : sides_) {
    if (side.pins_.load(std::memory_order_acquire) != 0 &&
        side.epoch_ < epoch) {
      return Status::Rejected(
          "epoch " + std::to_string(side.epoch_) +
          " is still pinned by readers; trim refused to keep its "
          "history rebuildable");
    }
  }
  history_base_.epoch = epoch;
  history_base_.seq = boundary->applied_seq;
  // The base epoch's own boundary stays: OpsUpToEpoch(base) is the
  // empty incremental view, the anchor a checkpoint seeds from.
  boundaries_.erase(
      std::remove_if(boundaries_.begin(), boundaries_.end(),
                     [epoch](const EpochBoundary& b) {
                       return b.epoch < epoch;
                     }),
      boundaries_.end());
  const size_t before = log_.size();
  TrimLogLocked();
  return before - log_.size();
}

void IndexEpochManager::SetOpSink(OpSink* sink) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  op_sink_ = sink;
  sink_status_ = Status::OK();
}

Result<IndexEpochManager::SubscriptionExport>
IndexEpochManager::ExportSubscriptions() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Snapshot* cur = current_.load(std::memory_order_acquire);
  if (cur->applied_seq_ != last_seq_) {
    return Status::Rejected(
        "subscription export is defined at epoch boundaries only; "
        "Publish() the " +
        std::to_string(last_seq_ - cur->applied_seq_) +
        " queued op(s) first");
  }
  SubscriptionExport out;
  out.epoch = cur->epoch_;
  out.last_seq = last_seq_;
  out.entries.reserve(sid_routes_.size());
  for (size_t sid = 0; sid < sid_routes_.size(); ++sid) {
    SubscriptionExport::Entry entry;
    entry.sid = static_cast<ExprId>(sid);
    entry.live = sid_live_[sid] != 0;
    entry.xpath = sid_routes_[sid].xpath;
    out.entries.push_back(std::move(entry));
  }
  return out;
}

size_t IndexEpochManager::ApproximateMemoryBytes() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  size_t total = master_->ApproximateMemoryBytes();
  for (const Snapshot& side : sides_) {
    for (const std::unique_ptr<Matcher>& m : side.partitions_) {
      total += m->ApproximateMemoryBytes();
    }
    for (const std::vector<ExprId>& map : side.local_to_global_) {
      total += map.size() * sizeof(ExprId);
    }
  }
  for (const Op& op : log_) {
    total += sizeof(Op) + op.xpath.size();
  }
  total += sid_routes_.size() * sizeof(Op);
  return total;
}

}  // namespace xpred::core
