#ifndef XPRED_CORE_PREDICATE_INDEX_H_
#define XPRED_CORE_PREDICATE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "core/predicate.h"
#include "core/publication.h"

namespace xpred::core {

/// \brief Per-path predicate matching results: for each matched pid,
/// the occurrence pairs that matched it (§4.1.1, Table 1).
///
/// Entries are indexed directly by pid and invalidated lazily with an
/// epoch counter, so resetting between document paths is O(1).
class MatchResultSet {
 public:
  /// Starts a new path; ensures capacity for \p pid_count predicates.
  void BeginPath(size_t pid_count) {
    if (entries_.size() < pid_count) entries_.resize(pid_count);
    ++epoch_;
    matched_.clear();
  }

  void Add(PredicateId pid, OccPair pair) {
    Entry& e = entries_[pid];
    if (e.epoch != epoch_) {
      e.epoch = epoch_;
      e.pairs.clear();
      matched_.push_back(pid);
    }
    e.pairs.push_back(pair);
  }

  /// Occurrence pairs for \p pid in the current path, or nullptr when
  /// the predicate did not match.
  const OccList* Find(PredicateId pid) const {
    if (pid >= entries_.size()) return nullptr;
    const Entry& e = entries_[pid];
    return e.epoch == epoch_ ? &e.pairs : nullptr;
  }

  bool Has(PredicateId pid) const { return Find(pid) != nullptr; }

  /// Pids matched in the current path, in first-match order.
  const std::vector<PredicateId>& matched_pids() const { return matched_; }

 private:
  struct Entry {
    uint32_t epoch = 0;
    /// Inline storage for the common 1-2 pair case (hot-path
    /// allocation elimination; clear() keeps any spilled capacity).
    OccList pairs;
  };
  std::vector<Entry> entries_;
  std::vector<PredicateId> matched_;
  uint32_t epoch_ = 0;
};

/// \brief The multi-stage predicate index of §4.1.2 / Figure 1.
///
/// Distinct predicates are stored once (the paper's central
/// overlap-sharing idea). The first stage dispatches on predicate
/// type; tag names key hash tables (one level for absolute /
/// end-of-path, two levels for relative); the final stage is an array
/// indexed by the predicate value, one array per operator. An array
/// slot holds the pids at that (type, tags, op, value) coordinate —
/// usually one, more when inline attribute constraints differ.
///
/// Matching probes the same structure per publication tuple (or tuple
/// pair, for relative predicates): equality arrays at one position,
/// greater-or-equal arrays at positions 1..distance.
class PredicateIndex {
 public:
  struct Options {
    /// Maximum predicate value, i.e. the maximum supported XPE length
    /// (the paper: "the length of the array depends on the maximum
    /// length of the XPEs supported by the system").
    uint32_t max_value = 16;
  };

  explicit PredicateIndex(Options options) : options_(options) {}
  PredicateIndex() : PredicateIndex(Options{}) {}

  /// Returns the pid for \p predicate, inserting it if new (the
  /// paper's insert: hash on tags, index by value; an existing pid at
  /// the slot with the same attribute constraints is reused).
  Result<PredicateId> InsertOrFind(const Predicate& predicate);

  const Predicate& predicate(PredicateId pid) const {
    return predicates_[pid];
  }

  /// Number of distinct predicates stored (§6.5 reports this count).
  size_t distinct_count() const { return predicates_.size(); }

  /// Evaluates all stored predicates against \p publication,
  /// collecting occurrence pairs into \p results (which is reset).
  /// Returns the number of (pid, pair) matches recorded.
  size_t Match(const Publication& publication,
               MatchResultSet* results) const;

  uint32_t max_value() const { return options_.max_value; }

  /// Approximate heap bytes of the index (see common/memory_usage.h).
  size_t ApproximateMemoryBytes() const;

 private:
  /// Pids sharing one (type, tags, op, value) coordinate.
  ///
  /// Unconstrained pids and pids with complex constraints live in
  /// `scan` and are checked linearly. Pids whose only constraint is a
  /// single equality test are indexed by (tag variable, attribute
  /// name, literal) in `eq` — the equality-predicate indexing of
  /// Fabret et al. (cited in §4.2.2) — so inline attribute matching
  /// does hash lookups per document attribute instead of scanning
  /// every stored value variant.
  struct Slot {
    std::vector<PredicateId> scan;
    /// Keyed by a 64-bit hash of (tag variable, attribute name,
    /// canonical literal); hits are verified against the predicate's
    /// constraints, so hash collisions only cost a re-check.
    std::unordered_map<uint64_t, std::vector<PredicateId>> eq;

    bool empty() const { return scan.empty() && eq.empty(); }
  };
  /// Value-indexed arrays, one per operator. Index 0 is unused
  /// (predicate values start at 1).
  struct OpArrays {
    std::vector<Slot> eq;
    std::vector<Slot> ge;
  };

  Slot& SlotFor(const Predicate& predicate);

  /// Precomputed equality-probe hashes for one attribute of a
  /// publication element (string form, plus numeric form when the
  /// value parses as a number).
  struct AttrHash {
    uint64_t string_hash = 0;
    uint64_t numeric_hash = 0;
    bool has_numeric = false;
  };
  /// Per-position attribute hashes for the current publication,
  /// computed once per Match() call.
  struct ProbeTable {
    std::vector<std::vector<AttrHash>> by_position;  // 1-based -> attrs.
  };

  /// Equality-index hash for a single-equality constraint. Returns
  /// false when the predicate does not qualify for the equality index.
  static bool EqHash(const Predicate& predicate, uint64_t* hash);

  /// True iff every constraint matches some attribute of \p attrs.
  static bool ConstraintsHold(
      const std::vector<AttributeConstraint>& constraints,
      const std::vector<xml::Attribute>& attrs);

  /// Records tuple/pair matches for every pid in \p slot whose
  /// attribute constraints hold.
  size_t EmitSlot(const Slot& slot, const Publication& publication,
                  const Tuple* t1, const Tuple* t2, OccPair pair,
                  MatchResultSet* results, const ProbeTable& probes) const;

  Options options_;
  std::vector<Predicate> predicates_;
  /// True once any equality-indexed predicate exists (gates the
  /// per-publication probe-hash precomputation).
  bool has_eq_predicates_ = false;

  std::unordered_map<SymbolId, OpArrays> absolute_;
  std::unordered_map<SymbolId, std::unordered_map<SymbolId, OpArrays>>
      relative_;
  std::unordered_map<SymbolId, std::vector<Slot>> end_of_path_;
  std::vector<Slot> length_;
};

}  // namespace xpred::core

#endif  // XPRED_CORE_PREDICATE_INDEX_H_
