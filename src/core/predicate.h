#ifndef XPRED_CORE_PREDICATE_H_
#define XPRED_CORE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/small_vector.h"
#include "xpath/ast.h"

namespace xpred::core {

/// Identifier of a distinct predicate in the predicate index (the
/// paper's "pid").
using PredicateId = uint32_t;
inline constexpr PredicateId kInvalidPredicate = UINT32_MAX;

/// Identifier of a stored XPath expression (the paper's "sid").
using ExprId = uint32_t;
inline constexpr ExprId kInvalidExpr = UINT32_MAX;

/// The four predicate types of the paper's predicate language (§3.2).
enum class PredicateType : uint8_t {
  /// (p_t, op, v) — constraint on the absolute position of tag t.
  kAbsolute,
  /// (d(p_t1, p_t2), op, v) — constraint on the distance between two
  /// tags.
  kRelative,
  /// (p_t⊣, >=, v) — constraint on the position of tag t relative to
  /// the end of the document path.
  kEndOfPath,
  /// (length, >=, v) — constraint on the length of the document path.
  kLength,
};

/// Relational operator of a position predicate. End-of-path and length
/// predicates always use kGe.
enum class PredOp : uint8_t { kEq, kGe };

/// \brief Attribute constraint attached to a tag-name variable of a
/// predicate (paper §5): `(p_t([attr, op, value]), ...)`.
struct AttributeConstraint {
  std::string name;
  /// False for the bare existence test `[@name]`.
  bool has_comparison = false;
  xpath::CompareOp op = xpath::CompareOp::kEq;
  xpath::Literal value;

  bool operator==(const AttributeConstraint&) const = default;

  /// True iff an attribute with value \p actual satisfies the
  /// constraint.
  bool Matches(const std::string& actual) const {
    xpath::AttributeFilter f;
    f.name = name;
    f.has_comparison = has_comparison;
    f.op = op;
    f.value = value;
    return f.Matches(actual);
  }

  static AttributeConstraint FromFilter(const xpath::AttributeFilter& f) {
    AttributeConstraint c;
    c.name = f.name;
    c.has_comparison = f.has_comparison;
    c.op = f.op;
    c.value = f.value;
    return c;
  }

  std::string ToString() const;
};

/// \brief One predicate of the paper's predicate language, with
/// optional attribute constraints on each tag variable (inline
/// evaluation mode).
struct Predicate {
  PredicateType type = PredicateType::kLength;
  PredOp op = PredOp::kGe;
  uint32_t value = 1;
  /// Tag variable: kAbsolute / kEndOfPath use tag1 only; kRelative uses
  /// both; kLength uses neither.
  SymbolId tag1 = kInvalidSymbol;
  SymbolId tag2 = kInvalidSymbol;
  /// Attribute constraints on tag1 / tag2 (inline mode only; empty in
  /// selection-postponed mode).
  std::vector<AttributeConstraint> attrs1;
  std::vector<AttributeConstraint> attrs2;

  bool operator==(const Predicate&) const = default;

  /// Paper-style rendering, e.g. "(d(p_a, p_b), >=, 1)" — tag names
  /// resolved through \p interner.
  std::string ToString(const Interner& interner) const;
};

/// \brief A pair of tag occurrence numbers recording how a predicate
/// was matched in the current document path (§4.2.1).
///
/// For single-tag predicates the occurrence is duplicated, as in the
/// paper's notation; kLength predicates use (1, 1).
struct OccPair {
  uint32_t first = 0;
  uint32_t second = 0;

  auto operator<=>(const OccPair&) const = default;
};

/// Occurrence-pair list with inline storage: per-path predicate match
/// results almost always hold 1-2 pairs, so keeping four inline removes
/// the dominant per-path heap allocation from the filter hot path.
using OccList = common::SmallVector<OccPair, 4>;

}  // namespace xpred::core

#endif  // XPRED_CORE_PREDICATE_H_
