#include "core/predicate.h"

#include "common/string_util.h"

namespace xpred::core {

std::string AttributeConstraint::ToString() const {
  std::string out = "[" + name;
  if (has_comparison) {
    out += ", ";
    out += xpath::CompareOpToString(op);
    out += ", ";
    out += value.ToString();
  }
  out += "]";
  return out;
}

namespace {

std::string TagWithAttrs(const Interner& interner, SymbolId tag,
                         const std::vector<AttributeConstraint>& attrs) {
  std::string out = "p_" + std::string(interner.Name(tag));
  if (!attrs.empty()) {
    out += "(";
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) out += ", ";
      out += attrs[i].ToString();
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string Predicate::ToString(const Interner& interner) const {
  const char* op_name = (op == PredOp::kEq) ? "=" : ">=";
  switch (type) {
    case PredicateType::kAbsolute:
      return StringPrintf("(%s, %s, %u)",
                          TagWithAttrs(interner, tag1, attrs1).c_str(),
                          op_name, value);
    case PredicateType::kRelative:
      return StringPrintf("(d(%s, %s), %s, %u)",
                          TagWithAttrs(interner, tag1, attrs1).c_str(),
                          TagWithAttrs(interner, tag2, attrs2).c_str(),
                          op_name, value);
    case PredicateType::kEndOfPath:
      return StringPrintf("(%s-|, >=, %u)",
                          TagWithAttrs(interner, tag1, attrs1).c_str(),
                          value);
    case PredicateType::kLength:
      return StringPrintf("(length, >=, %u)", value);
  }
  return "(?)";
}

}  // namespace xpred::core
