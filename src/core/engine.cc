#include "core/engine.h"

#include "common/stopwatch.h"

namespace xpred::core {

Status FilterEngine::FilterXml(std::string_view xml_text,
                               std::vector<ExprId>* matched) {
  Stopwatch watch;
  Result<xml::Document> doc = xml::Document::Parse(xml_text);
  if (!doc.ok()) return doc.status();
  const uint64_t parse_nanos = static_cast<uint64_t>(watch.ElapsedNanos());
  Status st = FilterDocument(*doc, matched);
  // Charge parse time after FilterDocument so engines that reset
  // per-document state don't clobber it. The paper includes parsing in
  // total filtering time; the view folds it into encode_micros.
  inst().RecordStage(obs::Stage::kParse, parse_nanos);
  return st;
}

const EngineStats& FilterEngine::stats() const {
  const obs::EngineInstruments& i = inst();
  EngineStats view;
  view.documents = i.documents();
  view.paths = i.paths();
  view.encode_micros = i.stage_sum_micros(obs::Stage::kParse) +
                       i.stage_sum_micros(obs::Stage::kEncode);
  view.predicate_micros = i.stage_sum_micros(obs::Stage::kPredicate);
  view.expression_micros = i.stage_sum_micros(obs::Stage::kOccurrence);
  view.verify_micros = i.stage_sum_micros(obs::Stage::kVerify);
  view.collect_micros = i.stage_sum_micros(obs::Stage::kCollect);
  view.occurrence_runs = i.occurrence_runs();
  view.nested_enumeration_truncated = i.nested_truncated();
  view.predicate_matches = i.predicate_matches();
  stats_view_ = view;
  return stats_view_;
}

void FilterEngine::ResetStats() { inst().Reset(); }

void FilterEngine::BindMetrics(obs::MetricsRegistry* registry) {
  instruments_.Bind(registry, name());
}

obs::MetricsRegistry* FilterEngine::metrics_registry() {
  return inst().registry();
}

void FilterEngine::set_tracer(obs::Tracer* tracer) {
  inst().set_tracer(tracer);
}

}  // namespace xpred::core
