#include "core/engine.h"

#include "common/stopwatch.h"

namespace xpred::core {

Status FilterEngine::FilterXml(std::string_view xml_text,
                               std::vector<ExprId>* matched) {
  Stopwatch watch;
  Result<xml::Document> doc = xml::Document::Parse(xml_text);
  if (!doc.ok()) return doc.status();
  double parse_micros = watch.ElapsedMicros();
  Status st = FilterDocument(*doc, matched);
  // Charge parse time after FilterDocument so engines that reset
  // per-document state don't clobber it.
  mutable_stats()->encode_micros += parse_micros;
  return st;
}

}  // namespace xpred::core
