#include "core/engine.h"

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace xpred::core {

Status FilterEngine::FilterXml(std::string_view xml_text,
                               std::vector<ExprId>* matched) {
  BeginGovernedWindow();
  Status st = GovernedFilterXml(xml_text, matched);
  EndGovernedWindow();
  return st;
}

Status FilterEngine::GovernedFilterXml(std::string_view xml_text,
                                       std::vector<ExprId>* matched) {
  XPRED_RETURN_NOT_OK(budget_.CheckDocumentBytes(xml_text.size()));
#ifndef XPRED_DISABLE_FAULT_INJECTION
  if (FaultInjector* injector = FaultInjector::Installed()) {
    injector->MaybeTruncate(faultsite::kParserInput, &xml_text);
  }
#endif
  Stopwatch watch;
  xml::SaxParser::Options options;
  options.max_depth = limits_.max_element_depth;
  options.max_attributes_per_element = limits_.max_attributes_per_element;
  options.max_entity_expansions = limits_.max_entity_expansions;
  options.budget = &budget_;
  Result<xml::Document> doc = xml::Document::Parse(xml_text, options);
  if (!doc.ok()) return doc.status();
  const uint64_t parse_nanos = static_cast<uint64_t>(watch.ElapsedNanos());
  Status st = FilterDocument(*doc, matched);
  // Charge parse time after FilterDocument so engines that reset
  // per-document state don't clobber it. The paper includes parsing in
  // total filtering time; the view folds it into encode_micros.
  inst().RecordStage(obs::Stage::kParse, parse_nanos);
  return st;
}

Status FilterEngine::BeginGoverned(const xml::Document& document) {
  if (!in_governed_window_) budget_.Arm(limits_);
  return ValidateDocumentAgainstBudget(document, &budget_, limits_);
}

Status FilterEngine::ValidateDocumentAgainstBudget(
    const xml::Document& document, ExecBudget* budget,
    const ResourceLimits& limits) {
  XPRED_FAULT_POINT(faultsite::kEngineBeginDocument);
  XPRED_RETURN_NOT_OK(budget->CheckDeadlineNow());
  if (limits.max_element_depth == 0 &&
      limits.max_attributes_per_element == 0 &&
      limits.max_extracted_paths == 0) {
    return Status::OK();
  }
  // Direct FilterDocument callers bypass the parser-side caps; re-check
  // the structural limits on the parsed tree (O(elements), element
  // depth is precomputed).
  size_t leaves = 0;
  for (const xml::Element& element : document.elements()) {
    XPRED_RETURN_NOT_OK(budget->CheckDepth(element.depth));
    XPRED_RETURN_NOT_OK(
        budget->CheckAttributeCount(element.attributes.size()));
    if (element.children.empty()) ++leaves;
  }
  if (limits.max_extracted_paths != 0 &&
      leaves > limits.max_extracted_paths) {
    return Status::ResourceExhausted(
        StringPrintf("extracted paths limit exceeded: %zu > %zu", leaves,
                     limits.max_extracted_paths));
  }
  return Status::OK();
}

const EngineStats& FilterEngine::stats() const {
  const obs::EngineInstruments& i = inst();
  EngineStats view;
  view.documents = i.documents();
  view.paths = i.paths();
  view.encode_micros = i.stage_sum_micros(obs::Stage::kParse) +
                       i.stage_sum_micros(obs::Stage::kEncode);
  view.predicate_micros = i.stage_sum_micros(obs::Stage::kPredicate);
  view.expression_micros = i.stage_sum_micros(obs::Stage::kOccurrence);
  view.verify_micros = i.stage_sum_micros(obs::Stage::kVerify);
  view.collect_micros = i.stage_sum_micros(obs::Stage::kCollect);
  view.occurrence_runs = i.occurrence_runs();
  view.nested_enumeration_truncated = i.nested_truncated();
  view.predicate_matches = i.predicate_matches();
  stats_view_ = view;
  return stats_view_;
}

void FilterEngine::ResetStats() { inst().Reset(); }

void FilterEngine::BindMetrics(obs::MetricsRegistry* registry) {
  instruments_.Bind(registry, name());
}

obs::MetricsRegistry* FilterEngine::metrics_registry() {
  return inst().registry();
}

void FilterEngine::set_tracer(obs::Tracer* tracer) {
  inst().set_tracer(tracer);
}

}  // namespace xpred::core
