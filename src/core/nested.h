#ifndef XPRED_CORE_NESTED_H_
#define XPRED_CORE_NESTED_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"

namespace xpred::core {

/// \brief One sub-expression of a decomposed nested-path XPE (§5,
/// Figure 3).
///
/// The decomposition turns the tree-shaped expression into single-path
/// sub-expressions: the *main* sub-expression is the trunk with all
/// nested filters stripped; each nested filter at trunk step k yields
/// an *extended* sub-expression — the stripped trunk prefix up to k
/// followed by the filter path — annotated with the paper's
/// (pos, =, k) branch-position predicate (`branch_step` here).
/// Extended sub-expressions containing further nested filters
/// decompose recursively.
struct SubExpression {
  /// Single-path expression (no nested filters; attribute filters are
  /// retained).
  xpath::PathExpr path;
  /// 1-based step index (in *this* sub-expression, equal to the length
  /// of the prefix shared with the parent) where this sub-expression
  /// branches off its parent. 0 for the main sub-expression.
  uint32_t branch_step = 0;
  uint32_t parent = UINT32_MAX;
  std::vector<uint32_t> children;

  /// Steps whose witness nodes the structural join needs: this
  /// sub-expression's own branch_step plus its children's branch
  /// steps. Sorted, deduplicated.
  std::vector<uint32_t> interest_steps;
};

/// \brief A nested-path XPE decomposed into sub-expressions.
/// subs[0] is the main sub-expression.
struct Decomposition {
  std::vector<SubExpression> subs;
};

/// Decomposes \p expr (which must contain at least one nested path
/// filter). Fails when a nested filter is attached to a wildcard step
/// (the predicate language anchors witnesses to tag variables) or when
/// the decomposition exceeds \p max_subs sub-expressions.
Result<Decomposition> DecomposeNested(const xpath::PathExpr& expr,
                                      size_t max_subs = 64);

}  // namespace xpred::core

#endif  // XPRED_CORE_NESTED_H_
