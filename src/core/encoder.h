#ifndef XPRED_CORE_ENCODER_H_
#define XPRED_CORE_ENCODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "core/predicate.h"
#include "xpath/ast.h"

namespace xpred::core {

/// \brief Where an anchor's occurrence number appears in the occurrence
/// chain produced by the occurrence-determination algorithm.
struct AnchorSlot {
  /// Index of the predicate that introduces the anchor.
  uint16_t pred_index = 0;
  /// True when the anchor is the second tag variable of that predicate.
  bool on_second = false;
};

/// \brief Attribute filters of one step, retained outside the
/// predicates for selection-postponed evaluation (§5).
struct DeferredFilters {
  /// Which anchor (index into anchor arrays) the filters apply to.
  uint16_t anchor_index = 0;
  std::vector<AttributeConstraint> filters;
};

/// \brief The ordered predicate encoding of a single-path XPE (§3.2),
/// plus the anchor metadata later stages need.
///
/// "Anchors" are the non-wildcard location steps, in order; every
/// predicate constrains the absolute position of an anchor, the
/// distance between two adjacent anchors, or the distance from the
/// last anchor to the end of the path. All-wildcard expressions encode
/// to a single length predicate and have no anchors.
struct EncodedExpression {
  std::vector<Predicate> predicates;
  /// anchor_steps[i] = 1-based location-step index of anchor i.
  std::vector<uint16_t> anchor_steps;
  /// Where each anchor's occurrence lives in the matching-result chain.
  std::vector<AnchorSlot> anchor_slots;
  /// Interned tag of each anchor.
  std::vector<SymbolId> anchor_tags;
  /// Selection-postponed attribute filters (empty in inline mode).
  std::vector<DeferredFilters> deferred_filters;
  /// Number of location steps of the original expression.
  uint16_t num_steps = 0;

  /// Paper-style rendering "(p_a, =, 1) -> (d(p_a, p_b), =, 1)".
  std::string ToString(const Interner& interner) const;
};

/// How attribute filters are represented (§5).
enum class AttributeMode : uint8_t {
  /// Filters become attribute constraints inside the predicates and
  /// are checked during predicate matching.
  kInline,
  /// Predicates stay purely structural; filters are kept per
  /// expression and checked after structural matching by re-running
  /// occurrence determination on filtered results.
  kSelectionPostponed,
};

/// \brief Translates a single-path XPE into its ordered predicate
/// encoding.
///
/// \p expr must not contain nested path filters (callers decompose
/// nested expressions first; see core/nested.h). Attribute filters on
/// wildcard steps are not supported by the predicate language and are
/// rejected.
///
/// Tag names are interned into \p interner (allocating — the
/// expression side owns the vocabulary).
Result<EncodedExpression> EncodeExpression(const xpath::PathExpr& expr,
                                           AttributeMode mode,
                                           Interner* interner);

}  // namespace xpred::core

#endif  // XPRED_CORE_ENCODER_H_
