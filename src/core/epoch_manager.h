#ifndef XPRED_CORE_EPOCH_MANAGER_H_
#define XPRED_CORE_EPOCH_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/matcher.h"

namespace xpred::core {

/// \brief Epoch-based snapshot manager for live subscription churn
/// (DESIGN.md §15).
///
/// The paper's indexes are built once and then treated as frozen;
/// `IndexEpochManager` makes Subscribe/Unsubscribe first-class
/// concurrent operations without ever locking the filter path. It is
/// a left-right scheme specialized to the partitioned-matcher layout
/// `exec::ParallelFilter` already uses:
///
///  - Two *sides* are kept, each a full set of partitioned
///    `core::Matcher` indexes plus local→global subscription-id maps.
///    Exactly one side is *current* (published); the other is the
///    *spare* being prepared for the next epoch.
///  - Readers pin the current side per batch (`Pin()`): one atomic
///    fetch_add on the side's pin count, a re-check of the current
///    pointer, done. No mutex, no allocation, no matcher state is
///    written — the snapshot is immutable for the pin's lifetime.
///  - A single writer (serialized by an internal mutex) validates
///    mutations eagerly against a master matcher, queues them in an
///    operation log, and `Publish()` replays the backlog into the
///    spare side, prepares its lazy evaluation orders, and swaps the
///    current pointer with release semantics.
///  - Reclamation is deferred by grace-period counting: before a side
///    may be rebuilt it must be fully unpinned (its pin count drained
///    to zero). The side an epoch retires into is never freed — only
///    recycled two publishes later, after every batch that pinned it
///    has unpinned. Readers therefore never observe a matcher being
///    mutated; TSan-clean by construction.
///
/// Determinism: both sides replay the same operation log in the same
/// order, so partition routing, partition-local subscription ids and
/// InternalIds are identical across sides and across epochs. A global
/// subscription id is assigned once, at Subscribe(), and means the
/// same subscription forever — match sets from different epochs are
/// directly comparable, which is what the churn-test oracle
/// (`src/testing/churn_harness`) relies on.
class IndexEpochManager {
 public:
  /// \brief Durability hook: mirrors the single-writer op log to an
  /// external sink (the storage layer's write-ahead log).
  ///
  /// Every callback runs under the writer mutex, after the op has been
  /// validated and logged in memory, so the sink observes exactly the
  /// committed op sequence in order — the WAL-mirroring contract of
  /// DESIGN.md §16. \p seq is the manager's 1-based op sequence
  /// number; a sink persisting across restarts maps it into its own
  /// durable numbering.
  ///
  /// A non-OK return poisons the manager: the op that hit the failure
  /// stays applied in memory (rolling it back would desynchronize the
  /// dense sid assignment), but every later mutation is rejected with
  /// the sink's status. A writer that cannot persist is expected to
  /// drain and restart — crash recovery makes that safe.
  class OpSink {
   public:
    virtual ~OpSink() = default;
    virtual Status OnSubscribe(uint64_t seq, ExprId sid,
                               std::string_view xpath) = 0;
    virtual Status OnUnsubscribe(uint64_t seq, ExprId sid) = 0;
    /// A Publish() landed: \p applied_seq ops are now visible at
    /// \p epoch.
    virtual Status OnPublish(uint64_t epoch, uint64_t applied_seq) = 0;
  };

  struct Options {
    /// Expression partitions per side (mirrors
    /// exec::ParallelFilter::Options::partitions). Clamped to >= 1.
    size_t partitions = 1;
    core::Matcher::Options matcher;
    /// Retain the full operation log plus per-epoch boundaries so
    /// OpsUpToEpoch() can rebuild any published epoch from scratch
    /// (the churn-test oracle). Off by default: the log is trimmed
    /// once both sides have applied it.
    bool record_history = false;
  };

  /// One immutable published view. Obtained only via Pin(); all
  /// accessors are safe from any number of threads while pinned.
  class Snapshot {
   public:
    uint64_t epoch() const { return epoch_; }
    size_t partition_count() const { return partitions_.size(); }
    /// The partition's matcher, prepared for concurrent const
    /// filtering (PrepareForFiltering already ran before publish).
    const Matcher& partition(size_t p) const { return *partitions_[p]; }
    /// Maps a partition-local subscription id to its global id.
    ExprId GlobalSid(size_t p, ExprId local) const {
      return local_to_global_[p][local];
    }
    /// Live (not unsubscribed) subscriptions at this epoch.
    size_t live_subscriptions() const { return live_count_; }

   private:
    friend class IndexEpochManager;
    Snapshot() = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    std::vector<std::unique_ptr<Matcher>> partitions_;
    std::vector<std::vector<ExprId>> local_to_global_;
    uint64_t epoch_ = 0;
    /// Operations (by sequence number) applied into this side.
    uint64_t applied_seq_ = 0;
    size_t live_count_ = 0;
    /// Grace-period counter: batches currently pinned to this side.
    std::atomic<uint64_t> pins_{0};
  };

  /// RAII pin on one published snapshot. Movable; unpins on
  /// destruction. A default-constructed instance is empty.
  class PinnedSnapshot {
   public:
    PinnedSnapshot() = default;
    PinnedSnapshot(PinnedSnapshot&& other) noexcept : snap_(other.snap_) {
      other.snap_ = nullptr;
    }
    PinnedSnapshot& operator=(PinnedSnapshot&& other) noexcept {
      if (this != &other) {
        Release();
        snap_ = other.snap_;
        other.snap_ = nullptr;
      }
      return *this;
    }
    PinnedSnapshot(const PinnedSnapshot&) = delete;
    PinnedSnapshot& operator=(const PinnedSnapshot&) = delete;
    ~PinnedSnapshot() { Release(); }

    bool valid() const { return snap_ != nullptr; }
    const Snapshot* operator->() const { return snap_; }
    const Snapshot& operator*() const { return *snap_; }

    /// Unpins early (the destructor is then a no-op).
    void Release() {
      if (snap_ != nullptr) {
        snap_->pins_.fetch_sub(1, std::memory_order_acq_rel);
        snap_ = nullptr;
      }
    }

   private:
    friend class IndexEpochManager;
    explicit PinnedSnapshot(Snapshot* snap) : snap_(snap) {}
    Snapshot* snap_ = nullptr;
  };

  /// Monotonic totals, readable from any thread.
  struct Stats {
    uint64_t subscribes = 0;        ///< Successful Subscribe() calls.
    uint64_t unsubscribes = 0;      ///< Successful Unsubscribe() calls.
    uint64_t publishes = 0;         ///< Epochs published.
    uint64_t ops_applied = 0;       ///< Log entries replayed into sides.
    uint64_t retire_waits = 0;      ///< Publishes that had to wait.
    uint64_t retire_wait_spins = 0; ///< Yields spent waiting for pins.
    uint64_t publish_rejected = 0;  ///< TryPublish refusals (side pinned).
  };

  /// One logged mutation, exposed for the rebuild-from-scratch oracle.
  struct OpView {
    bool subscribe = false;
    ExprId sid = 0;
    std::string xpath;  ///< Canonical expression (subscribe only).
  };

  explicit IndexEpochManager(const Options& options);
  ~IndexEpochManager();

  IndexEpochManager(const IndexEpochManager&) = delete;
  IndexEpochManager& operator=(const IndexEpochManager&) = delete;

  /// \name Read path (lock-free; any thread)
  ///@{
  /// Pins the current published snapshot for the caller. Never blocks
  /// and never fails; the returned snapshot stays valid — and
  /// unmutated — until the pin is released.
  PinnedSnapshot Pin();

  /// Epoch of the currently published snapshot.
  uint64_t current_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }
  /// Global subscription ids issued so far (dense; includes
  /// unsubscribed ones).
  size_t subscription_count() const {
    return issued_sids_.load(std::memory_order_acquire);
  }
  /// Batches currently pinning the published side (approximate —
  /// concurrent pins/unpins move it).
  uint64_t current_pins() const;
  Stats stats() const;
  ///@}

  /// \name Write path (mutex-serialized; one logical writer)
  ///@{
  /// Validates and queues a subscription. The returned global id is
  /// final, but the expression only matches documents once the next
  /// Publish() lands. Parse/capacity errors surface here, eagerly —
  /// a queued operation can no longer fail.
  Result<ExprId> Subscribe(std::string_view xpath);

  /// Validates and queues a cancellation. Fails on unknown or
  /// already-unsubscribed ids; takes effect at the next Publish().
  Status Unsubscribe(ExprId sid);

  /// Operations queued but not yet published. Lock-free: safe to call
  /// from the read path (metrics gauges) even while a pin is held —
  /// it must never contend with a blocking Publish() that is waiting
  /// for pins to drain.
  size_t pending_ops() const;
  /// Live subscriptions after all queued operations land.
  size_t live_subscriptions() const;

  /// Sequence number of the last validated op in the log (0 before
  /// any). This is the \p seq the OpSink mirror saw last — the
  /// durability layer uses it to detect mutations that raced a
  /// checkpoint.
  uint64_t last_op_seq() const;

  /// Publishes a new epoch: waits for the spare side's grace period
  /// (pins drained), replays the op backlog into it, prepares its
  /// evaluation orders, and atomically swaps it current. Publishing
  /// with an empty backlog is allowed (it just bumps the epoch).
  /// Returns the new epoch number.
  Result<uint64_t> Publish();

  /// Non-blocking Publish: returns StatusCode::kRejected without
  /// side effects when the spare side is still pinned. Lets a writer
  /// loop make progress instead of stalling behind a slow batch.
  Result<uint64_t> TryPublish();
  ///@}

  /// \name Oracle support (requires Options::record_history)
  ///@{
  /// All operations, in order, after history_base() up to and
  /// including published epoch \p epoch. With an untrimmed log
  /// (history_base().seq == 0, the default) replaying them into a
  /// fresh Matcher reproduces that epoch's match behavior with
  /// identical global subscription ids; after TrimHistoryBefore the
  /// view is incremental — seed from the checkpoint that justified the
  /// trim, then replay.
  Result<std::vector<OpView>> OpsUpToEpoch(uint64_t epoch) const;

  /// Where trimmed history restarts: ops with seq <= seq are gone and
  /// epochs earlier than epoch are no longer rebuildable. {0, 0} until
  /// the first TrimHistoryBefore.
  struct HistoryBase {
    uint64_t epoch = 0;
    uint64_t seq = 0;
  };
  HistoryBase history_base() const;

  /// Bounds record_history memory after a snapshot checkpoint: drops
  /// op-log entries and epoch boundaries for epochs earlier than
  /// \p epoch (which must have been published). The trim never
  /// outruns a side that still needs the ops for its next rebuild,
  /// and it refuses (kRejected) to drop an epoch some reader still
  /// has pinned — OpsUpToEpoch stays answerable for every pinned
  /// epoch. Returns the number of log entries physically dropped.
  Result<size_t> TrimHistoryBefore(uint64_t epoch);
  ///@}

  /// \name Durability support
  ///@{
  /// Attaches \p sink (nullptr detaches) as the op-log mirror. Must
  /// not race with mutations: the storage layer attaches it after
  /// recovery replay, before going live.
  void SetOpSink(OpSink* sink);

  /// One row of ExportSubscriptions: the full fate of one global sid.
  struct SubscriptionExport {
    uint64_t epoch = 0;     ///< Published epoch the export reflects.
    uint64_t last_seq = 0;  ///< Last op sequence number in the log.
    struct Entry {
      ExprId sid = 0;
      bool live = false;
      std::string xpath;
    };
    std::vector<Entry> entries;  ///< Dense: entries[i].sid == i.
  };
  /// The full subscription table — every issued sid, live or dead, in
  /// sid order — at an epoch boundary. Rejected (kRejected) while ops
  /// are queued but unpublished: checkpoints are defined at epoch
  /// boundaries only, so Publish() first. Replaying the entries
  /// (subscribe all in order, then unsubscribe the dead) into a fresh
  /// manager reproduces identical sids and partition routing.
  Result<SubscriptionExport> ExportSubscriptions() const;
  ///@}

  size_t partition_count() const { return options_.partitions; }
  const Options& options() const { return options_; }
  size_t ApproximateMemoryBytes() const;

 private:
  enum class OpKind : uint8_t { kSubscribe, kUnsubscribe };
  struct Op {
    OpKind kind = OpKind::kSubscribe;
    ExprId sid = 0;
    uint32_t partition = 0;
    ExprId local = 0;  ///< Partition-local sid (precomputed, both kinds).
    std::string xpath;
  };
  /// First op sequence number of a published epoch, for OpsUpToEpoch.
  struct EpochBoundary {
    uint64_t epoch = 0;
    uint64_t applied_seq = 0;
  };

  /// Replays log entries (side->applied_seq_, last_seq_] into \p side.
  Status ApplyBacklog(Snapshot* side);
  Result<uint64_t> PublishLocked(bool wait);
  void TrimLogLocked();

  Options options_;

  /// The two sides; pointees are stable for the manager's lifetime
  /// (readers hold raw pointers while pinned).
  Snapshot sides_[2];
  std::atomic<Snapshot*> current_;
  std::atomic<uint64_t> published_epoch_{0};
  std::atomic<size_t> issued_sids_{0};

  mutable std::mutex writer_mu_;
  /// Master matcher (writer-side): validates every mutation eagerly
  /// and tracks liveness, so replaying into a side cannot fail.
  std::unique_ptr<Matcher> master_;
  /// sid -> routing, mirrored by both sides' replays.
  std::vector<Op> sid_routes_;
  /// sid -> liveness, for ExportSubscriptions (the master matcher
  /// validates liveness but does not expose it per sid).
  std::vector<uint8_t> sid_live_;
  /// Per-partition successful-subscribe counts (assigns local sids).
  std::vector<ExprId> partition_counts_;
  size_t next_partition_ = 0;
  size_t live_count_ = 0;

  /// Operation log. log_[i] has sequence number first_seq_ + i;
  /// sequence numbers are 1-based and never reused.
  std::deque<Op> log_;
  uint64_t first_seq_ = 1;
  uint64_t last_seq_ = 0;
  /// Mirror of last_seq_ - current applied_seq_, maintained under
  /// writer_mu_ but readable without it (see pending_ops()).
  std::atomic<uint64_t> pending_ops_{0};
  std::vector<EpochBoundary> boundaries_;
  /// Logical start of retained history (TrimHistoryBefore).
  HistoryBase history_base_;

  /// Durability mirror; calls run under writer_mu_. A sink failure
  /// sticks here and fails every later mutation.
  OpSink* op_sink_ = nullptr;
  Status sink_status_;

  std::atomic<uint64_t> stat_subscribes_{0};
  std::atomic<uint64_t> stat_unsubscribes_{0};
  std::atomic<uint64_t> stat_publishes_{0};
  std::atomic<uint64_t> stat_ops_applied_{0};
  std::atomic<uint64_t> stat_retire_waits_{0};
  std::atomic<uint64_t> stat_retire_wait_spins_{0};
  std::atomic<uint64_t> stat_publish_rejected_{0};
};

}  // namespace xpred::core

#endif  // XPRED_CORE_EPOCH_MANAGER_H_
