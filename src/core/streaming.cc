#include "core/streaming.h"

#include "common/fault_injection.h"
#include "common/limits.h"

namespace xpred::core {

Status StreamingFilter::FilterXml(std::string_view xml_text,
                                  std::vector<ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  // One governed window for the whole parse+match pass, under the
  // matcher's limits: the streaming front end honors the same contract
  // as FilterEngine::FilterXml.
  const ResourceLimits& limits = matcher_->resource_limits();
  ExecBudget& budget = matcher_->budget();
  matcher_->BeginGovernedWindow();
  Status st = [&]() -> Status {
    XPRED_RETURN_NOT_OK(budget.CheckDocumentBytes(xml_text.size()));
#ifndef XPRED_DISABLE_FAULT_INJECTION
    if (FaultInjector* injector = FaultInjector::Installed()) {
      injector->MaybeTruncate(faultsite::kParserInput, &xml_text);
    }
#endif
    xml::SaxParser::Options options;
    options.max_depth = limits.max_element_depth;
    options.max_attributes_per_element = limits.max_attributes_per_element;
    options.max_entity_expansions = limits.max_entity_expansions;
    options.budget = &budget;
    xml::SaxParser parser(options);
    return parser.Parse(xml_text, this);
  }();
  matcher_->EndGovernedWindow();
  XPRED_RETURN_NOT_OK(st);
  std::vector<ExprId> result = TakeMatches();
  matched->insert(matched->end(), result.begin(), result.end());
  return Status::OK();
}

Status StreamingFilter::StartDocument() {
  stack_.clear();
  matches_.clear();
  next_node_ = 0;
  matcher_->BeginDocumentStream();
  return Status::OK();
}

Status StreamingFilter::StartElement(
    std::string_view name, const std::vector<xml::Attribute>& attributes) {
  XPRED_FAULT_POINT(faultsite::kStreamingStartElement);
  // Custom event sources bypass the SAX parser's caps; re-check the
  // structural limits per event.
  ExecBudget& budget = matcher_->budget();
  XPRED_RETURN_NOT_OK(budget.CheckDepth(stack_.size() + 1));
  XPRED_RETURN_NOT_OK(budget.CheckAttributeCount(attributes.size()));
  XPRED_RETURN_NOT_OK(budget.CheckDeadline());
  if (!stack_.empty()) stack_.back().has_children = true;
  OpenElement element;
  element.tag.assign(name);
  element.attributes = attributes;  // Copy: valid only during the event.
  element.node = next_node_++;
  stack_.push_back(std::move(element));
  max_depth_seen_ = std::max(max_depth_seen_, stack_.size());
  return Status::OK();
}

Status StreamingFilter::EndElement(std::string_view name) {
  (void)name;  // The SAX parser verified tag balance.
  // A leaf closes: the current stack is a complete root-to-leaf path.
  if (!stack_.back().has_children) {
    views_.clear();
    views_.reserve(stack_.size());
    for (const OpenElement& element : stack_) {
      PathElementView view;
      view.tag = element.tag;
      view.attributes = &element.attributes;
      view.node = element.node;
      views_.push_back(view);
    }
    XPRED_RETURN_NOT_OK(matcher_->ProcessStreamedPath(views_));
  }
  stack_.pop_back();
  return Status::OK();
}

Status StreamingFilter::EndDocument() {
  matches_.clear();
  Status st = matcher_->EndDocumentStream(&matches_);
  PublishMaxDepth();
  return st;
}

void StreamingFilter::PublishMaxDepth() {
  obs::MetricsRegistry* registry = matcher_->metrics_registry();
  if (registry == nullptr) return;
  if (depth_gauge_ == nullptr || gauge_registry_ != registry) {
    depth_gauge_ = registry->AddGauge(
        "xpred_stream_max_depth",
        "Maximum open-element stack depth seen by the streaming filter",
        {{"engine", std::string(matcher_->name())}});
    gauge_registry_ = registry;
  }
  depth_gauge_->Set(static_cast<double>(max_depth_seen_));
}

}  // namespace xpred::core
