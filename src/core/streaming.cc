#include "core/streaming.h"

namespace xpred::core {

Status StreamingFilter::FilterXml(std::string_view xml_text,
                                  std::vector<ExprId>* matched) {
  if (matched == nullptr) {
    return Status::InvalidArgument("matched must not be null");
  }
  xml::SaxParser parser;
  XPRED_RETURN_NOT_OK(parser.Parse(xml_text, this));
  std::vector<ExprId> result = TakeMatches();
  matched->insert(matched->end(), result.begin(), result.end());
  return Status::OK();
}

Status StreamingFilter::StartDocument() {
  stack_.clear();
  matches_.clear();
  next_node_ = 0;
  matcher_->BeginDocumentStream();
  return Status::OK();
}

Status StreamingFilter::StartElement(
    std::string_view name, const std::vector<xml::Attribute>& attributes) {
  if (!stack_.empty()) stack_.back().has_children = true;
  OpenElement element;
  element.tag.assign(name);
  element.attributes = attributes;  // Copy: valid only during the event.
  element.node = next_node_++;
  stack_.push_back(std::move(element));
  max_depth_seen_ = std::max(max_depth_seen_, stack_.size());
  return Status::OK();
}

Status StreamingFilter::EndElement(std::string_view name) {
  (void)name;  // The SAX parser verified tag balance.
  // A leaf closes: the current stack is a complete root-to-leaf path.
  if (!stack_.back().has_children) {
    views_.clear();
    views_.reserve(stack_.size());
    for (const OpenElement& element : stack_) {
      PathElementView view;
      view.tag = element.tag;
      view.attributes = &element.attributes;
      view.node = element.node;
      views_.push_back(view);
    }
    XPRED_RETURN_NOT_OK(matcher_->ProcessStreamedPath(views_));
  }
  stack_.pop_back();
  return Status::OK();
}

Status StreamingFilter::EndDocument() {
  matches_.clear();
  Status st = matcher_->EndDocumentStream(&matches_);
  PublishMaxDepth();
  return st;
}

void StreamingFilter::PublishMaxDepth() {
  obs::MetricsRegistry* registry = matcher_->metrics_registry();
  if (registry == nullptr) return;
  if (depth_gauge_ == nullptr || gauge_registry_ != registry) {
    depth_gauge_ = registry->AddGauge(
        "xpred_stream_max_depth",
        "Maximum open-element stack depth seen by the streaming filter",
        {{"engine", std::string(matcher_->name())}});
    gauge_registry_ = registry;
  }
  depth_gauge_->Set(static_cast<double>(max_depth_seen_));
}

}  // namespace xpred::core
