#ifndef XPRED_CORE_OCCURRENCE_H_
#define XPRED_CORE_OCCURRENCE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/predicate.h"

namespace xpred::core {

/// \brief The occurrence determination algorithm (paper §4.2.1,
/// Algorithm 1).
///
/// Given the ordered matching results R = {R_1, ..., R_n} of an
/// expression's predicates — each R_i a list of (o_1, o_2) occurrence
/// pairs — decides whether a chained combination exists:
/// one pair per predicate with o_2^{i-1} = o_1^i for all i. This is a
/// constraint satisfaction problem solved by depth-first backtracking;
/// the search stops at the first complete chain (the filtering
/// semantics need one match, not all).
class OccurrenceDeterminer {
 public:
  /// Result lists, one per predicate in encoding order. A null or
  /// empty entry means the predicate had no match (line 2-6 of
  /// Algorithm 1 returns noMatch immediately).
  using ResultView = std::span<const OccList* const>;

  /// Returns true iff at least one valid chain exists. The
  /// backtracking frames live on the native call stack (depth is the
  /// chain length, at most the engine's max expression length), so the
  /// search itself never allocates.
  static bool Determine(ResultView results);

  /// Enumerates every valid chain, invoking \p visit with the chosen
  /// pairs (one per predicate). Used by the nested-path join, which
  /// needs all witnesses, not just one. Stops early and returns false
  /// when more than \p max_steps search steps were taken (cap against
  /// pathological inputs); returns true when the enumeration completed.
  /// \p chain_scratch, when given, backs the in-progress chain so a
  /// caller looping over many sub-expressions reuses one buffer.
  static bool EnumerateChains(
      ResultView results, size_t max_steps,
      const std::function<void(std::span<const OccPair>)>& visit,
      std::vector<OccPair>* chain_scratch = nullptr);
};

}  // namespace xpred::core

#endif  // XPRED_CORE_OCCURRENCE_H_
