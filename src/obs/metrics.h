#ifndef XPRED_OBS_METRICS_H_
#define XPRED_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xpred::obs {

/// \brief Named-metric registry for the filtering engines: counters,
/// gauges, and HDR-style log-linear latency histograms.
///
/// The paper's evaluation (§6.5) splits filtering cost per stage but
/// only as cumulative totals; the registry adds distributions
/// (p50/p90/p99/max per stage) and machine-readable export (Prometheus
/// text exposition, JSON — see obs/exporters.h) on top.
///
/// Design rules:
///  - Registration (AddCounter/AddGauge/AddHistogram) is a cold-path
///    operation and may allocate; it is idempotent — re-registering
///    the same (name, labels) returns the existing metric.
///  - The returned pointers are stable for the registry's lifetime
///    (metrics live in std::map nodes), so hot paths hold raw pointers
///    and never touch the registry maps.
///  - Increment/Set/Record are allocation-free.
///  - Like the engines themselves, a registry is not thread-safe.

/// One (name, value) label pair, rendered as name="value".
struct Label {
  std::string name;
  std::string value;
};

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

/// \brief Log-linear histogram over non-negative 64-bit values
/// (the engines record stage latencies in nanoseconds).
///
/// Bucket layout (HdrHistogram-style): indexes [0, 16) hold values
/// 0..15 exactly; every later octave o >= 1 covers
/// [16 << (o-1), 16 << o) with 16 linear sub-buckets of width
/// 2^(o-1), so any recorded value lands in a bucket whose width is at
/// most 1/16 of its magnitude. Record() is a bit-scan, a shift, and
/// three adds — allocation-free and safe on the hot path.
class Histogram {
 public:
  static constexpr uint32_t kSubBucketBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Octave 0 (values < 16) plus one octave per remaining magnitude.
  static constexpr uint32_t kOctaves = 64 - kSubBucketBits;
  static constexpr uint32_t kBucketCount = (kOctaves + 1) * kSubBuckets;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)]++;
    sum_ += value;
    if (count_ == 0 || value < min_) min_ = value;
    if (value > max_) max_ = value;
    ++count_;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Exact extrema (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }

  /// Upper bound of the bucket holding the q-quantile observation,
  /// clamped to the exact max (so Quantile(1.0) == max()). 0 when
  /// empty.
  double Quantile(double q) const;

  const std::array<uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

  void Reset();
  /// Adds \p other's recordings to this histogram (used when an
  /// engine's metrics are re-bound into a shared registry).
  void MergeFrom(const Histogram& other);

  static uint32_t BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket \p index.
  static uint64_t BucketLowerBound(uint32_t index);
  /// Largest value mapping to bucket \p index (inclusive).
  static uint64_t BucketUpperBound(uint32_t index);

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Point-in-time copy of one histogram, in sparse form.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  /// (inclusive bucket upper bound, count) for each non-empty bucket,
  /// ascending.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;

  /// Same semantics as Histogram::Quantile.
  double Quantile(double q) const;
};

/// \brief Point-in-time copy of a whole registry, keyed by
/// "name{labels}" (or bare "name" when unlabeled). Supports interval
/// diffing so benchmarks can report per-measurement metrics.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters and histogram counts/sums/buckets are subtracted;
  /// gauges keep their current value; histogram min/max keep the
  /// cumulative values (extrema cannot be un-merged).
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;
};

enum class MetricType { kCounter, kGauge, kHistogram };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a metric. \p help is kept from the first
  /// registration of \p name; registering one name with two different
  /// types is a programming error (the first type wins on export).
  Counter* AddCounter(std::string_view name, std::string_view help,
                      const std::vector<Label>& labels = {});
  Gauge* AddGauge(std::string_view name, std::string_view help,
                  const std::vector<Label>& labels = {});
  Histogram* AddHistogram(std::string_view name, std::string_view help,
                          const std::vector<Label>& labels = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations are kept).
  void Reset();

  /// \name Exporter access
  ///@{
  struct Instance {
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    /// Keyed by the rendered label string ("k1=\"v1\",k2=\"v2\"", empty
    /// when unlabeled); map nodes give the metrics stable addresses.
    std::map<std::string, Instance> instances;
  };
  /// Families in deterministic (name-sorted) order.
  const std::map<std::string, Family, std::less<>>& families() const {
    return families_;
  }
  ///@}

  /// Renders labels Prometheus-style: k1="v1",k2="v2" (values escaped).
  static std::string RenderLabels(const std::vector<Label>& labels);

 private:
  Instance& GetInstance(std::string_view name, std::string_view help,
                        MetricType type, const std::vector<Label>& labels);

  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace xpred::obs

#endif  // XPRED_OBS_METRICS_H_
