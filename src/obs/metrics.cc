#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace xpred::obs {

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  const uint32_t msb = 63 - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t octave = msb - kSubBucketBits + 1;
  const uint32_t sub =
      static_cast<uint32_t>((value >> (octave - 1)) & (kSubBuckets - 1));
  return octave * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(uint32_t index) {
  const uint32_t octave = index >> kSubBucketBits;
  const uint32_t sub = index & (kSubBuckets - 1);
  if (octave == 0) return sub;
  return static_cast<uint64_t>(kSubBuckets + sub) << (octave - 1);
}

uint64_t Histogram::BucketUpperBound(uint32_t index) {
  const uint32_t octave = index >> kSubBucketBits;
  if (octave == 0) return index & (kSubBuckets - 1);
  return BucketLowerBound(index) + ((uint64_t{1} << (octave - 1)) - 1);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      return static_cast<double>(std::min(BucketUpperBound(i), max_));
    }
  }
  return static_cast<double>(max_);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = sum_ = min_ = max_ = 0;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  for (uint32_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1,
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (const auto& [upper, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) return static_cast<double>(std::min(upper, max));
  }
  return static_cast<double>(max);
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  for (const auto& [key, value] : counters) {
    auto it = base.counters.find(key);
    const uint64_t before = it == base.counters.end() ? 0 : it->second;
    delta.counters[key] = value >= before ? value - before : 0;
  }
  delta.gauges = gauges;
  for (const auto& [key, hist] : histograms) {
    auto it = base.histograms.find(key);
    if (it == base.histograms.end()) {
      delta.histograms[key] = hist;
      continue;
    }
    const HistogramSnapshot& before = it->second;
    HistogramSnapshot d;
    d.count = hist.count >= before.count ? hist.count - before.count : 0;
    d.sum = hist.sum >= before.sum ? hist.sum - before.sum : 0;
    d.min = hist.min;
    d.max = hist.max;
    for (const auto& [upper, n] : hist.buckets) {
      uint64_t prior = 0;
      for (const auto& [bupper, bn] : before.buckets) {
        if (bupper == upper) {
          prior = bn;
          break;
        }
      }
      if (n > prior) d.buckets.emplace_back(upper, n - prior);
    }
    delta.histograms[key] = std::move(d);
  }
  return delta;
}

std::string MetricsRegistry::RenderLabels(const std::vector<Label>& labels) {
  std::string out;
  for (const Label& label : labels) {
    if (!out.empty()) out.push_back(',');
    out.append(label.name);
    out.append("=\"");
    for (char c : label.value) {
      if (c == '\\' || c == '"') out.push_back('\\');
      if (c == '\n') {
        out.append("\\n");
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

MetricsRegistry::Instance& MetricsRegistry::GetInstance(
    std::string_view name, std::string_view help, MetricType type,
    const std::vector<Label>& labels) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.help.assign(help);
    family.type = type;
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  assert(it->second.type == type && "metric re-registered with new type");
  return it->second.instances[RenderLabels(labels)];
}

Counter* MetricsRegistry::AddCounter(std::string_view name,
                                     std::string_view help,
                                     const std::vector<Label>& labels) {
  return &GetInstance(name, help, MetricType::kCounter, labels).counter;
}

Gauge* MetricsRegistry::AddGauge(std::string_view name, std::string_view help,
                                 const std::vector<Label>& labels) {
  return &GetInstance(name, help, MetricType::kGauge, labels).gauge;
}

Histogram* MetricsRegistry::AddHistogram(std::string_view name,
                                         std::string_view help,
                                         const std::vector<Label>& labels) {
  Instance& instance = GetInstance(name, help, MetricType::kHistogram, labels);
  if (instance.histogram == nullptr) {
    instance.histogram = std::make_unique<Histogram>();
  }
  return instance.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, instance] : family.instances) {
      std::string key =
          labels.empty() ? name : name + "{" + labels + "}";
      switch (family.type) {
        case MetricType::kCounter:
          snapshot.counters[key] = instance.counter.value();
          break;
        case MetricType::kGauge:
          snapshot.gauges[key] = instance.gauge.value();
          break;
        case MetricType::kHistogram: {
          HistogramSnapshot hist;
          if (instance.histogram != nullptr) {
            const Histogram& h = *instance.histogram;
            hist.count = h.count();
            hist.sum = h.sum();
            hist.min = h.min();
            hist.max = h.max();
            for (uint32_t i = 0; i < Histogram::kBucketCount; ++i) {
              if (h.buckets()[i] != 0) {
                hist.buckets.emplace_back(Histogram::BucketUpperBound(i),
                                          h.buckets()[i]);
              }
            }
          }
          snapshot.histograms[key] = std::move(hist);
          break;
        }
      }
    }
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  for (auto& [name, family] : families_) {
    for (auto& [labels, instance] : family.instances) {
      instance.counter.Reset();
      instance.gauge.Reset();
      if (instance.histogram != nullptr) instance.histogram->Reset();
    }
  }
}

}  // namespace xpred::obs
